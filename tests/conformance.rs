//! Integration smoke of the differential conformance harness: every
//! fast-path domain must agree with its golden oracle on a seeded
//! random campaign, the JSON report must be deterministic, and a
//! deliberately injected fast-path bug must be detected and shrunk to
//! a minimal reproducer seed.
//!
//! CI runs the full campaign (`conformance --seed 42 --cases 500`);
//! these tests keep a smaller version of the same guarantees inside
//! `cargo test`.

use neuropulsim::oracle::harness::{run_case, run_conformance, ConformanceConfig, Domain};

#[test]
fn all_eight_domains_conform_on_a_seeded_campaign() {
    let report = run_conformance(&ConformanceConfig::new(42, 60));
    assert_eq!(report.domains.len(), 8, "every domain must be covered");
    assert_eq!(
        report.total_divergences,
        0,
        "fast paths diverged from their oracles:\n{}",
        report.to_json()
    );
    for d in &report.domains {
        assert_eq!(d.passes, 60, "{}: not all cases passed", d.domain.name());
        assert!(
            d.worst_error <= d.domain.tolerance(),
            "{}: worst error {:e} above tolerance",
            d.domain.name(),
            d.worst_error
        );
    }
}

#[test]
fn bit_exact_domains_report_zero_error() {
    for domain in [Domain::Riscv, Domain::Snn, Domain::SnnSparse] {
        let mut config = ConformanceConfig::new(1234, 40);
        config.domains = vec![domain];
        let report = run_conformance(&config);
        assert_eq!(report.total_divergences, 0, "{}", report.to_json());
        assert_eq!(report.domains[0].worst_error, 0.0);
    }
}

#[test]
fn report_json_is_deterministic() {
    let a = run_conformance(&ConformanceConfig::new(7, 40)).to_json();
    let b = run_conformance(&ConformanceConfig::new(7, 40)).to_json();
    assert_eq!(a, b, "same seed must produce byte-identical JSON");
    let c = run_conformance(&ConformanceConfig::new(8, 40)).to_json();
    assert_ne!(a, c, "different seeds must explore different cases");
}

#[test]
fn single_domain_run_reproduces_full_run_cases() {
    // The per-domain seed derives from the canonical domain index, so
    // `--domain pcm` replays exactly the pcm cases of a full campaign.
    let full = run_conformance(&ConformanceConfig::new(42, 30));
    let mut config = ConformanceConfig::new(42, 30);
    config.domains = vec![Domain::Pcm];
    let single = run_conformance(&config);
    let full_pcm = full
        .domains
        .iter()
        .find(|d| d.domain == Domain::Pcm)
        .unwrap();
    assert_eq!(single.domains[0].worst_error, full_pcm.worst_error);
}

#[test]
fn injected_bug_is_detected_and_shrunk_to_a_reproducer() {
    for domain in Domain::all() {
        let mut config = ConformanceConfig::new(42, 30);
        config.domains = vec![domain];
        config.inject = Some(domain);
        let report = run_conformance(&config);
        let d = &report.domains[0];
        assert!(
            d.divergences > 0,
            "{}: injected perturbation went undetected",
            domain.name()
        );
        let repro = &d.repros[0];
        assert!(
            repro.shrunk_size <= repro.original_size,
            "{}: shrinking grew the case",
            domain.name()
        );
        assert!(repro.shrunk_size >= domain.min_size());
        assert!(!repro.detail.is_empty());

        // The recorded seed reproduces the divergence at the shrunk
        // size — and the same case passes once the bug is gone.
        let again = run_case(domain, repro.case_seed, Some(repro.shrunk_size), true);
        assert!(
            again.divergence.is_some(),
            "{}: shrunk repro did not reproduce",
            domain.name()
        );
        let clean = run_case(domain, repro.case_seed, Some(repro.shrunk_size), false);
        assert!(
            clean.divergence.is_none(),
            "{}: case diverges even without injection",
            domain.name()
        );
    }
}

#[test]
fn injection_shrinks_to_the_domain_minimum_for_size_independent_bugs() {
    // The riscv injection (an off-by-one in x1) diverges at every
    // size, so shrinking must reach the domain floor.
    let mut config = ConformanceConfig::new(42, 10);
    config.domains = vec![Domain::Riscv];
    config.inject = Some(Domain::Riscv);
    let report = run_conformance(&config);
    let repro = &report.domains[0].repros[0];
    assert_eq!(repro.shrunk_size, Domain::Riscv.min_size());
}

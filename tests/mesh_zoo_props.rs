//! Property tests for the mesh zoo: the layered Fldzhyan mesh must
//! program cleanly at edge sizes and survive near-degenerate phase
//! settings, the compact-MZI transfer matrix must match the plain MZI
//! composition for the same program, and the blocked/batched apply
//! kernels must be **bit-identical** to the per-block path for random
//! programs up to n = 128 regardless of worker thread count.

use neuropulsim::core::clements;
use neuropulsim::core::layered::{LayeredMesh, ProgramOptions};
use neuropulsim::core::program::MeshScratch;
use neuropulsim::linalg::parallel::{par_map_indexed, split_seed};
use neuropulsim::linalg::random::haar_unitary;
use neuropulsim::linalg::{metrics, C64};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_vec(rng: &mut StdRng, n: usize) -> Vec<C64> {
    (0..n)
        .map(|_| C64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
        .collect()
}

fn bits(v: &[C64]) -> Vec<(u64, u64)> {
    v.iter().map(|c| (c.re.to_bits(), c.im.to_bits())).collect()
}

/// Largest deviation of `U†U` from the identity.
fn unitarity_error(u: &neuropulsim::linalg::CMatrix) -> f64 {
    let gram = u.adjoint().mul_mat(u);
    let mut worst = 0.0f64;
    for r in 0..u.rows() {
        for c in 0..u.cols() {
            let expect = if r == c { 1.0 } else { 0.0 };
            let d = gram[(r, c)] - C64::real(expect);
            worst = worst.max(d.abs());
        }
    }
    worst
}

/// At the degenerate sizes n = 1 and n = 2 the universal layered mesh
/// must still represent an arbitrary Haar target essentially exactly.
#[test]
fn fldzhyan_programming_converges_at_edge_sizes() {
    for n in [1usize, 2] {
        for seed in 0..8u64 {
            let mut rng = StdRng::seed_from_u64(split_seed(9000 + n as u64, seed));
            let target = haar_unitary(&mut rng, n);
            let mut mesh = LayeredMesh::universal(n);
            mesh.randomize_phases(&mut rng);
            let report = mesh.program_unitary(&target, ProgramOptions::default());
            assert!(
                report.fidelity > 1.0 - 1e-9,
                "n={n} seed={seed}: fidelity {} did not converge",
                report.fidelity
            );
            let err = unitarity_error(&mesh.transfer_matrix());
            assert!(err < 1e-12, "n={n} seed={seed}: unitarity error {err:e}");
        }
    }
}

proptest! {
    /// Near-degenerate phase settings (every phase the same constant,
    /// plus sub-epsilon jitter) must neither break unitarity nor trap
    /// the coordinate-descent programmer: from that start it still
    /// climbs to high fidelity on a representable target.
    #[test]
    fn fldzhyan_survives_near_degenerate_phases(
        seed in 0u64..1_000_000,
        n in 2usize..7,
        base_millis in 0u64..6284,
    ) {
        let base = base_millis as f64 / 1000.0;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut mesh = LayeredMesh::universal(n);
        for layer in mesh.phase_layers_mut() {
            for p in layer.iter_mut() {
                *p = base + rng.gen_range(-1e-13..1e-13);
            }
        }
        for p in mesh.output_phases_mut() {
            *p = base + rng.gen_range(-1e-13..1e-13);
        }
        let u = mesh.transfer_matrix();
        prop_assert!(u.rows() == n);
        let err = unitarity_error(&u);
        prop_assert!(err < 1e-12, "unitarity error {:e} at n={}", err, n);

        // A representable target: another universal mesh's matrix.
        let mut donor = LayeredMesh::universal(n);
        donor.randomize_phases(&mut rng);
        let target = donor.transfer_matrix();
        let report = mesh.program_unitary(&target, ProgramOptions::default());
        // A degenerate start can end in a shallow local optimum, so
        // don't demand the global one — but the programmer must escape
        // the symmetric point (random unitaries overlap at ~1/n) and
        // stay finite.
        prop_assert!(report.fidelity.is_finite());
        prop_assert!(
            report.fidelity > 0.99,
            "stuck at fidelity {} from degenerate start (n={}, base={})",
            report.fidelity, n, base
        );
    }

    /// The closed-form compact-cell transfer matrix equals the plain
    /// MZI composition for the same decomposed program.
    #[test]
    fn compact_transfer_matrix_matches_plain(
        seed in 0u64..1_000_000,
        n in 1usize..11,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let program = clements::decompose(&haar_unitary(&mut rng, n));
        let plain = program.transfer_matrix();
        let compact = program.transfer_matrix_compact();
        let fidelity = metrics::unitary_fidelity(&plain, &compact);
        prop_assert!(
            fidelity > 1.0 - 1e-12,
            "compact/plain fidelity {} at n={}", fidelity, n
        );
    }
}

/// The blocked single-vector and batched apply paths reproduce the
/// per-block path bit for bit, from n = 1 up to n = 128, and the
/// results do not depend on how many worker threads surround them.
#[test]
fn blocked_apply_is_bit_identical_up_to_n128_any_thread_count() {
    for (i, &n) in [1usize, 2, 3, 5, 8, 16, 33, 64, 128].iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(split_seed(4242, i as u64));
        let program = clements::decompose(&haar_unitary(&mut rng, n));
        let compiled = program.compile();
        let x = random_vec(&mut rng, n);

        let mut reference = x.clone();
        compiled.apply_in_place(&mut reference);

        // One task per (thread count, lane): each applies the blocked
        // kernel on its own copy inside a pool of that many workers.
        for threads in [1usize, 4] {
            let outs = par_map_indexed(4, threads, |_| {
                let mut buf = x.clone();
                let mut scratch = MeshScratch::new();
                compiled.apply_blocked_in_place(&mut buf, &mut scratch);
                bits(&buf)
            });
            for out in &outs {
                assert_eq!(
                    out,
                    &bits(&reference),
                    "blocked apply diverged from per-block at n={n} ({threads} threads)"
                );
            }
        }

        let width = 5;
        let mut batch: Vec<C64> = (0..width).flat_map(|_| x.iter().copied()).collect();
        let mut scratch = MeshScratch::new();
        compiled.apply_blocked_batch(&mut batch, &mut scratch);
        for col in 0..width {
            assert_eq!(
                bits(&batch[col * n..(col + 1) * n]),
                bits(&reference),
                "batched apply column {col} diverged at n={n}"
            );
        }
    }
}

/// Same bit-identity contract for the fused layered kernel: batched
/// columns reproduce the single-vector fused apply exactly.
#[test]
fn layered_batch_matches_fused_single_apply_bitwise() {
    for (i, &n) in [1usize, 2, 7, 32, 128].iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(split_seed(777, i as u64));
        let mut mesh = LayeredMesh::universal(n);
        mesh.randomize_phases(&mut rng);
        let compiled = mesh.compile();
        let x = random_vec(&mut rng, n);
        let mut scratch = MeshScratch::new();

        let mut single = x.clone();
        compiled.apply_in_place(&mut single, &mut scratch);

        let width = 3;
        let mut batch: Vec<C64> = (0..width).flat_map(|_| x.iter().copied()).collect();
        compiled.apply_batch(&mut batch, &mut scratch);
        for col in 0..width {
            assert_eq!(
                bits(&batch[col * n..(col + 1) * n]),
                bits(&single),
                "layered batch column {col} diverged at n={n}"
            );
        }
    }
}

//! Cross-crate integration tests: the flows a downstream user of
//! `neuropulsim` would actually run, spanning linalg → photonics → core →
//! nn → sim.

use neuropulsim::core::architecture::MeshArchitecture;
use neuropulsim::core::calibrate::FabricatedMesh;
use neuropulsim::core::clements::decompose;
use neuropulsim::core::error::{HardwareModel, ShifterTech};
use neuropulsim::core::gemm::{GemmEngine, GemmMode};
use neuropulsim::core::inference::{LayerSpec, PhotonicNetwork};
use neuropulsim::core::mvm::{MvmCore, MvmNoiseConfig};
use neuropulsim::linalg::{metrics, random, RMatrix};
use neuropulsim::nn::dataset::{synthetic_digits, DigitsConfig};
use neuropulsim::nn::mlp::Mlp;
use neuropulsim::photonics::pcm::PcmMaterial;
use neuropulsim::sim::fault::{Campaign, Fault, FaultOutcome, FaultTarget};
use neuropulsim::sim::firmware::{accel_offload, software_mvm, DramLayout};
use neuropulsim::sim::system::{RunOutcome, System};
use neuropulsim::snn::network::SpikingLayer;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn haar_to_mesh_to_hardware_pipeline() {
    // Draw a unitary, decompose it, realize it on imperfect hardware, and
    // confirm the fidelity ordering ideal > mild errors > severe errors.
    let mut rng = StdRng::seed_from_u64(1);
    let u = random::haar_unitary(&mut rng, 8);
    let program = decompose(&u);

    let ideal = HardwareModel::ideal().realize(&program, &mut rng);
    let mild = HardwareModel {
        phase_noise_sigma: 0.02,
        coupler_imbalance_sigma: 0.02,
        ..HardwareModel::ideal()
    }
    .realize(&program, &mut rng);
    let severe = HardwareModel {
        phase_noise_sigma: 0.2,
        coupler_imbalance_sigma: 0.1,
        ..HardwareModel::ideal()
    }
    .realize(&program, &mut rng);

    let f_ideal = metrics::unitary_fidelity(&u, &ideal);
    let f_mild = metrics::unitary_fidelity(&u, &mild);
    let f_severe = metrics::unitary_fidelity(&u, &severe);
    assert!(f_ideal > 1.0 - 1e-9);
    assert!(
        f_mild < f_ideal && f_mild > f_severe,
        "{f_ideal} {f_mild} {f_severe}"
    );
}

#[test]
fn trained_mlp_runs_on_photonic_cores() {
    // Train digitally, then push every layer through an SVD photonic core
    // with a low-loss PCM and verify accuracy survives.
    let mut rng = StdRng::seed_from_u64(2);
    let data = synthetic_digits(&mut rng, DigitsConfig::default());
    let (train, test) = data.split(0.8);
    let mut mlp = Mlp::new(&mut rng, &[16, 16, 4]);
    mlp.fit(&train, 25, 0.05);
    let digital = mlp.accuracy(&test);
    assert!(digital > 0.9, "digital accuracy {digital}");

    let config = MvmNoiseConfig {
        hardware: HardwareModel::ideal().with_shifter_tech(ShifterTech::Pcm {
            material: PcmMaterial::GeSe,
            levels: 64,
        }),
        readout_sigma: 1e-4,
        attenuator_sigma: 0.0,
    };
    let cores: Vec<(neuropulsim::core::mvm::RealizedMvm, usize)> = mlp
        .layers()
        .iter()
        .map(|l| {
            let n = l.weights.rows().max(l.weights.cols());
            let padded = RMatrix::from_fn(n, n, |i, j| {
                if i < l.weights.rows() && j < l.weights.cols() {
                    l.weights[(i, j)]
                } else {
                    0.0
                }
            });
            let core = MvmCore::new(&padded);
            (core.realize(&config, &mut rng), l.weights.rows())
        })
        .collect();
    let mut shot_rng = StdRng::seed_from_u64(3);
    let mut call = 0usize;
    let photonic = mlp.accuracy_with(&test, |_w, x| {
        let (inst, rows) = &cores[call % cores.len()];
        call += 1;
        let mut padded = vec![0.0; 16];
        padded[..x.len()].copy_from_slice(x);
        inst.multiply_noisy(&padded, &mut shot_rng)[..*rows].to_vec()
    });
    assert!(
        photonic > digital - 0.1,
        "photonic accuracy {photonic} dropped too far from {digital}"
    );
}

#[test]
fn gemm_engine_agrees_with_mlp_layer() {
    // The GeMM engine batched over a layer's inputs must agree with the
    // layer-by-layer MVM.
    let mut rng = StdRng::seed_from_u64(4);
    let w = RMatrix::from_fn(8, 8, |_, _| rng.gen_range(-1.0..1.0));
    let x = RMatrix::from_fn(8, 5, |_, _| rng.gen_range(-1.0..1.0));
    let engine = GemmEngine::new(MvmCore::new(&w), GemmMode::Wdm { channels: 4 });
    let y = engine.matmul(&x);
    let want = w.mul_mat(&x);
    assert!(
        metrics::mse(y.as_slice(), want.as_slice()) < 1e-18,
        "GeMM mismatch"
    );
}

#[test]
fn full_system_offload_matches_digital_reference() {
    let n = 8;
    let batch = 4;
    let layout = DramLayout::default();
    let mut rng = StdRng::seed_from_u64(5);
    let w = RMatrix::from_fn(n, n, |_, _| rng.gen_range(-0.5..0.5));
    let xs: Vec<Vec<f64>> = (0..batch)
        .map(|_| (0..n).map(|_| rng.gen_range(-0.5..0.5)).collect())
        .collect();

    let mut sys = System::new();
    sys.platform.accel.load_matrix(&w);
    for (v, x) in xs.iter().enumerate() {
        sys.write_fixed_vector(layout.x_addr + (v * n * 4) as u32, x);
    }
    sys.load_firmware_source(&accel_offload(n, batch, layout));
    let report = sys.run(50_000_000);
    assert!(matches!(report.outcome, RunOutcome::Halted(_)));

    for (v, x) in xs.iter().enumerate() {
        let want = w.mul_vec(x);
        let got = sys.read_fixed_vector(layout.y_addr + (v * n * 4) as u32, n);
        for (a, b) in got.iter().zip(&want) {
            assert!((a - b).abs() < 1e-3, "offload result mismatch: {a} vs {b}");
        }
    }
    // Energy ledger covers all subsystems.
    assert!(report.energy.get("cpu") > 0.0);
    assert!(report.energy.get("photonic-accel") > 0.0);
    assert!(report.energy.get("spm") > 0.0);
}

#[test]
fn software_and_offload_paths_agree() {
    let n = 4;
    let layout = DramLayout::default();
    let mut rng = StdRng::seed_from_u64(6);
    let w = RMatrix::from_fn(n, n, |_, _| rng.gen_range(-0.5..0.5));
    let x: Vec<f64> = (0..n).map(|_| rng.gen_range(-0.5..0.5)).collect();

    let run = |offload: bool| -> Vec<f64> {
        let mut sys = System::new();
        if offload {
            sys.platform.accel.load_matrix(&w);
        }
        sys.write_fixed_vector(layout.w_addr, w.as_slice());
        sys.write_fixed_vector(layout.x_addr, &x);
        let fw = if offload {
            accel_offload(n, 1, layout)
        } else {
            software_mvm(n, 1, layout)
        };
        sys.load_firmware_source(&fw);
        let report = sys.run(50_000_000);
        assert!(matches!(report.outcome, RunOutcome::Halted(_)));
        sys.read_fixed_vector(layout.y_addr, n)
    };
    let sw = run(false);
    let hw = run(true);
    for (a, b) in sw.iter().zip(&hw) {
        assert!((a - b).abs() < 2e-3, "paths disagree: {a} vs {b}");
    }
}

#[test]
fn fault_campaign_on_offload_workload() {
    // Faults in the accelerator's SPM operand buffer corrupt offloaded
    // results; the campaign must classify them as SDC, not crash.
    let n = 4;
    let layout = DramLayout::default();
    let campaign = Campaign::new(
        move || {
            let mut sys = System::new();
            let w = RMatrix::identity(n);
            sys.platform.accel.load_matrix(&w);
            sys.write_fixed_vector(layout.x_addr, &[0.5, 0.25, -0.5, 0.125]);
            sys.load_firmware_source(&accel_offload(n, 1, layout));
            sys
        },
        move |sys| {
            (0..n)
                .map(|k| {
                    sys.platform
                        .dram
                        .peek(layout.y_addr + 4 * k as u32)
                        .unwrap_or(0)
                })
                .collect()
        },
        10_000_000,
    );
    let golden = campaign.golden();
    // Corrupt the input vector in DRAM before the DMA picks it up.
    let outcome = campaign.inject(
        Fault::transient(
            FaultTarget::Dram {
                addr: layout.x_addr,
            },
            17,
            1,
        ),
        &golden,
    );
    assert_eq!(outcome, FaultOutcome::SilentDataCorruption);
    // A fault in untouched DRAM is masked.
    let outcome = campaign.inject(
        Fault::transient(FaultTarget::Dram { addr: 0x0030_8000 }, 3, 1),
        &golden,
    );
    assert_eq!(outcome, FaultOutcome::Masked);
}

#[test]
fn architectures_program_the_same_target() {
    let mut rng = StdRng::seed_from_u64(7);
    let target = random::haar_unitary(&mut rng, 4);
    let mut fidelities = Vec::new();
    for arch in MeshArchitecture::ALL {
        let mesh = arch.program(&target, &mut rng);
        fidelities.push(mesh.fidelity(&target));
    }
    for (arch, f) in MeshArchitecture::ALL.iter().zip(&fidelities) {
        assert!(*f > 0.99, "{arch}: fidelity {f}");
    }
}

#[test]
fn snn_and_mvm_share_the_pcm_substrate() {
    // The same PCM cell model drives both the MVM weights and the SNN
    // synapses; sanity-check they see consistent non-volatility.
    let mut rng = StdRng::seed_from_u64(8);
    let mut layer = SpikingLayer::new(4, 2, &mut rng);
    let e0 = layer.learning_energy();
    let stim = neuropulsim::snn::encoding::latency_encode(&[1.0, 1.0, 1.0, 1.0], 20.0);
    let _ = layer.present(&stim, 30.0, 0.5, true);
    assert!(layer.learning_energy() >= e0);

    let core = MvmCore::new(&RMatrix::identity(4));
    let y = core.multiply(&[1.0, 0.0, 0.0, 0.0]);
    assert!((y[0] - 1.0).abs() < 1e-9);
}

#[test]
fn calibration_workflow_recovers_a_fabricated_chip() {
    // Design -> fabricate (imbalanced) -> characterize -> recalibrate.
    let mut rng = StdRng::seed_from_u64(21);
    let target = random::haar_unitary(&mut rng, 6);
    let program = decompose(&target);
    let mut chip = FabricatedMesh::fabricate(&program, 0.08, &mut rng);
    let as_built = chip.fidelity(&target);
    let calibrated = chip.calibrate(&target, 60);
    assert!(as_built < 0.99, "imbalance should show: {as_built}");
    assert!(
        calibrated > 0.995,
        "calibration should recover: {calibrated}"
    );
}

#[test]
fn ring_demux_isolation_feeds_gemm_crosstalk() {
    // Device physics -> system parameter -> workload error, end to end.
    use neuropulsim::photonics::ring::AddDropRing;
    let ring = AddDropRing::default();
    let xt_100 = ring.channel_crosstalk(100e9);
    let xt_200 = ring.channel_crosstalk(200e9);
    assert!(xt_200 < xt_100);

    let mut rng = StdRng::seed_from_u64(22);
    let w = RMatrix::from_fn(6, 6, |_, _| rng.gen_range(-1.0..1.0));
    let x = RMatrix::from_fn(6, 8, |_, _| rng.gen_range(-1.0..1.0));
    let reference = w.mul_mat(&x);
    let err = |power_xt: f64| -> f64 {
        let engine = GemmEngine::new(MvmCore::new(&w), GemmMode::Wdm { channels: 8 })
            .with_crosstalk(power_xt.sqrt().min(0.99));
        let got = engine.matmul(&x);
        (&got - &reference).frobenius_norm() / reference.frobenius_norm()
    };
    assert!(
        err(xt_200) < err(xt_100),
        "wider channel spacing must reduce workload error"
    );
}

#[test]
fn photonic_network_module_runs_a_trained_mlp() {
    let mut rng = StdRng::seed_from_u64(23);
    let data = synthetic_digits(&mut rng, DigitsConfig::default());
    let (train, test) = data.split(0.8);
    let mut mlp = Mlp::new(&mut rng, &[16, 16, 4]);
    mlp.fit(&train, 25, 0.05);
    let digital = mlp.accuracy(&test);

    let specs: Vec<LayerSpec> = mlp
        .layers()
        .iter()
        .map(|l| LayerSpec::new(l.weights.clone(), l.bias.clone(), l.relu))
        .collect();
    let net = PhotonicNetwork::compile(&specs, &MvmNoiseConfig::ideal(), &mut rng);
    assert_eq!(net.depth(), 2);
    assert_eq!(net.input_dim(), 16);
    let correct = test
        .samples
        .iter()
        .zip(&test.labels)
        .filter(|(x, &l)| net.classify(x, &mut rng) == l)
        .count();
    let photonic = correct as f64 / test.len() as f64;
    assert!(
        (photonic - digital).abs() < 1e-9,
        "ideal photonic compile must match digital: {photonic} vs {digital}"
    );
}

#[test]
fn memory_hierarchy_widen_offload_gap() {
    use neuropulsim::sim::cache::DirectMappedCache;
    let n = 8;
    let layout = DramLayout::default();
    let mut rng = StdRng::seed_from_u64(24);
    let w = RMatrix::from_fn(n, n, |_, _| rng.gen_range(-0.5..0.5));
    let x: Vec<f64> = (0..n).map(|_| rng.gen_range(-0.5..0.5)).collect();
    let run_sw = |latency: u64, cache: bool| -> u64 {
        let mut sys = System::new();
        sys.platform.dram_latency = latency;
        if cache {
            sys.platform.l1_cache = Some(DirectMappedCache::new(128, 8, latency));
        }
        sys.write_fixed_vector(layout.w_addr, w.as_slice());
        sys.write_fixed_vector(layout.x_addr, &x);
        sys.load_firmware_source(&software_mvm(n, 1, layout));
        let report = sys.run(100_000_000);
        assert!(matches!(report.outcome, RunOutcome::Halted(_)));
        report.cycles
    };
    let flat = run_sw(0, false);
    let dram = run_sw(20, false);
    let cached = run_sw(20, true);
    assert!(dram > flat);
    assert!(cached > flat && cached < dram);
}

//! Tier-1 instruction-matrix conformance: every named RV32IM corner
//! case must hold in per-instruction lockstep against the reference
//! hart AND under the cached/trace-compiled pipeline.

use neuropulsim_oracle::rv32_matrix::{cases, run_matrix};

const MATRIX_BUDGET: u64 = 100_000;

#[test]
fn matrix_has_at_least_fifty_cases() {
    assert!(cases().len() >= 50, "matrix shrank to {}", cases().len());
}

#[test]
fn every_matrix_case_is_conformant() {
    let report = run_matrix(MATRIX_BUDGET);
    assert_eq!(report.total, cases().len());
    assert!(
        report.failures.is_empty(),
        "{} of {} matrix cases diverged:\n{}",
        report.failures.len(),
        report.total,
        report.failures.join("\n")
    );
}

#[test]
fn matrix_retires_real_work() {
    // A matrix of empty programs would pass vacuously; require the
    // suite to retire a meaningful amount of lockstep work (the loop
    // kernels alone contribute several hundred instructions).
    let report = run_matrix(MATRIX_BUDGET);
    assert!(
        report.instructions > 1_000,
        "matrix retired only {} instructions",
        report.instructions
    );
}

//! Property-based tests of the event-driven sparse SNN engine: over
//! random sparse networks, injection schedules, and plasticity modes,
//! the fire-queue engine must be **bit-identical** to the dense
//! reference engine (spikes, potentials, fire ledger, synapse levels,
//! cached weights), and its results must not depend on the worker
//! thread count.

use neuropulsim::linalg::parallel::split_seed;
use neuropulsim::snn::sparse::{DenseNet, EventNet, NetSpec};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic injection schedule: `per_tick` superthreshold kicks
/// per tick, plus occasional subthreshold nudges that leave neurons
/// parked at small potentials (the lazy-leak stress case).
fn schedule(spec: &NetSpec, ticks: usize, per_tick: usize, seed: u64) -> Vec<Vec<(u32, f64)>> {
    let kick = 1.4 * spec.threshold / spec.dt;
    (0..ticks)
        .map(|t| {
            let mut rng = StdRng::seed_from_u64(split_seed(seed, t as u64));
            (0..per_tick)
                .map(|_| {
                    let target = rng.gen_range(0..spec.neurons as u32);
                    let drive = if rng.gen_bool(0.25) { 0.3 * kick } else { kick };
                    (target, drive)
                })
                .collect()
        })
        .collect()
}

fn random_spec(seed: u64, neurons: usize, fanout: usize, plastic: bool) -> NetSpec {
    let mut rng = StdRng::seed_from_u64(split_seed(seed, 99));
    let mut spec = NetSpec::random(seed, neurons, fanout, 8 + (seed % 17) as u32, plastic);
    spec.tau = rng.gen_range(3.0..16.0);
    spec.threshold = rng.gen_range(0.4..1.4);
    spec.refractory = rng.gen_range(0.0..4.0);
    spec.dt = rng.gen_range(0.1..0.8);
    spec
}

proptest! {
    /// The event-driven engine and the dense O(N^2) engine agree bit
    /// for bit — spikes, potentials, ledger, and (when plastic) every
    /// synapse level and cached weight — over random sparse inputs.
    #[test]
    fn event_and_dense_engines_are_bit_identical(
        seed in 0u64..2_000_000,
        neurons in 2usize..40,
        ticks in 1usize..50,
        plastic_bit in 0u8..2,
    ) {
        let plastic = plastic_bit == 1;
        let fanout = 1 + (seed as usize) % (neurons - 1).min(7);
        let spec = random_spec(seed, neurons, fanout, plastic);
        let sched = schedule(&spec, ticks, 1 + neurons / 8, split_seed(seed, 7));

        let mut ev = EventNet::new(&spec);
        let mut dn = DenseNet::new(&spec);
        for (t, inj) in sched.iter().enumerate() {
            let fe = ev.tick(inj).to_vec();
            let fd = dn.tick(inj).to_vec();
            assert_eq!(fe, fd, "fire queues diverged at tick {t} (seed {seed})");
        }
        ev.flush();
        for j in 0..neurons {
            prop_assert_eq!(
                ev.potentials()[j].to_bits(),
                dn.potentials()[j].to_bits(),
                "potential bits diverged at neuron {} (seed {})", j, seed
            );
        }
        prop_assert_eq!(ev.fire_ledger(), dn.fire_ledger(), "fire ledgers (seed {})", seed);
        if plastic {
            prop_assert_eq!(
                ev.synapses().levels_flat(),
                dn.synapses().levels_flat(),
                "synapse levels (seed {})", seed
            );
            let ew = ev.synapses().weights_flat();
            let dw = dn.synapses().weights_flat();
            for (e, (a, b)) in ew.iter().zip(dw.iter()).enumerate() {
                prop_assert_eq!(
                    a.to_bits(), b.to_bits(),
                    "cached weight bits diverged at edge {} (seed {})", e, seed
                );
            }
        }
    }

    /// The event engine's results are invariant under the worker thread
    /// count: 2- and 8-thread runs reproduce the serial run bitwise.
    #[test]
    fn sparse_engine_is_thread_count_invariant(
        seed in 0u64..2_000_000,
        neurons in 2usize..60,
        ticks in 1usize..40,
    ) {
        let fanout = 1 + (seed as usize) % (neurons - 1).min(9);
        let spec = random_spec(seed, neurons, fanout, seed % 3 == 0);
        let sched = schedule(&spec, ticks, 1 + neurons / 6, split_seed(seed, 13));

        let mut serial = EventNet::new(&spec);
        serial.threads = 1;
        let mut spikes = Vec::new();
        for inj in &sched {
            spikes.push(serial.tick(inj).to_vec());
        }
        serial.flush();

        for threads in [2usize, 8] {
            let mut par = EventNet::new(&spec);
            par.threads = threads;
            for (t, inj) in sched.iter().enumerate() {
                prop_assert_eq!(
                    par.tick(inj),
                    &spikes[t][..],
                    "fire queue depends on thread count {} at tick {} (seed {})",
                    threads, t, seed
                );
            }
            par.flush();
            for j in 0..neurons {
                prop_assert_eq!(
                    par.potentials()[j].to_bits(),
                    serial.potentials()[j].to_bits(),
                    "potential bits depend on thread count {} (neuron {}, seed {})",
                    threads, j, seed
                );
            }
            prop_assert_eq!(
                par.synapses().levels_flat(),
                serial.synapses().levels_flat(),
                "synapse levels depend on thread count {} (seed {})", threads, seed
            );
        }
    }
}

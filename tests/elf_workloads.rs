//! Real-binary workloads: three complete RV32IM ELF executables (sieve,
//! sort, CRC32) must
//!
//! 1. match the reference hart instruction-for-instruction under the
//!    syscall-shim lockstep harness, and
//! 2. run to completion on the full [`System`] — trace compiler, bulk
//!    scheduler and all — producing the stdout and exit code that a
//!    pure-Rust golden model predicts.

use neuropulsim_oracle::rv32_matrix::lockstep_elf;
use neuropulsim_sim::loader::workloads;
use neuropulsim_sim::system::System;

const ELF_BUDGET: u64 = 10_000_000;

fn check_workload(elf: &[u8], expected_stdout: &str, expected_exit: i32) {
    // Pass 1: instruction-for-instruction against the oracle.
    let lockstep = lockstep_elf(elf, ELF_BUDGET).unwrap_or_else(|e| panic!("{e}"));
    assert_eq!(lockstep.exit_code, expected_exit);
    assert_eq!(
        String::from_utf8_lossy(&lockstep.stdout),
        expected_stdout,
        "lockstep stdout mismatch"
    );
    assert!(lockstep.instructions > 1_000, "workload is trivial");

    // Pass 2: the full system with every fast path engaged.
    let mut sys = System::new();
    let run = sys.run_elf(elf, ELF_BUDGET).expect("image loads");
    assert_eq!(run.exit_code, Some(expected_exit));
    assert_eq!(
        String::from_utf8_lossy(&run.stdout),
        expected_stdout,
        "system stdout mismatch"
    );

    // The two paths agree with each other, not just with the model.
    assert_eq!(run.stdout, lockstep.stdout);
    assert_eq!(run.syscalls, lockstep.syscalls);
}

#[test]
fn sieve_binary_matches_oracle_and_model() {
    let primes = workloads::sieve_model();
    check_workload(
        &workloads::sieve_elf(),
        &format!("primes={primes}\n"),
        primes as i32,
    );
}

#[test]
fn sort_binary_matches_oracle_and_model() {
    let (checksum, exit) = workloads::sort_model();
    check_workload(
        &workloads::sort_elf(),
        &format!("sorted={checksum}\n"),
        exit,
    );
}

#[test]
fn crc_binary_matches_oracle_and_model() {
    let (crc, exit) = workloads::crc_model();
    check_workload(&workloads::crc_elf(), &format!("crc={crc}\n"), exit);
}

#[test]
fn elf_workloads_engage_the_trace_compiler() {
    // The point of running real binaries is to exercise the trace tier
    // on nontrivial control flow: at least one workload must compile
    // and repeatedly hit traces.
    let mut sys = System::new();
    sys.run_elf(&workloads::crc_elf(), ELF_BUDGET).unwrap();
    let perf = sys.cpu.perf_counters();
    assert!(perf.traces_compiled >= 1, "no traces compiled: {perf:?}");
    assert!(perf.trace_hits > 100, "trace tier barely used: {perf:?}");
}

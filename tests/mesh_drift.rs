//! Calibration-under-drift acceptance: a seeded PCM drift ramp on
//! n = 64 meshes of every topology, where the recalibration loop must
//! keep post-recalibration fidelity above the documented floor
//! (`retain_frac` × stored fidelity), drift must be *visible* between
//! recalibrations, and the whole campaign must be byte-identical at
//! `NEUROPULSIM_THREADS=1` and `=4` worker settings.

use neuropulsim::core::architecture::MeshArchitecture;
use neuropulsim::core::calibrate::{drift_campaign_all, DriftCampaignConfig};
use neuropulsim::core::layered::ProgramOptions;

fn campaign_config() -> DriftCampaignConfig {
    DriftCampaignConfig {
        nu: 2e-3,
        steps: 32,
        seconds_per_step: 10.0,
        polish: ProgramOptions {
            max_sweeps: 12,
            tol: 1e-10,
        },
        ..DriftCampaignConfig::default()
    }
}

#[test]
fn drift_ramp_holds_the_fidelity_floor_for_every_topology() {
    let cfg = campaign_config();
    let traces = drift_campaign_all(64, &cfg, 42, 2);
    assert_eq!(traces.len(), MeshArchitecture::ALL.len());

    for t in &traces {
        assert_eq!(t.n, 64);
        assert_eq!(t.steps, cfg.steps);
        // The documented floor: recalibration may never leave the mesh
        // below retain_frac of its freshly-stored fidelity.
        assert!(
            t.min_fidelity >= t.floor - 1e-12,
            "{}: post-recal fidelity {} fell below floor {}",
            t.arch,
            t.min_fidelity,
            t.floor
        );
        // Drift must actually bite between recalibrations, otherwise
        // the campaign proves nothing.
        assert!(
            t.worst_excursion < t.stored_fidelity - 1e-5,
            "{}: drift invisible (worst excursion {} vs stored {})",
            t.arch,
            t.worst_excursion,
            t.stored_fidelity
        );
        // Same samples, so mean >= min up to summation rounding.
        assert!(t.mean_fidelity >= t.min_fidelity - 1e-12);
        assert!(t.fresh_fidelity > 0.5, "{}: {}", t.arch, t.fresh_fidelity);
    }

    // The paper's error-tolerance claim, measurable: the layered
    // Fldzhyan mesh reprograms around coupler imbalance, so it starts
    // higher and recalibrates no more often than Clements.
    let by_arch = |a: MeshArchitecture| traces.iter().find(|t| t.arch == a).unwrap();
    let fld = by_arch(MeshArchitecture::Fldzhyan);
    let cle = by_arch(MeshArchitecture::Clements);
    assert!(
        fld.fresh_fidelity > cle.fresh_fidelity,
        "layered mesh should out-tolerate imbalance: {} vs {}",
        fld.fresh_fidelity,
        cle.fresh_fidelity
    );
    assert!(fld.recalibrations <= cle.recalibrations);
}

#[test]
fn drift_campaign_is_byte_identical_across_thread_counts() {
    let cfg = campaign_config();
    let one = drift_campaign_all(64, &cfg, 42, 1);
    let four = drift_campaign_all(64, &cfg, 42, 4);
    // DriftTrace is Copy + PartialEq over f64 fields; equality here is
    // exact, i.e. byte-identical results.
    assert_eq!(one, four, "campaign results depend on thread count");
    for (a, b) in one.iter().zip(&four) {
        assert_eq!(a.min_fidelity.to_bits(), b.min_fidelity.to_bits());
        assert_eq!(a.mean_fidelity.to_bits(), b.mean_fidelity.to_bits());
        assert_eq!(a.final_fidelity.to_bits(), b.final_fidelity.to_bits());
    }
}

//! Property-based tests (proptest) over the core data structures and
//! invariants of the stack: complex arithmetic, mesh unitarity, the
//! Clements decomposition, fixed-point codecs and the RV32 ISA codec.

use neuropulsim::core::abft::{AbftWeights, ColumnCheck};
use neuropulsim::core::clements::decompose;
use neuropulsim::core::crossbar::CrossbarCore;
use neuropulsim::core::mvm::MvmCore;
use neuropulsim::core::program::{MeshProgram, MziBlock};
use neuropulsim::core::puf::PhotonicPuf;
use neuropulsim::core::reck;
use neuropulsim::linalg::{metrics, random, RMatrix, C64};
use neuropulsim::nn::conv::{direct_convolve, im2col, ConvLayer, Image};
use neuropulsim::photonics::pcm::{transmission_levels, PcmCell, PcmMaterial};
use neuropulsim::riscv::isa::{decode, encode, Instruction};
use neuropulsim::sim::fixed::{fixed_mul, from_fixed, to_fixed};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn finite() -> impl Strategy<Value = f64> {
    -1e6..1e6f64
}

proptest! {
    #[test]
    fn complex_field_axioms(a in finite(), b in finite(), c in finite(), d in finite()) {
        let x = C64::new(a, b);
        let y = C64::new(c, d);
        // Commutativity.
        prop_assert!((x + y).approx_eq(y + x, 1e-9));
        prop_assert!((x * y).approx_eq(y * x, 1e-9 * (1.0 + x.abs() * y.abs())));
        // Conjugation is an involution and distributes.
        prop_assert!(x.conj().conj().approx_eq(x, 0.0));
        prop_assert!((x * y).conj().approx_eq(x.conj() * y.conj(), 1e-9 * (1.0 + x.abs() * y.abs())));
        // |xy| = |x||y|.
        prop_assert!(((x * y).abs() - x.abs() * y.abs()).abs() < 1e-6 * (1.0 + x.abs() * y.abs()));
    }

    #[test]
    fn mesh_programs_are_unitary(
        seed in 0u64..1000,
        blocks in 1usize..12,
        n in 2usize..7,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        let blocks: Vec<MziBlock> = (0..blocks)
            .map(|_| MziBlock::new(
                rng.gen_range(0..n - 1),
                rng.gen_range(0.0..std::f64::consts::TAU),
                rng.gen_range(0.0..std::f64::consts::TAU),
            ))
            .collect();
        let phases: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..std::f64::consts::TAU)).collect();
        let program = MeshProgram::new(n, blocks, phases);
        prop_assert!(program.transfer_matrix().is_unitary(1e-9));
    }

    #[test]
    fn clements_reconstructs_any_haar_unitary(seed in 0u64..500, n in 2usize..9) {
        let mut rng = StdRng::seed_from_u64(seed);
        let u = random::haar_unitary(&mut rng, n);
        let program = decompose(&u);
        prop_assert!(program.transfer_matrix().approx_eq(&u, 1e-8));
        prop_assert_eq!(program.block_count(), n * (n - 1) / 2);
    }

    #[test]
    fn svd_core_multiplies_like_the_matrix(seed in 0u64..500, n in 1usize..7) {
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        let w = RMatrix::from_fn(n, n, |_, _| rng.gen_range(-2.0..2.0));
        let core = MvmCore::new(&w);
        let x: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let got = core.multiply(&x);
        let want = w.mul_vec(&x);
        prop_assert!(metrics::mse(&got, &want) < 1e-12);
    }

    #[test]
    fn fixed_point_roundtrip(x in -30000.0..30000.0f64) {
        let err = (from_fixed(to_fixed(x)) - x).abs();
        prop_assert!(err <= 0.5 / 65536.0 + 1e-12);
    }

    #[test]
    fn fixed_point_multiplication_accuracy(a in -100.0..100.0f64, b in -100.0..100.0f64) {
        let got = from_fixed(fixed_mul(to_fixed(a), to_fixed(b)));
        // One LSB of each input plus one LSB of truncation.
        let tol = (a.abs() + b.abs() + 2.0) / 65536.0;
        prop_assert!((got - a * b).abs() <= tol, "{a} * {b}: got {got}");
    }

    #[test]
    fn rv32_codec_roundtrip_r_type(rd in 0u8..32, rs1 in 0u8..32, rs2 in 0u8..32) {
        for inst in [
            Instruction::Add { rd, rs1, rs2 },
            Instruction::Sub { rd, rs1, rs2 },
            Instruction::Mul { rd, rs1, rs2 },
            Instruction::Divu { rd, rs1, rs2 },
        ] {
            prop_assert_eq!(decode(encode(inst)).unwrap(), inst);
        }
    }

    #[test]
    fn rv32_codec_roundtrip_immediates(rd in 0u8..32, rs1 in 0u8..32, imm in -2048i32..2048) {
        for inst in [
            Instruction::Addi { rd, rs1, imm },
            Instruction::Xori { rd, rs1, imm },
            Instruction::Lw { rd, rs1, offset: imm },
            Instruction::Jalr { rd, rs1, offset: imm },
        ] {
            prop_assert_eq!(decode(encode(inst)).unwrap(), inst);
        }
    }

    #[test]
    fn rv32_codec_roundtrip_branches(rs1 in 0u8..32, rs2 in 0u8..32, off in -2048i32..2048) {
        let offset = off * 2; // branch offsets are even
        for inst in [
            Instruction::Beq { rs1, rs2, offset },
            Instruction::Bltu { rs1, rs2, offset },
        ] {
            prop_assert_eq!(decode(encode(inst)).unwrap(), inst);
        }
        let jal = Instruction::Jal { rd: rs1, offset };
        prop_assert_eq!(decode(encode(jal)).unwrap(), jal);
    }

    #[test]
    fn haar_unitaries_preserve_power(seed in 0u64..300, n in 1usize..9) {
        let mut rng = StdRng::seed_from_u64(seed);
        let u = random::haar_unitary(&mut rng, n);
        let x = random::random_state(&mut rng, n);
        let y = u.mul_vec(&x);
        prop_assert!((y.total_power() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fidelity_bounds(seed in 0u64..300, n in 2usize..7) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random::haar_unitary(&mut rng, n);
        let b = random::haar_unitary(&mut rng, n);
        let f = metrics::unitary_fidelity(&a, &b);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&f));
        prop_assert!((metrics::unitary_fidelity(&a, &a) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn reck_reconstructs_any_haar_unitary(seed in 0u64..300, n in 2usize..8) {
        let mut rng = StdRng::seed_from_u64(seed);
        let u = random::haar_unitary(&mut rng, n);
        let program = reck::decompose(&u);
        prop_assert!(program.transfer_matrix().approx_eq(&u, 1e-8));
        if n >= 2 {
            prop_assert_eq!(program.depth(), (2 * n).saturating_sub(3));
        }
    }

    #[test]
    fn crossbar_multiply_tracks_effective_matrix(seed in 0u64..200, n in 1usize..7) {
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        let w = RMatrix::from_fn(n, n, |_, _| rng.gen_range(-1.0..1.0));
        let core = CrossbarCore::new(&w, PcmMaterial::Gst225, 4096);
        let x: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let got = core.multiply(&x);
        let want = core.effective_matrix().mul_vec(&x);
        prop_assert!(metrics::mse(&got, &want) < 1e-18);
        // Fine quantization: effective close to target.
        prop_assert!(core.quantization_error(&w) < 0.02);
    }

    #[test]
    fn puf_responses_are_deterministic_and_balanced(seed in 0u64..100, n in 2usize..10) {
        let n = n * 2; // even port counts
        let mut rng = StdRng::seed_from_u64(seed);
        let puf = PhotonicPuf::new(&mut rng, n, Default::default());
        use rand::Rng;
        let c: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.5)).collect();
        let r1 = puf.respond(&c);
        let r2 = puf.respond(&c);
        prop_assert_eq!(&r1, &r2);
        let ones = r1.iter().filter(|&&b| b).count();
        prop_assert_eq!(ones, n / 2, "median threshold balances even-N responses");
    }

    #[test]
    fn im2col_gemm_equals_direct_convolution(seed in 0u64..200, h in 4usize..9, w in 4usize..9) {
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        let img = Image::from_fn(h, w, |_, _| rng.gen_range(-1.0..1.0));
        let kernel: Vec<f64> = (0..9).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let layer = ConvLayer::new(RMatrix::from_rows(1, 9, &kernel));
        let maps = layer.forward(&img);
        let want = direct_convolve(&img, &kernel, 3);
        prop_assert_eq!(maps[0].height, want.height);
        for (a, b) in maps[0].pixels.iter().zip(&want.pixels) {
            prop_assert!((a - b).abs() < 1e-10);
        }
        // im2col shape invariant.
        let cols = im2col(&img, 3);
        prop_assert_eq!(cols.cols(), (h - 2) * (w - 2));
    }

    #[test]
    fn pcm_drift_keeps_fraction_in_range_for_any_input(
        start in 0.0..1.0f64,
        elapsed in -1e18..1e18f64,
        nu in -10.0..10.0f64,
        special in 0usize..6,
    ) {
        // apply_drift is total: whatever elapsed time (negative, huge,
        // infinite, NaN) and drift coefficient it is fed, the crystalline
        // fraction must stay a valid value in [0, 1]. The `special` index
        // swaps in the non-finite edge cases a range can't generate.
        let (elapsed, nu) = match special {
            0 => (elapsed, nu),
            1 => (f64::NAN, nu),
            2 => (f64::INFINITY, nu),
            3 => (f64::NEG_INFINITY, nu),
            4 => (elapsed, f64::NAN),
            _ => (elapsed, f64::INFINITY),
        };
        let mut cell = PcmCell::new(PcmMaterial::Gst225);
        cell.set_state(start);
        cell.apply_drift(elapsed, nu);
        let f = cell.crystalline_fraction();
        prop_assert!((0.0..=1.0).contains(&f), "fraction {f} out of range");
        // Drifting again must also stay in range (repeatable safety).
        cell.apply_drift(elapsed, nu);
        let f = cell.crystalline_fraction();
        prop_assert!((0.0..=1.0).contains(&f), "fraction {f} out of range after re-drift");
    }

    #[test]
    fn pcm_transmission_grids_are_strictly_decreasing(
        material_idx in 0usize..3,
        levels in 2u32..80,
    ) {
        let material = [PcmMaterial::Gst225, PcmMaterial::Gsst, PcmMaterial::GeSe][material_idx];
        let grid = transmission_levels(material, levels);
        prop_assert_eq!(grid.len(), levels as usize);
        prop_assert!((grid[0] - 1.0).abs() < 1e-12, "grid is normalized to 1 at level 0");
        for (l, pair) in grid.windows(2).enumerate() {
            prop_assert!(pair[0].is_finite() && pair[1].is_finite());
            prop_assert!(
                pair[1] < pair[0],
                "levels {l}..{} not strictly decreasing: {} vs {}",
                l + 1, pair[0], pair[1]
            );
            prop_assert!(pair[1] > 0.0 && pair[1] <= 1.0);
        }
    }

    #[test]
    fn phase_scaling_preserves_unitarity(seed in 0u64..200, factor in 0.5..1.5f64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let u = random::haar_unitary(&mut rng, 5);
        let program = decompose(&u);
        let scaled = program.with_scaled_phases(factor);
        prop_assert!(scaled.transfer_matrix().is_unitary(1e-9));
    }

    #[test]
    fn clements_and_reck_roundtrip_edge_sizes(seed in 0u64..200, n in 1usize..3) {
        // n = 1 (pure phase) and n = 2 (single MZI) are the degenerate
        // corners of both decompositions.
        let mut rng = StdRng::seed_from_u64(seed);
        let u = random::haar_unitary(&mut rng, n);
        for program in [decompose(&u), reck::decompose(&u)] {
            prop_assert!(program.transfer_matrix().approx_eq(&u, 1e-8));
            prop_assert_eq!(program.block_count(), n * (n - 1) / 2);
        }
    }

    #[test]
    fn decompositions_survive_near_degenerate_phases(
        seed in 0u64..100,
        n in 2usize..6,
        eps_exp in 0usize..5,
        near_cross in 0usize..2,
    ) {
        // Every θ sits within ±eps of a degenerate point (0 = bar
        // state, π = cross state), where the null-solve denominators
        // |a| or |b| almost vanish. The resulting transfer matrix is
        // still unitary and both decompositions must round-trip it.
        let eps = [0.0, 1e-13, 1e-10, 1e-8, 1e-6][eps_exp];
        let base = if near_cross == 1 { std::f64::consts::PI } else { 0.0 };
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        let tau = std::f64::consts::TAU;
        let blocks: Vec<MziBlock> = (0..n * (n - 1) / 2)
            .map(|_| {
                let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
                MziBlock::new(rng.gen_range(0..n - 1), base + sign * eps, rng.gen_range(0.0..tau))
            })
            .collect();
        let phases: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..tau)).collect();
        let u = MeshProgram::new(n, blocks, phases).transfer_matrix();
        for program in [decompose(&u), reck::decompose(&u)] {
            prop_assert!(
                program.transfer_matrix().approx_eq(&u, 1e-8),
                "θ within {eps:e} of {base} broke the round-trip"
            );
        }
    }

    #[test]
    fn abft_corrects_every_single_element_corruption(
        seed in 0u64..150,
        n in 2usize..10,
        delta_mag in 0.25..4.0f64,
        negate in 0usize..2,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        let w = RMatrix::from_fn(n, n, |_, _| rng.gen_range(-1.0..1.0));
        let weights = AbftWeights::new(&w);
        let x: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let clean = w.mul_vec(&x);
        let delta = if negate == 1 { -delta_mag } else { delta_mag };
        // Exhaustive: corrupt each output element in turn; the check
        // must locate the row exactly and correction must restore the
        // clean product in place.
        for row in 0..n {
            let mut y = clean.clone();
            y[row] += delta;
            let verdict = weights.check(&x, &y, 1e-6);
            match verdict {
                ColumnCheck::Correctable { row: located, .. } => {
                    prop_assert_eq!(located, row)
                }
                ref other => prop_assert!(false, "row {}: expected Correctable, got {:?}", row, other),
            }
            weights.correct(&mut y, &verdict);
            for i in 0..n {
                prop_assert!((y[i] - clean[i]).abs() < 1e-9, "row {row}: y[{i}] not restored");
            }
        }
    }

    #[test]
    fn abft_double_corruption_never_reports_clean(
        seed in 0u64..200,
        n in 2usize..10,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        let w = RMatrix::from_fn(n, n, |_, _| rng.gen_range(-1.0..1.0));
        let weights = AbftWeights::new(&w);
        let x: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let clean = w.mul_vec(&x);
        let r1 = rng.gen_range(0..n);
        let r2 = (r1 + 1 + rng.gen_range(0..n - 1)) % n;
        let mut y = clean.clone();
        for r in [r1, r2] {
            let mag = rng.gen_range(0.25..1.0);
            y[r] += if rng.gen_bool(0.5) { mag } else { -mag };
        }
        let verdict = weights.check(&x, &y, 1e-6);
        prop_assert!(
            verdict != ColumnCheck::Clean,
            "double corruption at rows {r1},{r2} reported clean"
        );
        // Exactly cancelling corruptions defeat the plain checksum but
        // not the weighted one: the verdict must be Corrupt outright.
        let mag = rng.gen_range(0.25..1.0);
        let mut y = clean.clone();
        y[r1] += mag;
        y[r2] -= mag;
        prop_assert_eq!(weights.check(&x, &y, 1e-6), ColumnCheck::Corrupt);
    }
}

//! Property tests for the fast-path kernel layer: the packed
//! split-complex matmul against the naive reference across sizes 1–64,
//! compiled mesh application against the rebuild path, the cached
//! realized-instance matrix, and bit-determinism of every scoped-thread
//! parallel sweep regardless of thread count.

use neuropulsim::core::analysis;
use neuropulsim::core::architecture::MeshArchitecture;
use neuropulsim::core::clements::decompose;
use neuropulsim::core::crossbar::{CrossbarCore, CrossbarNoise};
use neuropulsim::core::gemm::{GemmEngine, GemmMode};
use neuropulsim::core::mvm::{MvmCore, MvmNoiseConfig};
use neuropulsim::linalg::{random, CMatrix, CVector, MatmulScratch, RMatrix, C64};
use neuropulsim::photonics::pcm::PcmMaterial;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_cmatrix(rng: &mut StdRng, rows: usize, cols: usize) -> CMatrix {
    CMatrix::from_fn(rows, cols, |_, _| {
        C64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))
    })
}

fn random_rmatrix(rng: &mut StdRng, rows: usize, cols: usize) -> RMatrix {
    RMatrix::from_fn(rows, cols, |_, _| rng.gen_range(-1.0..1.0))
}

proptest! {
    #[test]
    fn packed_mul_mat_matches_naive_reference(
        seed in 0u64..10_000,
        m in 1usize..65,
        k in 1usize..65,
        n in 1usize..65,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random_cmatrix(&mut rng, m, k);
        let b = random_cmatrix(&mut rng, k, n);
        let want = a.mul_mat_naive(&b);
        prop_assert!(a.mul_mat(&b).approx_eq(&want, 1e-10), "mul_mat at {m}x{k}x{n}");
        let mut out = CMatrix::zeros(m, n);
        let mut scratch = MatmulScratch::new();
        a.mul_mat_into(&b, &mut out, &mut scratch);
        prop_assert!(out.approx_eq(&want, 1e-10), "mul_mat_into at {m}x{k}x{n}");
    }

    #[test]
    fn mul_vec_into_matches_mul_vec(seed in 0u64..10_000, n in 1usize..65) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random_cmatrix(&mut rng, n, n);
        let x = random::random_state(&mut rng, n);
        let want = a.mul_vec(&x);
        let mut got = CVector::zeros(n);
        a.mul_vec_into(&x, &mut got);
        for i in 0..n {
            prop_assert!(got[i].approx_eq(want[i], 1e-10));
        }
    }

    #[test]
    fn compiled_mesh_agrees_with_rebuild_apply(seed in 0u64..1000, n in 2usize..17) {
        let mut rng = StdRng::seed_from_u64(seed);
        let program = decompose(&random::haar_unitary(&mut rng, n));
        let x = random::random_state(&mut rng, n);
        let want = program.apply(&x);
        let mut got = CVector::zeros(n);
        program.compile().apply_into(&x, &mut got);
        for i in 0..n {
            prop_assert!(got[i].approx_eq(want[i], 1e-10));
        }
    }

    #[test]
    fn realized_instance_matches_cached_effective_matrix(seed in 0u64..1000, n in 1usize..9) {
        let mut rng = StdRng::seed_from_u64(seed);
        let w = random_rmatrix(&mut rng, n, n);
        let instance = MvmCore::new(&w).realize(&MvmNoiseConfig::ideal(), &mut rng);
        let x: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        // With zero readout noise the instance must multiply exactly by
        // the matrix it reports, which is cached at realize time.
        let got = instance.multiply_noisy(&x, &mut rng);
        let want = instance.effective_matrix().mul_vec(&x);
        for i in 0..n {
            prop_assert!((got[i] - want[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn parallel_gemm_is_bit_identical_to_serial(
        seed in 0u64..500,
        n in 1usize..8,
        threads in 1usize..9,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let w = random_rmatrix(&mut rng, n, n);
        let x = random_rmatrix(&mut rng, n, 7);
        let engine = GemmEngine::new(MvmCore::new(&w), GemmMode::Wdm { channels: 3 });
        prop_assert_eq!(
            engine.matmul(&x).as_slice(),
            engine.matmul_par(&x, threads).as_slice()
        );
    }

    #[test]
    fn parallel_sweeps_are_bit_deterministic(seed in 0u64..200, threads in 2usize..9) {
        let e1 = analysis::expressivity_sweep_par(MeshArchitecture::Clements, 4, 6, seed, 1);
        let e2 = analysis::expressivity_sweep_par(MeshArchitecture::Clements, 4, 6, seed, threads);
        prop_assert_eq!(e1.mean.to_bits(), e2.mean.to_bits());
        prop_assert_eq!(e1.std.to_bits(), e2.std.to_bits());
        let r1 = analysis::robustness_sweep_par(MeshArchitecture::Clements, 4, 0.05, 0.0, 6, seed, 1);
        let r2 = analysis::robustness_sweep_par(
            MeshArchitecture::Clements, 4, 0.05, 0.0, 6, seed, threads,
        );
        prop_assert_eq!(r1.mean.to_bits(), r2.mean.to_bits());
        prop_assert_eq!(r1.std.to_bits(), r2.std.to_bits());
    }

    #[test]
    fn crossbar_error_sweep_is_bit_deterministic(seed in 0u64..200, threads in 2usize..9) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 4;
        let w = random_rmatrix(&mut rng, n, n);
        let core = CrossbarCore::new(&w, PcmMaterial::Gst225, 64);
        let x: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let noise = CrossbarNoise {
            programming_sigma: 0.02,
            readout_sigma: 0.01,
        };
        let serial = core.error_sweep_par(&x, &noise, 8, seed, 1);
        let fanned = core.error_sweep_par(&x, &noise, 8, seed, threads);
        prop_assert_eq!(serial, fanned);
    }
}

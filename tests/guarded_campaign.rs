//! Acceptance test for the runtime fault-tolerance stack: over the same
//! stratified fault grid, the ABFT-guarded offload driver must (a)
//! produce a strictly lower silent-data-corruption rate than the plain
//! driver and (b) reclassify at least half of the baseline's SDC
//! population into detected outcomes (recovered or flagged), while
//! remaining bit-identical for any thread count.

use neuropulsim::core::abft::fixed_checksum_tolerance;
use neuropulsim::linalg::RMatrix;
use neuropulsim::sim::campaign::{CampaignConfig, GuardComparison, Stratum};
use neuropulsim::sim::fault::{Campaign, FaultKind, FaultTarget};
use neuropulsim::sim::firmware::{accel_offload, accel_offload_guarded, DramLayout, GuardConfig};
use neuropulsim::sim::guard::{read_guard_record, write_guard_operands};
use neuropulsim::sim::system::{System, SPM_BASE};

const N: usize = 8;
const BATCH: usize = 16;

fn operands() -> (RMatrix, Vec<Vec<f64>>) {
    let w = RMatrix::from_fn(N, N, |i, j| 0.4 * ((i as f64 - j as f64) * 0.31).sin());
    let x: Vec<Vec<f64>> = (0..BATCH)
        .map(|v| {
            (0..N)
                .map(|k| 0.2 * ((v * N + k) as f64 * 0.17).cos())
                .collect()
        })
        .collect();
    (w, x)
}

fn readout(sys: &System, layout: DramLayout) -> Vec<u32> {
    (0..N * BATCH)
        .map(|k| {
            sys.platform
                .dram
                .peek(layout.y_addr + 4 * k as u32)
                .unwrap_or(0)
        })
        .collect()
}

fn strata(layout: DramLayout) -> Vec<Stratum> {
    let words = (N * BATCH) as u32;
    vec![
        Stratum::new(
            "dram-inputs",
            (0..words)
                .map(|k| FaultTarget::Dram {
                    addr: layout.x_addr + 4 * k,
                })
                .collect(),
        ),
        Stratum::new(
            "dram-outputs",
            (0..words)
                .map(|k| FaultTarget::Dram {
                    addr: layout.y_addr + 4 * k,
                })
                .collect(),
        ),
        Stratum::new(
            "spm-buffer",
            (0..2 * words)
                .map(|k| FaultTarget::Spm {
                    addr: SPM_BASE + 0x100 + 4 * k,
                })
                .collect(),
        ),
    ]
}

fn baseline_campaign(layout: DramLayout) -> Campaign<'static> {
    let (w, x) = operands();
    Campaign::new(
        move || {
            let mut sys = System::new();
            sys.platform.accel.load_matrix(&w);
            for (v, col) in x.iter().enumerate() {
                sys.write_fixed_vector(layout.x_addr + (v * N * 4) as u32, col);
            }
            sys.load_firmware_source(&accel_offload(N, BATCH, layout));
            sys
        },
        move |sys| readout(sys, layout),
        20_000,
    )
}

fn guarded_campaign(layout: DramLayout) -> Campaign<'static> {
    let (w, x) = operands();
    let cfg = GuardConfig {
        tolerance: fixed_checksum_tolerance(N),
        ..GuardConfig::default()
    };
    Campaign::new(
        move || {
            let mut sys = System::new();
            sys.platform.accel.load_matrix(&w);
            write_guard_operands(&mut sys, &w, &x, layout);
            sys.load_firmware_source(&accel_offload_guarded(N, BATCH, layout, &cfg));
            sys
        },
        move |sys| readout(sys, layout),
        150_000,
    )
    .with_guard_readout(move |sys| read_guard_record(sys, layout))
}

#[test]
fn guard_cuts_silent_corruption_and_reclassifies_it_as_detected() {
    let layout = DramLayout::default();
    let strata = strata(layout);
    let cfg = CampaignConfig {
        cadence: 256,
        injections: 120,
        ..CampaignConfig::default()
    };
    let baseline = baseline_campaign(layout).run_stratified(
        "gemm-offload",
        7,
        FaultKind::Transient,
        &strata,
        &cfg,
    );
    let guarded = guarded_campaign(layout).run_stratified(
        "gemm-offload-guarded",
        7,
        FaultKind::Transient,
        &strata,
        &cfg,
    );
    let cmp = GuardComparison { baseline, guarded };

    let (sdc_base, sdc_guard) = cmp.sdc_rates();
    assert!(
        cmp.baseline.stats.sdc > 0,
        "fault grid must produce baseline SDCs: {:?}",
        cmp.baseline.stats
    );
    assert!(
        sdc_guard < sdc_base,
        "guard must strictly lower the SDC rate: {sdc_guard} vs {sdc_base}\n\
         baseline {:?}\nguarded {:?}",
        cmp.baseline.stats,
        cmp.guarded.stats
    );
    assert!(
        cmp.reclassified_ratio() >= 0.5,
        "at least half the baseline SDC population must surface as \
         detected outcomes, got {:.3}\nbaseline {:?}\nguarded {:?}",
        cmp.reclassified_ratio(),
        cmp.baseline.stats,
        cmp.guarded.stats
    );
    let (coverage, _) = cmp.detection_coverage();
    assert!(coverage > 0.0, "detection coverage must be positive");
    assert!(
        cmp.cycle_overhead() > 1.0,
        "the guard protocol costs cycles: {}",
        cmp.cycle_overhead()
    );
}

#[test]
fn guarded_campaign_is_thread_count_invariant() {
    let layout = DramLayout::default();
    let strata = strata(layout);
    let mut reports = Vec::new();
    for threads in [1usize, 4] {
        let cfg = CampaignConfig {
            cadence: 512,
            threads,
            injections: 30,
            batch: 8,
            ..CampaignConfig::default()
        };
        reports.push(guarded_campaign(layout).run_stratified(
            "gemm-offload-guarded",
            11,
            FaultKind::Transient,
            &strata,
            &cfg,
        ));
    }
    let (a, b) = (&reports[0], &reports[1]);
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.strata, b.strata);
    assert_eq!(a.cycles_simulated, b.cycles_simulated);
}

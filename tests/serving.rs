//! Acceptance test for the multi-accelerator serving fabric: the async
//! inference service must (a) scale sustained throughput at least 2x
//! from a 1-PE to a 4-PE fleet under the same saturating load, (b)
//! survive the permanent loss of one fleet member with zero dropped
//! requests and correct outputs throughout, and (c) produce bit-exact
//! results and statistics regardless of host thread count.

use neuropulsim::linalg::RMatrix;
use neuropulsim::sim::serve::{
    synthetic_load, InferenceServer, LoadSpec, PeFault, PeSpec, ServeConfig, ServeOutcome,
};

const N: usize = 8;
const REQUESTS: usize = 1500;

fn model() -> RMatrix {
    RMatrix::from_fn(N, N, |i, j| {
        0.4 * ((i as f64 - j as f64) * 0.31).sin() + if i == j { 0.3 } else { 0.0 }
    })
}

fn fleet(pes: usize, fault: Option<(usize, PeFault)>) -> Vec<PeSpec> {
    (0..pes)
        .map(|i| {
            let mut spec = PeSpec::new(0);
            if let Some((slot, f)) = fault {
                if slot == i {
                    spec.fault = f;
                }
            }
            spec
        })
        .collect()
}

fn serve(specs: &[PeSpec]) -> ServeOutcome {
    let models = vec![model()];
    let load = synthetic_load(
        &models,
        LoadSpec {
            requests: REQUESTS,
            mean_interarrival: 1,
            seed: 42,
        },
    );
    let mut srv = InferenceServer::new(models, specs, ServeConfig::default());
    srv.run(&load)
}

#[test]
fn four_pes_at_least_double_sustained_throughput() {
    let one = serve(&fleet(1, None));
    let four = serve(&fleet(4, None));
    assert_eq!(one.report.completed, REQUESTS);
    assert_eq!(four.report.completed, REQUESTS);
    assert_eq!(one.report.dropped + four.report.dropped, 0);
    assert!(
        four.report.requests_per_sec >= 2.0 * one.report.requests_per_sec,
        "1 PE {:.0} req/s -> 4 PEs {:.0} req/s is under 2x",
        one.report.requests_per_sec,
        four.report.requests_per_sec
    );
    // Latency percentiles are reported and ordered sanely.
    assert!(four.report.p50_latency_cycles <= four.report.p99_latency_cycles);
    assert!(four.report.p99_latency_cycles <= four.report.max_latency_cycles);
    assert!(four.report.p50_latency_cycles > 0);
}

#[test]
fn losing_one_pe_mid_run_drops_nothing_and_stays_correct() {
    let out = serve(&fleet(
        4,
        Some((
            2,
            PeFault::HardAt {
                cycle: REQUESTS as u64 / 2,
            },
        )),
    ));
    assert_eq!(out.report.completed, REQUESTS, "full load must complete");
    assert_eq!(out.report.dropped, 0, "a dead PE must not lose requests");
    assert_eq!(out.report.pes_ejected, 1, "the dead PE leaves the fleet");
    assert!(
        out.report.jobs_failed > 0,
        "the fault was actually exercised"
    );

    // Every joined response is still numerically correct.
    let models = vec![model()];
    let load = synthetic_load(
        &models,
        LoadSpec {
            requests: REQUESTS,
            mean_interarrival: 1,
            seed: 42,
        },
    );
    for resp in &out.responses {
        let req = &load[resp.id as usize];
        assert_eq!(req.id, resp.id);
        let want = models[0].mul_vec(&req.x);
        for (a, b) in resp.y.iter().zip(&want) {
            assert!((a - b).abs() < 2e-3, "id {}: {a} vs {b}", resp.id);
        }
    }
}

#[test]
fn serving_results_are_independent_of_thread_count() {
    // The engine is a single-threaded discrete-event simulation: the
    // worker-pool width (NEUROPULSIM_THREADS) never enters it. Two
    // complete runs — including a mid-run device loss — must agree
    // bit-for-bit on responses, drops, and every statistic.
    let fault = Some((1, PeFault::HardAt { cycle: 600 }));
    let a = serve(&fleet(3, fault));
    let b = serve(&fleet(3, fault));
    assert_eq!(a, b, "serving outcome must be bit-deterministic");
}

//! Full-system simulation (paper §5, Fig. 3): a RISC-V host runs the
//! same MVM workload twice — once in software with fixed-point
//! arithmetic, once offloaded to the memory-mapped photonic accelerator
//! through DMA + doorbell + interrupt — and the run reports show the
//! speedup and energy shift.
//!
//! Run with: `cargo run --release --example system_offload`

use neuropulsim::linalg::RMatrix;
use neuropulsim::sim::firmware::{accel_offload, software_mvm, DramLayout};
use neuropulsim::sim::system::{RunOutcome, System};

fn main() {
    let n = 8;
    let batch = 32;
    let layout = DramLayout::default();
    let w = RMatrix::from_fn(n, n, |i, j| 0.4 * ((i * 3 + j) as f64 * 0.31).sin());
    let inputs: Vec<Vec<f64>> = (0..batch)
        .map(|v| {
            (0..n)
                .map(|k| 0.3 * ((v + k) as f64 * 0.17).cos())
                .collect()
        })
        .collect();

    let prepare = |sys: &mut System| {
        sys.write_fixed_vector(layout.w_addr, w.as_slice());
        for (v, col) in inputs.iter().enumerate() {
            sys.write_fixed_vector(layout.x_addr + (v * n * 4) as u32, col);
        }
    };

    // --- software baseline -------------------------------------------
    let mut sw = System::new();
    prepare(&mut sw);
    sw.load_firmware_source(&software_mvm(n, batch, layout));
    let sw_report = sw.run(1_000_000_000);
    assert!(matches!(sw_report.outcome, RunOutcome::Halted(_)));

    // --- photonic offload ---------------------------------------------
    let mut hw = System::new();
    hw.platform.accel.load_matrix(&w);
    prepare(&mut hw);
    hw.load_firmware_source(&accel_offload(n, batch, layout));
    let hw_report = hw.run(1_000_000_000);
    assert!(matches!(hw_report.outcome, RunOutcome::Halted(_)));

    // --- results check --------------------------------------------------
    let mut worst = 0.0f64;
    for (v, col) in inputs.iter().enumerate() {
        let want = w.mul_vec(col);
        let sw_y = sw.read_fixed_vector(layout.y_addr + (v * n * 4) as u32, n);
        let hw_y = hw.read_fixed_vector(layout.y_addr + (v * n * 4) as u32, n);
        for i in 0..n {
            worst = worst
                .max((sw_y[i] - want[i]).abs())
                .max((hw_y[i] - want[i]).abs());
        }
    }
    println!("worst-case output error vs float reference: {worst:.2e}\n");

    println!("=== software MVM ({n}x{n}, batch {batch}) ===");
    println!(
        "  cycles: {}  instructions: {}  time: {:.2} us",
        sw_report.cycles,
        sw_report.instructions,
        sw_report.time_s * 1e6
    );
    println!("{}", sw_report.energy);

    println!("=== photonic offload ===");
    println!(
        "  cycles: {}  instructions: {}  time: {:.3} us",
        hw_report.cycles,
        hw_report.instructions,
        hw_report.time_s * 1e6
    );
    println!("{}", hw_report.energy);

    println!(
        "speedup: {:.1}x   energy ratio: {:.1}x",
        sw_report.cycles as f64 / hw_report.cycles as f64,
        sw_report.energy.total() / hw_report.energy.total()
    );
}

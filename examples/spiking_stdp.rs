//! Photonic spiking neural network demo (paper §3): excitable-laser
//! dynamics, the STDP window, and unsupervised spike-pattern learning on
//! a winner-take-all layer with PCM synapses.
//!
//! Run with: `cargo run --release --example spiking_stdp`

use neuropulsim::photonics::laser::{YamadaLaser, YamadaParams};
use neuropulsim::snn::network::SpikingLayer;
use neuropulsim::snn::stdp::StdpRule;
use neuropulsim::snn::synapse::PcmSynapse;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // --- 1. Excitable laser: threshold and refractoriness ------------
    println!("=== Yamada excitable laser ===");
    let mut laser = YamadaLaser::new(YamadaParams::default());
    let threshold = laser.excitability_threshold(2.0, 0.02);
    println!("excitability threshold (gain-kick units): {threshold:.3}");
    laser.settle();
    laser.perturb_gain(1.2 * threshold);
    let trace = laser.run(400.0);
    let peak = trace.iter().cloned().fold(0.0f64, f64::max);
    let params = *laser.params();
    println!(
        "suprathreshold kick: {} spike(s), peak intensity {peak:.2}, \
         spike width < 1 ns ({} ps/unit)",
        laser.spike_count(),
        params.time_unit * 1e12
    );

    // --- 2. The STDP window, quantized to PCM pulses ------------------
    println!("\n=== STDP window on a 16-level PCM synapse ===");
    let rule = StdpRule::default();
    println!("{:>8} {:>10} {:>8}", "dt", "dw", "pulses");
    for dt in [-20.0, -5.0, -1.0, 1.0, 5.0, 20.0] {
        println!(
            "{dt:>8.1} {:>10.4} {:>8}",
            rule.delta_w(dt),
            rule.steps(dt, 16)
        );
    }
    let mut synapse = PcmSynapse::new();
    synapse.apply_steps(-8);
    let w0 = synapse.weight();
    rule.apply(&mut synapse, 1.0);
    println!(
        "causal pair moved weight {w0:.3} -> {:.3} using {:.2} nJ so far",
        synapse.weight(),
        synapse.programming_energy() * 1e9
    );

    // --- 3. Unsupervised pattern learning -----------------------------
    println!("\n=== winner-take-all STDP learning (3 patterns, 3 neurons) ===");
    let mut rng = StdRng::seed_from_u64(7);
    let mut layer = SpikingLayer::new(9, 3, &mut rng);
    let patterns = vec![
        vec![1.0, 1.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
        vec![0.0, 0.0, 0.0, 1.0, 1.0, 1.0, 0.0, 0.0, 0.0],
        vec![0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0, 1.0, 1.0],
    ];
    let winners = layer.train_patterns(&patterns, 12);
    for (p, w) in winners.iter().enumerate() {
        match w {
            Some(j) => println!("pattern {p} -> neuron {j}"),
            None => println!("pattern {p} -> (no responder)"),
        }
    }
    println!("learned weights [neuron][input]:");
    for j in 0..layer.neurons() {
        let row = layer.weight_row(j);
        let formatted: Vec<String> = row.iter().map(|w| format!("{w:.2}")).collect();
        println!("  n{j}: [{}]", formatted.join(", "));
    }
    println!(
        "total PCM learning energy: {:.2} nJ (held for free afterwards)",
        layer.learning_energy() * 1e9
    );
}

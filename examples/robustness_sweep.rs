//! Mesh-architecture robustness sweep (paper §4): how programming
//! fidelity degrades with phase noise and coupler imbalance for the
//! Clements vs error-tolerant Fldzhyan architectures.
//!
//! Run with: `cargo run --release --example robustness_sweep`

use neuropulsim::core::analysis::{coupler_imbalance_trial, phase_noise_trial, Stats};
use neuropulsim::core::architecture::MeshArchitecture;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = 6;
    let trials = 4;

    println!("=== fidelity vs phase-noise sigma (N = {n}) ===");
    println!("{:>10} {:>18} {:>18}", "sigma", "clements", "fldzhyan");
    for sigma in [0.0, 0.02, 0.05, 0.1, 0.2] {
        let mut row = Vec::new();
        for arch in [MeshArchitecture::Clements, MeshArchitecture::Fldzhyan] {
            let mut rng = StdRng::seed_from_u64(1);
            let samples: Vec<f64> = (0..trials)
                .map(|_| phase_noise_trial(arch, n, sigma, &mut rng))
                .collect();
            row.push(Stats::from_samples(&samples));
        }
        println!(
            "{sigma:>10.3} {:>10.4} ±{:<6.4} {:>10.4} ±{:<6.4}",
            row[0].mean, row[0].std, row[1].mean, row[1].std
        );
    }

    println!("\n=== fidelity vs coupler imbalance sigma (N = {n}) ===");
    println!("(Fldzhyan reprograms around the measured couplers — the");
    println!(" error-tolerance argument of the architecture)");
    println!("{:>10} {:>18} {:>18}", "sigma", "clements", "fldzhyan");
    for sigma in [0.0, 0.02, 0.05, 0.1] {
        let mut row = Vec::new();
        for arch in [MeshArchitecture::Clements, MeshArchitecture::Fldzhyan] {
            let mut rng = StdRng::seed_from_u64(2);
            let samples: Vec<f64> = (0..trials)
                .map(|_| coupler_imbalance_trial(arch, n, sigma, &mut rng))
                .collect();
            row.push(Stats::from_samples(&samples));
        }
        println!(
            "{sigma:>10.3} {:>10.4} ±{:<6.4} {:>10.4} ±{:<6.4}",
            row[0].mean, row[0].std, row[1].mean, row[1].std
        );
    }
}

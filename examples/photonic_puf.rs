//! Photonic PUF demo (the security-primitive half of the paper's §5):
//! enroll a device's challenge–response pairs, then authenticate the
//! genuine device against a clone that perfectly copies the *design* but
//! not the fabrication variation.
//!
//! Run with: `cargo run --release --example photonic_puf`

use neuropulsim::core::puf::{evaluate_population, hamming, PhotonicPuf, PufVariation};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let n = 16;
    let mut fab = StdRng::seed_from_u64(42); // the fab's process lottery

    // Two dies off the same mask set: identical design, different atoms.
    let genuine = PhotonicPuf::new(&mut fab, n, PufVariation::default());
    let clone = PhotonicPuf::new(&mut fab, n, PufVariation::default());

    // --- enrollment: record CRPs for the genuine device ---------------
    let mut challenger = StdRng::seed_from_u64(7);
    let challenges: Vec<Vec<bool>> = (0..8)
        .map(|_| (0..n).map(|_| challenger.gen_bool(0.5)).collect())
        .collect();
    let enrolled: Vec<Vec<bool>> = challenges.iter().map(|c| genuine.respond(c)).collect();

    // --- authentication ------------------------------------------------
    println!("challenge-response authentication ({n}-bit responses):\n");
    println!("{:>6} {:>16} {:>16}", "CRP", "genuine HD", "clone HD");
    let mut noise = StdRng::seed_from_u64(99);
    let mut genuine_total = 0;
    let mut clone_total = 0;
    for (k, (c, reference)) in challenges.iter().zip(&enrolled).enumerate() {
        // Genuine device re-measured with 2% readout noise.
        let again = genuine.respond_noisy(c, 0.02, &mut noise);
        let hd_genuine = hamming(reference, &again);
        let hd_clone = hamming(reference, &clone.respond(c));
        genuine_total += hd_genuine;
        clone_total += hd_clone;
        println!("{k:>6} {hd_genuine:>16} {hd_clone:>16}");
    }
    println!(
        "\ngenuine mean HD: {:.2}/16   clone mean HD: {:.2}/16",
        genuine_total as f64 / challenges.len() as f64,
        clone_total as f64 / challenges.len() as f64
    );
    println!("-> threshold anywhere between the two separates them cleanly\n");

    // --- population statistics -----------------------------------------
    let mut rng = StdRng::seed_from_u64(3);
    let q = evaluate_population(&mut rng, n, 8, 12, 3, 0.02, PufVariation::default());
    println!("population quality over 8 devices x 12 challenges:");
    println!("  uniformity           {:.3}  (ideal 0.5)", q.uniformity);
    println!("  uniqueness           {:.3}  (ideal 0.5)", q.uniqueness);
    println!(
        "  reliability distance {:.3}  (ideal 0.0)",
        q.reliability_distance
    );
    println!("  avalanche            {:.3}  (ideal 0.5)", q.avalanche);
}

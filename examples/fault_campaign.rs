//! Checkpointed, parallel fault-injection campaign (paper §5: the
//! gem5-MARVEL reliability axis). A software-MVM workload runs once
//! fault-free while full-system checkpoints are recorded; then a
//! stratified sample of transient bit flips is injected in parallel,
//! each injection resuming from the last checkpoint before its fault
//! cycle. The report shows masked/SDC/crash/hang rates with Wilson 95%
//! confidence intervals, the per-structure breakdown, and how many
//! warm-up cycles the checkpoints saved.
//!
//! Run with: `cargo run --release --example fault_campaign [injections]`

use neuropulsim::linalg::RMatrix;
use neuropulsim::sim::campaign::{CampaignConfig, Stratum};
use neuropulsim::sim::fault::{Campaign, FaultKind, FaultTarget};
use neuropulsim::sim::firmware::{software_mvm, DramLayout};
use neuropulsim::sim::system::System;

fn main() {
    let injections: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(200);
    let n = 6;
    let layout = DramLayout::default();
    let w = RMatrix::from_fn(n, n, |i, j| 0.4 * ((i * 3 + j) as f64 * 0.31).sin());
    let x: Vec<f64> = (0..n).map(|k| 0.3 * (k as f64 * 0.17).cos()).collect();

    let campaign = Campaign::new(
        {
            let w = w.clone();
            let x = x.clone();
            move || {
                let mut sys = System::new();
                sys.write_fixed_vector(layout.w_addr, w.as_slice());
                sys.write_fixed_vector(layout.x_addr, &x);
                sys.load_firmware_source(&software_mvm(n, 1, layout));
                sys
            }
        },
        move |sys| {
            (0..n)
                .map(|k| {
                    sys.platform
                        .dram
                        .peek(layout.y_addr + 4 * k as u32)
                        .unwrap_or(0)
                })
                .collect()
        },
        // Hang threshold: ~20x the golden run. A tight budget keeps the
        // cost of hang injections (which must burn it all) bounded.
        20_000,
    );

    let strata = vec![
        Stratum::new(
            "dram-weights",
            (0..(n * n) as u32)
                .map(|k| FaultTarget::Dram {
                    addr: layout.w_addr + 4 * k,
                })
                .collect(),
        ),
        Stratum::new(
            "dram-inputs",
            (0..n as u32)
                .map(|k| FaultTarget::Dram {
                    addr: layout.x_addr + 4 * k,
                })
                .collect(),
        ),
        Stratum::new(
            "cpu-registers",
            (1..32)
                .map(|r| FaultTarget::Register { index: r })
                .collect(),
        ),
        Stratum::new(
            "dram-unused",
            (0..16)
                .map(|k| FaultTarget::Dram {
                    addr: 0x003F_0000 + 4 * k,
                })
                .collect(),
        ),
    ];

    let cfg = CampaignConfig {
        cadence: 256,
        injections,
        target_ci_width: Some(0.08),
        ..CampaignConfig::default()
    };
    let seed = 42;
    let report = campaign.run_stratified("mvm-n6", seed, FaultKind::Transient, &strata, &cfg);

    println!(
        "=== fault campaign: {} ({} injections, seed {seed}) ===",
        report.workload, report.injections
    );
    println!(
        "golden run: {} cycles, {} checkpoints every {} cycles ({} KiB resident)",
        report.golden_cycles,
        report.checkpoints,
        report.cadence,
        report.checkpoint_bytes / 1024
    );
    println!(
        "replay work: {} cycles simulated, {} cycles saved by checkpoint reuse ({:.1}% skipped)",
        report.cycles_simulated,
        report.cycles_saved,
        100.0 * report.savings_ratio()
    );
    if report.early_stopped {
        println!(
            "early stop: vulnerability CI narrower than {:.2} after {} of {} injections",
            cfg.target_ci_width.unwrap(),
            report.injections,
            report.requested_injections
        );
    }

    let total = report.stats.total();
    println!("\noutcome      count   rate     (Wilson 95% CI)");
    for (label, count) in [
        ("masked", report.stats.masked),
        ("sdc", report.stats.sdc),
        ("crash", report.stats.crashes),
        ("hang", report.stats.hangs),
    ] {
        let (lo, hi) = neuropulsim::sim::campaign::wilson_interval(
            count,
            total,
            neuropulsim::sim::campaign::Z_95,
        );
        println!(
            "{label:<12} {count:>5}   {:.3}    [{lo:.3}, {hi:.3}]",
            count as f64 / total as f64
        );
    }
    let (lo, hi) = report.vulnerability_ci();
    println!(
        "vulnerability: {:.3} [{lo:.3}, {hi:.3}]",
        report.stats.vulnerability()
    );

    println!("\nper-structure breakdown:");
    for (name, s) in &report.strata {
        println!(
            "  {name:<15} n={:<4} masked={:<4} sdc={:<4} crash={:<4} hang={:<4} vuln={:.3}",
            s.total(),
            s.masked,
            s.sdc,
            s.crashes,
            s.hangs,
            s.vulnerability()
        );
    }

    // Determinism spot check: the same campaign pinned to one thread
    // must reproduce the exact tallies the parallel run produced.
    let single = campaign.run_stratified(
        "mvm-n6",
        seed,
        FaultKind::Transient,
        &strata,
        &CampaignConfig { threads: 1, ..cfg },
    );
    assert_eq!(single.stats, report.stats, "thread-count invariance");
    assert_eq!(single.strata, report.strata, "thread-count invariance");
    println!(
        "\ndeterminism check: 1-thread rerun matches the {}-thread run bit-for-bit",
        report.threads
    );

    println!("\nJSON report:\n{}", report.to_json());
}

//! Convolutional processing on the photonic GeMM core (the Feldmann-2021
//! tensor-core workload the paper builds on): an edge-detection kernel
//! bank runs over a synthetic image as one im2col GeMM, with the patch
//! columns streamed on parallel DWDM channels.
//!
//! Run with: `cargo run --release --example photonic_convolution`

use neuropulsim::core::gemm::{GemmEngine, GemmMode};
use neuropulsim::core::mvm::MvmCore;
use neuropulsim::linalg::RMatrix;
use neuropulsim::nn::conv::{direct_convolve, ConvLayer, Image};
use neuropulsim::photonics::energy::TechnologyProfile;

fn main() {
    // A synthetic scene: a bright square on a dark background.
    let image = Image::from_fn(12, 12, |r, c| {
        if (3..9).contains(&r) && (3..9).contains(&c) {
            1.0
        } else {
            0.05
        }
    });

    // Kernel bank: horizontal edges, vertical edges, blur.
    #[rustfmt::skip]
    let kernels = RMatrix::from_rows(3, 9, &[
        -1.0, -2.0, -1.0,  0.0, 0.0, 0.0,  1.0, 2.0, 1.0,   // Sobel-y
        -1.0,  0.0,  1.0, -2.0, 0.0, 2.0, -1.0, 0.0, 1.0,   // Sobel-x
         0.111, 0.111, 0.111, 0.111, 0.111, 0.111, 0.111, 0.111, 0.111,
    ]);
    let layer = ConvLayer::new(kernels.clone());

    // Photonic engine: pad the 3x9 kernel bank into a 9x9 core and stream
    // the im2col patch columns over 8 DWDM channels.
    let padded = RMatrix::from_fn(9, 9, |i, j| {
        if i < kernels.rows() {
            kernels[(i, j)]
        } else {
            0.0
        }
    });
    let engine = GemmEngine::new(MvmCore::new(&padded), GemmMode::Wdm { channels: 8 });

    let maps = layer.forward_with(&image, |w, cols| {
        let out = engine.matmul(cols);
        RMatrix::from_fn(w.rows(), cols.cols(), |i, j| out[(i, j)])
    });

    // Compare against the direct digital convolution.
    let mut worst = 0.0f64;
    for (ch, map) in maps.iter().enumerate() {
        let want = direct_convolve(&image, kernels.row(ch), 3);
        for (a, b) in map.pixels.iter().zip(&want.pixels) {
            worst = worst.max((a - b).abs());
        }
    }
    println!("photonic vs digital convolution: worst pixel error {worst:.2e}\n");

    // Show the edge map (channel 0) as ASCII art.
    println!("Sobel-y response (photonic):");
    let map = &maps[0];
    for r in 0..map.height {
        let row: String = (0..map.width)
            .map(|c| {
                let v = map.at(r, c);
                if v > 1.0 {
                    '#'
                } else if v < -1.0 {
                    '='
                } else {
                    '.'
                }
            })
            .collect();
        println!("  {row}");
    }

    // Throughput accounting for the whole image.
    let cols = (image.height - 2) * (image.width - 2);
    let schedule = engine.schedule(cols, &TechnologyProfile::default());
    println!(
        "\n{} patches x 3 kernels in {} symbol slots = {:.1} ns  ({:.2e} MAC/s)",
        cols,
        schedule.symbol_slots,
        schedule.time_s * 1e9,
        schedule.macs_per_second
    );
}

//! Quickstart: program a photonic MZI-mesh core with a weight matrix,
//! multiply a vector ideally and under realistic hardware noise, and
//! print the energy story of non-volatile vs volatile weights.
//!
//! Run with: `cargo run --example quickstart`

use neuropulsim::core::architecture::MeshArchitecture;
use neuropulsim::core::error::{HardwareModel, ShifterTech};
use neuropulsim::core::mvm::{MvmCore, MvmNoiseConfig};
use neuropulsim::core::perf::{PerfModel, Workload};
use neuropulsim::linalg::RMatrix;
use neuropulsim::photonics::pcm::PcmMaterial;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // --- 1. An arbitrary real weight matrix -------------------------
    let n = 8;
    let w = RMatrix::from_fn(n, n, |i, j| (0.7 * (i as f64) - 0.3 * (j as f64)).sin());

    // --- 2. Program the photonic MVM core (SVD -> two Clements meshes)
    let core = MvmCore::new(&w);
    println!(
        "programmed an {n}x{n} matrix onto {} MZIs across two meshes",
        core.block_count()
    );

    // --- 3. Multiply: ideal optics vs noisy, PCM-quantized hardware --
    let x: Vec<f64> = (0..n).map(|k| 0.5 * ((k as f64) * 0.9).cos()).collect();
    let ideal = core.multiply(&x);
    let digital = w.mul_vec(&x);

    let noisy_config = MvmNoiseConfig {
        hardware: HardwareModel {
            phase_noise_sigma: 0.01,
            coupler_imbalance_sigma: 0.01,
            mzi_arm_transmission: 0.995,
            thermal_crosstalk: 0.0,
            shifter_tech: ShifterTech::Pcm {
                material: PcmMaterial::Gsst,
                levels: 32,
            },
        },
        readout_sigma: 1e-3,
        attenuator_sigma: 0.005,
    };
    let mut rng = StdRng::seed_from_u64(42);
    let noisy = core.multiply_noisy(&x, &noisy_config, &mut rng);

    println!(
        "\n{:>4} {:>12} {:>12} {:>12}",
        "out", "digital", "ideal", "noisy-pcm"
    );
    for k in 0..n {
        println!(
            "{k:>4} {:>12.6} {:>12.6} {:>12.6}",
            digital[k], ideal[k], noisy[k]
        );
    }

    // --- 4. The energy argument: non-volatile weights ---------------
    let workload = Workload {
        n,
        batch: 1_000_000,
        reprograms: 1,
    };
    for (name, tech) in [
        ("thermo-optic (volatile)", ShifterTech::ThermoOptic),
        (
            "PCM (non-volatile)",
            ShifterTech::Pcm {
                material: PcmMaterial::Gsst,
                levels: 32,
            },
        ),
    ] {
        let report = PerfModel::new(MeshArchitecture::Clements, tech).run(workload);
        println!(
            "\n=== {name} ===\n  throughput: {:.2e} MAC/s\n  energy/MAC: {:.2e} J\n{}",
            report.macs_per_second, report.energy_per_mac, report.energy
        );
    }
}

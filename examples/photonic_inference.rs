//! End-to-end photonic neural-network inference: train a small MLP
//! digitally on the synthetic-digit dataset, then run the *same* trained
//! network with every matrix–vector product executed by a noisy,
//! PCM-quantized photonic MVM core, and compare accuracies.
//!
//! Run with: `cargo run --release --example photonic_inference`

use neuropulsim::core::error::{HardwareModel, ShifterTech};
use neuropulsim::core::mvm::{MvmCore, MvmNoiseConfig};
use neuropulsim::linalg::RMatrix;
use neuropulsim::nn::dataset::{synthetic_digits, DigitsConfig};
use neuropulsim::nn::mlp::Mlp;
use neuropulsim::photonics::pcm::PcmMaterial;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

/// Pads a rectangular weight matrix into the smallest square core that
/// holds it (photonic meshes are square), returning the core.
fn core_for(weights: &RMatrix) -> (MvmCore, usize, usize) {
    let rows = weights.rows();
    let cols = weights.cols();
    let n = rows.max(cols);
    let padded = RMatrix::from_fn(n, n, |i, j| {
        if i < rows && j < cols {
            weights[(i, j)]
        } else {
            0.0
        }
    });
    (MvmCore::new(&padded), rows, cols)
}

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let data = synthetic_digits(&mut rng, DigitsConfig::default());
    let (train, test) = data.split(0.8);

    // --- digital training -------------------------------------------
    let mut mlp = Mlp::new(&mut rng, &[16, 16, 4]);
    let losses = mlp.fit(&train, 30, 0.05);
    println!(
        "trained 16-16-4 MLP: loss {:.3} -> {:.3}",
        losses[0],
        losses.last().expect("nonempty")
    );
    let digital_accuracy = mlp.accuracy(&test);
    println!("digital test accuracy: {:.1}%", 100.0 * digital_accuracy);

    // --- photonic inference ------------------------------------------
    // Program one core per layer, cached by layer identity.
    let mut cores: HashMap<usize, (MvmCore, usize, usize)> = HashMap::new();
    for (k, layer) in mlp.layers().iter().enumerate() {
        cores.insert(k, core_for(&layer.weights));
    }

    for (label, config) in [
        ("ideal optics", MvmNoiseConfig::ideal()),
        (
            "GeSe PCM 32-level + noise",
            MvmNoiseConfig {
                hardware: HardwareModel {
                    phase_noise_sigma: 0.01,
                    coupler_imbalance_sigma: 0.01,
                    mzi_arm_transmission: 0.995,
                    thermal_crosstalk: 0.0,
                    shifter_tech: ShifterTech::Pcm {
                        material: PcmMaterial::GeSe,
                        levels: 32,
                    },
                },
                readout_sigma: 1e-3,
                attenuator_sigma: 0.005,
            },
        ),
        (
            "GeSe PCM 8-level",
            MvmNoiseConfig {
                hardware: HardwareModel::ideal().with_shifter_tech(ShifterTech::Pcm {
                    material: PcmMaterial::GeSe,
                    levels: 8,
                }),
                readout_sigma: 0.0,
                attenuator_sigma: 0.0,
            },
        ),
        (
            "GSST PCM 32-level (lossy crystalline state)",
            MvmNoiseConfig {
                hardware: HardwareModel::ideal().with_shifter_tech(ShifterTech::Pcm {
                    material: PcmMaterial::Gsst,
                    levels: 32,
                }),
                readout_sigma: 0.0,
                attenuator_sigma: 0.0,
            },
        ),
    ] {
        // Freeze one hardware instance per layer for the whole test set.
        let mut inst_rng = StdRng::seed_from_u64(99);
        let instances: HashMap<usize, _> = cores
            .iter()
            .map(|(&k, (core, rows, cols))| {
                (k, (core.realize(&config, &mut inst_rng), *rows, *cols))
            })
            .collect();
        let mut shot_rng = StdRng::seed_from_u64(123);
        let mut layer_index = 0usize;
        let accuracy = mlp.accuracy_with(&test, |_w, x| {
            let k = layer_index % instances.len();
            layer_index += 1;
            let (instance, rows, cols) = &instances[&k];
            let n = x.len().max(*rows).max(*cols);
            let mut padded = vec![0.0; n];
            padded[..x.len()].copy_from_slice(x);
            let y = instance.multiply_noisy(&padded, &mut shot_rng);
            y[..*rows].to_vec()
        });
        println!("photonic accuracy [{label}]: {:.1}%", 100.0 * accuracy);
    }
}

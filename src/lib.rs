//! # neuropulsim
//!
//! A full-system simulation stack for **neuromorphic accelerators on
//! augmented silicon photonics platforms**, reproducing the system
//! described in the DAC'24 invited NEUROPULS overview paper:
//!
//! - device physics of the augmented SOI platform (PCM phase shifters,
//!   excitable lasers, high-speed modulators/detectors) — [`photonics`];
//! - programmable MZI-mesh matrix–vector-multiplication cores with
//!   Clements / compact / Fldzhyan architectures, error models, GeMM via
//!   TDM/WDM, and SWaP/energy analysis — [`core`];
//! - photonic spiking neural networks with PCM synapses and STDP —
//!   [`snn`];
//! - a gem5-style full-system simulator: RV32IM host CPU ([`riscv`]),
//!   DRAM/SPM, DMA, the memory-mapped photonic accelerator, interrupts
//!   and fault injection — [`sim`];
//! - the digital MLP reference and synthetic datasets — [`nn`];
//! - the complex linear algebra underneath — [`linalg`].
//!
//! # Quickstart
//!
//! Program a photonic core with a weight matrix and multiply:
//!
//! ```
//! use neuropulsim::core::mvm::MvmCore;
//! use neuropulsim::linalg::RMatrix;
//!
//! let w = RMatrix::from_rows(2, 2, &[0.5, -1.0, 2.0, 0.25]);
//! let core = MvmCore::new(&w);
//! let y = core.multiply(&[1.0, 1.0]);
//! assert!((y[0] + 0.5).abs() < 1e-9);
//! assert!((y[1] - 2.25).abs() < 1e-9);
//! ```
//!
//! See the `examples/` directory for end-to-end scenarios: photonic MLP
//! inference, STDP learning, full-system offload, and robustness sweeps.

#![warn(missing_docs)]

pub use neuropulsim_core as core;
pub use neuropulsim_linalg as linalg;
pub use neuropulsim_nn as nn;
pub use neuropulsim_oracle as oracle;
pub use neuropulsim_photonics as photonics;
pub use neuropulsim_riscv as riscv;
pub use neuropulsim_sim as sim;
pub use neuropulsim_snn as snn;

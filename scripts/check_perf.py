#!/usr/bin/env python3
"""Perf-regression gate for the unified ``neuropulsim-bench/v1`` schema.

Compares the machine-normalized cost (``measurements[].norm``) of a
fresh bench report against a committed baseline and fails when any
shared measurement id regressed by more than the threshold (default
10%). ``norm`` is ``median_ns / calib_ns`` against a fixed scalar
calibration workload, so the comparison cancels host-speed differences
to first order and a baseline committed on one machine is meaningful on
another.

Usage:
    check_perf.py BASELINE.json CURRENT.json [--max-regression 0.10]
                  [--allow-missing] [--floor KEY:MIN ...]

Measurement ids present only in the current report are listed but do not
fail the gate (they appear when a bench adds cases). Baseline ids
*absent* from the current report FAIL the gate by default — deleting or
renaming a hot-path probe must not silently pass. Pass
``--allow-missing`` when retiring a measurement on purpose (and commit a
refreshed baseline in the same change).

``--floor KEY:MIN`` (repeatable) additionally requires the *current*
report's ``derived[KEY]`` to parse as a number >= MIN — an absolute
quality gate on top of the relative regression check (e.g. the blocked
apply speedup at n=128 must stay above its acceptance floor regardless
of how the baseline moves).
"""

import argparse
import json
import sys


def load_report(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "neuropulsim-bench/v1":
        sys.exit(f"{path}: not a neuropulsim-bench/v1 report")
    if doc.get("profile"):
        # --profile runs skip calibration, so their norms are raw
        # nanoseconds — meaningless against a calibrated baseline.
        sys.exit(f"{path}: profile-mode report (uncalibrated), refusing to gate on it")
    return doc


def load_norms(path):
    return {m["id"]: m["norm"] for m in load_report(path)["measurements"]}


def parse_floor(spec):
    key, sep, minimum = spec.rpartition(":")
    if not sep or not key:
        sys.exit(f"--floor {spec!r}: expected KEY:MIN")
    try:
        return key, float(minimum)
    except ValueError:
        sys.exit(f"--floor {spec!r}: MIN must be a number")


def check_floors(current_path, floors):
    """Absolute minimums on the current report's derived values."""
    derived = load_report(current_path).get("derived", {})
    failures = []
    for key, minimum in floors:
        raw = derived.get(key)
        if raw is None:
            failures.append(f"derived key {key!r} absent from current report")
            continue
        try:
            value = float(raw)
        except (TypeError, ValueError):
            failures.append(f"derived[{key!r}] = {raw!r} is not numeric")
            continue
        verdict = "BELOW FLOOR" if value < minimum else "ok"
        print(f"floor {key}: {value} (min {minimum}) {verdict}")
        if value < minimum:
            failures.append(f"derived[{key!r}] = {value} below floor {minimum}")
    return failures


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument(
        "--max-regression",
        type=float,
        default=0.10,
        help="allowed fractional slowdown per measurement (default 0.10)",
    )
    ap.add_argument(
        "--allow-missing",
        action="store_true",
        help="tolerate baseline ids absent from the current report "
        "(use when deliberately retiring a measurement)",
    )
    ap.add_argument(
        "--floor",
        action="append",
        default=[],
        metavar="KEY:MIN",
        help="require the current report's derived[KEY] >= MIN "
        "(repeatable; absolute gate independent of the baseline)",
    )
    args = ap.parse_args()

    floor_failures = check_floors(args.current, [parse_floor(s) for s in args.floor])
    if floor_failures:
        sys.exit("; ".join(floor_failures))

    base = load_norms(args.baseline)
    cur = load_norms(args.current)
    shared = sorted(set(base) & set(cur))
    if not shared:
        sys.exit("no shared measurement ids between baseline and current")
    for mid in sorted(set(cur) - set(base)):
        print(f"note: {mid} only in current (new measurement), skipped")

    missing = sorted(set(base) - set(cur))
    for mid in missing:
        print(f"MISSING: baseline id {mid} absent from current run")
    if missing and not args.allow_missing:
        sys.exit(
            f"{len(missing)} baseline measurement(s) missing from the "
            "current report (a deleted or renamed probe would dodge the "
            "gate); rerun with --allow-missing if this is deliberate"
        )

    failures = []
    for mid in shared:
        if base[mid] <= 0:
            # A zero (or negative) baseline norm carries no signal and
            # would divide-by-zero; surface it instead of crashing.
            print(f"note: {mid} has non-positive baseline norm {base[mid]}, skipped")
            continue
        ratio = cur[mid] / base[mid]
        flag = " REGRESSED" if ratio > 1.0 + args.max_regression else ""
        print(f"{mid}: norm {base[mid]:.6f} -> {cur[mid]:.6f} ({ratio:.2f}x){flag}")
        if flag:
            failures.append((mid, ratio))

    if failures:
        worst = max(failures, key=lambda f: f[1])
        sys.exit(
            f"{len(failures)} measurement(s) regressed beyond "
            f"{args.max_regression:.0%}; worst: {worst[0]} at {worst[1]:.2f}x"
        )
    print(f"ok: {len(shared)} measurements within {args.max_regression:.0%}")


if __name__ == "__main__":
    main()

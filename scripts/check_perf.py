#!/usr/bin/env python3
"""Perf-regression gate for the unified ``neuropulsim-bench/v1`` schema.

Compares the machine-normalized cost (``measurements[].norm``) of a
fresh bench report against a committed baseline and fails when any
shared measurement id regressed by more than the threshold (default
10%). ``norm`` is ``median_ns / calib_ns`` against a fixed scalar
calibration workload, so the comparison cancels host-speed differences
to first order and a baseline committed on one machine is meaningful on
another.

Usage:
    check_perf.py BASELINE.json CURRENT.json [--max-regression 0.10]
                  [--allow-missing]

Measurement ids present only in the current report are listed but do not
fail the gate (they appear when a bench adds cases). Baseline ids
*absent* from the current report FAIL the gate by default — deleting or
renaming a hot-path probe must not silently pass. Pass
``--allow-missing`` when retiring a measurement on purpose (and commit a
refreshed baseline in the same change).
"""

import argparse
import json
import sys


def load_norms(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "neuropulsim-bench/v1":
        sys.exit(f"{path}: not a neuropulsim-bench/v1 report")
    if doc.get("profile"):
        # --profile runs skip calibration, so their norms are raw
        # nanoseconds — meaningless against a calibrated baseline.
        sys.exit(f"{path}: profile-mode report (uncalibrated), refusing to gate on it")
    return {m["id"]: m["norm"] for m in doc["measurements"]}


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument(
        "--max-regression",
        type=float,
        default=0.10,
        help="allowed fractional slowdown per measurement (default 0.10)",
    )
    ap.add_argument(
        "--allow-missing",
        action="store_true",
        help="tolerate baseline ids absent from the current report "
        "(use when deliberately retiring a measurement)",
    )
    args = ap.parse_args()

    base = load_norms(args.baseline)
    cur = load_norms(args.current)
    shared = sorted(set(base) & set(cur))
    if not shared:
        sys.exit("no shared measurement ids between baseline and current")
    for mid in sorted(set(cur) - set(base)):
        print(f"note: {mid} only in current (new measurement), skipped")

    missing = sorted(set(base) - set(cur))
    for mid in missing:
        print(f"MISSING: baseline id {mid} absent from current run")
    if missing and not args.allow_missing:
        sys.exit(
            f"{len(missing)} baseline measurement(s) missing from the "
            "current report (a deleted or renamed probe would dodge the "
            "gate); rerun with --allow-missing if this is deliberate"
        )

    failures = []
    for mid in shared:
        if base[mid] <= 0:
            # A zero (or negative) baseline norm carries no signal and
            # would divide-by-zero; surface it instead of crashing.
            print(f"note: {mid} has non-positive baseline norm {base[mid]}, skipped")
            continue
        ratio = cur[mid] / base[mid]
        flag = " REGRESSED" if ratio > 1.0 + args.max_regression else ""
        print(f"{mid}: norm {base[mid]:.6f} -> {cur[mid]:.6f} ({ratio:.2f}x){flag}")
        if flag:
            failures.append((mid, ratio))

    if failures:
        worst = max(failures, key=lambda f: f[1])
        sys.exit(
            f"{len(failures)} measurement(s) regressed beyond "
            f"{args.max_regression:.0%}; worst: {worst[0]} at {worst[1]:.2f}x"
        )
    print(f"ok: {len(shared)} measurements within {args.max_regression:.0%}")


if __name__ == "__main__":
    main()

//! Scalar Huang–Abraham ABFT reference: checksum rows computed
//! column-at-a-time with plain accumulators, and a from-the-paper
//! syndrome check. Mirrors the algorithm in Huang & Abraham (1984),
//! not the implementation in `neuropulsim-core`.

use neuropulsim_linalg::RMatrix;

/// Reference verdict for one checked output vector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RefVerdict {
    /// Both syndromes within tolerance.
    Clean,
    /// A single-element error located at `row` with magnitude `delta`.
    Correctable {
        /// Zero-based row index of the corrupted element.
        row: usize,
        /// Error value to subtract from `y[row]`.
        delta: f64,
    },
    /// Syndromes inconsistent with any single-element error.
    Corrupt,
}

/// Scalar checksum rows of a square weight matrix: the plain column
/// sums `1ᵀW` and the weighted sums `kᵀW` with `k_i = i + 1`.
///
/// # Panics
///
/// Panics if the matrix is not square or is empty.
pub struct RefChecksums {
    n: usize,
    plain: Vec<f64>,
    weighted: Vec<f64>,
}

impl RefChecksums {
    /// Builds the checksum rows, one column at a time.
    ///
    /// # Panics
    ///
    /// Panics if `w` is not square or has zero size.
    pub fn new(w: &RMatrix) -> Self {
        assert!(
            w.rows() == w.cols() && w.rows() > 0,
            "square matrix required"
        );
        let n = w.rows();
        let mut plain = vec![0.0; n];
        let mut weighted = vec![0.0; n];
        for j in 0..n {
            let mut p = 0.0;
            let mut q = 0.0;
            for i in 0..n {
                p += w[(i, j)];
                q += (i + 1) as f64 * w[(i, j)];
            }
            plain[j] = p;
            weighted[j] = q;
        }
        RefChecksums { n, plain, weighted }
    }

    /// Plain checksum row `1ᵀW`.
    pub fn plain(&self) -> &[f64] {
        &self.plain
    }

    /// Weighted checksum row `kᵀW`.
    pub fn weighted(&self) -> &[f64] {
        &self.weighted
    }

    /// Expected `(1ᵀW·x, kᵀW·x)` for an input vector.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong length.
    pub fn expected(&self, x: &[f64]) -> (f64, f64) {
        assert_eq!(x.len(), self.n, "input length mismatch");
        let mut c = 0.0;
        let mut cw = 0.0;
        for (j, &xj) in x.iter().enumerate() {
            c += self.plain[j] * xj;
            cw += self.weighted[j] * xj;
        }
        (c, cw)
    }

    /// Checks an output vector against the encoded checksums.
    ///
    /// Computes the syndromes `s1 = 1ᵀy − 1ᵀW·x` and
    /// `s2 = kᵀy − kᵀW·x`. Both near zero means [`RefVerdict::Clean`];
    /// a consistent ratio `s2/s1` that rounds to a valid row index
    /// means a single error of magnitude `s1` at that row; anything
    /// else (including non-finite syndromes) is [`RefVerdict::Corrupt`].
    ///
    /// # Panics
    ///
    /// Panics if `x` or `y` has the wrong length.
    pub fn check(&self, x: &[f64], y: &[f64], tolerance: f64) -> RefVerdict {
        assert_eq!(y.len(), self.n, "output length mismatch");
        let (c, cw) = self.expected(x);
        let mut s1 = 0.0;
        let mut s2 = 0.0;
        for (i, &yi) in y.iter().enumerate() {
            s1 += yi;
            s2 += (i + 1) as f64 * yi;
        }
        s1 -= c;
        s2 -= cw;
        if !s1.is_finite() || !s2.is_finite() {
            return RefVerdict::Corrupt;
        }
        if s1.abs() <= tolerance && s2.abs() <= tolerance * self.n as f64 {
            return RefVerdict::Clean;
        }
        if s1.abs() > tolerance {
            let ratio = s2 / s1;
            let row = ratio.round();
            if row >= 1.0
                && row <= self.n as f64
                && (s2 - row * s1).abs() <= tolerance * (self.n + 1) as f64
            {
                return RefVerdict::Correctable {
                    row: row as usize - 1,
                    delta: s1,
                };
            }
        }
        RefVerdict::Corrupt
    }

    /// Applies a correctable verdict in place; no-op otherwise.
    pub fn correct(y: &mut [f64], verdict: RefVerdict) {
        if let RefVerdict::Correctable { row, delta } = verdict {
            y[row] -= delta;
        }
    }
}

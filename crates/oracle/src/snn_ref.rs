//! Scalar leaky integrate-and-fire and STDP references: one neuron at
//! a time, the forward-Euler update written straight from the membrane
//! equation `dv/dt = input − v/τ`.

/// Reference LIF neuron state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefLif {
    /// Membrane time constant τ.
    pub tau: f64,
    /// Firing threshold.
    pub threshold: f64,
    /// Refractory period after a spike, in the same units as `dt`.
    pub refractory: f64,
    /// Membrane potential.
    pub potential: f64,
    /// Remaining refractory time; the neuron is clamped to rest while
    /// this is positive.
    pub refractory_left: f64,
}

impl RefLif {
    /// A resting neuron with the given parameters.
    pub fn new(tau: f64, threshold: f64, refractory: f64) -> Self {
        RefLif {
            tau,
            threshold,
            refractory,
            potential: 0.0,
            refractory_left: 0.0,
        }
    }

    /// Forward-Euler step of the membrane equation; returns `true` on a
    /// spike. During refractory time the potential is clamped to rest
    /// and the input is ignored.
    pub fn step(&mut self, input: f64, dt: f64) -> bool {
        if self.refractory_left > 0.0 {
            self.refractory_left -= dt;
            self.potential = 0.0;
            return false;
        }
        self.potential += (input - self.potential / self.tau) * dt;
        if self.potential >= self.threshold {
            self.potential = 0.0;
            self.refractory_left = self.refractory;
            true
        } else {
            false
        }
    }
}

/// Reference pair-based STDP weight update, written from the textbook
/// exponential window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefStdp {
    /// Potentiation amplitude.
    pub a_plus: f64,
    /// Depression amplitude.
    pub a_minus: f64,
    /// Potentiation time constant.
    pub tau_plus: f64,
    /// Depression time constant.
    pub tau_minus: f64,
}

impl RefStdp {
    /// Weight change for a pre→post spike-timing difference
    /// `dt = t_post − t_pre`: potentiation `A₊·e^{−dt/τ₊}` for causal
    /// pairs, depression `−A₋·e^{dt/τ₋}` for anti-causal pairs, zero
    /// at exact coincidence.
    pub fn delta_w(&self, dt: f64) -> f64 {
        if dt == 0.0 {
            0.0
        } else if dt > 0.0 {
            self.a_plus * (-dt / self.tau_plus).exp()
        } else {
            -self.a_minus * (dt / self.tau_minus).exp()
        }
    }

    /// The weight change quantized onto a PCM conductance grid with
    /// `levels` levels spanning [0, 1]: the number of programming steps
    /// (positive = SET steps), rounded to nearest.
    pub fn steps(&self, dt: f64, levels: usize) -> i32 {
        let dw = self.delta_w(dt);
        let step_size = 1.0 / ((levels.max(2) - 1) as f64);
        (dw / step_size).round() as i32
    }
}

/// Scalar reference for the event-driven sparse SNN engine
/// (`snn::sparse::EventNet`): an eager, edge-list simulator written
/// straight from the tick-pipeline contract, with no CSR storage, no
/// fire queue and no lazy leak — every neuron steps every tick, every
/// edge is scanned every tick.
///
/// The per-level weight grid is an *input* (its derivation from the PCM
/// material model is covered by the `pcm` conformance domain), so this
/// reference is independent of the engine's synapse bookkeeping: it
/// re-derives drive accumulation, spike decisions, the STDP phase order
/// and level saturation from scratch.
#[derive(Debug, Clone)]
pub struct RefSparseNet {
    dt: f64,
    rule: RefStdp,
    plastic: bool,
    /// Weight of each quantized level (0 = strongest).
    level_weights: Vec<f64>,
    /// Deduplicated edges, sorted by `(source, target)`, no self-loops.
    edges: Vec<(u32, u32)>,
    /// Current level per edge, same order as `edges`.
    levels: Vec<u8>,
    neurons: Vec<RefLif>,
    /// Last fire tick per neuron (−1 = never fired).
    last_fire: Vec<i64>,
    fired_prev: Vec<bool>,
    tick: i64,
}

impl RefSparseNet {
    /// Builds the reference simulator. `edges` may contain duplicates
    /// and self-loops (both dropped, mirroring the engine's builder);
    /// `init_levels` assigns starting levels per surviving edge in
    /// sorted order, repeating cyclically (empty means level 0).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        neurons: usize,
        tau: f64,
        threshold: f64,
        refractory: f64,
        dt: f64,
        rule: RefStdp,
        plastic: bool,
        level_weights: &[f64],
        edges: &[(u32, u32)],
        init_levels: &[u8],
    ) -> Self {
        let mut sorted: Vec<(u32, u32)> = edges.iter().copied().filter(|&(s, t)| s != t).collect();
        sorted.sort_unstable();
        sorted.dedup();
        let max_level = (level_weights.len() - 1) as u8;
        let levels: Vec<u8> = (0..sorted.len())
            .map(|e| {
                if init_levels.is_empty() {
                    0
                } else {
                    init_levels[e % init_levels.len()].min(max_level)
                }
            })
            .collect();
        RefSparseNet {
            dt,
            rule,
            plastic,
            level_weights: level_weights.to_vec(),
            edges: sorted,
            levels,
            neurons: (0..neurons)
                .map(|_| RefLif::new(tau, threshold, refractory))
                .collect(),
            last_fire: vec![-1; neurons],
            fired_prev: vec![false; neurons],
            tick: 0,
        }
    }

    /// Membrane potentials, always settled (every neuron steps every
    /// tick).
    pub fn potentials(&self) -> Vec<f64> {
        self.neurons.iter().map(|n| n.potential).collect()
    }

    /// Last fire tick per neuron (−1 = never fired).
    pub fn fire_ledger(&self) -> &[i64] {
        &self.last_fire
    }

    /// Current level per edge, in `(source, target)`-sorted order.
    pub fn levels(&self) -> &[u8] {
        &self.levels
    }

    fn apply_ref_steps(&mut self, e: usize, steps: i32) {
        let max_level = (self.level_weights.len() - 1) as i32;
        let next = (self.levels[e] as i32 - steps).clamp(0, max_level);
        self.levels[e] = next as u8;
    }

    /// Advances one tick and returns the fired neurons, ascending.
    ///
    /// Drive accumulates per target in ascending-source order (the edge
    /// list is sorted), injections apply afterwards in schedule order,
    /// every neuron then takes one forward-Euler step, and STDP runs
    /// potentiation-phase-then-depression-phase before the ledger
    /// records this tick's spikes.
    pub fn tick(&mut self, injections: &[(u32, f64)]) -> Vec<u32> {
        let n = self.neurons.len();
        let t = self.tick;
        let mut drive = vec![0.0f64; n];
        for (e, &(s, tgt)) in self.edges.iter().enumerate() {
            if self.fired_prev[s as usize] {
                drive[tgt as usize] += self.level_weights[self.levels[e] as usize];
            }
        }
        for &(j, amount) in injections {
            drive[j as usize] += amount;
        }
        let mut fired = Vec::new();
        for (j, neuron) in self.neurons.iter_mut().enumerate() {
            if neuron.step(drive[j], self.dt) {
                fired.push(j as u32);
            }
        }
        if self.plastic && !fired.is_empty() {
            let level_count = self.level_weights.len();
            // Potentiation phase: incoming edges of each firing neuron,
            // ascending source (the sorted edge list scans that way).
            for &m in &fired {
                for e in 0..self.edges.len() {
                    let (i, tgt) = self.edges[e];
                    if tgt != m {
                        continue;
                    }
                    let tp = self.last_fire[i as usize];
                    if tp >= 0 {
                        let delta = (t - tp) as f64 * self.dt;
                        let steps = self.rule.steps(delta, level_count);
                        self.apply_ref_steps(e, steps);
                    }
                }
            }
            // Depression phase: outgoing edges of each firing neuron.
            for &m in &fired {
                for e in 0..self.edges.len() {
                    let (src, j) = self.edges[e];
                    if src != m {
                        continue;
                    }
                    let tp = self.last_fire[j as usize];
                    if tp >= 0 {
                        let delta = (tp - t) as f64 * self.dt;
                        let steps = self.rule.steps(delta, level_count);
                        self.apply_ref_steps(e, steps);
                    }
                }
            }
        }
        self.fired_prev.fill(false);
        for &j in &fired {
            self.last_fire[j as usize] = t;
            self.fired_prev[j as usize] = true;
        }
        self.tick = t + 1;
        fired
    }
}

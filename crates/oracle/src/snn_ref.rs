//! Scalar leaky integrate-and-fire and STDP references: one neuron at
//! a time, the forward-Euler update written straight from the membrane
//! equation `dv/dt = input − v/τ`.

/// Reference LIF neuron state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefLif {
    /// Membrane time constant τ.
    pub tau: f64,
    /// Firing threshold.
    pub threshold: f64,
    /// Refractory period after a spike, in the same units as `dt`.
    pub refractory: f64,
    /// Membrane potential.
    pub potential: f64,
    /// Remaining refractory time; the neuron is clamped to rest while
    /// this is positive.
    pub refractory_left: f64,
}

impl RefLif {
    /// A resting neuron with the given parameters.
    pub fn new(tau: f64, threshold: f64, refractory: f64) -> Self {
        RefLif {
            tau,
            threshold,
            refractory,
            potential: 0.0,
            refractory_left: 0.0,
        }
    }

    /// Forward-Euler step of the membrane equation; returns `true` on a
    /// spike. During refractory time the potential is clamped to rest
    /// and the input is ignored.
    pub fn step(&mut self, input: f64, dt: f64) -> bool {
        if self.refractory_left > 0.0 {
            self.refractory_left -= dt;
            self.potential = 0.0;
            return false;
        }
        self.potential += (input - self.potential / self.tau) * dt;
        if self.potential >= self.threshold {
            self.potential = 0.0;
            self.refractory_left = self.refractory;
            true
        } else {
            false
        }
    }
}

/// Reference pair-based STDP weight update, written from the textbook
/// exponential window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefStdp {
    /// Potentiation amplitude.
    pub a_plus: f64,
    /// Depression amplitude.
    pub a_minus: f64,
    /// Potentiation time constant.
    pub tau_plus: f64,
    /// Depression time constant.
    pub tau_minus: f64,
}

impl RefStdp {
    /// Weight change for a pre→post spike-timing difference
    /// `dt = t_post − t_pre`: potentiation `A₊·e^{−dt/τ₊}` for causal
    /// pairs, depression `−A₋·e^{dt/τ₋}` for anti-causal pairs, zero
    /// at exact coincidence.
    pub fn delta_w(&self, dt: f64) -> f64 {
        if dt == 0.0 {
            0.0
        } else if dt > 0.0 {
            self.a_plus * (-dt / self.tau_plus).exp()
        } else {
            -self.a_minus * (dt / self.tau_minus).exp()
        }
    }

    /// The weight change quantized onto a PCM conductance grid with
    /// `levels` levels spanning [0, 1]: the number of programming steps
    /// (positive = SET steps), rounded to nearest.
    pub fn steps(&self, dt: f64, levels: usize) -> i32 {
        let dw = self.delta_w(dt);
        let step_size = 1.0 / ((levels.max(2) - 1) as f64);
        (dw / step_size).round() as i32
    }
}

//! Textbook mesh reconstruction: every MZI block becomes a full dense
//! two-level matrix built from the closed-form Clements cell, and the
//! program's transfer matrix is the naive product of those matrices.
//! No `CompiledMesh` plans, no in-place two-level updates.

use crate::linalg_ref::{mul_mat_ref, mul_vec_ref};
use neuropulsim_core::program::MeshProgram;
use neuropulsim_linalg::{CMatrix, CVector, C64};

/// Closed-form 2×2 transfer matrix of an ideal Clements MZI cell with
/// internal phase `theta` and input phase `phi`, row-major
/// `(a, b, c, d)`:
///
/// `i·e^{iθ/2} · [[e^{iφ}·sin(θ/2), cos(θ/2)], [e^{iφ}·cos(θ/2), −sin(θ/2)]]`
pub fn mzi_elements_ref(theta: f64, phi: f64) -> (C64, C64, C64, C64) {
    let g = C64::I * C64::cis(theta / 2.0);
    let s = (theta / 2.0).sin();
    let c = (theta / 2.0).cos();
    let e = C64::cis(phi);
    (g * e * s, g * c, g * e * c, -(g * s))
}

/// Dense n×n embedding of a 2×2 block acting on adjacent modes
/// `(m, m+1)`: the identity with four entries replaced.
pub fn two_level_ref(n: usize, m: usize, block: (C64, C64, C64, C64)) -> CMatrix {
    let mut u = CMatrix::identity(n);
    u[(m, m)] = block.0;
    u[(m, m + 1)] = block.1;
    u[(m + 1, m)] = block.2;
    u[(m + 1, m + 1)] = block.3;
    u
}

/// Reference transfer matrix of a mesh program: naive dense products of
/// full two-level matrices, in block order, then the diagonal output
/// phase screen applied row by row.
pub fn transfer_matrix_ref(program: &MeshProgram) -> CMatrix {
    let n = program.modes();
    let mut u = CMatrix::identity(n);
    for block in program.blocks() {
        let cell = two_level_ref(n, block.mode, mzi_elements_ref(block.theta, block.phi));
        u = mul_mat_ref(&cell, &u);
    }
    let mut out = u;
    for (i, &ph) in program.output_phases().iter().enumerate() {
        let phase = C64::cis(ph);
        for j in 0..n {
            out[(i, j)] *= phase;
        }
    }
    out
}

/// Reference application of a mesh program to an input vector: build
/// the full reference transfer matrix, then one naive mat–vec.
///
/// # Panics
///
/// Panics if `x` does not have one entry per mode.
pub fn apply_ref(program: &MeshProgram, x: &CVector) -> CVector {
    mul_vec_ref(&transfer_matrix_ref(program), x)
}

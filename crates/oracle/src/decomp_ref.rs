//! Textbook mesh reconstruction: every MZI block becomes a full dense
//! two-level matrix built from the closed-form Clements cell, and the
//! program's transfer matrix is the naive product of those matrices.
//! No `CompiledMesh` plans, no in-place two-level updates.

use crate::linalg_ref::{mul_mat_ref, mul_vec_ref};
use neuropulsim_core::layered::LayeredMesh;
use neuropulsim_core::program::MeshProgram;
use neuropulsim_linalg::{CMatrix, CVector, C64};

/// Closed-form 2×2 transfer matrix of an ideal Clements MZI cell with
/// internal phase `theta` and input phase `phi`, row-major
/// `(a, b, c, d)`:
///
/// `i·e^{iθ/2} · [[e^{iφ}·sin(θ/2), cos(θ/2)], [e^{iφ}·cos(θ/2), −sin(θ/2)]]`
pub fn mzi_elements_ref(theta: f64, phi: f64) -> (C64, C64, C64, C64) {
    let g = C64::I * C64::cis(theta / 2.0);
    let s = (theta / 2.0).sin();
    let c = (theta / 2.0).cos();
    let e = C64::cis(phi);
    (g * e * s, g * c, g * e * c, -(g * s))
}

/// Dense n×n embedding of a 2×2 block acting on adjacent modes
/// `(m, m+1)`: the identity with four entries replaced.
pub fn two_level_ref(n: usize, m: usize, block: (C64, C64, C64, C64)) -> CMatrix {
    let mut u = CMatrix::identity(n);
    u[(m, m)] = block.0;
    u[(m, m + 1)] = block.1;
    u[(m + 1, m)] = block.2;
    u[(m + 1, m + 1)] = block.3;
    u
}

/// Reference transfer matrix of a mesh program: naive dense products of
/// full two-level matrices, in block order, then the diagonal output
/// phase screen applied row by row.
pub fn transfer_matrix_ref(program: &MeshProgram) -> CMatrix {
    let n = program.modes();
    let mut u = CMatrix::identity(n);
    for block in program.blocks() {
        let cell = two_level_ref(n, block.mode, mzi_elements_ref(block.theta, block.phi));
        u = mul_mat_ref(&cell, &u);
    }
    let mut out = u;
    for (i, &ph) in program.output_phases().iter().enumerate() {
        let phase = C64::cis(ph);
        for j in 0..n {
            out[(i, j)] *= phase;
        }
    }
    out
}

/// Reference application of a mesh program to an input vector: build
/// the full reference transfer matrix, then one naive mat–vec.
///
/// # Panics
///
/// Panics if `x` does not have one entry per mode.
pub fn apply_ref(program: &MeshProgram, x: &CVector) -> CVector {
    mul_vec_ref(&transfer_matrix_ref(program), x)
}

/// Reference 2×2 elements of a compacted (Bell–Walmsley) cell, built by
/// *numeric composition* of ideal 50:50 coupler matrices —
/// `C · diag(e^{iθ}, 1) · C · diag(e^{iφ}, 1)` with
/// `C = (1/√2)·[[1, i], [i, 1]]` — deliberately the opposite evaluation
/// strategy from the fast path's closed form, so the two derivations
/// are independent.
pub fn compact_elements_ref(theta: f64, phi: f64) -> (C64, C64, C64, C64) {
    let h = C64::real(std::f64::consts::FRAC_1_SQRT_2);
    let (ca, cb, cc, cd) = (h, h * C64::I, h * C64::I, h);
    let e_phi = C64::cis(phi);
    let e_theta = C64::cis(theta);
    // M1 = C * diag(e^{iφ}, 1); M2 = C * diag(e^{iθ}, 1); T = M2 * M1.
    let m1 = (ca * e_phi, cb, cc * e_phi, cd);
    let m2 = (ca * e_theta, cb, cc * e_theta, cd);
    (
        m2.0 * m1.0 + m2.1 * m1.2,
        m2.0 * m1.1 + m2.1 * m1.3,
        m2.2 * m1.0 + m2.3 * m1.2,
        m2.2 * m1.1 + m2.3 * m1.3,
    )
}

/// Reference transfer matrix of a mesh program realized with compacted
/// cells: naive dense products of two-level embeddings of
/// [`compact_elements_ref`], then the output phase screen.
pub fn compact_transfer_matrix_ref(program: &MeshProgram) -> CMatrix {
    let n = program.modes();
    let mut u = CMatrix::identity(n);
    for block in program.blocks() {
        let cell = two_level_ref(n, block.mode, compact_elements_ref(block.theta, block.phi));
        u = mul_mat_ref(&cell, &u);
    }
    let mut out = u;
    for (i, &ph) in program.output_phases().iter().enumerate() {
        let phase = C64::cis(ph);
        for j in 0..n {
            out[(i, j)] *= phase;
        }
    }
    out
}

/// Dense diagonal phase-column matrix `diag(e^{i·phases})`.
fn phase_column_ref(phases: &[f64]) -> CMatrix {
    let mut u = CMatrix::identity(phases.len());
    for (i, &p) in phases.iter().enumerate() {
        u[(i, i)] = C64::cis(p);
    }
    u
}

/// Reference transfer matrix of a layered (Fldzhyan) mesh: every phase
/// column and every individual coupler becomes a full dense matrix and
/// the result is their naive product, input to output. Coupler `p` of
/// layer `l` acts on modes `(l % 2 + 2p, l % 2 + 2p + 1)` with the
/// lossless directional-coupler cell
/// `[[cos κ, i·sin κ], [i·sin κ, cos κ]]`, honoring any per-coupler
/// imbalance recorded in the mesh.
pub fn layered_transfer_matrix_ref(mesh: &LayeredMesh) -> CMatrix {
    let n = mesh.modes();
    let mut u = CMatrix::identity(n);
    for (l, (phases, kappas)) in mesh
        .phase_layers()
        .iter()
        .zip(mesh.coupler_kappas())
        .enumerate()
    {
        u = mul_mat_ref(&phase_column_ref(phases), &u);
        let offset = l % 2;
        for (p, &kappa) in kappas.iter().enumerate() {
            let c = C64::real(kappa.cos());
            let s = C64::new(0.0, kappa.sin());
            let cell = two_level_ref(n, offset + 2 * p, (c, s, s, c));
            u = mul_mat_ref(&cell, &u);
        }
    }
    mul_mat_ref(&phase_column_ref(mesh.output_phases()), &u)
}

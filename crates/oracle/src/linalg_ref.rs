//! Naive dense complex linear algebra: the textbook triple loop, one
//! scalar accumulator per output element, no blocking, no SoA layout.

use neuropulsim_linalg::{CMatrix, CVector, C64};

/// Reference complex matrix product `a * b` via per-element dot
/// products.
///
/// # Panics
///
/// Panics if the inner dimensions disagree.
pub fn mul_mat_ref(a: &CMatrix, b: &CMatrix) -> CMatrix {
    assert_eq!(a.cols(), b.rows(), "dimension mismatch");
    CMatrix::from_fn(a.rows(), b.cols(), |i, j| {
        let mut acc = C64::new(0.0, 0.0);
        for k in 0..a.cols() {
            acc += a[(i, k)] * b[(k, j)];
        }
        acc
    })
}

/// Reference complex matrix–vector product via per-row dot products.
///
/// # Panics
///
/// Panics if `x` is shorter than the matrix width.
pub fn mul_vec_ref(a: &CMatrix, x: &CVector) -> CVector {
    assert_eq!(a.cols(), x.len(), "dimension mismatch");
    let mut y = CVector::zeros(a.rows());
    for i in 0..a.rows() {
        let mut acc = C64::new(0.0, 0.0);
        for k in 0..a.cols() {
            acc += a[(i, k)] * x[k];
        }
        y[i] = acc;
    }
    y
}

/// Largest entrywise absolute difference between two equal-shape
/// matrices.
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn max_entry_error(a: &CMatrix, b: &CMatrix) -> f64 {
    assert_eq!(a.rows(), b.rows(), "shape mismatch");
    assert_eq!(a.cols(), b.cols(), "shape mismatch");
    let mut worst = 0.0f64;
    for i in 0..a.rows() {
        for j in 0..a.cols() {
            worst = worst.max((a[(i, j)] - b[(i, j)]).abs());
        }
    }
    worst
}

/// Largest entrywise absolute difference between two equal-length
/// vectors.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn max_vec_error(a: &CVector, b: &CVector) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    let mut worst = 0.0f64;
    for i in 0..a.len() {
        worst = worst.max((a[i] - b[i]).abs());
    }
    worst
}

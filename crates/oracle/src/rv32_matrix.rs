//! Named instruction-matrix conformance suite for the RV32IM core.
//!
//! Where [`crate::harness`] fuzzes random instruction soups, this module
//! pins down *named* corner cases — one small program per architectural
//! edge (shift-amount masking, division by zero, sub-word store
//! merging, branch polarity, CSR counters, …) — and runs each program
//! twice against the reference stepper ([`crate::rv32_ref`]):
//!
//! 1. **Precise lockstep**: the production [`Cpu`] single-steps with
//!    its block cache disabled, and after *every* retired instruction
//!    the full architectural state (pc, all 32 registers, `mcycle`,
//!    `minstret`) must equal the reference hart's.
//! 2. **Cached replay**: a fresh [`Cpu`] with the decoded-block cache
//!    and trace compiler enabled runs the same program to completion;
//!    its final state and halt cause must match the reference.
//!
//! The same machinery extends to whole ELF binaries:
//! [`lockstep_elf`] loads an ELF32 executable into both harts, steps
//! them instruction-for-instruction, and services syscalls through two
//! independent [`SyscallShim`]s whose answers must agree.

use neuropulsim_riscv::asm::assemble;
use neuropulsim_riscv::bus::{Bus, FlatMemory};
use neuropulsim_riscv::cpu::{Cpu, Halt};
use neuropulsim_sim::loader::{parse_elf32, SyscallShim, STACK_RESERVE};
use neuropulsim_sim::system::DRAM_SIZE;

use crate::rv32_ref::{RefCpu, RefHalt, RefMemory};

/// One named conformance case.
pub struct MatrixCase {
    /// Stable case name (used in reports and failure messages).
    pub name: &'static str,
    /// Assembly source; must terminate with `ecall` or `ebreak`.
    pub source: &'static str,
}

/// The full instruction matrix: every named corner case.
pub fn cases() -> Vec<MatrixCase> {
    let case = |name, source| MatrixCase { name, source };
    vec![
        // ---- immediate ALU --------------------------------------------
        case("addi_basic", "li a0, 5\naddi a0, a0, 100\necall"),
        case("addi_signed_wrap", "li a0, 0x7fffffff\naddi a0, a0, 1\necall"),
        case("addi_min_imm", "li a0, 0\naddi a0, a0, -2048\necall"),
        case("andi_sign_extended", "li a0, 0xf0f0f0f0\nandi a1, a0, -16\necall"),
        case("ori_sign_extended", "li a0, 0x12345678\nori a1, a0, -256\necall"),
        case("xori_as_not", "li a0, 0xdeadbeef\nxori a1, a0, -1\necall"),
        case("slti_boundaries", "li a0, -1\nslti a1, a0, 0\nslti a2, a0, -1\nslti a3, a0, -2\necall"),
        case("sltiu_minus_one_imm", "li a0, 5\nsltiu a1, a0, -1\nsltiu a2, a0, 5\necall"),
        case("slli_to_sign_bit", "li a0, 1\nslli a1, a0, 31\nslli a2, a0, 0\necall"),
        case("srli_from_sign_bit", "li a0, 0x80000000\nsrli a1, a0, 31\nsrli a2, a0, 1\necall"),
        case("srai_sign_fill", "li a0, 0x80000000\nsrai a1, a0, 4\nsrai a2, a0, 31\necall"),
        // ---- register ALU ---------------------------------------------
        case("add_unsigned_wrap", "li a0, 0xffffffff\nli a1, 2\nadd a2, a0, a1\necall"),
        case("sub_borrow", "li a0, 0\nli a1, 1\nsub a2, a0, a1\necall"),
        case("sll_amount_masked", "li a0, 1\nli a1, 33\nsll a2, a0, a1\necall"),
        case("srl_amount_masked", "li a0, 0x80000000\nli a1, 63\nsrl a2, a0, a1\necall"),
        case("sra_amount_masked", "li a0, 0x80000000\nli a1, 32\nsra a2, a0, a1\necall"),
        case("slt_signed_both_ways", "li a0, -5\nli a1, 3\nslt a2, a0, a1\nslt a3, a1, a0\necall"),
        case("sltu_negative_is_big", "li a0, -5\nli a1, 3\nsltu a2, a0, a1\nsltu a3, a1, a0\necall"),
        case(
            "and_or_xor",
            "li a0, 0xff00ff00\nli a1, 0x0ff00ff0\nand a2, a0, a1\nor a3, a0, a1\nxor a4, a0, a1\necall",
        ),
        // ---- upper immediates and jumps -------------------------------
        case("lui_extremes", "lui a0, 0xfffff\nlui a1, 1\necall"),
        case("auipc_offset", "auipc a0, 0\nauipc a1, 0x1000\necall"),
        case(
            "jal_writes_link",
            "jal ra, over\naddi a0, a0, 100\nover:\nmv a1, ra\necall",
        ),
        // The assembler takes only numeric jalr targets, so the two
        // jalr cases compute addresses with auipc; the comments give
        // the pc of each instruction (the program loads at 0).
        case(
            "jalr_clears_bit0",
            "auipc t0, 0\naddi t0, t0, 17\njalr ra, 0(t0)\naddi a0, a0, 100\nmv a1, ra\necall",
        ),
        case(
            "jalr_negative_offset",
            "auipc t0, 0\naddi t0, t0, 20\njalr ra, -4(t0)\naddi a0, a0, 7\necall",
        ),
        case(
            "call_ret_roundtrip",
            "li a0, 1\ncall fn\naddi a0, a0, 4\necall\nfn:\naddi a0, a0, 2\nret",
        ),
        // ---- branches, taken and not taken ----------------------------
        case(
            "beq_both_polarities",
            "li a0, 0\nli t0, 7\nli t1, 7\nbeq t0, t1, t\naddi a0, a0, 100\nt:\naddi a0, a0, 1\nli t1, 8\nbeq t0, t1, f\naddi a0, a0, 2\nf:\necall",
        ),
        case(
            "bne_both_polarities",
            "li a0, 0\nli t0, 7\nli t1, 8\nbne t0, t1, t\naddi a0, a0, 100\nt:\naddi a0, a0, 1\nli t1, 7\nbne t0, t1, f\naddi a0, a0, 2\nf:\necall",
        ),
        case(
            "blt_signed",
            "li a0, 0\nli t0, -1\nli t1, 3\nblt t0, t1, t\naddi a0, a0, 100\nt:\naddi a0, a0, 1\nblt t1, t0, f\naddi a0, a0, 2\nf:\necall",
        ),
        case(
            "bge_signed_equal",
            "li a0, 0\nli t0, 3\nli t1, 3\nbge t0, t1, t\naddi a0, a0, 100\nt:\naddi a0, a0, 1\nli t0, -7\nbge t0, t1, f\naddi a0, a0, 2\nf:\necall",
        ),
        case(
            "bltu_negative_is_big",
            "li a0, 0\nli t0, 3\nli t1, -1\nbltu t0, t1, t\naddi a0, a0, 100\nt:\naddi a0, a0, 1\nbltu t1, t0, f\naddi a0, a0, 2\nf:\necall",
        ),
        case(
            "bgeu_wraparound",
            "li a0, 0\nli t0, -1\nli t1, 1\nbgeu t0, t1, t\naddi a0, a0, 100\nt:\naddi a0, a0, 1\nbgeu t1, t0, f\naddi a0, a0, 2\nf:\necall",
        ),
        case(
            "backward_branch_loop",
            "li a0, 0\nli t0, 10\nloop:\nadd a0, a0, t0\naddi t0, t0, -1\nbnez t0, loop\necall",
        ),
        // ---- loads and stores -----------------------------------------
        case(
            "sw_lw_roundtrip",
            "li t0, 0x200\nli t1, 0xcafebabe\nsw t1, 0(t0)\nlw a0, 0(t0)\nsw t1, 8(t0)\nlw a1, 8(t0)\necall",
        ),
        case(
            "lw_negative_offset",
            "li t0, 0x208\nli t1, 0x1234\nsw t1, -8(t0)\nlw a0, -8(t0)\necall",
        ),
        case(
            "lb_sign_extends",
            "li t0, 0x200\nli t1, 0x80\nsb t1, 0(t0)\nlb a0, 0(t0)\nlbu a1, 0(t0)\necall",
        ),
        case(
            "lh_sign_extends",
            "li t0, 0x200\nli t1, 0x8000\nsh t1, 0(t0)\nlh a0, 0(t0)\nlhu a1, 0(t0)\necall",
        ),
        case(
            "sb_merges_into_word",
            "li t0, 0x200\nli t1, 0xaabbccdd\nsw t1, 0(t0)\nli t2, 0x11\nsb t2, 1(t0)\nlw a0, 0(t0)\nsb t2, 3(t0)\nlw a1, 0(t0)\necall",
        ),
        case(
            "sh_merges_into_word",
            "li t0, 0x200\nli t1, 0xaabbccdd\nsw t1, 0(t0)\nli t2, 0x2233\nsh t2, 2(t0)\nlw a0, 0(t0)\necall",
        ),
        case(
            "word_access_ignores_low_bits",
            "li t0, 0x200\nli t1, 0x55667788\nsw t1, 0(t0)\nlw a0, 2(t0)\nlw a1, 3(t0)\necall",
        ),
        case(
            "store_load_forwarding_loop",
            "li t0, 0x200\nli t1, 5\nli a0, 0\nloop:\nsw t1, 0(t0)\nlw t2, 0(t0)\nadd a0, a0, t2\naddi t1, t1, -1\nbnez t1, loop\necall",
        ),
        // ---- M extension ----------------------------------------------
        case("mul_basic", "li a0, 1234\nli a1, -567\nmul a2, a0, a1\necall"),
        case("mulh_min_times_min", "li a0, 0x80000000\nmulh a1, a0, a0\nmul a2, a0, a0\necall"),
        case("mulhu_max_times_max", "li a0, 0xffffffff\nmulhu a1, a0, a0\necall"),
        case("mulhsu_mixed_signs", "li a0, -1\nli a1, 0xffffffff\nmulhsu a2, a0, a1\necall"),
        case("div_signed", "li a0, -100\nli a1, 7\ndiv a2, a0, a1\nrem a3, a0, a1\necall"),
        case("div_by_zero", "li a0, 42\nli a1, 0\ndiv a2, a0, a1\nrem a3, a0, a1\necall"),
        case(
            "div_overflow",
            "li a0, 0x80000000\nli a1, -1\ndiv a2, a0, a1\nrem a3, a0, a1\necall",
        ),
        case("divu_by_zero", "li a0, 42\nli a1, 0\ndivu a2, a0, a1\nremu a3, a0, a1\necall"),
        case("divu_remu_basic", "li a0, 0xffffffff\nli a1, 10\ndivu a2, a0, a1\nremu a3, a0, a1\necall"),
        // ---- CSRs, x0, system -----------------------------------------
        case("csr_mscratch_roundtrip", "li t0, 0x1234abcd\ncsrw 0x340, t0\ncsrr a0, 0x340\necall"),
        case("csr_cycle_instret", "nop\nnop\ncsrr a0, 0xb00\ncsrr a1, 0xb02\necall"),
        case(
            "x0_is_hardwired",
            "li t0, 99\nadd zero, t0, t0\nmv a0, zero\naddi zero, zero, 5\nmv a1, zero\necall",
        ),
        case("fence_is_nop", "li a0, 1\nfence\naddi a0, a0, 1\necall"),
        case("ebreak_halts", "li a0, 77\nebreak"),
        // ---- small kernels (exercise traces in the cached replay) -----
        case(
            "sum_1_to_100",
            "li a0, 0\nli t0, 1\nli t1, 101\nloop:\nadd a0, a0, t0\naddi t0, t0, 1\nblt t0, t1, loop\necall",
        ),
        case(
            "fibonacci_iterative",
            "li t0, 0\nli t1, 1\nli t2, 30\nloop:\nadd t3, t0, t1\nmv t0, t1\nmv t1, t3\naddi t2, t2, -1\nbnez t2, loop\nmv a0, t0\necall",
        ),
        case(
            "byte_memcpy_loop",
            "li t0, 0x200\nli t1, 0x300\nli t2, 16\nli t3, 0xa5\ninit:\nsb t3, 0(t0)\naddi t3, t3, 7\naddi t0, t0, 1\naddi t2, t2, -1\nbnez t2, init\nli t0, 0x200\nli t2, 16\ncopy:\nlbu t4, 0(t0)\nsb t4, 0(t1)\naddi t0, t0, 1\naddi t1, t1, 1\naddi t2, t2, -1\nbnez t2, copy\nlw a0, 0x300(zero)\nlw a1, 0x30c(zero)\necall",
        ),
        case(
            "nested_loop_mul_table",
            "li s0, 0x200\nli t0, 1\nouter:\nli t1, 1\ninner:\nmul t2, t0, t1\nsw t2, 0(s0)\naddi s0, s0, 4\naddi t1, t1, 1\nli t3, 6\nble t1, t3, inner\naddi t0, t0, 1\nli t3, 6\nble t0, t3, outer\nlw a0, 0x200(zero)\nlw a1, 0x28c(zero)\necall",
        ),
        case(
            "raw_dependency_chain",
            "li a0, 1\nadd a0, a0, a0\nadd a0, a0, a0\nadd a0, a0, a0\nadd a0, a0, a0\nadd a0, a0, a0\nsub a1, a0, a0\necall",
        ),
    ]
}

/// Memory given to matrix-case programs (they address below `0x400`).
const CASE_MEM: usize = 4096;

fn halt_name(h: Halt) -> &'static str {
    match h {
        Halt::Ecall => "ecall",
        Halt::Ebreak => "ebreak",
        Halt::CycleLimit => "limit",
    }
}

fn ref_halt_name(h: RefHalt) -> &'static str {
    match h {
        RefHalt::Ecall => "ecall",
        RefHalt::Ebreak => "ebreak",
        RefHalt::CycleLimit => "limit",
    }
}

/// First architectural-state mismatch between the two harts, if any.
fn state_diff(cpu: &Cpu, oracle: &RefCpu) -> Option<String> {
    if cpu.pc != oracle.pc {
        return Some(format!("pc {:#010x} != {:#010x}", cpu.pc, oracle.pc));
    }
    if cpu.instret != oracle.instret {
        return Some(format!("instret {} != {}", cpu.instret, oracle.instret));
    }
    if cpu.cycles != oracle.cycles {
        return Some(format!("cycles {} != {}", cpu.cycles, oracle.cycles));
    }
    for r in 0..32u8 {
        if cpu.reg(r) != oracle.regs[r as usize] {
            return Some(format!(
                "x{r} {:#010x} != {:#010x}",
                cpu.reg(r),
                oracle.regs[r as usize]
            ));
        }
    }
    None
}

/// Runs one assembly program in precise per-instruction lockstep, then
/// replays it through the cached/trace-compiled pipeline, checking both
/// against the reference hart. Returns the retired instruction count.
///
/// # Errors
///
/// Returns a description of the first divergence.
pub fn lockstep_source(name: &str, source: &str, max_cycles: u64) -> Result<u64, String> {
    let words = assemble(source).map_err(|e| format!("{name}: fixture does not assemble: {e}"))?;

    // Pass 1: precise lockstep, state compared after every instruction.
    let mut mem = FlatMemory::new(CASE_MEM);
    mem.load_words(0, &words);
    let mut cpu = Cpu::new(0);
    cpu.set_block_cache_enabled(false);
    let mut ref_mem = RefMemory::new(CASE_MEM);
    ref_mem.load_words(0, &words);
    let mut oracle = RefCpu::new(0);

    let halt = loop {
        if cpu.cycles >= max_cycles {
            return Err(format!("{name}: no halt within {max_cycles} cycles"));
        }
        let step = cpu
            .step(&mut mem)
            .map_err(|t| format!("{name}: fast trap {t:?}"))?;
        let ref_step = oracle
            .step(&mut ref_mem)
            .map_err(|t| format!("{name}: oracle trap {t:?}"))?;
        if let Some(diff) = state_diff(&cpu, &oracle) {
            return Err(format!(
                "{name}: lockstep divergence after {} instructions: {diff}",
                oracle.instret
            ));
        }
        match (step, ref_step) {
            (None, None) => {}
            (Some(h), Some(r)) => {
                if halt_name(h) != ref_halt_name(r) {
                    return Err(format!(
                        "{name}: halt mismatch {} != {}",
                        halt_name(h),
                        ref_halt_name(r)
                    ));
                }
                break h;
            }
            (h, r) => {
                return Err(format!("{name}: halt skew fast={h:?} oracle={r:?}"));
            }
        }
    };

    // Pass 2: cached replay — block cache and trace compiler on.
    let mut mem2 = FlatMemory::new(CASE_MEM);
    mem2.load_words(0, &words);
    let mut cached = Cpu::new(0);
    let cached_halt = cached
        .run(&mut mem2, max_cycles)
        .map_err(|t| format!("{name}: cached trap {t:?}"))?;
    if halt_name(cached_halt) != halt_name(halt) {
        return Err(format!(
            "{name}: cached halt {} != precise {}",
            halt_name(cached_halt),
            halt_name(halt)
        ));
    }
    if let Some(diff) = state_diff(&cached, &oracle) {
        return Err(format!("{name}: cached replay diverged: {diff}"));
    }
    // Cached memory must match the per-step memory word for word.
    for addr in (0..CASE_MEM as u32).step_by(4) {
        let a = mem.peek_word(addr);
        let b = mem2.peek_word(addr);
        if a != b {
            return Err(format!(
                "{name}: cached memory diverged at {addr:#x}: {a:?} != {b:?}"
            ));
        }
    }
    Ok(oracle.instret)
}

/// Outcome of the whole matrix.
#[derive(Debug, Clone)]
pub struct MatrixReport {
    /// Cases run.
    pub total: usize,
    /// Total instructions retired in lockstep across all cases.
    pub instructions: u64,
    /// One entry per failed case: `name: what diverged`.
    pub failures: Vec<String>,
}

/// Runs every named case. A clean run has `failures.is_empty()`.
pub fn run_matrix(max_cycles: u64) -> MatrixReport {
    let all = cases();
    let mut report = MatrixReport {
        total: all.len(),
        instructions: 0,
        failures: Vec::new(),
    };
    for case in &all {
        match lockstep_source(case.name, case.source, max_cycles) {
            Ok(instructions) => report.instructions += instructions,
            Err(what) => report.failures.push(what),
        }
    }
    report
}

/// Result of a clean ELF lockstep run.
#[derive(Debug, Clone)]
pub struct ElfLockstep {
    /// The code the program passed to `exit`.
    pub exit_code: i32,
    /// Bytes written to fd 1 (identical on both harts by construction).
    pub stdout: Vec<u8>,
    /// Instructions retired.
    pub instructions: u64,
    /// Syscalls serviced.
    pub syscalls: u64,
}

/// Runs an ELF32 binary on the production [`Cpu`] and the reference
/// hart in per-instruction lockstep, servicing syscalls through two
/// independent shims whose answers must agree.
///
/// # Errors
///
/// Returns a description of the first divergence (state, syscall
/// arguments, shim answers, or output streams).
pub fn lockstep_elf(elf: &[u8], max_cycles: u64) -> Result<ElfLockstep, String> {
    let image = parse_elf32(elf).map_err(|e| format!("elf parse: {e}"))?;

    let mut mem = FlatMemory::new(DRAM_SIZE);
    let mut ref_mem = RefMemory::new(DRAM_SIZE);
    for seg in &image.segments {
        let words: Vec<u32> = seg
            .data
            .chunks(4)
            .map(|c| {
                let mut b = [0u8; 4];
                b[..c.len()].copy_from_slice(c);
                u32::from_le_bytes(b)
            })
            .collect();
        mem.load_words(seg.vaddr, &words);
        ref_mem.load_words(seg.vaddr, &words);
    }

    let sp = DRAM_SIZE as u32 - 16;
    let heap_base = (image.load_end() + 0xfff) & !0xfff;
    let heap_limit = DRAM_SIZE as u32 - STACK_RESERVE;
    let mut cpu = Cpu::new(image.entry);
    cpu.set_block_cache_enabled(false);
    cpu.set_reg(2, sp);
    let mut oracle = RefCpu::new(image.entry);
    oracle.regs[2] = sp;
    let mut shim = SyscallShim::new(heap_base, heap_limit);
    let mut ref_shim = SyscallShim::new(heap_base, heap_limit);

    loop {
        if cpu.cycles >= max_cycles {
            return Err(format!("elf: no exit within {max_cycles} cycles"));
        }
        let step = cpu
            .step(&mut mem)
            .map_err(|t| format!("elf: fast trap {t:?}"))?;
        let ref_step = oracle
            .step(&mut ref_mem)
            .map_err(|t| format!("elf: oracle trap {t:?}"))?;
        if let Some(diff) = state_diff(&cpu, &oracle) {
            return Err(format!(
                "elf: lockstep divergence after {} instructions: {diff}",
                oracle.instret
            ));
        }
        match (step, ref_step) {
            (None, None) => continue,
            (Some(Halt::Ecall), Some(RefHalt::Ecall)) => {}
            (h, r) => return Err(format!("elf: halt skew fast={h:?} oracle={r:?}")),
        }
        // Both harts trapped into the same ecall; the shims must agree.
        let nr = cpu.reg(17);
        let args = [cpu.reg(10), cpu.reg(11), cpu.reg(12)];
        let ret = shim.dispatch(nr, args, &mut |addr| mem.load_byte(addr).ok());
        let ref_ret = ref_shim.dispatch(nr, args, &mut |addr| {
            ref_mem
                .peek_word(addr)
                .map(|w| (w >> ((addr & 3) * 8)) as u8)
        });
        if ret != ref_ret {
            return Err(format!(
                "elf: shim answers diverged on syscall {nr}: {ret:?} != {ref_ret:?}"
            ));
        }
        if let Some(code) = ret.exit {
            if shim.stdout != ref_shim.stdout {
                return Err("elf: stdout streams diverged".into());
            }
            return Ok(ElfLockstep {
                exit_code: code,
                stdout: shim.stdout,
                instructions: oracle.instret,
                syscalls: shim.calls,
            });
        }
        cpu.set_reg(10, ret.a0);
        oracle.regs[10] = ret.a0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_is_large_and_uniquely_named() {
        let all = cases();
        assert!(
            all.len() >= 50,
            "matrix has {} cases, want >= 50",
            all.len()
        );
        let mut names: Vec<_> = all.iter().map(|c| c.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all.len(), "duplicate case names");
    }

    #[test]
    fn matrix_passes_clean() {
        let report = run_matrix(100_000);
        assert!(
            report.failures.is_empty(),
            "matrix failures:\n{}",
            report.failures.join("\n")
        );
        assert!(report.instructions > 500);
    }

    #[test]
    fn a_deliberately_wrong_program_is_caught() {
        // Budget exhaustion (no halt) must be reported, not looped on.
        let err = lockstep_source("spin", "loop:\nj loop", 1000).unwrap_err();
        assert!(err.contains("no halt"), "unexpected error: {err}");
    }
}

//! The differential conformance harness: seeded random cases per
//! domain, fast path and oracle run side by side, divergences shrunk
//! to a minimal reproducer, results emitted as a JSON
//! [`ConformanceReport`].
//!
//! Determinism contract: the report depends only on `(seed, cases,
//! domains, inject)`. Case seeds derive from
//! [`split_seed`](neuropulsim_linalg::parallel::split_seed), cases run
//! through the order-preserving
//! [`par_map_indexed`](neuropulsim_linalg::parallel::par_map_indexed),
//! and aggregation is sequential, so the JSON is byte-identical across
//! runs and thread counts.

use crate::{abft_ref, decomp_ref, linalg_ref, pcm_ref, rv32_ref, snn_ref};
use neuropulsim_core::abft::AbftWeights;
use neuropulsim_core::architecture::MeshArchitecture;
use neuropulsim_core::layered::LayeredMesh;
use neuropulsim_core::program::{MeshProgram, MeshScratch, MziBlock};
use neuropulsim_core::{clements, reck};
use neuropulsim_linalg::parallel::{available_threads, par_map_indexed, split_seed};
use neuropulsim_linalg::random::haar_unitary;
use neuropulsim_linalg::{soa, CMatrix, CVector, RMatrix, C64};
use neuropulsim_photonics::pcm::{transmission_levels, PcmCell, PcmMaterial};
use neuropulsim_riscv::bus::{Bus, FlatMemory};
use neuropulsim_riscv::cpu::{Cpu, Halt, Trap};
use neuropulsim_riscv::isa::{encode, Instruction};
use neuropulsim_snn::neuron::NeuronArray;
use neuropulsim_snn::sparse::{DenseNet, EventNet, NetSpec};
use neuropulsim_snn::stdp::StdpRule;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The eight fast-path domains covered by the harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Domain {
    /// SoA/blocked complex matmul and mat–vec kernels vs the naive
    /// triple loop.
    Matmul,
    /// Mesh application (`apply`/`CompiledMesh`/`transfer_matrix`) and
    /// Clements/Reck decompositions vs dense two-level rebuilds.
    Mesh,
    /// Vectorized Huang–Abraham ABFT encode/check/correct vs the
    /// scalar reference.
    Abft,
    /// Decoded-block RV32IM interpreter vs the single-instruction
    /// reference stepper (bit-exact).
    Riscv,
    /// Array-of-neurons LIF/STDP steppers vs scalar references
    /// (bit-exact).
    Snn,
    /// PCM level quantization, effective index, and drift vs
    /// independent reference curves.
    Pcm,
    /// Event-driven sparse SNN engine (CSR + fire queue + lazy leak)
    /// vs the dense baseline and the eager edge-list reference
    /// simulator (bit-exact).
    SnnSparse,
    /// The mesh zoo: all four [`MeshArchitecture`]s (Clements, compacted
    /// Clements, Fldzhyan layered, Reck) vs their dense golden
    /// reconstructions, plus bit-identity of the blocked/fused apply
    /// kernels against the per-block path.
    MeshZoo,
}

impl Domain {
    /// All domains, in canonical report order.
    pub fn all() -> [Domain; 8] {
        [
            Domain::Matmul,
            Domain::Mesh,
            Domain::Abft,
            Domain::Riscv,
            Domain::Snn,
            Domain::Pcm,
            Domain::SnnSparse,
            Domain::MeshZoo,
        ]
    }

    /// Stable lowercase name used in JSON and on the CLI.
    pub fn name(self) -> &'static str {
        match self {
            Domain::Matmul => "matmul",
            Domain::Mesh => "mesh",
            Domain::Abft => "abft",
            Domain::Riscv => "riscv",
            Domain::Snn => "snn",
            Domain::Pcm => "pcm",
            Domain::SnnSparse => "snn_sparse",
            Domain::MeshZoo => "mesh_zoo",
        }
    }

    /// Parses a CLI domain name.
    pub fn parse(s: &str) -> Option<Domain> {
        Domain::all().into_iter().find(|d| d.name() == s)
    }

    /// Documented absolute tolerance for the domain; `0.0` means the
    /// domain must match bit-for-bit.
    pub fn tolerance(self) -> f64 {
        match self {
            Domain::Matmul => 1e-10,
            Domain::Mesh => 1e-8,
            Domain::Abft => 1e-9,
            Domain::Riscv => 0.0,
            Domain::Snn => 0.0,
            Domain::Pcm => 1e-12,
            Domain::SnnSparse => 0.0,
            Domain::MeshZoo => 1e-8,
        }
    }

    /// Smallest meaningful case size, the floor for shrinking.
    pub fn min_size(self) -> usize {
        match self {
            Domain::Matmul => 1,
            Domain::Mesh => 2,
            Domain::Abft => 2,
            Domain::Riscv => 4,
            Domain::Snn => 1,
            Domain::Pcm => 2,
            Domain::SnnSparse => 2,
            Domain::MeshZoo => 2,
        }
    }

    /// Largest generated case size (matrix order, program length,
    /// neuron count, level count).
    pub fn max_size(self) -> usize {
        match self {
            Domain::Matmul => 12,
            Domain::Mesh => 10,
            Domain::Abft => 12,
            Domain::Riscv => 160,
            Domain::Snn => 24,
            Domain::Pcm => 48,
            Domain::SnnSparse => 28,
            Domain::MeshZoo => 10,
        }
    }

    /// Canonical index, used to derive the per-domain seed so that a
    /// single-domain run reproduces exactly the cases of a full run.
    fn index(self) -> u64 {
        Domain::all().iter().position(|d| *d == self).unwrap() as u64
    }
}

/// Result of one fast-vs-oracle case.
#[derive(Debug, Clone)]
pub struct CaseOutcome {
    /// The size the case actually ran at.
    pub size: usize,
    /// Worst absolute error observed (0 for bit-exact domains).
    pub error: f64,
    /// `Some(description)` if fast path and oracle diverged.
    pub divergence: Option<String>,
}

impl CaseOutcome {
    fn pass(size: usize, error: f64) -> CaseOutcome {
        CaseOutcome {
            size,
            error,
            divergence: None,
        }
    }

    fn diverged(size: usize, error: f64, detail: String) -> CaseOutcome {
        CaseOutcome {
            size,
            error,
            divergence: Some(detail),
        }
    }
}

/// A divergent case shrunk to its smallest reproducing size.
#[derive(Debug, Clone)]
pub struct ShrunkRepro {
    /// Index of the case within its domain.
    pub case_index: usize,
    /// The per-case RNG seed; rerunning the domain case with this seed
    /// at `shrunk_size` reproduces the divergence.
    pub case_seed: u64,
    /// Size the divergence was first observed at.
    pub original_size: usize,
    /// Smallest size (≥ the domain minimum) that still diverges with
    /// the same case seed.
    pub shrunk_size: usize,
    /// Human-readable description from the shrunk run.
    pub detail: String,
}

/// Per-domain aggregate results.
#[derive(Debug, Clone)]
pub struct DomainReport {
    /// The domain.
    pub domain: Domain,
    /// Cases run.
    pub cases: usize,
    /// Cases where fast path and oracle agreed.
    pub passes: usize,
    /// Cases that diverged.
    pub divergences: usize,
    /// Worst absolute error across all cases.
    pub worst_error: f64,
    /// Shrunk reproducers (capped at [`MAX_REPROS`]).
    pub repros: Vec<ShrunkRepro>,
}

/// Upper bound on shrunk reproducers kept per domain.
pub const MAX_REPROS: usize = 5;

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct ConformanceConfig {
    /// Master seed; every case seed derives from it via `split_seed`.
    pub seed: u64,
    /// Cases per domain.
    pub cases: usize,
    /// Domains to run (canonical order recommended).
    pub domains: Vec<Domain>,
    /// If set, a deliberate perturbation is applied to that domain's
    /// fast-path results, to prove the harness detects and shrinks
    /// real divergences.
    pub inject: Option<Domain>,
}

impl ConformanceConfig {
    /// All domains with the given seed and case count, no injection.
    pub fn new(seed: u64, cases: usize) -> Self {
        ConformanceConfig {
            seed,
            cases,
            domains: Domain::all().to_vec(),
            inject: None,
        }
    }
}

/// The full conformance run result.
#[derive(Debug, Clone)]
pub struct ConformanceReport {
    /// Master seed of the run.
    pub seed: u64,
    /// Cases per domain.
    pub cases_per_domain: usize,
    /// Sum of divergences across domains.
    pub total_divergences: usize,
    /// Per-domain aggregates, in canonical order.
    pub domains: Vec<DomainReport>,
}

impl ConformanceReport {
    /// Serializes the report as deterministic JSON (stable key order,
    /// `{:e}` float formatting, no timing or thread-count fields).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"seed\": {},\n", self.seed));
        s.push_str(&format!(
            "  \"cases_per_domain\": {},\n",
            self.cases_per_domain
        ));
        s.push_str(&format!(
            "  \"total_cases\": {},\n",
            self.cases_per_domain * self.domains.len()
        ));
        s.push_str(&format!(
            "  \"total_divergences\": {},\n",
            self.total_divergences
        ));
        s.push_str("  \"domains\": [\n");
        for (k, d) in self.domains.iter().enumerate() {
            s.push_str("    {\n");
            s.push_str(&format!("      \"name\": \"{}\",\n", d.domain.name()));
            s.push_str(&format!("      \"cases\": {},\n", d.cases));
            s.push_str(&format!("      \"passes\": {},\n", d.passes));
            s.push_str(&format!("      \"divergences\": {},\n", d.divergences));
            s.push_str(&format!(
                "      \"tolerance\": {:e},\n",
                d.domain.tolerance()
            ));
            s.push_str(&format!(
                "      \"bit_exact\": {},\n",
                d.domain.tolerance() == 0.0
            ));
            s.push_str(&format!("      \"worst_error\": {:e},\n", d.worst_error));
            s.push_str("      \"repros\": [");
            for (j, r) in d.repros.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                s.push_str(&format!(
                    "\n        {{\"case_index\": {}, \"case_seed\": {}, \"original_size\": {}, \"shrunk_size\": {}, \"detail\": \"{}\"}}",
                    r.case_index,
                    r.case_seed,
                    r.original_size,
                    r.shrunk_size,
                    escape_json(&r.detail)
                ));
            }
            if d.repros.is_empty() {
                s.push(']');
            } else {
                s.push_str("\n      ]");
            }
            s.push('\n');
            s.push_str(if k + 1 < self.domains.len() {
                "    },\n"
            } else {
                "    }\n"
            });
        }
        s.push_str("  ]\n");
        s.push_str("}\n");
        s
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Runs one case of `domain` with `case_seed`. `size_override` forces
/// the case size (used by shrinking); the RNG stream still consumes the
/// size draw first so the rest of the case derives identically.
pub fn run_case(
    domain: Domain,
    case_seed: u64,
    size_override: Option<usize>,
    inject: bool,
) -> CaseOutcome {
    match domain {
        Domain::Matmul => matmul_case(case_seed, size_override, inject),
        Domain::Mesh => mesh_case(case_seed, size_override, inject),
        Domain::Abft => abft_case(case_seed, size_override, inject),
        Domain::Riscv => riscv_case(case_seed, size_override, inject),
        Domain::Snn => snn_case(case_seed, size_override, inject),
        Domain::Pcm => pcm_case(case_seed, size_override, inject),
        Domain::SnnSparse => snn_sparse_case(case_seed, size_override, inject),
        Domain::MeshZoo => mesh_zoo_case(case_seed, size_override, inject),
    }
}

fn draw_size(rng: &mut StdRng, domain: Domain, size_override: Option<usize>) -> usize {
    let drawn = rng.gen_range(domain.min_size()..=domain.max_size());
    size_override.unwrap_or(drawn)
}

fn random_cmatrix(rng: &mut StdRng, n: usize) -> CMatrix {
    let mut m = CMatrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            m[(i, j)] = C64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0));
        }
    }
    m
}

fn random_cvector(rng: &mut StdRng, n: usize) -> CVector {
    let mut v = CVector::zeros(n);
    for i in 0..n {
        v[i] = C64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0));
    }
    v
}

// ---------------------------------------------------------------- matmul

fn matmul_case(case_seed: u64, size_override: Option<usize>, inject: bool) -> CaseOutcome {
    let mut rng = StdRng::seed_from_u64(case_seed);
    let n = draw_size(&mut rng, Domain::Matmul, size_override);
    let tol = Domain::Matmul.tolerance();
    let a = random_cmatrix(&mut rng, n);
    let b = random_cmatrix(&mut rng, n);
    let x = random_cvector(&mut rng, n);

    let golden = linalg_ref::mul_mat_ref(&a, &b);
    let golden_y = linalg_ref::mul_vec_ref(&a, &x);

    let mut fast_soa = soa::mul_mat(&a, &b);
    if inject {
        fast_soa[(0, 0)] += C64::new(50.0 * tol, 0.0);
    }
    let fast_method = a.mul_mat(&b);
    let fast_y = a.mul_vec(&x);

    let e_soa = linalg_ref::max_entry_error(&fast_soa, &golden);
    let e_method = linalg_ref::max_entry_error(&fast_method, &golden);
    let e_vec = linalg_ref::max_vec_error(&fast_y, &golden_y);
    let worst = e_soa.max(e_method).max(e_vec);
    if worst > tol {
        let which = if e_soa >= e_method && e_soa >= e_vec {
            "soa::mul_mat"
        } else if e_method >= e_vec {
            "CMatrix::mul_mat"
        } else {
            "CMatrix::mul_vec"
        };
        return CaseOutcome::diverged(
            n,
            worst,
            format!("matmul n={n}: {which} error {worst:e} exceeds tol {tol:e}"),
        );
    }
    CaseOutcome::pass(n, worst)
}

// ------------------------------------------------------------------ mesh

fn random_mesh_program(rng: &mut StdRng, n: usize) -> MeshProgram {
    let block_count = n * (n - 1) / 2;
    let pi = std::f64::consts::PI;
    let blocks: Vec<MziBlock> = (0..block_count)
        .map(|_| MziBlock {
            mode: rng.gen_range(0..n - 1),
            theta: rng.gen_range(0.0..pi),
            phi: rng.gen_range(-pi..pi),
        })
        .collect();
    let phases: Vec<f64> = (0..n).map(|_| rng.gen_range(-pi..pi)).collect();
    MeshProgram::new(n, blocks, phases)
}

fn mesh_case(case_seed: u64, size_override: Option<usize>, inject: bool) -> CaseOutcome {
    let mut rng = StdRng::seed_from_u64(case_seed);
    let n = draw_size(&mut rng, Domain::Mesh, size_override);
    let tol = Domain::Mesh.tolerance();
    let program = random_mesh_program(&mut rng, n);
    let x = random_cvector(&mut rng, n);

    let golden_u = decomp_ref::transfer_matrix_ref(&program);
    let golden_y = linalg_ref::mul_vec_ref(&golden_u, &x);

    // Three fast application paths against the dense rebuild.
    let mut fast_apply = program.apply(&x);
    if inject {
        fast_apply[0] += C64::new(100.0 * tol, 0.0);
    }
    let compiled = program.compile();
    let mut buf: Vec<C64> = x.as_slice().to_vec();
    compiled.apply_in_place(&mut buf);
    let mut fast_into = CVector::zeros(n);
    compiled.apply_into(&x, &mut fast_into);
    let fast_u = program.transfer_matrix();

    let e_apply = linalg_ref::max_vec_error(&fast_apply, &golden_y);
    let mut e_inplace = 0.0f64;
    for i in 0..n {
        e_inplace = e_inplace.max((buf[i] - golden_y[i]).abs());
    }
    let e_into = linalg_ref::max_vec_error(&fast_into, &golden_y);
    let e_u = linalg_ref::max_entry_error(&fast_u, &golden_u);

    // Decomposition round-trips: fast decompose, dense oracle rebuild.
    let u = haar_unitary(&mut rng, n);
    let e_clements = linalg_ref::max_entry_error(
        &decomp_ref::transfer_matrix_ref(&clements::decompose(&u)),
        &u,
    );
    let e_reck =
        linalg_ref::max_entry_error(&decomp_ref::transfer_matrix_ref(&reck::decompose(&u)), &u);

    let worst = e_apply
        .max(e_inplace)
        .max(e_into)
        .max(e_u)
        .max(e_clements)
        .max(e_reck);
    if worst > tol {
        let labels = [
            ("MeshProgram::apply", e_apply),
            ("CompiledMesh::apply_in_place", e_inplace),
            ("CompiledMesh::apply_into", e_into),
            ("MeshProgram::transfer_matrix", e_u),
            ("clements::decompose round-trip", e_clements),
            ("reck::decompose round-trip", e_reck),
        ];
        let which = labels.iter().max_by(|a, b| a.1.total_cmp(&b.1)).unwrap().0;
        return CaseOutcome::diverged(
            n,
            worst,
            format!("mesh n={n}: {which} error {worst:e} exceeds tol {tol:e}"),
        );
    }
    CaseOutcome::pass(n, worst)
}

// -------------------------------------------------------------- mesh zoo

/// Worst absolute entry error between a raw buffer and a golden vector.
fn max_slice_error(a: &[C64], golden: &CVector) -> f64 {
    let mut worst = 0.0f64;
    for (i, &v) in a.iter().enumerate() {
        worst = worst.max((v - golden[i]).abs());
    }
    worst
}

/// Bit-for-bit equality of two complex buffers.
fn bits_equal(a: &[C64], b: &[C64]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(x, y)| x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits())
}

/// Named error legs plus an optional bit-identity failure.
type ZooLegs = (Vec<(&'static str, f64)>, Option<(&'static str, f64)>);

/// One mesh-zoo case: draw an architecture, realize a mesh on it,
/// compare the fast transfer matrix and the blocked/fused apply kernel
/// against the dense golden reconstruction, and require the blocked
/// kernel to be *bit-identical* to the per-block path (batch vs single
/// apply for the layered mesh, which has no per-block compiled path).
fn mesh_zoo_case(case_seed: u64, size_override: Option<usize>, inject: bool) -> CaseOutcome {
    let mut rng = StdRng::seed_from_u64(case_seed);
    let n = draw_size(&mut rng, Domain::MeshZoo, size_override);
    let tol = Domain::MeshZoo.tolerance();
    let arch = MeshArchitecture::ALL[rng.gen_range(0..MeshArchitecture::ALL.len())];
    let x = random_cvector(&mut rng, n);
    let mut scratch = MeshScratch::new();

    let (legs, bit_failure): ZooLegs = match arch {
        MeshArchitecture::Clements | MeshArchitecture::Reck => {
            let target = haar_unitary(&mut rng, n);
            let program = if arch == MeshArchitecture::Reck {
                reck::decompose(&target)
            } else {
                clements::decompose(&target)
            };
            let golden_u = decomp_ref::transfer_matrix_ref(&program);
            let golden_y = linalg_ref::mul_vec_ref(&golden_u, &x);
            let compiled = program.compile();
            let mut per_block: Vec<C64> = x.as_slice().to_vec();
            compiled.apply_in_place(&mut per_block);
            let mut blocked: Vec<C64> = x.as_slice().to_vec();
            compiled.apply_blocked_in_place(&mut blocked, &mut scratch);
            if inject {
                blocked[0] += C64::new(100.0 * tol, 0.0);
            }
            let e_u = linalg_ref::max_entry_error(&program.transfer_matrix(), &golden_u);
            let e_round = linalg_ref::max_entry_error(&golden_u, &target);
            let e_blocked = max_slice_error(&blocked, &golden_y);
            let bits = (!bits_equal(&per_block, &blocked))
                .then(|| ("blocked apply", max_slice_error(&blocked, &golden_y)));
            (
                vec![
                    ("transfer_matrix", e_u),
                    ("decompose round-trip", e_round),
                    ("blocked apply", e_blocked),
                ],
                bits,
            )
        }
        MeshArchitecture::ClementsCompact => {
            let target = haar_unitary(&mut rng, n);
            let program = clements::decompose(&target);
            let golden_u = decomp_ref::compact_transfer_matrix_ref(&program);
            let golden_y = linalg_ref::mul_vec_ref(&golden_u, &x);
            let compiled = program.compile_compact();
            let mut per_block: Vec<C64> = x.as_slice().to_vec();
            compiled.apply_in_place(&mut per_block);
            let mut blocked: Vec<C64> = x.as_slice().to_vec();
            compiled.apply_blocked_in_place(&mut blocked, &mut scratch);
            if inject {
                blocked[0] += C64::new(100.0 * tol, 0.0);
            }
            let fast_u = program.transfer_matrix_compact();
            let e_u = linalg_ref::max_entry_error(&fast_u, &golden_u);
            // A compacted mesh must realize the same matrix as the
            // plain rectangular mesh for the same program.
            let e_equiv = linalg_ref::max_entry_error(&fast_u, &program.transfer_matrix());
            let e_blocked = max_slice_error(&blocked, &golden_y);
            let bits = (!bits_equal(&per_block, &blocked)).then(|| {
                (
                    "blocked compact apply",
                    max_slice_error(&blocked, &golden_y),
                )
            });
            (
                vec![
                    ("transfer_matrix_compact", e_u),
                    ("compact-vs-plain equivalence", e_equiv),
                    ("blocked compact apply", e_blocked),
                ],
                bits,
            )
        }
        MeshArchitecture::Fldzhyan => {
            let mut mesh = LayeredMesh::universal(n);
            mesh.randomize_phases(&mut rng);
            mesh.perturb_couplers(&mut rng, 0.1);
            let golden_u = decomp_ref::layered_transfer_matrix_ref(&mesh);
            let golden_y = linalg_ref::mul_vec_ref(&golden_u, &x);
            let compiled = mesh.compile();
            let mut fused: Vec<C64> = x.as_slice().to_vec();
            compiled.apply_in_place(&mut fused, &mut scratch);
            if inject {
                fused[0] += C64::new(100.0 * tol, 0.0);
            }
            // Batch apply on two copies must match the single-vector
            // path bit-for-bit, column by column.
            let mut batch: Vec<C64> = x.as_slice().to_vec();
            batch.extend_from_slice(x.as_slice());
            compiled.apply_batch(&mut batch, &mut scratch);
            let e_u = linalg_ref::max_entry_error(&mesh.transfer_matrix(), &golden_u);
            let e_fused = max_slice_error(&fused, &golden_y);
            let bits = (!bits_equal(&batch[..n], &fused) || !bits_equal(&batch[n..], &fused))
                .then(|| ("fused batch apply", max_slice_error(&batch[..n], &golden_y)));
            (
                vec![
                    ("LayeredMesh::transfer_matrix", e_u),
                    ("fused apply", e_fused),
                ],
                bits,
            )
        }
    };

    let worst = legs.iter().map(|l| l.1).fold(0.0f64, f64::max);
    if let Some((what, e_bits)) = bit_failure {
        let worst = worst.max(e_bits);
        return CaseOutcome::diverged(
            n,
            worst,
            format!("mesh_zoo n={n} {}: {what} not bit-identical to the per-block path (error {worst:e})", arch.name()),
        );
    }
    if worst > tol {
        let which = legs.iter().max_by(|a, b| a.1.total_cmp(&b.1)).unwrap().0;
        return CaseOutcome::diverged(
            n,
            worst,
            format!(
                "mesh_zoo n={n} {}: {which} error {worst:e} exceeds tol {tol:e}",
                arch.name()
            ),
        );
    }
    CaseOutcome::pass(n, worst)
}

// ------------------------------------------------------------------ abft

/// Verdict comparison key: discriminant plus located row (delta is
/// compared numerically, not exactly).
fn fast_verdict_key(v: &neuropulsim_core::abft::ColumnCheck) -> (u8, usize, f64) {
    use neuropulsim_core::abft::ColumnCheck::*;
    match v {
        Clean => (0, 0, 0.0),
        Correctable { row, delta } => (1, *row, *delta),
        Corrupt => (2, 0, 0.0),
    }
}

fn ref_verdict_key(v: &abft_ref::RefVerdict) -> (u8, usize, f64) {
    match v {
        abft_ref::RefVerdict::Clean => (0, 0, 0.0),
        abft_ref::RefVerdict::Correctable { row, delta } => (1, *row, *delta),
        abft_ref::RefVerdict::Corrupt => (2, 0, 0.0),
    }
}

fn abft_case(case_seed: u64, size_override: Option<usize>, inject: bool) -> CaseOutcome {
    let mut rng = StdRng::seed_from_u64(case_seed);
    let n = draw_size(&mut rng, Domain::Abft, size_override);
    let tol = Domain::Abft.tolerance();
    // Verdict threshold: far above FP noise, far below injected errors.
    let check_tol = 1e-6;

    let vals: Vec<f64> = (0..n * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let w = RMatrix::from_rows(n, n, &vals);
    let x: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();

    let weights = AbftWeights::new(&w);
    let golden = abft_ref::RefChecksums::new(&w);

    // Checksum rows and expected sums must agree numerically.
    let mut worst = 0.0f64;
    for j in 0..n {
        worst = worst.max((weights.plain()[j] - golden.plain()[j]).abs());
        worst = worst.max((weights.weighted()[j] - golden.weighted()[j]).abs());
    }
    let (c_f, cw_f) = weights.expected(&x);
    let (c_g, cw_g) = golden.expected(&x);
    worst = worst.max((c_f - c_g).abs()).max((cw_f - cw_g).abs());

    let y_clean = w.mul_vec(&x);
    let mut y = y_clean.clone();
    let variant = rng.gen_range(0u32..3);
    let mut rows = Vec::new();
    match variant {
        0 => {}
        1 => {
            let row = rng.gen_range(0..n);
            let mag = rng.gen_range(0.25..1.0);
            let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
            y[row] += sign * mag;
            rows.push(row);
        }
        _ => {
            let r1 = rng.gen_range(0..n);
            let r2 = (r1 + 1 + rng.gen_range(0..n - 1)) % n;
            for r in [r1, r2] {
                let mag = rng.gen_range(0.25..1.0);
                let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
                y[r] += sign * mag;
                rows.push(r);
            }
        }
    }

    let fast_v = weights.check(&x, &y, check_tol);
    let golden_v = golden.check(&x, &y, check_tol);
    let (mut fk, fr, fd) = fast_verdict_key(&fast_v);
    let (gk, gr, gd) = ref_verdict_key(&golden_v);
    if inject {
        fk = 0; // pretend the fast check always reports clean
    }
    if fk != gk || (fk == 1 && fr != gr) {
        return CaseOutcome::diverged(
            n,
            worst,
            format!("abft n={n} variant={variant}: fast verdict {fk}/{fr} vs oracle {gk}/{gr}"),
        );
    }
    if fk == 1 {
        worst = worst.max((fd - gd).abs());
        // Single corruption: both sides must land on the corrupted row
        // and correction must restore the clean product.
        if variant == 1 && fr != rows[0] {
            return CaseOutcome::diverged(
                n,
                worst,
                format!("abft n={n}: located row {fr}, corrupted row {}", rows[0]),
            );
        }
        if variant == 1 {
            let mut fixed = y.clone();
            weights.correct(&mut fixed, &fast_v);
            for i in 0..n {
                worst = worst.max((fixed[i] - y_clean[i]).abs());
            }
        }
    }
    if variant > 0 && fk == 0 {
        return CaseOutcome::diverged(
            n,
            worst,
            format!("abft n={n}: corruption of rows {rows:?} reported clean"),
        );
    }
    if worst > tol {
        return CaseOutcome::diverged(
            n,
            worst,
            format!("abft n={n}: numeric error {worst:e} exceeds tol {tol:e}"),
        );
    }
    CaseOutcome::pass(n, worst)
}

// ----------------------------------------------------------------- riscv

/// RAM size for conformance programs; the data window lives in
/// `[1024, 2048)` and programs occupy the bottom.
const RV_MEM_BYTES: usize = 4096;
/// Cycle budget per program.
const RV_BUDGET: u64 = 50_000;

/// Seeded random RV32IM program: ALU/mul/div mix, loads and stores in a
/// fixed data window, forward branches, CSR reads of `mcycle`/
/// `minstret`/`mscratch`, occasional random-base loads that may trap,
/// occasionally a trailing `wfi`, always a final `ecall`.
fn random_rv_program(rng: &mut StdRng, len: usize) -> Vec<u32> {
    use Instruction as I;
    let mut words = Vec::with_capacity(len + 1);
    let wfi_at = if len >= 2 && rng.gen_bool(0.125) {
        Some(len - 1)
    } else {
        None
    };
    for k in 0..len {
        let rd = rng.gen_range(1u8..16);
        let rs1 = rng.gen_range(0u8..16);
        let rs2 = rng.gen_range(0u8..16);
        if Some(k) == wfi_at {
            words.push(encode(I::Wfi));
            continue;
        }
        let inst = match rng.gen_range(0u32..16) {
            0 => I::Addi {
                rd,
                rs1,
                imm: rng.gen_range(-2048..2048),
            },
            1 => I::Add { rd, rs1, rs2 },
            2 => I::Sub { rd, rs1, rs2 },
            3 => I::Xor { rd, rs1, rs2 },
            4 => I::Mul { rd, rs1, rs2 },
            5 => I::Slli {
                rd,
                rs1,
                shamt: rng.gen_range(0u8..32),
            },
            6 => I::Sltu { rd, rs1, rs2 },
            7 => I::Sw {
                rs1: 0,
                rs2,
                offset: 1024 + 4 * rng.gen_range(0i32..224),
            },
            8 => I::Lw {
                rd,
                rs1: 0,
                offset: 1024 + 4 * rng.gen_range(0i32..224),
            },
            9 => {
                if k + 2 < len {
                    if rng.gen_bool(0.5) {
                        I::Beq {
                            rs1,
                            rs2,
                            offset: 8,
                        }
                    } else {
                        I::Bne {
                            rs1,
                            rs2,
                            offset: 8,
                        }
                    }
                } else {
                    I::Addi { rd, rs1, imm: 1 }
                }
            }
            10 => {
                if rng.gen_bool(0.5) {
                    I::Div { rd, rs1, rs2 }
                } else {
                    I::Rem { rd, rs1, rs2 }
                }
            }
            11 => {
                if rng.gen_bool(0.5) {
                    I::Srai {
                        rd,
                        rs1,
                        shamt: rng.gen_range(0u8..32),
                    }
                } else {
                    I::Sra { rd, rs1, rs2 }
                }
            }
            12 => match rng.gen_range(0u32..4) {
                0 => I::Csrrs {
                    rd,
                    rs1: 0,
                    csr: 0xB00,
                },
                1 => I::Csrrs {
                    rd,
                    rs1: 0,
                    csr: 0xB02,
                },
                2 => I::Csrrs {
                    rd,
                    rs1: 0,
                    csr: 0x340,
                },
                _ => I::Csrrw {
                    rd,
                    rs1,
                    csr: 0x340,
                },
            },
            13 => {
                if rng.gen_bool(0.5) {
                    I::Sb {
                        rs1: 0,
                        rs2,
                        offset: 1024 + rng.gen_range(0i32..896),
                    }
                } else {
                    I::Lbu {
                        rd,
                        rs1: 0,
                        offset: 1024 + rng.gen_range(0i32..896),
                    }
                }
            }
            // Random-base load: may fault — traps must match exactly.
            14 => I::Lw {
                rd,
                rs1,
                offset: rng.gen_range(-64i32..64) & !3,
            },
            _ => I::Mulhu { rd, rs1, rs2 },
        };
        words.push(encode(inst));
    }
    words.push(encode(I::Ecall));
    words
}

fn trap_key(t: &Trap) -> (u8, u32, u64) {
    match t {
        Trap::IllegalInstruction { pc, word } => (1, *pc, word.map_or(u64::MAX, u64::from)),
        Trap::MemoryFault { pc, fault } => {
            (2, *pc, ((fault.addr as u64) << 1) | fault.is_store as u64)
        }
    }
}

fn ref_trap_key(t: &rv32_ref::RefTrap) -> (u8, u32, u64) {
    match t {
        rv32_ref::RefTrap::IllegalInstruction { pc, word } => {
            (1, *pc, word.map_or(u64::MAX, u64::from))
        }
        rv32_ref::RefTrap::MemoryFault { pc, addr, is_store } => {
            (2, *pc, ((*addr as u64) << 1) | *is_store as u64)
        }
    }
}

fn riscv_case(case_seed: u64, size_override: Option<usize>, inject: bool) -> CaseOutcome {
    let mut rng = StdRng::seed_from_u64(case_seed);
    let len = draw_size(&mut rng, Domain::Riscv, size_override);
    let words = random_rv_program(&mut rng, len);

    let mut fast_mem = FlatMemory::new(RV_MEM_BYTES);
    fast_mem.load_words(0, &words);
    let mut fast_cpu = Cpu::new(0); // decoded-block cache on by default
    let fast_exit = fast_cpu.run_counted(&mut fast_mem, RV_BUDGET);

    let mut ref_mem = rv32_ref::RefMemory::new(RV_MEM_BYTES);
    ref_mem.load_words(0, &words);
    let mut ref_cpu = rv32_ref::RefCpu::new(0);
    let ref_exit = ref_cpu.run(&mut ref_mem, RV_BUDGET);

    let diverge =
        |what: String| CaseOutcome::diverged(len, 0.0, format!("riscv len={len}: {what}"));

    match (&fast_exit, &ref_exit) {
        (Ok(f), Ok(r)) => {
            let fh = match f.halt {
                Halt::Ecall => "ecall",
                Halt::Ebreak => "ebreak",
                Halt::CycleLimit => "limit",
            };
            let rh = match r.0 {
                rv32_ref::RefHalt::Ecall => "ecall",
                rv32_ref::RefHalt::Ebreak => "ebreak",
                rv32_ref::RefHalt::CycleLimit => "limit",
            };
            if fh != rh {
                return diverge(format!("halt {fh} vs oracle {rh}"));
            }
            if f.cycles_consumed != r.1 {
                return diverge(format!("consumed {} vs oracle {}", f.cycles_consumed, r.1));
            }
        }
        (Err(f), Err(r)) => {
            if trap_key(f) != ref_trap_key(r) {
                return diverge(format!("trap {f:?} vs oracle {r:?}"));
            }
        }
        (Ok(f), Err(r)) => return diverge(format!("halt {:?} vs oracle trap {r:?}", f.halt)),
        (Err(f), Ok(r)) => return diverge(format!("trap {f:?} vs oracle halt {:?}", r.0)),
    }

    for r in 0..32u8 {
        let mut fv = fast_cpu.reg(r);
        if inject && r == 1 {
            fv = fv.wrapping_add(1); // simulated off-by-one in x1
        }
        if fv != ref_cpu.regs[r as usize] {
            return diverge(format!(
                "x{r} = {:#010x} vs oracle {:#010x}",
                fv, ref_cpu.regs[r as usize]
            ));
        }
    }
    if fast_cpu.pc != ref_cpu.pc {
        return diverge(format!(
            "pc {:#010x} vs oracle {:#010x}",
            fast_cpu.pc, ref_cpu.pc
        ));
    }
    if fast_cpu.cycles != ref_cpu.cycles || fast_cpu.instret != ref_cpu.instret {
        return diverge(format!(
            "counters ({}, {}) vs oracle ({}, {})",
            fast_cpu.cycles, fast_cpu.instret, ref_cpu.cycles, ref_cpu.instret
        ));
    }
    for a in (0..RV_MEM_BYTES as u32).step_by(4) {
        if fast_mem.peek_word(a) != ref_mem.peek_word(a) {
            return diverge(format!(
                "mem[{a:#06x}] {:?} vs oracle {:?}",
                fast_mem.peek_word(a),
                ref_mem.peek_word(a)
            ));
        }
    }
    CaseOutcome::pass(len, 0.0)
}

// ------------------------------------------------------------------- snn

fn snn_case(case_seed: u64, size_override: Option<usize>, inject: bool) -> CaseOutcome {
    let mut rng = StdRng::seed_from_u64(case_seed);
    let count = draw_size(&mut rng, Domain::Snn, size_override);
    let tau = rng.gen_range(2.0..20.0);
    let threshold = rng.gen_range(0.3..1.5);
    let refractory = rng.gen_range(0.0..5.0);
    let dt = rng.gen_range(0.05..1.0);

    let mut arr = NeuronArray::uniform(count, tau, threshold, refractory);
    let mut golden: Vec<snn_ref::RefLif> = (0..count)
        .map(|_| snn_ref::RefLif::new(tau, threshold, refractory))
        .collect();

    for t in 0..200usize {
        for (j, neuron) in golden.iter_mut().enumerate() {
            let input = rng.gen_range(-0.2..1.2);
            let fast_spike = arr.step(j, input, dt);
            let ref_spike = neuron.step(input, dt);
            if fast_spike != ref_spike {
                return CaseOutcome::diverged(
                    count,
                    0.0,
                    format!("snn count={count}: spike mismatch at step {t} neuron {j}"),
                );
            }
            let mut fast_v = arr.potential(j);
            if inject && t == 0 && j == 0 {
                fast_v += 1e-9; // simulated drift in the SoA stepper
            }
            if fast_v.to_bits() != neuron.potential.to_bits() {
                return CaseOutcome::diverged(
                    count,
                    (fast_v - neuron.potential).abs(),
                    format!("snn count={count}: potential bits differ at step {t} neuron {j}"),
                );
            }
        }
    }

    // STDP window: bit-identical weight updates and quantized steps.
    let a_plus = rng.gen_range(0.05..0.5);
    let a_minus = rng.gen_range(0.05..0.5);
    let tau_plus = rng.gen_range(5.0..40.0);
    let tau_minus = rng.gen_range(5.0..40.0);
    let rule = StdpRule::new(a_plus, a_minus, tau_plus, tau_minus);
    let golden_rule = snn_ref::RefStdp {
        a_plus,
        a_minus,
        tau_plus,
        tau_minus,
    };
    for _ in 0..20 {
        let dtm = rng.gen_range(-50.0..50.0);
        let levels = rng.gen_range(2u32..64);
        if rule.delta_w(dtm).to_bits() != golden_rule.delta_w(dtm).to_bits() {
            return CaseOutcome::diverged(
                count,
                (rule.delta_w(dtm) - golden_rule.delta_w(dtm)).abs(),
                format!("snn: delta_w bits differ at dt={dtm}"),
            );
        }
        if rule.steps(dtm, levels) != golden_rule.steps(dtm, levels as usize) {
            return CaseOutcome::diverged(
                count,
                0.0,
                format!("snn: quantized steps differ at dt={dtm} levels={levels}"),
            );
        }
    }
    CaseOutcome::pass(count, 0.0)
}

// ------------------------------------------------------------------- pcm

fn pcm_case(case_seed: u64, size_override: Option<usize>, inject: bool) -> CaseOutcome {
    let mut rng = StdRng::seed_from_u64(case_seed);
    let levels = draw_size(&mut rng, Domain::Pcm, size_override);
    let tol = Domain::Pcm.tolerance();
    let mat_idx = rng.gen_range(0usize..3);
    let material = [PcmMaterial::Gst225, PcmMaterial::Gsst, PcmMaterial::GeSe][mat_idx];

    let mut fast_grid = transmission_levels(material, levels as u32);
    if inject {
        fast_grid[0] += 1e-9;
    }
    let golden_grid = pcm_ref::transmission_levels_ref(mat_idx, levels);
    let mut worst = 0.0f64;
    for l in 0..levels {
        worst = worst.max((fast_grid[l] - golden_grid[l]).abs());
    }

    let x = rng.gen_range(0.0..=1.0);
    let fast_idx = material.effective_index(x);
    let golden_idx = pcm_ref::effective_index_ref(mat_idx, x);
    worst = worst.max((fast_idx.re - golden_idx.re).abs());
    worst = worst.max((fast_idx.im - golden_idx.im).abs());

    let mut cell = PcmCell::new(material);
    let level = rng.gen_range(0..levels);
    cell.program_level(level as u32, levels as u32);
    let golden_frac = pcm_ref::program_level_ref(0.0, 1.0 / 32.0, level, levels);
    worst = worst.max((cell.crystalline_fraction() - golden_frac).abs());

    let elapsed = rng.gen_range(0.0..1e6);
    let nu = rng.gen_range(-0.05..0.05);
    cell.apply_drift(elapsed, nu);
    let golden_drift = pcm_ref::drift_ref(golden_frac, elapsed, nu);
    worst = worst.max((cell.crystalline_fraction() - golden_drift).abs());

    if worst > tol {
        return CaseOutcome::diverged(
            levels,
            worst,
            format!("pcm levels={levels} material={mat_idx}: error {worst:e} exceeds tol {tol:e}"),
        );
    }
    CaseOutcome::pass(levels, worst)
}

// ------------------------------------------------------------ snn_sparse

/// Three-way differential case: the event-driven sparse engine vs the
/// dense baseline vs [`snn_ref::RefSparseNet`], over a random network
/// and injection schedule, compared bit-for-bit — fire queues every
/// tick, then final potentials, fire ledgers and synapse levels.
fn snn_sparse_case(case_seed: u64, size_override: Option<usize>, inject: bool) -> CaseOutcome {
    let mut rng = StdRng::seed_from_u64(case_seed);
    let n = draw_size(&mut rng, Domain::SnnSparse, size_override);
    let fanout = rng.gen_range(1..n.min(6));
    let levels = rng.gen_range(4u32..24);
    let plastic = rng.gen_bool(0.7);
    let spec_seed: u64 = rng.gen();
    let mut spec = NetSpec::random(spec_seed, n, fanout, levels, plastic);
    spec.tau = rng.gen_range(2.0..20.0);
    spec.threshold = rng.gen_range(0.3..1.5);
    spec.refractory = rng.gen_range(0.0..5.0);
    spec.dt = rng.gen_range(0.05..1.0);
    spec.rule = StdpRule::new(
        rng.gen_range(0.05..0.5),
        rng.gen_range(0.05..0.5),
        rng.gen_range(5.0..40.0),
        rng.gen_range(5.0..40.0),
    );

    let mut fast = EventNet::new(&spec);
    fast.threads = rng.gen_range(1usize..5);
    let mut dense = DenseNet::new(&spec);
    let level_weights = fast.synapses().table().weights().to_vec();
    let mut oracle = snn_ref::RefSparseNet::new(
        spec.neurons,
        spec.tau,
        spec.threshold,
        spec.refractory,
        spec.dt,
        snn_ref::RefStdp {
            a_plus: spec.rule.a_plus,
            a_minus: spec.rule.a_minus,
            tau_plus: spec.rule.tau_plus,
            tau_minus: spec.rule.tau_minus,
        },
        spec.plastic,
        &level_weights,
        &spec.edges,
        &spec.init_levels,
    );

    // Injection schedule strong enough to elicit spikes regularly.
    let kick_max = 2.0 * spec.threshold / spec.dt;
    for t in 0..120u32 {
        let count = rng.gen_range(0usize..4);
        let inj: Vec<(u32, f64)> = (0..count)
            .map(|_| (rng.gen_range(0..n as u32), rng.gen_range(0.0..kick_max)))
            .collect();
        let fired_fast = fast.tick(&inj).to_vec();
        let fired_dense = dense.tick(&inj).to_vec();
        let fired_ref = oracle.tick(&inj);
        if fired_fast != fired_dense {
            return CaseOutcome::diverged(
                n,
                0.0,
                format!("snn_sparse n={n}: event vs dense fire queue at tick {t}"),
            );
        }
        if fired_fast != fired_ref {
            return CaseOutcome::diverged(
                n,
                0.0,
                format!("snn_sparse n={n}: event vs oracle fire queue at tick {t}"),
            );
        }
    }

    fast.flush();
    let ref_potentials = oracle.potentials();
    for (j, ref_v) in ref_potentials.iter().enumerate().take(n) {
        let mut fast_v = fast.potentials()[j];
        if inject && j == 0 {
            fast_v += 1e-9; // simulated lazy-leak drift in the engine
        }
        if fast_v.to_bits() != ref_v.to_bits() {
            return CaseOutcome::diverged(
                n,
                (fast_v - ref_v).abs(),
                format!("snn_sparse n={n}: potential bits differ at neuron {j}"),
            );
        }
        if fast_v.to_bits() != dense.potentials()[j].to_bits() {
            return CaseOutcome::diverged(
                n,
                (fast_v - dense.potentials()[j]).abs(),
                format!("snn_sparse n={n}: event vs dense potential at neuron {j}"),
            );
        }
    }
    if fast.fire_ledger() != oracle.fire_ledger() || fast.fire_ledger() != dense.fire_ledger() {
        return CaseOutcome::diverged(n, 0.0, format!("snn_sparse n={n}: fire ledgers differ"));
    }
    // Synapse levels: the engine's CSR order is (source, target)-sorted,
    // exactly the reference's edge order.
    if fast.synapses().levels_flat() != oracle.levels()
        || fast.synapses().levels_flat() != dense.synapses().levels_flat()
    {
        return CaseOutcome::diverged(n, 0.0, format!("snn_sparse n={n}: synapse levels differ"));
    }
    CaseOutcome::pass(n, 0.0)
}

// -------------------------------------------------------------- plumbing

/// Shrinks a divergent case: retries the same case seed at every size
/// from the domain minimum upward and returns the first size that
/// still diverges (guaranteed to terminate at the original size).
fn shrink(domain: Domain, case_seed: u64, original: &CaseOutcome, inject: bool) -> ShrunkRepro {
    for size in domain.min_size()..original.size {
        let outcome = run_case(domain, case_seed, Some(size), inject);
        if let Some(detail) = outcome.divergence {
            return ShrunkRepro {
                case_index: 0,
                case_seed,
                original_size: original.size,
                shrunk_size: size,
                detail,
            };
        }
    }
    ShrunkRepro {
        case_index: 0,
        case_seed,
        original_size: original.size,
        shrunk_size: original.size,
        detail: original.divergence.clone().unwrap_or_default(),
    }
}

/// Runs `cases` seeded cases for one domain, shrinking divergences.
pub fn run_domain(domain: Domain, seed: u64, cases: usize, inject: bool) -> DomainReport {
    let domain_seed = split_seed(seed, domain.index());
    let outcomes = par_map_indexed(cases, available_threads(), |i| {
        run_case(domain, split_seed(domain_seed, i as u64), None, inject)
    });
    let mut report = DomainReport {
        domain,
        cases,
        passes: 0,
        divergences: 0,
        worst_error: 0.0,
        repros: Vec::new(),
    };
    for (i, outcome) in outcomes.iter().enumerate() {
        report.worst_error = report.worst_error.max(outcome.error);
        if outcome.divergence.is_some() {
            report.divergences += 1;
            if report.repros.len() < MAX_REPROS {
                let case_seed = split_seed(domain_seed, i as u64);
                let mut repro = shrink(domain, case_seed, outcome, inject);
                repro.case_index = i;
                report.repros.push(repro);
            }
        } else {
            report.passes += 1;
        }
    }
    report
}

/// Runs the configured conformance campaign.
pub fn run_conformance(config: &ConformanceConfig) -> ConformanceReport {
    let mut domains = Vec::with_capacity(config.domains.len());
    for &domain in &config.domains {
        let inject = config.inject == Some(domain);
        domains.push(run_domain(domain, config.seed, config.cases, inject));
    }
    ConformanceReport {
        seed: config.seed,
        cases_per_domain: config.cases,
        total_divergences: domains.iter().map(|d| d.divergences).sum(),
        domains,
    }
}

//! Single-instruction-at-a-time RV32IM reference stepper: its own
//! decoder, its own flat memory, no decoded-block cache, no wfi
//! fast-forward, no bulk fetch accounting. Written against the RISC-V
//! unprivileged spec (RV32I base + M extension) plus the workspace's
//! documented cost model and CSR map, so it can adjudicate the
//! optimized interpreter in `neuropulsim-riscv`.

/// Per-instruction-class cycle charges, matching the simulator's
/// default timing model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefCycleModel {
    /// Plain ALU / CSR / fence instructions.
    pub alu: u64,
    /// Taken branches and jumps.
    pub branch_taken: u64,
    /// Memory loads.
    pub load: u64,
    /// Memory stores.
    pub store: u64,
    /// Multiplies.
    pub mul: u64,
    /// Divides and remainders.
    pub div: u64,
}

impl Default for RefCycleModel {
    fn default() -> Self {
        RefCycleModel {
            alu: 1,
            branch_taken: 3,
            load: 2,
            store: 1,
            mul: 3,
            div: 20,
        }
    }
}

/// Why a reference run stopped retiring instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefHalt {
    /// `ecall` retired.
    Ecall,
    /// `ebreak` retired.
    Ebreak,
    /// The cycle budget ran out.
    CycleLimit,
}

/// Trap raised by the reference stepper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefTrap {
    /// Fetching or decoding at `pc` failed.
    IllegalInstruction {
        /// Program counter of the offending fetch.
        pc: u32,
        /// The fetched word, if the fetch itself succeeded.
        word: Option<u32>,
    },
    /// A data access faulted.
    MemoryFault {
        /// Program counter of the faulting instruction.
        pc: u32,
        /// The faulting data address.
        addr: u32,
        /// Whether the access was a store.
        is_store: bool,
    },
}

/// Flat little-endian RAM starting at address zero, with the same
/// word-granular bounds rule as the system bus: any access whose
/// containing aligned word ends past the memory faults.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RefMemory {
    bytes: Vec<u8>,
}

impl RefMemory {
    /// Creates a zeroed memory of `size` bytes, rounded up to a word.
    pub fn new(size: usize) -> Self {
        RefMemory {
            bytes: vec![0; (size + 3) & !3],
        }
    }

    /// Copies instruction words into memory starting at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the memory size.
    pub fn load_words(&mut self, addr: u32, words: &[u32]) {
        for (k, w) in words.iter().enumerate() {
            let a = addr as usize + 4 * k;
            self.bytes[a..a + 4].copy_from_slice(&w.to_le_bytes());
        }
    }

    /// Reads the aligned word containing `addr`, or `None` out of range.
    pub fn peek_word(&self, addr: u32) -> Option<u32> {
        let a = (addr & !3) as usize;
        let b = self.bytes.get(a..a + 4)?;
        Some(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn load_word(&self, addr: u32) -> Result<u32, u32> {
        self.peek_word(addr).ok_or(addr)
    }

    fn store_word(&mut self, addr: u32, value: u32) -> Result<(), u32> {
        let a = (addr & !3) as usize;
        if a + 4 > self.bytes.len() {
            return Err(addr);
        }
        self.bytes[a..a + 4].copy_from_slice(&value.to_le_bytes());
        Ok(())
    }

    fn load_byte(&self, addr: u32) -> Result<u8, u32> {
        let w = self.load_word(addr & !3).map_err(|_| addr)?;
        Ok((w >> ((addr & 3) * 8)) as u8)
    }

    fn load_half(&self, addr: u32) -> Result<u16, u32> {
        let w = self.load_word(addr & !3).map_err(|_| addr)?;
        Ok((w >> ((addr & 2) * 8)) as u16)
    }

    fn store_byte(&mut self, addr: u32, value: u8) -> Result<(), u32> {
        let aligned = addr & !3;
        let shift = (addr & 3) * 8;
        let w = self.load_word(aligned).map_err(|_| addr)?;
        let w = (w & !(0xffu32 << shift)) | ((value as u32) << shift);
        self.store_word(aligned, w).map_err(|_| addr)
    }

    fn store_half(&mut self, addr: u32, value: u16) -> Result<(), u32> {
        let aligned = addr & !3;
        let shift = (addr & 2) * 8;
        let w = self.load_word(aligned).map_err(|_| addr)?;
        let w = (w & !(0xffffu32 << shift)) | ((value as u32) << shift);
        self.store_word(aligned, w).map_err(|_| addr)
    }
}

/// The architectural state of the reference hart.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RefCpu {
    /// Integer register file; `regs[0]` is hardwired to zero.
    pub regs: [u32; 32],
    /// Program counter.
    pub pc: u32,
    /// Retired-cycle counter (`mcycle`).
    pub cycles: u64,
    /// Retired-instruction counter (`minstret`).
    pub instret: u64,
    /// The `mscratch` CSR.
    pub mscratch: u32,
    /// Set by `wfi`; while set, cycles pass but nothing retires.
    pub waiting_for_interrupt: bool,
    /// Cycle charges per instruction class.
    pub model: RefCycleModel,
}

const CSR_MCYCLE: u16 = 0xB00;
const CSR_MINSTRET: u16 = 0xB02;
const CSR_MSCRATCH: u16 = 0x340;

impl RefCpu {
    /// A reset hart starting at `pc`.
    pub fn new(pc: u32) -> Self {
        RefCpu {
            regs: [0; 32],
            pc,
            cycles: 0,
            instret: 0,
            mscratch: 0,
            waiting_for_interrupt: false,
            model: RefCycleModel::default(),
        }
    }

    fn reg(&self, r: usize) -> u32 {
        self.regs[r]
    }

    fn set_reg(&mut self, r: usize, v: u32) {
        if r != 0 {
            self.regs[r] = v;
        }
    }

    fn read_csr(&self, addr: u16) -> u32 {
        match addr {
            CSR_MCYCLE => self.cycles as u32,
            CSR_MINSTRET => self.instret as u32,
            CSR_MSCRATCH => self.mscratch,
            // Micro-architectural counters (block-cache hit/miss) do
            // not exist here; the spec reads them as zero on a
            // cache-less hart, and conformance programs must not
            // depend on them.
            _ => 0,
        }
    }

    fn write_csr(&mut self, addr: u16, value: u32) {
        if addr == CSR_MSCRATCH {
            self.mscratch = value;
        }
    }

    /// Executes one instruction (or one sleeping cycle under wfi).
    ///
    /// # Errors
    ///
    /// Returns a [`RefTrap`] on illegal instructions or memory faults.
    pub fn step(&mut self, mem: &mut RefMemory) -> Result<Option<RefHalt>, RefTrap> {
        if self.waiting_for_interrupt {
            self.cycles += 1;
            return Ok(None);
        }
        let pc = self.pc;
        let word = mem.load_word(pc).map_err(|addr| RefTrap::MemoryFault {
            pc,
            addr,
            is_store: false,
        })?;
        let mut next_pc = pc.wrapping_add(4);
        let mut cost = self.model.alu;
        let mut halt = None;

        let opcode = word & 0x7f;
        let rd = ((word >> 7) & 0x1f) as usize;
        let funct3 = (word >> 12) & 0x7;
        let rs1 = ((word >> 15) & 0x1f) as usize;
        let rs2 = ((word >> 20) & 0x1f) as usize;
        let funct7 = word >> 25;
        let imm_i = (word as i32) >> 20;
        let imm_s = (((word & 0xfe00_0000) as i32) >> 20) | (((word >> 7) & 0x1f) as i32);
        let imm_b = (((word & 0x8000_0000) as i32) >> 19)
            | ((((word >> 7) & 1) << 11) as i32)
            | ((((word >> 25) & 0x3f) << 5) as i32)
            | ((((word >> 8) & 0xf) << 1) as i32);
        let imm_u = (word & 0xffff_f000) as i32;
        let imm_j = (((word & 0x8000_0000) as i32) >> 11)
            | (((word >> 12) & 0xff) << 12) as i32
            | ((((word >> 20) & 1) << 11) as i32)
            | ((((word >> 21) & 0x3ff) << 1) as i32);
        let illegal = RefTrap::IllegalInstruction {
            pc,
            word: Some(word),
        };
        let data_fault = |addr: u32, is_store: bool| RefTrap::MemoryFault { pc, addr, is_store };

        match opcode {
            0b0110111 => self.set_reg(rd, imm_u as u32),
            0b0010111 => self.set_reg(rd, pc.wrapping_add(imm_u as u32)),
            0b1101111 => {
                self.set_reg(rd, next_pc);
                next_pc = pc.wrapping_add(imm_j as u32);
                cost = self.model.branch_taken;
            }
            0b1100111 => {
                if funct3 != 0 {
                    return Err(illegal);
                }
                let target = self.reg(rs1).wrapping_add(imm_i as u32) & !1;
                self.set_reg(rd, next_pc);
                next_pc = target;
                cost = self.model.branch_taken;
            }
            0b1100011 => {
                let a = self.reg(rs1);
                let b = self.reg(rs2);
                let taken = match funct3 {
                    0b000 => a == b,
                    0b001 => a != b,
                    0b100 => (a as i32) < (b as i32),
                    0b101 => (a as i32) >= (b as i32),
                    0b110 => a < b,
                    0b111 => a >= b,
                    _ => return Err(illegal),
                };
                if taken {
                    next_pc = pc.wrapping_add(imm_b as u32);
                    cost = self.model.branch_taken;
                }
            }
            0b0000011 => {
                let addr = self.reg(rs1).wrapping_add(imm_i as u32);
                let v = match funct3 {
                    0b000 => mem.load_byte(addr).map(|b| b as i8 as i32 as u32),
                    0b001 => mem.load_half(addr).map(|h| h as i16 as i32 as u32),
                    0b010 => mem.load_word(addr),
                    0b100 => mem.load_byte(addr).map(|b| b as u32),
                    0b101 => mem.load_half(addr).map(|h| h as u32),
                    _ => return Err(illegal),
                }
                .map_err(|a| data_fault(a, false))?;
                self.set_reg(rd, v);
                cost = self.model.load;
            }
            0b0100011 => {
                let addr = self.reg(rs1).wrapping_add(imm_s as u32);
                let v = self.reg(rs2);
                match funct3 {
                    0b000 => mem.store_byte(addr, v as u8),
                    0b001 => mem.store_half(addr, v as u16),
                    0b010 => mem.store_word(addr, v),
                    _ => return Err(illegal),
                }
                .map_err(|a| data_fault(a, true))?;
                cost = self.model.store;
            }
            0b0010011 => {
                let a = self.reg(rs1);
                let shamt = rs2 as u32;
                let v = match funct3 {
                    0b000 => a.wrapping_add(imm_i as u32),
                    0b010 => ((a as i32) < imm_i) as u32,
                    0b011 => (a < imm_i as u32) as u32,
                    0b100 => a ^ imm_i as u32,
                    0b110 => a | imm_i as u32,
                    0b111 => a & imm_i as u32,
                    0b001 if funct7 == 0 => a << shamt,
                    0b101 if funct7 == 0 => a >> shamt,
                    0b101 if funct7 == 0b0100000 => ((a as i32) >> shamt) as u32,
                    _ => return Err(illegal),
                };
                self.set_reg(rd, v);
            }
            0b0110011 => {
                let a = self.reg(rs1);
                let b = self.reg(rs2);
                let v = match (funct7, funct3) {
                    (0b0000000, 0b000) => a.wrapping_add(b),
                    (0b0100000, 0b000) => a.wrapping_sub(b),
                    (0b0000000, 0b001) => a << (b & 0x1f),
                    (0b0000000, 0b010) => ((a as i32) < (b as i32)) as u32,
                    (0b0000000, 0b011) => (a < b) as u32,
                    (0b0000000, 0b100) => a ^ b,
                    (0b0000000, 0b101) => a >> (b & 0x1f),
                    (0b0100000, 0b101) => ((a as i32) >> (b & 0x1f)) as u32,
                    (0b0000000, 0b110) => a | b,
                    (0b0000000, 0b111) => a & b,
                    (0b0000001, 0b000) => {
                        cost = self.model.mul;
                        a.wrapping_mul(b)
                    }
                    (0b0000001, 0b001) => {
                        cost = self.model.mul;
                        (((a as i32 as i64) * (b as i32 as i64)) >> 32) as u32
                    }
                    (0b0000001, 0b010) => {
                        cost = self.model.mul;
                        (((a as i32 as i64) * (b as u64 as i64)) >> 32) as u32
                    }
                    (0b0000001, 0b011) => {
                        cost = self.model.mul;
                        (((a as u64) * (b as u64)) >> 32) as u32
                    }
                    (0b0000001, 0b100) => {
                        cost = self.model.div;
                        let (sa, sb) = (a as i32, b as i32);
                        if sb == 0 {
                            -1i32 as u32
                        } else if sa == i32::MIN && sb == -1 {
                            i32::MIN as u32
                        } else {
                            (sa / sb) as u32
                        }
                    }
                    (0b0000001, 0b101) => {
                        cost = self.model.div;
                        a.checked_div(b).unwrap_or(u32::MAX)
                    }
                    (0b0000001, 0b110) => {
                        cost = self.model.div;
                        let (sa, sb) = (a as i32, b as i32);
                        if sb == 0 {
                            a
                        } else if sa == i32::MIN && sb == -1 {
                            0
                        } else {
                            (sa % sb) as u32
                        }
                    }
                    (0b0000001, 0b111) => {
                        cost = self.model.div;
                        a.checked_rem(b).unwrap_or(a)
                    }
                    _ => return Err(illegal),
                };
                self.set_reg(rd, v);
            }
            0b0001111 => {} // fence: ordering no-op on a single hart
            0b1110011 => match funct3 {
                0b000 => match word {
                    0x0000_0073 => halt = Some(RefHalt::Ecall),
                    0x0010_0073 => halt = Some(RefHalt::Ebreak),
                    0x1050_0073 => self.waiting_for_interrupt = true,
                    _ => return Err(illegal),
                },
                0b001 => {
                    let csr = (word >> 20) as u16;
                    let old = self.read_csr(csr);
                    self.write_csr(csr, self.reg(rs1));
                    self.set_reg(rd, old);
                }
                0b010 => {
                    let csr = (word >> 20) as u16;
                    let old = self.read_csr(csr);
                    if rs1 != 0 {
                        self.write_csr(csr, old | self.reg(rs1));
                    }
                    self.set_reg(rd, old);
                }
                0b011 => {
                    let csr = (word >> 20) as u16;
                    let old = self.read_csr(csr);
                    if rs1 != 0 {
                        self.write_csr(csr, old & !self.reg(rs1));
                    }
                    self.set_reg(rd, old);
                }
                _ => return Err(illegal),
            },
            _ => return Err(illegal),
        }

        self.pc = next_pc;
        self.cycles += cost;
        self.instret += 1;
        Ok(halt)
    }

    /// Runs until halt, trap, or the cycle budget is consumed, one
    /// instruction at a time. Mirrors the optimized interpreter's
    /// budget rule: execution continues while `cycles < start + max`,
    /// so the final instruction may overshoot the budget, and the
    /// overshoot is included in the returned consumed-cycle count.
    ///
    /// # Errors
    ///
    /// Returns a [`RefTrap`] on illegal instructions or memory faults.
    pub fn run(&mut self, mem: &mut RefMemory, max_cycles: u64) -> Result<(RefHalt, u64), RefTrap> {
        let start = self.cycles;
        let limit = start.saturating_add(max_cycles);
        let mut halt = RefHalt::CycleLimit;
        while self.cycles < limit {
            if let Some(h) = self.step(mem)? {
                halt = h;
                break;
            }
        }
        Ok((halt, self.cycles - start))
    }
}

//! Golden reference oracles and the differential conformance harness.
//!
//! Every optimized fast path in the workspace — the SoA/blocked matmul
//! kernels, [`CompiledMesh`](neuropulsim_core::program::CompiledMesh)
//! plans, the vectorized ABFT checksums, the decoded-block RV32IM
//! interpreter with wfi fast-forward, and the array-of-neurons SNN
//! stepper — has a deliberately slow, obviously-correct counterpart in
//! this crate, mirrored from the spec rather than from the optimized
//! code. The [`harness`] module fuzzes fast path against oracle over
//! seeded random cases, shrinks any divergence to a minimal
//! reproducer, and emits a JSON [`harness::ConformanceReport`].
//!
//! Design rules for the oracles:
//!
//! - **Independence.** Reference implementations never call the fast
//!   paths they check. The RV32IM stepper has its own decoder; the mesh
//!   rebuild multiplies full dense two-level matrices; the ABFT check
//!   recomputes checksums with scalar loops.
//! - **Clarity over speed.** Straight-line scalar code, no caches, no
//!   blocking, no thread pools.
//! - **Spec-pinned tolerances.** Integer/state domains (RV32IM, SNN
//!   spikes, ABFT verdicts) must match bit-for-bit; floating-point
//!   domains carry a documented tolerance (see `TESTING.md` at the
//!   repository root).

#![warn(missing_docs)]

pub mod abft_ref;
pub mod decomp_ref;
pub mod harness;
pub mod linalg_ref;
pub mod pcm_ref;
pub mod rv32_matrix;
pub mod rv32_ref;
pub mod snn_ref;

//! PCM reference curves: Lorentz–Lorenz effective-medium mixing,
//! patch-transmission level grids, and logarithmic drift, computed with
//! a local minimal complex-number helper instead of the linalg crate's
//! `C64`.

/// Free-space telecom wavelength used by the transmission model (m).
const LAMBDA: f64 = 1550e-9;

/// Minimal complex arithmetic for the permittivity mixing rule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cx {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Cx {
    /// Constructs a complex number.
    pub fn new(re: f64, im: f64) -> Self {
        Cx { re, im }
    }

    fn add(self, o: Cx) -> Cx {
        Cx::new(self.re + o.re, self.im + o.im)
    }

    fn sub(self, o: Cx) -> Cx {
        Cx::new(self.re - o.re, self.im - o.im)
    }

    fn mul(self, o: Cx) -> Cx {
        Cx::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }

    fn scale(self, s: f64) -> Cx {
        Cx::new(self.re * s, self.im * s)
    }

    fn div(self, o: Cx) -> Cx {
        let d = o.re * o.re + o.im * o.im;
        Cx::new(
            (self.re * o.re + self.im * o.im) / d,
            (self.im * o.re - self.re * o.im) / d,
        )
    }

    /// Principal square root via polar form.
    pub fn sqrt(self) -> Cx {
        let r = (self.re * self.re + self.im * self.im).sqrt().sqrt();
        let half_arg = self.im.atan2(self.re) / 2.0;
        Cx::new(r * half_arg.cos(), r * half_arg.sin())
    }
}

/// Complex refractive indices `(amorphous, crystalline)` of a PCM
/// material at 1550 nm, duplicated from the literature values the
/// photonics crate cites.
pub fn material_indices(material: usize) -> (Cx, Cx) {
    match material % 3 {
        0 => (Cx::new(3.94, 0.045), Cx::new(6.11, 0.83)), // GST-225
        1 => (Cx::new(3.47, 0.0002), Cx::new(4.86, 0.18)), // GSST
        _ => (Cx::new(2.44, 0.0005), Cx::new(2.97, 0.0035)), // GeSe
    }
}

/// Effective complex index at crystalline fraction `x ∈ [0, 1]` via the
/// Lorentz–Lorenz mixing rule on the permittivities.
pub fn effective_index_ref(material: usize, x: f64) -> Cx {
    let (n_a, n_c) = material_indices(material);
    let eps_a = n_a.mul(n_a);
    let eps_c = n_c.mul(n_c);
    let ll = |eps: Cx| eps.sub(Cx::new(1.0, 0.0)).div(eps.add(Cx::new(2.0, 0.0)));
    let mixed = ll(eps_c).scale(x).add(ll(eps_a).scale(1.0 - x));
    let eps = Cx::new(1.0, 0.0)
        .add(mixed.scale(2.0))
        .div(Cx::new(1.0, 0.0).sub(mixed));
    eps.sqrt()
}

/// Reference transmission-level grid: `levels` equally spaced
/// crystalline fractions mapped through the patch absorption model and
/// normalized to the amorphous (fully transparent) level, with the same
/// strict-monotonicity fixup as the fast path.
///
/// # Panics
///
/// Panics if `levels < 2`.
pub fn transmission_levels_ref(material: usize, levels: usize) -> Vec<f64> {
    assert!(levels >= 2, "at least two levels required");
    let gamma = 0.3;
    let tau = std::f64::consts::TAU;
    let k_c = effective_index_ref(material, 1.0).im.max(1e-6);
    let target_field_t: f64 = 0.316;
    let patch_length = -target_field_t.ln() * LAMBDA / (tau * gamma * k_c);
    let transmission = |x: f64| {
        let k = effective_index_ref(material, x).im;
        (-2.0 * tau / LAMBDA * gamma * k * patch_length).exp()
    };
    let t0 = transmission(0.0);
    let mut grid: Vec<f64> = (0..levels)
        .map(|l| transmission(l as f64 / (levels - 1) as f64) / t0)
        .collect();
    for l in 1..grid.len() {
        if grid[l] >= grid[l - 1] {
            grid[l] = grid[l - 1] * (1.0 - 1e-15);
        }
    }
    grid
}

/// Reference crystallization drift: the fraction shifts by
/// `ν·ln(1 + t/τ)` with τ = 1 s, clamped to [0, 1], with the same
/// totality rules as the fast path (non-finite elapsed time saturates,
/// NaN outcomes are discarded).
pub fn drift_ref(fraction: f64, elapsed_s: f64, nu: f64) -> f64 {
    let t = if elapsed_s.is_finite() {
        (elapsed_s / 1.0).max(0.0)
    } else if elapsed_s > 0.0 {
        f64::MAX
    } else {
        0.0
    };
    let shift = nu * (1.0 + t).ln();
    let next = fraction + shift;
    if next.is_nan() {
        fraction
    } else {
        next.clamp(0.0, 1.0)
    }
}

/// Reference level programming: RESET first if the target fraction is
/// below the current one, then repeated SET pulses of `set_step` until
/// the target is reached, then snap exactly onto the grid point.
///
/// # Panics
///
/// Panics if `levels < 2` or `level >= levels`.
pub fn program_level_ref(mut fraction: f64, set_step: f64, level: usize, levels: usize) -> f64 {
    assert!(levels >= 2, "at least two levels required");
    assert!(level < levels, "level out of range");
    let target = level as f64 / (levels - 1) as f64;
    if target < fraction - 1e-12 {
        fraction = 0.0;
    }
    while fraction + 1e-12 < target {
        fraction = (fraction + set_step).min(1.0);
        if fraction >= 1.0 {
            break;
        }
    }
    target
}

//! Deterministic scoped-thread parallelism helpers.
//!
//! Every fan-out in the workspace (GeMM column batches, Monte-Carlo
//! robustness sweeps, per-neuron SNN updates) goes through this module,
//! which enforces one invariant: **results are a pure function of the
//! inputs and the seed — never of the thread count**. Two rules make
//! that hold:
//!
//! 1. work is split by *item index*, and anything random derives its RNG
//!    from [`split_seed`]`(seed, index)` — per item, not per chunk — so a
//!    1-thread and an N-thread run draw identical streams;
//! 2. [`par_map_indexed`] returns results in item order regardless of
//!    which thread computed them.
//!
//! Threads come from [`std::thread::scope`], so borrowed captures work
//! without `'static` bounds and there is no pool to shut down. The
//! default width is [`available_threads`], overridable with the
//! `NEUROPULSIM_THREADS` environment variable (useful both to pin CI and
//! to verify the determinism invariant by sweeping widths).

use std::num::NonZeroUsize;

/// Worker count used when a caller does not pin one explicitly.
///
/// `NEUROPULSIM_THREADS` (if set and positive) wins; otherwise the OS
/// reported parallelism; otherwise 1.
pub fn available_threads() -> usize {
    if let Ok(v) = std::env::var("NEUROPULSIM_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Derives an independent per-item seed from a base seed and item index.
///
/// SplitMix64-style finalization over `seed` and `index` mixed with
/// distinct odd constants; cheap, stateless, and collision-resistant
/// enough that per-trial RNGs seeded from consecutive indices are
/// statistically independent.
pub fn split_seed(seed: u64, index: u64) -> u64 {
    let mut z = seed
        .wrapping_add(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(index.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Maps `f` over `0..len` on up to `threads` scoped workers, returning
/// results in index order.
///
/// Work is split into contiguous index ranges, one per worker; each
/// worker fills its own ordered buffer and the buffers are concatenated,
/// so output order (and, with [`split_seed`]-derived RNGs, output
/// *values*) never depend on `threads`. With `threads <= 1` or a short
/// input the map runs inline with no thread spawn.
pub fn par_map_indexed<T, F>(len: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = threads.max(1).min(len.max(1));
    if workers <= 1 || len <= 1 {
        return (0..len).map(f).collect();
    }
    // Contiguous ranges; the first `rem` workers take one extra item.
    let base = len / workers;
    let rem = len % workers;
    let mut parts: Vec<Vec<T>> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        let mut start = 0;
        for w in 0..workers {
            let count = base + usize::from(w < rem);
            let range = start..start + count;
            start += count;
            let f = &f;
            handles.push(scope.spawn(move || range.map(f).collect::<Vec<T>>()));
        }
        for h in handles {
            parts.push(h.join().expect("parallel worker panicked"));
        }
    });
    let mut out = Vec::with_capacity(len);
    for p in parts {
        out.extend(p);
    }
    out
}

/// Splits `data` into up to `threads` contiguous chunks and runs
/// `f(chunk_start_index, chunk)` on scoped workers.
///
/// The chunk boundaries are a pure function of `data.len()` and
/// `threads`; `f` receives the absolute start index so per-item seeding
/// stays position-based. Runs inline when one worker suffices.
pub fn par_chunks_mut<T, F>(data: &mut [T], threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let len = data.len();
    let workers = threads.max(1).min(len.max(1));
    if workers <= 1 || len <= 1 {
        f(0, data);
        return;
    }
    let base = len / workers;
    let rem = len % workers;
    std::thread::scope(|scope| {
        let mut rest = data;
        let mut start = 0;
        for w in 0..workers {
            let count = base + usize::from(w < rem);
            let (chunk, tail) = rest.split_at_mut(count);
            rest = tail;
            let f = &f;
            let chunk_start = start;
            start += count;
            scope.spawn(move || f(chunk_start, chunk));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn split_seed_is_deterministic_and_spreads() {
        assert_eq!(split_seed(7, 3), split_seed(7, 3));
        assert_ne!(split_seed(7, 3), split_seed(7, 4));
        assert_ne!(split_seed(7, 3), split_seed(8, 3));
        // Consecutive indices should not produce near-identical seeds.
        let a = split_seed(0, 0);
        let b = split_seed(0, 1);
        assert!((a ^ b).count_ones() > 8);
    }

    #[test]
    fn par_map_preserves_order() {
        for threads in [1, 2, 3, 7, 64] {
            let out = par_map_indexed(23, threads, |i| i * i);
            assert_eq!(out, (0..23).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn seeded_map_is_thread_count_invariant() {
        let draw = |i: usize| {
            let mut rng = StdRng::seed_from_u64(split_seed(42, i as u64));
            rng.gen_range(0.0..1.0f64)
        };
        let reference = par_map_indexed(40, 1, draw);
        for threads in [2, 3, 5, 16] {
            assert_eq!(par_map_indexed(40, threads, draw), reference);
        }
    }

    #[test]
    fn par_chunks_mut_covers_every_item_once() {
        for threads in [1, 2, 4, 9] {
            let mut data = vec![0u32; 17];
            par_chunks_mut(&mut data, threads, |start, chunk| {
                for (k, x) in chunk.iter_mut().enumerate() {
                    *x += (start + k) as u32 + 1;
                }
            });
            let expect: Vec<u32> = (1..=17).collect();
            assert_eq!(data, expect);
        }
    }

    #[test]
    fn empty_and_tiny_inputs_are_fine() {
        assert_eq!(par_map_indexed(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(par_map_indexed(1, 4, |i| i), vec![0]);
        let mut empty: [u8; 0] = [];
        par_chunks_mut(&mut empty, 4, |_, _| {});
    }
}

//! Dense complex vectors — optical field amplitudes across waveguide ports.

use crate::C64;
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// A dense complex vector.
///
/// In the photonic stack a `CVector` models the field amplitudes on the `N`
/// input or output waveguides of a multiport interferometer; `|v[i]|^2` is
/// the optical power on port `i`.
///
/// # Examples
///
/// ```
/// use neuropulsim_linalg::{C64, CVector};
///
/// let v = CVector::from_reals(&[3.0, 4.0]);
/// assert!((v.norm() - 5.0).abs() < 1e-12);
/// assert!((v.total_power() - 25.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CVector {
    data: Vec<C64>,
}

impl CVector {
    /// Creates a zero vector of dimension `n`.
    pub fn zeros(n: usize) -> Self {
        CVector {
            data: vec![C64::ZERO; n],
        }
    }

    /// Creates a vector from a slice of complex entries.
    pub fn from_slice(values: &[C64]) -> Self {
        CVector {
            data: values.to_vec(),
        }
    }

    /// Creates a vector whose entries are the given real values.
    pub fn from_reals(values: &[f64]) -> Self {
        CVector {
            data: values.iter().map(|&x| C64::real(x)).collect(),
        }
    }

    /// Creates the standard basis vector `e_k` of dimension `n`.
    ///
    /// # Panics
    ///
    /// Panics if `k >= n`.
    pub fn basis(n: usize, k: usize) -> Self {
        assert!(k < n, "basis index {k} out of range for dimension {n}");
        let mut v = CVector::zeros(n);
        v.data[k] = C64::ONE;
        v
    }

    /// Dimension of the vector.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the vector has dimension zero.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrows the underlying entries.
    #[inline]
    pub fn as_slice(&self) -> &[C64] {
        &self.data
    }

    /// Mutably borrows the underlying entries.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [C64] {
        &mut self.data
    }

    /// Consumes the vector, returning its entries.
    pub fn into_vec(self) -> Vec<C64> {
        self.data
    }

    /// Hermitian inner product `<self, other> = sum conj(self_i) * other_i`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn dot(&self, other: &CVector) -> C64 {
        assert_eq!(self.len(), other.len(), "dot: dimension mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a.conj() * *b)
            .sum()
    }

    /// Euclidean (L2) norm.
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|z| z.abs2()).sum::<f64>().sqrt()
    }

    /// Total optical power `sum |v_i|^2`.
    pub fn total_power(&self) -> f64 {
        self.data.iter().map(|z| z.abs2()).sum()
    }

    /// Per-entry optical powers `|v_i|^2` (what an array of photodetectors reads).
    pub fn powers(&self) -> Vec<f64> {
        self.data.iter().map(|z| z.abs2()).collect()
    }

    /// Real parts of the entries.
    pub fn reals(&self) -> Vec<f64> {
        self.data.iter().map(|z| z.re).collect()
    }

    /// Returns the vector scaled by a complex factor.
    pub fn scaled(&self, s: C64) -> CVector {
        CVector {
            data: self.data.iter().map(|&z| z * s).collect(),
        }
    }

    /// Returns a unit-norm copy, or `None` for the zero vector.
    pub fn normalized(&self) -> Option<CVector> {
        let n = self.norm();
        if n == 0.0 {
            None
        } else {
            Some(self.scaled(C64::real(1.0 / n)))
        }
    }

    /// Distance `||self - other||`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn distance(&self, other: &CVector) -> f64 {
        assert_eq!(self.len(), other.len(), "distance: dimension mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (*a - *b).abs2())
            .sum::<f64>()
            .sqrt()
    }

    /// Iterator over entries.
    pub fn iter(&self) -> std::slice::Iter<'_, C64> {
        self.data.iter()
    }
}

impl Index<usize> for CVector {
    type Output = C64;
    #[inline]
    fn index(&self, i: usize) -> &C64 {
        &self.data[i]
    }
}

impl IndexMut<usize> for CVector {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut C64 {
        &mut self.data[i]
    }
}

impl Add for &CVector {
    type Output = CVector;
    fn add(self, rhs: &CVector) -> CVector {
        assert_eq!(self.len(), rhs.len(), "add: dimension mismatch");
        CVector {
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| *a + *b)
                .collect(),
        }
    }
}

impl Sub for &CVector {
    type Output = CVector;
    fn sub(self, rhs: &CVector) -> CVector {
        assert_eq!(self.len(), rhs.len(), "sub: dimension mismatch");
        CVector {
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| *a - *b)
                .collect(),
        }
    }
}

impl Mul<C64> for &CVector {
    type Output = CVector;
    fn mul(self, rhs: C64) -> CVector {
        self.scaled(rhs)
    }
}

impl FromIterator<C64> for CVector {
    fn from_iter<I: IntoIterator<Item = C64>>(iter: I) -> Self {
        CVector {
            data: iter.into_iter().collect(),
        }
    }
}

impl<'a> IntoIterator for &'a CVector {
    type Item = &'a C64;
    type IntoIter = std::slice::Iter<'a, C64>;
    fn into_iter(self) -> Self::IntoIter {
        self.data.iter()
    }
}

impl fmt::Display for CVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, z) in self.data.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{z}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basis_vectors_are_orthonormal() {
        for i in 0..4 {
            for j in 0..4 {
                let d = CVector::basis(4, i).dot(&CVector::basis(4, j));
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((d.re - expect).abs() < 1e-15 && d.im.abs() < 1e-15);
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn basis_out_of_range_panics() {
        let _ = CVector::basis(3, 3);
    }

    #[test]
    fn dot_is_conjugate_linear_in_first_argument() {
        let a = CVector::from_slice(&[C64::new(1.0, 1.0), C64::new(0.0, -2.0)]);
        let b = CVector::from_slice(&[C64::new(2.0, 0.0), C64::new(1.0, 1.0)]);
        let lhs = a.dot(&b);
        let rhs = b.dot(&a).conj();
        assert!(lhs.approx_eq(rhs, 1e-12));
    }

    #[test]
    fn norm_and_power_agree() {
        let v = CVector::from_slice(&[C64::new(1.0, 2.0), C64::new(-3.0, 0.5)]);
        assert!((v.norm().powi(2) - v.total_power()).abs() < 1e-12);
        let p = v.powers();
        assert!((p[0] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn normalization() {
        let v = CVector::from_reals(&[3.0, 4.0]);
        let u = v.normalized().expect("nonzero");
        assert!((u.norm() - 1.0).abs() < 1e-12);
        assert!(CVector::zeros(2).normalized().is_none());
    }

    #[test]
    fn elementwise_ops() {
        let a = CVector::from_reals(&[1.0, 2.0]);
        let b = CVector::from_reals(&[3.0, 5.0]);
        let s = &a + &b;
        assert_eq!(s.reals(), vec![4.0, 7.0]);
        let d = &b - &a;
        assert_eq!(d.reals(), vec![2.0, 3.0]);
        let m = &a * C64::new(0.0, 1.0);
        assert!(m[0].approx_eq(C64::new(0.0, 1.0), 1e-12));
    }

    #[test]
    fn distance_is_metric_like() {
        let a = CVector::from_reals(&[1.0, 0.0]);
        let b = CVector::from_reals(&[0.0, 1.0]);
        assert!((a.distance(&b) - 2f64.sqrt()).abs() < 1e-12);
        assert_eq!(a.distance(&a), 0.0);
    }

    #[test]
    fn collect_from_iterator() {
        let v: CVector = (0..3).map(|i| C64::real(i as f64)).collect();
        assert_eq!(v.len(), 3);
        assert_eq!(v[2], C64::real(2.0));
    }
}

//! Split-complex (structure-of-arrays) kernels.
//!
//! The row-major `Vec<C64>` layout of [`CMatrix`] interleaves real and
//! imaginary parts, which blocks autovectorization of the hot product
//! loops. This module provides [`SplitMatrix`] / [`SplitVector`] — the
//! same data held as two contiguous `f64` planes — plus packed matrix
//! kernels built on them:
//!
//! - the product runs in i-k-j (SAXPY) order: each scalar of the left
//!   operand scales a full right-hand row into two unit-stride real
//!   accumulator rows, so there are no horizontal reductions and LLVM
//!   turns the inner loop into SIMD;
//! - all kernels have `*_into` forms writing into caller-owned buffers,
//!   so steady-state callers (mesh programming loops, GeMM column
//!   streaming) allocate nothing per call.
//!
//! The packing cost is O(n²) against the O(n³) product, so the kernels
//! win from roughly n ≥ 8 and are never significantly worse below that.

use crate::{CMatrix, CVector, C64};

/// A complex matrix stored as two row-major real planes.
#[derive(Debug, Clone, PartialEq)]
pub struct SplitMatrix {
    rows: usize,
    cols: usize,
    re: Vec<f64>,
    im: Vec<f64>,
}

impl SplitMatrix {
    /// An all-zeros split matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        SplitMatrix {
            rows,
            cols,
            re: vec![0.0; rows * cols],
            im: vec![0.0; rows * cols],
        }
    }

    /// Packs `m` into split form, reusing this buffer's storage.
    pub fn pack(&mut self, m: &CMatrix) {
        self.rows = m.rows();
        self.cols = m.cols();
        let n = self.rows * self.cols;
        self.re.resize(n, 0.0);
        self.im.resize(n, 0.0);
        for (i, z) in m.as_slice().iter().enumerate() {
            self.re[i] = z.re;
            self.im[i] = z.im;
        }
    }

    /// Packs the transpose of `m`, reusing this buffer's storage.
    ///
    /// Used for the right-hand side of a product so the kernel inner
    /// loop walks both operands contiguously.
    pub fn pack_transposed(&mut self, m: &CMatrix) {
        self.rows = m.cols();
        self.cols = m.rows();
        let n = self.rows * self.cols;
        self.re.resize(n, 0.0);
        self.im.resize(n, 0.0);
        let src = m.as_slice();
        for i in 0..m.rows() {
            let row = &src[i * m.cols()..(i + 1) * m.cols()];
            for (j, z) in row.iter().enumerate() {
                self.re[j * self.cols + i] = z.re;
                self.im[j * self.cols + i] = z.im;
            }
        }
    }

    /// Builds a split copy of `m`.
    pub fn from_matrix(m: &CMatrix) -> Self {
        let mut s = SplitMatrix::zeros(0, 0);
        s.pack(m);
        s
    }

    /// Builds a split copy of `m` transposed.
    pub fn from_matrix_transposed(m: &CMatrix) -> Self {
        let mut s = SplitMatrix::zeros(0, 0);
        s.pack_transposed(m);
        s
    }

    /// Converts back to interleaved form.
    pub fn to_matrix(&self) -> CMatrix {
        let mut out = CMatrix::zeros(self.rows, self.cols);
        for (i, z) in out.as_mut_slice().iter_mut().enumerate() {
            *z = C64::new(self.re[i], self.im[i]);
        }
        out
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The real plane, row-major.
    pub fn re(&self) -> &[f64] {
        &self.re
    }

    /// The imaginary plane, row-major.
    pub fn im(&self) -> &[f64] {
        &self.im
    }

    fn row(&self, i: usize) -> (&[f64], &[f64]) {
        let s = i * self.cols;
        (&self.re[s..s + self.cols], &self.im[s..s + self.cols])
    }
}

/// A complex vector stored as two contiguous real planes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SplitVector {
    re: Vec<f64>,
    im: Vec<f64>,
}

impl SplitVector {
    /// An all-zeros split vector.
    pub fn zeros(n: usize) -> Self {
        SplitVector {
            re: vec![0.0; n],
            im: vec![0.0; n],
        }
    }

    /// Packs `v`, reusing this buffer's storage.
    pub fn pack(&mut self, v: &CVector) {
        self.re.resize(v.len(), 0.0);
        self.im.resize(v.len(), 0.0);
        for (i, z) in v.iter().enumerate() {
            self.re[i] = z.re;
            self.im[i] = z.im;
        }
    }

    /// Builds a split copy of `v`.
    pub fn from_vector(v: &CVector) -> Self {
        let mut s = SplitVector::zeros(0);
        s.pack(v);
        s
    }

    /// Converts back to interleaved form.
    pub fn to_vector(&self) -> CVector {
        (0..self.len())
            .map(|i| C64::new(self.re[i], self.im[i]))
            .collect()
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.re.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.re.is_empty()
    }

    /// The real plane.
    pub fn re(&self) -> &[f64] {
        &self.re
    }

    /// The imaginary plane.
    pub fn im(&self) -> &[f64] {
        &self.im
    }

    /// Packs an interleaved slice, reusing this buffer's storage.
    pub fn pack_slice(&mut self, v: &[C64]) {
        self.re.resize(v.len(), 0.0);
        self.im.resize(v.len(), 0.0);
        for (i, z) in v.iter().enumerate() {
            self.re[i] = z.re;
            self.im[i] = z.im;
        }
    }

    /// Unpacks the lanes back into an interleaved slice.
    ///
    /// # Panics
    ///
    /// Panics if `dst.len() != len()`.
    pub fn unpack_into(&self, dst: &mut [C64]) {
        assert_eq!(dst.len(), self.len(), "unpack_into: length mismatch");
        for (i, z) in dst.iter_mut().enumerate() {
            *z = C64::new(self.re[i], self.im[i]);
        }
    }

    /// Mutable access to both lanes at once.
    pub fn lanes_mut(&mut self) -> (&mut [f64], &mut [f64]) {
        (&mut self.re, &mut self.im)
    }
}

/// One column of independent 2×2 cells over split re/im lanes, the unit
/// of the blocked mesh-application kernel (DESIGN.md §11).
///
/// Each cell `k` applies the matrix `[[a_k, b_k], [c_k, d_k]]` to the
/// adjacent mode pair `(modes[k], modes[k] + 1)`. Cells within a column
/// act on **disjoint** mode pairs, so they can run in any order (and be
/// batched across many input vectors) without changing a single
/// floating-point operation. The arithmetic is written in exactly the
/// grouping `(a*xp) + (b*xq)` that scalar `C64` math produces, so the
/// blocked path is bit-identical to a per-cell complex-multiply loop.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CellColumn {
    modes: Vec<u32>,
    /// `Some(start)` when `modes == [start, start+2, start+4, …]` — the
    /// regular layout of rectangular (Clements-style) layers, which lets
    /// the single-vector kernel walk the lanes with a fixed stride.
    uniform_start: Option<u32>,
    ar: Vec<f64>,
    ai: Vec<f64>,
    br: Vec<f64>,
    bi: Vec<f64>,
    cr: Vec<f64>,
    ci: Vec<f64>,
    dr: Vec<f64>,
    di: Vec<f64>,
}

impl CellColumn {
    /// An empty column.
    pub fn new() -> Self {
        CellColumn::default()
    }

    /// Appends a cell on modes `(mode, mode + 1)`.
    ///
    /// Call [`CellColumn::finish`] after the last push; until then the
    /// uniform-layout fast path stays disabled.
    pub fn push(&mut self, mode: u32, a: C64, b: C64, c: C64, d: C64) {
        self.modes.push(mode);
        self.ar.push(a.re);
        self.ai.push(a.im);
        self.br.push(b.re);
        self.bi.push(b.im);
        self.cr.push(c.re);
        self.ci.push(c.im);
        self.dr.push(d.re);
        self.di.push(d.im);
        self.uniform_start = None;
    }

    /// Detects the uniform stride-2 layout. Idempotent.
    pub fn finish(&mut self) {
        let first = match self.modes.first() {
            Some(&m) => m,
            None => return,
        };
        let uniform = self
            .modes
            .iter()
            .enumerate()
            .all(|(k, &m)| m == first + 2 * k as u32);
        self.uniform_start = uniform.then_some(first);
    }

    /// Number of cells in the column.
    pub fn len(&self) -> usize {
        self.modes.len()
    }

    /// True when the column has no cells.
    pub fn is_empty(&self) -> bool {
        self.modes.is_empty()
    }

    /// Top-mode indices, one per cell.
    pub fn modes(&self) -> &[u32] {
        &self.modes
    }

    /// Applies every cell to one vector held as split lanes.
    ///
    /// # Panics
    ///
    /// Panics (via slice indexing) if a cell's modes exceed the lanes.
    pub fn apply(&self, re: &mut [f64], im: &mut [f64]) {
        if let Some(start) = self.uniform_start {
            let s = start as usize;
            let end = s + 2 * self.len();
            let (re, im) = (&mut re[s..end], &mut im[s..end]);
            for k in 0..self.len() {
                let (p, q) = (2 * k, 2 * k + 1);
                self.apply_cell(k, re, im, p, q);
            }
        } else {
            for (k, &m) in self.modes.iter().enumerate() {
                let p = m as usize;
                self.apply_cell(k, re, im, p, p + 1);
            }
        }
    }

    #[inline(always)]
    fn apply_cell(&self, k: usize, re: &mut [f64], im: &mut [f64], p: usize, q: usize) {
        let (xpr, xpi) = (re[p], im[p]);
        let (xqr, xqi) = (re[q], im[q]);
        // Exactly `a*xp + b*xq` / `c*xp + d*xq` in C64 arithmetic.
        re[p] = (self.ar[k] * xpr - self.ai[k] * xpi) + (self.br[k] * xqr - self.bi[k] * xqi);
        im[p] = (self.ar[k] * xpi + self.ai[k] * xpr) + (self.br[k] * xqi + self.bi[k] * xqr);
        re[q] = (self.cr[k] * xpr - self.ci[k] * xpi) + (self.dr[k] * xqr - self.di[k] * xqi);
        im[q] = (self.cr[k] * xpi + self.ci[k] * xpr) + (self.dr[k] * xqi + self.di[k] * xqr);
    }

    /// Applies every cell to a batch of `width` vectors held as
    /// mode-major split lanes: lane index `mode * width + column`.
    ///
    /// Each cell's coefficients are loaded once and streamed across the
    /// whole batch with unit stride, which is what lifts the kernel from
    /// memory-bound to compute-bound at large `n` (the coefficient
    /// stream of an n=128 mesh is ~0.5 MB per application; the batch
    /// amortizes it over `width` vectors).
    ///
    /// # Panics
    ///
    /// Panics (via slicing) if the lanes are shorter than
    /// `(max mode + 2) * width`.
    pub fn apply_batch(&self, re: &mut [f64], im: &mut [f64], width: usize) {
        for (k, &m) in self.modes.iter().enumerate() {
            let p = m as usize * width;
            let (ar, ai) = (self.ar[k], self.ai[k]);
            let (br, bi) = (self.br[k], self.bi[k]);
            let (cr, ci) = (self.cr[k], self.ci[k]);
            let (dr, di) = (self.dr[k], self.di[k]);
            let (rp, rq) = re[p..p + 2 * width].split_at_mut(width);
            let (ip, iq) = im[p..p + 2 * width].split_at_mut(width);
            for j in 0..width {
                let (xpr, xpi) = (rp[j], ip[j]);
                let (xqr, xqi) = (rq[j], iq[j]);
                rp[j] = (ar * xpr - ai * xpi) + (br * xqr - bi * xqi);
                ip[j] = (ar * xpi + ai * xpr) + (br * xqi + bi * xqr);
                rq[j] = (cr * xpr - ci * xpi) + (dr * xqr - di * xqi);
                iq[j] = (cr * xpi + ci * xpr) + (dr * xqi + di * xqr);
            }
        }
    }
}

/// Multiplies each lane element by the matching phasor: `v[i] *= p[i]`
/// in `C64` arithmetic, bit for bit.
///
/// # Panics
///
/// Panics if the lane and phasor lengths disagree.
pub fn apply_phasors(re: &mut [f64], im: &mut [f64], pr: &[f64], pi: &[f64]) {
    assert_eq!(re.len(), pr.len(), "apply_phasors: length mismatch");
    assert_eq!(im.len(), pi.len(), "apply_phasors: length mismatch");
    for i in 0..re.len() {
        let (vr, vi) = (re[i], im[i]);
        re[i] = vr * pr[i] - vi * pi[i];
        im[i] = vr * pi[i] + vi * pr[i];
    }
}

/// Batch form of [`apply_phasors`] over mode-major lanes: phasor `i`
/// multiplies lane elements `i * width .. (i + 1) * width`.
///
/// # Panics
///
/// Panics if the lanes are not exactly `phasors * width` long.
pub fn apply_phasors_batch(re: &mut [f64], im: &mut [f64], pr: &[f64], pi: &[f64], width: usize) {
    assert_eq!(re.len(), pr.len() * width, "apply_phasors_batch: bad lanes");
    assert_eq!(im.len(), pi.len() * width, "apply_phasors_batch: bad lanes");
    for i in 0..pr.len() {
        let (phr, phi) = (pr[i], pi[i]);
        let s = i * width;
        let (rr, ii) = (&mut re[s..s + width], &mut im[s..s + width]);
        for j in 0..width {
            let (vr, vi) = (rr[j], ii[j]);
            rr[j] = vr * phr - vi * phi;
            ii[j] = vr * phi + vi * phr;
        }
    }
}

/// Packs `width` consecutive length-`n` interleaved vectors
/// (`src[j*n..(j+1)*n]` is vector `j`) into mode-major split lanes
/// (`lane[i*width + j]` is mode `i` of vector `j`), resizing the lane
/// buffers as needed.
///
/// # Panics
///
/// Panics if `src.len() != n * width`.
pub fn pack_columns(src: &[C64], n: usize, width: usize, re: &mut Vec<f64>, im: &mut Vec<f64>) {
    assert_eq!(src.len(), n * width, "pack_columns: bad source length");
    re.resize(n * width, 0.0);
    im.resize(n * width, 0.0);
    for j in 0..width {
        let v = &src[j * n..(j + 1) * n];
        for (i, z) in v.iter().enumerate() {
            re[i * width + j] = z.re;
            im[i * width + j] = z.im;
        }
    }
}

/// Inverse of [`pack_columns`].
///
/// # Panics
///
/// Panics if the lanes or destination do not hold `n * width` elements.
pub fn unpack_columns(re: &[f64], im: &[f64], n: usize, width: usize, dst: &mut [C64]) {
    assert_eq!(dst.len(), n * width, "unpack_columns: bad destination");
    assert_eq!(re.len(), n * width, "unpack_columns: bad lanes");
    assert_eq!(im.len(), n * width, "unpack_columns: bad lanes");
    for j in 0..width {
        let v = &mut dst[j * n..(j + 1) * n];
        for (i, z) in v.iter_mut().enumerate() {
            *z = C64::new(re[i * width + j], im[i * width + j]);
        }
    }
}

/// Reusable scratch for [`mul_mat_into`] / [`CMatrix::mul_mat_into`].
///
/// Holds the packed split-form operands between calls so repeated
/// products of the same shapes never reallocate.
#[derive(Debug, Clone, Default)]
pub struct MatmulScratch {
    lhs: Option<SplitMatrix>,
    rhs: Option<SplitMatrix>,
    acc_re: Vec<f64>,
    acc_im: Vec<f64>,
}

impl MatmulScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        MatmulScratch::default()
    }
}

/// Packed split-complex matrix product: `out = a * b`.
///
/// Packs both operands into `scratch` and runs the product in i-k-j
/// order: each scalar `a[i,k]` scales row `k` of `b` into two real
/// accumulator rows (`re`, `im`). Every inner-loop stream is unit
/// stride with no horizontal reduction, so the loop vectorizes; zero
/// left-hand entries (common in banded mesh factors) skip their whole
/// row pass.
///
/// # Panics
///
/// Panics on inner-dimension mismatch or if `out` has the wrong shape.
pub fn mul_mat_into(a: &CMatrix, b: &CMatrix, out: &mut CMatrix, scratch: &mut MatmulScratch) {
    assert_eq!(a.cols(), b.rows(), "mul_mat_into: dimension mismatch");
    assert_eq!(out.rows(), a.rows(), "mul_mat_into: bad output rows");
    assert_eq!(out.cols(), b.cols(), "mul_mat_into: bad output cols");
    let lhs = scratch.lhs.get_or_insert_with(|| SplitMatrix::zeros(0, 0));
    lhs.pack(a);
    let rhs = scratch.rhs.get_or_insert_with(|| SplitMatrix::zeros(0, 0));
    rhs.pack(b);

    let cols = b.cols();
    scratch.acc_re.resize(cols, 0.0);
    scratch.acc_im.resize(cols, 0.0);
    let acc_re = &mut scratch.acc_re[..cols];
    let acc_im = &mut scratch.acc_im[..cols];

    let dst = out.as_mut_slice();
    for i in 0..a.rows() {
        let (ar, ai) = lhs.row(i);
        acc_re.fill(0.0);
        acc_im.fill(0.0);
        for k in 0..ar.len() {
            let (are, aim) = (ar[k], ai[k]);
            if are == 0.0 && aim == 0.0 {
                continue;
            }
            let (br, bi) = rhs.row(k);
            let (br, bi) = (&br[..cols], &bi[..cols]);
            for j in 0..cols {
                acc_re[j] += are * br[j] - aim * bi[j];
                acc_im[j] += are * bi[j] + aim * br[j];
            }
        }
        for (j, d) in dst[i * cols..(i + 1) * cols].iter_mut().enumerate() {
            *d = C64::new(acc_re[j], acc_im[j]);
        }
    }
}

/// Allocating convenience wrapper over [`mul_mat_into`].
pub fn mul_mat(a: &CMatrix, b: &CMatrix) -> CMatrix {
    let mut out = CMatrix::zeros(a.rows(), b.cols());
    let mut scratch = MatmulScratch::new();
    mul_mat_into(a, b, &mut out, &mut scratch);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(rows: usize, cols: usize, salt: f64) -> CMatrix {
        CMatrix::from_fn(rows, cols, |i, j| {
            C64::new(
                (i as f64 - 0.3 * j as f64).sin() + salt,
                (j as f64 * 0.7 + i as f64).cos() - salt,
            )
        })
    }

    #[test]
    fn pack_roundtrip_preserves_entries() {
        let m = sample(3, 5, 0.25);
        assert_eq!(SplitMatrix::from_matrix(&m).to_matrix(), m);
        let t = SplitMatrix::from_matrix_transposed(&m).to_matrix();
        assert_eq!(t, m.transpose());
    }

    #[test]
    fn vector_pack_roundtrip() {
        let v: CVector = (0..7).map(|i| C64::new(i as f64, -(i as f64))).collect();
        assert_eq!(SplitVector::from_vector(&v).to_vector(), v);
    }

    #[test]
    fn packed_product_matches_naive() {
        for (m, k, n) in [(1, 1, 1), (2, 3, 4), (5, 5, 5), (8, 2, 7)] {
            let a = sample(m, k, 0.1);
            let b = sample(k, n, -0.4);
            let fast = mul_mat(&a, &b);
            let slow = a.mul_mat_naive(&b);
            assert!(fast.approx_eq(&slow, 1e-12), "mismatch at {m}x{k}x{n}");
        }
    }

    fn demo_column(modes: &[u32], salt: f64) -> CellColumn {
        let mut col = CellColumn::new();
        for (k, &m) in modes.iter().enumerate() {
            let t = salt + 0.37 * k as f64;
            col.push(
                m,
                C64::new(t.cos(), t.sin()),
                C64::new(-t.sin(), t.cos()),
                C64::new(t.sin(), 0.5 * t.cos()),
                C64::new(0.5 * t.cos(), -t.sin()),
            );
        }
        col.finish();
        col
    }

    fn scalar_reference(col: &CellColumn, v: &mut [C64]) {
        for (k, &m) in col.modes().iter().enumerate() {
            let p = m as usize;
            let a = C64::new(col.ar[k], col.ai[k]);
            let b = C64::new(col.br[k], col.bi[k]);
            let c = C64::new(col.cr[k], col.ci[k]);
            let d = C64::new(col.dr[k], col.di[k]);
            let (xp, xq) = (v[p], v[p + 1]);
            v[p] = a * xp + b * xq;
            v[p + 1] = c * xp + d * xq;
        }
    }

    #[test]
    fn cell_column_matches_scalar_complex_math_bitwise() {
        for modes in [&[0u32, 2, 4][..], &[1, 4][..], &[0][..]] {
            let col = demo_column(modes, 0.21);
            let v: Vec<C64> = (0..6)
                .map(|i| C64::new((i as f64).sin(), (i as f64 * 1.3).cos()))
                .collect();
            let mut want = v.clone();
            scalar_reference(&col, &mut want);
            let mut lanes = SplitVector::zeros(0);
            lanes.pack_slice(&v);
            let (re, im) = lanes.lanes_mut();
            col.apply(re, im);
            let mut got = v.clone();
            lanes.unpack_into(&mut got);
            for (g, w) in got.iter().zip(&want) {
                assert_eq!(g.re.to_bits(), w.re.to_bits(), "re bits differ");
                assert_eq!(g.im.to_bits(), w.im.to_bits(), "im bits differ");
            }
        }
    }

    #[test]
    fn batch_apply_matches_single_vector_apply_bitwise() {
        let col = demo_column(&[0, 2], 0.9);
        let n = 4;
        let width = 3;
        let src: Vec<C64> = (0..n * width)
            .map(|i| C64::new((i as f64 * 0.71).sin(), (i as f64 * 0.29).cos()))
            .collect();
        // Batch path.
        let (mut bre, mut bim) = (Vec::new(), Vec::new());
        pack_columns(&src, n, width, &mut bre, &mut bim);
        col.apply_batch(&mut bre, &mut bim, width);
        let mut got = src.clone();
        unpack_columns(&bre, &bim, n, width, &mut got);
        // Per-vector path.
        let mut want = src.clone();
        for j in 0..width {
            let mut lanes = SplitVector::zeros(0);
            lanes.pack_slice(&src[j * n..(j + 1) * n]);
            let (re, im) = lanes.lanes_mut();
            col.apply(re, im);
            lanes.unpack_into(&mut want[j * n..(j + 1) * n]);
        }
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.re.to_bits(), w.re.to_bits());
            assert_eq!(g.im.to_bits(), w.im.to_bits());
        }
    }

    #[test]
    fn phasor_kernels_match_scalar_multiply_bitwise() {
        let v: Vec<C64> = (0..5)
            .map(|i| C64::new((i as f64).cos(), -(i as f64)))
            .collect();
        let ph: Vec<C64> = (0..5).map(|i| C64::cis(0.3 * i as f64 - 0.7)).collect();
        let mut want = v.clone();
        for (x, p) in want.iter_mut().zip(&ph) {
            *x *= *p;
        }
        let (pr, pi): (Vec<f64>, Vec<f64>) = ph.iter().map(|p| (p.re, p.im)).unzip();
        let mut lanes = SplitVector::zeros(0);
        lanes.pack_slice(&v);
        let (re, im) = lanes.lanes_mut();
        apply_phasors(re, im, &pr, &pi);
        let mut got = v.clone();
        lanes.unpack_into(&mut got);
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.re.to_bits(), w.re.to_bits());
            assert_eq!(g.im.to_bits(), w.im.to_bits());
        }
        // Batch form, width 2.
        let src: Vec<C64> = v.iter().chain(v.iter()).copied().collect();
        let (mut bre, mut bim) = (Vec::new(), Vec::new());
        pack_columns(&src, 5, 2, &mut bre, &mut bim);
        apply_phasors_batch(&mut bre, &mut bim, &pr, &pi, 2);
        let mut gotb = src.clone();
        unpack_columns(&bre, &bim, 5, 2, &mut gotb);
        for j in 0..2 {
            for (g, w) in gotb[j * 5..(j + 1) * 5].iter().zip(&want) {
                assert_eq!(g.re.to_bits(), w.re.to_bits());
                assert_eq!(g.im.to_bits(), w.im.to_bits());
            }
        }
    }

    #[test]
    fn uniform_layout_detection() {
        let mut col = demo_column(&[1, 3, 5], 0.0);
        assert_eq!(col.uniform_start, Some(1));
        col.push(4, C64::ONE, C64::ZERO, C64::ZERO, C64::ONE);
        col.finish();
        assert_eq!(col.uniform_start, None);
        assert_eq!(col.len(), 4);
    }

    #[test]
    fn scratch_is_reusable_across_shapes() {
        let mut scratch = MatmulScratch::new();
        for n in [2usize, 6, 3] {
            let a = sample(n, n, 0.0);
            let b = sample(n, n, 1.0);
            let mut out = CMatrix::zeros(n, n);
            mul_mat_into(&a, &b, &mut out, &mut scratch);
            assert!(out.approx_eq(&a.mul_mat_naive(&b), 1e-12));
        }
    }
}

//! Split-complex (structure-of-arrays) kernels.
//!
//! The row-major `Vec<C64>` layout of [`CMatrix`] interleaves real and
//! imaginary parts, which blocks autovectorization of the hot product
//! loops. This module provides [`SplitMatrix`] / [`SplitVector`] — the
//! same data held as two contiguous `f64` planes — plus packed matrix
//! kernels built on them:
//!
//! - the product runs in i-k-j (SAXPY) order: each scalar of the left
//!   operand scales a full right-hand row into two unit-stride real
//!   accumulator rows, so there are no horizontal reductions and LLVM
//!   turns the inner loop into SIMD;
//! - all kernels have `*_into` forms writing into caller-owned buffers,
//!   so steady-state callers (mesh programming loops, GeMM column
//!   streaming) allocate nothing per call.
//!
//! The packing cost is O(n²) against the O(n³) product, so the kernels
//! win from roughly n ≥ 8 and are never significantly worse below that.

use crate::{CMatrix, CVector, C64};

/// A complex matrix stored as two row-major real planes.
#[derive(Debug, Clone, PartialEq)]
pub struct SplitMatrix {
    rows: usize,
    cols: usize,
    re: Vec<f64>,
    im: Vec<f64>,
}

impl SplitMatrix {
    /// An all-zeros split matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        SplitMatrix {
            rows,
            cols,
            re: vec![0.0; rows * cols],
            im: vec![0.0; rows * cols],
        }
    }

    /// Packs `m` into split form, reusing this buffer's storage.
    pub fn pack(&mut self, m: &CMatrix) {
        self.rows = m.rows();
        self.cols = m.cols();
        let n = self.rows * self.cols;
        self.re.resize(n, 0.0);
        self.im.resize(n, 0.0);
        for (i, z) in m.as_slice().iter().enumerate() {
            self.re[i] = z.re;
            self.im[i] = z.im;
        }
    }

    /// Packs the transpose of `m`, reusing this buffer's storage.
    ///
    /// Used for the right-hand side of a product so the kernel inner
    /// loop walks both operands contiguously.
    pub fn pack_transposed(&mut self, m: &CMatrix) {
        self.rows = m.cols();
        self.cols = m.rows();
        let n = self.rows * self.cols;
        self.re.resize(n, 0.0);
        self.im.resize(n, 0.0);
        let src = m.as_slice();
        for i in 0..m.rows() {
            let row = &src[i * m.cols()..(i + 1) * m.cols()];
            for (j, z) in row.iter().enumerate() {
                self.re[j * self.cols + i] = z.re;
                self.im[j * self.cols + i] = z.im;
            }
        }
    }

    /// Builds a split copy of `m`.
    pub fn from_matrix(m: &CMatrix) -> Self {
        let mut s = SplitMatrix::zeros(0, 0);
        s.pack(m);
        s
    }

    /// Builds a split copy of `m` transposed.
    pub fn from_matrix_transposed(m: &CMatrix) -> Self {
        let mut s = SplitMatrix::zeros(0, 0);
        s.pack_transposed(m);
        s
    }

    /// Converts back to interleaved form.
    pub fn to_matrix(&self) -> CMatrix {
        let mut out = CMatrix::zeros(self.rows, self.cols);
        for (i, z) in out.as_mut_slice().iter_mut().enumerate() {
            *z = C64::new(self.re[i], self.im[i]);
        }
        out
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The real plane, row-major.
    pub fn re(&self) -> &[f64] {
        &self.re
    }

    /// The imaginary plane, row-major.
    pub fn im(&self) -> &[f64] {
        &self.im
    }

    fn row(&self, i: usize) -> (&[f64], &[f64]) {
        let s = i * self.cols;
        (&self.re[s..s + self.cols], &self.im[s..s + self.cols])
    }
}

/// A complex vector stored as two contiguous real planes.
#[derive(Debug, Clone, PartialEq)]
pub struct SplitVector {
    re: Vec<f64>,
    im: Vec<f64>,
}

impl SplitVector {
    /// An all-zeros split vector.
    pub fn zeros(n: usize) -> Self {
        SplitVector {
            re: vec![0.0; n],
            im: vec![0.0; n],
        }
    }

    /// Packs `v`, reusing this buffer's storage.
    pub fn pack(&mut self, v: &CVector) {
        self.re.resize(v.len(), 0.0);
        self.im.resize(v.len(), 0.0);
        for (i, z) in v.iter().enumerate() {
            self.re[i] = z.re;
            self.im[i] = z.im;
        }
    }

    /// Builds a split copy of `v`.
    pub fn from_vector(v: &CVector) -> Self {
        let mut s = SplitVector::zeros(0);
        s.pack(v);
        s
    }

    /// Converts back to interleaved form.
    pub fn to_vector(&self) -> CVector {
        (0..self.len())
            .map(|i| C64::new(self.re[i], self.im[i]))
            .collect()
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.re.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.re.is_empty()
    }

    /// The real plane.
    pub fn re(&self) -> &[f64] {
        &self.re
    }

    /// The imaginary plane.
    pub fn im(&self) -> &[f64] {
        &self.im
    }
}

/// Reusable scratch for [`mul_mat_into`] / [`CMatrix::mul_mat_into`].
///
/// Holds the packed split-form operands between calls so repeated
/// products of the same shapes never reallocate.
#[derive(Debug, Clone, Default)]
pub struct MatmulScratch {
    lhs: Option<SplitMatrix>,
    rhs: Option<SplitMatrix>,
    acc_re: Vec<f64>,
    acc_im: Vec<f64>,
}

impl MatmulScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        MatmulScratch::default()
    }
}

/// Packed split-complex matrix product: `out = a * b`.
///
/// Packs both operands into `scratch` and runs the product in i-k-j
/// order: each scalar `a[i,k]` scales row `k` of `b` into two real
/// accumulator rows (`re`, `im`). Every inner-loop stream is unit
/// stride with no horizontal reduction, so the loop vectorizes; zero
/// left-hand entries (common in banded mesh factors) skip their whole
/// row pass.
///
/// # Panics
///
/// Panics on inner-dimension mismatch or if `out` has the wrong shape.
pub fn mul_mat_into(a: &CMatrix, b: &CMatrix, out: &mut CMatrix, scratch: &mut MatmulScratch) {
    assert_eq!(a.cols(), b.rows(), "mul_mat_into: dimension mismatch");
    assert_eq!(out.rows(), a.rows(), "mul_mat_into: bad output rows");
    assert_eq!(out.cols(), b.cols(), "mul_mat_into: bad output cols");
    let lhs = scratch.lhs.get_or_insert_with(|| SplitMatrix::zeros(0, 0));
    lhs.pack(a);
    let rhs = scratch.rhs.get_or_insert_with(|| SplitMatrix::zeros(0, 0));
    rhs.pack(b);

    let cols = b.cols();
    scratch.acc_re.resize(cols, 0.0);
    scratch.acc_im.resize(cols, 0.0);
    let acc_re = &mut scratch.acc_re[..cols];
    let acc_im = &mut scratch.acc_im[..cols];

    let dst = out.as_mut_slice();
    for i in 0..a.rows() {
        let (ar, ai) = lhs.row(i);
        acc_re.fill(0.0);
        acc_im.fill(0.0);
        for k in 0..ar.len() {
            let (are, aim) = (ar[k], ai[k]);
            if are == 0.0 && aim == 0.0 {
                continue;
            }
            let (br, bi) = rhs.row(k);
            let (br, bi) = (&br[..cols], &bi[..cols]);
            for j in 0..cols {
                acc_re[j] += are * br[j] - aim * bi[j];
                acc_im[j] += are * bi[j] + aim * br[j];
            }
        }
        for (j, d) in dst[i * cols..(i + 1) * cols].iter_mut().enumerate() {
            *d = C64::new(acc_re[j], acc_im[j]);
        }
    }
}

/// Allocating convenience wrapper over [`mul_mat_into`].
pub fn mul_mat(a: &CMatrix, b: &CMatrix) -> CMatrix {
    let mut out = CMatrix::zeros(a.rows(), b.cols());
    let mut scratch = MatmulScratch::new();
    mul_mat_into(a, b, &mut out, &mut scratch);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(rows: usize, cols: usize, salt: f64) -> CMatrix {
        CMatrix::from_fn(rows, cols, |i, j| {
            C64::new(
                (i as f64 - 0.3 * j as f64).sin() + salt,
                (j as f64 * 0.7 + i as f64).cos() - salt,
            )
        })
    }

    #[test]
    fn pack_roundtrip_preserves_entries() {
        let m = sample(3, 5, 0.25);
        assert_eq!(SplitMatrix::from_matrix(&m).to_matrix(), m);
        let t = SplitMatrix::from_matrix_transposed(&m).to_matrix();
        assert_eq!(t, m.transpose());
    }

    #[test]
    fn vector_pack_roundtrip() {
        let v: CVector = (0..7).map(|i| C64::new(i as f64, -(i as f64))).collect();
        assert_eq!(SplitVector::from_vector(&v).to_vector(), v);
    }

    #[test]
    fn packed_product_matches_naive() {
        for (m, k, n) in [(1, 1, 1), (2, 3, 4), (5, 5, 5), (8, 2, 7)] {
            let a = sample(m, k, 0.1);
            let b = sample(k, n, -0.4);
            let fast = mul_mat(&a, &b);
            let slow = a.mul_mat_naive(&b);
            assert!(fast.approx_eq(&slow, 1e-12), "mismatch at {m}x{k}x{n}");
        }
    }

    #[test]
    fn scratch_is_reusable_across_shapes() {
        let mut scratch = MatmulScratch::new();
        for n in [2usize, 6, 3] {
            let a = sample(n, n, 0.0);
            let b = sample(n, n, 1.0);
            let mut out = CMatrix::zeros(n, n);
            mul_mat_into(&a, &b, &mut out, &mut scratch);
            assert!(out.approx_eq(&a.mul_mat_naive(&b), 1e-12));
        }
    }
}

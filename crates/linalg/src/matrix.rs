//! Dense complex matrices — the transfer-matrix workhorse of the stack.

use crate::{CVector, C64};
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// A dense, row-major complex matrix.
///
/// `CMatrix` models the transfer matrix of a passive photonic circuit:
/// output field amplitudes are `b = T * a` for input amplitudes `a`. A
/// lossless circuit has a unitary `T`.
///
/// # Examples
///
/// ```
/// use neuropulsim_linalg::{C64, CMatrix, CVector};
///
/// let id = CMatrix::identity(3);
/// let v = CVector::from_reals(&[1.0, 2.0, 3.0]);
/// assert_eq!(id.mul_vec(&v), v);
/// assert!(id.is_unitary(1e-12));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CMatrix {
    rows: usize,
    cols: usize,
    data: Vec<C64>,
}

impl CMatrix {
    /// Creates an all-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CMatrix {
            rows,
            cols,
            data: vec![C64::ZERO; rows * cols],
        }
    }

    /// Creates the `n x n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = CMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = C64::ONE;
        }
        m
    }

    /// Creates a matrix from a row-major slice.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: &[C64]) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "from_rows: expected {} entries, got {}",
            rows * cols,
            data.len()
        );
        CMatrix {
            rows,
            cols,
            data: data.to_vec(),
        }
    }

    /// Creates a matrix from row-major real values.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_reals(rows: usize, cols: usize, data: &[f64]) -> Self {
        assert_eq!(data.len(), rows * cols, "from_reals: size mismatch");
        CMatrix {
            rows,
            cols,
            data: data.iter().map(|&x| C64::real(x)).collect(),
        }
    }

    /// Creates a diagonal matrix from the given complex diagonal.
    pub fn diagonal(diag: &[C64]) -> Self {
        let n = diag.len();
        let mut m = CMatrix::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Creates a diagonal matrix from real values.
    pub fn diagonal_real(diag: &[f64]) -> Self {
        let d: Vec<C64> = diag.iter().map(|&x| C64::real(x)).collect();
        CMatrix::diagonal(&d)
    }

    /// Builds a matrix entry-by-entry from a closure `f(row, col)`.
    pub fn from_fn<F: FnMut(usize, usize) -> C64>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut m = CMatrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `true` if the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrows the row-major backing storage.
    #[inline]
    pub fn as_slice(&self) -> &[C64] {
        &self.data
    }

    /// Mutably borrows the row-major backing storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [C64] {
        &mut self.data
    }

    /// Returns row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row(&self, i: usize) -> &[C64] {
        assert!(i < self.rows, "row index out of range");
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Returns column `j` as an owned vector.
    ///
    /// # Panics
    ///
    /// Panics if `j >= cols`.
    pub fn col(&self, j: usize) -> CVector {
        assert!(j < self.cols, "column index out of range");
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Conjugate transpose (Hermitian adjoint) `T^dagger`.
    pub fn adjoint(&self) -> CMatrix {
        CMatrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)].conj())
    }

    /// Plain transpose (no conjugation).
    pub fn transpose(&self) -> CMatrix {
        CMatrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Elementwise complex conjugate.
    pub fn conj(&self) -> CMatrix {
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|z| z.conj()).collect(),
        }
    }

    /// Matrix-vector product `self * v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != cols`.
    pub fn mul_vec(&self, v: &CVector) -> CVector {
        let mut out = CVector::zeros(self.rows);
        self.mul_vec_into(v, &mut out);
        out
    }

    /// Matrix-vector product written into a caller-owned output.
    ///
    /// The zero-allocation form of [`CMatrix::mul_vec`]: steady-state
    /// callers (GeMM column streaming, noisy MVM sampling) reuse `out`
    /// across calls. `out` may not alias `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != cols` or `out.len() != rows`.
    pub fn mul_vec_into(&self, v: &CVector, out: &mut CVector) {
        assert_eq!(v.len(), self.cols, "mul_vec_into: dimension mismatch");
        assert_eq!(out.len(), self.rows, "mul_vec_into: bad output length");
        let x = v.as_slice();
        for (i, o) in out.as_mut_slice().iter_mut().enumerate() {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            // Four independent real accumulators vectorize; a single
            // complex accumulator does not.
            let mut rr = 0.0;
            let mut ii = 0.0;
            let mut ri = 0.0;
            let mut ir = 0.0;
            for (a, b) in row.iter().zip(x) {
                rr += a.re * b.re;
                ii += a.im * b.im;
                ri += a.re * b.im;
                ir += a.im * b.re;
            }
            *o = C64::new(rr - ii, ri + ir);
        }
    }

    /// Matrix product `self * rhs`.
    ///
    /// Dispatches to the packed split-complex kernel in [`crate::soa`]
    /// once the inner dimension is large enough to amortize packing;
    /// tiny products use the direct triple loop.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != rhs.rows`.
    pub fn mul_mat(&self, rhs: &CMatrix) -> CMatrix {
        if self.cols >= 8 {
            crate::soa::mul_mat(self, rhs)
        } else {
            self.mul_mat_naive(rhs)
        }
    }

    /// Matrix product into a caller-owned output with reusable scratch.
    ///
    /// The zero-allocation form of [`CMatrix::mul_mat`]; see
    /// [`crate::soa::mul_mat_into`].
    pub fn mul_mat_into(
        &self,
        rhs: &CMatrix,
        out: &mut CMatrix,
        scratch: &mut crate::soa::MatmulScratch,
    ) {
        crate::soa::mul_mat_into(self, rhs, out, scratch);
    }

    /// Reference triple-loop matrix product.
    ///
    /// Kept as the oracle the fast kernels are property-tested against,
    /// and used directly for small inner dimensions where packing would
    /// cost more than it saves.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != rhs.rows`.
    pub fn mul_mat_naive(&self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(self.cols, rhs.rows, "mul_mat: dimension mismatch");
        let mut out = CMatrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == C64::ZERO {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += a * rhs[(k, j)];
                }
            }
        }
        out
    }

    /// Scales every entry by a complex factor.
    pub fn scaled(&self, s: C64) -> CMatrix {
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&z| z * s).collect(),
        }
    }

    /// Trace of a square matrix.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> C64 {
        assert!(self.is_square(), "trace requires a square matrix");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|z| z.abs2()).sum::<f64>().sqrt()
    }

    /// Largest entry magnitude.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().map(|z| z.abs()).fold(0.0, f64::max)
    }

    /// Checks unitarity: `||T^dagger T - I||_F <= tol`.
    pub fn is_unitary(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        let g = self.adjoint().mul_mat(self);
        let id = CMatrix::identity(self.rows);
        (&g - &id).frobenius_norm() <= tol
    }

    /// Entrywise approximate equality within `tol` (max-abs difference).
    pub fn approx_eq(&self, other: &CMatrix, tol: f64) -> bool {
        self.rows == other.rows && self.cols == other.cols && (self - other).max_abs() <= tol
    }

    /// Swaps two rows in place.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        assert!(a < self.rows && b < self.rows, "swap_rows out of range");
        if a == b {
            return;
        }
        for j in 0..self.cols {
            self.data.swap(a * self.cols + j, b * self.cols + j);
        }
    }

    /// Swaps two columns in place.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn swap_cols(&mut self, a: usize, b: usize) {
        assert!(a < self.cols && b < self.cols, "swap_cols out of range");
        if a == b {
            return;
        }
        for i in 0..self.rows {
            self.data.swap(i * self.cols + a, i * self.cols + b);
        }
    }

    /// Embeds a 2x2 block `[[a, b], [c, d]]` acting on rows/cols `(p, q)` of
    /// the identity, producing the `n x n` "two-level" matrix used to build
    /// interferometer meshes.
    ///
    /// # Panics
    ///
    /// Panics if `p == q` or either index is `>= n`.
    pub fn two_level(n: usize, p: usize, q: usize, a: C64, b: C64, c: C64, d: C64) -> CMatrix {
        assert!(p != q && p < n && q < n, "two_level: bad indices");
        let mut m = CMatrix::identity(n);
        m[(p, p)] = a;
        m[(p, q)] = b;
        m[(q, p)] = c;
        m[(q, q)] = d;
        m
    }

    /// Left-multiplies `self` in place by a 2x2 block acting on rows `(p, q)`:
    /// `self <- B(p,q) * self`. This is the O(n) primitive for applying an
    /// MZI layer without forming the full two-level matrix.
    ///
    /// # Panics
    ///
    /// Panics if `p == q` or either index is out of range.
    pub fn apply_left_2x2(&mut self, p: usize, q: usize, a: C64, b: C64, c: C64, d: C64) {
        assert!(p != q && p < self.rows && q < self.rows, "bad indices");
        for j in 0..self.cols {
            let xp = self[(p, j)];
            let xq = self[(q, j)];
            self[(p, j)] = a * xp + b * xq;
            self[(q, j)] = c * xp + d * xq;
        }
    }

    /// Right-multiplies `self` in place by a 2x2 block acting on columns
    /// `(p, q)`: `self <- self * B(p,q)`.
    ///
    /// # Panics
    ///
    /// Panics if `p == q` or either index is out of range.
    pub fn apply_right_2x2(&mut self, p: usize, q: usize, a: C64, b: C64, c: C64, d: C64) {
        assert!(p != q && p < self.cols && q < self.cols, "bad indices");
        for i in 0..self.rows {
            let xp = self[(i, p)];
            let xq = self[(i, q)];
            self[(i, p)] = xp * a + xq * c;
            self[(i, q)] = xp * b + xq * d;
        }
    }

    /// Extracts the real parts as a row-major `Vec<f64>`.
    pub fn to_real_vec(&self) -> Vec<f64> {
        self.data.iter().map(|z| z.re).collect()
    }
}

impl Index<(usize, usize)> for CMatrix {
    type Output = C64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &C64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for CMatrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut C64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl Add for &CMatrix {
    type Output = CMatrix;
    fn add(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols), "add: shape");
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| *a + *b)
                .collect(),
        }
    }
}

impl Sub for &CMatrix {
    type Output = CMatrix;
    fn sub(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols), "sub: shape");
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| *a - *b)
                .collect(),
        }
    }
}

impl Mul for &CMatrix {
    type Output = CMatrix;
    fn mul(self, rhs: &CMatrix) -> CMatrix {
        self.mul_mat(rhs)
    }
}

impl fmt::Display for CMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            write!(f, "[")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", self[(i, j)])?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CMatrix {
        CMatrix::from_reals(2, 2, &[1.0, 2.0, 3.0, 4.0])
    }

    #[test]
    fn identity_acts_trivially() {
        let a = sample();
        let id = CMatrix::identity(2);
        assert!(id.mul_mat(&a).approx_eq(&a, 1e-15));
        assert!(a.mul_mat(&id).approx_eq(&a, 1e-15));
    }

    #[test]
    fn mul_vec_matches_mul_mat() {
        let a = sample();
        let v = CVector::from_reals(&[5.0, 6.0]);
        let got = a.mul_vec(&v);
        assert_eq!(got.reals(), vec![17.0, 39.0]);
    }

    #[test]
    fn adjoint_reverses_products() {
        let a = sample();
        let b = CMatrix::from_reals(2, 2, &[0.0, 1.0, -1.0, 0.0]);
        let lhs = a.mul_mat(&b).adjoint();
        let rhs = b.adjoint().mul_mat(&a.adjoint());
        assert!(lhs.approx_eq(&rhs, 1e-12));
    }

    #[test]
    fn trace_and_norms() {
        let a = sample();
        assert_eq!(a.trace(), C64::real(5.0));
        assert!((a.frobenius_norm() - 30f64.sqrt()).abs() < 1e-12);
        assert_eq!(a.max_abs(), 4.0);
    }

    #[test]
    fn unitarity_check() {
        // A 2x2 rotation is unitary.
        let th = 0.37f64;
        let r = CMatrix::from_reals(2, 2, &[th.cos(), -th.sin(), th.sin(), th.cos()]);
        assert!(r.is_unitary(1e-12));
        assert!(!sample().is_unitary(1e-6));
    }

    #[test]
    fn two_level_embedding() {
        let m = CMatrix::two_level(4, 1, 3, C64::real(0.0), C64::ONE, C64::ONE, C64::real(0.0));
        // Swaps channels 1 and 3, leaves 0 and 2 alone.
        let v = CVector::from_reals(&[1.0, 2.0, 3.0, 4.0]);
        let w = m.mul_vec(&v);
        assert_eq!(w.reals(), vec![1.0, 4.0, 3.0, 2.0]);
    }

    #[test]
    fn in_place_2x2_matches_explicit() {
        let a = C64::new(0.6, 0.0);
        let b = C64::new(0.0, 0.8);
        let c = C64::new(0.0, 0.8);
        let d = C64::new(0.6, 0.0);
        let base = CMatrix::from_reals(3, 3, &[1., 2., 3., 4., 5., 6., 7., 8., 9.]);
        let block = CMatrix::two_level(3, 0, 2, a, b, c, d);

        let mut left = base.clone();
        left.apply_left_2x2(0, 2, a, b, c, d);
        assert!(left.approx_eq(&block.mul_mat(&base), 1e-12));

        let mut right = base.clone();
        right.apply_right_2x2(0, 2, a, b, c, d);
        assert!(right.approx_eq(&base.mul_mat(&block), 1e-12));
    }

    #[test]
    fn swap_rows_and_cols() {
        let mut a = sample();
        a.swap_rows(0, 1);
        assert_eq!(a.row(0)[0], C64::real(3.0));
        a.swap_cols(0, 1);
        assert_eq!(a[(0, 0)], C64::real(4.0));
    }

    #[test]
    fn diagonal_builders() {
        let d = CMatrix::diagonal_real(&[1.0, 2.0]);
        assert_eq!(d[(0, 0)], C64::real(1.0));
        assert_eq!(d[(0, 1)], C64::ZERO);
        assert_eq!(d[(1, 1)], C64::real(2.0));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mul_vec_shape_panics() {
        let a = sample();
        let _ = a.mul_vec(&CVector::zeros(3));
    }

    #[test]
    fn row_col_accessors() {
        let a = sample();
        assert_eq!(a.row(1), &[C64::real(3.0), C64::real(4.0)]);
        assert_eq!(a.col(1).reals(), vec![2.0, 4.0]);
    }
}

//! Random matrix generators: Haar-distributed unitaries and Gaussian
//! ensembles, used to benchmark mesh expressivity on "typical" targets.

use crate::decomp::{qr, Qr};
use crate::{CMatrix, CVector, C64};
use rand::Rng;

/// Draws a standard complex Gaussian (Ginibre) matrix: independent entries
/// with `N(0, 1/2)` real and imaginary parts.
pub fn ginibre<R: Rng + ?Sized>(rng: &mut R, n: usize) -> CMatrix {
    CMatrix::from_fn(n, n, |_, _| C64::new(gaussian(rng), gaussian(rng)))
}

/// Draws a Haar-distributed random unitary of dimension `n`.
///
/// Uses the QR-of-Ginibre construction with the phase correction
/// `Q <- Q * diag(r_jj / |r_jj|)` that makes the distribution exactly Haar
/// (Mezzadri, 2007).
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let u = neuropulsim_linalg::random::haar_unitary(&mut rng, 8);
/// assert!(u.is_unitary(1e-10));
/// ```
pub fn haar_unitary<R: Rng + ?Sized>(rng: &mut R, n: usize) -> CMatrix {
    let g = ginibre(rng, n);
    let Qr { q, r } = qr(&g);
    let mut u = q;
    for j in 0..n {
        let d = r[(j, j)];
        let mag = d.abs();
        let phase = if mag > 0.0 { d * (1.0 / mag) } else { C64::ONE };
        for i in 0..n {
            u[(i, j)] *= phase;
        }
    }
    u
}

/// Draws a random real matrix with entries uniform in `[-1, 1]`, as a
/// complex matrix. Typical stand-in for a trained neural-network weight
/// block before normalization.
pub fn uniform_real<R: Rng + ?Sized>(rng: &mut R, rows: usize, cols: usize) -> CMatrix {
    CMatrix::from_fn(rows, cols, |_, _| C64::real(rng.gen_range(-1.0..=1.0)))
}

/// Draws a random complex unit vector of dimension `n`, uniform on the
/// sphere (Gaussian direction, normalized).
pub fn random_state<R: Rng + ?Sized>(rng: &mut R, n: usize) -> CVector {
    loop {
        let v: CVector = (0..n)
            .map(|_| C64::new(gaussian(rng), gaussian(rng)))
            .collect();
        if let Some(u) = v.normalized() {
            return u;
        }
    }
}

/// Samples a standard normal via Box–Muller.
pub fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        if z.is_finite() {
            return z;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn haar_unitaries_are_unitary() {
        let mut rng = StdRng::seed_from_u64(7);
        for n in [2, 4, 8, 16] {
            let u = haar_unitary(&mut rng, n);
            assert!(u.is_unitary(1e-9), "not unitary at n={n}");
        }
    }

    #[test]
    fn haar_trace_statistics() {
        // For Haar unitaries E[|Tr U|^2] = 1 regardless of dimension.
        let mut rng = StdRng::seed_from_u64(11);
        let trials = 300;
        let mean: f64 = (0..trials)
            .map(|_| haar_unitary(&mut rng, 6).trace().abs2())
            .sum::<f64>()
            / trials as f64;
        assert!(
            (mean - 1.0).abs() < 0.25,
            "E[|Tr U|^2] = {mean}, expected about 1"
        );
    }

    #[test]
    fn random_state_is_normalized() {
        let mut rng = StdRng::seed_from_u64(3);
        for n in [1, 2, 9] {
            let v = random_state(&mut rng, n);
            assert!((v.norm() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean={mean}");
        assert!((var - 1.0).abs() < 0.1, "var={var}");
    }

    #[test]
    fn uniform_real_in_range() {
        let mut rng = StdRng::seed_from_u64(9);
        let m = uniform_real(&mut rng, 5, 7);
        assert_eq!((m.rows(), m.cols()), (5, 7));
        for z in m.as_slice() {
            assert!(z.im == 0.0 && z.re.abs() <= 1.0);
        }
    }
}

//! # neuropulsim-linalg
//!
//! Self-contained complex linear algebra for the `neuropulsim` workspace —
//! the numerical substrate beneath the photonic transfer-matrix models.
//!
//! Provides:
//!
//! - [`C64`]: a double-precision complex scalar;
//! - [`CVector`] / [`CMatrix`]: dense complex vectors and matrices with the
//!   operations needed by interferometer meshes (adjoint, two-level
//!   embeddings, in-place 2×2 rotations);
//! - [`RMatrix`]: dense real matrices for the digital NN baseline;
//! - [`decomp`]: QR and one-sided-Jacobi SVD (`M = U Σ V†`), the key step
//!   for mapping arbitrary weight matrices onto photonic meshes;
//! - [`random`]: Haar-random unitaries and Gaussian ensembles;
//! - [`metrics`]: fidelity / error metrics used for "expressivity" and
//!   "robustness" scoring.
//!
//! # Examples
//!
//! ```
//! use neuropulsim_linalg::{decomp, metrics, random};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let u = random::haar_unitary(&mut rng, 8);
//! let svd = decomp::svd(&u);
//! // A unitary has all singular values equal to 1.
//! assert!(svd.sigma.iter().all(|s| (s - 1.0).abs() < 1e-9));
//! assert!(metrics::relative_error(&u, &svd.reconstruct()) < 1e-9);
//! ```

#![warn(missing_docs)]

mod complex;
mod matrix;
mod real;
mod vector;

pub mod decomp;
pub mod metrics;
pub mod parallel;
pub mod random;
pub mod soa;

pub use complex::C64;
pub use matrix::CMatrix;
pub use real::RMatrix;
pub use soa::{MatmulScratch, SplitMatrix, SplitVector};
pub use vector::CVector;

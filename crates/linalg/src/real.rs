//! Dense real matrices, used by the digital-baseline neural-network code
//! (`neuropulsim-nn`) and for intensity-domain results.

use crate::CMatrix;
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// A dense, row-major `f64` matrix.
///
/// # Examples
///
/// ```
/// use neuropulsim_linalg::RMatrix;
///
/// let a = RMatrix::from_rows(2, 2, &[1.0, 2.0, 3.0, 4.0]);
/// let b = RMatrix::identity(2);
/// assert_eq!(a.mul_mat(&b), a);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl RMatrix {
    /// Creates an all-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        RMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = RMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major slice.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: &[f64]) -> Self {
        assert_eq!(data.len(), rows * cols, "from_rows: size mismatch");
        RMatrix {
            rows,
            cols,
            data: data.to_vec(),
        }
    }

    /// Builds a matrix entry-by-entry from a closure `f(row, col)`.
    pub fn from_fn<F: FnMut(usize, usize) -> f64>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut m = RMatrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrows the row-major backing storage.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrows the row-major backing storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Returns row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index out of range");
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Matrix-vector product.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != cols`.
    pub fn mul_vec(&self, v: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.rows];
        self.mul_vec_into(v, &mut out);
        out
    }

    /// Matrix-vector product written into a caller-owned output.
    ///
    /// Zero-allocation form of [`RMatrix::mul_vec`] for hot loops
    /// (crossbar sampling, dot-product SNN drive).
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != cols` or `out.len() != rows`.
    pub fn mul_vec_into(&self, v: &[f64], out: &mut [f64]) {
        assert_eq!(v.len(), self.cols, "mul_vec_into: dimension mismatch");
        assert_eq!(out.len(), self.rows, "mul_vec_into: bad output length");
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.row(i).iter().zip(v).map(|(a, b)| a * b).sum();
        }
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != rhs.rows`.
    pub fn mul_mat(&self, rhs: &RMatrix) -> RMatrix {
        assert_eq!(self.cols, rhs.rows, "mul_mat: dimension mismatch");
        let mut out = RMatrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += a * rhs[(k, j)];
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> RMatrix {
        RMatrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Scales all entries by `s`.
    pub fn scaled(&self, s: f64) -> RMatrix {
        RMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|x| x * s).collect(),
        }
    }

    /// Applies `f` elementwise, returning a new matrix.
    pub fn map<F: Fn(f64) -> f64>(&self, f: F) -> RMatrix {
        RMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Largest entry magnitude.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().map(|x| x.abs()).fold(0.0, f64::max)
    }

    /// Lifts to a complex matrix with zero imaginary parts.
    pub fn to_complex(&self) -> CMatrix {
        CMatrix::from_reals(self.rows, self.cols, &self.data)
    }

    /// Entrywise approximate equality within `tol`.
    pub fn approx_eq(&self, other: &RMatrix, tol: f64) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| (a - b).abs() <= tol)
    }
}

impl Index<(usize, usize)> for RMatrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for RMatrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl Add for &RMatrix {
    type Output = RMatrix;
    fn add(self, rhs: &RMatrix) -> RMatrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols), "add: shape");
        RMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }
}

impl Sub for &RMatrix {
    type Output = RMatrix;
    fn sub(self, rhs: &RMatrix) -> RMatrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols), "sub: shape");
        RMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a - b)
                .collect(),
        }
    }
}

impl Mul for &RMatrix {
    type Output = RMatrix;
    fn mul(self, rhs: &RMatrix) -> RMatrix {
        self.mul_mat(rhs)
    }
}

impl fmt::Display for RMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            writeln!(f, "{:?}", self.row(i))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_and_mul() {
        let a = RMatrix::from_rows(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let id = RMatrix::identity(2);
        assert_eq!(id.mul_mat(&a), a);
        let v = a.mul_vec(&[1.0, 0.0, -1.0]);
        assert_eq!(v, vec![-2.0, -2.0]);
    }

    #[test]
    fn transpose_involution() {
        let a = RMatrix::from_rows(2, 3, &[1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn elementwise_and_norms() {
        let a = RMatrix::from_rows(1, 3, &[3.0, 0.0, 4.0]);
        assert_eq!(a.frobenius_norm(), 5.0);
        assert_eq!(a.max_abs(), 4.0);
        assert_eq!(a.map(|x| x * 2.0).as_slice(), &[6.0, 0.0, 8.0]);
        assert_eq!(a.scaled(0.5).as_slice(), &[1.5, 0.0, 2.0]);
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = RMatrix::from_rows(2, 2, &[1., 2., 3., 4.]);
        let b = RMatrix::from_rows(2, 2, &[4., 3., 2., 1.]);
        let s = &a + &b;
        assert!((&s - &b).approx_eq(&a, 1e-15));
    }

    #[test]
    fn complex_lift() {
        let a = RMatrix::from_rows(2, 2, &[1., 2., 3., 4.]);
        let c = a.to_complex();
        assert_eq!(c[(1, 0)].re, 3.0);
        assert_eq!(c[(1, 0)].im, 0.0);
    }
}

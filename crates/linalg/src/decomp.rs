//! Matrix decompositions: QR (modified Gram–Schmidt) and SVD (one-sided
//! Jacobi), both over complex matrices.
//!
//! The SVD is the workhorse for mapping *arbitrary* weight matrices onto
//! photonic interferometer meshes: `M = U * Sigma * V^dagger` with unitary
//! `U`, `V` realizable as MZI meshes and `Sigma` as a column of attenuators.

use crate::{CMatrix, C64};

/// The result of a QR factorization `A = Q * R` with unitary `Q` and
/// upper-triangular `R`.
#[derive(Debug, Clone)]
pub struct Qr {
    /// Unitary factor.
    pub q: CMatrix,
    /// Upper-triangular factor.
    pub r: CMatrix,
}

/// Computes a QR factorization of a square matrix by modified Gram–Schmidt
/// with reorthogonalization (numerically adequate for the mesh sizes used
/// here, N <= 256).
///
/// # Panics
///
/// Panics if `a` is not square.
pub fn qr(a: &CMatrix) -> Qr {
    assert!(a.is_square(), "qr: matrix must be square");
    let n = a.rows();
    let mut q = a.clone();
    let mut r = CMatrix::zeros(n, n);

    for j in 0..n {
        // Two passes of Gram-Schmidt for stability.
        for _pass in 0..2 {
            for i in 0..j {
                // proj = q_i^dagger * q_j
                let mut proj = C64::ZERO;
                for k in 0..n {
                    proj += q[(k, i)].conj() * q[(k, j)];
                }
                r[(i, j)] += proj;
                for k in 0..n {
                    let qk = q[(k, i)];
                    q[(k, j)] -= proj * qk;
                }
            }
        }
        let mut norm2 = 0.0;
        for k in 0..n {
            norm2 += q[(k, j)].abs2();
        }
        let norm = norm2.sqrt();
        r[(j, j)] = C64::real(norm);
        if norm > 0.0 {
            let inv = 1.0 / norm;
            for k in 0..n {
                q[(k, j)] = q[(k, j)] * inv;
            }
        } else {
            // Rank-deficient column: substitute a basis vector orthogonal to
            // the span built so far (found by trying each and re-orthogonalizing).
            'basis: for b in 0..n {
                for k in 0..n {
                    q[(k, j)] = if k == b { C64::ONE } else { C64::ZERO };
                }
                for i in 0..j {
                    let mut proj = C64::ZERO;
                    for k in 0..n {
                        proj += q[(k, i)].conj() * q[(k, j)];
                    }
                    for k in 0..n {
                        let qk = q[(k, i)];
                        q[(k, j)] -= proj * qk;
                    }
                }
                let mut nn = 0.0;
                for k in 0..n {
                    nn += q[(k, j)].abs2();
                }
                if nn.sqrt() > 1e-6 {
                    let inv = 1.0 / nn.sqrt();
                    for k in 0..n {
                        q[(k, j)] = q[(k, j)] * inv;
                    }
                    break 'basis;
                }
            }
        }
    }
    Qr { q, r }
}

/// The result of a singular value decomposition `A = U * Sigma * V^dagger`.
#[derive(Debug, Clone)]
pub struct Svd {
    /// Left singular vectors (unitary, `m x m` for square input).
    pub u: CMatrix,
    /// Singular values, sorted descending.
    pub sigma: Vec<f64>,
    /// Right singular vectors (unitary); `A = U diag(sigma) V^dagger`.
    pub v: CMatrix,
}

impl Svd {
    /// Reconstructs `U * diag(sigma) * V^dagger`.
    pub fn reconstruct(&self) -> CMatrix {
        let s = CMatrix::diagonal_real(&self.sigma);
        self.u.mul_mat(&s).mul_mat(&self.v.adjoint())
    }

    /// Spectral condition number `sigma_max / sigma_min` (infinite if
    /// `sigma_min == 0`).
    pub fn condition_number(&self) -> f64 {
        match (self.sigma.first(), self.sigma.last()) {
            (Some(&max), Some(&min)) if min > 0.0 => max / min,
            _ => f64::INFINITY,
        }
    }
}

/// Computes the SVD of a square complex matrix via one-sided Jacobi
/// rotations. Converges quadratically; suitable for the N <= 256 matrices
/// used by the photonic cores.
///
/// # Panics
///
/// Panics if `a` is not square.
pub fn svd(a: &CMatrix) -> Svd {
    assert!(a.is_square(), "svd: matrix must be square");
    let n = a.rows();
    let mut b = a.clone(); // columns converge to U * Sigma
    let mut v = CMatrix::identity(n);
    let tol = 1e-14;
    let max_sweeps = 60;

    for _sweep in 0..max_sweeps {
        let mut off = 0.0f64;
        for p in 0..n {
            for q in (p + 1)..n {
                // alpha = ||b_p||^2, beta = ||b_q||^2, gamma = b_p^dagger b_q
                let mut alpha = 0.0;
                let mut beta = 0.0;
                let mut gamma = C64::ZERO;
                for k in 0..n {
                    let bp = b[(k, p)];
                    let bq = b[(k, q)];
                    alpha += bp.abs2();
                    beta += bq.abs2();
                    gamma += bp.conj() * bq;
                }
                let g = gamma.abs();
                if g <= tol * (alpha * beta).sqrt() || g == 0.0 {
                    continue;
                }
                off = off.max(g / (alpha * beta).sqrt().max(f64::MIN_POSITIVE));
                let theta = gamma.arg();
                let tau = (beta - alpha) / (2.0 * g);
                let t = if tau >= 0.0 {
                    1.0 / (tau + (1.0 + tau * tau).sqrt())
                } else {
                    -1.0 / (-tau + (1.0 + tau * tau).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                let e_pos = C64::cis(theta); // e^{i theta}
                let e_neg = e_pos.conj();
                // Column rotation J = [[c, s e^{i th}], [-s e^{-i th}, c]]
                // applied on the right: new_p = c b_p - s e^{-i th} b_q,
                //                        new_q = s e^{i th} b_p + c b_q.
                for k in 0..n {
                    let bp = b[(k, p)];
                    let bq = b[(k, q)];
                    b[(k, p)] = bp * c - (e_neg * bq) * s;
                    b[(k, q)] = (e_pos * bp) * s + bq * c;
                }
                for k in 0..n {
                    let vp = v[(k, p)];
                    let vq = v[(k, q)];
                    v[(k, p)] = vp * c - (e_neg * vq) * s;
                    v[(k, q)] = (e_pos * vp) * s + vq * c;
                }
            }
        }
        if off < tol {
            break;
        }
    }

    // Extract singular values and normalize columns into U.
    let mut sigma: Vec<f64> = Vec::with_capacity(n);
    let mut u = CMatrix::zeros(n, n);
    for j in 0..n {
        let mut norm2 = 0.0;
        for k in 0..n {
            norm2 += b[(k, j)].abs2();
        }
        let s = norm2.sqrt();
        sigma.push(s);
        if s > 1e-300 {
            for k in 0..n {
                u[(k, j)] = b[(k, j)] * (1.0 / s);
            }
        }
    }
    // Complete any zero columns of U to a unitary basis.
    complete_orthonormal(&mut u, &sigma);

    // Sort descending by singular value, permuting U and V consistently.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| sigma[j].partial_cmp(&sigma[i]).expect("finite sigma"));
    let mut su = CMatrix::zeros(n, n);
    let mut sv = CMatrix::zeros(n, n);
    let mut ss = vec![0.0; n];
    for (new_j, &old_j) in order.iter().enumerate() {
        ss[new_j] = sigma[old_j];
        for k in 0..n {
            su[(k, new_j)] = u[(k, old_j)];
            sv[(k, new_j)] = v[(k, old_j)];
        }
    }

    Svd {
        u: su,
        sigma: ss,
        v: sv,
    }
}

/// Replaces (near-)zero columns of `u` with vectors orthonormal to the rest,
/// so that `u` is unitary even for rank-deficient inputs.
fn complete_orthonormal(u: &mut CMatrix, sigma: &[f64]) {
    let n = u.rows();
    let scale = sigma.iter().cloned().fold(0.0, f64::max).max(1.0);
    for j in 0..n {
        if sigma[j] > 1e-12 * scale {
            continue;
        }
        'candidates: for b in 0..n {
            let mut cand = vec![C64::ZERO; n];
            cand[b] = C64::ONE;
            // Orthogonalize against all valid columns (two passes).
            for _ in 0..2 {
                for i in 0..n {
                    if i == j || (sigma[i] <= 1e-12 * scale && i > j) {
                        continue;
                    }
                    let mut proj = C64::ZERO;
                    for k in 0..n {
                        proj += u[(k, i)].conj() * cand[k];
                    }
                    for (k, c) in cand.iter_mut().enumerate() {
                        *c -= proj * u[(k, i)];
                    }
                }
            }
            let norm: f64 = cand.iter().map(|z| z.abs2()).sum::<f64>().sqrt();
            if norm > 1e-6 {
                for (k, c) in cand.iter().enumerate() {
                    u[(k, j)] = *c * (1.0 / norm);
                }
                break 'candidates;
            }
        }
    }
}

/// Solves the linear system `A x = b` for square `A` by Gaussian elimination
/// with partial pivoting. Returns `None` if `A` is (numerically) singular.
///
/// # Panics
///
/// Panics if shapes are inconsistent.
pub fn solve(a: &CMatrix, b: &[C64]) -> Option<Vec<C64>> {
    assert!(a.is_square(), "solve: matrix must be square");
    assert_eq!(a.rows(), b.len(), "solve: rhs length mismatch");
    let n = a.rows();
    let mut m = a.clone();
    let mut x: Vec<C64> = b.to_vec();

    for col in 0..n {
        // Partial pivot.
        let mut piv = col;
        let mut best = m[(col, col)].abs();
        for r in (col + 1)..n {
            let mag = m[(r, col)].abs();
            if mag > best {
                best = mag;
                piv = r;
            }
        }
        if best < 1e-300 {
            return None;
        }
        if piv != col {
            m.swap_rows(piv, col);
            x.swap(piv, col);
        }
        let inv = m[(col, col)].recip();
        for r in (col + 1)..n {
            let factor = m[(r, col)] * inv;
            if factor == C64::ZERO {
                continue;
            }
            for c in col..n {
                let v = m[(col, c)];
                m[(r, c)] -= factor * v;
            }
            let xv = x[col];
            x[r] -= factor * xv;
        }
    }
    // Back substitution.
    for col in (0..n).rev() {
        let mut acc = x[col];
        for c in (col + 1)..n {
            acc -= m[(col, c)] * x[c];
        }
        x[col] = acc * m[(col, col)].recip();
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CVector;

    fn test_matrix(n: usize, seed: u64) -> CMatrix {
        // Deterministic pseudo-random entries (xorshift), no rand dependency here.
        let mut state = seed.max(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        CMatrix::from_fn(n, n, |_, _| C64::new(next(), next()))
    }

    #[test]
    fn qr_reconstructs_and_q_unitary() {
        for n in [2, 3, 5, 8] {
            let a = test_matrix(n, 42 + n as u64);
            let Qr { q, r } = qr(&a);
            assert!(q.is_unitary(1e-10), "Q not unitary at n={n}");
            assert!(q.mul_mat(&r).approx_eq(&a, 1e-9), "QR != A at n={n}");
            // R upper triangular.
            for i in 0..n {
                for j in 0..i {
                    assert!(r[(i, j)].abs() < 1e-10);
                }
            }
        }
    }

    #[test]
    fn svd_reconstructs_random_matrices() {
        for n in [2, 3, 4, 8, 12] {
            let a = test_matrix(n, 7 + n as u64);
            let d = svd(&a);
            assert!(d.u.is_unitary(1e-9), "U not unitary at n={n}");
            assert!(d.v.is_unitary(1e-9), "V not unitary at n={n}");
            assert!(d.reconstruct().approx_eq(&a, 1e-8), "USV^H != A at n={n}");
            // Sorted descending.
            for w in d.sigma.windows(2) {
                assert!(w[0] >= w[1] - 1e-12);
            }
        }
    }

    #[test]
    fn svd_of_diagonal_is_exact() {
        let a = CMatrix::diagonal_real(&[3.0, 1.0, 2.0]);
        let d = svd(&a);
        assert!((d.sigma[0] - 3.0).abs() < 1e-12);
        assert!((d.sigma[1] - 2.0).abs() < 1e-12);
        assert!((d.sigma[2] - 1.0).abs() < 1e-12);
        assert!(d.reconstruct().approx_eq(&a, 1e-10));
    }

    #[test]
    fn svd_handles_rank_deficiency() {
        // Rank-1 matrix.
        let a = CMatrix::from_reals(3, 3, &[1., 2., 3., 2., 4., 6., 3., 6., 9.]);
        let d = svd(&a);
        assert!(d.sigma[1] < 1e-8 && d.sigma[2] < 1e-8);
        assert!(d.u.is_unitary(1e-8));
        assert!(d.v.is_unitary(1e-8));
        assert!(d.reconstruct().approx_eq(&a, 1e-8));
    }

    #[test]
    fn svd_condition_number() {
        let a = CMatrix::diagonal_real(&[4.0, 2.0]);
        assert!((svd(&a).condition_number() - 2.0).abs() < 1e-10);
        let z = CMatrix::zeros(2, 2);
        assert!(svd(&z).condition_number().is_infinite());
    }

    #[test]
    fn solve_recovers_solution() {
        let a = test_matrix(6, 99);
        let x_true: Vec<C64> = (0..6).map(|i| C64::new(i as f64, -(i as f64))).collect();
        let b = a.mul_vec(&CVector::from_slice(&x_true));
        let x = solve(&a, b.as_slice()).expect("nonsingular");
        for (got, want) in x.iter().zip(&x_true) {
            assert!(got.approx_eq(*want, 1e-8));
        }
    }

    #[test]
    fn solve_detects_singular() {
        let a = CMatrix::from_reals(2, 2, &[1.0, 2.0, 2.0, 4.0]);
        assert!(solve(&a, &[C64::ONE, C64::ONE]).is_none());
    }
}

//! A minimal, self-contained double-precision complex scalar.
//!
//! The photonic transfer-matrix formalism used throughout `neuropulsim` is
//! built on complex amplitudes. We deliberately avoid an external complex
//! crate so the whole workspace stays within the approved dependency set;
//! [`C64`] implements exactly the operations the rest of the stack needs.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` real and imaginary parts.
///
/// # Examples
///
/// ```
/// use neuropulsim_linalg::C64;
///
/// let a = C64::new(1.0, 2.0);
/// let b = C64::from_polar(1.0, std::f64::consts::FRAC_PI_2);
/// assert!((a * a.conj()).re - a.abs2() < 1e-12);
/// assert!((b.re).abs() < 1e-12 && (b.im - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl C64 {
    /// The additive identity `0 + 0i`.
    pub const ZERO: C64 = C64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: C64 = C64 { re: 1.0, im: 0.0 };
    /// The imaginary unit `0 + 1i`.
    pub const I: C64 = C64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from Cartesian parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        C64 { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn real(re: f64) -> Self {
        C64 { re, im: 0.0 }
    }

    /// Creates a complex number from polar form `r * exp(i * theta)`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        C64::new(r * theta.cos(), r * theta.sin())
    }

    /// Returns `exp(i * theta)`, a unit phasor.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        C64::from_polar(1.0, theta)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        C64::new(self.re, -self.im)
    }

    /// Squared magnitude `|z|^2` (optical intensity of an amplitude).
    #[inline]
    pub fn abs2(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Argument (phase angle) in `(-pi, pi]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex exponential `exp(z)`.
    #[inline]
    pub fn exp(self) -> Self {
        C64::from_polar(self.re.exp(), self.im)
    }

    /// Principal square root.
    pub fn sqrt(self) -> Self {
        let r = self.abs();
        let theta = self.arg();
        C64::from_polar(r.sqrt(), theta / 2.0)
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// Returns a non-finite value when `z == 0`, mirroring `f64` semantics.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.abs2();
        C64::new(self.re / d, -self.im / d)
    }

    /// Multiplies by a real scalar.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        C64::new(self.re * s, self.im * s)
    }

    /// Returns `true` if both parts are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Componentwise approximate equality within `tol`.
    #[inline]
    pub fn approx_eq(self, other: C64, tol: f64) -> bool {
        (self - other).abs() <= tol
    }
}

impl fmt::Display for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}-{}i", self.re, -self.im)
        }
    }
}

impl From<f64> for C64 {
    fn from(re: f64) -> Self {
        C64::real(re)
    }
}

impl Add for C64 {
    type Output = C64;
    #[inline]
    fn add(self, rhs: C64) -> C64 {
        C64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for C64 {
    type Output = C64;
    #[inline]
    fn sub(self, rhs: C64) -> C64 {
        C64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: C64) -> C64 {
        C64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for C64 {
    type Output = C64;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z/w == z * w^{-1} by definition
    fn div(self, rhs: C64) -> C64 {
        self * rhs.recip()
    }
}

impl Neg for C64 {
    type Output = C64;
    #[inline]
    fn neg(self) -> C64 {
        C64::new(-self.re, -self.im)
    }
}

impl Mul<f64> for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: f64) -> C64 {
        self.scale(rhs)
    }
}

impl Mul<C64> for f64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: C64) -> C64 {
        rhs.scale(self)
    }
}

impl Div<f64> for C64 {
    type Output = C64;
    #[inline]
    fn div(self, rhs: f64) -> C64 {
        C64::new(self.re / rhs, self.im / rhs)
    }
}

impl AddAssign for C64 {
    #[inline]
    fn add_assign(&mut self, rhs: C64) {
        *self = *self + rhs;
    }
}

impl SubAssign for C64 {
    #[inline]
    fn sub_assign(&mut self, rhs: C64) {
        *self = *self - rhs;
    }
}

impl MulAssign for C64 {
    #[inline]
    fn mul_assign(&mut self, rhs: C64) {
        *self = *self * rhs;
    }
}

impl DivAssign for C64 {
    #[inline]
    fn div_assign(&mut self, rhs: C64) {
        *self = *self / rhs;
    }
}

impl Sum for C64 {
    fn sum<I: Iterator<Item = C64>>(iter: I) -> C64 {
        iter.fold(C64::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn construction_and_constants() {
        assert_eq!(C64::ZERO + C64::ONE, C64::ONE);
        assert_eq!(C64::I * C64::I, -C64::ONE);
        assert_eq!(C64::from(3.0), C64::new(3.0, 0.0));
    }

    #[test]
    fn polar_roundtrip() {
        let z = C64::from_polar(2.0, 0.7);
        assert!((z.abs() - 2.0).abs() < 1e-12);
        assert!((z.arg() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn cis_is_unit_phasor() {
        for k in 0..16 {
            let theta = k as f64 * PI / 8.0;
            assert!((C64::cis(theta).abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn arithmetic_identities() {
        let a = C64::new(1.5, -2.25);
        let b = C64::new(-0.5, 0.75);
        assert!(((a + b) - b).approx_eq(a, 1e-12));
        assert!((a * b / b).approx_eq(a, 1e-12));
        assert!((a * a.recip()).approx_eq(C64::ONE, 1e-12));
        assert!((-a + a).approx_eq(C64::ZERO, 1e-12));
    }

    #[test]
    fn conjugation_properties() {
        let a = C64::new(3.0, 4.0);
        assert_eq!(a.conj().conj(), a);
        assert!((a * a.conj()).im.abs() < 1e-12);
        assert!(((a * a.conj()).re - 25.0).abs() < 1e-12);
        assert!((a.abs() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn exp_and_sqrt() {
        let z = C64::new(0.0, PI);
        assert!(z.exp().approx_eq(-C64::ONE, 1e-12));
        let w = C64::new(-1.0, 0.0);
        assert!(w.sqrt().approx_eq(C64::I, 1e-12));
        let v = C64::new(0.3, -0.4);
        assert!((v.sqrt() * v.sqrt()).approx_eq(v, 1e-12));
    }

    #[test]
    fn scalar_ops() {
        let a = C64::new(1.0, 2.0);
        assert_eq!(a * 2.0, C64::new(2.0, 4.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(a / 2.0, C64::new(0.5, 1.0));
    }

    #[test]
    fn assign_ops_and_sum() {
        let mut a = C64::ONE;
        a += C64::I;
        a -= C64::ONE;
        a *= C64::new(0.0, -1.0);
        assert!(a.approx_eq(C64::ONE, 1e-12));
        a /= C64::new(2.0, 0.0);
        assert!(a.approx_eq(C64::new(0.5, 0.0), 1e-12));
        let s: C64 = (0..4).map(|_| C64::ONE).sum();
        assert_eq!(s, C64::new(4.0, 0.0));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(C64::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(C64::new(1.0, -2.0).to_string(), "1-2i");
    }
}

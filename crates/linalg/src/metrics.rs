//! Similarity metrics between matrices — the "expressivity" and
//! "robustness" scores of the paper's §4 are defined in terms of these.

use crate::CMatrix;

/// Normalized unitary fidelity
/// `F(U, V) = |Tr(U^dagger V)|^2 / (N * Tr(V^dagger V))`.
///
/// Equals 1 iff `V = e^{i phi} U` (global phase is physically irrelevant for
/// an interferometer), and is the standard mesh-programming quality metric.
///
/// # Panics
///
/// Panics if shapes differ or the matrices are not square.
pub fn unitary_fidelity(target: &CMatrix, realized: &CMatrix) -> f64 {
    assert!(target.is_square(), "fidelity: matrices must be square");
    assert_eq!(
        (target.rows(), target.cols()),
        (realized.rows(), realized.cols()),
        "fidelity: shape mismatch"
    );
    let n = target.rows() as f64;
    let overlap = target.adjoint().mul_mat(realized).trace().abs2();
    let gram = realized.adjoint().mul_mat(realized).trace().re;
    if gram <= 0.0 {
        return 0.0;
    }
    overlap / (n * gram)
}

/// Infidelity `1 - F`, convenient for log-scale plots.
pub fn unitary_infidelity(target: &CMatrix, realized: &CMatrix) -> f64 {
    (1.0 - unitary_fidelity(target, realized)).max(0.0)
}

/// Relative Frobenius error `||A - B||_F / ||A||_F`.
///
/// Used for non-unitary (SVD-core) matrix targets where global phase and
/// scale both matter.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn relative_error(target: &CMatrix, realized: &CMatrix) -> f64 {
    assert_eq!(
        (target.rows(), target.cols()),
        (realized.rows(), realized.cols()),
        "relative_error: shape mismatch"
    );
    let denom = target.frobenius_norm();
    if denom == 0.0 {
        return realized.frobenius_norm();
    }
    (target - realized).frobenius_norm() / denom
}

/// Mean squared error between row-major real matrices of identical shape,
/// used for detector-plane (intensity) comparisons.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn mse(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "mse: length mismatch");
    if a.is_empty() {
        return 0.0;
    }
    a.iter().zip(b).map(|(x, y)| (x - y).powi(2)).sum::<f64>() / a.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::haar_unitary;
    use crate::{CMatrix, C64};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fidelity_of_identical_is_one() {
        let mut rng = StdRng::seed_from_u64(2);
        let u = haar_unitary(&mut rng, 6);
        assert!((unitary_fidelity(&u, &u) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fidelity_is_global_phase_invariant() {
        let mut rng = StdRng::seed_from_u64(4);
        let u = haar_unitary(&mut rng, 5);
        let v = u.scaled(C64::cis(1.234));
        assert!((unitary_fidelity(&u, &v) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fidelity_of_unrelated_unitaries_is_small() {
        let mut rng = StdRng::seed_from_u64(6);
        let u = haar_unitary(&mut rng, 16);
        let v = haar_unitary(&mut rng, 16);
        // Expected value for independent Haar pair is 1/N^2.
        assert!(unitary_fidelity(&u, &v) < 0.2);
    }

    #[test]
    fn infidelity_nonnegative() {
        let id = CMatrix::identity(3);
        assert_eq!(unitary_infidelity(&id, &id), 0.0);
    }

    #[test]
    fn relative_error_basics() {
        let a = CMatrix::identity(2);
        let b = a.scaled(C64::real(1.1));
        let e = relative_error(&a, &b);
        assert!((e - 0.1).abs() < 1e-12);
        assert_eq!(relative_error(&a, &a), 0.0);
    }

    #[test]
    fn relative_error_zero_target() {
        let z = CMatrix::zeros(2, 2);
        let b = CMatrix::identity(2);
        assert!((relative_error(&z, &b) - 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn mse_basics() {
        assert_eq!(mse(&[], &[]), 0.0);
        assert!((mse(&[1.0, 2.0], &[1.0, 4.0]) - 2.0).abs() < 1e-12);
    }
}

//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API subset the workspace's benches use —
//! [`Criterion`], benchmark groups, [`BenchmarkId`], [`black_box`] and
//! the [`criterion_group!`]/[`criterion_main!`] macros — on top of a
//! plain wall-clock sampling harness (warm-up, then `sample_size` timed
//! samples; the median sample is reported).
//!
//! CLI behaviour mirrors what `cargo bench` relies on:
//!
//! - `cargo bench -- --test` runs every benchmark body exactly once
//!   (smoke mode, used by CI to catch bench bit-rot cheaply);
//! - any other free argument is a substring filter on benchmark names;
//! - `NEUROPULSIM_BENCH_JSON=<path>` appends one JSON object per
//!   benchmark (`name`, `median_ns`, `mean_ns`, `samples`) to `<path>`
//!   so results can be tracked across commits.

#![warn(missing_docs)]

use std::fmt::Display;
use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One measured benchmark result.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Full benchmark name (`group/id` or bare function name).
    pub name: String,
    /// Median time per iteration, in nanoseconds.
    pub median_ns: f64,
    /// Mean time per iteration, in nanoseconds.
    pub mean_ns: f64,
    /// Number of timed samples taken.
    pub samples: usize,
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
    results: Vec<Measurement>,
}

impl Criterion {
    /// Builds a driver from the process CLI arguments (see module docs).
    pub fn from_args() -> Self {
        let mut c = Criterion::default();
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => c.test_mode = true,
                // Flags cargo/criterion conventionally pass; ignored.
                "--bench" | "--verbose" | "--quiet" | "--noplot" => {}
                s if s.starts_with("--") => {}
                s => c.filter = Some(s.to_string()),
            }
        }
        c
    }

    fn selected(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 50,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        if self.selected(&name) {
            let m = run_bench(&name, 50, self.test_mode, |b| f(b));
            self.record(m);
        }
        self
    }

    fn record(&mut self, m: Option<Measurement>) {
        if let Some(m) = m {
            println!(
                "{:<44} {:>12}/iter  ({} samples, mean {})",
                m.name,
                fmt_ns(m.median_ns),
                m.samples,
                fmt_ns(m.mean_ns),
            );
            self.results.push(m);
        }
    }

    /// Prints the closing summary and writes the optional JSON sink.
    pub fn final_summary(&self) {
        if self.test_mode {
            println!(
                "bench smoke test: {} benchmarks executed",
                self.results.len()
            );
        }
        if let Ok(path) = std::env::var("NEUROPULSIM_BENCH_JSON") {
            if let Err(e) = self.write_json(&path) {
                eprintln!("warning: failed to write bench JSON to {path}: {e}");
            }
        }
    }

    fn write_json(&self, path: &str) -> std::io::Result<()> {
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        for m in &self.results {
            writeln!(
                file,
                "{{\"name\":\"{}\",\"median_ns\":{:.1},\"mean_ns\":{:.1},\"samples\":{}}}",
                m.name.replace('"', "'"),
                m.median_ns,
                m.mean_ns,
                m.samples
            )?;
        }
        Ok(())
    }
}

/// A named collection of benchmarks sharing a sample-size setting.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmarks `f` under `self.name/id`.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.name, id);
        if self.criterion.selected(&name) {
            let m = run_bench(&name, self.sample_size, self.criterion.test_mode, |b| f(b));
            self.criterion.record(m);
        }
        self
    }

    /// Benchmarks `f`, passing `input` through (criterion-compatible).
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id.0);
        if self.criterion.selected(&name) {
            let m = run_bench(&name, self.sample_size, self.criterion.test_mode, |b| {
                f(b, input)
            });
            self.criterion.record(m);
        }
        self
    }

    /// Ends the group (results are reported eagerly; kept for API parity).
    pub fn finish(self) {}
}

/// A benchmark identifier within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Builds an id from a displayed parameter value.
    pub fn from_parameter(p: impl Display) -> Self {
        BenchmarkId(p.to_string())
    }

    /// Builds an id from a function name and a parameter.
    pub fn new(name: impl Display, p: impl Display) -> Self {
        BenchmarkId(format!("{name}/{p}"))
    }
}

impl Display for BenchmarkId {
    /// Lets a [`BenchmarkId`] be passed wherever a name is expected
    /// (upstream criterion accepts ids in `bench_function` too).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the body.
pub struct Bencher {
    test_mode: bool,
    sample_size: usize,
    measurement: Option<(f64, f64, usize)>,
}

impl Bencher {
    /// Times `f`. In test mode, runs it exactly once.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            self.measurement = Some((0.0, 0.0, 1));
            return;
        }
        // Warm-up + calibration: find an iteration count whose batch
        // lasts at least ~1 ms so timer quantization stays negligible.
        let mut iters_per_sample = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            let dt = t0.elapsed();
            if dt >= Duration::from_millis(1) || iters_per_sample >= (1 << 24) {
                break;
            }
            iters_per_sample *= 4;
        }
        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            samples.push(t0.elapsed().as_secs_f64() * 1e9 / iters_per_sample as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        self.measurement = Some((median, mean, samples.len()));
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    name: &str,
    sample_size: usize,
    test_mode: bool,
    mut f: F,
) -> Option<Measurement> {
    let mut b = Bencher {
        test_mode,
        sample_size,
        measurement: None,
    };
    f(&mut b);
    b.measurement
        .map(|(median_ns, mean_ns, samples)| Measurement {
            name: name.to_string(),
            median_ns,
            mean_ns,
            samples,
        })
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Bundles benchmark functions into a single runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),* $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)*
        }
    };
}

/// Emits `main` for a bench binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),* $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::from_args();
            $($group(&mut c);)*
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_once() {
        let mut count = 0;
        let m = run_bench("t", 10, true, |b| {
            b.iter(|| {
                count += 1;
            })
        });
        assert_eq!(count, 1);
        let m = m.expect("measured");
        assert_eq!(m.samples, 1);
        assert_eq!(m.median_ns, 0.0);
    }

    #[test]
    fn timed_mode_reports_positive_times() {
        let m = run_bench("t", 3, false, |b| b.iter(|| black_box(3u64).pow(7))).expect("measured");
        assert!(m.median_ns > 0.0);
        assert!(m.mean_ns > 0.0);
        assert_eq!(m.samples, 3);
    }

    #[test]
    fn group_api_compiles_and_filters() {
        let mut c = Criterion {
            test_mode: true,
            filter: Some("keep".into()),
            results: Vec::new(),
        };
        let mut ran = 0;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(5);
            g.bench_function("keep_me", |b| b.iter(|| ran += 1));
            g.bench_with_input(BenchmarkId::from_parameter(8), &8usize, |b, &n| {
                b.iter(|| n * 2) // filtered out: name "g/8" lacks "keep"
            });
            g.finish();
        }
        assert_eq!(ran, 1);
        assert_eq!(c.results.len(), 1);
        assert_eq!(c.results[0].name, "g/keep_me");
    }

    #[test]
    fn ns_formatting() {
        assert_eq!(fmt_ns(500.0), "500.0 ns");
        assert!(fmt_ns(5_000.0).ends_with("us"));
        assert!(fmt_ns(5_000_000.0).ends_with("ms"));
        assert!(fmt_ns(5e9).ends_with('s'));
    }
}

//! Offline stand-in for the `proptest` crate.
//!
//! Provides the subset this workspace's property tests use: the
//! [`Strategy`] trait (implemented for numeric ranges), the
//! [`proptest!`] test-case macro, and the `prop_assert*` macros.
//!
//! Unlike real proptest there is no shrinking: each test runs a fixed
//! number of deterministic seeded cases (default 32, override with the
//! `PROPTEST_CASES` environment variable). Failures report the case
//! index, and the seed stream is a pure function of the test name, so a
//! failing case is exactly reproducible by rerunning the test.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.start..self.end)
    }
}

macro_rules! impl_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.start..self.end)
            }
        }
    )*};
}
impl_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Number of cases per property (env `PROPTEST_CASES`, default 32).
pub fn cases() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(32)
}

/// Deterministic per-test RNG derived from the test's name.
pub fn test_rng(name: &str) -> StdRng {
    // FNV-1a over the name: stable across runs and platforms.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h)
}

/// Everything a property-test module needs in scope.
pub mod prelude {
    pub use crate::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Defines property tests: each `arg in strategy` binding is sampled
/// fresh for every case, and the body runs once per case.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __pt_rng = $crate::test_rng(stringify!($name));
                for __pt_case in 0..$crate::cases() {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __pt_rng);)*
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small() -> impl Strategy<Value = f64> {
        -2.0..2.0f64
    }

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in -1.0..1.0f64, k in 0usize..5) {
            prop_assert!((-1.0..1.0).contains(&x));
            prop_assert!(k < 5, "k = {k}");
        }

        #[test]
        fn impl_strategy_fns_work(x in small()) {
            prop_assert!(x.abs() <= 2.0);
            prop_assert_eq!(x, x);
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        use rand::RngCore;
        assert_eq!(
            crate::test_rng("alpha").next_u64(),
            crate::test_rng("alpha").next_u64()
        );
        assert_ne!(
            crate::test_rng("alpha").next_u64(),
            crate::test_rng("beta").next_u64()
        );
    }
}

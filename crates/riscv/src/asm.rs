//! A small RV32IM assembler for writing offload firmware in tests and
//! examples without an external toolchain.
//!
//! Supports the instructions in [`crate::isa`], labels (`name:`),
//! comments (`#` or `;` to end of line), decimal/hex immediates, ABI
//! register names (`a0`, `sp`, ...) and the common pseudo-instructions
//! `nop`, `li`, `mv`, `j`, `jr`, `ret`, `call`, `beqz`, `bnez`.
//!
//! # Examples
//!
//! ```
//! let code = neuropulsim_riscv::asm::assemble(
//!     "
//!     li   a0, 10
//!     li   a1, 0
//! loop:
//!     add  a1, a1, a0
//!     addi a0, a0, -1
//!     bnez a0, loop
//!     ecall
//!     ",
//! )?;
//! assert_eq!(code.len(), 6); // each li fits one addi here
//! # Ok::<(), neuropulsim_riscv::asm::AsmError>(())
//! ```

use crate::isa::{encode, Instruction};
use std::collections::HashMap;
use std::fmt;

/// An assembly error with line information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line.
    pub line: usize,
    /// Problem description.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, AsmError> {
    Err(AsmError {
        line,
        message: message.into(),
    })
}

/// Parses a register name: `x0`–`x31` or ABI names.
fn parse_reg(token: &str, line: usize) -> Result<u8, AsmError> {
    let t = token.trim_end_matches(',');
    let abi = [
        ("zero", 0),
        ("ra", 1),
        ("sp", 2),
        ("gp", 3),
        ("tp", 4),
        ("t0", 5),
        ("t1", 6),
        ("t2", 7),
        ("s0", 8),
        ("fp", 8),
        ("s1", 9),
        ("a0", 10),
        ("a1", 11),
        ("a2", 12),
        ("a3", 13),
        ("a4", 14),
        ("a5", 15),
        ("a6", 16),
        ("a7", 17),
        ("s2", 18),
        ("s3", 19),
        ("s4", 20),
        ("s5", 21),
        ("s6", 22),
        ("s7", 23),
        ("s8", 24),
        ("s9", 25),
        ("s10", 26),
        ("s11", 27),
        ("t3", 28),
        ("t4", 29),
        ("t5", 30),
        ("t6", 31),
    ];
    for (name, idx) in abi {
        if t == name {
            return Ok(idx);
        }
    }
    if let Some(num) = t.strip_prefix('x') {
        if let Ok(v) = num.parse::<u8>() {
            if v < 32 {
                return Ok(v);
            }
        }
    }
    err(line, format!("unknown register '{t}'"))
}

/// Parses an immediate: decimal (possibly negative) or `0x` hex.
fn parse_imm(token: &str, line: usize) -> Result<i64, AsmError> {
    let t = token.trim_end_matches(',');
    let (neg, t) = match t.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, t),
    };
    let value = if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16)
    } else {
        t.parse::<i64>()
    };
    match value {
        Ok(v) => Ok(if neg { -v } else { v }),
        Err(_) => err(line, format!("bad immediate '{t}'")),
    }
}

/// Parses `offset(reg)` memory-operand syntax.
fn parse_mem(token: &str, line: usize) -> Result<(i64, u8), AsmError> {
    let t = token.trim_end_matches(',');
    let open = t.find('(').ok_or_else(|| AsmError {
        line,
        message: format!("expected offset(reg), got '{t}'"),
    })?;
    let close = t.len() - 1;
    if !t.ends_with(')') {
        return err(line, format!("expected offset(reg), got '{t}'"));
    }
    let off = if open == 0 {
        0
    } else {
        parse_imm(&t[..open], line)?
    };
    let reg = parse_reg(&t[open + 1..close], line)?;
    Ok((off, reg))
}

/// One parsed source statement, pre-label-resolution.
#[derive(Debug, Clone)]
enum Stmt {
    /// A fully resolved instruction.
    Ready(Instruction),
    /// A branch/jump needing a label target.
    Branch {
        mnemonic: String,
        rs1: u8,
        rs2: u8,
        label: String,
        line: usize,
    },
    /// `jal rd, label` / `j label` / `call label`.
    Jump { rd: u8, label: String, line: usize },
}

/// Assembles a source string into instruction words.
///
/// # Errors
///
/// Returns an [`AsmError`] describing the first problem found.
pub fn assemble(source: &str) -> Result<Vec<u32>, AsmError> {
    let mut labels: HashMap<String, u32> = HashMap::new();
    let mut stmts: Vec<(usize, Stmt)> = Vec::new();

    for (idx, raw_line) in source.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw_line
            .split(['#', ';'])
            .next()
            .unwrap_or("")
            .trim()
            .to_string();
        if line.is_empty() {
            continue;
        }
        let mut rest = line.as_str();
        // Labels (possibly several) at line start.
        while let Some(colon) = rest.find(':') {
            let (label, after) = rest.split_at(colon);
            let label = label.trim();
            if label.is_empty() || label.contains(char::is_whitespace) {
                break;
            }
            labels.insert(label.to_string(), (stmts.len() as u32) * 4);
            rest = after[1..].trim();
        }
        if rest.is_empty() {
            continue;
        }
        let stmt = parse_statement(rest, line_no)?;
        for s in stmt {
            stmts.push((line_no, s));
        }
    }

    let mut words = Vec::with_capacity(stmts.len());
    for (pc_index, (line, stmt)) in stmts.iter().enumerate() {
        let pc = (pc_index as u32) * 4;
        let inst = match stmt {
            Stmt::Ready(i) => *i,
            Stmt::Branch {
                mnemonic,
                rs1,
                rs2,
                label,
                line,
            } => {
                let target = *labels.get(label).ok_or_else(|| AsmError {
                    line: *line,
                    message: format!("unknown label '{label}'"),
                })?;
                let offset = target as i64 - pc as i64;
                branch_instruction(mnemonic, *rs1, *rs2, offset as i32, *line)?
            }
            Stmt::Jump { rd, label, line } => {
                let target = *labels.get(label).ok_or_else(|| AsmError {
                    line: *line,
                    message: format!("unknown label '{label}'"),
                })?;
                Instruction::Jal {
                    rd: *rd,
                    offset: target as i64 as i32 - pc as i32,
                }
            }
        };
        let _ = line;
        words.push(encode(inst));
    }
    Ok(words)
}

fn branch_instruction(
    mnemonic: &str,
    rs1: u8,
    rs2: u8,
    offset: i32,
    line: usize,
) -> Result<Instruction, AsmError> {
    use Instruction::*;
    Ok(match mnemonic {
        "beq" | "beqz" => Beq { rs1, rs2, offset },
        "bne" | "bnez" => Bne { rs1, rs2, offset },
        "blt" => Blt { rs1, rs2, offset },
        "bge" => Bge { rs1, rs2, offset },
        "bltu" => Bltu { rs1, rs2, offset },
        "bgeu" => Bgeu { rs1, rs2, offset },
        "bgt" => Blt {
            rs1: rs2,
            rs2: rs1,
            offset,
        },
        "ble" => Bge {
            rs1: rs2,
            rs2: rs1,
            offset,
        },
        _ => return err(line, format!("unknown branch '{mnemonic}'")),
    })
}

/// Parses one statement, possibly expanding a pseudo-instruction into
/// several real ones.
fn parse_statement(text: &str, line: usize) -> Result<Vec<Stmt>, AsmError> {
    use Instruction::*;
    let mut parts = text.split_whitespace();
    let mnemonic = parts.next().expect("nonempty").to_lowercase();
    let ops: Vec<&str> = parts.collect();
    let mn_for_err = mnemonic.clone();
    let op = {
        let ops = &ops;
        move |k: usize| -> Result<&str, AsmError> {
            ops.get(k).copied().ok_or_else(|| AsmError {
                line,
                message: format!("{mn_for_err}: missing operand {k}"),
            })
        }
    };

    let ready = |i: Instruction| Ok(vec![Stmt::Ready(i)]);

    match mnemonic.as_str() {
        "nop" => ready(Addi {
            rd: 0,
            rs1: 0,
            imm: 0,
        }),
        "ecall" => ready(Ecall),
        "ebreak" => ready(Ebreak),
        "fence" => ready(Fence),
        "wfi" => ready(Wfi),
        "ret" => ready(Jalr {
            rd: 0,
            rs1: 1,
            offset: 0,
        }),
        "li" => {
            let rd = parse_reg(op(0)?, line)?;
            let imm = parse_imm(op(1)?, line)?;
            if !(-2147483648..=4294967295).contains(&imm) {
                return err(line, format!("li immediate {imm} out of 32-bit range"));
            }
            let imm = imm as i32;
            if (-2048..=2047).contains(&imm) {
                ready(Addi { rd, rs1: 0, imm })
            } else {
                // lui + addi pair with sign-adjustment for the low part.
                let low = (imm << 20) >> 20;
                let high = imm.wrapping_sub(low) as u32;
                let mut v = vec![Stmt::Ready(Lui {
                    rd,
                    imm: high as i32,
                })];
                if low != 0 {
                    v.push(Stmt::Ready(Addi {
                        rd,
                        rs1: rd,
                        imm: low,
                    }));
                }
                Ok(v)
            }
        }
        "mv" => {
            let rd = parse_reg(op(0)?, line)?;
            let rs = parse_reg(op(1)?, line)?;
            ready(Addi {
                rd,
                rs1: rs,
                imm: 0,
            })
        }
        "not" => {
            let rd = parse_reg(op(0)?, line)?;
            let rs = parse_reg(op(1)?, line)?;
            ready(Xori {
                rd,
                rs1: rs,
                imm: -1,
            })
        }
        "neg" => {
            let rd = parse_reg(op(0)?, line)?;
            let rs = parse_reg(op(1)?, line)?;
            ready(Sub {
                rd,
                rs1: 0,
                rs2: rs,
            })
        }
        "j" => Ok(vec![Stmt::Jump {
            rd: 0,
            label: op(0)?.trim_end_matches(',').to_string(),
            line,
        }]),
        "call" => Ok(vec![Stmt::Jump {
            rd: 1,
            label: op(0)?.trim_end_matches(',').to_string(),
            line,
        }]),
        "jal" => {
            // jal rd, label  |  jal label
            if ops.len() == 1 {
                Ok(vec![Stmt::Jump {
                    rd: 1,
                    label: op(0)?.trim_end_matches(',').to_string(),
                    line,
                }])
            } else {
                let rd = parse_reg(op(0)?, line)?;
                Ok(vec![Stmt::Jump {
                    rd,
                    label: op(1)?.trim_end_matches(',').to_string(),
                    line,
                }])
            }
        }
        "jr" => {
            let rs = parse_reg(op(0)?, line)?;
            ready(Jalr {
                rd: 0,
                rs1: rs,
                offset: 0,
            })
        }
        "jalr" => {
            let rd = parse_reg(op(0)?, line)?;
            let (offset, rs1) = parse_mem(op(1)?, line)?;
            ready(Jalr {
                rd,
                rs1,
                offset: offset as i32,
            })
        }
        "lui" => {
            let rd = parse_reg(op(0)?, line)?;
            let imm = parse_imm(op(1)?, line)?;
            ready(Lui {
                rd,
                imm: (imm as i32) << 12,
            })
        }
        "auipc" => {
            let rd = parse_reg(op(0)?, line)?;
            let imm = parse_imm(op(1)?, line)?;
            ready(Auipc {
                rd,
                imm: (imm as i32) << 12,
            })
        }
        "beq" | "bne" | "blt" | "bge" | "bltu" | "bgeu" | "bgt" | "ble" => {
            let rs1 = parse_reg(op(0)?, line)?;
            let rs2 = parse_reg(op(1)?, line)?;
            Ok(vec![Stmt::Branch {
                mnemonic,
                rs1,
                rs2,
                label: op(2)?.trim_end_matches(',').to_string(),
                line,
            }])
        }
        "beqz" | "bnez" => {
            let rs1 = parse_reg(op(0)?, line)?;
            Ok(vec![Stmt::Branch {
                mnemonic,
                rs1,
                rs2: 0,
                label: op(1)?.trim_end_matches(',').to_string(),
                line,
            }])
        }
        "lb" | "lh" | "lw" | "lbu" | "lhu" => {
            let rd = parse_reg(op(0)?, line)?;
            let (offset, rs1) = parse_mem(op(1)?, line)?;
            let offset = offset as i32;
            ready(match mnemonic.as_str() {
                "lb" => Lb { rd, rs1, offset },
                "lh" => Lh { rd, rs1, offset },
                "lw" => Lw { rd, rs1, offset },
                "lbu" => Lbu { rd, rs1, offset },
                _ => Lhu { rd, rs1, offset },
            })
        }
        "sb" | "sh" | "sw" => {
            let rs2 = parse_reg(op(0)?, line)?;
            let (offset, rs1) = parse_mem(op(1)?, line)?;
            let offset = offset as i32;
            ready(match mnemonic.as_str() {
                "sb" => Sb { rs1, rs2, offset },
                "sh" => Sh { rs1, rs2, offset },
                _ => Sw { rs1, rs2, offset },
            })
        }
        "addi" | "slti" | "sltiu" | "xori" | "ori" | "andi" => {
            let rd = parse_reg(op(0)?, line)?;
            let rs1 = parse_reg(op(1)?, line)?;
            let imm = parse_imm(op(2)?, line)? as i32;
            if !(-2048..=2047).contains(&imm) && !matches!(mnemonic.as_str(), "sltiu") {
                return err(line, format!("{mnemonic} immediate {imm} out of range"));
            }
            ready(match mnemonic.as_str() {
                "addi" => Addi { rd, rs1, imm },
                "slti" => Slti { rd, rs1, imm },
                "sltiu" => Sltiu { rd, rs1, imm },
                "xori" => Xori { rd, rs1, imm },
                "ori" => Ori { rd, rs1, imm },
                _ => Andi { rd, rs1, imm },
            })
        }
        "slli" | "srli" | "srai" => {
            let rd = parse_reg(op(0)?, line)?;
            let rs1 = parse_reg(op(1)?, line)?;
            let shamt = parse_imm(op(2)?, line)?;
            if !(0..32).contains(&shamt) {
                return err(line, format!("shift amount {shamt} out of range"));
            }
            let shamt = shamt as u8;
            ready(match mnemonic.as_str() {
                "slli" => Slli { rd, rs1, shamt },
                "srli" => Srli { rd, rs1, shamt },
                _ => Srai { rd, rs1, shamt },
            })
        }
        "add" | "sub" | "sll" | "slt" | "sltu" | "xor" | "srl" | "sra" | "or" | "and" | "mul"
        | "mulh" | "mulhsu" | "mulhu" | "div" | "divu" | "rem" | "remu" => {
            let rd = parse_reg(op(0)?, line)?;
            let rs1 = parse_reg(op(1)?, line)?;
            let rs2 = parse_reg(op(2)?, line)?;
            ready(match mnemonic.as_str() {
                "add" => Add { rd, rs1, rs2 },
                "sub" => Sub { rd, rs1, rs2 },
                "sll" => Sll { rd, rs1, rs2 },
                "slt" => Slt { rd, rs1, rs2 },
                "sltu" => Sltu { rd, rs1, rs2 },
                "xor" => Xor { rd, rs1, rs2 },
                "srl" => Srl { rd, rs1, rs2 },
                "sra" => Sra { rd, rs1, rs2 },
                "or" => Or { rd, rs1, rs2 },
                "and" => And { rd, rs1, rs2 },
                "mul" => Mul { rd, rs1, rs2 },
                "mulh" => Mulh { rd, rs1, rs2 },
                "mulhsu" => Mulhsu { rd, rs1, rs2 },
                "mulhu" => Mulhu { rd, rs1, rs2 },
                "div" => Div { rd, rs1, rs2 },
                "divu" => Divu { rd, rs1, rs2 },
                "rem" => Rem { rd, rs1, rs2 },
                _ => Remu { rd, rs1, rs2 },
            })
        }
        "csrr" => {
            let rd = parse_reg(op(0)?, line)?;
            let csr = parse_imm(op(1)?, line)? as u16;
            ready(Csrrs { rd, rs1: 0, csr })
        }
        "csrw" => {
            let csr = parse_imm(op(0)?, line)? as u16;
            let rs1 = parse_reg(op(1)?, line)?;
            ready(Csrrw { rd: 0, rs1, csr })
        }
        other => err(line, format!("unknown mnemonic '{other}'")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::FlatMemory;
    use crate::cpu::{Cpu, Halt};

    fn run(source: &str) -> Cpu {
        let code = assemble(source).expect("assembles");
        let mut mem = FlatMemory::new(64 * 1024);
        mem.load_words(0, &code);
        let mut cpu = Cpu::new(0);
        let halt = cpu.run(&mut mem, 1_000_000).expect("no trap");
        assert_eq!(halt, Halt::Ecall);
        cpu
    }

    #[test]
    fn loop_sum() {
        let cpu = run("
            li   a0, 10
            li   a1, 0
        loop:
            add  a1, a1, a0
            addi a0, a0, -1
            bnez a0, loop
            ecall
        ");
        assert_eq!(cpu.reg(11), 55);
    }

    #[test]
    fn li_expands_large_immediates() {
        let cpu = run("
            li t0, 0x12345678
            li t1, -100000
            li t2, 2047
            ecall
        ");
        assert_eq!(cpu.reg(5), 0x12345678);
        assert_eq!(cpu.reg(6) as i32, -100000);
        assert_eq!(cpu.reg(7), 2047);
    }

    #[test]
    fn li_edge_immediates() {
        // Values whose low 12 bits sign-extend negatively.
        let cpu = run("
            li t0, 0x00000800
            li t1, 0x7FFFFFFF
            li t2, -2048
            ecall
        ");
        assert_eq!(cpu.reg(5), 0x800);
        assert_eq!(cpu.reg(6), 0x7FFF_FFFF);
        assert_eq!(cpu.reg(7) as i32, -2048);
    }

    #[test]
    fn memory_operands() {
        let cpu = run("
            li   t0, 0x1000
            li   t1, 0xABCD
            sw   t1, 8(t0)
            lw   t2, 8(t0)
            lhu  t3, (t0)      # zero offset form reads the zeroed word
            ecall
        ");
        assert_eq!(cpu.reg(7), 0xABCD);
        assert_eq!(cpu.reg(28), 0);
    }

    #[test]
    fn functions_with_call_ret() {
        let cpu = run("
            li   a0, 21
            call double
            ecall
        double:
            add  a0, a0, a0
            ret
        ");
        assert_eq!(cpu.reg(10), 42);
    }

    #[test]
    fn forward_and_backward_branches() {
        let cpu = run("
            li   a0, 0
            j    skip
            li   a0, 111     # never executed
        skip:
            li   a1, 3
        back:
            addi a0, a0, 1
            addi a1, a1, -1
            bnez a1, back
            ecall
        ");
        assert_eq!(cpu.reg(10), 3);
    }

    #[test]
    fn comments_and_blank_lines() {
        let cpu = run("
            # full-line comment
            li a0, 5   ; trailing comment

            ecall
        ");
        assert_eq!(cpu.reg(10), 5);
    }

    #[test]
    fn csr_pseudo_ops() {
        let cpu = run("
            nop
            nop
            csrr a0, 0xB00   # mcycle
            ecall
        ");
        assert_eq!(cpu.reg(10), 2);
    }

    #[test]
    fn mul_div_ops() {
        let cpu = run("
            li a0, 6
            li a1, 7
            mul a2, a0, a1
            div a3, a2, a0
            rem a4, a2, a1
            ecall
        ");
        assert_eq!(cpu.reg(12), 42);
        assert_eq!(cpu.reg(13), 7);
        assert_eq!(cpu.reg(14), 0);
    }

    #[test]
    fn error_reporting() {
        let e = assemble("bogus a0, a1").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.to_string().contains("bogus"));

        let e = assemble("add a0, a1").unwrap_err();
        assert!(e.message.contains("missing operand"));

        let e = assemble("beq a0, a1, nowhere").unwrap_err();
        assert!(e.message.contains("unknown label"));

        let e = assemble("addi a0, a1, 5000").unwrap_err();
        assert!(e.message.contains("out of range"));
    }

    #[test]
    fn abi_and_numeric_registers_agree() {
        let a = assemble("add a0, sp, ra").unwrap();
        let b = assemble("add x10, x2, x1").unwrap();
        assert_eq!(a, b);
    }
}

//! The memory bus abstraction between the CPU and the system: the sim
//! crate implements [`Bus`] over its memory map (DRAM, scratchpads,
//! memory-mapped accelerator registers).

use std::fmt;

/// Access fault raised by a bus device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusFault {
    /// The faulting address.
    pub addr: u32,
    /// Whether the access was a store.
    pub is_store: bool,
}

impl fmt::Display for BusFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "bus fault on {} at {:#010x}",
            if self.is_store { "store" } else { "load" },
            self.addr
        )
    }
}

impl std::error::Error for BusFault {}

/// A 32-bit little-endian memory bus.
///
/// Only word-width primitives are required; byte and halfword accessors
/// have default implementations that read-modify-write the containing
/// word, which is correct for memories and acceptable for the register
/// devices in this workspace.
pub trait Bus {
    /// Loads the aligned 32-bit word containing `addr` (low 2 bits
    /// ignored).
    ///
    /// # Errors
    ///
    /// Returns [`BusFault`] for unmapped addresses.
    fn load_word(&mut self, addr: u32) -> Result<u32, BusFault>;

    /// Stores an aligned 32-bit word (low 2 bits of `addr` ignored).
    ///
    /// # Errors
    ///
    /// Returns [`BusFault`] for unmapped or read-only addresses.
    fn store_word(&mut self, addr: u32, value: u32) -> Result<(), BusFault>;

    /// Loads one byte.
    ///
    /// # Errors
    ///
    /// Propagates the word access fault.
    fn load_byte(&mut self, addr: u32) -> Result<u8, BusFault> {
        let w = self.load_word_fast(addr & !3)?;
        Ok((w >> ((addr & 3) * 8)) as u8)
    }

    /// Loads one little-endian halfword.
    ///
    /// # Errors
    ///
    /// Propagates the word access fault.
    fn load_half(&mut self, addr: u32) -> Result<u16, BusFault> {
        let w = self.load_word_fast(addr & !3)?;
        Ok((w >> ((addr & 2) * 8)) as u16)
    }

    /// Stores one byte (read-modify-write).
    ///
    /// # Errors
    ///
    /// Propagates the word access fault.
    fn store_byte(&mut self, addr: u32, value: u8) -> Result<(), BusFault> {
        let aligned = addr & !3;
        let shift = (addr & 3) * 8;
        let w = self.load_word_fast(aligned)?;
        let w = (w & !(0xffu32 << shift)) | ((value as u32) << shift);
        self.store_word_fast(aligned, w)
    }

    /// Stores one halfword (read-modify-write).
    ///
    /// # Errors
    ///
    /// Propagates the word access fault.
    fn store_half(&mut self, addr: u32, value: u16) -> Result<(), BusFault> {
        let aligned = addr & !3;
        let shift = (addr & 2) * 8;
        let w = self.load_word_fast(aligned)?;
        let w = (w & !(0xffffu32 << shift)) | ((value as u32) << shift);
        self.store_word_fast(aligned, w)
    }

    /// Instruction fetch: must be observably identical to [`Bus::load_word`]
    /// (same value, same faults, same access accounting). Implementations
    /// backed by plain RAM may override it with a leaner single-bounds-check
    /// path; the decoded-block interpreter issues all fetches through this
    /// hook.
    ///
    /// # Errors
    ///
    /// Returns [`BusFault`] for unmapped addresses.
    fn fetch_word(&mut self, addr: u32) -> Result<u32, BusFault> {
        self.load_word(addr)
    }

    /// Side-effect-free read of the aligned word containing `addr`, used by
    /// the decoded-block cache to pre-decode straight-line code without
    /// charging access counters or latency. Returning `None` marks the
    /// address as uncacheable (e.g. device registers); the interpreter then
    /// falls back to plain fetch-and-decode there.
    fn peek_word(&self, addr: u32) -> Option<u32> {
        let _ = addr;
        None
    }

    /// Fused data-load fast path: observably identical to
    /// [`Bus::load_word`], overridable to bypass full bus dispatch when the
    /// address window is plain RAM.
    ///
    /// # Errors
    ///
    /// Returns [`BusFault`] for unmapped addresses.
    fn load_word_fast(&mut self, addr: u32) -> Result<u32, BusFault> {
        self.load_word(addr)
    }

    /// Fused data-store fast path: observably identical to
    /// [`Bus::store_word`], overridable to bypass full bus dispatch when the
    /// address window is plain RAM.
    ///
    /// # Errors
    ///
    /// Returns [`BusFault`] for unmapped or read-only addresses.
    fn store_word_fast(&mut self, addr: u32, value: u32) -> Result<(), BusFault> {
        self.store_word(addr, value)
    }

    /// Bulk-charges the accounting side effects of `count` instruction
    /// fetches covering `[start, start + 4*count)` without reading the
    /// words, or reports that it cannot. Returning `true` promises that
    /// *exactly* the accounting of that many [`Bus::fetch_word`] calls
    /// was applied (e.g. read counters) and nothing else; implementations
    /// whose fetches have per-access state (stall charging, cache
    /// modelling) must return `false`, and the caller then performs real
    /// fetches. `count == 0` acts as a side-effect-free probe for
    /// whether the region is bulk-chargeable.
    fn charge_fetches(&mut self, start: u32, count: u32) -> bool {
        let _ = (start, count);
        false
    }

    /// Called by the bulk interpreter immediately before it executes a
    /// load/store whose effective address reaches device space, with the
    /// CPU's current cycle count. Returning `true` promises the access
    /// may run in place: the bus brings its device clock up to `cycles`
    /// first (legal inside a quiet window, where every skipped device
    /// tick is a no-op). Returning `false` sends the access to the
    /// caller's precise per-instruction path instead.
    fn mmio_prologue(&mut self, cycles: u64) -> bool {
        let _ = cycles;
        false
    }

    /// Called right after an in-place device access permitted by
    /// [`Bus::mmio_prologue`]. Returns `true` while the quiet window
    /// still holds — no device has work in flight and no interrupt is
    /// pending — so bulk execution may continue; `false` hands control
    /// back to the caller's full per-cycle protocol.
    fn mmio_epilogue(&mut self) -> bool {
        false
    }
}

/// A flat little-endian RAM starting at address 0 — enough to run
/// standalone CPU tests without the full system simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct FlatMemory {
    data: Vec<u8>,
}

impl FlatMemory {
    /// Creates a zeroed memory of `size` bytes (rounded up to a word).
    pub fn new(size: usize) -> Self {
        FlatMemory {
            data: vec![0; (size + 3) & !3],
        }
    }

    /// Size in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the memory has zero size.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies `bytes` into memory at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the memory size.
    pub fn load_program(&mut self, addr: u32, bytes: &[u8]) {
        let start = addr as usize;
        self.data[start..start + bytes.len()].copy_from_slice(bytes);
    }

    /// Copies instruction words into memory at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the memory size.
    pub fn load_words(&mut self, addr: u32, words: &[u32]) {
        for (k, w) in words.iter().enumerate() {
            let bytes = w.to_le_bytes();
            self.load_program(addr + (k as u32) * 4, &bytes);
        }
    }
}

impl Bus for FlatMemory {
    fn load_word(&mut self, addr: u32) -> Result<u32, BusFault> {
        let a = (addr & !3) as usize;
        if a + 4 > self.data.len() {
            return Err(BusFault {
                addr,
                is_store: false,
            });
        }
        Ok(u32::from_le_bytes([
            self.data[a],
            self.data[a + 1],
            self.data[a + 2],
            self.data[a + 3],
        ]))
    }

    fn store_word(&mut self, addr: u32, value: u32) -> Result<(), BusFault> {
        let a = (addr & !3) as usize;
        if a + 4 > self.data.len() {
            return Err(BusFault {
                addr,
                is_store: true,
            });
        }
        self.data[a..a + 4].copy_from_slice(&value.to_le_bytes());
        Ok(())
    }

    fn peek_word(&self, addr: u32) -> Option<u32> {
        let a = (addr & !3) as usize;
        let bytes = self.data.get(a..a + 4)?;
        Some(u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]))
    }

    fn charge_fetches(&mut self, _start: u32, _count: u32) -> bool {
        // Fetches from flat memory carry no accounting at all.
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_roundtrip() {
        let mut m = FlatMemory::new(64);
        m.store_word(8, 0xDEAD_BEEF).unwrap();
        assert_eq!(m.load_word(8).unwrap(), 0xDEAD_BEEF);
    }

    #[test]
    fn little_endian_bytes() {
        let mut m = FlatMemory::new(16);
        m.store_word(0, 0x0403_0201).unwrap();
        assert_eq!(m.load_byte(0).unwrap(), 0x01);
        assert_eq!(m.load_byte(3).unwrap(), 0x04);
        assert_eq!(m.load_half(2).unwrap(), 0x0403);
    }

    #[test]
    fn sub_word_stores_preserve_neighbors() {
        let mut m = FlatMemory::new(16);
        m.store_word(0, 0xAABB_CCDD).unwrap();
        m.store_byte(1, 0x11).unwrap();
        assert_eq!(m.load_word(0).unwrap(), 0xAABB_11DD);
        m.store_half(2, 0x2233).unwrap();
        assert_eq!(m.load_word(0).unwrap(), 0x2233_11DD);
    }

    #[test]
    fn out_of_range_faults() {
        let mut m = FlatMemory::new(8);
        assert!(m.load_word(8).is_err());
        let f = m.store_word(100, 1).unwrap_err();
        assert!(f.is_store);
        assert!(f.to_string().contains("store"));
    }

    #[test]
    fn load_words_places_program() {
        let mut m = FlatMemory::new(32);
        m.load_words(4, &[0x11111111, 0x22222222]);
        assert_eq!(m.load_word(4).unwrap(), 0x11111111);
        assert_eq!(m.load_word(8).unwrap(), 0x22222222);
    }
}

//! The memory bus abstraction between the CPU and the system: the sim
//! crate implements [`Bus`] over its memory map (DRAM, scratchpads,
//! memory-mapped accelerator registers).

use std::fmt;

/// Access fault raised by a bus device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusFault {
    /// The faulting address.
    pub addr: u32,
    /// Whether the access was a store.
    pub is_store: bool,
}

impl fmt::Display for BusFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "bus fault on {} at {:#010x}",
            if self.is_store { "store" } else { "load" },
            self.addr
        )
    }
}

impl std::error::Error for BusFault {}

/// A 32-bit little-endian memory bus.
///
/// Only word-width primitives are required; byte and halfword accessors
/// have default implementations that read-modify-write the containing
/// word, which is correct for memories and acceptable for the register
/// devices in this workspace.
pub trait Bus {
    /// Loads the aligned 32-bit word containing `addr` (low 2 bits
    /// ignored).
    ///
    /// # Errors
    ///
    /// Returns [`BusFault`] for unmapped addresses.
    fn load_word(&mut self, addr: u32) -> Result<u32, BusFault>;

    /// Stores an aligned 32-bit word (low 2 bits of `addr` ignored).
    ///
    /// # Errors
    ///
    /// Returns [`BusFault`] for unmapped or read-only addresses.
    fn store_word(&mut self, addr: u32, value: u32) -> Result<(), BusFault>;

    /// Loads one byte.
    ///
    /// # Errors
    ///
    /// Propagates the word access fault.
    fn load_byte(&mut self, addr: u32) -> Result<u8, BusFault> {
        let w = self.load_word(addr & !3)?;
        Ok((w >> ((addr & 3) * 8)) as u8)
    }

    /// Loads one little-endian halfword.
    ///
    /// # Errors
    ///
    /// Propagates the word access fault.
    fn load_half(&mut self, addr: u32) -> Result<u16, BusFault> {
        let w = self.load_word(addr & !3)?;
        Ok((w >> ((addr & 2) * 8)) as u16)
    }

    /// Stores one byte (read-modify-write).
    ///
    /// # Errors
    ///
    /// Propagates the word access fault.
    fn store_byte(&mut self, addr: u32, value: u8) -> Result<(), BusFault> {
        let aligned = addr & !3;
        let shift = (addr & 3) * 8;
        let w = self.load_word(aligned)?;
        let w = (w & !(0xffu32 << shift)) | ((value as u32) << shift);
        self.store_word(aligned, w)
    }

    /// Stores one halfword (read-modify-write).
    ///
    /// # Errors
    ///
    /// Propagates the word access fault.
    fn store_half(&mut self, addr: u32, value: u16) -> Result<(), BusFault> {
        let aligned = addr & !3;
        let shift = (addr & 2) * 8;
        let w = self.load_word(aligned)?;
        let w = (w & !(0xffffu32 << shift)) | ((value as u32) << shift);
        self.store_word(aligned, w)
    }
}

/// A flat little-endian RAM starting at address 0 — enough to run
/// standalone CPU tests without the full system simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct FlatMemory {
    data: Vec<u8>,
}

impl FlatMemory {
    /// Creates a zeroed memory of `size` bytes (rounded up to a word).
    pub fn new(size: usize) -> Self {
        FlatMemory {
            data: vec![0; (size + 3) & !3],
        }
    }

    /// Size in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the memory has zero size.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies `bytes` into memory at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the memory size.
    pub fn load_program(&mut self, addr: u32, bytes: &[u8]) {
        let start = addr as usize;
        self.data[start..start + bytes.len()].copy_from_slice(bytes);
    }

    /// Copies instruction words into memory at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the memory size.
    pub fn load_words(&mut self, addr: u32, words: &[u32]) {
        for (k, w) in words.iter().enumerate() {
            let bytes = w.to_le_bytes();
            self.load_program(addr + (k as u32) * 4, &bytes);
        }
    }
}

impl Bus for FlatMemory {
    fn load_word(&mut self, addr: u32) -> Result<u32, BusFault> {
        let a = (addr & !3) as usize;
        if a + 4 > self.data.len() {
            return Err(BusFault {
                addr,
                is_store: false,
            });
        }
        Ok(u32::from_le_bytes([
            self.data[a],
            self.data[a + 1],
            self.data[a + 2],
            self.data[a + 3],
        ]))
    }

    fn store_word(&mut self, addr: u32, value: u32) -> Result<(), BusFault> {
        let a = (addr & !3) as usize;
        if a + 4 > self.data.len() {
            return Err(BusFault {
                addr,
                is_store: true,
            });
        }
        self.data[a..a + 4].copy_from_slice(&value.to_le_bytes());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_roundtrip() {
        let mut m = FlatMemory::new(64);
        m.store_word(8, 0xDEAD_BEEF).unwrap();
        assert_eq!(m.load_word(8).unwrap(), 0xDEAD_BEEF);
    }

    #[test]
    fn little_endian_bytes() {
        let mut m = FlatMemory::new(16);
        m.store_word(0, 0x0403_0201).unwrap();
        assert_eq!(m.load_byte(0).unwrap(), 0x01);
        assert_eq!(m.load_byte(3).unwrap(), 0x04);
        assert_eq!(m.load_half(2).unwrap(), 0x0403);
    }

    #[test]
    fn sub_word_stores_preserve_neighbors() {
        let mut m = FlatMemory::new(16);
        m.store_word(0, 0xAABB_CCDD).unwrap();
        m.store_byte(1, 0x11).unwrap();
        assert_eq!(m.load_word(0).unwrap(), 0xAABB_11DD);
        m.store_half(2, 0x2233).unwrap();
        assert_eq!(m.load_word(0).unwrap(), 0x2233_11DD);
    }

    #[test]
    fn out_of_range_faults() {
        let mut m = FlatMemory::new(8);
        assert!(m.load_word(8).is_err());
        let f = m.store_word(100, 1).unwrap_err();
        assert!(f.is_store);
        assert!(f.to_string().contains("store"));
    }

    #[test]
    fn load_words_places_program() {
        let mut m = FlatMemory::new(32);
        m.load_words(4, &[0x11111111, 0x22222222]);
        assert_eq!(m.load_word(4).unwrap(), 0x11111111);
        assert_eq!(m.load_word(8).unwrap(), 0x22222222);
    }
}

//! Decoded-block interpreter support: a direct-mapped cache of
//! pre-decoded straight-line instruction blocks.
//!
//! Fetch-time decode is the dominant cost of the seed interpreter —
//! every [`crate::cpu::Cpu::step`] re-fetches and re-decodes the word at
//! `pc`. The block cache amortizes that work the way gem5's atomic fast
//! path does: code is decoded once per *block* (a run of instructions
//! ending at the first control transfer or system op) and dispatched
//! from the pre-decoded form afterwards.
//!
//! Correctness rests on two tiers. The precise path
//! ([`crate::cpu::Cpu::step_cached`]) issues a per-instruction *verify
//! fetch*: a normal accounted fetch through
//! [`crate::bus::Bus::fetch_word`] whose word is compared against the
//! cached decode, so code rewritten under the cache — by stores, DMA, or
//! fault injection — is picked up on the exact cycle the seed
//! interpreter would see it. The bulk path
//! ([`crate::cpu::Cpu::run_cached_span`]) replaces the verify fetch with
//! *explicit invalidation*: the cache tracks the address range its
//! blocks cover, CPU stores into that range drop the cache before the
//! next instruction, and external writers (DMA, host pokes) are reported
//! via [`crate::cpu::Cpu::note_external_writes`]. Blocks are built from
//! side-effect-free [`crate::bus::Bus::peek_word`] reads, so
//! pre-decoding ahead of execution never perturbs the accounting.

use crate::bus::Bus;
use crate::isa::{decode, Instruction};

/// Hard cap on instructions per decoded block.
pub const MAX_BLOCK_LEN: usize = 64;

/// Default number of direct-mapped block slots.
pub const DEFAULT_SLOTS: usize = 512;

/// One pre-decoded instruction: the raw word it was decoded from (for
/// the verify fetch) and the decoded form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodedOp {
    /// The raw instruction word the decode came from.
    pub word: u32,
    /// The decoded instruction.
    pub inst: Instruction,
}

/// A straight-line run of pre-decoded instructions starting at
/// [`DecodedBlock::start`]. The last op is the block terminator: a
/// branch, jump, `ecall`/`ebreak`, or `wfi` — or simply the
/// [`MAX_BLOCK_LEN`]-th instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedBlock {
    /// Address of the first instruction.
    pub start: u32,
    /// The pre-decoded instructions, in address order.
    pub ops: Vec<DecodedOp>,
}

/// `true` for instructions that end a straight-line block: anything that
/// can redirect `pc`, halt, or put the core to sleep.
pub fn is_block_terminator(inst: &Instruction) -> bool {
    use Instruction::*;
    matches!(
        inst,
        Jal { .. }
            | Jalr { .. }
            | Beq { .. }
            | Bne { .. }
            | Blt { .. }
            | Bge { .. }
            | Bltu { .. }
            | Bgeu { .. }
            | Ecall
            | Ebreak
            | Wfi
    )
}

impl DecodedBlock {
    /// Pre-decodes the straight-line block starting at `start` using
    /// side-effect-free peeks. Returns `None` when the first word is
    /// unpeekable (device space) or does not decode — the interpreter
    /// falls back to the plain fetch-and-decode path there, reproducing
    /// the seed trap behavior exactly.
    pub fn build<B: Bus + ?Sized>(bus: &B, start: u32) -> Option<DecodedBlock> {
        // One up-front allocation: blocks are rebuilt on every cache
        // miss, and growth reallocations dominate the build cost.
        let mut ops = Vec::with_capacity(MAX_BLOCK_LEN);
        let mut pc = start;
        while ops.len() < MAX_BLOCK_LEN {
            let Some(word) = bus.peek_word(pc) else { break };
            let Ok(inst) = decode(word) else { break };
            ops.push(DecodedOp { word, inst });
            if is_block_terminator(&inst) {
                break;
            }
            pc = pc.wrapping_add(4);
        }
        if ops.is_empty() {
            None
        } else {
            Some(DecodedBlock { start, ops })
        }
    }
}

/// A direct-mapped cache of [`DecodedBlock`]s keyed by block start
/// address, with hit/miss counters for the perf-counter surface.
#[derive(Debug, Clone)]
pub struct BlockCache {
    slots: Vec<Option<DecodedBlock>>,
    mask: usize,
    enabled: bool,
    // Byte range `[code_lo, code_hi)` covering every cached block — the
    // watch window for store-based invalidation (empty when lo == hi).
    // Eviction leaves it over-approximate, which is always safe.
    code_lo: u32,
    code_hi: u32,
    /// Block entries served from the cache.
    pub hits: u64,
    /// Block entries that had to decode a fresh block.
    pub misses: u64,
    /// Direct-mapped inserts that evicted a *different* block (same
    /// slot, different start address) — the thrash signal that sizes
    /// [`DEFAULT_SLOTS`].
    pub conflict_evictions: u64,
}

impl BlockCache {
    /// Creates a cache with `slots` direct-mapped entries (rounded up to
    /// a power of two, minimum 1).
    pub fn new(slots: usize) -> Self {
        let slots = slots.max(1).next_power_of_two();
        BlockCache {
            slots: vec![None; slots],
            mask: slots - 1,
            enabled: true,
            code_lo: 0,
            code_hi: 0,
            hits: 0,
            misses: 0,
            conflict_evictions: 0,
        }
    }

    /// Whether cached dispatch is enabled (on by default). When disabled
    /// the interpreter takes the plain fetch-and-decode path for every
    /// instruction — useful for A/B bit-identity checks and benchmarks.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Enables or disables cached dispatch; disabling also drops all
    /// cached blocks.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
        if !enabled {
            self.invalidate_all();
        }
    }

    /// The direct-mapped slot index for a block starting at `pc`.
    #[inline]
    pub fn slot_of(&self, pc: u32) -> usize {
        ((pc >> 2) as usize) & self.mask
    }

    /// The block stored in `slot`, if any.
    #[inline]
    pub fn block(&self, slot: usize) -> Option<&DecodedBlock> {
        self.slots[slot].as_ref()
    }

    /// Installs `block` in its slot, evicting any previous tenant, and
    /// widens the watched code range to cover it.
    pub fn insert(&mut self, block: DecodedBlock) -> usize {
        let end = block.start.saturating_add(4 * block.ops.len() as u32);
        self.widen_watch(block.start, end);
        let slot = self.slot_of(block.start);
        if let Some(old) = &self.slots[slot] {
            if old.start != block.start {
                self.conflict_evictions += 1;
            }
        }
        self.slots[slot] = Some(block);
        slot
    }

    /// Widens the watched code range to cover `[lo, hi)`. The trace
    /// engine calls this for every compiled-trace segment so stores into
    /// traced code invalidate through the same watch window as blocks.
    pub fn widen_watch(&mut self, lo: u32, hi: u32) {
        if lo >= hi {
            return;
        }
        if self.code_lo == self.code_hi {
            self.code_lo = lo;
            self.code_hi = hi;
        } else {
            self.code_lo = self.code_lo.min(lo);
            self.code_hi = self.code_hi.max(hi);
        }
    }

    /// `true` when a write to byte `addr` could land inside cached code.
    #[inline]
    pub fn watches(&self, addr: u32) -> bool {
        addr.wrapping_sub(self.code_lo) < self.code_hi.wrapping_sub(self.code_lo)
    }

    /// `true` when the byte range `[lo, hi)` could overlap cached code.
    #[inline]
    pub fn overlaps(&self, lo: u32, hi: u32) -> bool {
        self.code_lo != self.code_hi && lo < self.code_hi && hi > self.code_lo
    }

    /// Drops the block in `slot`.
    pub fn evict(&mut self, slot: usize) {
        self.slots[slot] = None;
    }

    /// Drops every cached block (used on checkpoint restore and bulk
    /// code rewrites). Counters are preserved — they describe the run,
    /// not the cache contents. Free when nothing was inserted since the
    /// last invalidation (the watch range doubles as an occupancy flag —
    /// hosts call this on every run entry).
    pub fn invalidate_all(&mut self) {
        if self.code_lo == self.code_hi {
            return;
        }
        for slot in &mut self.slots {
            *slot = None;
        }
        self.code_lo = 0;
        self.code_hi = 0;
    }

    /// Hit rate over block entries so far (0 when nothing ran).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl Default for BlockCache {
    fn default() -> Self {
        BlockCache::new(DEFAULT_SLOTS)
    }
}

/// A point-in-time copy of the CPU hardware counters, including the
/// decoded-block cache and trace-engine statistics — the
/// `mcycle`/`minstret`-style surface firmware experiments use to
/// self-report cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PerfCounters {
    /// Cycle counter (`mcycle`).
    pub cycles: u64,
    /// Retired instructions (`minstret`).
    pub instret: u64,
    /// Decoded-block cache hits (block entries served pre-decoded).
    pub block_hits: u64,
    /// Decoded-block cache misses (blocks decoded on entry).
    pub block_misses: u64,
    /// Direct-mapped block evictions that replaced a different block.
    pub block_conflict_evictions: u64,
    /// Trace dispatches (entries plus in-place loop iterations).
    pub trace_hits: u64,
    /// Traces compiled (recompiles after invalidation included).
    pub traces_compiled: u64,
    /// Direct-mapped trace evictions that replaced a different trace.
    pub trace_conflict_evictions: u64,
    /// Trace side exits: a branch retired against the prediction.
    pub trace_exit_guard: u64,
    /// Trace side exits: the trace ran to its end without looping.
    pub trace_exit_end: u64,
    /// Trace side exits: cycle budget / bulk horizon reached.
    pub trace_exit_budget: u64,
    /// Trace side exits: an MMIO access bailed or closed the window.
    pub trace_exit_mmio: u64,
    /// Trace side exits: an op invalidated the compiled code under it.
    pub trace_exit_invalidated: u64,
}

impl PerfCounters {
    /// Block-cache hit rate (0 when no blocks were entered).
    pub fn block_hit_rate(&self) -> f64 {
        let total = self.block_hits + self.block_misses;
        if total == 0 {
            0.0
        } else {
            self.block_hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::FlatMemory;
    use crate::isa::encode;
    use Instruction::*;

    fn mem_with(words: &[Instruction]) -> FlatMemory {
        let mut mem = FlatMemory::new(4096);
        let code: Vec<u32> = words.iter().map(|&i| encode(i)).collect();
        mem.load_words(0, &code);
        mem
    }

    #[test]
    fn block_ends_at_branch() {
        let mem = mem_with(&[
            Addi {
                rd: 1,
                rs1: 0,
                imm: 1,
            },
            Add {
                rd: 2,
                rs1: 1,
                rs2: 1,
            },
            Beq {
                rs1: 1,
                rs2: 2,
                offset: 8,
            },
            Addi {
                rd: 3,
                rs1: 0,
                imm: 9,
            },
        ]);
        let block = DecodedBlock::build(&mem, 0).expect("block builds");
        assert_eq!(block.ops.len(), 3, "terminates at the branch, inclusive");
        assert!(is_block_terminator(&block.ops[2].inst));
    }

    #[test]
    fn block_ends_at_system_ops() {
        for term in [Ecall, Ebreak, Wfi, Jal { rd: 0, offset: 8 }] {
            let mem = mem_with(&[
                Addi {
                    rd: 1,
                    rs1: 0,
                    imm: 1,
                },
                term,
                Addi {
                    rd: 2,
                    rs1: 0,
                    imm: 2,
                },
            ]);
            let block = DecodedBlock::build(&mem, 0).unwrap();
            assert_eq!(block.ops.len(), 2, "{term:?} must terminate the block");
        }
    }

    #[test]
    fn block_stops_before_undecodable_word() {
        let mut mem = mem_with(&[
            Addi {
                rd: 1,
                rs1: 0,
                imm: 1,
            },
            Addi {
                rd: 2,
                rs1: 0,
                imm: 2,
            },
        ]);
        mem.load_words(8, &[0xFFFF_FFFF]);
        let block = DecodedBlock::build(&mem, 0).unwrap();
        assert_eq!(block.ops.len(), 2, "garbage word is not pre-decoded");
        assert!(
            DecodedBlock::build(&mem, 8).is_none(),
            "block starting on garbage falls back to the plain path"
        );
    }

    #[test]
    fn block_length_is_capped() {
        let long: Vec<Instruction> = (0..(MAX_BLOCK_LEN + 8))
            .map(|k| Addi {
                rd: 1,
                rs1: 0,
                imm: (k % 7) as i32,
            })
            .collect();
        let mem = mem_with(&long);
        let block = DecodedBlock::build(&mem, 0).unwrap();
        assert_eq!(block.ops.len(), MAX_BLOCK_LEN);
    }

    #[test]
    fn cache_inserts_evicts_and_counts() {
        let mem = mem_with(&[Ecall]);
        let mut cache = BlockCache::new(4);
        assert_eq!(cache.hit_rate(), 0.0);
        let block = DecodedBlock::build(&mem, 0).unwrap();
        let slot = cache.insert(block.clone());
        assert_eq!(cache.block(slot).unwrap().start, 0);
        // Same slot, different start address evicts (direct-mapped).
        let colliding = DecodedBlock {
            start: 4 * (cache.mask as u32 + 1),
            ops: block.ops.clone(),
        };
        assert_eq!(cache.slot_of(colliding.start), slot, "collision by design");
        cache.insert(colliding);
        assert_ne!(cache.block(slot).unwrap().start, 0, "evicted");
        cache.evict(slot);
        assert!(cache.block(slot).is_none());
        cache.insert(block);
        cache.invalidate_all();
        assert!(cache.block(slot).is_none());
    }

    #[test]
    fn watch_range_tracks_inserted_blocks() {
        let mem = mem_with(&[
            Addi {
                rd: 1,
                rs1: 0,
                imm: 1,
            },
            Ecall,
        ]);
        let mut cache = BlockCache::new(8);
        assert!(!cache.watches(0), "empty cache watches nothing");
        let block = DecodedBlock::build(&mem, 0).unwrap();
        let bytes = 4 * block.ops.len() as u32;
        cache.insert(block);
        assert!(cache.watches(0) && cache.watches(bytes - 1));
        assert!(!cache.watches(bytes));
        assert!(cache.overlaps(0, 4));
        assert!(!cache.overlaps(bytes, bytes + 4));
        cache.invalidate_all();
        assert!(!cache.watches(0));
        assert!(!cache.overlaps(0, u32::MAX));
    }

    #[test]
    fn disabling_drops_blocks() {
        let mem = mem_with(&[Ecall]);
        let mut cache = BlockCache::default();
        let block = DecodedBlock::build(&mem, 0).unwrap();
        let slot = cache.insert(block);
        cache.set_enabled(false);
        assert!(!cache.is_enabled());
        assert!(cache.block(slot).is_none());
    }

    #[test]
    fn perf_counters_hit_rate() {
        let p = PerfCounters {
            cycles: 10,
            instret: 8,
            block_hits: 3,
            block_misses: 1,
            ..PerfCounters::default()
        };
        assert_eq!(p.block_hit_rate(), 0.75);
        assert_eq!(PerfCounters::default().block_hit_rate(), 0.0);
    }
}

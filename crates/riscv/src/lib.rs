//! # neuropulsim-riscv
//!
//! A self-contained RV32IM instruction-set simulator: the host CPU of the
//! gem5-style full-system platform in the paper's §5 (which ports
//! gem5-SALAM to the RISC-V ISA). Provides:
//!
//! - [`isa`]: instruction decode/encode for RV32I + M + Zicsr subset;
//! - [`cpu`]: an interpreter with a per-class cycle model, traps, CSR
//!   cycle counters and `wfi` interrupt semantics;
//! - [`bus`]: the memory-bus trait the system simulator implements, plus
//!   a flat test memory;
//! - [`asm`]: a small assembler (labels, ABI names, pseudo-instructions)
//!   for writing offload firmware inline.
//!
//! # Examples
//!
//! ```
//! use neuropulsim_riscv::{asm, bus::FlatMemory, cpu::Cpu};
//!
//! let code = asm::assemble("li a0, 2\nli a1, 3\nadd a0, a0, a1\necall")?;
//! let mut mem = FlatMemory::new(4096);
//! mem.load_words(0, &code);
//! let mut cpu = Cpu::new(0);
//! cpu.run(&mut mem, 1000)?;
//! assert_eq!(cpu.reg(10), 5);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod asm;
pub mod block;
pub mod bus;
pub mod cpu;
pub mod disasm;
pub mod isa;
pub mod trace;

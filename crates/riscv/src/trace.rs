//! Trace (superblock) compiler: hot-path stitching across taken
//! branches.
//!
//! The decoded-block cache ([`crate::block`]) stops at the first control
//! transfer, so branch-heavy firmware — the cluster scheduler's work
//! queue, guarded-offload retry loops, any software inner loop — pays a
//! block re-entry (cursor teardown, slot lookup, position re-validation)
//! on every taken branch. The trace layer removes that per-branch tax:
//!
//! 1. **Hot-edge profiling.** The bulk interpreter records, per branch
//!    pc, how often each direction retired, and counts entries per block
//!    start. When a block entry crosses [`HOT_THRESHOLD`], the engine
//!    compiles a *trace* starting there.
//! 2. **Superblock stitching.** Compilation walks the *predicted* path:
//!    straight-line code is appended, unconditional jumps are followed,
//!    and conditional branches are resolved by the recorded edge profile
//!    (falling back to backward-taken/forward-not-taken static
//!    prediction), so the trace runs *across* taken branches. The walk
//!    stops at indirect jumps, system ops, unpeekable or undecodable
//!    words, a revisited pc (inner loop closed), or [`MAX_TRACE_OPS`].
//! 3. **Guarded side exits.** Every op in the trace carries the pc the
//!    compiler predicted would follow it. Branches execute through the
//!    same precise [`crate::cpu::Cpu`] semantic core as everywhere else
//!    — so a mispredicted branch still *retires* exactly as the seed
//!    interpreter would — and the executor then compares the
//!    architectural `pc` against the prediction: on mismatch it simply
//!    leaves the trace (a [`SideExit::Guard`]) and the precise/block
//!    path continues from the already-correct state. Guards can
//!    therefore never produce wrong architectural state, only shorter
//!    traces.
//! 4. **Bit-identical accounting.** Traces are executed by
//!    [`crate::cpu::Cpu::run_cached_span`]'s caller contract: each
//!    retired instruction is charged one fetch, in bulk, per contiguous
//!    code segment of the trace (see [`CompiledTrace::segments`]), and
//!    loads/stores whose effective address reaches the MMIO floor are
//!    gated through the same [`crate::bus::Bus::mmio_prologue`] /
//!    [`crate::bus::Bus::mmio_epilogue`] protocol as block dispatch.
//!
//! Self-modifying code is handled by the same explicit-invalidation tier
//! as the bulk block path: at compile time the engine widens the
//! [`crate::block::BlockCache`] watch range over every trace segment, so
//! stores into compiled code (and reported external writes) invalidate
//! the whole cached state; the engine's [`TraceEngine::generation`]
//! counter lets an executing trace detect that it was invalidated *by
//! one of its own ops* and side-exit before dispatching a stale decode.

use crate::block::DecodedOp;
use crate::bus::Bus;
use crate::isa::{decode, Instruction};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Block entries at the same pc before a trace is compiled there.
pub const HOT_THRESHOLD: u32 = 8;

/// Hard cap on instructions per compiled trace.
pub const MAX_TRACE_OPS: usize = 192;

/// Default number of direct-mapped trace slots.
pub const DEFAULT_TRACE_SLOTS: usize = 128;

/// Why the executor left a compiled trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SideExit {
    /// A guard failed: a branch retired opposite to the profile's
    /// prediction. Architectural state is already correct; only the
    /// trace's view of "what comes next" was wrong.
    Guard = 0,
    /// The trace ran to its end (last op retired, no loop-back).
    End = 1,
    /// The cycle budget (or the caller's bulk horizon) was reached.
    Budget = 2,
    /// A load/store reached device space and the bus declined to run it
    /// inside the bulk window, or it retired and ended the window.
    Mmio = 3,
    /// An op of the trace invalidated the cache (self-modifying store).
    Invalidated = 4,
}

/// Number of [`SideExit`] variants (length of the exit counter array).
pub const SIDE_EXIT_KINDS: usize = 5;

/// One instruction of a compiled trace: the pre-decoded op, its pc, the
/// pc the compiler predicts follows it, and — for loads/stores — the
/// inline-cached address operands so the executor's MMIO range check is
/// one register read and one compare instead of a full instruction
/// match.
#[derive(Debug, Clone, Copy)]
pub struct TraceOp {
    /// The pre-decoded instruction (word kept for diagnostics).
    pub op: DecodedOp,
    /// Address of this instruction.
    pub pc: u32,
    /// The pc the trace expects after this op retires; a mismatch after
    /// retirement is a [`SideExit::Guard`].
    pub expected_next: u32,
    /// `Some((rs1, offset))` for loads/stores: the effective-address
    /// operands, pre-extracted at compile time.
    pub mem: Option<(u8, i32)>,
}

/// A compiled superblock: the predicted hot path starting at
/// [`CompiledTrace::start`], possibly spanning several basic blocks.
#[derive(Debug, Clone)]
pub struct CompiledTrace {
    /// Address of the first instruction.
    pub start: u32,
    /// The instructions on the predicted path, in execution order.
    pub ops: Vec<TraceOp>,
    /// Maximal runs of address-contiguous ops, in execution order, as
    /// `(first pc, op count)`. Fetch charging walks these so bulk
    /// accounting stays per-region exact even when the trace jumps
    /// between code regions.
    pub segments: Vec<(u32, u32)>,
    /// The last op's predicted successor is [`CompiledTrace::start`]:
    /// the executor may loop in place without re-dispatching.
    pub loops: bool,
}

impl CompiledTrace {
    /// Lowest and highest (exclusive) byte addresses of any op, per
    /// contiguous segment — the ranges the block-cache watch window must
    /// cover for store invalidation to reach this trace.
    pub fn watch_ranges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.segments
            .iter()
            .map(|&(lo, n)| (lo, lo.saturating_add(4 * n)))
    }
}

/// Compiles the predicted hot path starting at `start`. Returns `None`
/// when the path is too short to beat plain block dispatch.
pub fn compile<B: Bus + ?Sized>(
    bus: &B,
    start: u32,
    edges: &HashMap<u32, [u32; 2]>,
) -> Option<CompiledTrace> {
    use Instruction::*;
    let mut ops: Vec<TraceOp> = Vec::new();
    let mut seen: HashSet<u32> = HashSet::new();
    let mut pc = start;
    let mut loops = false;
    while ops.len() < MAX_TRACE_OPS {
        if pc == start && !ops.is_empty() {
            loops = true;
            break;
        }
        if !seen.insert(pc) {
            break; // closed an inner loop not anchored at `start`
        }
        let Some(word) = bus.peek_word(pc) else { break };
        let Ok(inst) = decode(word) else { break };
        let expected_next = match inst {
            // Indirect and system ops end the trace: the block/precise
            // path owns them (jalr targets are data-dependent; ecall /
            // ebreak halt; wfi sleeps; csr side effects are cheap and
            // rare enough not to matter).
            Jalr { .. } | Ecall | Ebreak | Wfi => break,
            Jal { offset, .. } => pc.wrapping_add(offset as u32),
            Beq { offset, .. }
            | Bne { offset, .. }
            | Blt { offset, .. }
            | Bge { offset, .. }
            | Bltu { offset, .. }
            | Bgeu { offset, .. } => {
                let [not_taken, taken] = edges.get(&pc).copied().unwrap_or([0, 0]);
                // Majority vote from the edge profile; cold or tied
                // edges use static backward-taken prediction.
                let predict_taken = if taken == not_taken {
                    offset < 0
                } else {
                    taken > not_taken
                };
                if predict_taken {
                    pc.wrapping_add(offset as u32)
                } else {
                    pc.wrapping_add(4)
                }
            }
            _ => pc.wrapping_add(4),
        };
        let mem = match inst {
            Lb { rs1, offset, .. }
            | Lh { rs1, offset, .. }
            | Lw { rs1, offset, .. }
            | Lbu { rs1, offset, .. }
            | Lhu { rs1, offset, .. }
            | Sb { rs1, offset, .. }
            | Sh { rs1, offset, .. }
            | Sw { rs1, offset, .. } => Some((rs1, offset)),
            _ => None,
        };
        ops.push(TraceOp {
            op: DecodedOp { word, inst },
            pc,
            expected_next,
            mem,
        });
        pc = expected_next;
    }
    // A trace that never crosses a block boundary adds nothing over the
    // block cache; require at least two ops so the loop-back / stitch
    // machinery has something to win.
    if ops.len() < 2 {
        return None;
    }
    let mut segments: Vec<(u32, u32)> = Vec::new();
    for op in &ops {
        match segments.last_mut() {
            Some((seg_lo, n)) if seg_lo.wrapping_add(4 * *n) == op.pc => *n += 1,
            _ => segments.push((op.pc, 1)),
        }
    }
    Some(CompiledTrace {
        start,
        ops,
        segments,
        loops,
    })
}

/// The trace engine: edge profile, entry heat, a direct-mapped cache of
/// compiled traces, and the counters behind the `trace_*` perf surface.
///
/// Entirely microarchitectural: cloned with the CPU, excluded from
/// architectural equality, dropped wholesale on invalidation.
#[derive(Debug, Clone)]
pub struct TraceEngine {
    slots: Vec<Option<Arc<CompiledTrace>>>,
    mask: usize,
    enabled: bool,
    /// Block entries per start pc (cleared on invalidation).
    heat: HashMap<u32, u32>,
    /// Per-branch-pc retire counts: `[not_taken, taken]`.
    edges: HashMap<u32, [u32; 2]>,
    /// Bumped on every invalidation; an executing trace compares it
    /// against its entry value to catch self-invalidation.
    pub generation: u64,
    /// Trace dispatches (entries plus in-place loop-backs).
    pub hits: u64,
    /// Exit counts indexed by [`SideExit`].
    pub exits: [u64; SIDE_EXIT_KINDS],
    /// Traces compiled over the run (recompiles after invalidation
    /// included).
    pub compiled: u64,
    /// Direct-mapped evictions that replaced a *different* trace.
    pub conflict_evictions: u64,
}

impl TraceEngine {
    /// Creates an engine with `slots` direct-mapped trace slots (rounded
    /// up to a power of two, minimum 1).
    pub fn new(slots: usize) -> Self {
        let slots = slots.max(1).next_power_of_two();
        TraceEngine {
            slots: vec![None; slots],
            mask: slots - 1,
            enabled: true,
            heat: HashMap::new(),
            edges: HashMap::new(),
            generation: 0,
            hits: 0,
            exits: [0; SIDE_EXIT_KINDS],
            compiled: 0,
            conflict_evictions: 0,
        }
    }

    /// Whether trace compilation/dispatch is enabled (on by default —
    /// but traces only ever run under bulk dispatch, so disabling the
    /// block cache disables traces too).
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Enables or disables the trace tier; disabling drops all compiled
    /// traces and profile state. With traces off, bulk dispatch runs
    /// pure decoded-block spans — the benchmark A/B lever.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
        if !enabled {
            self.invalidate();
        }
    }

    /// The compiled trace starting at `pc`, if cached.
    #[inline]
    pub fn lookup(&self, pc: u32) -> Option<&Arc<CompiledTrace>> {
        let slot = ((pc >> 2) as usize) & self.mask;
        match &self.slots[slot] {
            Some(t) if t.start == pc => Some(t),
            _ => None,
        }
    }

    /// Counts a block entry at `pc`; `true` exactly when this entry
    /// crosses [`HOT_THRESHOLD`] (compile now). Subsequent entries keep
    /// counting but never re-trigger — a failed compile is not retried
    /// until invalidation clears the heat table.
    #[inline]
    pub fn note_entry(&mut self, pc: u32) -> bool {
        let h = self.heat.entry(pc).or_insert(0);
        *h = h.saturating_add(1);
        *h == HOT_THRESHOLD
    }

    /// Records a conditional-branch retirement at `pc`.
    #[inline]
    pub fn record_edge(&mut self, pc: u32, taken: bool) {
        let e = self.edges.entry(pc).or_insert([0, 0]);
        let c = &mut e[taken as usize];
        *c = c.saturating_add(1);
    }

    /// Read access to the edge profile (for [`compile`]).
    pub fn edges(&self) -> &HashMap<u32, [u32; 2]> {
        &self.edges
    }

    /// Installs a compiled trace, evicting any previous tenant of its
    /// slot, and returns a handle for immediate execution.
    pub fn insert(&mut self, trace: CompiledTrace) -> Arc<CompiledTrace> {
        self.compiled += 1;
        let slot = ((trace.start >> 2) as usize) & self.mask;
        if let Some(old) = &self.slots[slot] {
            if old.start != trace.start {
                self.conflict_evictions += 1;
            }
        }
        let arc = Arc::new(trace);
        self.slots[slot] = Some(Arc::clone(&arc));
        arc
    }

    /// Drops every compiled trace and all profile state, and bumps the
    /// generation so an executing trace notices. Cheap when nothing has
    /// been profiled since the last invalidation.
    pub fn invalidate(&mut self) {
        if self.heat.is_empty() && self.edges.is_empty() {
            return;
        }
        for slot in &mut self.slots {
            *slot = None;
        }
        self.heat.clear();
        self.edges.clear();
        self.generation += 1;
    }

    /// Count of `exit` side exits so far.
    pub fn exit_count(&self, exit: SideExit) -> u64 {
        self.exits[exit as usize]
    }

    /// Total side exits of any kind.
    pub fn total_exits(&self) -> u64 {
        self.exits.iter().sum()
    }
}

impl Default for TraceEngine {
    fn default() -> Self {
        TraceEngine::new(DEFAULT_TRACE_SLOTS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::FlatMemory;
    use crate::isa::encode;
    use Instruction::*;

    fn mem_with(words: &[Instruction]) -> FlatMemory {
        let mut mem = FlatMemory::new(4096);
        let code: Vec<u32> = words.iter().map(|&i| encode(i)).collect();
        mem.load_words(0, &code);
        mem
    }

    #[test]
    fn compile_stitches_across_taken_branch() {
        // 0: addi x1,x0,1 ; 4: bne x1,x0,+8 (taken) ; 12: addi x2,x0,2 ; 16: ecall
        let mem = mem_with(&[
            Addi {
                rd: 1,
                rs1: 0,
                imm: 1,
            },
            Bne {
                rs1: 1,
                rs2: 0,
                offset: 8,
            },
            Addi {
                rd: 9,
                rs1: 0,
                imm: 9,
            },
            Addi {
                rd: 2,
                rs1: 0,
                imm: 2,
            },
            Ecall,
        ]);
        let mut edges = HashMap::new();
        edges.insert(4u32, [0u32, 10u32]); // strongly taken
        let t = compile(&mem, 0, &edges).expect("compiles");
        // addi, bne, addi — stops at ecall; skipped the not-taken slot.
        assert_eq!(t.ops.len(), 3);
        assert_eq!(t.ops[1].expected_next, 12);
        assert_eq!(t.segments, vec![(0, 2), (12, 1)]);
        assert!(!t.loops);
    }

    #[test]
    fn compile_detects_loop_back_to_start() {
        // 0: addi x1,x1,1 ; 4: bne x1,x2,-4 → loops to 0
        let mem = mem_with(&[
            Addi {
                rd: 1,
                rs1: 1,
                imm: 1,
            },
            Bne {
                rs1: 1,
                rs2: 2,
                offset: -4,
            },
        ]);
        let t = compile(&mem, 0, &HashMap::new()).expect("compiles");
        assert!(t.loops, "backward branch closes the loop");
        assert_eq!(t.ops.len(), 2);
        assert_eq!(t.segments, vec![(0, 2)]);
    }

    #[test]
    fn compile_rejects_trivial_and_respects_cap() {
        let mem = mem_with(&[Jalr {
            rd: 0,
            rs1: 1,
            offset: 0,
        }]);
        assert!(compile(&mem, 0, &HashMap::new()).is_none(), "jalr-only");
        let long: Vec<Instruction> = (0..(MAX_TRACE_OPS + 8))
            .map(|k| Addi {
                rd: 1,
                rs1: 0,
                imm: (k % 7) as i32,
            })
            .collect();
        let mem = mem_with(&long);
        let t = compile(&mem, 0, &HashMap::new()).unwrap();
        assert_eq!(t.ops.len(), MAX_TRACE_OPS);
    }

    #[test]
    fn engine_heat_edges_and_invalidation() {
        let mut eng = TraceEngine::new(4);
        for _ in 0..HOT_THRESHOLD - 1 {
            assert!(!eng.note_entry(0x100));
        }
        assert!(eng.note_entry(0x100), "crossing the threshold triggers");
        assert!(!eng.note_entry(0x100), "only once");
        eng.record_edge(0x104, true);
        eng.record_edge(0x104, true);
        eng.record_edge(0x104, false);
        assert_eq!(eng.edges()[&0x104], [1, 2]);
        let gen = eng.generation;
        eng.invalidate();
        assert_eq!(eng.generation, gen + 1);
        assert!(eng.edges().is_empty());
        assert!(!eng.note_entry(0x100), "heat restarts from zero");
        eng.invalidate();
        eng.invalidate();
        assert_eq!(
            eng.generation,
            gen + 2,
            "empty invalidations are free (first clears the re-heated entry)"
        );
    }

    #[test]
    fn engine_insert_lookup_and_conflicts() {
        let mem = mem_with(&[
            Addi {
                rd: 1,
                rs1: 1,
                imm: 1,
            },
            Bne {
                rs1: 1,
                rs2: 2,
                offset: -4,
            },
        ]);
        let t = compile(&mem, 0, &HashMap::new()).unwrap();
        let mut eng = TraceEngine::new(4);
        eng.note_entry(0); // non-empty profile so invalidate() is not a no-op
        eng.insert(t.clone());
        assert_eq!(eng.lookup(0).unwrap().start, 0);
        assert!(eng.lookup(4).is_none());
        // Same slot, different start: conflict eviction.
        let colliding = CompiledTrace {
            start: 4 * 4, // slots=4 → (pc>>2)&3 collides with 0
            ..t.clone()
        };
        eng.insert(colliding);
        assert_eq!(eng.conflict_evictions, 1);
        assert!(eng.lookup(0).is_none(), "evicted");
        eng.invalidate();
        assert!(eng.lookup(16).is_none());
    }
}

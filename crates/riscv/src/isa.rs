//! RV32IM instruction decoding.
//!
//! Covers the RV32I base integer ISA (minus `FENCE.I`) plus the M
//! extension (multiply/divide) and the `CSRRx` Zicsr instructions needed
//! for cycle counters — everything the accelerator-offload firmware in
//! `neuropulsim-sim` requires.

use std::fmt;

/// A register index (x0–x31).
pub type Reg = u8;

/// A decoded RV32IM instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // variants mirror the ISA mnemonic directly
pub enum Instruction {
    Lui {
        rd: Reg,
        imm: i32,
    },
    Auipc {
        rd: Reg,
        imm: i32,
    },
    Jal {
        rd: Reg,
        offset: i32,
    },
    Jalr {
        rd: Reg,
        rs1: Reg,
        offset: i32,
    },
    Beq {
        rs1: Reg,
        rs2: Reg,
        offset: i32,
    },
    Bne {
        rs1: Reg,
        rs2: Reg,
        offset: i32,
    },
    Blt {
        rs1: Reg,
        rs2: Reg,
        offset: i32,
    },
    Bge {
        rs1: Reg,
        rs2: Reg,
        offset: i32,
    },
    Bltu {
        rs1: Reg,
        rs2: Reg,
        offset: i32,
    },
    Bgeu {
        rs1: Reg,
        rs2: Reg,
        offset: i32,
    },
    Lb {
        rd: Reg,
        rs1: Reg,
        offset: i32,
    },
    Lh {
        rd: Reg,
        rs1: Reg,
        offset: i32,
    },
    Lw {
        rd: Reg,
        rs1: Reg,
        offset: i32,
    },
    Lbu {
        rd: Reg,
        rs1: Reg,
        offset: i32,
    },
    Lhu {
        rd: Reg,
        rs1: Reg,
        offset: i32,
    },
    Sb {
        rs1: Reg,
        rs2: Reg,
        offset: i32,
    },
    Sh {
        rs1: Reg,
        rs2: Reg,
        offset: i32,
    },
    Sw {
        rs1: Reg,
        rs2: Reg,
        offset: i32,
    },
    Addi {
        rd: Reg,
        rs1: Reg,
        imm: i32,
    },
    Slti {
        rd: Reg,
        rs1: Reg,
        imm: i32,
    },
    Sltiu {
        rd: Reg,
        rs1: Reg,
        imm: i32,
    },
    Xori {
        rd: Reg,
        rs1: Reg,
        imm: i32,
    },
    Ori {
        rd: Reg,
        rs1: Reg,
        imm: i32,
    },
    Andi {
        rd: Reg,
        rs1: Reg,
        imm: i32,
    },
    Slli {
        rd: Reg,
        rs1: Reg,
        shamt: u8,
    },
    Srli {
        rd: Reg,
        rs1: Reg,
        shamt: u8,
    },
    Srai {
        rd: Reg,
        rs1: Reg,
        shamt: u8,
    },
    Add {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    Sub {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    Sll {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    Slt {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    Sltu {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    Xor {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    Srl {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    Sra {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    Or {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    And {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    Mul {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    Mulh {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    Mulhsu {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    Mulhu {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    Div {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    Divu {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    Rem {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    Remu {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    Fence,
    Ecall,
    Ebreak,
    Csrrw {
        rd: Reg,
        rs1: Reg,
        csr: u16,
    },
    Csrrs {
        rd: Reg,
        rs1: Reg,
        csr: u16,
    },
    Csrrc {
        rd: Reg,
        rs1: Reg,
        csr: u16,
    },
    /// Wait-for-interrupt: the host-polling idle instruction.
    Wfi,
}

/// Error returned when a word does not decode to a supported instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// The raw instruction word.
    pub word: u32,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unsupported instruction word {:#010x}", self.word)
    }
}

impl std::error::Error for DecodeError {}

#[inline]
fn bits(word: u32, lo: u32, hi: u32) -> u32 {
    (word >> lo) & ((1 << (hi - lo + 1)) - 1)
}

fn imm_i(word: u32) -> i32 {
    (word as i32) >> 20
}

fn imm_s(word: u32) -> i32 {
    (((word & 0xfe00_0000) as i32) >> 20) | (bits(word, 7, 11) as i32)
}

fn imm_b(word: u32) -> i32 {
    (((word & 0x8000_0000) as i32) >> 19)
        | ((bits(word, 7, 7) as i32) << 11)
        | ((bits(word, 25, 30) as i32) << 5)
        | ((bits(word, 8, 11) as i32) << 1)
}

fn imm_u(word: u32) -> i32 {
    (word & 0xffff_f000) as i32
}

fn imm_j(word: u32) -> i32 {
    (((word & 0x8000_0000) as i32) >> 11)
        | ((bits(word, 12, 19) as i32) << 12)
        | ((bits(word, 20, 20) as i32) << 11)
        | ((bits(word, 21, 30) as i32) << 1)
}

/// Decodes one 32-bit instruction word.
///
/// # Errors
///
/// Returns [`DecodeError`] for unsupported or malformed encodings.
pub fn decode(word: u32) -> Result<Instruction, DecodeError> {
    use Instruction::*;
    let opcode = bits(word, 0, 6);
    let rd = bits(word, 7, 11) as Reg;
    let funct3 = bits(word, 12, 14);
    let rs1 = bits(word, 15, 19) as Reg;
    let rs2 = bits(word, 20, 24) as Reg;
    let funct7 = bits(word, 25, 31);
    let err = Err(DecodeError { word });

    let inst = match opcode {
        0b0110111 => Lui {
            rd,
            imm: imm_u(word),
        },
        0b0010111 => Auipc {
            rd,
            imm: imm_u(word),
        },
        0b1101111 => Jal {
            rd,
            offset: imm_j(word),
        },
        0b1100111 if funct3 == 0 => Jalr {
            rd,
            rs1,
            offset: imm_i(word),
        },
        0b1100011 => {
            let offset = imm_b(word);
            match funct3 {
                0b000 => Beq { rs1, rs2, offset },
                0b001 => Bne { rs1, rs2, offset },
                0b100 => Blt { rs1, rs2, offset },
                0b101 => Bge { rs1, rs2, offset },
                0b110 => Bltu { rs1, rs2, offset },
                0b111 => Bgeu { rs1, rs2, offset },
                _ => return err,
            }
        }
        0b0000011 => {
            let offset = imm_i(word);
            match funct3 {
                0b000 => Lb { rd, rs1, offset },
                0b001 => Lh { rd, rs1, offset },
                0b010 => Lw { rd, rs1, offset },
                0b100 => Lbu { rd, rs1, offset },
                0b101 => Lhu { rd, rs1, offset },
                _ => return err,
            }
        }
        0b0100011 => {
            let offset = imm_s(word);
            match funct3 {
                0b000 => Sb { rs1, rs2, offset },
                0b001 => Sh { rs1, rs2, offset },
                0b010 => Sw { rs1, rs2, offset },
                _ => return err,
            }
        }
        0b0010011 => {
            let imm = imm_i(word);
            let shamt = rs2;
            match funct3 {
                0b000 => Addi { rd, rs1, imm },
                0b010 => Slti { rd, rs1, imm },
                0b011 => Sltiu { rd, rs1, imm },
                0b100 => Xori { rd, rs1, imm },
                0b110 => Ori { rd, rs1, imm },
                0b111 => Andi { rd, rs1, imm },
                0b001 if funct7 == 0 => Slli { rd, rs1, shamt },
                0b101 if funct7 == 0 => Srli { rd, rs1, shamt },
                0b101 if funct7 == 0b0100000 => Srai { rd, rs1, shamt },
                _ => return err,
            }
        }
        0b0110011 => match (funct7, funct3) {
            (0b0000000, 0b000) => Add { rd, rs1, rs2 },
            (0b0100000, 0b000) => Sub { rd, rs1, rs2 },
            (0b0000000, 0b001) => Sll { rd, rs1, rs2 },
            (0b0000000, 0b010) => Slt { rd, rs1, rs2 },
            (0b0000000, 0b011) => Sltu { rd, rs1, rs2 },
            (0b0000000, 0b100) => Xor { rd, rs1, rs2 },
            (0b0000000, 0b101) => Srl { rd, rs1, rs2 },
            (0b0100000, 0b101) => Sra { rd, rs1, rs2 },
            (0b0000000, 0b110) => Or { rd, rs1, rs2 },
            (0b0000000, 0b111) => And { rd, rs1, rs2 },
            (0b0000001, 0b000) => Mul { rd, rs1, rs2 },
            (0b0000001, 0b001) => Mulh { rd, rs1, rs2 },
            (0b0000001, 0b010) => Mulhsu { rd, rs1, rs2 },
            (0b0000001, 0b011) => Mulhu { rd, rs1, rs2 },
            (0b0000001, 0b100) => Div { rd, rs1, rs2 },
            (0b0000001, 0b101) => Divu { rd, rs1, rs2 },
            (0b0000001, 0b110) => Rem { rd, rs1, rs2 },
            (0b0000001, 0b111) => Remu { rd, rs1, rs2 },
            _ => return err,
        },
        0b0001111 => Fence,
        0b1110011 => {
            let csr = bits(word, 20, 31) as u16;
            match funct3 {
                0b000 => match word {
                    0x0000_0073 => Ecall,
                    0x0010_0073 => Ebreak,
                    0x1050_0073 => Wfi,
                    _ => return err,
                },
                0b001 => Csrrw { rd, rs1, csr },
                0b010 => Csrrs { rd, rs1, csr },
                0b011 => Csrrc { rd, rs1, csr },
                _ => return err,
            }
        }
        _ => return err,
    };
    Ok(inst)
}

/// Encodes an instruction back to its 32-bit word (the assembler's
/// back-end). Inverse of [`decode`] for every supported instruction.
pub fn encode(inst: Instruction) -> u32 {
    use Instruction::*;
    let r = |opcode: u32, rd: Reg, f3: u32, rs1: Reg, rs2: Reg, f7: u32| {
        opcode
            | ((rd as u32) << 7)
            | (f3 << 12)
            | ((rs1 as u32) << 15)
            | ((rs2 as u32) << 20)
            | (f7 << 25)
    };
    let i = |opcode: u32, rd: Reg, f3: u32, rs1: Reg, imm: i32| {
        opcode
            | ((rd as u32) << 7)
            | (f3 << 12)
            | ((rs1 as u32) << 15)
            | (((imm as u32) & 0xfff) << 20)
    };
    let s = |opcode: u32, f3: u32, rs1: Reg, rs2: Reg, imm: i32| {
        let imm = imm as u32;
        opcode
            | ((imm & 0x1f) << 7)
            | (f3 << 12)
            | ((rs1 as u32) << 15)
            | ((rs2 as u32) << 20)
            | (((imm >> 5) & 0x7f) << 25)
    };
    let b = |opcode: u32, f3: u32, rs1: Reg, rs2: Reg, imm: i32| {
        let imm = imm as u32;
        opcode
            | (((imm >> 11) & 1) << 7)
            | (((imm >> 1) & 0xf) << 8)
            | (f3 << 12)
            | ((rs1 as u32) << 15)
            | ((rs2 as u32) << 20)
            | (((imm >> 5) & 0x3f) << 25)
            | (((imm >> 12) & 1) << 31)
    };
    let u =
        |opcode: u32, rd: Reg, imm: i32| opcode | ((rd as u32) << 7) | ((imm as u32) & 0xffff_f000);
    let j = |opcode: u32, rd: Reg, imm: i32| {
        let imm = imm as u32;
        opcode
            | ((rd as u32) << 7)
            | (((imm >> 12) & 0xff) << 12)
            | (((imm >> 11) & 1) << 20)
            | (((imm >> 1) & 0x3ff) << 21)
            | (((imm >> 20) & 1) << 31)
    };

    match inst {
        Lui { rd, imm } => u(0b0110111, rd, imm),
        Auipc { rd, imm } => u(0b0010111, rd, imm),
        Jal { rd, offset } => j(0b1101111, rd, offset),
        Jalr { rd, rs1, offset } => i(0b1100111, rd, 0, rs1, offset),
        Beq { rs1, rs2, offset } => b(0b1100011, 0b000, rs1, rs2, offset),
        Bne { rs1, rs2, offset } => b(0b1100011, 0b001, rs1, rs2, offset),
        Blt { rs1, rs2, offset } => b(0b1100011, 0b100, rs1, rs2, offset),
        Bge { rs1, rs2, offset } => b(0b1100011, 0b101, rs1, rs2, offset),
        Bltu { rs1, rs2, offset } => b(0b1100011, 0b110, rs1, rs2, offset),
        Bgeu { rs1, rs2, offset } => b(0b1100011, 0b111, rs1, rs2, offset),
        Lb { rd, rs1, offset } => i(0b0000011, rd, 0b000, rs1, offset),
        Lh { rd, rs1, offset } => i(0b0000011, rd, 0b001, rs1, offset),
        Lw { rd, rs1, offset } => i(0b0000011, rd, 0b010, rs1, offset),
        Lbu { rd, rs1, offset } => i(0b0000011, rd, 0b100, rs1, offset),
        Lhu { rd, rs1, offset } => i(0b0000011, rd, 0b101, rs1, offset),
        Sb { rs1, rs2, offset } => s(0b0100011, 0b000, rs1, rs2, offset),
        Sh { rs1, rs2, offset } => s(0b0100011, 0b001, rs1, rs2, offset),
        Sw { rs1, rs2, offset } => s(0b0100011, 0b010, rs1, rs2, offset),
        Addi { rd, rs1, imm } => i(0b0010011, rd, 0b000, rs1, imm),
        Slti { rd, rs1, imm } => i(0b0010011, rd, 0b010, rs1, imm),
        Sltiu { rd, rs1, imm } => i(0b0010011, rd, 0b011, rs1, imm),
        Xori { rd, rs1, imm } => i(0b0010011, rd, 0b100, rs1, imm),
        Ori { rd, rs1, imm } => i(0b0010011, rd, 0b110, rs1, imm),
        Andi { rd, rs1, imm } => i(0b0010011, rd, 0b111, rs1, imm),
        Slli { rd, rs1, shamt } => r(0b0010011, rd, 0b001, rs1, shamt, 0),
        Srli { rd, rs1, shamt } => r(0b0010011, rd, 0b101, rs1, shamt, 0),
        Srai { rd, rs1, shamt } => r(0b0010011, rd, 0b101, rs1, shamt, 0b0100000),
        Add { rd, rs1, rs2 } => r(0b0110011, rd, 0b000, rs1, rs2, 0),
        Sub { rd, rs1, rs2 } => r(0b0110011, rd, 0b000, rs1, rs2, 0b0100000),
        Sll { rd, rs1, rs2 } => r(0b0110011, rd, 0b001, rs1, rs2, 0),
        Slt { rd, rs1, rs2 } => r(0b0110011, rd, 0b010, rs1, rs2, 0),
        Sltu { rd, rs1, rs2 } => r(0b0110011, rd, 0b011, rs1, rs2, 0),
        Xor { rd, rs1, rs2 } => r(0b0110011, rd, 0b100, rs1, rs2, 0),
        Srl { rd, rs1, rs2 } => r(0b0110011, rd, 0b101, rs1, rs2, 0),
        Sra { rd, rs1, rs2 } => r(0b0110011, rd, 0b101, rs1, rs2, 0b0100000),
        Or { rd, rs1, rs2 } => r(0b0110011, rd, 0b110, rs1, rs2, 0),
        And { rd, rs1, rs2 } => r(0b0110011, rd, 0b111, rs1, rs2, 0),
        Mul { rd, rs1, rs2 } => r(0b0110011, rd, 0b000, rs1, rs2, 1),
        Mulh { rd, rs1, rs2 } => r(0b0110011, rd, 0b001, rs1, rs2, 1),
        Mulhsu { rd, rs1, rs2 } => r(0b0110011, rd, 0b010, rs1, rs2, 1),
        Mulhu { rd, rs1, rs2 } => r(0b0110011, rd, 0b011, rs1, rs2, 1),
        Div { rd, rs1, rs2 } => r(0b0110011, rd, 0b100, rs1, rs2, 1),
        Divu { rd, rs1, rs2 } => r(0b0110011, rd, 0b101, rs1, rs2, 1),
        Rem { rd, rs1, rs2 } => r(0b0110011, rd, 0b110, rs1, rs2, 1),
        Remu { rd, rs1, rs2 } => r(0b0110011, rd, 0b111, rs1, rs2, 1),
        Fence => 0x0000_000f,
        Ecall => 0x0000_0073,
        Ebreak => 0x0010_0073,
        Wfi => 0x1050_0073,
        Csrrw { rd, rs1, csr } => i(0b1110011, rd, 0b001, rs1, csr as i32),
        Csrrs { rd, rs1, csr } => i(0b1110011, rd, 0b010, rs1, csr as i32),
        Csrrc { rd, rs1, csr } => i(0b1110011, rd, 0b011, rs1, csr as i32),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Instruction::*;

    #[test]
    fn decode_reference_words() {
        // Hand-assembled reference encodings.
        assert_eq!(
            decode(0x00000013).unwrap(),
            Addi {
                rd: 0,
                rs1: 0,
                imm: 0
            }
        ); // nop
        assert_eq!(
            decode(0x02A00093).unwrap(),
            Addi {
                rd: 1,
                rs1: 0,
                imm: 42
            }
        );
        assert_eq!(
            decode(0x00208133).unwrap(),
            Add {
                rd: 2,
                rs1: 1,
                rs2: 2
            }
        );
        assert_eq!(decode(0x00000073).unwrap(), Ecall);
        assert_eq!(decode(0x00100073).unwrap(), Ebreak);
        assert_eq!(
            decode(0xFFF00093).unwrap(),
            Addi {
                rd: 1,
                rs1: 0,
                imm: -1
            }
        );
    }

    #[test]
    fn decode_branch_offsets() {
        // beq x1, x2, +8  => 0x00208463
        match decode(0x00208463).unwrap() {
            Beq {
                rs1: 1,
                rs2: 2,
                offset: 8,
            } => {}
            other => panic!("got {other:?}"),
        }
        // jal x1, -4
        match decode(encode(Jal { rd: 1, offset: -4 })).unwrap() {
            Jal { rd: 1, offset: -4 } => {}
            other => panic!("got {other:?}"),
        }
    }

    #[test]
    fn encode_decode_roundtrip_exhaustive_variants() {
        let cases = vec![
            Lui {
                rd: 5,
                imm: 0x12345 << 12,
            },
            Auipc { rd: 6, imm: -4096 },
            Jal {
                rd: 1,
                offset: 2044,
            },
            Jalr {
                rd: 1,
                rs1: 2,
                offset: -8,
            },
            Beq {
                rs1: 1,
                rs2: 2,
                offset: -16,
            },
            Bne {
                rs1: 3,
                rs2: 4,
                offset: 32,
            },
            Blt {
                rs1: 5,
                rs2: 6,
                offset: 64,
            },
            Bge {
                rs1: 7,
                rs2: 8,
                offset: -64,
            },
            Bltu {
                rs1: 9,
                rs2: 10,
                offset: 128,
            },
            Bgeu {
                rs1: 11,
                rs2: 12,
                offset: -128,
            },
            Lb {
                rd: 1,
                rs1: 2,
                offset: -1,
            },
            Lh {
                rd: 3,
                rs1: 4,
                offset: 2,
            },
            Lw {
                rd: 5,
                rs1: 6,
                offset: 100,
            },
            Lbu {
                rd: 7,
                rs1: 8,
                offset: 0,
            },
            Lhu {
                rd: 9,
                rs1: 10,
                offset: 6,
            },
            Sb {
                rs1: 1,
                rs2: 2,
                offset: -3,
            },
            Sh {
                rs1: 3,
                rs2: 4,
                offset: 10,
            },
            Sw {
                rs1: 5,
                rs2: 6,
                offset: 2047,
            },
            Addi {
                rd: 1,
                rs1: 2,
                imm: -2048,
            },
            Slti {
                rd: 3,
                rs1: 4,
                imm: 7,
            },
            Sltiu {
                rd: 5,
                rs1: 6,
                imm: 9,
            },
            Xori {
                rd: 7,
                rs1: 8,
                imm: -1,
            },
            Ori {
                rd: 9,
                rs1: 10,
                imm: 0x7f,
            },
            Andi {
                rd: 11,
                rs1: 12,
                imm: 0xf,
            },
            Slli {
                rd: 1,
                rs1: 2,
                shamt: 31,
            },
            Srli {
                rd: 3,
                rs1: 4,
                shamt: 1,
            },
            Srai {
                rd: 5,
                rs1: 6,
                shamt: 16,
            },
            Add {
                rd: 1,
                rs1: 2,
                rs2: 3,
            },
            Sub {
                rd: 4,
                rs1: 5,
                rs2: 6,
            },
            Sll {
                rd: 7,
                rs1: 8,
                rs2: 9,
            },
            Slt {
                rd: 10,
                rs1: 11,
                rs2: 12,
            },
            Sltu {
                rd: 13,
                rs1: 14,
                rs2: 15,
            },
            Xor {
                rd: 16,
                rs1: 17,
                rs2: 18,
            },
            Srl {
                rd: 19,
                rs1: 20,
                rs2: 21,
            },
            Sra {
                rd: 22,
                rs1: 23,
                rs2: 24,
            },
            Or {
                rd: 25,
                rs1: 26,
                rs2: 27,
            },
            And {
                rd: 28,
                rs1: 29,
                rs2: 30,
            },
            Mul {
                rd: 1,
                rs1: 2,
                rs2: 3,
            },
            Mulh {
                rd: 4,
                rs1: 5,
                rs2: 6,
            },
            Mulhsu {
                rd: 7,
                rs1: 8,
                rs2: 9,
            },
            Mulhu {
                rd: 10,
                rs1: 11,
                rs2: 12,
            },
            Div {
                rd: 13,
                rs1: 14,
                rs2: 15,
            },
            Divu {
                rd: 16,
                rs1: 17,
                rs2: 18,
            },
            Rem {
                rd: 19,
                rs1: 20,
                rs2: 21,
            },
            Remu {
                rd: 22,
                rs1: 23,
                rs2: 24,
            },
            Fence,
            Ecall,
            Ebreak,
            Wfi,
            Csrrw {
                rd: 1,
                rs1: 2,
                csr: 0xC00,
            },
            Csrrs {
                rd: 3,
                rs1: 0,
                csr: 0xC80,
            },
            Csrrc {
                rd: 4,
                rs1: 5,
                csr: 0x300,
            },
        ];
        for inst in cases {
            let word = encode(inst);
            let back = decode(word).unwrap_or_else(|e| panic!("{inst:?}: {e}"));
            assert_eq!(back, inst, "word {word:#010x}");
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode(0xFFFF_FFFF).is_err());
        assert!(decode(0x0000_0000).is_err());
        let e = decode(0).unwrap_err();
        assert!(e.to_string().contains("0x00000000"));
    }

    #[test]
    fn immediate_sign_extension() {
        // lw x1, -4(x2)
        let w = encode(Lw {
            rd: 1,
            rs1: 2,
            offset: -4,
        });
        match decode(w).unwrap() {
            Lw { offset: -4, .. } => {}
            other => panic!("{other:?}"),
        }
        // Branch with the most negative 13-bit offset.
        let w = encode(Beq {
            rs1: 0,
            rs2: 0,
            offset: -4096,
        });
        match decode(w).unwrap() {
            Beq { offset: -4096, .. } => {}
            other => panic!("{other:?}"),
        }
    }

    mod properties {
        use super::*;
        use crate::disasm::disassemble;
        use proptest::prelude::*;

        proptest! {
            /// `decode(encode(i)) == i` over every variant, with each
            /// field drawn from its full canonical encodable domain, and
            /// disasm renders the result without panicking.
            #[test]
            fn decode_encode_roundtrip_all_variants(
                rd in 0u8..32,
                rs1 in 0u8..32,
                rs2 in 0u8..32,
                imm_i in -2048i32..2048,
                b_half in -2048i32..2048,
                j_half in -524_288i32..524_288,
                u_page in 0u32..1_048_576,
                shamt in 0u8..32,
                csr in 0u16..4096,
            ) {
                let b_off = b_half * 2; // 13-bit signed, even
                let j_off = j_half * 2; // 21-bit signed, even
                let u_imm = (u_page << 12) as i32; // low 12 bits zero
                let all = [
                    Lui { rd, imm: u_imm },
                    Auipc { rd, imm: u_imm },
                    Jal { rd, offset: j_off },
                    Jalr { rd, rs1, offset: imm_i },
                    Beq { rs1, rs2, offset: b_off },
                    Bne { rs1, rs2, offset: b_off },
                    Blt { rs1, rs2, offset: b_off },
                    Bge { rs1, rs2, offset: b_off },
                    Bltu { rs1, rs2, offset: b_off },
                    Bgeu { rs1, rs2, offset: b_off },
                    Lb { rd, rs1, offset: imm_i },
                    Lh { rd, rs1, offset: imm_i },
                    Lw { rd, rs1, offset: imm_i },
                    Lbu { rd, rs1, offset: imm_i },
                    Lhu { rd, rs1, offset: imm_i },
                    Sb { rs1, rs2, offset: imm_i },
                    Sh { rs1, rs2, offset: imm_i },
                    Sw { rs1, rs2, offset: imm_i },
                    Addi { rd, rs1, imm: imm_i },
                    Slti { rd, rs1, imm: imm_i },
                    Sltiu { rd, rs1, imm: imm_i },
                    Xori { rd, rs1, imm: imm_i },
                    Ori { rd, rs1, imm: imm_i },
                    Andi { rd, rs1, imm: imm_i },
                    Slli { rd, rs1, shamt },
                    Srli { rd, rs1, shamt },
                    Srai { rd, rs1, shamt },
                    Add { rd, rs1, rs2 },
                    Sub { rd, rs1, rs2 },
                    Sll { rd, rs1, rs2 },
                    Slt { rd, rs1, rs2 },
                    Sltu { rd, rs1, rs2 },
                    Xor { rd, rs1, rs2 },
                    Srl { rd, rs1, rs2 },
                    Sra { rd, rs1, rs2 },
                    Or { rd, rs1, rs2 },
                    And { rd, rs1, rs2 },
                    Mul { rd, rs1, rs2 },
                    Mulh { rd, rs1, rs2 },
                    Mulhsu { rd, rs1, rs2 },
                    Mulhu { rd, rs1, rs2 },
                    Div { rd, rs1, rs2 },
                    Divu { rd, rs1, rs2 },
                    Rem { rd, rs1, rs2 },
                    Remu { rd, rs1, rs2 },
                    Fence,
                    Ecall,
                    Ebreak,
                    Wfi,
                    Csrrw { rd, rs1, csr },
                    Csrrs { rd, rs1, csr },
                    Csrrc { rd, rs1, csr },
                ];
                let mut words = Vec::with_capacity(all.len());
                for &inst in &all {
                    let word = encode(inst);
                    prop_assert_eq!(
                        decode(word).expect("encoded word decodes"),
                        inst,
                        "word {word:#010x}"
                    );
                    words.push(word);
                }
                let listing = disassemble(&words, 0);
                prop_assert_eq!(listing.len(), words.len());
            }

            /// decode rejects-or-accepts but never panics, and disasm is
            /// total, over arbitrary 32-bit words.
            #[test]
            fn decode_and_disasm_are_total(word in 0u32..u32::MAX) {
                let _ = decode(word);
                let listing = disassemble(&[word, !word, word ^ 0x0000_0073], 0x1000);
                prop_assert_eq!(listing.len(), 3);
            }
        }
    }
}

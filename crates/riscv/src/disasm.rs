//! Disassembly: render decoded instructions back to assembler syntax.
//!
//! Useful for tracing firmware execution in the system simulator and for
//! debugging the assembler itself — `assemble` followed by `disassemble`
//! round-trips modulo label names.

use crate::isa::{decode, Instruction};
use std::fmt;

/// ABI register names indexed by register number.
pub const ABI_NAMES: [&str; 32] = [
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1", "a2", "a3", "a4",
    "a5", "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11", "t3", "t4",
    "t5", "t6",
];

fn r(reg: u8) -> &'static str {
    ABI_NAMES[(reg & 31) as usize]
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Instruction::*;
        match *self {
            Lui { rd, imm } => write!(f, "lui {}, {:#x}", r(rd), (imm as u32) >> 12),
            Auipc { rd, imm } => write!(f, "auipc {}, {:#x}", r(rd), (imm as u32) >> 12),
            Jal { rd, offset } => write!(f, "jal {}, {offset}", r(rd)),
            Jalr { rd, rs1, offset } => write!(f, "jalr {}, {offset}({})", r(rd), r(rs1)),
            Beq { rs1, rs2, offset } => write!(f, "beq {}, {}, {offset}", r(rs1), r(rs2)),
            Bne { rs1, rs2, offset } => write!(f, "bne {}, {}, {offset}", r(rs1), r(rs2)),
            Blt { rs1, rs2, offset } => write!(f, "blt {}, {}, {offset}", r(rs1), r(rs2)),
            Bge { rs1, rs2, offset } => write!(f, "bge {}, {}, {offset}", r(rs1), r(rs2)),
            Bltu { rs1, rs2, offset } => write!(f, "bltu {}, {}, {offset}", r(rs1), r(rs2)),
            Bgeu { rs1, rs2, offset } => write!(f, "bgeu {}, {}, {offset}", r(rs1), r(rs2)),
            Lb { rd, rs1, offset } => write!(f, "lb {}, {offset}({})", r(rd), r(rs1)),
            Lh { rd, rs1, offset } => write!(f, "lh {}, {offset}({})", r(rd), r(rs1)),
            Lw { rd, rs1, offset } => write!(f, "lw {}, {offset}({})", r(rd), r(rs1)),
            Lbu { rd, rs1, offset } => write!(f, "lbu {}, {offset}({})", r(rd), r(rs1)),
            Lhu { rd, rs1, offset } => write!(f, "lhu {}, {offset}({})", r(rd), r(rs1)),
            Sb { rs1, rs2, offset } => write!(f, "sb {}, {offset}({})", r(rs2), r(rs1)),
            Sh { rs1, rs2, offset } => write!(f, "sh {}, {offset}({})", r(rs2), r(rs1)),
            Sw { rs1, rs2, offset } => write!(f, "sw {}, {offset}({})", r(rs2), r(rs1)),
            Addi { rd, rs1, imm } => write!(f, "addi {}, {}, {imm}", r(rd), r(rs1)),
            Slti { rd, rs1, imm } => write!(f, "slti {}, {}, {imm}", r(rd), r(rs1)),
            Sltiu { rd, rs1, imm } => write!(f, "sltiu {}, {}, {imm}", r(rd), r(rs1)),
            Xori { rd, rs1, imm } => write!(f, "xori {}, {}, {imm}", r(rd), r(rs1)),
            Ori { rd, rs1, imm } => write!(f, "ori {}, {}, {imm}", r(rd), r(rs1)),
            Andi { rd, rs1, imm } => write!(f, "andi {}, {}, {imm}", r(rd), r(rs1)),
            Slli { rd, rs1, shamt } => write!(f, "slli {}, {}, {shamt}", r(rd), r(rs1)),
            Srli { rd, rs1, shamt } => write!(f, "srli {}, {}, {shamt}", r(rd), r(rs1)),
            Srai { rd, rs1, shamt } => write!(f, "srai {}, {}, {shamt}", r(rd), r(rs1)),
            Add { rd, rs1, rs2 } => write!(f, "add {}, {}, {}", r(rd), r(rs1), r(rs2)),
            Sub { rd, rs1, rs2 } => write!(f, "sub {}, {}, {}", r(rd), r(rs1), r(rs2)),
            Sll { rd, rs1, rs2 } => write!(f, "sll {}, {}, {}", r(rd), r(rs1), r(rs2)),
            Slt { rd, rs1, rs2 } => write!(f, "slt {}, {}, {}", r(rd), r(rs1), r(rs2)),
            Sltu { rd, rs1, rs2 } => write!(f, "sltu {}, {}, {}", r(rd), r(rs1), r(rs2)),
            Xor { rd, rs1, rs2 } => write!(f, "xor {}, {}, {}", r(rd), r(rs1), r(rs2)),
            Srl { rd, rs1, rs2 } => write!(f, "srl {}, {}, {}", r(rd), r(rs1), r(rs2)),
            Sra { rd, rs1, rs2 } => write!(f, "sra {}, {}, {}", r(rd), r(rs1), r(rs2)),
            Or { rd, rs1, rs2 } => write!(f, "or {}, {}, {}", r(rd), r(rs1), r(rs2)),
            And { rd, rs1, rs2 } => write!(f, "and {}, {}, {}", r(rd), r(rs1), r(rs2)),
            Mul { rd, rs1, rs2 } => write!(f, "mul {}, {}, {}", r(rd), r(rs1), r(rs2)),
            Mulh { rd, rs1, rs2 } => write!(f, "mulh {}, {}, {}", r(rd), r(rs1), r(rs2)),
            Mulhsu { rd, rs1, rs2 } => write!(f, "mulhsu {}, {}, {}", r(rd), r(rs1), r(rs2)),
            Mulhu { rd, rs1, rs2 } => write!(f, "mulhu {}, {}, {}", r(rd), r(rs1), r(rs2)),
            Div { rd, rs1, rs2 } => write!(f, "div {}, {}, {}", r(rd), r(rs1), r(rs2)),
            Divu { rd, rs1, rs2 } => write!(f, "divu {}, {}, {}", r(rd), r(rs1), r(rs2)),
            Rem { rd, rs1, rs2 } => write!(f, "rem {}, {}, {}", r(rd), r(rs1), r(rs2)),
            Remu { rd, rs1, rs2 } => write!(f, "remu {}, {}, {}", r(rd), r(rs1), r(rs2)),
            Fence => write!(f, "fence"),
            Ecall => write!(f, "ecall"),
            Ebreak => write!(f, "ebreak"),
            Wfi => write!(f, "wfi"),
            Csrrw { rd, rs1, csr } => write!(f, "csrrw {}, {csr:#x}, {}", r(rd), r(rs1)),
            Csrrs { rd, rs1, csr } => write!(f, "csrrs {}, {csr:#x}, {}", r(rd), r(rs1)),
            Csrrc { rd, rs1, csr } => write!(f, "csrrc {}, {csr:#x}, {}", r(rd), r(rs1)),
        }
    }
}

/// Disassembles a block of instruction words into `addr: text` lines;
/// undecodable words render as `.word 0x...`.
pub fn disassemble(words: &[u32], base: u32) -> Vec<String> {
    words
        .iter()
        .enumerate()
        .map(|(k, &w)| {
            let addr = base + 4 * k as u32;
            match decode(w) {
                Ok(inst) => format!("{addr:#010x}: {inst}"),
                Err(_) => format!("{addr:#010x}: .word {w:#010x}"),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    #[test]
    fn renders_common_instructions() {
        use Instruction::*;
        assert_eq!(
            Add {
                rd: 10,
                rs1: 2,
                rs2: 1
            }
            .to_string(),
            "add a0, sp, ra"
        );
        assert_eq!(
            Lw {
                rd: 5,
                rs1: 8,
                offset: -4
            }
            .to_string(),
            "lw t0, -4(s0)"
        );
        assert_eq!(
            Sw {
                rs1: 2,
                rs2: 10,
                offset: 8
            }
            .to_string(),
            "sw a0, 8(sp)"
        );
        assert_eq!(Ecall.to_string(), "ecall");
        assert_eq!(
            Beq {
                rs1: 0,
                rs2: 0,
                offset: -8
            }
            .to_string(),
            "beq zero, zero, -8"
        );
    }

    #[test]
    fn assemble_disassemble_roundtrip() {
        let source = "
            addi a0, zero, 42
            add  a1, a0, a0
            sw   a1, 16(sp)
            lw   a2, 16(sp)
            ecall
        ";
        let words = assemble(source).expect("assembles");
        let lines = disassemble(&words, 0);
        assert_eq!(lines.len(), 5);
        assert!(lines[0].ends_with("addi a0, zero, 42"), "{}", lines[0]);
        assert!(lines[1].ends_with("add a1, a0, a0"), "{}", lines[1]);
        assert!(lines[2].ends_with("sw a1, 16(sp)"), "{}", lines[2]);
        assert!(lines[4].ends_with("ecall"));
        // Re-assembling the disassembly (sans addresses) reproduces the code.
        let round: String = lines
            .iter()
            .map(|l| l.split(": ").nth(1).expect("addr: text"))
            .collect::<Vec<_>>()
            .join("\n");
        assert_eq!(assemble(&round).expect("reassembles"), words);
    }

    #[test]
    fn bad_words_render_as_data() {
        let lines = disassemble(&[0xFFFF_FFFF], 0x100);
        assert_eq!(lines[0], "0x00000100: .word 0xffffffff");
    }
}

//! The RV32IM interpreter core with a simple cycle-accounting model —
//! the host processor of the gem5-style full-system simulation (paper §5).

use crate::block::{BlockCache, DecodedBlock, PerfCounters};
use crate::bus::{Bus, BusFault};
use crate::isa::{decode, Instruction};
use crate::trace::{CompiledTrace, SideExit, TraceEngine};
use std::fmt;
use std::sync::Arc;

/// CSR addresses implemented by the core.
pub mod csr {
    /// Cycle counter (read-only).
    pub const MCYCLE: u16 = 0xB00;
    /// Retired-instruction counter (read-only).
    pub const MINSTRET: u16 = 0xB02;
    /// Scratch register.
    pub const MSCRATCH: u16 = 0x340;
    /// Decoded-block cache hits (read-only, `mhpmcounter3` slot).
    pub const BLOCK_HITS: u16 = 0xB03;
    /// Decoded-block cache misses (read-only, `mhpmcounter4` slot).
    pub const BLOCK_MISSES: u16 = 0xB04;
    /// Trace dispatches (read-only, `mhpmcounter5` slot).
    pub const TRACE_HITS: u16 = 0xB05;
    /// Trace side exits of any kind (read-only, `mhpmcounter6` slot).
    pub const TRACE_EXITS: u16 = 0xB06;
}

/// Why execution stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Halt {
    /// An `ecall` was executed (the firmware's "done" convention).
    Ecall,
    /// An `ebreak` was executed.
    Ebreak,
    /// The cycle budget ran out.
    CycleLimit,
}

/// The result of a bounded run, with exact cycle accounting.
///
/// `cycles_consumed` reports the cycles actually spent, which can exceed
/// the requested budget when the final instruction (or cached block tail)
/// completes past the limit — the seed `run` reported the cap in that
/// case, losing the overshoot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunExit {
    /// Why execution stopped.
    pub halt: Halt,
    /// Cycles actually consumed by this run (may exceed the budget).
    pub cycles_consumed: u64,
}

/// A trap: the program did something the machine cannot continue from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trap {
    /// Instruction fetch or decode failed.
    IllegalInstruction {
        /// Program counter of the offending instruction.
        pc: u32,
        /// The raw word, if the fetch itself succeeded.
        word: Option<u32>,
    },
    /// A data access faulted.
    MemoryFault {
        /// Program counter of the faulting instruction.
        pc: u32,
        /// The bus fault.
        fault: BusFault,
    },
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trap::IllegalInstruction { pc, word } => {
                write!(f, "illegal instruction at {pc:#010x} ({word:?})")
            }
            Trap::MemoryFault { pc, fault } => write!(f, "{fault} at pc {pc:#010x}"),
        }
    }
}

impl std::error::Error for Trap {}

/// Per-class instruction latencies \[cycles\] — the timing model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CycleModel {
    /// ALU / branch-not-taken.
    pub alu: u64,
    /// Taken branch / jump (pipeline refill).
    pub branch_taken: u64,
    /// Load from memory.
    pub load: u64,
    /// Store to memory.
    pub store: u64,
    /// Multiply.
    pub mul: u64,
    /// Divide / remainder.
    pub div: u64,
}

impl Default for CycleModel {
    /// A small in-order core: 1-cycle ALU, 3-cycle taken branches,
    /// 2/1-cycle load/store (hits), 3-cycle multiply, 20-cycle divide.
    fn default() -> Self {
        CycleModel {
            alu: 1,
            branch_taken: 3,
            load: 2,
            store: 1,
            mul: 3,
            div: 20,
        }
    }
}

/// A point-in-time copy of the complete architectural and timing state
/// of a [`Cpu`], for checkpoint/restore (fault-injection campaigns
/// resume from the last checkpoint instead of replaying the warm-up
/// prefix).
///
/// A restored core is indistinguishable from the original: registers,
/// `pc`, CSRs, the `wfi` sleep flag and both hardware counters all
/// round-trip, so a resumed run continues the exact same trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuSnapshot {
    regs: [u32; 32],
    pc: u32,
    cycles: u64,
    instret: u64,
    cycle_model: CycleModel,
    mscratch: u32,
    waiting_for_interrupt: bool,
}

impl CpuSnapshot {
    /// Cycle counter value at the time the snapshot was taken.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }
}

/// How a compiled-trace dispatch ended, from the bulk loop's point of
/// view: keep going in the bulk loop, hand off to the precise path, or
/// the program halted.
enum TraceOutcome {
    /// The trace exited with `pc` somewhere dispatchable — re-enter the
    /// bulk loop (trace lookup, then block dispatch).
    Continue,
    /// The bulk window must end (budget, or an MMIO access the bus
    /// declined / closed the window on): return to the caller.
    Leave,
    /// The program signalled completion.
    Halted(Halt),
}

/// The RV32IM processor state.
#[derive(Debug, Clone)]
pub struct Cpu {
    /// General-purpose registers; `x0` is hardwired to zero.
    regs: [u32; 32],
    /// Program counter.
    pub pc: u32,
    /// Cycle counter.
    pub cycles: u64,
    /// Retired instruction counter.
    pub instret: u64,
    /// Timing model.
    pub cycle_model: CycleModel,
    mscratch: u32,
    /// Set while the core sleeps in `wfi`.
    pub waiting_for_interrupt: bool,
    /// Decoded-block cache (microarchitectural — excluded from equality).
    block_cache: BlockCache,
    /// In-block dispatch position: `(slot, next op index)`.
    cursor: Option<(usize, usize)>,
    /// Trace engine: hot-path superblocks stitched across taken
    /// branches (microarchitectural — excluded from equality).
    traces: TraceEngine,
}

/// Equality covers architectural and timing state only: the decoded-block
/// cache and dispatch cursor are microarchitectural accelerator state and
/// two cores that differ only there are observably identical.
impl PartialEq for Cpu {
    fn eq(&self, other: &Self) -> bool {
        self.regs == other.regs
            && self.pc == other.pc
            && self.cycles == other.cycles
            && self.instret == other.instret
            && self.cycle_model == other.cycle_model
            && self.mscratch == other.mscratch
            && self.waiting_for_interrupt == other.waiting_for_interrupt
    }
}

impl Cpu {
    /// Creates a CPU with zeroed registers at `pc = reset_vector`.
    pub fn new(reset_vector: u32) -> Self {
        Cpu {
            regs: [0; 32],
            pc: reset_vector,
            cycles: 0,
            instret: 0,
            cycle_model: CycleModel::default(),
            mscratch: 0,
            waiting_for_interrupt: false,
            block_cache: BlockCache::default(),
            cursor: None,
            traces: TraceEngine::default(),
        }
    }

    /// Reads register `r` (x0 reads as 0).
    pub fn reg(&self, r: u8) -> u32 {
        if r == 0 {
            0
        } else {
            self.regs[r as usize]
        }
    }

    /// Writes register `r` (writes to x0 are discarded).
    pub fn set_reg(&mut self, r: u8, value: u32) {
        if r != 0 {
            self.regs[r as usize] = value;
        }
    }

    /// Delivers an interrupt: wakes the core if it is in `wfi`.
    pub fn interrupt(&mut self) {
        self.waiting_for_interrupt = false;
    }

    /// Captures the complete architectural + timing state.
    pub fn snapshot(&self) -> CpuSnapshot {
        CpuSnapshot {
            regs: self.regs,
            pc: self.pc,
            cycles: self.cycles,
            instret: self.instret,
            cycle_model: self.cycle_model,
            mscratch: self.mscratch,
            waiting_for_interrupt: self.waiting_for_interrupt,
        }
    }

    /// Restores the state captured by [`Cpu::snapshot`]. Cached decoded
    /// blocks are dropped: memory has typically been rewound with the
    /// architectural state.
    pub fn restore(&mut self, snapshot: &CpuSnapshot) {
        self.regs = snapshot.regs;
        self.pc = snapshot.pc;
        self.cycles = snapshot.cycles;
        self.instret = snapshot.instret;
        self.cycle_model = snapshot.cycle_model;
        self.mscratch = snapshot.mscratch;
        self.waiting_for_interrupt = snapshot.waiting_for_interrupt;
        self.invalidate_blocks();
    }

    /// Drops every cached decoded block and compiled trace (and the
    /// in-block cursor). Called on restore, on stores into cached code,
    /// and by hosts before resuming a CPU whose memory they rewrote
    /// behind its back. Traces re-profile and recompile within a few
    /// block entries, so hosts may call this liberally.
    pub fn invalidate_blocks(&mut self) {
        self.block_cache.invalidate_all();
        self.cursor = None;
        self.traces.invalidate();
    }

    /// Tells the interpreter that an agent other than this CPU — a DMA
    /// engine, an accelerator, host-side pokes — may have written the
    /// byte range `[lo, hi)`. Cached blocks overlapping it are dropped
    /// so the bulk dispatch path re-decodes from memory. The range may
    /// be over-approximated freely.
    pub fn note_external_writes(&mut self, lo: u32, hi: u32) {
        if self.block_cache.overlaps(lo, hi) {
            self.invalidate_blocks();
        }
    }

    /// Post-store hook: a write into watched code drops the decoded
    /// blocks so the very next instruction re-decodes from memory.
    #[inline]
    fn note_store(&mut self, addr: u32) {
        if self.block_cache.watches(addr) {
            self.invalidate_blocks();
        }
    }

    /// Enables or disables decoded-block dispatch (on by default).
    /// Disabling reproduces the seed fetch-and-decode interpreter
    /// exactly, which is how the benchmarks A/B the two paths.
    pub fn set_block_cache_enabled(&mut self, enabled: bool) {
        self.block_cache.set_enabled(enabled);
        self.cursor = None;
        // Traces only ever run under bulk dispatch; drop them so an A/B
        // run starts from a cold microarchitectural state either way.
        self.traces.invalidate();
    }

    /// Whether decoded-block dispatch is enabled.
    pub fn block_cache_enabled(&self) -> bool {
        self.block_cache.is_enabled()
    }

    /// Enables or disables the trace (superblock) tier independently of
    /// the block cache (on by default). With traces off, bulk dispatch
    /// runs pure decoded-block spans — the PR 4 configuration — which is
    /// how the benchmarks isolate the trace layer's contribution.
    pub fn set_trace_compiler_enabled(&mut self, enabled: bool) {
        self.traces.set_enabled(enabled);
    }

    /// Whether the trace tier is enabled.
    pub fn trace_compiler_enabled(&self) -> bool {
        self.traces.is_enabled()
    }

    /// Read access to the trace engine (profile and exit statistics).
    pub fn trace_engine(&self) -> &TraceEngine {
        &self.traces
    }

    /// Snapshot of the hardware counters (`mcycle`/`minstret` plus the
    /// block-cache and trace-engine statistics) for self-reported cost.
    pub fn perf_counters(&self) -> PerfCounters {
        PerfCounters {
            cycles: self.cycles,
            instret: self.instret,
            block_hits: self.block_cache.hits,
            block_misses: self.block_cache.misses,
            block_conflict_evictions: self.block_cache.conflict_evictions,
            trace_hits: self.traces.hits,
            traces_compiled: self.traces.compiled,
            trace_conflict_evictions: self.traces.conflict_evictions,
            trace_exit_guard: self.traces.exit_count(SideExit::Guard),
            trace_exit_end: self.traces.exit_count(SideExit::End),
            trace_exit_budget: self.traces.exit_count(SideExit::Budget),
            trace_exit_mmio: self.traces.exit_count(SideExit::Mmio),
            trace_exit_invalidated: self.traces.exit_count(SideExit::Invalidated),
        }
    }

    fn read_csr(&self, addr: u16) -> u32 {
        match addr {
            csr::MCYCLE => self.cycles as u32,
            csr::MINSTRET => self.instret as u32,
            csr::MSCRATCH => self.mscratch,
            csr::BLOCK_HITS => self.block_cache.hits as u32,
            csr::BLOCK_MISSES => self.block_cache.misses as u32,
            csr::TRACE_HITS => self.traces.hits as u32,
            csr::TRACE_EXITS => self.traces.total_exits() as u32,
            _ => 0,
        }
    }

    fn write_csr(&mut self, addr: u16, value: u32) {
        if addr == csr::MSCRATCH {
            self.mscratch = value;
        }
    }

    /// Executes one instruction.
    ///
    /// Returns `Ok(Some(halt))` when the program signalled completion
    /// (`ecall`/`ebreak`), `Ok(None)` to continue.
    ///
    /// # Errors
    ///
    /// Returns a [`Trap`] on illegal instructions or memory faults.
    pub fn step<B: Bus + ?Sized>(&mut self, bus: &mut B) -> Result<Option<Halt>, Trap> {
        if self.waiting_for_interrupt {
            // Sleeping: time passes, nothing retires.
            self.cycles += 1;
            return Ok(None);
        }
        let pc = self.pc;
        let word = bus
            .fetch_word(pc)
            .map_err(|fault| Trap::MemoryFault { pc, fault })?;
        let inst = decode(word).map_err(|_| Trap::IllegalInstruction {
            pc,
            word: Some(word),
        })?;
        self.execute(bus, inst, pc)
    }

    /// Executes one already-decoded instruction at `pc`, updating `pc`,
    /// the counters and architectural state exactly as [`Cpu::step`]
    /// does after its fetch+decode.
    fn execute<B: Bus + ?Sized>(
        &mut self,
        bus: &mut B,
        inst: Instruction,
        pc: u32,
    ) -> Result<Option<Halt>, Trap> {
        let mut next_pc = pc.wrapping_add(4);
        let model = self.cycle_model;
        let mut cost = model.alu;

        use Instruction::*;
        match inst {
            Lui { rd, imm } => self.set_reg(rd, imm as u32),
            Auipc { rd, imm } => self.set_reg(rd, pc.wrapping_add(imm as u32)),
            Jal { rd, offset } => {
                self.set_reg(rd, next_pc);
                next_pc = pc.wrapping_add(offset as u32);
                cost = model.branch_taken;
            }
            Jalr { rd, rs1, offset } => {
                let target = self.reg(rs1).wrapping_add(offset as u32) & !1;
                self.set_reg(rd, next_pc);
                next_pc = target;
                cost = model.branch_taken;
            }
            Beq { rs1, rs2, offset } => {
                if self.reg(rs1) == self.reg(rs2) {
                    next_pc = pc.wrapping_add(offset as u32);
                    cost = model.branch_taken;
                }
            }
            Bne { rs1, rs2, offset } => {
                if self.reg(rs1) != self.reg(rs2) {
                    next_pc = pc.wrapping_add(offset as u32);
                    cost = model.branch_taken;
                }
            }
            Blt { rs1, rs2, offset } => {
                if (self.reg(rs1) as i32) < (self.reg(rs2) as i32) {
                    next_pc = pc.wrapping_add(offset as u32);
                    cost = model.branch_taken;
                }
            }
            Bge { rs1, rs2, offset } => {
                if (self.reg(rs1) as i32) >= (self.reg(rs2) as i32) {
                    next_pc = pc.wrapping_add(offset as u32);
                    cost = model.branch_taken;
                }
            }
            Bltu { rs1, rs2, offset } => {
                if self.reg(rs1) < self.reg(rs2) {
                    next_pc = pc.wrapping_add(offset as u32);
                    cost = model.branch_taken;
                }
            }
            Bgeu { rs1, rs2, offset } => {
                if self.reg(rs1) >= self.reg(rs2) {
                    next_pc = pc.wrapping_add(offset as u32);
                    cost = model.branch_taken;
                }
            }
            Lb { rd, rs1, offset } => {
                let addr = self.reg(rs1).wrapping_add(offset as u32);
                let v = bus
                    .load_byte(addr)
                    .map_err(|fault| Trap::MemoryFault { pc, fault })?;
                self.set_reg(rd, v as i8 as i32 as u32);
                cost = model.load;
            }
            Lh { rd, rs1, offset } => {
                let addr = self.reg(rs1).wrapping_add(offset as u32);
                let v = bus
                    .load_half(addr)
                    .map_err(|fault| Trap::MemoryFault { pc, fault })?;
                self.set_reg(rd, v as i16 as i32 as u32);
                cost = model.load;
            }
            Lw { rd, rs1, offset } => {
                let addr = self.reg(rs1).wrapping_add(offset as u32);
                let v = bus
                    .load_word_fast(addr)
                    .map_err(|fault| Trap::MemoryFault { pc, fault })?;
                self.set_reg(rd, v);
                cost = model.load;
            }
            Lbu { rd, rs1, offset } => {
                let addr = self.reg(rs1).wrapping_add(offset as u32);
                let v = bus
                    .load_byte(addr)
                    .map_err(|fault| Trap::MemoryFault { pc, fault })?;
                self.set_reg(rd, v as u32);
                cost = model.load;
            }
            Lhu { rd, rs1, offset } => {
                let addr = self.reg(rs1).wrapping_add(offset as u32);
                let v = bus
                    .load_half(addr)
                    .map_err(|fault| Trap::MemoryFault { pc, fault })?;
                self.set_reg(rd, v as u32);
                cost = model.load;
            }
            Sb { rs1, rs2, offset } => {
                let addr = self.reg(rs1).wrapping_add(offset as u32);
                bus.store_byte(addr, self.reg(rs2) as u8)
                    .map_err(|fault| Trap::MemoryFault { pc, fault })?;
                self.note_store(addr);
                cost = model.store;
            }
            Sh { rs1, rs2, offset } => {
                let addr = self.reg(rs1).wrapping_add(offset as u32);
                bus.store_half(addr, self.reg(rs2) as u16)
                    .map_err(|fault| Trap::MemoryFault { pc, fault })?;
                self.note_store(addr);
                cost = model.store;
            }
            Sw { rs1, rs2, offset } => {
                let addr = self.reg(rs1).wrapping_add(offset as u32);
                bus.store_word_fast(addr, self.reg(rs2))
                    .map_err(|fault| Trap::MemoryFault { pc, fault })?;
                self.note_store(addr);
                cost = model.store;
            }
            Addi { rd, rs1, imm } => self.set_reg(rd, self.reg(rs1).wrapping_add(imm as u32)),
            Slti { rd, rs1, imm } => self.set_reg(rd, ((self.reg(rs1) as i32) < imm) as u32),
            Sltiu { rd, rs1, imm } => self.set_reg(rd, (self.reg(rs1) < imm as u32) as u32),
            Xori { rd, rs1, imm } => self.set_reg(rd, self.reg(rs1) ^ imm as u32),
            Ori { rd, rs1, imm } => self.set_reg(rd, self.reg(rs1) | imm as u32),
            Andi { rd, rs1, imm } => self.set_reg(rd, self.reg(rs1) & imm as u32),
            Slli { rd, rs1, shamt } => self.set_reg(rd, self.reg(rs1) << shamt),
            Srli { rd, rs1, shamt } => self.set_reg(rd, self.reg(rs1) >> shamt),
            Srai { rd, rs1, shamt } => self.set_reg(rd, ((self.reg(rs1) as i32) >> shamt) as u32),
            Add { rd, rs1, rs2 } => self.set_reg(rd, self.reg(rs1).wrapping_add(self.reg(rs2))),
            Sub { rd, rs1, rs2 } => self.set_reg(rd, self.reg(rs1).wrapping_sub(self.reg(rs2))),
            Sll { rd, rs1, rs2 } => self.set_reg(rd, self.reg(rs1) << (self.reg(rs2) & 0x1f)),
            Slt { rd, rs1, rs2 } => {
                self.set_reg(rd, ((self.reg(rs1) as i32) < (self.reg(rs2) as i32)) as u32)
            }
            Sltu { rd, rs1, rs2 } => self.set_reg(rd, (self.reg(rs1) < self.reg(rs2)) as u32),
            Xor { rd, rs1, rs2 } => self.set_reg(rd, self.reg(rs1) ^ self.reg(rs2)),
            Srl { rd, rs1, rs2 } => self.set_reg(rd, self.reg(rs1) >> (self.reg(rs2) & 0x1f)),
            Sra { rd, rs1, rs2 } => self.set_reg(
                rd,
                ((self.reg(rs1) as i32) >> (self.reg(rs2) & 0x1f)) as u32,
            ),
            Or { rd, rs1, rs2 } => self.set_reg(rd, self.reg(rs1) | self.reg(rs2)),
            And { rd, rs1, rs2 } => self.set_reg(rd, self.reg(rs1) & self.reg(rs2)),
            Mul { rd, rs1, rs2 } => {
                self.set_reg(rd, self.reg(rs1).wrapping_mul(self.reg(rs2)));
                cost = model.mul;
            }
            Mulh { rd, rs1, rs2 } => {
                let p = (self.reg(rs1) as i32 as i64) * (self.reg(rs2) as i32 as i64);
                self.set_reg(rd, (p >> 32) as u32);
                cost = model.mul;
            }
            Mulhsu { rd, rs1, rs2 } => {
                let p = (self.reg(rs1) as i32 as i64) * (self.reg(rs2) as u64 as i64);
                self.set_reg(rd, (p >> 32) as u32);
                cost = model.mul;
            }
            Mulhu { rd, rs1, rs2 } => {
                let p = (self.reg(rs1) as u64) * (self.reg(rs2) as u64);
                self.set_reg(rd, (p >> 32) as u32);
                cost = model.mul;
            }
            Div { rd, rs1, rs2 } => {
                let a = self.reg(rs1) as i32;
                let b = self.reg(rs2) as i32;
                let q = if b == 0 {
                    -1
                } else if a == i32::MIN && b == -1 {
                    i32::MIN
                } else {
                    a / b
                };
                self.set_reg(rd, q as u32);
                cost = model.div;
            }
            Divu { rd, rs1, rs2 } => {
                let b = self.reg(rs2);
                let q = self.reg(rs1).checked_div(b).unwrap_or(u32::MAX);
                self.set_reg(rd, q);
                cost = model.div;
            }
            Rem { rd, rs1, rs2 } => {
                let a = self.reg(rs1) as i32;
                let b = self.reg(rs2) as i32;
                let r = if b == 0 {
                    a
                } else if a == i32::MIN && b == -1 {
                    0
                } else {
                    a % b
                };
                self.set_reg(rd, r as u32);
                cost = model.div;
            }
            Remu { rd, rs1, rs2 } => {
                let b = self.reg(rs2);
                let r = if b == 0 {
                    self.reg(rs1)
                } else {
                    self.reg(rs1) % b
                };
                self.set_reg(rd, r);
                cost = model.div;
            }
            Fence => {}
            Ecall => {
                self.pc = next_pc;
                self.cycles += cost;
                self.instret += 1;
                return Ok(Some(Halt::Ecall));
            }
            Ebreak => {
                self.pc = next_pc;
                self.cycles += cost;
                self.instret += 1;
                return Ok(Some(Halt::Ebreak));
            }
            Wfi => {
                self.waiting_for_interrupt = true;
            }
            Csrrw { rd, rs1, csr } => {
                let old = self.read_csr(csr);
                self.write_csr(csr, self.reg(rs1));
                self.set_reg(rd, old);
            }
            Csrrs { rd, rs1, csr } => {
                let old = self.read_csr(csr);
                if rs1 != 0 {
                    self.write_csr(csr, old | self.reg(rs1));
                }
                self.set_reg(rd, old);
            }
            Csrrc { rd, rs1, csr } => {
                let old = self.read_csr(csr);
                if rs1 != 0 {
                    self.write_csr(csr, old & !self.reg(rs1));
                }
                self.set_reg(rd, old);
            }
        }

        self.pc = next_pc;
        self.cycles += cost;
        self.instret += 1;
        Ok(None)
    }

    /// Executes one instruction through the decoded-block fast path.
    ///
    /// Observably identical to [`Cpu::step`]: every retired instruction
    /// still issues one accounted fetch (via [`Bus::fetch_word`]) whose
    /// word is compared against the cached decode, so self-modifying
    /// code, DMA writes into text and fault injections take effect on
    /// exactly the cycle the plain interpreter would see them. When the
    /// cache is disabled or the address is uncacheable this *is*
    /// [`Cpu::step`].
    ///
    /// # Errors
    ///
    /// Returns a [`Trap`] on illegal instructions or memory faults.
    pub fn step_cached<B: Bus + ?Sized>(&mut self, bus: &mut B) -> Result<Option<Halt>, Trap> {
        if self.waiting_for_interrupt {
            self.cycles += 1;
            return Ok(None);
        }
        if !self.block_cache.is_enabled() {
            return self.step(bus);
        }
        let pc = self.pc;

        // Continue inside the current block when the cursor still points
        // at `pc`; otherwise this is a block entry (lookup or decode).
        let position = self.cursor.filter(|&(slot, idx)| {
            self.block_cache
                .block(slot)
                .is_some_and(|b| idx < b.ops.len() && b.start.wrapping_add(4 * idx as u32) == pc)
        });
        let (slot, idx) = match position {
            Some(p) => p,
            None => {
                let slot = self.block_cache.slot_of(pc);
                if self.block_cache.block(slot).is_some_and(|b| b.start == pc) {
                    self.block_cache.hits += 1;
                } else {
                    self.block_cache.misses += 1;
                    match DecodedBlock::build(&*bus, pc) {
                        Some(b) => {
                            self.block_cache.insert(b);
                        }
                        None => {
                            // Unpeekable or undecodable first word: the
                            // plain path reproduces the seed behavior
                            // (including the trap).
                            self.cursor = None;
                            return self.step(bus);
                        }
                    }
                }
                (slot, 0)
            }
        };

        let op = self
            .block_cache
            .block(slot)
            .expect("position validated")
            .ops[idx];
        // Verify fetch: the one accounted fetch this instruction makes.
        let word = bus
            .fetch_word(pc)
            .map_err(|fault| Trap::MemoryFault { pc, fault })?;
        if word != op.word {
            // Code changed under the cached block — drop it and run what
            // is really in memory, exactly as the seed would.
            self.block_cache.evict(slot);
            self.cursor = None;
            let inst = decode(word).map_err(|_| Trap::IllegalInstruction {
                pc,
                word: Some(word),
            })?;
            return self.execute(bus, inst, pc);
        }

        let halt = self.execute(bus, op.inst, pc)?;
        let block_len = self.block_cache.block(slot).map_or(0, |b| b.ops.len());
        self.cursor = if halt.is_none()
            && idx + 1 < block_len
            && self.pc == pc.wrapping_add(4)
            && !self.waiting_for_interrupt
        {
            Some((slot, idx + 1))
        } else {
            None
        };
        Ok(halt)
    }

    /// Executes cached instructions in a tight dispatch loop until the
    /// cycle budget is met, the program halts, traps, or sleeps, or the
    /// path needs the precise per-instruction interpreter.
    ///
    /// The caller must guarantee a *quiet window*: nothing outside this
    /// CPU changes observable state while instructions retire here (no
    /// device needs to tick, no interrupt can rise), and
    /// `bus.charge_fetches` accepts the code region. Within the window
    /// the observables match the seed interpreter exactly: each retired
    /// (or trapped) instruction is charged one fetch in bulk, stores
    /// into cached code invalidate and force a re-decode before the next
    /// instruction, and loads/stores whose effective address reaches
    /// `mmio_floor` are gated through [`Bus::mmio_prologue`] /
    /// [`Bus::mmio_epilogue`]: the bus either executes them in place
    /// with its device clock synced (leaving the window when the access
    /// starts device work or raises an interrupt), or declines, in which
    /// case the access is left **unexecuted** for the caller to run
    /// through [`Cpu::step_cached`] under the full per-cycle protocol.
    /// Returning with no cycles
    /// consumed means exactly that: the caller must make progress via
    /// the precise path.
    ///
    /// # Errors
    ///
    /// Returns a [`Trap`] exactly as [`Cpu::step`] would.
    pub fn run_cached_span<B: Bus + ?Sized>(
        &mut self,
        bus: &mut B,
        budget_end: u64,
        mmio_floor: u32,
    ) -> Result<Option<Halt>, Trap> {
        use Instruction::*;
        if !self.block_cache.is_enabled() {
            return Ok(None);
        }
        while self.cycles < budget_end && !self.waiting_for_interrupt {
            // Resume mid-block through the cursor when it still points at
            // `pc` (e.g. after the precise path ran one MMIO access out
            // of the middle of a block); otherwise this is a block entry.
            // A resume is a cache hit: the dispatch is served from the
            // decoded block without touching memory.
            let resume = self.cursor.filter(|&(slot, idx)| {
                self.block_cache.block(slot).is_some_and(|b| {
                    idx < b.ops.len() && b.start.wrapping_add(4 * idx as u32) == self.pc
                })
            });
            // Trace tier: a block entry (never a mid-block resume) first
            // tries the compiled superblock starting here, then — when
            // the entry crosses the heat threshold — compiles one and
            // runs it immediately.
            if resume.is_none() && self.traces.is_enabled() {
                let mut trace = self.traces.lookup(self.pc).cloned();
                if trace.is_none() && self.traces.note_entry(self.pc) {
                    trace = crate::trace::compile(&*bus, self.pc, self.traces.edges()).map(|t| {
                        // Store invalidation must reach compiled
                        // traces: widen the block-cache watch window
                        // over every trace segment.
                        for (lo, hi) in t.watch_ranges() {
                            self.block_cache.widen_watch(lo, hi);
                        }
                        self.traces.insert(t)
                    });
                }
                if let Some(trace) = trace {
                    self.traces.hits += 1;
                    match self.run_trace(bus, &trace, budget_end, mmio_floor)? {
                        TraceOutcome::Continue => continue,
                        TraceOutcome::Leave => return Ok(None),
                        TraceOutcome::Halted(halt) => return Ok(Some(halt)),
                    }
                }
            }
            let (slot, start_idx) = match resume {
                Some(position) => {
                    self.block_cache.hits += 1;
                    position
                }
                None => {
                    let entry_pc = self.pc;
                    let slot = self.block_cache.slot_of(entry_pc);
                    if self
                        .block_cache
                        .block(slot)
                        .is_some_and(|b| b.start == entry_pc)
                    {
                        self.block_cache.hits += 1;
                    } else {
                        match DecodedBlock::build(&*bus, entry_pc) {
                            Some(b) => {
                                self.block_cache.misses += 1;
                                self.block_cache.insert(b);
                            }
                            // Unpeekable or undecodable entry: the precise
                            // path reproduces the seed behavior (including
                            // the trap).
                            None => return Ok(None),
                        }
                    }
                    (slot, 0)
                }
            };
            self.cursor = None;
            let span_pc = self.pc;
            let mut idx = start_idx;
            let mut executed = 0u32;
            let mut leave = false;
            // Re-borrow each iteration: a store into cached code may
            // have invalidated the block mid-run. The position check
            // also re-validates the block identity.
            while let Some(block) = self.block_cache.block(slot) {
                if block.start.wrapping_add(4 * idx as u32) != self.pc {
                    break;
                }
                let Some(&op) = block.ops.get(idx) else {
                    break;
                };
                if self.cycles >= budget_end {
                    leave = true;
                    break;
                }
                // Memory ops that might leave plain RAM take the precise
                // path — checked against the effective address before any
                // side effect happens.
                let touches_mmio = match op.inst {
                    Lb { rs1, offset, .. }
                    | Lh { rs1, offset, .. }
                    | Lw { rs1, offset, .. }
                    | Lbu { rs1, offset, .. }
                    | Lhu { rs1, offset, .. }
                    | Sb { rs1, offset, .. }
                    | Sh { rs1, offset, .. }
                    | Sw { rs1, offset, .. } => {
                        self.reg(rs1).wrapping_add(offset as u32) >= mmio_floor
                    }
                    _ => false,
                };
                // Device accesses may still run here when the bus can
                // sync its device clock in place (quiet window: the jump
                // is a no-op); otherwise they bail to the precise path.
                if touches_mmio && !bus.mmio_prologue(self.cycles) {
                    leave = true;
                    break;
                }
                let pc = self.pc;
                match self.execute(bus, op.inst, pc) {
                    Ok(None) => {
                        executed += 1;
                        idx += 1;
                        // Feed the trace compiler's edge profile: which
                        // way did this conditional branch retire?
                        if self.traces.is_enabled()
                            && matches!(
                                op.inst,
                                Beq { .. }
                                    | Bne { .. }
                                    | Blt { .. }
                                    | Bge { .. }
                                    | Bltu { .. }
                                    | Bgeu { .. }
                            )
                        {
                            self.traces.record_edge(pc, self.pc != pc.wrapping_add(4));
                        }
                        if self.waiting_for_interrupt || self.pc != pc.wrapping_add(4) {
                            break;
                        }
                        // A device access that started work or raised an
                        // interrupt ends the quiet window: hand off with
                        // the access already retired.
                        if touches_mmio && !bus.mmio_epilogue() {
                            leave = true;
                            break;
                        }
                    }
                    Ok(Some(halt)) => {
                        executed += 1;
                        let charged = bus.charge_fetches(span_pc, executed);
                        debug_assert!(charged, "quiet window requires bulk-chargeable fetches");
                        return Ok(Some(halt));
                    }
                    Err(trap) => {
                        // The trapped instruction was fetched before it
                        // trapped, exactly as in the seed.
                        executed += 1;
                        let charged = bus.charge_fetches(span_pc, executed);
                        debug_assert!(charged, "quiet window requires bulk-chargeable fetches");
                        return Err(trap);
                    }
                }
            }
            if executed > 0 {
                let charged = bus.charge_fetches(span_pc, executed);
                debug_assert!(charged, "quiet window requires bulk-chargeable fetches");
            }
            if leave {
                // Hand the in-block position to the precise path so the
                // bailed instruction (and the next span) continues here
                // without re-decoding.
                self.cursor = Some((slot, idx));
                return Ok(None);
            }
            if executed == 0 && start_idx == 0 {
                // The very first instruction of a freshly entered block
                // needs the precise path: no progress was made.
                return Ok(None);
            }
        }
        Ok(None)
    }

    /// Executes one compiled trace (looping in place while it keeps
    /// predicting correctly) under the same quiet-window contract as
    /// [`Cpu::run_cached_span`].
    ///
    /// Every op runs through [`Cpu::execute`] — the single semantic
    /// core — so architectural state, traps and cycle charging are
    /// bit-identical to the seed interpreter no matter where the trace
    /// exits. Fetches are charged in bulk per contiguous code segment.
    fn run_trace<B: Bus + ?Sized>(
        &mut self,
        bus: &mut B,
        trace: &Arc<CompiledTrace>,
        budget_end: u64,
        mmio_floor: u32,
    ) -> Result<TraceOutcome, Trap> {
        debug_assert_eq!(self.pc, trace.start, "trace dispatched off its entry");
        let entry_generation = self.traces.generation;
        // Charges `executed` fetches against the trace's contiguous
        // code segments, in execution order.
        fn charge<B: Bus + ?Sized>(bus: &mut B, trace: &CompiledTrace, mut executed: u32) {
            for &(seg_pc, seg_len) in &trace.segments {
                if executed == 0 {
                    break;
                }
                let count = executed.min(seg_len);
                let charged = bus.charge_fetches(seg_pc, count);
                debug_assert!(charged, "quiet window requires bulk-chargeable fetches");
                executed -= count;
            }
        }
        loop {
            let mut executed = 0u32;
            for top in &trace.ops {
                if self.cycles >= budget_end {
                    self.traces.exits[SideExit::Budget as usize] += 1;
                    charge(bus, trace, executed);
                    return Ok(TraceOutcome::Leave);
                }
                // Inline-cached MMIO range check: one register read and
                // one compare on the common RAM path, with the same
                // prologue/epilogue gating as block dispatch otherwise.
                let mut touches_mmio = false;
                if let Some((rs1, offset)) = top.mem {
                    if self.reg(rs1).wrapping_add(offset as u32) >= mmio_floor {
                        touches_mmio = true;
                        if !bus.mmio_prologue(self.cycles) {
                            self.traces.exits[SideExit::Mmio as usize] += 1;
                            charge(bus, trace, executed);
                            return Ok(TraceOutcome::Leave);
                        }
                    }
                }
                let pc = self.pc;
                debug_assert_eq!(pc, top.pc, "trace position out of sync");
                match self.execute(bus, top.op.inst, pc) {
                    Ok(None) => {
                        executed += 1;
                        // A store of this very trace may have rewritten
                        // its own code: the invalidation bumped the
                        // generation, so stop before dispatching a
                        // stale decode. State so far is exact.
                        if self.traces.generation != entry_generation {
                            self.traces.exits[SideExit::Invalidated as usize] += 1;
                            charge(bus, trace, executed);
                            return Ok(TraceOutcome::Continue);
                        }
                        // Guard: the branch (or fallthrough) retired —
                        // precisely — somewhere the compiler did not
                        // predict. Leave the trace; state is already
                        // correct.
                        if self.pc != top.expected_next {
                            self.traces.exits[SideExit::Guard as usize] += 1;
                            charge(bus, trace, executed);
                            return Ok(TraceOutcome::Continue);
                        }
                        if touches_mmio && !bus.mmio_epilogue() {
                            self.traces.exits[SideExit::Mmio as usize] += 1;
                            charge(bus, trace, executed);
                            return Ok(TraceOutcome::Leave);
                        }
                    }
                    Ok(Some(halt)) => {
                        executed += 1;
                        charge(bus, trace, executed);
                        return Ok(TraceOutcome::Halted(halt));
                    }
                    Err(trap) => {
                        // The trapped instruction was fetched before it
                        // trapped, exactly as in the seed.
                        executed += 1;
                        charge(bus, trace, executed);
                        return Err(trap);
                    }
                }
            }
            charge(bus, trace, executed);
            if trace.loops && self.pc == trace.start && self.cycles < budget_end {
                // The tail predicted back to the entry and was right:
                // iterate in place without a re-dispatch.
                self.traces.hits += 1;
                continue;
            }
            self.traces.exits[SideExit::End as usize] += 1;
            return Ok(TraceOutcome::Continue);
        }
    }

    /// Runs until the program halts or `max_cycles` elapse, reporting
    /// the cycles actually consumed (which can exceed the budget when
    /// the final instruction completes past the limit).
    ///
    /// # Errors
    ///
    /// Returns the first [`Trap`] raised.
    pub fn run_counted<B: Bus + ?Sized>(
        &mut self,
        bus: &mut B,
        max_cycles: u64,
    ) -> Result<RunExit, Trap> {
        let start = self.cycles;
        let limit = start.saturating_add(max_cycles);
        let mut halt = Halt::CycleLimit;
        // With no devices on the bus every window is quiet, so the bulk
        // span runs whenever the bus supports it (`charge_fetches`
        // probe); the precise path picks up whatever it leaves behind.
        let bulk = self.block_cache.is_enabled();
        while self.cycles < limit {
            if bulk && !self.waiting_for_interrupt && bus.charge_fetches(self.pc, 0) {
                let before = self.cycles;
                if let Some(h) = self.run_cached_span(bus, limit, u32::MAX)? {
                    halt = h;
                    break;
                }
                if self.cycles != before {
                    continue;
                }
            }
            if let Some(h) = self.step_cached(bus)? {
                halt = h;
                break;
            }
        }
        Ok(RunExit {
            halt,
            cycles_consumed: self.cycles - start,
        })
    }

    /// Runs until the program halts or `max_cycles` elapse.
    ///
    /// # Errors
    ///
    /// Returns the first [`Trap`] raised.
    pub fn run<B: Bus + ?Sized>(&mut self, bus: &mut B, max_cycles: u64) -> Result<Halt, Trap> {
        Ok(self.run_counted(bus, max_cycles)?.halt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::FlatMemory;
    use crate::isa::{encode, Instruction::*};
    use crate::trace::HOT_THRESHOLD;

    fn run_program(words: &[Instruction]) -> (Cpu, FlatMemory) {
        let mut mem = FlatMemory::new(4096);
        let code: Vec<u32> = words.iter().map(|&i| encode(i)).collect();
        mem.load_words(0, &code);
        let mut cpu = Cpu::new(0);
        let halt = cpu.run(&mut mem, 100_000).expect("no trap");
        assert_eq!(halt, Halt::Ecall, "programs should end with ecall");
        (cpu, mem)
    }

    #[test]
    fn arithmetic_basics() {
        let (cpu, _) = run_program(&[
            Addi {
                rd: 1,
                rs1: 0,
                imm: 40,
            },
            Addi {
                rd: 2,
                rs1: 0,
                imm: 2,
            },
            Add {
                rd: 3,
                rs1: 1,
                rs2: 2,
            },
            Sub {
                rd: 4,
                rs1: 1,
                rs2: 2,
            },
            Mul {
                rd: 5,
                rs1: 1,
                rs2: 2,
            },
            Div {
                rd: 6,
                rs1: 1,
                rs2: 2,
            },
            Rem {
                rd: 7,
                rs1: 1,
                rs2: 2,
            },
            Ecall,
        ]);
        assert_eq!(cpu.reg(3), 42);
        assert_eq!(cpu.reg(4), 38);
        assert_eq!(cpu.reg(5), 80);
        assert_eq!(cpu.reg(6), 20);
        assert_eq!(cpu.reg(7), 0);
    }

    #[test]
    fn x0_is_hardwired_zero() {
        let (cpu, _) = run_program(&[
            Addi {
                rd: 0,
                rs1: 0,
                imm: 99,
            },
            Ecall,
        ]);
        assert_eq!(cpu.reg(0), 0);
    }

    #[test]
    fn memory_load_store() {
        let (cpu, mut mem) = run_program(&[
            Addi {
                rd: 1,
                rs1: 0,
                imm: 0x123,
            },
            Sw {
                rs1: 0,
                rs2: 1,
                offset: 256,
            },
            Lw {
                rd: 2,
                rs1: 0,
                offset: 256,
            },
            Lb {
                rd: 3,
                rs1: 0,
                offset: 256,
            },
            Lhu {
                rd: 4,
                rs1: 0,
                offset: 256,
            },
            Ecall,
        ]);
        assert_eq!(cpu.reg(2), 0x123);
        assert_eq!(cpu.reg(3), 0x23);
        assert_eq!(cpu.reg(4), 0x123);
        assert_eq!(mem.load_word(256).unwrap(), 0x123);
    }

    #[test]
    fn sign_extension_on_loads() {
        let (cpu, _) = run_program(&[
            Addi {
                rd: 1,
                rs1: 0,
                imm: -1,
            }, // 0xFFFFFFFF
            Sw {
                rs1: 0,
                rs2: 1,
                offset: 128,
            },
            Lb {
                rd: 2,
                rs1: 0,
                offset: 128,
            },
            Lbu {
                rd: 3,
                rs1: 0,
                offset: 128,
            },
            Lh {
                rd: 4,
                rs1: 0,
                offset: 128,
            },
            Ecall,
        ]);
        assert_eq!(cpu.reg(2), 0xFFFF_FFFF);
        assert_eq!(cpu.reg(3), 0xFF);
        assert_eq!(cpu.reg(4), 0xFFFF_FFFF);
    }

    #[test]
    fn branch_loop_sums() {
        // sum 1..=10 via a loop.
        let (cpu, _) = run_program(&[
            Addi {
                rd: 1,
                rs1: 0,
                imm: 0,
            }, // sum
            Addi {
                rd: 2,
                rs1: 0,
                imm: 1,
            }, // i
            Addi {
                rd: 3,
                rs1: 0,
                imm: 10,
            }, // limit
            // loop: sum += i; i++; if i <= limit goto loop
            Add {
                rd: 1,
                rs1: 1,
                rs2: 2,
            },
            Addi {
                rd: 2,
                rs1: 2,
                imm: 1,
            },
            Bge {
                rs1: 3,
                rs2: 2,
                offset: -8,
            },
            Ecall,
        ]);
        assert_eq!(cpu.reg(1), 55);
    }

    #[test]
    fn jal_and_jalr_link() {
        let (cpu, _) = run_program(&[
            Jal { rd: 1, offset: 8 }, // skip next instruction
            Addi {
                rd: 2,
                rs1: 0,
                imm: 99,
            }, // skipped
            Addi {
                rd: 3,
                rs1: 0,
                imm: 7,
            },
            Ecall,
        ]);
        assert_eq!(cpu.reg(2), 0, "jal must skip");
        assert_eq!(cpu.reg(3), 7);
        assert_eq!(cpu.reg(1), 4, "link register holds return address");
    }

    #[test]
    fn shifts_and_logic() {
        let (cpu, _) = run_program(&[
            Addi {
                rd: 1,
                rs1: 0,
                imm: -8,
            },
            Srai {
                rd: 2,
                rs1: 1,
                shamt: 1,
            },
            Srli {
                rd: 3,
                rs1: 1,
                shamt: 28,
            },
            Slli {
                rd: 4,
                rs1: 1,
                shamt: 1,
            },
            Andi {
                rd: 5,
                rs1: 1,
                imm: 0xf,
            },
            Ecall,
        ]);
        assert_eq!(cpu.reg(2) as i32, -4);
        assert_eq!(cpu.reg(3), 0xF);
        assert_eq!(cpu.reg(4) as i32, -16);
        assert_eq!(cpu.reg(5), 8);
    }

    #[test]
    fn division_edge_cases() {
        let (cpu, _) = run_program(&[
            Addi {
                rd: 1,
                rs1: 0,
                imm: 7,
            },
            Addi {
                rd: 2,
                rs1: 0,
                imm: 0,
            },
            Div {
                rd: 3,
                rs1: 1,
                rs2: 2,
            }, // div by zero -> -1
            Remu {
                rd: 4,
                rs1: 1,
                rs2: 2,
            }, // rem by zero -> dividend
            Lui {
                rd: 5,
                imm: i32::MIN,
            }, // 0x80000000
            Addi {
                rd: 6,
                rs1: 0,
                imm: -1,
            },
            Div {
                rd: 7,
                rs1: 5,
                rs2: 6,
            }, // overflow -> i32::MIN
            Rem {
                rd: 8,
                rs1: 5,
                rs2: 6,
            }, // overflow -> 0
            Ecall,
        ]);
        assert_eq!(cpu.reg(3) as i32, -1);
        assert_eq!(cpu.reg(4), 7);
        assert_eq!(cpu.reg(7), 0x8000_0000);
        assert_eq!(cpu.reg(8), 0);
    }

    #[test]
    fn cycle_accounting() {
        let (cpu, _) = run_program(&[
            Addi {
                rd: 1,
                rs1: 0,
                imm: 1,
            }, // 1 cycle
            Mul {
                rd: 2,
                rs1: 1,
                rs2: 1,
            }, // 3 cycles
            Lw {
                rd: 3,
                rs1: 0,
                offset: 64,
            }, // 2 cycles
            Ecall, // 1 cycle
        ]);
        assert_eq!(cpu.cycles, 1 + 3 + 2 + 1);
        assert_eq!(cpu.instret, 4);
    }

    #[test]
    fn csr_counters_readable() {
        let (cpu, _) = run_program(&[
            Addi {
                rd: 1,
                rs1: 0,
                imm: 5,
            },
            Csrrs {
                rd: 2,
                rs1: 0,
                csr: csr::MCYCLE,
            },
            Csrrs {
                rd: 3,
                rs1: 0,
                csr: csr::MINSTRET,
            },
            Ecall,
        ]);
        assert_eq!(cpu.reg(2), 1, "one cycle retired before the read");
        assert_eq!(cpu.reg(3), 2, "addi + csrrs retired before the read");
    }

    #[test]
    fn wfi_sleeps_until_interrupt() {
        let mut mem = FlatMemory::new(256);
        mem.load_words(
            0,
            &[
                encode(Wfi),
                encode(Addi {
                    rd: 1,
                    rs1: 0,
                    imm: 9,
                }),
                encode(Ecall),
            ],
        );
        let mut cpu = Cpu::new(0);
        // Without an interrupt the core never retires past the wfi.
        let halt = cpu.run(&mut mem, 50).expect("no trap");
        assert_eq!(halt, Halt::CycleLimit);
        assert_eq!(cpu.reg(1), 0);
        // Deliver the interrupt: execution resumes.
        cpu.interrupt();
        let halt = cpu.run(&mut mem, 50).expect("no trap");
        assert_eq!(halt, Halt::Ecall);
        assert_eq!(cpu.reg(1), 9);
    }

    #[test]
    fn snapshot_restore_resumes_identical_trajectory() {
        // Run k steps, snapshot, keep running to the end; then restore a
        // second core from the snapshot and run it to the end too. Both
        // must halt in exactly the same state.
        let mut mem = FlatMemory::new(4096);
        let code: Vec<u32> = [
            Addi {
                rd: 1,
                rs1: 0,
                imm: 0,
            },
            Addi {
                rd: 2,
                rs1: 0,
                imm: 37,
            },
            // loop: x1 += x2; x2 -= 1; bnez x2 loop
            Add {
                rd: 1,
                rs1: 1,
                rs2: 2,
            },
            Addi {
                rd: 2,
                rs1: 2,
                imm: -1,
            },
            Bne {
                rs1: 2,
                rs2: 0,
                offset: -8,
            },
            Ecall,
        ]
        .iter()
        .map(|&i| encode(i))
        .collect();
        mem.load_words(0, &code);
        let mut cpu = Cpu::new(0);
        for _ in 0..25 {
            assert_eq!(cpu.step(&mut mem).expect("no trap"), None);
        }
        let snap = cpu.snapshot();
        assert_eq!(snap.cycles(), cpu.cycles);
        let halt = cpu.run(&mut mem, 100_000).expect("no trap");
        assert_eq!(halt, Halt::Ecall);

        let mut resumed = Cpu::new(0);
        resumed.restore(&snap);
        let halt = resumed.run(&mut mem, 100_000).expect("no trap");
        assert_eq!(halt, Halt::Ecall);
        assert_eq!(resumed, cpu, "restored core must converge to same state");
        assert_eq!(resumed.reg(1), (1..=37).sum::<u32>());
    }

    #[test]
    fn illegal_instruction_traps() {
        let mut mem = FlatMemory::new(64);
        mem.load_words(0, &[0xFFFF_FFFF]);
        let mut cpu = Cpu::new(0);
        match cpu.step(&mut mem) {
            Err(Trap::IllegalInstruction { pc: 0, .. }) => {}
            other => panic!("expected trap, got {other:?}"),
        }
    }

    #[test]
    fn memory_fault_traps() {
        let mut mem = FlatMemory::new(64);
        mem.load_words(
            0,
            &[encode(Lw {
                rd: 1,
                rs1: 0,
                offset: 2044,
            })],
        );
        let mut cpu = Cpu::new(0);
        match cpu.step(&mut mem) {
            Err(Trap::MemoryFault { .. }) => {}
            other => panic!("expected fault, got {other:?}"),
        }
    }

    #[test]
    fn run_counted_reports_overshoot_past_budget() {
        // addi (1 cycle) then div (20 cycles): a 5-cycle budget is
        // crossed mid-divide, so 21 cycles are actually consumed.
        let mut mem = FlatMemory::new(256);
        mem.load_words(
            0,
            &[
                encode(Addi {
                    rd: 1,
                    rs1: 0,
                    imm: 7,
                }),
                encode(Div {
                    rd: 2,
                    rs1: 1,
                    rs2: 1,
                }),
                encode(Ecall),
            ],
        );
        let mut cpu = Cpu::new(0);
        let exit = cpu.run_counted(&mut mem, 5).expect("no trap");
        assert_eq!(exit.halt, Halt::CycleLimit);
        assert_eq!(exit.cycles_consumed, 21, "overshoot must be reported");
        assert!(exit.cycles_consumed > 5, "not clamped to the cap");
        assert_eq!(cpu.cycles, 21);
    }

    fn lcg(state: &mut u64) -> u32 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (*state >> 33) as u32
    }

    /// Deterministic random straight-line-plus-forward-branch program:
    /// always terminates, never leaves a 4 KiB memory.
    fn random_program(seed: u64, len: usize) -> Vec<Instruction> {
        let mut s = seed;
        let mut prog = Vec::with_capacity(len + 1);
        for k in 0..len {
            let rd = (1 + lcg(&mut s) % 15) as u8;
            let rs1 = (lcg(&mut s) % 16) as u8;
            let rs2 = (lcg(&mut s) % 16) as u8;
            let inst = match lcg(&mut s) % 10 {
                0 => Addi {
                    rd,
                    rs1,
                    imm: (lcg(&mut s) % 4096) as i32 - 2048,
                },
                1 => Add { rd, rs1, rs2 },
                2 => Sub { rd, rs1, rs2 },
                3 => Xor { rd, rs1, rs2 },
                4 => Mul { rd, rs1, rs2 },
                5 => Slli {
                    rd,
                    rs1,
                    shamt: (lcg(&mut s) % 32) as u8,
                },
                6 => Sltu { rd, rs1, rs2 },
                // Data traffic in the 1 KiB..2 KiB window, clear of code.
                7 => Sw {
                    rs1: 0,
                    rs2,
                    offset: (1024 + (lcg(&mut s) % 255) * 4) as i32,
                },
                8 => Lw {
                    rd,
                    rs1: 0,
                    offset: (1024 + (lcg(&mut s) % 255) * 4) as i32,
                },
                // Forward-only branch (skips one instruction): always
                // terminates, still exercises block boundaries.
                _ if k + 2 < len => {
                    if lcg(&mut s).is_multiple_of(2) {
                        Beq {
                            rs1,
                            rs2,
                            offset: 8,
                        }
                    } else {
                        Bne {
                            rs1,
                            rs2,
                            offset: 8,
                        }
                    }
                }
                _ => Addi { rd, rs1, imm: 1 },
            };
            prog.push(inst);
        }
        prog.push(Ecall);
        prog
    }

    #[test]
    fn cached_dispatch_matches_plain_interpreter_on_random_programs() {
        for seed in 0..20u64 {
            let prog = random_program(seed * 7 + 1, 200);
            let code: Vec<u32> = prog.iter().map(|&i| encode(i)).collect();
            let mut mem_fast = FlatMemory::new(4096);
            mem_fast.load_words(0, &code);
            let mut mem_slow = mem_fast.clone();

            let mut fast = Cpu::new(0);
            let mut slow = Cpu::new(0);
            slow.set_block_cache_enabled(false);

            let rf = fast.run(&mut mem_fast, 100_000);
            let rs = slow.run(&mut mem_slow, 100_000);
            assert_eq!(rf, rs, "seed {seed}: same halt/trap");
            assert_eq!(fast, slow, "seed {seed}: same architectural state");
            assert_eq!(fast.cycles, slow.cycles, "seed {seed}: same cycles");
            assert_eq!(fast.instret, slow.instret, "seed {seed}: same instret");
            assert_eq!(mem_fast, mem_slow, "seed {seed}: same memory");
        }
    }

    #[test]
    fn self_modifying_code_is_seen_by_cached_dispatch() {
        // The program overwrites an instruction later in its own
        // straight-line block; the verify fetch must pick up the new
        // word on the very instruction the plain interpreter would.
        let patched = encode(Addi {
            rd: 5,
            rs1: 0,
            imm: 77,
        });
        let lo = {
            let lo = (patched & 0xFFF) as i32;
            if lo >= 2048 {
                lo - 4096
            } else {
                lo
            }
        };
        let hi = (patched as i32).wrapping_sub(lo);
        let prog = [
            Lui { rd: 1, imm: hi },
            Addi {
                rd: 1,
                rs1: 1,
                imm: lo,
            },
            Sw {
                rs1: 0,
                rs2: 1,
                offset: 24, // overwrites word index 6 below
            },
            Addi {
                rd: 2,
                rs1: 0,
                imm: 1,
            },
            Addi {
                rd: 3,
                rs1: 0,
                imm: 2,
            },
            Addi {
                rd: 4,
                rs1: 0,
                imm: 3,
            },
            Addi {
                rd: 5,
                rs1: 0,
                imm: 0,
            }, // becomes addi x5, x0, 77
            Ecall,
        ];
        let code: Vec<u32> = prog.iter().map(|&i| encode(i)).collect();

        let mut mem_fast = FlatMemory::new(4096);
        mem_fast.load_words(0, &code);
        let mut mem_slow = mem_fast.clone();
        let mut fast = Cpu::new(0);
        let mut slow = Cpu::new(0);
        slow.set_block_cache_enabled(false);

        assert_eq!(fast.run(&mut mem_fast, 10_000).unwrap(), Halt::Ecall);
        assert_eq!(slow.run(&mut mem_slow, 10_000).unwrap(), Halt::Ecall);
        assert_eq!(fast.reg(5), 77, "patched instruction must execute");
        assert_eq!(fast, slow);
        assert_eq!(mem_fast, mem_slow);
    }

    #[test]
    fn store_rewriting_code_inside_a_compiled_trace() {
        // A hot loop whose body *is* a compiled trace stores, on one
        // specific iteration, a new instruction word over the loop's own
        // nop — from inside the trace. The executor must side-exit on
        // its own invalidation, re-execute the freshly patched word
        // exactly as the seed interpreter does (bit-identical state),
        // and recompile a trace containing the patched op.
        let patched = encode(Addi {
            rd: 5,
            rs1: 0,
            imm: 77,
        });
        let lo = {
            let lo = (patched & 0xFFF) as i32;
            if lo >= 2048 {
                lo - 4096
            } else {
                lo
            }
        };
        let hi = (patched as i32).wrapping_sub(lo);
        // x6 = scratch(1024) for every iteration except x1 == 20, where
        // a branch-free select (xor/sltiu/mul) redirects it at the nop
        // at pc 52 — so the store executes on the trace's hot path.
        let prog = [
            Addi {
                rd: 1,
                rs1: 0,
                imm: 0,
            },
            Addi {
                rd: 2,
                rs1: 0,
                imm: 30,
            },
            Lui { rd: 3, imm: hi },
            Addi {
                rd: 3,
                rs1: 3,
                imm: lo,
            },
            Addi {
                rd: 4,
                rs1: 0,
                imm: 20,
            },
            Addi {
                rd: 10,
                rs1: 0,
                imm: 1024,
            },
            Addi {
                rd: 9,
                rs1: 0,
                imm: 52 - 1024,
            },
            // loop @ pc 28
            Addi {
                rd: 1,
                rs1: 1,
                imm: 1,
            },
            Xor {
                rd: 7,
                rs1: 1,
                rs2: 4,
            },
            Sltiu {
                rd: 7,
                rs1: 7,
                imm: 1,
            },
            Mul {
                rd: 8,
                rs1: 7,
                rs2: 9,
            },
            Add {
                rd: 6,
                rs1: 10,
                rs2: 8,
            },
            Sw {
                rs1: 6,
                rs2: 3,
                offset: 0,
            },
            Addi {
                rd: 0,
                rs1: 0,
                imm: 0,
            }, // pc 52: becomes addi x5, x0, 77
            Bne {
                rs1: 1,
                rs2: 2,
                offset: -28,
            },
            Ecall,
        ];
        let code: Vec<u32> = prog.iter().map(|&i| encode(i)).collect();
        let mut mem_fast = FlatMemory::new(4096);
        mem_fast.load_words(0, &code);
        let mut mem_slow = mem_fast.clone();
        let mut fast = Cpu::new(0);
        let mut slow = Cpu::new(0);
        slow.set_block_cache_enabled(false);
        assert_eq!(fast.run(&mut mem_fast, 100_000).unwrap(), Halt::Ecall);
        assert_eq!(slow.run(&mut mem_slow, 100_000).unwrap(), Halt::Ecall);
        assert_eq!(fast.reg(5), 77, "patched instruction must execute");
        assert_eq!(fast, slow, "SMC inside a trace must stay bit-identical");
        assert_eq!(mem_fast, mem_slow);
        let perf = fast.perf_counters();
        assert!(
            perf.trace_exit_invalidated >= 1,
            "the rewriting store must be caught mid-trace: {perf:?}"
        );
        assert!(
            perf.traces_compiled >= 2,
            "patched loop must recompile: {perf:?}"
        );
    }

    #[test]
    fn block_cache_counters_and_perf_csrs() {
        // A loop re-enters its block: at least one miss (first decode)
        // and many hits, all visible through the CSR surface.
        let (cpu, _) = run_program(&[
            Addi {
                rd: 1,
                rs1: 0,
                imm: 0,
            },
            Addi {
                rd: 2,
                rs1: 0,
                imm: 20,
            },
            Add {
                rd: 1,
                rs1: 1,
                rs2: 2,
            },
            Addi {
                rd: 2,
                rs1: 2,
                imm: -1,
            },
            Bne {
                rs1: 2,
                rs2: 0,
                offset: -8,
            },
            Csrrs {
                rd: 20,
                rs1: 0,
                csr: csr::BLOCK_HITS,
            },
            Csrrs {
                rd: 21,
                rs1: 0,
                csr: csr::BLOCK_MISSES,
            },
            Ecall,
        ]);
        let perf = cpu.perf_counters();
        assert_eq!(perf.cycles, cpu.cycles);
        assert_eq!(perf.instret, cpu.instret);
        assert!(perf.block_misses >= 1, "first entry decodes");
        assert!(
            perf.block_hits >= HOT_THRESHOLD as u64 / 2,
            "loop re-enters cached block until the trace tier takes over"
        );
        assert!(perf.block_hit_rate() > 0.5);
        assert!(
            perf.traces_compiled >= 1 && perf.trace_hits > HOT_THRESHOLD as u64,
            "hot loop compiles a trace and iterates in it: {perf:?}"
        );
        assert!(
            perf.trace_exit_guard >= 1,
            "loop exit retires against the prediction: {perf:?}"
        );
        assert!(cpu.reg(20) >= HOT_THRESHOLD / 2, "hit counter CSR");
        assert!(cpu.reg(21) >= 1, "firmware-visible miss counter");
    }

    #[test]
    fn disabled_cache_runs_pure_seed_path() {
        let mut mem = FlatMemory::new(1024);
        mem.load_words(
            0,
            &[
                encode(Addi {
                    rd: 1,
                    rs1: 0,
                    imm: 4,
                }),
                encode(Ecall),
            ],
        );
        let mut cpu = Cpu::new(0);
        cpu.set_block_cache_enabled(false);
        assert!(!cpu.block_cache_enabled());
        assert_eq!(cpu.run(&mut mem, 1000).unwrap(), Halt::Ecall);
        let perf = cpu.perf_counters();
        assert_eq!(perf.block_hits, 0);
        assert_eq!(perf.block_misses, 0);
    }
}

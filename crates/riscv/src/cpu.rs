//! The RV32IM interpreter core with a simple cycle-accounting model —
//! the host processor of the gem5-style full-system simulation (paper §5).

use crate::bus::{Bus, BusFault};
use crate::isa::{decode, Instruction};
use std::fmt;

/// CSR addresses implemented by the core.
pub mod csr {
    /// Cycle counter (read-only).
    pub const MCYCLE: u16 = 0xB00;
    /// Retired-instruction counter (read-only).
    pub const MINSTRET: u16 = 0xB02;
    /// Scratch register.
    pub const MSCRATCH: u16 = 0x340;
}

/// Why execution stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Halt {
    /// An `ecall` was executed (the firmware's "done" convention).
    Ecall,
    /// An `ebreak` was executed.
    Ebreak,
    /// The cycle budget ran out.
    CycleLimit,
}

/// A trap: the program did something the machine cannot continue from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trap {
    /// Instruction fetch or decode failed.
    IllegalInstruction {
        /// Program counter of the offending instruction.
        pc: u32,
        /// The raw word, if the fetch itself succeeded.
        word: Option<u32>,
    },
    /// A data access faulted.
    MemoryFault {
        /// Program counter of the faulting instruction.
        pc: u32,
        /// The bus fault.
        fault: BusFault,
    },
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trap::IllegalInstruction { pc, word } => {
                write!(f, "illegal instruction at {pc:#010x} ({word:?})")
            }
            Trap::MemoryFault { pc, fault } => write!(f, "{fault} at pc {pc:#010x}"),
        }
    }
}

impl std::error::Error for Trap {}

/// Per-class instruction latencies \[cycles\] — the timing model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CycleModel {
    /// ALU / branch-not-taken.
    pub alu: u64,
    /// Taken branch / jump (pipeline refill).
    pub branch_taken: u64,
    /// Load from memory.
    pub load: u64,
    /// Store to memory.
    pub store: u64,
    /// Multiply.
    pub mul: u64,
    /// Divide / remainder.
    pub div: u64,
}

impl Default for CycleModel {
    /// A small in-order core: 1-cycle ALU, 3-cycle taken branches,
    /// 2/1-cycle load/store (hits), 3-cycle multiply, 20-cycle divide.
    fn default() -> Self {
        CycleModel {
            alu: 1,
            branch_taken: 3,
            load: 2,
            store: 1,
            mul: 3,
            div: 20,
        }
    }
}

/// A point-in-time copy of the complete architectural and timing state
/// of a [`Cpu`], for checkpoint/restore (fault-injection campaigns
/// resume from the last checkpoint instead of replaying the warm-up
/// prefix).
///
/// A restored core is indistinguishable from the original: registers,
/// `pc`, CSRs, the `wfi` sleep flag and both hardware counters all
/// round-trip, so a resumed run continues the exact same trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuSnapshot {
    regs: [u32; 32],
    pc: u32,
    cycles: u64,
    instret: u64,
    cycle_model: CycleModel,
    mscratch: u32,
    waiting_for_interrupt: bool,
}

impl CpuSnapshot {
    /// Cycle counter value at the time the snapshot was taken.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }
}

/// The RV32IM processor state.
#[derive(Debug, Clone, PartialEq)]
pub struct Cpu {
    /// General-purpose registers; `x0` is hardwired to zero.
    regs: [u32; 32],
    /// Program counter.
    pub pc: u32,
    /// Cycle counter.
    pub cycles: u64,
    /// Retired instruction counter.
    pub instret: u64,
    /// Timing model.
    pub cycle_model: CycleModel,
    mscratch: u32,
    /// Set while the core sleeps in `wfi`.
    pub waiting_for_interrupt: bool,
}

impl Cpu {
    /// Creates a CPU with zeroed registers at `pc = reset_vector`.
    pub fn new(reset_vector: u32) -> Self {
        Cpu {
            regs: [0; 32],
            pc: reset_vector,
            cycles: 0,
            instret: 0,
            cycle_model: CycleModel::default(),
            mscratch: 0,
            waiting_for_interrupt: false,
        }
    }

    /// Reads register `r` (x0 reads as 0).
    pub fn reg(&self, r: u8) -> u32 {
        if r == 0 {
            0
        } else {
            self.regs[r as usize]
        }
    }

    /// Writes register `r` (writes to x0 are discarded).
    pub fn set_reg(&mut self, r: u8, value: u32) {
        if r != 0 {
            self.regs[r as usize] = value;
        }
    }

    /// Delivers an interrupt: wakes the core if it is in `wfi`.
    pub fn interrupt(&mut self) {
        self.waiting_for_interrupt = false;
    }

    /// Captures the complete architectural + timing state.
    pub fn snapshot(&self) -> CpuSnapshot {
        CpuSnapshot {
            regs: self.regs,
            pc: self.pc,
            cycles: self.cycles,
            instret: self.instret,
            cycle_model: self.cycle_model,
            mscratch: self.mscratch,
            waiting_for_interrupt: self.waiting_for_interrupt,
        }
    }

    /// Restores the state captured by [`Cpu::snapshot`].
    pub fn restore(&mut self, snapshot: &CpuSnapshot) {
        self.regs = snapshot.regs;
        self.pc = snapshot.pc;
        self.cycles = snapshot.cycles;
        self.instret = snapshot.instret;
        self.cycle_model = snapshot.cycle_model;
        self.mscratch = snapshot.mscratch;
        self.waiting_for_interrupt = snapshot.waiting_for_interrupt;
    }

    fn read_csr(&self, addr: u16) -> u32 {
        match addr {
            csr::MCYCLE => self.cycles as u32,
            csr::MINSTRET => self.instret as u32,
            csr::MSCRATCH => self.mscratch,
            _ => 0,
        }
    }

    fn write_csr(&mut self, addr: u16, value: u32) {
        if addr == csr::MSCRATCH {
            self.mscratch = value;
        }
    }

    /// Executes one instruction.
    ///
    /// Returns `Ok(Some(halt))` when the program signalled completion
    /// (`ecall`/`ebreak`), `Ok(None)` to continue.
    ///
    /// # Errors
    ///
    /// Returns a [`Trap`] on illegal instructions or memory faults.
    pub fn step<B: Bus + ?Sized>(&mut self, bus: &mut B) -> Result<Option<Halt>, Trap> {
        if self.waiting_for_interrupt {
            // Sleeping: time passes, nothing retires.
            self.cycles += 1;
            return Ok(None);
        }
        let pc = self.pc;
        let word = bus
            .load_word(pc)
            .map_err(|fault| Trap::MemoryFault { pc, fault })?;
        let inst = decode(word).map_err(|_| Trap::IllegalInstruction {
            pc,
            word: Some(word),
        })?;
        let mut next_pc = pc.wrapping_add(4);
        let model = self.cycle_model;
        let mut cost = model.alu;

        use Instruction::*;
        match inst {
            Lui { rd, imm } => self.set_reg(rd, imm as u32),
            Auipc { rd, imm } => self.set_reg(rd, pc.wrapping_add(imm as u32)),
            Jal { rd, offset } => {
                self.set_reg(rd, next_pc);
                next_pc = pc.wrapping_add(offset as u32);
                cost = model.branch_taken;
            }
            Jalr { rd, rs1, offset } => {
                let target = self.reg(rs1).wrapping_add(offset as u32) & !1;
                self.set_reg(rd, next_pc);
                next_pc = target;
                cost = model.branch_taken;
            }
            Beq { rs1, rs2, offset } => {
                if self.reg(rs1) == self.reg(rs2) {
                    next_pc = pc.wrapping_add(offset as u32);
                    cost = model.branch_taken;
                }
            }
            Bne { rs1, rs2, offset } => {
                if self.reg(rs1) != self.reg(rs2) {
                    next_pc = pc.wrapping_add(offset as u32);
                    cost = model.branch_taken;
                }
            }
            Blt { rs1, rs2, offset } => {
                if (self.reg(rs1) as i32) < (self.reg(rs2) as i32) {
                    next_pc = pc.wrapping_add(offset as u32);
                    cost = model.branch_taken;
                }
            }
            Bge { rs1, rs2, offset } => {
                if (self.reg(rs1) as i32) >= (self.reg(rs2) as i32) {
                    next_pc = pc.wrapping_add(offset as u32);
                    cost = model.branch_taken;
                }
            }
            Bltu { rs1, rs2, offset } => {
                if self.reg(rs1) < self.reg(rs2) {
                    next_pc = pc.wrapping_add(offset as u32);
                    cost = model.branch_taken;
                }
            }
            Bgeu { rs1, rs2, offset } => {
                if self.reg(rs1) >= self.reg(rs2) {
                    next_pc = pc.wrapping_add(offset as u32);
                    cost = model.branch_taken;
                }
            }
            Lb { rd, rs1, offset } => {
                let addr = self.reg(rs1).wrapping_add(offset as u32);
                let v = bus
                    .load_byte(addr)
                    .map_err(|fault| Trap::MemoryFault { pc, fault })?;
                self.set_reg(rd, v as i8 as i32 as u32);
                cost = model.load;
            }
            Lh { rd, rs1, offset } => {
                let addr = self.reg(rs1).wrapping_add(offset as u32);
                let v = bus
                    .load_half(addr)
                    .map_err(|fault| Trap::MemoryFault { pc, fault })?;
                self.set_reg(rd, v as i16 as i32 as u32);
                cost = model.load;
            }
            Lw { rd, rs1, offset } => {
                let addr = self.reg(rs1).wrapping_add(offset as u32);
                let v = bus
                    .load_word(addr)
                    .map_err(|fault| Trap::MemoryFault { pc, fault })?;
                self.set_reg(rd, v);
                cost = model.load;
            }
            Lbu { rd, rs1, offset } => {
                let addr = self.reg(rs1).wrapping_add(offset as u32);
                let v = bus
                    .load_byte(addr)
                    .map_err(|fault| Trap::MemoryFault { pc, fault })?;
                self.set_reg(rd, v as u32);
                cost = model.load;
            }
            Lhu { rd, rs1, offset } => {
                let addr = self.reg(rs1).wrapping_add(offset as u32);
                let v = bus
                    .load_half(addr)
                    .map_err(|fault| Trap::MemoryFault { pc, fault })?;
                self.set_reg(rd, v as u32);
                cost = model.load;
            }
            Sb { rs1, rs2, offset } => {
                let addr = self.reg(rs1).wrapping_add(offset as u32);
                bus.store_byte(addr, self.reg(rs2) as u8)
                    .map_err(|fault| Trap::MemoryFault { pc, fault })?;
                cost = model.store;
            }
            Sh { rs1, rs2, offset } => {
                let addr = self.reg(rs1).wrapping_add(offset as u32);
                bus.store_half(addr, self.reg(rs2) as u16)
                    .map_err(|fault| Trap::MemoryFault { pc, fault })?;
                cost = model.store;
            }
            Sw { rs1, rs2, offset } => {
                let addr = self.reg(rs1).wrapping_add(offset as u32);
                bus.store_word(addr, self.reg(rs2))
                    .map_err(|fault| Trap::MemoryFault { pc, fault })?;
                cost = model.store;
            }
            Addi { rd, rs1, imm } => self.set_reg(rd, self.reg(rs1).wrapping_add(imm as u32)),
            Slti { rd, rs1, imm } => self.set_reg(rd, ((self.reg(rs1) as i32) < imm) as u32),
            Sltiu { rd, rs1, imm } => self.set_reg(rd, (self.reg(rs1) < imm as u32) as u32),
            Xori { rd, rs1, imm } => self.set_reg(rd, self.reg(rs1) ^ imm as u32),
            Ori { rd, rs1, imm } => self.set_reg(rd, self.reg(rs1) | imm as u32),
            Andi { rd, rs1, imm } => self.set_reg(rd, self.reg(rs1) & imm as u32),
            Slli { rd, rs1, shamt } => self.set_reg(rd, self.reg(rs1) << shamt),
            Srli { rd, rs1, shamt } => self.set_reg(rd, self.reg(rs1) >> shamt),
            Srai { rd, rs1, shamt } => self.set_reg(rd, ((self.reg(rs1) as i32) >> shamt) as u32),
            Add { rd, rs1, rs2 } => self.set_reg(rd, self.reg(rs1).wrapping_add(self.reg(rs2))),
            Sub { rd, rs1, rs2 } => self.set_reg(rd, self.reg(rs1).wrapping_sub(self.reg(rs2))),
            Sll { rd, rs1, rs2 } => self.set_reg(rd, self.reg(rs1) << (self.reg(rs2) & 0x1f)),
            Slt { rd, rs1, rs2 } => {
                self.set_reg(rd, ((self.reg(rs1) as i32) < (self.reg(rs2) as i32)) as u32)
            }
            Sltu { rd, rs1, rs2 } => self.set_reg(rd, (self.reg(rs1) < self.reg(rs2)) as u32),
            Xor { rd, rs1, rs2 } => self.set_reg(rd, self.reg(rs1) ^ self.reg(rs2)),
            Srl { rd, rs1, rs2 } => self.set_reg(rd, self.reg(rs1) >> (self.reg(rs2) & 0x1f)),
            Sra { rd, rs1, rs2 } => self.set_reg(
                rd,
                ((self.reg(rs1) as i32) >> (self.reg(rs2) & 0x1f)) as u32,
            ),
            Or { rd, rs1, rs2 } => self.set_reg(rd, self.reg(rs1) | self.reg(rs2)),
            And { rd, rs1, rs2 } => self.set_reg(rd, self.reg(rs1) & self.reg(rs2)),
            Mul { rd, rs1, rs2 } => {
                self.set_reg(rd, self.reg(rs1).wrapping_mul(self.reg(rs2)));
                cost = model.mul;
            }
            Mulh { rd, rs1, rs2 } => {
                let p = (self.reg(rs1) as i32 as i64) * (self.reg(rs2) as i32 as i64);
                self.set_reg(rd, (p >> 32) as u32);
                cost = model.mul;
            }
            Mulhsu { rd, rs1, rs2 } => {
                let p = (self.reg(rs1) as i32 as i64) * (self.reg(rs2) as u64 as i64);
                self.set_reg(rd, (p >> 32) as u32);
                cost = model.mul;
            }
            Mulhu { rd, rs1, rs2 } => {
                let p = (self.reg(rs1) as u64) * (self.reg(rs2) as u64);
                self.set_reg(rd, (p >> 32) as u32);
                cost = model.mul;
            }
            Div { rd, rs1, rs2 } => {
                let a = self.reg(rs1) as i32;
                let b = self.reg(rs2) as i32;
                let q = if b == 0 {
                    -1
                } else if a == i32::MIN && b == -1 {
                    i32::MIN
                } else {
                    a / b
                };
                self.set_reg(rd, q as u32);
                cost = model.div;
            }
            Divu { rd, rs1, rs2 } => {
                let b = self.reg(rs2);
                let q = self.reg(rs1).checked_div(b).unwrap_or(u32::MAX);
                self.set_reg(rd, q);
                cost = model.div;
            }
            Rem { rd, rs1, rs2 } => {
                let a = self.reg(rs1) as i32;
                let b = self.reg(rs2) as i32;
                let r = if b == 0 {
                    a
                } else if a == i32::MIN && b == -1 {
                    0
                } else {
                    a % b
                };
                self.set_reg(rd, r as u32);
                cost = model.div;
            }
            Remu { rd, rs1, rs2 } => {
                let b = self.reg(rs2);
                let r = if b == 0 {
                    self.reg(rs1)
                } else {
                    self.reg(rs1) % b
                };
                self.set_reg(rd, r);
                cost = model.div;
            }
            Fence => {}
            Ecall => {
                self.pc = next_pc;
                self.cycles += cost;
                self.instret += 1;
                return Ok(Some(Halt::Ecall));
            }
            Ebreak => {
                self.pc = next_pc;
                self.cycles += cost;
                self.instret += 1;
                return Ok(Some(Halt::Ebreak));
            }
            Wfi => {
                self.waiting_for_interrupt = true;
            }
            Csrrw { rd, rs1, csr } => {
                let old = self.read_csr(csr);
                self.write_csr(csr, self.reg(rs1));
                self.set_reg(rd, old);
            }
            Csrrs { rd, rs1, csr } => {
                let old = self.read_csr(csr);
                if rs1 != 0 {
                    self.write_csr(csr, old | self.reg(rs1));
                }
                self.set_reg(rd, old);
            }
            Csrrc { rd, rs1, csr } => {
                let old = self.read_csr(csr);
                if rs1 != 0 {
                    self.write_csr(csr, old & !self.reg(rs1));
                }
                self.set_reg(rd, old);
            }
        }

        self.pc = next_pc;
        self.cycles += cost;
        self.instret += 1;
        Ok(None)
    }

    /// Runs until the program halts or `max_cycles` elapse.
    ///
    /// # Errors
    ///
    /// Returns the first [`Trap`] raised.
    pub fn run<B: Bus + ?Sized>(&mut self, bus: &mut B, max_cycles: u64) -> Result<Halt, Trap> {
        let limit = self.cycles + max_cycles;
        while self.cycles < limit {
            if let Some(halt) = self.step(bus)? {
                return Ok(halt);
            }
        }
        Ok(Halt::CycleLimit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::FlatMemory;
    use crate::isa::{encode, Instruction::*};

    fn run_program(words: &[Instruction]) -> (Cpu, FlatMemory) {
        let mut mem = FlatMemory::new(4096);
        let code: Vec<u32> = words.iter().map(|&i| encode(i)).collect();
        mem.load_words(0, &code);
        let mut cpu = Cpu::new(0);
        let halt = cpu.run(&mut mem, 100_000).expect("no trap");
        assert_eq!(halt, Halt::Ecall, "programs should end with ecall");
        (cpu, mem)
    }

    #[test]
    fn arithmetic_basics() {
        let (cpu, _) = run_program(&[
            Addi {
                rd: 1,
                rs1: 0,
                imm: 40,
            },
            Addi {
                rd: 2,
                rs1: 0,
                imm: 2,
            },
            Add {
                rd: 3,
                rs1: 1,
                rs2: 2,
            },
            Sub {
                rd: 4,
                rs1: 1,
                rs2: 2,
            },
            Mul {
                rd: 5,
                rs1: 1,
                rs2: 2,
            },
            Div {
                rd: 6,
                rs1: 1,
                rs2: 2,
            },
            Rem {
                rd: 7,
                rs1: 1,
                rs2: 2,
            },
            Ecall,
        ]);
        assert_eq!(cpu.reg(3), 42);
        assert_eq!(cpu.reg(4), 38);
        assert_eq!(cpu.reg(5), 80);
        assert_eq!(cpu.reg(6), 20);
        assert_eq!(cpu.reg(7), 0);
    }

    #[test]
    fn x0_is_hardwired_zero() {
        let (cpu, _) = run_program(&[
            Addi {
                rd: 0,
                rs1: 0,
                imm: 99,
            },
            Ecall,
        ]);
        assert_eq!(cpu.reg(0), 0);
    }

    #[test]
    fn memory_load_store() {
        let (cpu, mut mem) = run_program(&[
            Addi {
                rd: 1,
                rs1: 0,
                imm: 0x123,
            },
            Sw {
                rs1: 0,
                rs2: 1,
                offset: 256,
            },
            Lw {
                rd: 2,
                rs1: 0,
                offset: 256,
            },
            Lb {
                rd: 3,
                rs1: 0,
                offset: 256,
            },
            Lhu {
                rd: 4,
                rs1: 0,
                offset: 256,
            },
            Ecall,
        ]);
        assert_eq!(cpu.reg(2), 0x123);
        assert_eq!(cpu.reg(3), 0x23);
        assert_eq!(cpu.reg(4), 0x123);
        assert_eq!(mem.load_word(256).unwrap(), 0x123);
    }

    #[test]
    fn sign_extension_on_loads() {
        let (cpu, _) = run_program(&[
            Addi {
                rd: 1,
                rs1: 0,
                imm: -1,
            }, // 0xFFFFFFFF
            Sw {
                rs1: 0,
                rs2: 1,
                offset: 128,
            },
            Lb {
                rd: 2,
                rs1: 0,
                offset: 128,
            },
            Lbu {
                rd: 3,
                rs1: 0,
                offset: 128,
            },
            Lh {
                rd: 4,
                rs1: 0,
                offset: 128,
            },
            Ecall,
        ]);
        assert_eq!(cpu.reg(2), 0xFFFF_FFFF);
        assert_eq!(cpu.reg(3), 0xFF);
        assert_eq!(cpu.reg(4), 0xFFFF_FFFF);
    }

    #[test]
    fn branch_loop_sums() {
        // sum 1..=10 via a loop.
        let (cpu, _) = run_program(&[
            Addi {
                rd: 1,
                rs1: 0,
                imm: 0,
            }, // sum
            Addi {
                rd: 2,
                rs1: 0,
                imm: 1,
            }, // i
            Addi {
                rd: 3,
                rs1: 0,
                imm: 10,
            }, // limit
            // loop: sum += i; i++; if i <= limit goto loop
            Add {
                rd: 1,
                rs1: 1,
                rs2: 2,
            },
            Addi {
                rd: 2,
                rs1: 2,
                imm: 1,
            },
            Bge {
                rs1: 3,
                rs2: 2,
                offset: -8,
            },
            Ecall,
        ]);
        assert_eq!(cpu.reg(1), 55);
    }

    #[test]
    fn jal_and_jalr_link() {
        let (cpu, _) = run_program(&[
            Jal { rd: 1, offset: 8 }, // skip next instruction
            Addi {
                rd: 2,
                rs1: 0,
                imm: 99,
            }, // skipped
            Addi {
                rd: 3,
                rs1: 0,
                imm: 7,
            },
            Ecall,
        ]);
        assert_eq!(cpu.reg(2), 0, "jal must skip");
        assert_eq!(cpu.reg(3), 7);
        assert_eq!(cpu.reg(1), 4, "link register holds return address");
    }

    #[test]
    fn shifts_and_logic() {
        let (cpu, _) = run_program(&[
            Addi {
                rd: 1,
                rs1: 0,
                imm: -8,
            },
            Srai {
                rd: 2,
                rs1: 1,
                shamt: 1,
            },
            Srli {
                rd: 3,
                rs1: 1,
                shamt: 28,
            },
            Slli {
                rd: 4,
                rs1: 1,
                shamt: 1,
            },
            Andi {
                rd: 5,
                rs1: 1,
                imm: 0xf,
            },
            Ecall,
        ]);
        assert_eq!(cpu.reg(2) as i32, -4);
        assert_eq!(cpu.reg(3), 0xF);
        assert_eq!(cpu.reg(4) as i32, -16);
        assert_eq!(cpu.reg(5), 8);
    }

    #[test]
    fn division_edge_cases() {
        let (cpu, _) = run_program(&[
            Addi {
                rd: 1,
                rs1: 0,
                imm: 7,
            },
            Addi {
                rd: 2,
                rs1: 0,
                imm: 0,
            },
            Div {
                rd: 3,
                rs1: 1,
                rs2: 2,
            }, // div by zero -> -1
            Remu {
                rd: 4,
                rs1: 1,
                rs2: 2,
            }, // rem by zero -> dividend
            Lui {
                rd: 5,
                imm: i32::MIN,
            }, // 0x80000000
            Addi {
                rd: 6,
                rs1: 0,
                imm: -1,
            },
            Div {
                rd: 7,
                rs1: 5,
                rs2: 6,
            }, // overflow -> i32::MIN
            Rem {
                rd: 8,
                rs1: 5,
                rs2: 6,
            }, // overflow -> 0
            Ecall,
        ]);
        assert_eq!(cpu.reg(3) as i32, -1);
        assert_eq!(cpu.reg(4), 7);
        assert_eq!(cpu.reg(7), 0x8000_0000);
        assert_eq!(cpu.reg(8), 0);
    }

    #[test]
    fn cycle_accounting() {
        let (cpu, _) = run_program(&[
            Addi {
                rd: 1,
                rs1: 0,
                imm: 1,
            }, // 1 cycle
            Mul {
                rd: 2,
                rs1: 1,
                rs2: 1,
            }, // 3 cycles
            Lw {
                rd: 3,
                rs1: 0,
                offset: 64,
            }, // 2 cycles
            Ecall, // 1 cycle
        ]);
        assert_eq!(cpu.cycles, 1 + 3 + 2 + 1);
        assert_eq!(cpu.instret, 4);
    }

    #[test]
    fn csr_counters_readable() {
        let (cpu, _) = run_program(&[
            Addi {
                rd: 1,
                rs1: 0,
                imm: 5,
            },
            Csrrs {
                rd: 2,
                rs1: 0,
                csr: csr::MCYCLE,
            },
            Csrrs {
                rd: 3,
                rs1: 0,
                csr: csr::MINSTRET,
            },
            Ecall,
        ]);
        assert_eq!(cpu.reg(2), 1, "one cycle retired before the read");
        assert_eq!(cpu.reg(3), 2, "addi + csrrs retired before the read");
    }

    #[test]
    fn wfi_sleeps_until_interrupt() {
        let mut mem = FlatMemory::new(256);
        mem.load_words(
            0,
            &[
                encode(Wfi),
                encode(Addi {
                    rd: 1,
                    rs1: 0,
                    imm: 9,
                }),
                encode(Ecall),
            ],
        );
        let mut cpu = Cpu::new(0);
        // Without an interrupt the core never retires past the wfi.
        let halt = cpu.run(&mut mem, 50).expect("no trap");
        assert_eq!(halt, Halt::CycleLimit);
        assert_eq!(cpu.reg(1), 0);
        // Deliver the interrupt: execution resumes.
        cpu.interrupt();
        let halt = cpu.run(&mut mem, 50).expect("no trap");
        assert_eq!(halt, Halt::Ecall);
        assert_eq!(cpu.reg(1), 9);
    }

    #[test]
    fn snapshot_restore_resumes_identical_trajectory() {
        // Run k steps, snapshot, keep running to the end; then restore a
        // second core from the snapshot and run it to the end too. Both
        // must halt in exactly the same state.
        let mut mem = FlatMemory::new(4096);
        let code: Vec<u32> = [
            Addi {
                rd: 1,
                rs1: 0,
                imm: 0,
            },
            Addi {
                rd: 2,
                rs1: 0,
                imm: 37,
            },
            // loop: x1 += x2; x2 -= 1; bnez x2 loop
            Add {
                rd: 1,
                rs1: 1,
                rs2: 2,
            },
            Addi {
                rd: 2,
                rs1: 2,
                imm: -1,
            },
            Bne {
                rs1: 2,
                rs2: 0,
                offset: -8,
            },
            Ecall,
        ]
        .iter()
        .map(|&i| encode(i))
        .collect();
        mem.load_words(0, &code);
        let mut cpu = Cpu::new(0);
        for _ in 0..25 {
            assert_eq!(cpu.step(&mut mem).expect("no trap"), None);
        }
        let snap = cpu.snapshot();
        assert_eq!(snap.cycles(), cpu.cycles);
        let halt = cpu.run(&mut mem, 100_000).expect("no trap");
        assert_eq!(halt, Halt::Ecall);

        let mut resumed = Cpu::new(0);
        resumed.restore(&snap);
        let halt = resumed.run(&mut mem, 100_000).expect("no trap");
        assert_eq!(halt, Halt::Ecall);
        assert_eq!(resumed, cpu, "restored core must converge to same state");
        assert_eq!(resumed.reg(1), (1..=37).sum::<u32>());
    }

    #[test]
    fn illegal_instruction_traps() {
        let mut mem = FlatMemory::new(64);
        mem.load_words(0, &[0xFFFF_FFFF]);
        let mut cpu = Cpu::new(0);
        match cpu.step(&mut mem) {
            Err(Trap::IllegalInstruction { pc: 0, .. }) => {}
            other => panic!("expected trap, got {other:?}"),
        }
    }

    #[test]
    fn memory_fault_traps() {
        let mut mem = FlatMemory::new(64);
        mem.load_words(
            0,
            &[encode(Lw {
                rd: 1,
                rs1: 0,
                offset: 2044,
            })],
        );
        let mut cpu = Cpu::new(0);
        match cpu.step(&mut mem) {
            Err(Trap::MemoryFault { .. }) => {}
            other => panic!("expected fault, got {other:?}"),
        }
    }
}

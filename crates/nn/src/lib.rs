//! # neuropulsim-nn
//!
//! The digital neural-network reference: a dense MLP trained with SGD on
//! a synthetic edge-AI dataset. The trained weight matrices are what the
//! photonic MVM cores get programmed with; [`mlp::Mlp::forward_with`]
//! lets the same network run through *any* matrix–vector multiply — the
//! hook the accuracy experiments (E3, E10) use to swap in the photonic
//! path.
//!
//! # Examples
//!
//! ```
//! use neuropulsim_nn::dataset::{synthetic_digits, DigitsConfig};
//! use neuropulsim_nn::mlp::Mlp;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let data = synthetic_digits(&mut rng, DigitsConfig::default());
//! let (train, test) = data.split(0.8);
//! let mut mlp = Mlp::new(&mut rng, &[16, 16, 4]);
//! mlp.fit(&train, 5, 0.05);
//! assert!(mlp.accuracy(&test) > 0.5);
//! ```

#![warn(missing_docs)]

pub mod conv;
pub mod dataset;
pub mod mlp;

//! 2-D convolution via im2col + GeMM — how convolutional workloads map
//! onto a matrix-multiply accelerator (the "parallel convolutional
//! processing" of Feldmann et al. 2021, which the paper builds on: the
//! photonic tensor core computes convolutions as patch-matrix products).
//!
//! `im2col` unrolls each receptive field into a column; the kernel bank
//! becomes a `K x k*k` matrix; one GeMM computes all `K` feature maps at
//! once — exactly the operation the photonic MVM/GeMM core accelerates.

use neuropulsim_linalg::RMatrix;

/// A single-channel 2-D image (row-major).
#[derive(Debug, Clone, PartialEq)]
pub struct Image {
    /// Height in pixels.
    pub height: usize,
    /// Width in pixels.
    pub width: usize,
    /// Row-major pixel values.
    pub pixels: Vec<f64>,
}

impl Image {
    /// Creates an image from row-major pixels.
    ///
    /// # Panics
    ///
    /// Panics if `pixels.len() != height * width`.
    pub fn new(height: usize, width: usize, pixels: Vec<f64>) -> Self {
        assert_eq!(pixels.len(), height * width, "pixel count mismatch");
        Image {
            height,
            width,
            pixels,
        }
    }

    /// Builds an image from a closure over `(row, col)`.
    pub fn from_fn<F: FnMut(usize, usize) -> f64>(height: usize, width: usize, mut f: F) -> Self {
        let pixels = (0..height * width)
            .map(|k| f(k / width, k % width))
            .collect();
        Image {
            height,
            width,
            pixels,
        }
    }

    /// Pixel accessor.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn at(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.height && col < self.width, "pixel out of bounds");
        self.pixels[row * self.width + col]
    }
}

/// Unrolls `k x k` receptive fields (stride 1, valid padding) into the
/// columns of a `k*k x P` matrix, `P = (H-k+1)*(W-k+1)`.
///
/// # Panics
///
/// Panics if the kernel does not fit the image.
pub fn im2col(image: &Image, k: usize) -> RMatrix {
    assert!(k >= 1, "kernel must be at least 1x1");
    assert!(
        image.height >= k && image.width >= k,
        "kernel {k}x{k} does not fit {}x{}",
        image.height,
        image.width
    );
    let out_h = image.height - k + 1;
    let out_w = image.width - k + 1;
    let mut m = RMatrix::zeros(k * k, out_h * out_w);
    for oy in 0..out_h {
        for ox in 0..out_w {
            let col = oy * out_w + ox;
            for ky in 0..k {
                for kx in 0..k {
                    m[(ky * k + kx, col)] = image.at(oy + ky, ox + kx);
                }
            }
        }
    }
    m
}

/// A bank of `K` kernels of size `k x k` applied by GeMM.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvLayer {
    /// `K x k*k` kernel matrix (each row is one flattened kernel).
    pub kernels: RMatrix,
    kernel_size: usize,
}

impl ConvLayer {
    /// Creates a layer from flattened kernels.
    ///
    /// # Panics
    ///
    /// Panics if `kernels.cols()` is not a perfect square.
    pub fn new(kernels: RMatrix) -> Self {
        let k = (kernels.cols() as f64).sqrt().round() as usize;
        assert_eq!(k * k, kernels.cols(), "kernel rows must be k*k long");
        ConvLayer {
            kernels,
            kernel_size: k,
        }
    }

    /// Kernel side length.
    pub fn kernel_size(&self) -> usize {
        self.kernel_size
    }

    /// Number of kernels (output channels).
    pub fn out_channels(&self) -> usize {
        self.kernels.rows()
    }

    /// Convolves via im2col + GeMM with the default (digital) multiply.
    pub fn forward(&self, image: &Image) -> Vec<Image> {
        self.forward_with(image, |w, cols| w.mul_mat(cols))
    }

    /// Convolves with a custom GeMM (e.g. a photonic engine). The closure
    /// receives the kernel matrix and the im2col patch matrix.
    ///
    /// # Panics
    ///
    /// Panics if the kernel does not fit, or the GeMM returns wrong shape.
    pub fn forward_with<F>(&self, image: &Image, gemm: F) -> Vec<Image>
    where
        F: FnOnce(&RMatrix, &RMatrix) -> RMatrix,
    {
        let k = self.kernel_size;
        let cols = im2col(image, k);
        let out = gemm(&self.kernels, &cols);
        assert_eq!(out.rows(), self.out_channels(), "gemm returned wrong rows");
        assert_eq!(out.cols(), cols.cols(), "gemm returned wrong cols");
        let out_h = image.height - k + 1;
        let out_w = image.width - k + 1;
        (0..self.out_channels())
            .map(|ch| {
                Image::new(
                    out_h,
                    out_w,
                    (0..out_h * out_w).map(|p| out[(ch, p)]).collect(),
                )
            })
            .collect()
    }
}

/// Reference direct convolution (valid padding, stride 1) for testing.
pub fn direct_convolve(image: &Image, kernel: &[f64], k: usize) -> Image {
    assert_eq!(kernel.len(), k * k, "kernel length mismatch");
    let out_h = image.height - k + 1;
    let out_w = image.width - k + 1;
    Image::from_fn(out_h, out_w, |oy, ox| {
        let mut acc = 0.0;
        for ky in 0..k {
            for kx in 0..k {
                acc += kernel[ky * k + kx] * image.at(oy + ky, ox + kx);
            }
        }
        acc
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_image() -> Image {
        Image::from_fn(6, 7, |r, c| (r * 7 + c) as f64 * 0.1)
    }

    #[test]
    fn im2col_shapes_and_content() {
        let img = test_image();
        let cols = im2col(&img, 3);
        assert_eq!(cols.rows(), 9);
        assert_eq!(cols.cols(), 4 * 5);
        // First column is the top-left 3x3 patch, row-major.
        assert_eq!(cols[(0, 0)], img.at(0, 0));
        assert_eq!(cols[(2, 0)], img.at(0, 2));
        assert_eq!(cols[(8, 0)], img.at(2, 2));
        // Last column is the bottom-right patch.
        let last = cols.cols() - 1;
        assert_eq!(cols[(8, last)], img.at(5, 6));
    }

    #[test]
    fn gemm_convolution_matches_direct() {
        let img = test_image();
        let kernels = RMatrix::from_rows(
            2,
            9,
            &[
                // Sobel-ish horizontal edge
                -1.0, -2.0, -1.0, 0.0, 0.0, 0.0, 1.0, 2.0, 1.0, // blur
                0.111, 0.111, 0.111, 0.111, 0.111, 0.111, 0.111, 0.111, 0.111,
            ],
        );
        let layer = ConvLayer::new(kernels.clone());
        let maps = layer.forward(&img);
        assert_eq!(maps.len(), 2);
        for (ch, map) in maps.iter().enumerate() {
            let want = direct_convolve(&img, kernels.row(ch), 3);
            assert_eq!(map.height, want.height);
            for (a, b) in map.pixels.iter().zip(&want.pixels) {
                assert!((a - b).abs() < 1e-12, "channel {ch}");
            }
        }
    }

    #[test]
    fn custom_gemm_hook_is_used() {
        let img = test_image();
        let kernels = RMatrix::from_rows(1, 4, &[1.0, 0.0, 0.0, -1.0]);
        let layer = ConvLayer::new(kernels);
        // A GeMM that scales by 2 should scale the feature map by 2.
        let doubled = layer.forward_with(&img, |w, cols| w.mul_mat(cols).scaled(2.0));
        let normal = layer.forward(&img);
        for (a, b) in doubled[0].pixels.iter().zip(&normal[0].pixels) {
            assert!((a - 2.0 * b).abs() < 1e-12);
        }
    }

    #[test]
    fn identity_kernel_crops_image() {
        let img = test_image();
        let mut k = vec![0.0; 9];
        k[4] = 1.0; // center tap
        let out = direct_convolve(&img, &k, 3);
        assert_eq!(out.height, 4);
        assert_eq!(out.width, 5);
        assert_eq!(out.at(0, 0), img.at(1, 1));
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_kernel_rejected() {
        let img = Image::from_fn(2, 2, |_, _| 0.0);
        let _ = im2col(&img, 3);
    }

    #[test]
    #[should_panic(expected = "k*k long")]
    fn non_square_kernel_rejected() {
        let _ = ConvLayer::new(RMatrix::zeros(1, 5));
    }
}

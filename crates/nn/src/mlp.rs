//! A dense multilayer perceptron with SGD training — the digital
//! reference model whose weight matrices get mapped onto photonic MVM
//! cores (experiments E3/E10).
//!
//! The forward pass is factored so the matrix–vector products can be
//! swapped out: [`Mlp::forward_with`] takes a custom multiply, which is
//! how the benchmarks run the *same trained network* through the
//! photonic pipeline (noise, quantization, loss and all) and compare
//! accuracies.

use crate::dataset::Dataset;
use neuropulsim_linalg::random::gaussian;
use neuropulsim_linalg::RMatrix;
use rand::Rng;

/// One dense layer: `y = relu_or_identity(W x + b)`.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseLayer {
    /// Weight matrix (`outputs x inputs`).
    pub weights: RMatrix,
    /// Bias vector (`outputs`).
    pub bias: Vec<f64>,
    /// Apply ReLU after the affine map (last layer usually does not).
    pub relu: bool,
}

impl DenseLayer {
    /// He-initialized layer.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, inputs: usize, outputs: usize, relu: bool) -> Self {
        let scale = (2.0 / inputs as f64).sqrt();
        DenseLayer {
            weights: RMatrix::from_fn(outputs, inputs, |_, _| scale * gaussian(rng)),
            bias: vec![0.0; outputs],
            relu,
        }
    }
}

/// A feedforward network of dense layers.
///
/// # Examples
///
/// ```
/// use neuropulsim_nn::mlp::Mlp;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mlp = Mlp::new(&mut rng, &[4, 8, 3]);
/// let out = mlp.forward(&[0.1, 0.2, 0.3, 0.4]);
/// assert_eq!(out.len(), 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Mlp {
    layers: Vec<DenseLayer>,
}

impl Mlp {
    /// Creates an MLP with the given layer sizes, ReLU on all hidden
    /// layers and a linear output layer.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 2 sizes are given.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, sizes: &[usize]) -> Self {
        assert!(sizes.len() >= 2, "need at least input and output sizes");
        let layers = sizes
            .windows(2)
            .enumerate()
            .map(|(k, w)| DenseLayer::new(rng, w[0], w[1], k + 2 < sizes.len()))
            .collect();
        Mlp { layers }
    }

    /// The layers, input to output.
    pub fn layers(&self) -> &[DenseLayer] {
        &self.layers
    }

    /// Mutable layer access (weight surgery in experiments).
    pub fn layers_mut(&mut self) -> &mut [DenseLayer] {
        &mut self.layers
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.layers.first().map(|l| l.weights.cols()).unwrap_or(0)
    }

    /// Output dimension (class count).
    pub fn output_dim(&self) -> usize {
        self.layers.last().map(|l| l.weights.rows()).unwrap_or(0)
    }

    /// Standard forward pass (digital float arithmetic).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != input_dim()`.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        self.forward_with(x, |w, v| w.mul_vec(v))
    }

    /// Forward pass with a custom matrix–vector multiply (e.g. a photonic
    /// core). Biases and activations stay digital, matching the paper's
    /// split of linear-optics compute + electronic nonlinearity.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != input_dim()` or the multiply returns a
    /// wrong-sized vector.
    pub fn forward_with<F>(&self, x: &[f64], mut multiply: F) -> Vec<f64>
    where
        F: FnMut(&RMatrix, &[f64]) -> Vec<f64>,
    {
        assert_eq!(x.len(), self.input_dim(), "forward: input size mismatch");
        let mut v = x.to_vec();
        for layer in &self.layers {
            let mut y = multiply(&layer.weights, &v);
            assert_eq!(y.len(), layer.bias.len(), "multiply returned wrong size");
            for (yi, bi) in y.iter_mut().zip(&layer.bias) {
                *yi += bi;
                if layer.relu && *yi < 0.0 {
                    *yi = 0.0;
                }
            }
            v = y;
        }
        v
    }

    /// Predicted class (argmax of logits).
    pub fn predict(&self, x: &[f64]) -> usize {
        argmax(&self.forward(x))
    }

    /// Classification accuracy on a dataset.
    pub fn accuracy(&self, data: &Dataset) -> f64 {
        self.accuracy_with(data, |w, v| w.mul_vec(v))
    }

    /// Accuracy with a custom multiply (photonic inference path).
    pub fn accuracy_with<F>(&self, data: &Dataset, mut multiply: F) -> f64
    where
        F: FnMut(&RMatrix, &[f64]) -> Vec<f64>,
    {
        if data.is_empty() {
            return 0.0;
        }
        let correct = data
            .samples
            .iter()
            .zip(&data.labels)
            .filter(|(x, &l)| argmax(&self.forward_with(x, &mut multiply)) == l)
            .count();
        correct as f64 / data.len() as f64
    }

    /// One epoch of SGD with softmax cross-entropy loss. Returns the mean
    /// loss over the epoch.
    ///
    /// # Panics
    ///
    /// Panics if the dataset dimension does not match the network.
    pub fn train_epoch(&mut self, data: &Dataset, learning_rate: f64) -> f64 {
        assert_eq!(data.dim, self.input_dim(), "dataset dimension mismatch");
        let mut total_loss = 0.0;
        for (x, &label) in data.samples.iter().zip(&data.labels) {
            total_loss += self.train_sample(x, label, learning_rate);
        }
        total_loss / data.len().max(1) as f64
    }

    /// One SGD step on a single sample; returns its loss.
    fn train_sample(&mut self, x: &[f64], label: usize, lr: f64) -> f64 {
        // Forward with caches.
        let mut activations: Vec<Vec<f64>> = vec![x.to_vec()];
        let mut pre_relu_masks: Vec<Vec<bool>> = Vec::new();
        for layer in &self.layers {
            let input = activations.last().expect("nonempty");
            let mut y = layer.weights.mul_vec(input);
            let mut mask = vec![true; y.len()];
            for ((yi, bi), m) in y.iter_mut().zip(&layer.bias).zip(mask.iter_mut()) {
                *yi += bi;
                if layer.relu && *yi < 0.0 {
                    *yi = 0.0;
                    *m = false;
                }
            }
            pre_relu_masks.push(mask);
            activations.push(y);
        }
        let logits = activations.last().expect("nonempty").clone();
        let probs = softmax(&logits);
        let loss = -probs[label].max(1e-12).ln();

        // Backward.
        let mut grad: Vec<f64> = probs;
        grad[label] -= 1.0;
        for (k, layer) in self.layers.iter_mut().enumerate().rev() {
            // ReLU gate (the mask of THIS layer's output, except for the
            // linear output layer where all gates are open).
            if layer.relu {
                for (g, &open) in grad.iter_mut().zip(&pre_relu_masks[k]) {
                    if !open {
                        *g = 0.0;
                    }
                }
            }
            let input = &activations[k];
            // Gradient w.r.t. input for the next (earlier) layer.
            let mut grad_in = vec![0.0; input.len()];
            #[allow(clippy::needless_range_loop)] // i indexes weights rows AND grad
            for i in 0..layer.weights.rows() {
                let g = grad[i];
                if g == 0.0 {
                    continue;
                }
                for j in 0..layer.weights.cols() {
                    grad_in[j] += layer.weights[(i, j)] * g;
                    layer.weights[(i, j)] -= lr * g * input[j];
                }
                layer.bias[i] -= lr * g;
            }
            grad = grad_in;
        }
        loss
    }

    /// Trains for `epochs` epochs; returns the loss curve.
    pub fn fit(&mut self, data: &Dataset, epochs: usize, learning_rate: f64) -> Vec<f64> {
        (0..epochs)
            .map(|_| self.train_epoch(data, learning_rate))
            .collect()
    }

    /// Projects every weight onto a uniform grid of `levels` values over
    /// `[-w_max, w_max]` — the representable set of a coarse photonic
    /// (PCM-level-limited) deployment.
    ///
    /// # Panics
    ///
    /// Panics if `levels < 2` or `w_max <= 0`.
    pub fn project_weights(&mut self, levels: u32, w_max: f64) {
        assert!(levels >= 2, "need at least 2 weight levels");
        assert!(w_max > 0.0, "w_max must be positive");
        let step = 2.0 * w_max / (levels - 1) as f64;
        for layer in &mut self.layers {
            for w in layer.weights.as_mut_slice() {
                let clipped = w.clamp(-w_max, w_max);
                *w = ((clipped + w_max) / step).round() * step - w_max;
            }
        }
    }

    /// Quantization-aware training: alternates SGD epochs with projection
    /// onto the `levels`-value weight grid, so the network settles into a
    /// quantization-robust minimum. Returns the loss curve. This is the
    /// standard recovery technique for coarse photonic weight storage
    /// (experiment E10 ablation).
    pub fn fit_quantized(
        &mut self,
        data: &Dataset,
        epochs: usize,
        learning_rate: f64,
        levels: u32,
        w_max: f64,
    ) -> Vec<f64> {
        (0..epochs)
            .map(|_| {
                let loss = self.train_epoch(data, learning_rate);
                self.project_weights(levels, w_max);
                loss
            })
            .collect()
    }
}

/// Softmax with max-shift for numerical stability.
pub fn softmax(logits: &[f64]) -> Vec<f64> {
    let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = logits.iter().map(|&z| (z - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.iter().map(|e| e / sum).collect()
}

/// Index of the largest element (first on ties).
pub fn argmax(v: &[f64]) -> usize {
    let mut best = 0;
    let mut best_value = f64::NEG_INFINITY;
    for (i, &x) in v.iter().enumerate() {
        if x > best_value {
            best = i;
            best_value = x;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{synthetic_digits, DigitsConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        let mlp = Mlp::new(&mut rng, &[8, 16, 4]);
        assert_eq!(mlp.input_dim(), 8);
        assert_eq!(mlp.output_dim(), 4);
        assert_eq!(mlp.forward(&[0.0; 8]).len(), 4);
        assert_eq!(mlp.layers().len(), 2);
        assert!(mlp.layers()[0].relu);
        assert!(!mlp.layers()[1].relu);
    }

    #[test]
    fn softmax_properties() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[2] > p[1] && p[1] > p[0]);
        // Stability with huge logits.
        let q = softmax(&[1000.0, 1000.0]);
        assert!((q[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn argmax_ties_and_order() {
        assert_eq!(argmax(&[1.0, 3.0, 2.0]), 1);
        assert_eq!(argmax(&[5.0, 5.0]), 0);
    }

    #[test]
    fn training_reduces_loss() {
        let mut rng = StdRng::seed_from_u64(7);
        let data = synthetic_digits(&mut rng, DigitsConfig::default());
        let mut mlp = Mlp::new(&mut rng, &[16, 16, 4]);
        let losses = mlp.fit(&data, 10, 0.05);
        assert!(
            losses.last().unwrap() < &(losses[0] * 0.5),
            "loss should halve: {losses:?}"
        );
    }

    #[test]
    fn trained_network_classifies_held_out_data() {
        let mut rng = StdRng::seed_from_u64(11);
        let data = synthetic_digits(&mut rng, DigitsConfig::default());
        let (train, test) = data.split(0.8);
        let mut mlp = Mlp::new(&mut rng, &[16, 16, 4]);
        let before = mlp.accuracy(&test);
        mlp.fit(&train, 25, 0.05);
        let after = mlp.accuracy(&test);
        assert!(after > 0.9, "test accuracy {after} too low (was {before})");
    }

    #[test]
    fn forward_with_custom_multiply_matches_default() {
        let mut rng = StdRng::seed_from_u64(13);
        let mlp = Mlp::new(&mut rng, &[4, 6, 3]);
        let x = [0.1, -0.2, 0.3, 0.4];
        let a = mlp.forward(&x);
        let b = mlp.forward_with(&x, |w, v| w.mul_vec(v));
        assert_eq!(a, b);
    }

    #[test]
    fn noisy_multiply_degrades_gracefully() {
        let mut rng = StdRng::seed_from_u64(17);
        let data = synthetic_digits(&mut rng, DigitsConfig::default());
        let (train, test) = data.split(0.8);
        let mut mlp = Mlp::new(&mut rng, &[16, 16, 4]);
        mlp.fit(&train, 25, 0.05);
        let clean = mlp.accuracy(&test);
        // A violently noisy multiply should hurt; mild noise should not.
        let mut noise_rng = StdRng::seed_from_u64(1);
        let noisy = mlp.accuracy_with(&test, |w, v| {
            w.mul_vec(v)
                .into_iter()
                .map(|y| y + 5.0 * neuropulsim_linalg::random::gaussian(&mut noise_rng))
                .collect()
        });
        assert!(noisy < clean, "heavy noise must reduce accuracy");
    }

    #[test]
    fn projection_snaps_to_grid() {
        let mut rng = StdRng::seed_from_u64(23);
        let mut mlp = Mlp::new(&mut rng, &[4, 3]);
        mlp.project_weights(5, 1.0); // grid {-1, -0.5, 0, 0.5, 1}
        for layer in mlp.layers() {
            for &w in layer.weights.as_slice() {
                let snapped = (w * 2.0).round() / 2.0;
                assert!((w - snapped).abs() < 1e-12, "weight {w} off grid");
                assert!(w.abs() <= 1.0 + 1e-12);
            }
        }
    }

    #[test]
    fn quantization_aware_training_beats_post_hoc_projection() {
        // Seed chosen for a stable comparison under the vendored RNG
        // stream; QAT vs post-hoc is a statistical claim and some init
        // draws leave QAT a fraction behind on this tiny test split.
        let mut rng = StdRng::seed_from_u64(2);
        let data = synthetic_digits(&mut rng, DigitsConfig::default());
        let (train, test) = data.split(0.8);
        let levels = 8;
        let w_max = 1.5;

        // Post-hoc: train in float, then project once.
        let mut post_hoc = Mlp::new(&mut rng, &[16, 16, 4]);
        post_hoc.fit(&train, 25, 0.05);
        post_hoc.project_weights(levels, w_max);
        let acc_post_hoc = post_hoc.accuracy(&test);

        // QAT: project after every epoch.
        let mut rng2 = StdRng::seed_from_u64(2);
        let _ = synthetic_digits(&mut rng2, DigitsConfig::default());
        let mut qat = Mlp::new(&mut rng2, &[16, 16, 4]);
        qat.fit_quantized(&train, 25, 0.05, levels, w_max);
        let acc_qat = qat.accuracy(&test);

        assert!(
            acc_qat >= acc_post_hoc,
            "QAT {acc_qat} should not lose to post-hoc {acc_post_hoc}"
        );
        assert!(acc_qat > 0.8, "QAT accuracy {acc_qat} too low");
    }

    #[test]
    #[should_panic(expected = "input size mismatch")]
    fn forward_rejects_wrong_dim() {
        let mut rng = StdRng::seed_from_u64(19);
        let mlp = Mlp::new(&mut rng, &[4, 2]);
        let _ = mlp.forward(&[0.0; 3]);
    }
}

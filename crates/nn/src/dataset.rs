//! Synthetic classification datasets standing in for the edge-AI
//! workloads the paper's introduction motivates.
//!
//! The generator produces "photonic digits": `d`-dimensional class
//! prototypes drawn once per class, with per-sample Gaussian feature
//! noise — a controllable-difficulty stand-in for MNIST-class data that
//! keeps the whole benchmark self-contained and reproducible.

use neuropulsim_linalg::random::gaussian;
use rand::Rng;

/// A labelled dataset: row-major samples and integer labels.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// Feature dimension.
    pub dim: usize,
    /// Number of classes.
    pub classes: usize,
    /// Samples, each of length `dim`.
    pub samples: Vec<Vec<f64>>,
    /// Labels in `0..classes`.
    pub labels: Vec<usize>,
}

impl Dataset {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` if there are no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Splits into `(train, test)` with `train_fraction` of samples in
    /// the training set (interleaved split, preserving class balance for
    /// generators that interleave classes).
    ///
    /// # Panics
    ///
    /// Panics if `train_fraction` is not in `(0, 1)`.
    pub fn split(&self, train_fraction: f64) -> (Dataset, Dataset) {
        assert!(
            train_fraction > 0.0 && train_fraction < 1.0,
            "train fraction must be in (0, 1)"
        );
        let period = (1.0 / (1.0 - train_fraction)).round().max(2.0) as usize;
        let mut train = Dataset {
            dim: self.dim,
            classes: self.classes,
            samples: Vec::new(),
            labels: Vec::new(),
        };
        let mut test = train.clone();
        for (k, (s, &l)) in self.samples.iter().zip(&self.labels).enumerate() {
            if k % period == period - 1 {
                test.samples.push(s.clone());
                test.labels.push(l);
            } else {
                train.samples.push(s.clone());
                train.labels.push(l);
            }
        }
        (train, test)
    }
}

/// Parameters of the synthetic-digit generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DigitsConfig {
    /// Feature dimension.
    pub dim: usize,
    /// Number of classes.
    pub classes: usize,
    /// Samples per class.
    pub samples_per_class: usize,
    /// Per-feature Gaussian noise added to the prototype.
    pub noise: f64,
}

impl Default for DigitsConfig {
    /// 16-dimensional, 4-class, 50 samples/class, moderate noise — small
    /// enough for photonic 16×16 cores.
    fn default() -> Self {
        DigitsConfig {
            dim: 16,
            classes: 4,
            samples_per_class: 50,
            noise: 0.25,
        }
    }
}

/// Generates a synthetic-digit dataset: class prototypes with binary-ish
/// structure (features on/off per class) plus Gaussian noise, values
/// clipped to `[0, 1]`. Classes are interleaved sample-by-sample.
pub fn synthetic_digits<R: Rng + ?Sized>(rng: &mut R, config: DigitsConfig) -> Dataset {
    assert!(config.classes >= 2, "need at least 2 classes");
    assert!(config.dim >= config.classes, "dim must be >= classes");
    // Prototypes: each class lights up a random ~half of the features.
    let prototypes: Vec<Vec<f64>> = (0..config.classes)
        .map(|_| {
            (0..config.dim)
                .map(|_| if rng.gen_bool(0.5) { 0.9 } else { 0.1 })
                .collect()
        })
        .collect();
    let mut samples = Vec::new();
    let mut labels = Vec::new();
    for k in 0..config.samples_per_class {
        for (c, proto) in prototypes.iter().enumerate() {
            let _ = k;
            let sample: Vec<f64> = proto
                .iter()
                .map(|&p| (p + config.noise * gaussian(rng)).clamp(0.0, 1.0))
                .collect();
            samples.push(sample);
            labels.push(c);
        }
    }
    Dataset {
        dim: config.dim,
        classes: config.classes,
        samples,
        labels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generator_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = synthetic_digits(&mut rng, DigitsConfig::default());
        assert_eq!(d.len(), 4 * 50);
        assert_eq!(d.dim, 16);
        assert_eq!(d.classes, 4);
        assert!(d.samples.iter().all(|s| s.len() == 16));
        assert!(d.labels.iter().all(|&l| l < 4));
        assert!(!d.is_empty());
    }

    #[test]
    fn values_are_clipped() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = synthetic_digits(
            &mut rng,
            DigitsConfig {
                noise: 2.0,
                ..Default::default()
            },
        );
        for s in &d.samples {
            for &v in s {
                assert!((0.0..=1.0).contains(&v));
            }
        }
    }

    #[test]
    fn classes_are_balanced() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = synthetic_digits(&mut rng, DigitsConfig::default());
        let mut counts = vec![0usize; d.classes];
        for &l in &d.labels {
            counts[l] += 1;
        }
        assert!(counts.iter().all(|&c| c == 50));
    }

    #[test]
    fn split_partitions_all_samples() {
        let mut rng = StdRng::seed_from_u64(4);
        let d = synthetic_digits(&mut rng, DigitsConfig::default());
        let (train, test) = d.split(0.75);
        assert_eq!(train.len() + test.len(), d.len());
        assert!(test.len() >= d.len() / 5, "test set not degenerate");
        assert!(train.len() > test.len());
    }

    #[test]
    fn classes_are_distinguishable() {
        // Same-class samples should be closer than cross-class ones on
        // average (otherwise no classifier can work).
        let mut rng = StdRng::seed_from_u64(5);
        let d = synthetic_digits(
            &mut rng,
            DigitsConfig {
                samples_per_class: 20,
                ..Default::default()
            },
        );
        let dist = |a: &[f64], b: &[f64]| -> f64 {
            a.iter().zip(b).map(|(x, y)| (x - y).powi(2)).sum::<f64>()
        };
        let mut same = (0.0, 0usize);
        let mut diff = (0.0, 0usize);
        for i in 0..d.len() {
            for j in (i + 1)..d.len() {
                let dd = dist(&d.samples[i], &d.samples[j]);
                if d.labels[i] == d.labels[j] {
                    same = (same.0 + dd, same.1 + 1);
                } else {
                    diff = (diff.0 + dd, diff.1 + 1);
                }
            }
        }
        assert!(same.0 / (same.1 as f64) < diff.0 / (diff.1 as f64));
    }

    #[test]
    #[should_panic(expected = "train fraction")]
    fn split_rejects_bad_fraction() {
        let mut rng = StdRng::seed_from_u64(6);
        let d = synthetic_digits(&mut rng, DigitsConfig::default());
        let _ = d.split(1.0);
    }
}

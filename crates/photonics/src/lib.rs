//! # neuropulsim-photonics
//!
//! Device-level models of the augmented silicon-photonics platform from
//! the DAC'24 NEUROPULS overview paper: the CMOS-compatible SOI building
//! blocks (§2), and the PCM / III-V augmentations (§3) that add
//! non-volatile optical memory and excitable spiking sources.
//!
//! Components:
//!
//! - [`coupler`]: 2×2 directional couplers with fabrication imbalance;
//! - [`phase`]: phase shifters behind one [`phase::PhaseShifter`] trait —
//!   volatile thermo-optic heaters vs non-volatile multilevel PCM;
//! - [`pcm`]: phase-change material optics (GST/GSST/GeSe), Lorentz–Lorenz
//!   index mixing, accumulative SET pulses, drift;
//! - [`mzi`]: the Mach–Zehnder interferometer unit cell (paper Fig. 2a);
//! - [`modulator`] / [`detector`]: the >50 GHz I/O devices of the platform;
//! - [`laser`]: Yamada-model excitable Q-switched laser neurons;
//! - [`energy`]: technology constants and the energy/area ledgers used by
//!   the system-level benchmarks;
//! - [`units`]: physical constants and dB helpers.
//!
//! # Examples
//!
//! Build a PCM-programmed MZI and inspect its transfer matrix:
//!
//! ```
//! use neuropulsim_photonics::mzi::Mzi;
//! use neuropulsim_photonics::pcm::PcmMaterial;
//! use neuropulsim_photonics::phase::{PcmPhaseShifter, PhaseShifter};
//!
//! let mut shifter = PcmPhaseShifter::new(PcmMaterial::Gsst, 16);
//! shifter.set_phase(std::f64::consts::PI / 3.0);
//! let mzi = Mzi::new(shifter.phase(), 0.0)
//!     .with_arm_transmission(shifter.field_transmission());
//! assert!(mzi.transfer_matrix().frobenius_norm() > 0.0);
//! assert_eq!(shifter.hold_power(), 0.0); // non-volatile!
//! ```

#![warn(missing_docs)]

pub mod converter;
pub mod coupler;
pub mod detector;
pub mod energy;
pub mod laser;
pub mod modulator;
pub mod mzi;
pub mod pcm;
pub mod phase;
pub mod ring;
pub mod units;
pub mod waveguide;

//! Physical constants and unit helpers used across the photonic models.
//!
//! All internal quantities are SI unless a name says otherwise
//! (`*_nm`, `*_um`, `*_mw`, ...). Optical *power* is in watts, *energy* in
//! joules, *lengths* in meters.

/// Speed of light in vacuum \[m/s\].
pub const SPEED_OF_LIGHT: f64 = 2.997_924_58e8;

/// Planck constant \[J*s\].
pub const PLANCK: f64 = 6.626_070_15e-34;

/// Elementary charge \[C\].
pub const ELEMENTARY_CHARGE: f64 = 1.602_176_634e-19;

/// Boltzmann constant \[J/K\].
pub const BOLTZMANN: f64 = 1.380_649e-23;

/// The standard telecom C-band wavelength used throughout the paper \[m\].
pub const TELECOM_WAVELENGTH: f64 = 1550e-9;

/// Photon energy at a given vacuum wavelength \[J\].
///
/// # Examples
///
/// ```
/// let e = neuropulsim_photonics::units::photon_energy(1550e-9);
/// assert!((e - 1.28e-19).abs() < 1e-20); // ~0.8 eV
/// ```
pub fn photon_energy(wavelength_m: f64) -> f64 {
    PLANCK * SPEED_OF_LIGHT / wavelength_m
}

/// Converts a power/intensity ratio to decibels.
///
/// Returns `-inf` for a zero ratio.
pub fn linear_to_db(ratio: f64) -> f64 {
    10.0 * ratio.log10()
}

/// Converts decibels to a linear power ratio.
pub fn db_to_linear(db: f64) -> f64 {
    10f64.powf(db / 10.0)
}

/// Converts a per-length loss in dB/cm to an intensity attenuation
/// coefficient alpha \[1/m\] such that `P(z) = P0 * exp(-alpha z)`.
pub fn db_per_cm_to_alpha(db_per_cm: f64) -> f64 {
    // 10 log10(e) = 4.3429...; alpha = db_per_m / (10 log10 e)
    let db_per_m = db_per_cm * 100.0;
    db_per_m / (10.0 * std::f64::consts::E.log10())
}

/// Converts dBm to watts.
pub fn dbm_to_watts(dbm: f64) -> f64 {
    1e-3 * db_to_linear(dbm)
}

/// Converts watts to dBm.
///
/// Returns `-inf` for zero power.
pub fn watts_to_dbm(watts: f64) -> f64 {
    linear_to_db(watts / 1e-3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn db_roundtrip() {
        for db in [-30.0, -3.0, 0.0, 3.0, 10.0] {
            assert!((linear_to_db(db_to_linear(db)) - db).abs() < 1e-12);
        }
        assert!((db_to_linear(3.0) - 1.995).abs() < 0.01);
        assert!(linear_to_db(0.0).is_infinite());
    }

    #[test]
    fn dbm_conversions() {
        assert!((dbm_to_watts(0.0) - 1e-3).abs() < 1e-15);
        assert!((dbm_to_watts(10.0) - 1e-2).abs() < 1e-12);
        assert!((watts_to_dbm(1e-3)).abs() < 1e-12);
    }

    #[test]
    fn loss_coefficient() {
        // 1 dB/cm ~ 23.03 /m
        let alpha = db_per_cm_to_alpha(1.0);
        assert!((alpha - 23.025_850_93).abs() < 1e-6);
        // Propagating 1 cm should lose exactly 1 dB of power.
        let remaining = (-alpha * 0.01f64).exp();
        assert!((linear_to_db(remaining) + 1.0).abs() < 1e-9);
    }

    #[test]
    fn photon_energy_at_1550nm() {
        let e = photon_energy(TELECOM_WAVELENGTH);
        // ~0.8 eV
        let ev = e / ELEMENTARY_CHARGE;
        assert!((ev - 0.8).abs() < 0.01);
    }
}

//! High-speed Mach–Zehnder modulators: the input encoders of the MVM core.
//!
//! §4 of the paper: "input vectors are encoded into amplitude/phase of
//! individual inputs (typically using high-speed Mach Zehnder modulators)".
//! The platform provides >50 GHz devices (§2); the modulator's bandwidth
//! bounds the vector rate of the accelerator and its energy/bit enters the
//! energy model.

use neuropulsim_linalg::{CVector, C64};

/// A high-speed Mach–Zehnder amplitude/phase modulator.
///
/// Encodes a real value `x in [-1, 1]` into an optical field amplitude
/// `sqrt(P_in) * x` (negative values as a pi phase flip), limited by a
/// finite extinction ratio.
///
/// # Examples
///
/// ```
/// use neuropulsim_photonics::modulator::Modulator;
///
/// let m = Modulator::default();
/// let field = m.encode(0.5, 1e-3);
/// // x^2 * carrier * insertion loss
/// let expected = 0.25 * 1e-3 * m.insertion_transmission;
/// assert!((field.abs2() - expected).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Modulator {
    /// Electro-optic 3-dB bandwidth \[Hz\].
    pub bandwidth: f64,
    /// Power extinction ratio (on/off) as a linear factor, e.g. 1000 = 30 dB.
    pub extinction_ratio: f64,
    /// Electrical energy per encoded symbol \[J\].
    pub energy_per_symbol: f64,
    /// Field insertion transmission (loss of the modulator itself).
    pub insertion_transmission: f64,
}

impl Modulator {
    /// Creates a modulator with the given bandwidth \[Hz\] and extinction
    /// ratio \[linear\].
    pub fn new(bandwidth: f64, extinction_ratio: f64) -> Self {
        Modulator {
            bandwidth,
            extinction_ratio,
            energy_per_symbol: 50e-15, // ~50 fJ/symbol, silicon MZM class
            insertion_transmission: 0.89, // ~1 dB insertion loss (power)
        }
    }

    /// Maximum symbol (vector-element) rate \[symbols/s\], taken as the
    /// 3-dB bandwidth for NRZ-style encoding.
    pub fn max_symbol_rate(&self) -> f64 {
        self.bandwidth
    }

    /// Encodes `x in [-1, 1]` onto a carrier of power `carrier_power_w`,
    /// returning the output field amplitude. The finite extinction ratio
    /// leaves a residual floor amplitude even at `x = 0`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is outside `[-1, 1]` or the carrier power is negative.
    pub fn encode(&self, x: f64, carrier_power_w: f64) -> C64 {
        assert!((-1.0..=1.0).contains(&x), "modulator input out of [-1, 1]");
        assert!(carrier_power_w >= 0.0, "carrier power must be >= 0");
        let floor = (1.0 / self.extinction_ratio).sqrt();
        let magnitude = x.abs().max(floor);
        let amplitude = (carrier_power_w * self.insertion_transmission).sqrt() * magnitude;
        if x < 0.0 {
            C64::real(-amplitude)
        } else {
            C64::real(amplitude)
        }
    }

    /// Encodes a whole vector onto equal-power carriers such that the
    /// largest entry uses the full carrier. Returns the field vector and
    /// the scale factor needed to recover physical values downstream.
    ///
    /// # Panics
    ///
    /// Panics if the carrier power is negative.
    pub fn encode_vector(&self, x: &[f64], carrier_power_w: f64) -> (CVector, f64) {
        assert!(carrier_power_w >= 0.0, "carrier power must be >= 0");
        let max = x.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        let scale = if max > 0.0 { max } else { 1.0 };
        let fields: CVector = x
            .iter()
            .map(|&v| self.encode(v / scale, carrier_power_w))
            .collect();
        (fields, scale)
    }

    /// Electrical energy to encode an `n`-element vector \[J\].
    pub fn vector_energy(&self, n: usize) -> f64 {
        self.energy_per_symbol * n as f64
    }
}

impl Default for Modulator {
    /// The platform's >50 GHz modulator with 25 dB extinction.
    fn default() -> Self {
        Modulator::new(50e9, 316.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_scales_amplitude() {
        let m = Modulator::default();
        let p = 1e-3;
        let full = m.encode(1.0, p).abs2();
        let half = m.encode(0.5, p).abs2();
        assert!((half / full - 0.25).abs() < 1e-9);
    }

    #[test]
    fn sign_becomes_phase_flip() {
        let m = Modulator::default();
        let pos = m.encode(0.7, 1e-3);
        let neg = m.encode(-0.7, 1e-3);
        assert!((pos + neg).abs() < 1e-12);
    }

    #[test]
    fn extinction_ratio_floors_zero() {
        let m = Modulator::new(50e9, 100.0); // 20 dB
        let z = m.encode(0.0, 1e-3);
        // Power floor is carrier/ER (with insertion loss).
        let expected = 1e-3 * m.insertion_transmission / 100.0;
        assert!((z.abs2() - expected).abs() < 1e-9);
    }

    #[test]
    fn vector_encoding_normalizes_to_max() {
        let m = Modulator::default();
        let (fields, scale) = m.encode_vector(&[0.2, -0.8, 0.4], 1e-3);
        assert_eq!(scale, 0.8);
        // Largest element maps to full amplitude.
        let full = m.encode(1.0, 1e-3).abs();
        assert!((fields[1].abs() - full).abs() < 1e-12);
        assert!(fields[1].re < 0.0);
    }

    #[test]
    fn zero_vector_encodes_without_panic() {
        let m = Modulator::default();
        let (fields, scale) = m.encode_vector(&[0.0, 0.0], 1e-3);
        assert_eq!(scale, 1.0);
        assert_eq!(fields.len(), 2);
    }

    #[test]
    fn energy_scales_with_length() {
        let m = Modulator::default();
        assert!((m.vector_energy(8) - 8.0 * m.energy_per_symbol).abs() < 1e-20);
    }

    #[test]
    #[should_panic(expected = "out of [-1, 1]")]
    fn rejects_overrange_input() {
        let _ = Modulator::default().encode(1.5, 1e-3);
    }
}

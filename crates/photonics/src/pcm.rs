//! Phase-change material (PCM) models: optical constants, crystalline-
//! fraction dynamics, multilevel programming and drift.
//!
//! The paper's §3 proposes non-volatile phase shifters built from PCM
//! patches (GSST, GeSe, GST) over the waveguide, programmed by heater
//! pulses. A patch's state is its *crystalline fraction* `x in [0, 1]`;
//! the effective complex permittivity interpolates between the amorphous
//! and crystalline phases through Lorentz–Lorenz (Clausius–Mossotti)
//! mixing. The real-index contrast `dn` gives a programmable phase, the
//! imaginary contrast `dk` gives state-dependent absorption, and the
//! figure of merit `FOM = dn/dk` (larger is better) is the quantity the
//! paper optimizes material choice for.

use neuropulsim_linalg::C64;

/// Phase-change materials discussed in the paper (§3) with literature
/// complex refractive indices around 1550 nm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PcmMaterial {
    /// Ge2Sb2Te5 — large index contrast but lossy in the crystalline phase.
    Gst225,
    /// Ge-Sb-Se-Te ("GSST") — contrast comparable to GST at far lower loss.
    Gsst,
    /// GeSe — modest contrast, nearly lossless in both phases.
    GeSe,
}

impl PcmMaterial {
    /// Complex refractive index `n + i k` of the amorphous phase at 1550 nm.
    pub fn amorphous_index(&self) -> C64 {
        match self {
            PcmMaterial::Gst225 => C64::new(3.94, 0.045),
            PcmMaterial::Gsst => C64::new(3.47, 0.0002),
            PcmMaterial::GeSe => C64::new(2.44, 0.0005),
        }
    }

    /// Complex refractive index `n + i k` of the crystalline phase at 1550 nm.
    pub fn crystalline_index(&self) -> C64 {
        match self {
            PcmMaterial::Gst225 => C64::new(6.11, 0.83),
            PcmMaterial::Gsst => C64::new(4.86, 0.18),
            PcmMaterial::GeSe => C64::new(2.97, 0.0035),
        }
    }

    /// Real index contrast `dn = n_c - n_a`.
    pub fn delta_n(&self) -> f64 {
        self.crystalline_index().re - self.amorphous_index().re
    }

    /// Extinction contrast `dk = k_c - k_a`.
    pub fn delta_k(&self) -> f64 {
        self.crystalline_index().im - self.amorphous_index().im
    }

    /// Figure of merit `FOM = dn / dk` (paper §3). Higher means more phase
    /// per unit of added absorption.
    pub fn figure_of_merit(&self) -> f64 {
        self.delta_n() / self.delta_k()
    }

    /// Effective complex refractive index at crystalline fraction
    /// `x in [0, 1]` via Lorentz–Lorenz mixing of the permittivities.
    ///
    /// # Panics
    ///
    /// Panics if `x` is outside `[0, 1]`.
    pub fn effective_index(&self, x: f64) -> C64 {
        assert!(
            (0.0..=1.0).contains(&x),
            "crystalline fraction must be in [0, 1], got {x}"
        );
        let eps_a = square(self.amorphous_index());
        let eps_c = square(self.crystalline_index());
        let ll = |eps: C64| (eps - C64::ONE) / (eps + C64::real(2.0));
        let mixed = ll(eps_c) * x + ll(eps_a) * (1.0 - x);
        // Invert the Lorentz-Lorenz relation: eps = (1 + 2 L) / (1 - L).
        let eps = (C64::ONE + mixed * 2.0) / (C64::ONE - mixed);
        eps.sqrt()
    }
}

fn square(z: C64) -> C64 {
    z * z
}

/// The normalized power-transmission grid of an amplitude-mode PCM cell
/// with `levels` states: entry `l` is the cell's power transmission at
/// level `l` divided by its amorphous (fully transparent) transmission.
/// The patch is sized for ~10% power transmission at full crystallization
/// (a usable attenuator dynamic range), matching the sizing used for SNN
/// synapses. Monotone decreasing from 1.0.
///
/// # Panics
///
/// Panics if `levels < 2`.
pub fn transmission_levels(material: PcmMaterial, levels: u32) -> Vec<f64> {
    assert!(levels >= 2, "need at least 2 levels");
    let gamma = 0.3;
    let lambda = crate::units::TELECOM_WAVELENGTH;
    let k_c = material.effective_index(1.0).im.max(1e-6);
    let target_field_t: f64 = 0.316;
    let patch_length = -target_field_t.ln() * lambda / (std::f64::consts::TAU * gamma * k_c);
    let transmission = |x: f64| -> f64 {
        let k = material.effective_index(x).im;
        (-2.0 * std::f64::consts::TAU / lambda * gamma * k * patch_length).exp()
    };
    let t0 = transmission(0.0);
    let mut grid: Vec<f64> = (0..levels)
        .map(|l| transmission(l as f64 / (levels - 1) as f64) / t0)
        .collect();
    // The physics gives a strictly decreasing grid; enforce it exactly so
    // downstream level search / dedup can rely on strict order even where
    // adjacent levels of a fine grid would collide at f64 precision.
    for l in 1..grid.len() {
        if grid[l] >= grid[l - 1] {
            grid[l] = grid[l - 1] * (1.0 - 1e-15);
        }
    }
    grid
}

/// Programming-energy and timing parameters of a PCM cell.
///
/// Values follow the ballpark of integrated GST/GSST demonstrations cited
/// by the paper (Feldmann 2019/2021, Zhou 2023): nanosecond-scale pulses,
/// sub-nanojoule partial crystallization, and a full RESET melt-quench
/// pulse costing more than a SET step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PcmProgramming {
    /// Energy of one partial-crystallization (SET) pulse \[J\].
    pub set_pulse_energy: f64,
    /// Energy of a melt-quench amorphization (RESET) pulse \[J\].
    pub reset_pulse_energy: f64,
    /// Duration of a SET pulse \[s\].
    pub set_pulse_duration: f64,
    /// Duration of a RESET pulse \[s\].
    pub reset_pulse_duration: f64,
    /// Crystalline-fraction increment produced by one SET pulse.
    pub set_step: f64,
}

impl Default for PcmProgramming {
    fn default() -> Self {
        PcmProgramming {
            set_pulse_energy: 0.4e-9,
            reset_pulse_energy: 1.2e-9,
            set_pulse_duration: 10e-9,
            reset_pulse_duration: 25e-9,
            set_step: 1.0 / 32.0,
        }
    }
}

/// A programmable PCM cell: crystalline fraction plus accumulated
/// programming-cost bookkeeping.
///
/// The *accumulation* behaviour the paper highlights for spiking synapses —
/// each pulse nudges the fraction by a partial step until saturation — is
/// modelled by [`PcmCell::apply_set_pulse`].
///
/// # Examples
///
/// ```
/// use neuropulsim_photonics::pcm::{PcmCell, PcmMaterial};
///
/// let mut cell = PcmCell::new(PcmMaterial::Gsst);
/// assert_eq!(cell.crystalline_fraction(), 0.0);
/// for _ in 0..8 {
///     cell.apply_set_pulse();
/// }
/// assert!(cell.crystalline_fraction() > 0.2);
/// cell.reset();
/// assert_eq!(cell.crystalline_fraction(), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PcmCell {
    material: PcmMaterial,
    programming: PcmProgramming,
    fraction: f64,
    programming_energy: f64,
    pulse_count: u64,
}

impl PcmCell {
    /// Creates a fully amorphous cell with default programming parameters.
    pub fn new(material: PcmMaterial) -> Self {
        PcmCell::with_programming(material, PcmProgramming::default())
    }

    /// Creates a cell with explicit programming parameters.
    pub fn with_programming(material: PcmMaterial, programming: PcmProgramming) -> Self {
        PcmCell {
            material,
            programming,
            fraction: 0.0,
            programming_energy: 0.0,
            pulse_count: 0,
        }
    }

    /// The cell's material.
    pub fn material(&self) -> PcmMaterial {
        self.material
    }

    /// Current crystalline fraction in `[0, 1]`.
    pub fn crystalline_fraction(&self) -> f64 {
        self.fraction
    }

    /// Total programming energy spent so far \[J\].
    pub fn programming_energy(&self) -> f64 {
        self.programming_energy
    }

    /// Total number of programming pulses applied.
    pub fn pulse_count(&self) -> u64 {
        self.pulse_count
    }

    /// Applies one partial-crystallization pulse (accumulative SET).
    /// The fraction saturates at 1.
    pub fn apply_set_pulse(&mut self) {
        self.fraction = (self.fraction + self.programming.set_step).min(1.0);
        self.programming_energy += self.programming.set_pulse_energy;
        self.pulse_count += 1;
    }

    /// Melt-quench amorphization: returns the cell to `x = 0`.
    pub fn reset(&mut self) {
        self.fraction = 0.0;
        self.programming_energy += self.programming.reset_pulse_energy;
        self.pulse_count += 1;
    }

    /// Programs the cell to the level `level` out of `levels` equally
    /// spaced states (`level = levels - 1` is fully crystalline), charging
    /// the energy of the pulses actually needed from the current state.
    ///
    /// Moving *down* requires a RESET followed by SET pulses (melt-quench
    /// erases, then re-crystallize), matching iterative-program practice.
    ///
    /// # Panics
    ///
    /// Panics if `levels < 2` or `level >= levels`.
    pub fn program_level(&mut self, level: u32, levels: u32) {
        assert!(levels >= 2, "need at least 2 levels");
        assert!(level < levels, "level {level} out of range for {levels}");
        let target = level as f64 / (levels - 1) as f64;
        if target < self.fraction - 1e-12 {
            self.reset();
        }
        while self.fraction + 1e-12 < target {
            self.apply_set_pulse();
            if self.fraction >= 1.0 {
                break;
            }
        }
        // Snap exactly onto the quantized state (the iterative write loop
        // with feedback converges to it in practice).
        self.fraction = target;
    }

    /// Total time spent programming so far \[s\] (pulse durations summed;
    /// an upper bound since RESET and SET pulses never overlap).
    pub fn programming_time(&self) -> f64 {
        // Approximate: attribute SET duration to every pulse except resets;
        // we only track the count, so use the mean of the two durations.
        let mean =
            0.5 * (self.programming.set_pulse_duration + self.programming.reset_pulse_duration);
        self.pulse_count as f64 * mean
    }

    /// Effective complex index of the patch at its current state.
    pub fn effective_index(&self) -> C64 {
        self.material.effective_index(self.fraction)
    }

    /// Sets the crystalline fraction directly, without charging any
    /// programming energy — the hook for device models that mirror an
    /// externally-tracked state into a cell (e.g. the accelerator's
    /// drift model seeding cells from attenuator settings). The value is
    /// clamped to `[0, 1]`; `NaN` maps to the amorphous state (the same
    /// policy the fixed-point DAC path applies to `NaN` samples).
    pub fn set_state(&mut self, fraction: f64) {
        self.fraction = if fraction.is_nan() {
            0.0
        } else {
            fraction.clamp(0.0, 1.0)
        };
    }

    /// Applies resistance/index *drift*: amorphous-phase structural
    /// relaxation slowly shifts the effective fraction toward crystalline
    /// by `nu * ln(1 + t / tau)`. A small effect for GSST but a real
    /// accuracy hazard for multi-level storage; exposed so experiments can
    /// toggle it (E3 ablation).
    ///
    /// Total function for arbitrary inputs: negative elapsed time is
    /// treated as zero (no un-drifting), `+inf` saturates, and a `NaN`
    /// shift (e.g. `nu = NaN`) leaves the state untouched — the fraction
    /// invariant `∈ [0, 1]` holds for every `(elapsed_s, nu)`.
    pub fn apply_drift(&mut self, elapsed_s: f64, nu: f64) {
        let tau = 1.0; // normalization time: 1 s
        let t = if elapsed_s.is_finite() {
            (elapsed_s / tau).max(0.0)
        } else if elapsed_s > 0.0 {
            f64::MAX
        } else {
            0.0
        };
        let shift = nu * (1.0 + t).ln();
        let next = self.fraction + shift;
        if !next.is_nan() {
            self.fraction = next.clamp(0.0, 1.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_ordered() {
        for m in [PcmMaterial::Gst225, PcmMaterial::Gsst, PcmMaterial::GeSe] {
            assert!(m.delta_n() > 0.0, "{m:?} should have positive dn");
            assert!(m.delta_k() > 0.0, "{m:?} should have positive dk");
        }
    }

    #[test]
    fn fom_ranks_low_loss_materials_higher() {
        // GeSe and GSST are the paper's low-loss picks; GST is lossy.
        assert!(PcmMaterial::GeSe.figure_of_merit() > PcmMaterial::Gst225.figure_of_merit());
        assert!(PcmMaterial::Gsst.figure_of_merit() > PcmMaterial::Gst225.figure_of_merit());
    }

    #[test]
    fn effective_index_interpolates_endpoints() {
        for m in [PcmMaterial::Gst225, PcmMaterial::Gsst, PcmMaterial::GeSe] {
            let a = m.effective_index(0.0);
            let c = m.effective_index(1.0);
            assert!(a.approx_eq(m.amorphous_index(), 1e-9));
            assert!(c.approx_eq(m.crystalline_index(), 1e-9));
            // Monotone real part along the mixing curve.
            let mut prev = a.re;
            for i in 1..=10 {
                let n = m.effective_index(i as f64 / 10.0).re;
                assert!(n >= prev - 1e-12);
                prev = n;
            }
        }
    }

    #[test]
    #[should_panic(expected = "crystalline fraction")]
    fn effective_index_rejects_bad_fraction() {
        let _ = PcmMaterial::Gsst.effective_index(1.5);
    }

    #[test]
    fn set_pulses_accumulate_and_saturate() {
        let mut cell = PcmCell::new(PcmMaterial::Gsst);
        for _ in 0..100 {
            cell.apply_set_pulse();
        }
        assert_eq!(cell.crystalline_fraction(), 1.0);
        assert_eq!(cell.pulse_count(), 100);
        assert!(cell.programming_energy() > 0.0);
    }

    #[test]
    fn program_level_hits_exact_quantized_states() {
        let mut cell = PcmCell::new(PcmMaterial::Gsst);
        cell.program_level(3, 8);
        assert!((cell.crystalline_fraction() - 3.0 / 7.0).abs() < 1e-12);
        cell.program_level(7, 8);
        assert_eq!(cell.crystalline_fraction(), 1.0);
        // Going down forces a reset (extra energy).
        let e_before = cell.programming_energy();
        cell.program_level(1, 8);
        assert!((cell.crystalline_fraction() - 1.0 / 7.0).abs() < 1e-12);
        assert!(cell.programming_energy() > e_before + 1.0e-9);
    }

    #[test]
    fn downward_reprogram_costs_reset() {
        let mut a = PcmCell::new(PcmMaterial::Gsst);
        a.program_level(4, 8);
        let up_energy = a.programming_energy();
        let mut b = PcmCell::new(PcmMaterial::Gsst);
        b.program_level(7, 8);
        b.program_level(4, 8);
        assert!(b.programming_energy() > up_energy);
    }

    #[test]
    fn drift_moves_fraction_logarithmically() {
        let mut cell = PcmCell::new(PcmMaterial::Gsst);
        cell.program_level(4, 8);
        let x0 = cell.crystalline_fraction();
        cell.apply_drift(10.0, 1e-3);
        let d1 = cell.crystalline_fraction() - x0;
        assert!(d1 > 0.0 && d1 < 0.01);
        let mut cell2 = PcmCell::new(PcmMaterial::Gsst);
        cell2.program_level(4, 8);
        cell2.apply_drift(1000.0, 1e-3);
        let d2 = cell2.crystalline_fraction() - x0;
        assert!(d2 > d1, "drift should grow with time");
    }

    #[test]
    fn zero_static_energy_between_pulses() {
        let mut cell = PcmCell::new(PcmMaterial::GeSe);
        cell.program_level(2, 4);
        let e = cell.programming_energy();
        // Nothing else charged: non-volatility means holding costs nothing.
        assert_eq!(cell.programming_energy(), e);
    }

    #[test]
    fn programming_time_positive() {
        let mut cell = PcmCell::new(PcmMaterial::Gsst);
        cell.program_level(5, 8);
        assert!(cell.programming_time() > 0.0);
    }

    // Wavelength sanity: constant exported and sensible.
    #[test]
    fn telecom_wavelength_is_1550nm() {
        assert_eq!(crate::units::TELECOM_WAVELENGTH, 1550e-9);
    }

    #[test]
    fn drift_is_total_for_extreme_inputs() {
        let mut cell = PcmCell::new(PcmMaterial::Gsst);
        cell.program_level(4, 8);
        let x0 = cell.crystalline_fraction();
        // Negative elapsed time never un-drifts (ln of a negative argument
        // used to produce NaN here).
        cell.apply_drift(-5.0, 1e-3);
        assert_eq!(cell.crystalline_fraction(), x0);
        // NaN inputs leave the state untouched.
        cell.apply_drift(f64::NAN, 1e-3);
        cell.apply_drift(10.0, f64::NAN);
        assert_eq!(cell.crystalline_fraction(), x0);
        // +inf saturates at the crystalline ceiling.
        cell.apply_drift(f64::INFINITY, 1e-3);
        assert_eq!(cell.crystalline_fraction(), 1.0);
        // A huge negative nu floors at fully amorphous.
        cell.apply_drift(1e9, -1e9);
        assert_eq!(cell.crystalline_fraction(), 0.0);
    }

    #[test]
    fn set_state_clamps_and_maps_nan_to_amorphous() {
        let mut cell = PcmCell::new(PcmMaterial::GeSe);
        cell.set_state(0.7);
        assert_eq!(cell.crystalline_fraction(), 0.7);
        assert_eq!(cell.pulse_count(), 0, "set_state charges nothing");
        assert_eq!(cell.programming_energy(), 0.0);
        cell.set_state(2.5);
        assert_eq!(cell.crystalline_fraction(), 1.0);
        cell.set_state(-1.0);
        assert_eq!(cell.crystalline_fraction(), 0.0);
        cell.set_state(f64::NAN);
        assert_eq!(cell.crystalline_fraction(), 0.0);
    }

    #[test]
    fn transmission_levels_are_monotone_unit_range() {
        for material in [PcmMaterial::Gst225, PcmMaterial::Gsst, PcmMaterial::GeSe] {
            let grid = transmission_levels(material, 16);
            assert_eq!(grid.len(), 16);
            assert!((grid[0] - 1.0).abs() < 1e-12, "level 0 is transparent");
            for w in grid.windows(2) {
                assert!(w[1] < w[0], "grid must fall monotonically");
            }
            assert!(grid[15] > 0.0 && grid[15] < 0.25, "floor {}", grid[15]);
        }
    }
}

//! Optical phase shifters: volatile thermo-optic heaters (the SOI status
//! quo) and the paper's non-volatile multilevel PCM shifters.
//!
//! The contrast the paper draws (§3) is energetic: a thermo-optic shifter
//! burns continuous electrical power to *hold* a phase, while a PCM shifter
//! holds its phase for free and only pays per *reprogram*. Both are modelled
//! behind the [`PhaseShifter`] trait so meshes can be instantiated with
//! either technology and compared (experiment E4).

use crate::pcm::{PcmCell, PcmMaterial, PcmProgramming};
use crate::units::TELECOM_WAVELENGTH;
use neuropulsim_linalg::C64;
use std::f64::consts::TAU;

/// Common interface of programmable phase-shifter technologies.
///
/// A shifter realizes a requested phase (possibly quantized), attenuates
/// the field by a technology-dependent factor, and has a static hold power
/// and a cumulative programming-energy ledger.
pub trait PhaseShifter {
    /// Requests the phase `phase` \[rad\]. The realized phase may differ
    /// (quantization, saturation); read it back with [`PhaseShifter::phase`].
    fn set_phase(&mut self, phase: f64);

    /// The currently realized phase \[rad\], in `[0, 2*pi)`.
    fn phase(&self) -> f64;

    /// Field (amplitude) transmission factor in `(0, 1]`.
    fn field_transmission(&self) -> f64;

    /// Static electrical power needed to *hold* the current phase \[W\].
    fn hold_power(&self) -> f64;

    /// Cumulative energy spent programming this shifter \[J\].
    fn programming_energy(&self) -> f64;

    /// Time needed for the most recent reprogram \[s\].
    fn programming_time(&self) -> f64;

    /// The complex field multiplier `t * exp(i*phi)` applied to light
    /// passing through the shifter.
    fn transfer(&self) -> C64 {
        C64::from_polar(self.field_transmission(), self.phase())
    }
}

/// Wraps a phase onto `[0, 2*pi)`.
pub fn wrap_phase(phase: f64) -> f64 {
    let p = phase % TAU;
    if p < 0.0 {
        p + TAU
    } else {
        p
    }
}

/// An idealized, lossless, continuous phase shifter (for pure-math meshes
/// and as the "no imperfections" reference in robustness sweeps).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct IdealPhaseShifter {
    phase: f64,
}

impl IdealPhaseShifter {
    /// Creates an ideal shifter at zero phase.
    pub fn new() -> Self {
        Self::default()
    }
}

impl PhaseShifter for IdealPhaseShifter {
    fn set_phase(&mut self, phase: f64) {
        self.phase = wrap_phase(phase);
    }
    fn phase(&self) -> f64 {
        self.phase
    }
    fn field_transmission(&self) -> f64 {
        1.0
    }
    fn hold_power(&self) -> f64 {
        0.0
    }
    fn programming_energy(&self) -> f64 {
        0.0
    }
    fn programming_time(&self) -> f64 {
        0.0
    }
}

/// A volatile thermo-optic phase shifter (resistive heater above the
/// waveguide).
///
/// Phase is linear in heater power: `phi = pi * P / P_pi`. Holding any
/// non-zero phase therefore costs continuous power — the inefficiency the
/// paper's PCM devices remove.
///
/// # Examples
///
/// ```
/// use neuropulsim_photonics::phase::{PhaseShifter, ThermoOpticShifter};
///
/// let mut ps = ThermoOpticShifter::default();
/// ps.set_phase(std::f64::consts::PI);
/// assert!((ps.hold_power() - 0.020).abs() < 1e-9); // P_pi = 20 mW
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermoOpticShifter {
    phase: f64,
    /// Power for a pi phase shift \[W\]. Typical SOI heaters: ~20 mW.
    p_pi: f64,
    /// Thermal response time \[s\]. Typical: ~10 us.
    response_time: f64,
    /// Field transmission of the heater section (small insertion loss).
    transmission: f64,
    programming_energy: f64,
}

impl ThermoOpticShifter {
    /// Creates a shifter with the given `P_pi` \[W\] and response time \[s\].
    pub fn new(p_pi: f64, response_time: f64) -> Self {
        ThermoOpticShifter {
            phase: 0.0,
            p_pi,
            response_time,
            transmission: 0.997, // ~0.026 dB insertion loss
            programming_energy: 0.0,
        }
    }

    /// `P_pi` of this heater \[W\].
    pub fn p_pi(&self) -> f64 {
        self.p_pi
    }
}

impl Default for ThermoOpticShifter {
    /// Typical SOI thermo-optic heater: `P_pi = 20 mW`, 10 us response.
    fn default() -> Self {
        ThermoOpticShifter::new(20e-3, 10e-6)
    }
}

impl PhaseShifter for ThermoOpticShifter {
    fn set_phase(&mut self, phase: f64) {
        self.phase = wrap_phase(phase);
        // Transient settle energy: hold power during one response time.
        self.programming_energy += self.hold_power() * self.response_time;
    }
    fn phase(&self) -> f64 {
        self.phase
    }
    fn field_transmission(&self) -> f64 {
        self.transmission
    }
    fn hold_power(&self) -> f64 {
        self.phase / std::f64::consts::PI * self.p_pi
    }
    fn programming_energy(&self) -> f64 {
        self.programming_energy
    }
    fn programming_time(&self) -> f64 {
        self.response_time
    }
}

/// A non-volatile multilevel PCM phase shifter: a PCM patch of length
/// `patch_length` over the waveguide, with mode confinement factor `gamma`
/// in the patch.
///
/// The realized phase is quantized onto the cell's `levels` states; the
/// patch absorbs more as it crystallizes (the `dk` penalty captured by the
/// material's figure of merit).
#[derive(Debug, Clone, PartialEq)]
pub struct PcmPhaseShifter {
    cell: PcmCell,
    levels: u32,
    /// Patch length \[m\].
    patch_length: f64,
    /// Modal confinement factor of light in the PCM patch.
    gamma: f64,
    wavelength: f64,
    level: u32,
}

impl PcmPhaseShifter {
    /// Creates a shifter whose patch length is sized to give a full
    /// `2*pi` phase range at complete crystallization.
    ///
    /// # Panics
    ///
    /// Panics if `levels < 2`.
    pub fn new(material: PcmMaterial, levels: u32) -> Self {
        PcmPhaseShifter::with_params(material, levels, 0.1, PcmProgramming::default())
    }

    /// Creates a shifter with explicit confinement factor and programming
    /// parameters. The patch length is sized for a `2*pi` full range.
    ///
    /// # Panics
    ///
    /// Panics if `levels < 2` or `gamma <= 0`.
    pub fn with_params(
        material: PcmMaterial,
        levels: u32,
        gamma: f64,
        programming: PcmProgramming,
    ) -> Self {
        assert!(levels >= 2, "a PCM shifter needs at least 2 levels");
        assert!(gamma > 0.0, "confinement factor must be positive");
        let wavelength = TELECOM_WAVELENGTH;
        let dn = material.effective_index(1.0).re - material.effective_index(0.0).re;
        // phi_max = (2 pi / lambda) * gamma * dn * L = 2 pi  =>  L = lambda / (gamma dn)
        let patch_length = wavelength / (gamma * dn);
        PcmPhaseShifter {
            cell: PcmCell::with_programming(material, programming),
            levels,
            patch_length,
            gamma,
            wavelength,
            level: 0,
        }
    }

    /// The number of programmable levels.
    pub fn levels(&self) -> u32 {
        self.levels
    }

    /// The currently programmed level.
    pub fn level(&self) -> u32 {
        self.level
    }

    /// The patch length \[m\].
    pub fn patch_length(&self) -> f64 {
        self.patch_length
    }

    /// Borrows the underlying PCM cell.
    pub fn cell(&self) -> &PcmCell {
        &self.cell
    }

    /// Phase produced by crystalline fraction `x`.
    fn phase_of_fraction(&self, x: f64) -> f64 {
        let n0 = self.cell.material().effective_index(0.0).re;
        let n = self.cell.material().effective_index(x).re;
        TAU / self.wavelength * self.gamma * (n - n0) * self.patch_length
    }

    /// Crystalline fraction of level `l`.
    fn fraction_of_level(&self, l: u32) -> f64 {
        l as f64 / (self.levels - 1) as f64
    }

    /// The phase realized at each programmable level \[rad\].
    pub fn level_phases(&self) -> Vec<f64> {
        (0..self.levels)
            .map(|l| self.phase_of_fraction(self.fraction_of_level(l)))
            .collect()
    }

    /// Applies state drift over `elapsed_s` seconds with drift coefficient
    /// `nu` (see [`PcmCell::apply_drift`]).
    pub fn apply_drift(&mut self, elapsed_s: f64, nu: f64) {
        self.cell.apply_drift(elapsed_s, nu);
    }
}

impl PhaseShifter for PcmPhaseShifter {
    /// Programs the level whose phase is closest to the request. The
    /// realized phase is the quantized one.
    fn set_phase(&mut self, phase: f64) {
        let target = wrap_phase(phase);
        let mut best = 0u32;
        let mut best_err = f64::INFINITY;
        for l in 0..self.levels {
            let p = self.phase_of_fraction(self.fraction_of_level(l));
            // Circular distance.
            let mut d = (p - target).abs() % TAU;
            if d > std::f64::consts::PI {
                d = TAU - d;
            }
            if d < best_err {
                best_err = d;
                best = l;
            }
        }
        self.level = best;
        self.cell.program_level(best, self.levels);
    }

    fn phase(&self) -> f64 {
        wrap_phase(self.phase_of_fraction(self.cell.crystalline_fraction()))
    }

    /// Absorption of the patch grows with crystallinity: `exp(-2*pi*k_eff*
    /// gamma*L / lambda)` field transmission.
    fn field_transmission(&self) -> f64 {
        let k = self
            .cell
            .material()
            .effective_index(self.cell.crystalline_fraction())
            .im;
        (-TAU / self.wavelength * self.gamma * k * self.patch_length).exp()
    }

    /// Non-volatile: zero hold power. This is the headline advantage.
    fn hold_power(&self) -> f64 {
        0.0
    }

    fn programming_energy(&self) -> f64 {
        self.cell.programming_energy()
    }

    fn programming_time(&self) -> f64 {
        self.cell.programming_time()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn wrap_phase_range() {
        assert!((wrap_phase(-PI) - PI).abs() < 1e-12);
        assert!(wrap_phase(TAU) < 1e-12);
        assert!((wrap_phase(3.0 * PI) - PI).abs() < 1e-12);
        assert_eq!(wrap_phase(1.0), 1.0);
    }

    #[test]
    fn ideal_shifter_is_free_and_exact() {
        let mut ps = IdealPhaseShifter::new();
        ps.set_phase(1.234);
        assert_eq!(ps.phase(), 1.234);
        assert_eq!(ps.hold_power(), 0.0);
        assert_eq!(ps.field_transmission(), 1.0);
        let t = ps.transfer();
        assert!((t.abs() - 1.0).abs() < 1e-12);
        assert!((t.arg() - 1.234).abs() < 1e-12);
    }

    #[test]
    fn thermo_optic_power_scales_with_phase() {
        let mut ps = ThermoOpticShifter::default();
        ps.set_phase(PI / 2.0);
        let p_half = ps.hold_power();
        ps.set_phase(PI);
        assert!((ps.hold_power() - 2.0 * p_half).abs() < 1e-12);
        assert!(ps.programming_energy() > 0.0);
    }

    #[test]
    fn thermo_optic_zero_phase_zero_power() {
        let ps = ThermoOpticShifter::default();
        assert_eq!(ps.hold_power(), 0.0);
    }

    #[test]
    fn pcm_shifter_full_range_is_2pi() {
        let ps = PcmPhaseShifter::new(PcmMaterial::Gsst, 16);
        let phases = ps.level_phases();
        assert!(phases[0].abs() < 1e-12);
        assert!((phases[15] - TAU).abs() < 1e-9);
    }

    #[test]
    fn pcm_quantizes_to_nearest_level() {
        let mut ps = PcmPhaseShifter::new(PcmMaterial::Gsst, 8);
        ps.set_phase(PI);
        let realized = ps.phase();
        // Error bounded by half the worst-case level spacing.
        let phases = ps.level_phases();
        let max_gap = phases
            .windows(2)
            .map(|w| w[1] - w[0])
            .fold(0.0f64, f64::max);
        let mut err = (realized - PI).abs() % TAU;
        if err > PI {
            err = TAU - err;
        }
        assert!(err <= max_gap / 2.0 + 1e-9, "err={err}, gap={max_gap}");
    }

    #[test]
    fn pcm_quantization_error_shrinks_with_levels() {
        let mut coarse = PcmPhaseShifter::new(PcmMaterial::Gsst, 4);
        let mut fine = PcmPhaseShifter::new(PcmMaterial::Gsst, 64);
        let target = 2.0;
        coarse.set_phase(target);
        fine.set_phase(target);
        let e_coarse = (coarse.phase() - target).abs();
        let e_fine = (fine.phase() - target).abs();
        assert!(e_fine < e_coarse);
    }

    #[test]
    fn pcm_zero_hold_power_nonzero_program_energy() {
        let mut ps = PcmPhaseShifter::new(PcmMaterial::Gsst, 8);
        ps.set_phase(PI);
        assert_eq!(ps.hold_power(), 0.0);
        assert!(ps.programming_energy() > 0.0);
    }

    #[test]
    fn pcm_loss_grows_with_crystallinity() {
        let mut ps = PcmPhaseShifter::new(PcmMaterial::Gsst, 8);
        let t_amorphous = ps.field_transmission();
        ps.set_phase(TAU * 0.99); // near fully crystalline
        let t_crystalline = ps.field_transmission();
        assert!(t_crystalline < t_amorphous);
        assert!(t_crystalline > 0.0);
    }

    #[test]
    fn gese_lower_loss_than_gst() {
        let mut gese = PcmPhaseShifter::new(PcmMaterial::GeSe, 8);
        let mut gst = PcmPhaseShifter::new(PcmMaterial::Gst225, 8);
        gese.set_phase(PI);
        gst.set_phase(PI);
        assert!(gese.field_transmission() > gst.field_transmission());
    }

    #[test]
    fn patch_length_is_micron_scale() {
        let ps = PcmPhaseShifter::new(PcmMaterial::Gsst, 8);
        let l = ps.patch_length();
        assert!(
            l > 1e-6 && l < 100e-6,
            "patch length {l} m not micron-scale"
        );
    }

    #[test]
    fn transfer_combines_phase_and_loss() {
        let mut ps = PcmPhaseShifter::new(PcmMaterial::Gsst, 32);
        ps.set_phase(1.0);
        let t = ps.transfer();
        assert!((t.abs() - ps.field_transmission()).abs() < 1e-12);
        assert!((t.arg() - ps.phase()).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least 2 levels")]
    fn pcm_rejects_single_level() {
        let _ = PcmPhaseShifter::new(PcmMaterial::Gsst, 1);
    }
}

//! Technology-level energy, power and area constants, plus a labelled
//! energy ledger.
//!
//! These numbers parameterize the system-level "speed, energy consumption,
//! and footprint" benchmarking the paper assigns to its simulation platform
//! (§5). Values are representative of the literature the paper cites
//! (silicon MZMs ~tens of fJ/symbol, Ge detectors + ADC ~pJ/sample,
//! thermo-optic P_pi ~20 mW, PCM writes ~nJ) and are deliberately exposed
//! as plain data so experiments can sweep them.

use std::collections::BTreeMap;
use std::fmt;

/// Electro-optic and thermal technology constants of the augmented SOI
/// platform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TechnologyProfile {
    /// Thermo-optic power for a pi shift \[W\].
    pub thermo_p_pi: f64,
    /// Thermo-optic response time \[s\].
    pub thermo_response: f64,
    /// PCM SET pulse energy \[J\].
    pub pcm_set_energy: f64,
    /// PCM RESET pulse energy \[J\].
    pub pcm_reset_energy: f64,
    /// Modulator energy per symbol \[J\].
    pub modulator_energy_per_symbol: f64,
    /// Modulator / detector symbol rate \[symbols/s\] (vector clock).
    pub symbol_rate: f64,
    /// Receiver (TIA + ADC) energy per sampled output \[J\].
    pub receiver_energy_per_sample: f64,
    /// DAC energy per programmed analog value \[J\].
    pub dac_energy_per_sample: f64,
    /// Optical carrier power injected per input channel \[W\].
    pub carrier_power_per_channel: f64,
    /// Laser wall-plug efficiency (electrical -> optical).
    pub laser_efficiency: f64,
}

impl TechnologyProfile {
    /// Electrical power drawn by the laser to supply `channels` carriers.
    pub fn laser_power(&self, channels: usize) -> f64 {
        self.carrier_power_per_channel * channels as f64 / self.laser_efficiency
    }

    /// Time to stream `vectors` input vectors at the symbol rate \[s\].
    pub fn streaming_time(&self, vectors: usize) -> f64 {
        vectors as f64 / self.symbol_rate
    }
}

impl Default for TechnologyProfile {
    fn default() -> Self {
        TechnologyProfile {
            thermo_p_pi: 20e-3,
            thermo_response: 10e-6,
            pcm_set_energy: 0.4e-9,
            pcm_reset_energy: 1.2e-9,
            modulator_energy_per_symbol: 50e-15,
            symbol_rate: 10e9, // conservative 10 GS/s vector clock
            receiver_energy_per_sample: 1.5e-12,
            dac_energy_per_sample: 0.5e-12,
            carrier_power_per_channel: 1e-3,
            laser_efficiency: 0.2,
        }
    }
}

/// Per-component footprint constants \[m^2\] for the SWaP analysis (E9).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComponentAreas {
    /// Area of one standard (2-coupler, 2-phase-shifter) MZI cell.
    pub mzi: f64,
    /// Area scale factor of a compacted (Bell–Walmsley style) cell.
    pub compact_factor: f64,
    /// Area of one high-speed input modulator.
    pub modulator: f64,
    /// Area of one photodetector + TIA.
    pub detector: f64,
    /// Area of a PCM patch + heater added to a phase shifter.
    pub pcm_patch: f64,
}

impl Default for ComponentAreas {
    fn default() -> Self {
        ComponentAreas {
            // 120 um x 80 um MZI cell dominated by the thermal shifters.
            mzi: 120e-6 * 80e-6,
            compact_factor: 0.6,
            modulator: 300e-6 * 50e-6,
            detector: 50e-6 * 50e-6,
            pcm_patch: 20e-6 * 10e-6,
        }
    }
}

/// A labelled energy ledger: named contributions in joules, accumulated
/// over a workload and printable as a breakdown table.
///
/// # Examples
///
/// ```
/// use neuropulsim_photonics::energy::EnergyLedger;
///
/// let mut ledger = EnergyLedger::new();
/// ledger.add("laser", 2.0e-9);
/// ledger.add("modulators", 1.0e-9);
/// ledger.add("laser", 0.5e-9);
/// assert!((ledger.total() - 3.5e-9).abs() < 1e-18);
/// assert!((ledger.get("laser") - 2.5e-9).abs() < 1e-18);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EnergyLedger {
    entries: BTreeMap<String, f64>,
}

impl EnergyLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `joules` to the component named `label`.
    pub fn add(&mut self, label: &str, joules: f64) {
        *self.entries.entry(label.to_string()).or_insert(0.0) += joules;
    }

    /// Energy recorded for `label` (0 if absent) \[J\].
    pub fn get(&self, label: &str) -> f64 {
        self.entries.get(label).copied().unwrap_or(0.0)
    }

    /// Total energy across all components \[J\].
    pub fn total(&self) -> f64 {
        self.entries.values().sum()
    }

    /// Iterates over `(label, joules)` entries in label order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.entries.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Merges another ledger into this one.
    pub fn merge(&mut self, other: &EnergyLedger) {
        for (k, v) in other.iter() {
            self.add(k, v);
        }
    }

    /// Returns `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl fmt::Display for EnergyLedger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total = self.total();
        for (k, v) in self.iter() {
            let pct = if total > 0.0 { 100.0 * v / total } else { 0.0 };
            writeln!(f, "{k:>18}: {:>12.3e} J ({pct:5.1}%)", v)?;
        }
        writeln!(f, "{:>18}: {:>12.3e} J", "total", total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_accumulates_and_merges() {
        let mut a = EnergyLedger::new();
        a.add("x", 1.0);
        a.add("y", 2.0);
        let mut b = EnergyLedger::new();
        b.add("x", 3.0);
        a.merge(&b);
        assert_eq!(a.get("x"), 4.0);
        assert_eq!(a.total(), 6.0);
        assert_eq!(a.get("missing"), 0.0);
        assert!(!a.is_empty());
    }

    #[test]
    fn display_contains_total() {
        let mut l = EnergyLedger::new();
        l.add("laser", 1e-9);
        let s = l.to_string();
        assert!(s.contains("laser"));
        assert!(s.contains("total"));
    }

    #[test]
    fn laser_power_scales_with_channels() {
        let t = TechnologyProfile::default();
        let p8 = t.laser_power(8);
        let p16 = t.laser_power(16);
        assert!((p16 / p8 - 2.0).abs() < 1e-12);
        // 1 mW/channel at 20% efficiency = 5 mW/channel electrical.
        assert!((p8 - 8.0 * 5e-3).abs() < 1e-12);
    }

    #[test]
    fn streaming_time_at_symbol_rate() {
        let t = TechnologyProfile::default();
        assert!((t.streaming_time(10_000_000_000) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn default_areas_are_positive_and_compact_smaller() {
        let a = ComponentAreas::default();
        assert!(a.mzi > 0.0 && a.modulator > 0.0 && a.detector > 0.0);
        assert!(a.compact_factor < 1.0);
    }
}

//! Photodetector models: responsivity, shot noise, thermal noise and the
//! readout of a detector array at the mesh output plane.
//!
//! The paper's platform advertises >50 GHz detectors (§2); bandwidth
//! enters here through the noise-equivalent bandwidth of each sample.

use crate::units::ELEMENTARY_CHARGE;
use neuropulsim_linalg::CVector;
use rand::Rng;

/// A PIN photodetector with Gaussian shot + thermal noise.
///
/// Converts optical power \[W\] into photocurrent \[A\]:
/// `I = R * P + n_shot + n_thermal`, with
/// `sigma_shot^2 = 2 q R P B` and `sigma_thermal^2 = (4 k T / R_load) B`
/// folded into a single input-referred thermal current density.
///
/// # Examples
///
/// ```
/// use neuropulsim_photonics::detector::Photodetector;
///
/// let det = Photodetector::default();
/// // Noiseless mean response: 1 mW in, ~1 mA out at R = 1 A/W.
/// assert!((det.mean_current(1e-3) - 1e-3).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Photodetector {
    /// Responsivity \[A/W\]. ~1 A/W for Ge-on-Si at 1550 nm.
    pub responsivity: f64,
    /// Noise-equivalent bandwidth \[Hz\].
    pub bandwidth: f64,
    /// Input-referred thermal noise current density \[A/sqrt(Hz)\].
    pub thermal_noise_density: f64,
    /// Dark current \[A\].
    pub dark_current: f64,
}

impl Photodetector {
    /// Creates a detector with the given responsivity \[A/W\] and
    /// bandwidth \[Hz\], using typical receiver thermal noise.
    pub fn new(responsivity: f64, bandwidth: f64) -> Self {
        Photodetector {
            responsivity,
            bandwidth,
            thermal_noise_density: 10e-12, // 10 pA/sqrt(Hz) TIA-class
            dark_current: 50e-9,
        }
    }

    /// Mean (noise-free) photocurrent for incident power `power_w`.
    pub fn mean_current(&self, power_w: f64) -> f64 {
        self.responsivity * power_w.max(0.0) + self.dark_current
    }

    /// RMS noise current at incident power `power_w` \[A\].
    pub fn noise_sigma(&self, power_w: f64) -> f64 {
        let i_mean = self.mean_current(power_w);
        let shot_var = 2.0 * ELEMENTARY_CHARGE * i_mean * self.bandwidth;
        let thermal_var = self.thermal_noise_density.powi(2) * self.bandwidth;
        (shot_var + thermal_var).sqrt()
    }

    /// Samples a noisy photocurrent for incident power `power_w`.
    pub fn sample_current<R: Rng + ?Sized>(&self, rng: &mut R, power_w: f64) -> f64 {
        self.mean_current(power_w)
            + self.noise_sigma(power_w) * neuropulsim_linalg::random::gaussian(rng)
    }

    /// Signal-to-noise ratio (power SNR) at incident power `power_w`.
    pub fn snr(&self, power_w: f64) -> f64 {
        let sig = self.responsivity * power_w.max(0.0);
        let sigma = self.noise_sigma(power_w);
        if sigma == 0.0 {
            f64::INFINITY
        } else {
            (sig / sigma).powi(2)
        }
    }
}

impl Default for Photodetector {
    /// A 50 GHz, 1 A/W receiver matching the paper's platform claims.
    fn default() -> Self {
        Photodetector::new(1.0, 50e9)
    }
}

/// A bank of identical photodetectors reading out the output ports of a
/// mesh, optionally in a *differential* (balanced) configuration that
/// recovers signed values from intensity pairs.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DetectorArray {
    /// The per-port detector model.
    pub detector: Photodetector,
}

impl DetectorArray {
    /// Creates an array with the given per-port detector.
    pub fn new(detector: Photodetector) -> Self {
        DetectorArray { detector }
    }

    /// Reads the optical powers on every port without noise \[W in, A out\].
    pub fn read_mean(&self, fields: &CVector) -> Vec<f64> {
        fields
            .powers()
            .iter()
            .map(|&p| self.detector.mean_current(p))
            .collect()
    }

    /// Reads every port with sampled noise.
    pub fn read_noisy<R: Rng + ?Sized>(&self, rng: &mut R, fields: &CVector) -> Vec<f64> {
        fields
            .powers()
            .iter()
            .map(|&p| self.detector.sample_current(rng, p))
            .collect()
    }

    /// Coherent (homodyne) readout of the *real part* of each field
    /// amplitude against a unit local oscillator, with additive Gaussian
    /// noise of RMS `sigma` per port. This is the readout mode that lets a
    /// photonic MVM return signed values directly.
    pub fn read_homodyne<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        fields: &CVector,
        sigma: f64,
    ) -> Vec<f64> {
        fields
            .iter()
            .map(|z| z.re + sigma * neuropulsim_linalg::random::gaussian(rng))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neuropulsim_linalg::C64;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mean_current_linear_in_power() {
        let det = Photodetector::new(0.8, 10e9);
        let base = det.mean_current(0.0);
        assert!((det.mean_current(1e-3) - base - 0.8e-3).abs() < 1e-12);
    }

    #[test]
    fn negative_power_clamped() {
        let det = Photodetector::default();
        assert_eq!(det.mean_current(-1.0), det.mean_current(0.0));
    }

    #[test]
    fn snr_increases_with_power() {
        let det = Photodetector::default();
        assert!(det.snr(1e-3) > det.snr(1e-6));
        assert!(det.snr(1e-6) > det.snr(1e-9));
    }

    #[test]
    fn shot_noise_grows_with_power() {
        let det = Photodetector::default();
        assert!(det.noise_sigma(1e-3) > det.noise_sigma(1e-6));
    }

    #[test]
    fn sampled_current_statistics() {
        let det = Photodetector::default();
        let mut rng = StdRng::seed_from_u64(1);
        let p = 1e-4;
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| det.sample_current(&mut rng, p)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let sd = (samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64).sqrt();
        assert!((mean - det.mean_current(p)).abs() < 5.0 * det.noise_sigma(p) / (n as f64).sqrt());
        assert!((sd / det.noise_sigma(p) - 1.0).abs() < 0.05);
    }

    #[test]
    fn array_reads_powers() {
        let arr = DetectorArray::default();
        let v = CVector::from_slice(&[C64::new(0.0, 0.01), C64::real(0.02)]);
        let out = arr.read_mean(&v);
        let d = arr.detector.dark_current;
        assert!((out[0] - 1e-4 - d).abs() < 1e-12);
        assert!((out[1] - 4e-4 - d).abs() < 1e-12);
    }

    #[test]
    fn homodyne_reads_signed_values() {
        let arr = DetectorArray::default();
        let mut rng = StdRng::seed_from_u64(2);
        let v = CVector::from_reals(&[-0.5, 0.25]);
        let out = arr.read_homodyne(&mut rng, &v, 0.0);
        assert!((out[0] + 0.5).abs() < 1e-12);
        assert!((out[1] - 0.25).abs() < 1e-12);
    }
}

//! Excitable Q-switched laser neuron — the Yamada model.
//!
//! §3 of the paper explores "Q-switched III-V on-chip lasers ... as
//! chipscale excitable spiking sources". The canonical dynamical model of
//! a laser with saturable absorber is the Yamada system
//!
//! ```text
//!   dG/dt = gamma * (A - G - G*I)          (gain)
//!   dQ/dt = gamma * (B - Q - a*Q*I)        (saturable absorption)
//!   dI/dt = (G - Q - 1) * I + eps + u(t)   (intensity, + injection)
//! ```
//!
//! In the excitable regime (`A - B - 1 < 0`) the off state is stable, but a
//! perturbation that pushes net gain past threshold fires one large,
//! stereotyped intensity spike followed by a refractory period — exactly
//! the leaky-integrate-and-fire-like behaviour a photonic SNN neuron needs.
//! Time is normalized to the cavity photon lifetime; [`YamadaParams::time_unit`]
//! converts to seconds (sub-ns spikes, per the paper).

/// Parameters of the Yamada excitable-laser model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct YamadaParams {
    /// Pump parameter `A` (small-signal gain bias).
    pub pump: f64,
    /// Absorption parameter `B`.
    pub absorption: f64,
    /// Absorber saturation ratio `a`.
    pub saturation: f64,
    /// Carrier relaxation rate `gamma` (slow timescale).
    pub gamma: f64,
    /// Spontaneous-emission floor `eps` keeping `I > 0`.
    pub epsilon: f64,
    /// Integration step in normalized time units.
    pub dt: f64,
    /// Intensity level above which the neuron is considered spiking.
    pub spike_threshold: f64,
    /// Seconds per normalized time unit (photon-lifetime scale).
    pub time_unit: f64,
}

impl YamadaParams {
    /// Distance of the rest state from the lasing threshold:
    /// `A - B - 1`. Negative means excitable (off state stable).
    pub fn threshold_margin(&self) -> f64 {
        self.pump - self.absorption - 1.0
    }
}

impl Default for YamadaParams {
    /// A class-1 excitable operating point used widely in the literature:
    /// `A = 6.5, B = 5.8, a = 1.8` (margin -0.3), slow recovery
    /// `gamma = 0.02`, 10 ps per normalized unit (sub-ns spikes).
    fn default() -> Self {
        YamadaParams {
            pump: 6.5,
            absorption: 5.8,
            saturation: 1.8,
            gamma: 0.02,
            epsilon: 1e-6,
            dt: 0.02,
            spike_threshold: 1.0,
            time_unit: 10e-12,
        }
    }
}

/// State of the laser: gain, absorption, intensity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct YamadaState {
    /// Gain `G`.
    pub gain: f64,
    /// Absorption `Q`.
    pub absorption: f64,
    /// Intensity `I` (normalized photon number).
    pub intensity: f64,
}

/// An excitable spiking laser integrated with RK4.
///
/// # Examples
///
/// ```
/// use neuropulsim_photonics::laser::YamadaLaser;
///
/// let mut laser = YamadaLaser::new(Default::default());
/// laser.settle();
/// // A strong gain kick fires a spike; a weak one does not.
/// assert!(laser.fire_probe(1.0));
/// laser.settle();
/// assert!(!laser.fire_probe(0.05));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct YamadaLaser {
    params: YamadaParams,
    state: YamadaState,
    time: f64,
    spiking: bool,
    spike_times: Vec<f64>,
}

impl YamadaLaser {
    /// Creates a laser at its rest state (`G = A, Q = B, I ~ 0`).
    pub fn new(params: YamadaParams) -> Self {
        YamadaLaser {
            state: YamadaState {
                gain: params.pump,
                absorption: params.absorption,
                intensity: params.epsilon,
            },
            params,
            time: 0.0,
            spiking: false,
            spike_times: Vec::new(),
        }
    }

    /// The model parameters.
    pub fn params(&self) -> &YamadaParams {
        &self.params
    }

    /// The current dynamical state.
    pub fn state(&self) -> YamadaState {
        self.state
    }

    /// Elapsed normalized time.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Times (normalized units) at which spikes were detected.
    pub fn spike_times(&self) -> &[f64] {
        &self.spike_times
    }

    /// Number of spikes fired so far.
    pub fn spike_count(&self) -> usize {
        self.spike_times.len()
    }

    fn derivatives(&self, s: &YamadaState, injection: f64) -> (f64, f64, f64) {
        let p = &self.params;
        let dg = p.gamma * (p.pump - s.gain - s.gain * s.intensity);
        let dq =
            p.gamma * (p.absorption - s.absorption - p.saturation * s.absorption * s.intensity);
        let di = (s.gain - s.absorption - 1.0) * s.intensity + p.epsilon + injection;
        (dg, dq, di)
    }

    /// Advances one RK4 step with constant optical/electrical injection
    /// `injection` (added to `dI/dt`) over the step.
    pub fn step(&mut self, injection: f64) {
        let h = self.params.dt;
        let s0 = self.state;
        let k1 = self.derivatives(&s0, injection);
        let s1 = advance(&s0, &k1, h / 2.0);
        let k2 = self.derivatives(&s1, injection);
        let s2 = advance(&s0, &k2, h / 2.0);
        let k3 = self.derivatives(&s2, injection);
        let s3 = advance(&s0, &k3, h);
        let k4 = self.derivatives(&s3, injection);
        self.state = YamadaState {
            gain: s0.gain + h / 6.0 * (k1.0 + 2.0 * k2.0 + 2.0 * k3.0 + k4.0),
            absorption: s0.absorption + h / 6.0 * (k1.1 + 2.0 * k2.1 + 2.0 * k3.1 + k4.1),
            intensity: (s0.intensity + h / 6.0 * (k1.2 + 2.0 * k2.2 + 2.0 * k3.2 + k4.2)).max(0.0),
        };
        self.time += h;
        // Rising-edge spike detection.
        let above = self.state.intensity > self.params.spike_threshold;
        if above && !self.spiking {
            self.spike_times.push(self.time);
        }
        self.spiking = above;
    }

    /// Instantaneously kicks the gain by `amplitude` (a pump/injection
    /// perturbation — how upstream spikes drive the neuron).
    pub fn perturb_gain(&mut self, amplitude: f64) {
        self.state.gain += amplitude;
    }

    /// Runs for `duration` normalized units with no injection, recording
    /// the intensity every step. Returns the trace.
    pub fn run(&mut self, duration: f64) -> Vec<f64> {
        let steps = (duration / self.params.dt).ceil() as usize;
        let mut trace = Vec::with_capacity(steps);
        for _ in 0..steps {
            self.step(0.0);
            trace.push(self.state.intensity);
        }
        trace
    }

    /// Lets the laser relax to its rest state (long quiet evolution) and
    /// clears the spike log.
    pub fn settle(&mut self) {
        let _ = self.run(2000.0);
        self.spike_times.clear();
        self.spiking = false;
    }

    /// Applies a gain kick of `amplitude`, evolves long enough for a spike
    /// to develop, and reports whether one fired. (Test/characterization
    /// helper — the excitability threshold probe.)
    pub fn fire_probe(&mut self, amplitude: f64) -> bool {
        let before = self.spike_count();
        self.perturb_gain(amplitude);
        let _ = self.run(300.0);
        self.spike_count() > before
    }

    /// Finds the minimum gain-kick amplitude that fires a spike, by
    /// bisection on `[0, hi]` to precision `tol`. The laser is settled
    /// before each probe.
    pub fn excitability_threshold(&mut self, hi: f64, tol: f64) -> f64 {
        let mut lo = 0.0;
        let mut hi = hi;
        while hi - lo > tol {
            let mid = 0.5 * (lo + hi);
            self.settle();
            if self.fire_probe(mid) {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        0.5 * (lo + hi)
    }
}

fn advance(s: &YamadaState, k: &(f64, f64, f64), h: f64) -> YamadaState {
    YamadaState {
        gain: s.gain + k.0 * h,
        absorption: s.absorption + k.1 * h,
        intensity: (s.intensity + k.2 * h).max(0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rest_state_is_stable() {
        let mut laser = YamadaLaser::new(Default::default());
        let trace = laser.run(1000.0);
        assert!(trace.iter().all(|&i| i < 1e-3), "should stay off");
        assert_eq!(laser.spike_count(), 0);
    }

    #[test]
    fn default_params_are_excitable() {
        let p = YamadaParams::default();
        assert!(
            p.threshold_margin() < 0.0,
            "rest state must be below threshold"
        );
    }

    #[test]
    fn strong_kick_fires_exactly_one_spike() {
        let mut laser = YamadaLaser::new(Default::default());
        laser.settle();
        laser.perturb_gain(1.0);
        let trace = laser.run(400.0);
        assert_eq!(laser.spike_count(), 1, "one kick, one spike");
        let peak = trace.iter().cloned().fold(0.0f64, f64::max);
        assert!(peak > 1.0, "spike should be large, got {peak}");
    }

    #[test]
    fn weak_kick_does_not_fire() {
        let mut laser = YamadaLaser::new(Default::default());
        laser.settle();
        assert!(!laser.fire_probe(0.05));
    }

    #[test]
    fn all_or_none_response() {
        // Spike amplitude is stereotyped: 2x threshold kick gives nearly the
        // same peak as 1.2x threshold kick.
        let mut a = YamadaLaser::new(Default::default());
        a.settle();
        a.perturb_gain(1.0);
        let peak_a = a.run(400.0).iter().cloned().fold(0.0f64, f64::max);
        let mut b = YamadaLaser::new(Default::default());
        b.settle();
        b.perturb_gain(2.0);
        let peak_b = b.run(400.0).iter().cloned().fold(0.0f64, f64::max);
        assert!(peak_a > 1.0 && peak_b > 1.0);
        assert!((peak_a - peak_b).abs() / peak_b < 0.5, "stereotyped spikes");
    }

    #[test]
    fn refractory_period_blocks_second_spike() {
        let mut laser = YamadaLaser::new(Default::default());
        laser.settle();
        laser.perturb_gain(1.0);
        let _ = laser.run(60.0); // fires and begins recovery
        let spikes_after_first = laser.spike_count();
        assert_eq!(spikes_after_first, 1);
        // Same kick immediately again: gain is depleted, no spike.
        laser.perturb_gain(1.0);
        let _ = laser.run(60.0);
        assert_eq!(
            laser.spike_count(),
            1,
            "refractory must block the second kick"
        );
        // After full recovery the same kick fires again.
        let _ = laser.run(2000.0);
        laser.perturb_gain(1.0);
        let _ = laser.run(300.0);
        assert_eq!(laser.spike_count(), 2);
    }

    #[test]
    fn threshold_is_near_margin() {
        let mut laser = YamadaLaser::new(Default::default());
        let th = laser.excitability_threshold(2.0, 0.02);
        // The static margin is 0.3; dynamic threshold is the same order.
        assert!(
            th > 0.05 && th < 1.0,
            "threshold {th} out of expected range"
        );
    }

    #[test]
    fn spike_duration_is_subnanosecond() {
        let mut laser = YamadaLaser::new(Default::default());
        laser.settle();
        laser.perturb_gain(1.0);
        let trace = laser.run(400.0);
        let p = *laser.params();
        let above: usize = trace.iter().filter(|&&i| i > p.spike_threshold).count();
        let width_s = above as f64 * p.dt * p.time_unit;
        assert!(width_s < 1e-9, "spike width {width_s} s should be sub-ns");
        assert!(width_s > 0.0);
    }
}

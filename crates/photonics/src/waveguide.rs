//! Waveguide propagation: loss, group delay and time-of-flight — the
//! "low-loss signal propagation without Joule heating" the paper's §2
//! credits to the photonic platform, and the source of the accelerator's
//! optical latency floor.

use crate::units::{db_per_cm_to_alpha, SPEED_OF_LIGHT};

/// A straight waveguide segment.
///
/// # Examples
///
/// ```
/// use neuropulsim_photonics::waveguide::Waveguide;
///
/// let wg = Waveguide::new(0.01, 2.0); // 1 cm at 2 dB/cm
/// assert!((wg.power_transmission() - 0.631).abs() < 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Waveguide {
    /// Physical length \[m\].
    pub length: f64,
    /// Propagation loss \[dB/cm\].
    pub loss_db_per_cm: f64,
    /// Group index (signal-velocity divisor).
    pub group_index: f64,
}

impl Waveguide {
    /// Creates a waveguide with the platform's default group index (4.2,
    /// SOI strip).
    ///
    /// # Panics
    ///
    /// Panics if `length` or the loss is negative.
    pub fn new(length: f64, loss_db_per_cm: f64) -> Self {
        assert!(length >= 0.0, "length must be non-negative");
        assert!(loss_db_per_cm >= 0.0, "loss must be non-negative");
        Waveguide {
            length,
            loss_db_per_cm,
            group_index: 4.2,
        }
    }

    /// Power transmission over the full length.
    pub fn power_transmission(&self) -> f64 {
        (-db_per_cm_to_alpha(self.loss_db_per_cm) * self.length).exp()
    }

    /// Field (amplitude) transmission over the full length.
    pub fn field_transmission(&self) -> f64 {
        self.power_transmission().sqrt()
    }

    /// Total insertion loss \[dB\] (positive).
    pub fn loss_db(&self) -> f64 {
        self.loss_db_per_cm * self.length * 100.0
    }

    /// Group delay (time of flight) \[s\].
    pub fn delay(&self) -> f64 {
        self.group_index * self.length / SPEED_OF_LIGHT
    }
}

/// Optical latency of a mesh accelerator: time of flight through `depth`
/// columns of `column_pitch`-long cells — the physical floor under the
/// `setup_cycles` of the system simulator's accelerator device.
pub fn mesh_time_of_flight(depth: usize, column_pitch: f64) -> f64 {
    Waveguide::new(depth as f64 * column_pitch, 0.0).delay()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_zero_length() {
        let wg = Waveguide::new(0.0, 2.0);
        assert_eq!(wg.power_transmission(), 1.0);
        assert_eq!(wg.delay(), 0.0);
        assert_eq!(wg.loss_db(), 0.0);
    }

    #[test]
    fn loss_compounds_exponentially() {
        let one = Waveguide::new(0.01, 2.0).power_transmission();
        let two = Waveguide::new(0.02, 2.0).power_transmission();
        assert!((two - one * one).abs() < 1e-12);
        assert!((Waveguide::new(0.01, 2.0).loss_db() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn field_is_sqrt_of_power() {
        let wg = Waveguide::new(0.005, 3.0);
        assert!((wg.field_transmission().powi(2) - wg.power_transmission()).abs() < 1e-15);
    }

    #[test]
    fn delay_matches_group_velocity() {
        // 1 mm at n_g = 4.2: ~14 ps.
        let wg = Waveguide::new(1e-3, 0.0);
        let d = wg.delay();
        assert!((d - 14e-12).abs() < 1e-12, "delay {d}");
    }

    #[test]
    fn mesh_flight_time_is_picoseconds() {
        // 16-column mesh at 120 um pitch: ~27 ps — far below one symbol
        // slot at 10 GS/s (100 ps); latency is I/O-dominated, as the
        // accelerator device model assumes.
        let t = mesh_time_of_flight(16, 120e-6);
        assert!(t > 1e-12 && t < 100e-12, "flight {t}");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_length() {
        let _ = Waveguide::new(-1.0, 1.0);
    }
}

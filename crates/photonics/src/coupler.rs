//! Directional couplers — the 2×2 passive splitters inside every MZI.
//!
//! A coupler with field cross-coupling angle `kappa` has the (lossless,
//! unitary) transfer matrix
//!
//! ```text
//!   [ cos(kappa)    i sin(kappa) ]
//!   [ i sin(kappa)  cos(kappa)   ]
//! ```
//!
//! An ideal 50:50 splitter has `kappa = pi/4`. Fabrication variation shows
//! up as a deviation `delta` of the coupling angle, which is the dominant
//! static imperfection limiting mesh fidelity (the motivation for the
//! error-tolerant Fldzhyan architecture in the paper's §4).

use neuropulsim_linalg::{CMatrix, C64};
use std::f64::consts::FRAC_PI_4;

/// A 2×2 directional coupler.
///
/// # Examples
///
/// ```
/// use neuropulsim_photonics::coupler::Coupler;
///
/// let ideal = Coupler::ideal_50_50();
/// assert!((ideal.cross_power() - 0.5).abs() < 1e-12);
/// assert!(ideal.transfer_matrix().is_unitary(1e-12));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Coupler {
    /// Field coupling angle in radians; `pi/4` is a 50:50 splitter.
    kappa: f64,
}

impl Coupler {
    /// Creates a coupler with the given field coupling angle \[rad\].
    pub fn new(kappa: f64) -> Self {
        Coupler { kappa }
    }

    /// The ideal 50:50 splitter (`kappa = pi/4`).
    pub fn ideal_50_50() -> Self {
        Coupler { kappa: FRAC_PI_4 }
    }

    /// A 50:50 splitter with a splitting-angle error `delta` \[rad\],
    /// modelling fabrication variation: `kappa = pi/4 + delta`.
    pub fn with_imbalance(delta: f64) -> Self {
        Coupler {
            kappa: FRAC_PI_4 + delta,
        }
    }

    /// Creates a coupler from its power cross-coupling ratio `t` in `[0, 1]`
    /// (fraction of power crossing to the other waveguide).
    ///
    /// # Panics
    ///
    /// Panics if `t` is outside `[0, 1]`.
    pub fn from_cross_power(t: f64) -> Self {
        assert!((0.0..=1.0).contains(&t), "cross power must be in [0, 1]");
        Coupler {
            kappa: t.sqrt().asin(),
        }
    }

    /// The field coupling angle \[rad\].
    pub fn kappa(&self) -> f64 {
        self.kappa
    }

    /// Fraction of optical power crossing to the opposite port.
    pub fn cross_power(&self) -> f64 {
        self.kappa.sin().powi(2)
    }

    /// Fraction of optical power staying in the same port.
    pub fn bar_power(&self) -> f64 {
        self.kappa.cos().powi(2)
    }

    /// The 2×2 unitary transfer matrix.
    pub fn transfer_matrix(&self) -> CMatrix {
        let (a, b, c, d) = self.elements();
        CMatrix::from_rows(2, 2, &[a, b, c, d])
    }

    /// The four matrix elements `(a, b, c, d)` row-major, for in-place
    /// application via [`CMatrix::apply_left_2x2`].
    pub fn elements(&self) -> (C64, C64, C64, C64) {
        let c = C64::real(self.kappa.cos());
        let s = C64::new(0.0, self.kappa.sin());
        (c, s, s, c)
    }
}

impl Default for Coupler {
    fn default() -> Self {
        Coupler::ideal_50_50()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neuropulsim_linalg::CVector;

    #[test]
    fn ideal_splits_evenly() {
        let c = Coupler::ideal_50_50();
        let out = c
            .transfer_matrix()
            .mul_vec(&CVector::from_reals(&[1.0, 0.0]));
        let p = out.powers();
        assert!((p[0] - 0.5).abs() < 1e-12);
        assert!((p[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn unitary_for_any_angle() {
        for k in [-0.3, 0.0, 0.5, FRAC_PI_4, 1.2] {
            assert!(Coupler::new(k).transfer_matrix().is_unitary(1e-12));
        }
    }

    #[test]
    fn power_conservation() {
        let c = Coupler::with_imbalance(0.07);
        assert!((c.cross_power() + c.bar_power() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_cross_power_roundtrip() {
        for t in [0.0, 0.1, 0.5, 0.9, 1.0] {
            let c = Coupler::from_cross_power(t);
            assert!((c.cross_power() - t).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "cross power")]
    fn from_cross_power_rejects_out_of_range() {
        let _ = Coupler::from_cross_power(1.5);
    }

    #[test]
    fn imbalance_shifts_splitting() {
        let c = Coupler::with_imbalance(0.05);
        assert!(c.cross_power() > 0.5);
        let c2 = Coupler::with_imbalance(-0.05);
        assert!(c2.cross_power() < 0.5);
    }
}

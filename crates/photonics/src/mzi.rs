//! The Mach–Zehnder interferometer (MZI): the unit cell of every mesh in
//! the paper's Fig. 2.
//!
//! An MZI is two directional couplers around an internal phase shifter
//! `theta`, preceded by an external phase shifter `phi`:
//!
//! ```text
//!   in0 ──[phi]──╮          ╭──[theta]──╮          ╭── out0
//!                │ coupler1 │           │ coupler2 │
//!   in1 ─────────╯          ╰───────────╯          ╰── out1
//! ```
//!
//! With ideal 50:50 couplers the transfer matrix is the standard Clements
//! form `i e^{i theta/2} [[e^{i phi} sin(theta/2), cos(theta/2)],
//! [e^{i phi} cos(theta/2), -sin(theta/2)]]`, an SU(2) element up to phase.
//! Coupler imbalance and arm loss are first-class parameters so meshes can
//! be evaluated under realistic imperfections (experiments E1–E2).

use crate::coupler::Coupler;
use neuropulsim_linalg::{CMatrix, C64};

/// A 2×2 Mach–Zehnder interferometer with programmable internal (`theta`)
/// and external (`phi`) phases.
///
/// # Examples
///
/// ```
/// use neuropulsim_photonics::mzi::Mzi;
/// use std::f64::consts::PI;
///
/// // theta = PI puts the MZI in the full-reflection ("bar") state...
/// let bar = Mzi::new(PI, 0.0);
/// assert!((bar.cross_power() - 0.0).abs() < 1e-12);
/// // ...and theta = 0 in the full-transmission ("cross") state.
/// let cross = Mzi::new(0.0, 0.0);
/// assert!((cross.cross_power() - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mzi {
    /// Internal phase (between the couplers) \[rad\].
    pub theta: f64,
    /// External phase (before the first coupler, on the top port) \[rad\].
    pub phi: f64,
    /// First (input-side) coupler.
    pub coupler_1: Coupler,
    /// Second (output-side) coupler.
    pub coupler_2: Coupler,
    /// Field transmission of each arm (captures waveguide + shifter loss).
    pub arm_transmission: f64,
}

impl Mzi {
    /// Creates an ideal MZI (perfect couplers, lossless arms).
    pub fn new(theta: f64, phi: f64) -> Self {
        Mzi {
            theta,
            phi,
            coupler_1: Coupler::ideal_50_50(),
            coupler_2: Coupler::ideal_50_50(),
            arm_transmission: 1.0,
        }
    }

    /// Creates an MZI with explicit (possibly imperfect) couplers.
    pub fn with_couplers(theta: f64, phi: f64, coupler_1: Coupler, coupler_2: Coupler) -> Self {
        Mzi {
            theta,
            phi,
            coupler_1,
            coupler_2,
            arm_transmission: 1.0,
        }
    }

    /// Sets the per-arm field transmission (1.0 = lossless), returning `self`
    /// builder-style.
    pub fn with_arm_transmission(mut self, transmission: f64) -> Self {
        assert!(
            transmission > 0.0 && transmission <= 1.0,
            "arm transmission must be in (0, 1]"
        );
        self.arm_transmission = transmission;
        self
    }

    /// The four elements `(a, b, c, d)` of the 2×2 transfer matrix,
    /// composed as `coupler2 * P(theta) * coupler1 * P(phi)` with uniform
    /// arm loss.
    pub fn elements(&self) -> (C64, C64, C64, C64) {
        let (a1, b1, c1, d1) = self.coupler_1.elements();
        let (a2, b2, c2, d2) = self.coupler_2.elements();
        let e_phi = C64::cis(self.phi);
        let e_theta = C64::cis(self.theta);

        // M1 = coupler1 * diag(e^{i phi}, 1)
        let m1 = (a1 * e_phi, b1, c1 * e_phi, d1);
        // M2 = coupler2 * diag(e^{i theta}, 1)
        let m2 = (a2 * e_theta, b2, c2 * e_theta, d2);
        // T = M2 * M1
        let t = self.arm_transmission;
        (
            (m2.0 * m1.0 + m2.1 * m1.2) * t,
            (m2.0 * m1.1 + m2.1 * m1.3) * t,
            (m2.2 * m1.0 + m2.3 * m1.2) * t,
            (m2.2 * m1.1 + m2.3 * m1.3) * t,
        )
    }

    /// The full 2×2 transfer matrix.
    pub fn transfer_matrix(&self) -> CMatrix {
        let (a, b, c, d) = self.elements();
        CMatrix::from_rows(2, 2, &[a, b, c, d])
    }

    /// Power transferred from input 0 to output 1 ("cross" transmission).
    pub fn cross_power(&self) -> f64 {
        self.elements().2.abs2()
    }

    /// Power transferred from input 0 to output 0 ("bar" transmission).
    pub fn bar_power(&self) -> f64 {
        self.elements().0.abs2()
    }

    /// `true` if the device is lossless and both couplers ideal.
    pub fn is_ideal(&self) -> bool {
        self.arm_transmission == 1.0
            && self.coupler_1 == Coupler::ideal_50_50()
            && self.coupler_2 == Coupler::ideal_50_50()
    }
}

impl Default for Mzi {
    fn default() -> Self {
        Mzi::new(0.0, 0.0)
    }
}

/// A compacted 2×2 cell in the style of Bell & Walmsley (*APL Photonics*
/// 6, 070804, 2021): the same unitary as a full [`Mzi`], realized in a
/// shorter physical cell (single-section symmetric drive), so depth and
/// loss shrink while the programming model is unchanged.
///
/// `elements()` evaluates the Clements closed form
/// `i e^{iθ/2} [[e^{iφ} sin(θ/2), cos(θ/2)], [e^{iφ} cos(θ/2), -sin(θ/2)]]`
/// directly — mathematically identical to the ideal [`Mzi`]'s
/// coupler-composition, so a compacted mesh realizes the *same matrix*
/// as its rectangular source program (verified to 1e-12 in
/// `tests/mesh_zoo_props.rs`). Footprint/energy differences are modeled
/// in `neuropulsim-core`'s footprint report, not here.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompactCell {
    /// Internal phase \[rad\].
    pub theta: f64,
    /// External phase on the top input arm \[rad\].
    pub phi: f64,
}

impl CompactCell {
    /// Creates a compact cell.
    pub fn new(theta: f64, phi: f64) -> Self {
        CompactCell { theta, phi }
    }

    /// The four elements `(a, b, c, d)` of the 2×2 transfer matrix.
    pub fn elements(&self) -> (C64, C64, C64, C64) {
        let half = self.theta / 2.0;
        let g = C64::I * C64::cis(half);
        let s = C64::real(half.sin());
        let c = C64::real(half.cos());
        let e = C64::cis(self.phi);
        (g * e * s, g * c, g * e * c, -(g * s))
    }

    /// The full 2×2 transfer matrix.
    pub fn transfer_matrix(&self) -> CMatrix {
        let (a, b, c, d) = self.elements();
        CMatrix::from_rows(2, 2, &[a, b, c, d])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn ideal_mzi_is_unitary() {
        for theta in [0.0, 0.7, FRAC_PI_2, PI, 2.3] {
            for phi in [0.0, 1.0, PI] {
                assert!(Mzi::new(theta, phi).transfer_matrix().is_unitary(1e-12));
            }
        }
    }

    #[test]
    fn matches_clements_closed_form() {
        let theta = 1.1;
        let phi = 0.6;
        let m = Mzi::new(theta, phi).transfer_matrix();
        let g = C64::I * C64::cis(theta / 2.0);
        let s = (theta / 2.0).sin();
        let c = (theta / 2.0).cos();
        let e = C64::cis(phi);
        let expect = CMatrix::from_rows(
            2,
            2,
            &[
                g * e * C64::real(s),
                g * C64::real(c),
                g * e * C64::real(c),
                g * C64::real(-s),
            ],
        );
        assert!(m.approx_eq(&expect, 1e-12), "got\n{m}\nexpected\n{expect}");
    }

    #[test]
    fn power_split_follows_sin_squared() {
        for theta in [0.0, 0.5, 1.0, 2.0, PI] {
            let mzi = Mzi::new(theta, 0.3);
            assert!((mzi.bar_power() - (theta / 2.0).sin().powi(2)).abs() < 1e-12);
            assert!((mzi.cross_power() - (theta / 2.0).cos().powi(2)).abs() < 1e-12);
            assert!((mzi.bar_power() + mzi.cross_power() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn lossy_arms_scale_power_quadratically() {
        let mzi = Mzi::new(1.0, 0.0).with_arm_transmission(0.9);
        let m = mzi.transfer_matrix();
        let total_out: f64 = m.col(0).total_power();
        assert!((total_out - 0.81).abs() < 1e-12);
        assert!(!mzi.is_ideal());
    }

    #[test]
    fn imbalanced_couplers_limit_extinction() {
        // With imperfect couplers the bar state cannot be fully dark.
        let c = Coupler::with_imbalance(0.08);
        let mzi = Mzi::with_couplers(0.0, 0.0, c, c);
        assert!(mzi.bar_power() > 1e-4, "imbalance should leak power");
        // Still unitary (couplers are lossless).
        assert!(mzi.transfer_matrix().is_unitary(1e-12));
    }

    #[test]
    #[should_panic(expected = "arm transmission")]
    fn rejects_nonphysical_transmission() {
        let _ = Mzi::new(0.0, 0.0).with_arm_transmission(1.2);
    }

    #[test]
    fn default_is_cross_state() {
        let m = Mzi::default();
        assert!((m.cross_power() - 1.0).abs() < 1e-12);
        assert!(m.is_ideal());
    }

    #[test]
    fn compact_cell_matches_ideal_mzi() {
        for theta in [0.0, 0.4, FRAC_PI_2, 2.2, PI] {
            for phi in [0.0, -1.3, 0.9, PI] {
                let compact = CompactCell::new(theta, phi).transfer_matrix();
                let full = Mzi::new(theta, phi).transfer_matrix();
                assert!(
                    compact.approx_eq(&full, 1e-12),
                    "theta={theta} phi={phi}:\n{compact}\nvs\n{full}"
                );
                assert!(compact.is_unitary(1e-12));
            }
        }
    }
}

//! Data converters: the DACs driving the modulators and the ADCs
//! digitizing the detector outputs. Analog photonic compute is bracketed
//! by these converters, and their bit depth is a first-order limit on
//! end-to-end precision (and a large share of the I/O energy budget).

/// A uniform mid-tread quantizer with saturation — models both DACs and
/// ADCs (the transfer direction differs, the arithmetic does not).
///
/// Codes sit at integer multiples of the LSB, symmetric around zero; the
/// top code is half an LSB below full scale (mid-tread convention), so
/// overrange inputs saturate to the top code.
///
/// # Examples
///
/// ```
/// use neuropulsim_photonics::converter::Converter;
///
/// let adc = Converter::new(4, 1.0); // 4 bits over [-1, 1]
/// assert_eq!(adc.quantize(2.0), adc.max_code_value()); // saturates
/// assert_eq!(adc.quantize(0.0), 0.0);                  // zero is exact
/// assert!((adc.quantize(0.09) - adc.lsb() * (0.09 / adc.lsb()).round()).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Converter {
    /// Resolution in bits.
    pub bits: u32,
    /// Full-scale range: codes span `[-full_scale, +full_scale]`.
    pub full_scale: f64,
}

impl Converter {
    /// Creates a converter.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or `full_scale` is not positive.
    pub fn new(bits: u32, full_scale: f64) -> Self {
        assert!(bits >= 1, "need at least 1 bit");
        assert!(full_scale > 0.0, "full scale must be positive");
        Converter { bits, full_scale }
    }

    /// The least-significant-bit step size.
    pub fn lsb(&self) -> f64 {
        2.0 * self.full_scale / ((1u64 << self.bits) - 1) as f64
    }

    /// The largest positive code (number of positive steps).
    fn max_code(&self) -> i64 {
        (((1u64 << self.bits) - 1) / 2) as i64
    }

    /// The analog value of the top code.
    pub fn max_code_value(&self) -> f64 {
        self.max_code() as f64 * self.lsb()
    }

    /// Quantizes one value (saturating, mid-tread).
    pub fn quantize(&self, x: f64) -> f64 {
        let lsb = self.lsb();
        let code = (x / lsb).round() as i64;
        let code = code.clamp(-self.max_code(), self.max_code());
        code as f64 * lsb
    }

    /// Quantizes a slice in place.
    pub fn quantize_slice(&self, values: &mut [f64]) {
        for v in values.iter_mut() {
            *v = self.quantize(*v);
        }
    }

    /// RMS quantization noise of an ideal uniform quantizer
    /// (`lsb / sqrt(12)`).
    pub fn quantization_noise_rms(&self) -> f64 {
        self.lsb() / 12f64.sqrt()
    }

    /// Effective signal-to-quantization-noise ratio for a full-scale
    /// sinusoid \[dB\] — the textbook `6.02 b + 1.76`.
    pub fn sqnr_db(&self) -> f64 {
        6.02 * self.bits as f64 + 1.76
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_bit_has_a_single_code() {
        let c = Converter::new(1, 1.0);
        assert_eq!(c.lsb(), 2.0);
        assert_eq!(c.quantize(0.9), 0.0, "only code is zero");
        assert_eq!(c.quantize(-5.0), 0.0);
        assert_eq!(c.max_code_value(), 0.0);
    }

    #[test]
    fn saturation_hits_the_top_code() {
        let c = Converter::new(8, 0.5);
        assert_eq!(c.quantize(10.0), c.max_code_value());
        assert_eq!(c.quantize(-10.0), -c.max_code_value());
        assert!(c.max_code_value() <= 0.5);
        assert!(c.max_code_value() > 0.49, "top code near full scale");
    }

    #[test]
    fn error_bounded_by_half_lsb_in_range() {
        let c = Converter::new(6, 1.0);
        let top = c.max_code_value();
        for k in -100..=100 {
            let x = k as f64 / 100.0;
            if x.abs() > top {
                continue; // saturation region
            }
            let err = (c.quantize(x) - x).abs();
            assert!(err <= c.lsb() / 2.0 + 1e-12, "x={x}, err={err}");
        }
    }

    #[test]
    fn more_bits_less_noise() {
        let coarse = Converter::new(4, 1.0);
        let fine = Converter::new(12, 1.0);
        assert!(fine.quantization_noise_rms() < coarse.quantization_noise_rms() / 100.0);
        assert!(fine.sqnr_db() > coarse.sqnr_db() + 40.0);
    }

    #[test]
    fn slice_quantization() {
        let c = Converter::new(3, 1.0);
        let mut v = vec![0.3, -0.9, 2.0];
        c.quantize_slice(&mut v);
        for &x in &v {
            assert!((x / c.lsb()).fract().abs() < 1e-9, "{x} off grid");
        }
        assert_eq!(v[2], c.max_code_value());
    }

    #[test]
    #[should_panic(expected = "at least 1 bit")]
    fn rejects_zero_bits() {
        let _ = Converter::new(0, 1.0);
    }
}

//! Microring resonators — the platform's wavelength-selective elements,
//! used as the DWDM multiplexers/demultiplexers that give the paper's §4
//! wavelength-parallel GeMM its channels.
//!
//! Standard coupled-mode transfer functions of an add–drop ring:
//!
//! ```text
//!   through(phi) = (t2 - t1 a e^{i phi}) / (1 - t1 t2 a e^{i phi})
//!   drop(phi)    = -sqrt(k1 k2 a) e^{i phi/2} / (1 - t1 t2 a e^{i phi})
//! ```
//!
//! with `phi = 2 pi n_g L / lambda` the round-trip phase, `a` the
//! round-trip amplitude transmission and `t = sqrt(1 - k)` the coupler
//! through-amplitudes. The drop-port isolation at the neighbouring DWDM
//! channel is what sets the inter-channel crosstalk used by
//! `neuropulsim-core`'s GeMM engine.

use crate::units::{SPEED_OF_LIGHT, TELECOM_WAVELENGTH};
use neuropulsim_linalg::C64;
use std::f64::consts::TAU;

/// An add–drop microring resonator.
///
/// # Examples
///
/// ```
/// use neuropulsim_photonics::ring::AddDropRing;
///
/// let ring = AddDropRing::default();
/// let on = ring.drop_power(ring.resonance_wavelength());
/// let off = ring.drop_power(ring.resonance_wavelength() + 2e-9);
/// assert!(on > 0.8, "on-resonance drop should be strong");
/// assert!(off < 0.1, "off-resonance drop should be weak");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AddDropRing {
    /// Ring circumference \[m\].
    pub circumference: f64,
    /// Group index of the ring waveguide.
    pub group_index: f64,
    /// Power coupling of the input (through) coupler.
    pub kappa_in: f64,
    /// Power coupling of the drop coupler.
    pub kappa_drop: f64,
    /// Round-trip amplitude transmission (propagation loss), in `(0, 1]`.
    pub round_trip_transmission: f64,
    /// Static phase offset from thermal tuning \[rad\].
    pub tuning_phase: f64,
}

impl AddDropRing {
    /// Creates a symmetric add–drop ring.
    ///
    /// # Panics
    ///
    /// Panics on non-physical parameters.
    pub fn new(circumference: f64, kappa: f64, round_trip_transmission: f64) -> Self {
        assert!(circumference > 0.0, "circumference must be positive");
        assert!((0.0..1.0).contains(&kappa) && kappa > 0.0, "kappa in (0,1)");
        assert!(
            round_trip_transmission > 0.0 && round_trip_transmission <= 1.0,
            "round-trip transmission in (0, 1]"
        );
        AddDropRing {
            circumference,
            group_index: 4.2, // SOI strip waveguide group index
            kappa_in: kappa,
            kappa_drop: kappa,
            round_trip_transmission,
            tuning_phase: 0.0,
        }
    }

    /// Round-trip phase at vacuum wavelength `lambda` \[rad\].
    pub fn round_trip_phase(&self, lambda: f64) -> f64 {
        TAU * self.group_index * self.circumference / lambda + self.tuning_phase
    }

    /// Complex through-port field transmission at `lambda`.
    pub fn through(&self, lambda: f64) -> C64 {
        let t1 = (1.0 - self.kappa_in).sqrt();
        let t2 = (1.0 - self.kappa_drop).sqrt();
        let a = self.round_trip_transmission;
        let e = C64::cis(self.round_trip_phase(lambda));
        let numer = C64::real(t2) * e * a - C64::real(t1).conj();
        let denom = (C64::real(t1 * t2) * e * a) - C64::ONE;
        numer / denom
    }

    /// Complex drop-port field transmission at `lambda`.
    pub fn drop(&self, lambda: f64) -> C64 {
        let t1 = (1.0 - self.kappa_in).sqrt();
        let t2 = (1.0 - self.kappa_drop).sqrt();
        let a = self.round_trip_transmission;
        let half = C64::cis(self.round_trip_phase(lambda) / 2.0) * a.sqrt();
        let numer = half * (self.kappa_in * self.kappa_drop).sqrt();
        let denom = C64::ONE - (C64::real(t1 * t2) * C64::cis(self.round_trip_phase(lambda)) * a);
        numer / denom
    }

    /// Drop-port power transmission at `lambda`.
    pub fn drop_power(&self, lambda: f64) -> f64 {
        self.drop(lambda).abs2()
    }

    /// Through-port power transmission at `lambda`.
    pub fn through_power(&self, lambda: f64) -> f64 {
        self.through(lambda).abs2()
    }

    /// The resonance wavelength nearest 1550 nm.
    pub fn resonance_wavelength(&self) -> f64 {
        // phi(lambda) = 2 pi m  =>  lambda = n_g L / m.
        let opl = self.group_index * self.circumference;
        let m = (opl / TELECOM_WAVELENGTH).round();
        // Account for tuning: phi = 2pi opl / lambda + tuning = 2 pi m.
        opl * TAU / (TAU * m - self.tuning_phase)
    }

    /// Free spectral range near 1550 nm \[m\].
    pub fn fsr(&self) -> f64 {
        TELECOM_WAVELENGTH * TELECOM_WAVELENGTH / (self.group_index * self.circumference)
    }

    /// Free spectral range expressed in optical frequency \[Hz\].
    pub fn fsr_hz(&self) -> f64 {
        SPEED_OF_LIGHT / (self.group_index * self.circumference)
    }

    /// Full width at half maximum of the drop resonance \[m\],
    /// from the loaded finesse.
    pub fn fwhm(&self) -> f64 {
        let t1 = (1.0 - self.kappa_in).sqrt();
        let t2 = (1.0 - self.kappa_drop).sqrt();
        let a = self.round_trip_transmission;
        let x = t1 * t2 * a;
        let finesse = std::f64::consts::PI * x.sqrt() / (1.0 - x);
        self.fsr() / finesse
    }

    /// Loaded quality factor.
    pub fn q_factor(&self) -> f64 {
        self.resonance_wavelength() / self.fwhm()
    }

    /// Crosstalk of a DWDM demux built from such rings: the drop-port
    /// power leaking from a neighbour channel `channel_spacing_hz` away,
    /// relative to the on-resonance drop. This is the physical origin of
    /// the `crosstalk` parameter in the GeMM engine.
    pub fn channel_crosstalk(&self, channel_spacing_hz: f64) -> f64 {
        let res = self.resonance_wavelength();
        // Convert frequency offset to wavelength offset near 1550 nm.
        let dlambda = channel_spacing_hz * res * res / SPEED_OF_LIGHT;
        let neighbour = self.drop_power(res + dlambda);
        let on = self.drop_power(res);
        neighbour / on.max(f64::MIN_POSITIVE)
    }
}

impl Default for AddDropRing {
    /// A 10-um-radius SOI ring with 5% couplers and low loss: FSR ~ 9 nm,
    /// loaded Q ~ 2e4 — a typical DWDM demux element.
    fn default() -> Self {
        AddDropRing::new(TAU * 10e-6, 0.05, 0.995)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resonance_drops_through_dips() {
        let ring = AddDropRing::default();
        let res = ring.resonance_wavelength();
        assert!(ring.drop_power(res) > 0.8, "drop {}", ring.drop_power(res));
        assert!(
            ring.through_power(res) < 0.1,
            "through {}",
            ring.through_power(res)
        );
        // Between resonances everything passes through.
        let off = res + ring.fsr() / 2.0;
        assert!(ring.through_power(off) > 0.9);
        assert!(ring.drop_power(off) < 0.02);
    }

    #[test]
    fn energy_conservation_within_loss() {
        let ring = AddDropRing::default();
        let res = ring.resonance_wavelength();
        for k in -10..=10 {
            let lambda = res + k as f64 * 0.2e-9;
            let total = ring.through_power(lambda) + ring.drop_power(lambda);
            assert!(total <= 1.0 + 1e-9, "gain at {lambda}: {total}");
            assert!(total > 0.5, "too lossy at {lambda}: {total}");
        }
    }

    #[test]
    fn lossless_symmetric_ring_conserves_power_exactly() {
        let ring = AddDropRing::new(TAU * 10e-6, 0.05, 1.0);
        let res = ring.resonance_wavelength();
        for k in -5..=5 {
            let lambda = res + k as f64 * 0.3e-9;
            let total = ring.through_power(lambda) + ring.drop_power(lambda);
            assert!((total - 1.0).abs() < 1e-9, "total {total} at {lambda}");
        }
    }

    #[test]
    fn fsr_matches_textbook_formula() {
        let ring = AddDropRing::default();
        // FSR = lambda^2 / (n_g L): radius 10 um, n_g 4.2 -> ~9.1 nm.
        let fsr = ring.fsr();
        assert!(fsr > 7e-9 && fsr < 12e-9, "FSR {fsr}");
        // Adjacent resonances really are FSR apart (to first order).
        let res = ring.resonance_wavelength();
        let next = res - fsr;
        assert!(
            ring.drop_power(next) > 0.5,
            "next resonance at {next}: {}",
            ring.drop_power(next)
        );
    }

    #[test]
    fn q_factor_is_reasonable() {
        let ring = AddDropRing::default();
        let q = ring.q_factor();
        assert!(q > 1e3 && q < 1e6, "Q {q}");
        // Weaker coupling -> higher Q.
        let weak = AddDropRing::new(TAU * 10e-6, 0.01, 0.995);
        assert!(weak.q_factor() > q);
    }

    #[test]
    fn thermal_tuning_moves_resonance() {
        let mut ring = AddDropRing::default();
        let res0 = ring.resonance_wavelength();
        ring.tuning_phase = 0.5;
        let res1 = ring.resonance_wavelength();
        assert!(
            res1 > res0,
            "positive tuning phase red-shifts: {res0} -> {res1}"
        );
        // The drop peak follows the tuned resonance.
        assert!(ring.drop_power(res1) > 0.8);
    }

    #[test]
    fn crosstalk_falls_with_channel_spacing() {
        let ring = AddDropRing::default();
        let x50 = ring.channel_crosstalk(50e9);
        let x100 = ring.channel_crosstalk(100e9);
        let x200 = ring.channel_crosstalk(200e9);
        assert!(x100 < x50, "{x100} !< {x50}");
        assert!(x200 < x100);
        assert!(x100 < 0.05, "100 GHz crosstalk should be small: {x100}");
        assert!(x100 > 0.0);
    }

    #[test]
    #[should_panic(expected = "kappa")]
    fn rejects_bad_coupling() {
        let _ = AddDropRing::new(1e-5, 1.5, 0.99);
    }
}

//! Memory devices: DRAM and scratchpad memory (SPM) with access
//! accounting for the energy model.
//!
//! The paper's §5 notes that scratchpads and register banks "occupy the
//! largest part of the area of many accelerators"; SPM accesses are also
//! a first-class energy line item here.

use std::fmt;

/// A word-addressable RAM with base address and access counters.
#[derive(Debug, Clone, PartialEq)]
pub struct Ram {
    base: u32,
    data: Vec<u32>,
    /// Number of word reads served.
    pub reads: u64,
    /// Number of word writes served.
    pub writes: u64,
}

/// Error for out-of-range RAM access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RamFault {
    /// The absolute faulting address.
    pub addr: u32,
}

impl fmt::Display for RamFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RAM access out of range at {:#010x}", self.addr)
    }
}

impl std::error::Error for RamFault {}

impl Ram {
    /// Creates a zeroed RAM of `size_bytes` at `base` (size rounded up to
    /// a word).
    pub fn new(base: u32, size_bytes: usize) -> Self {
        Ram {
            base,
            data: vec![0; size_bytes.div_ceil(4)],
            reads: 0,
            writes: 0,
        }
    }

    /// Base address.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Size in bytes.
    pub fn size(&self) -> usize {
        self.data.len() * 4
    }

    /// `true` if `addr` falls inside this RAM.
    pub fn contains(&self, addr: u32) -> bool {
        addr >= self.base && ((addr - self.base) as usize) < self.size()
    }

    fn index(&self, addr: u32) -> Result<usize, RamFault> {
        if !self.contains(addr) {
            return Err(RamFault { addr });
        }
        Ok(((addr - self.base) / 4) as usize)
    }

    /// Loads the word containing absolute address `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`RamFault`] when out of range.
    pub fn load(&mut self, addr: u32) -> Result<u32, RamFault> {
        let i = self.index(addr)?;
        self.reads += 1;
        Ok(self.data[i])
    }

    /// Stores a word at absolute address `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`RamFault`] when out of range.
    pub fn store(&mut self, addr: u32, value: u32) -> Result<(), RamFault> {
        let i = self.index(addr)?;
        self.writes += 1;
        self.data[i] = value;
        Ok(())
    }

    /// Counted word load with a single bounds check and no error-value
    /// construction: the hot path for fused CPU loads and instruction
    /// fetches. Observably identical to [`Ram::load`] (`None` ⇔ `Err`).
    #[inline]
    pub fn load_fast(&mut self, addr: u32) -> Option<u32> {
        let i = (addr.wrapping_sub(self.base) / 4) as usize;
        let w = *self.data.get(i)?;
        self.reads += 1;
        Some(w)
    }

    /// Counted word store mirroring [`Ram::load_fast`]. Observably
    /// identical to [`Ram::store`].
    #[inline]
    pub fn store_fast(&mut self, addr: u32, value: u32) -> Option<()> {
        let i = (addr.wrapping_sub(self.base) / 4) as usize;
        let slot = self.data.get_mut(i)?;
        self.writes += 1;
        *slot = value;
        Some(())
    }

    /// Uncounted word read with a single bounds check — the side-effect-
    /// free peek used for pre-decoding instruction blocks.
    #[inline]
    pub fn peek_fast(&self, addr: u32) -> Option<u32> {
        let i = (addr.wrapping_sub(self.base) / 4) as usize;
        self.data.get(i).copied()
    }

    /// Reads without counting (host-side debug access).
    ///
    /// # Errors
    ///
    /// Returns [`RamFault`] when out of range.
    pub fn peek(&self, addr: u32) -> Result<u32, RamFault> {
        if !self.contains(addr) {
            return Err(RamFault { addr });
        }
        Ok(self.data[((addr - self.base) / 4) as usize])
    }

    /// Writes without counting (host-side program loading).
    ///
    /// # Errors
    ///
    /// Returns [`RamFault`] when out of range.
    pub fn poke(&mut self, addr: u32, value: u32) -> Result<(), RamFault> {
        if !self.contains(addr) {
            return Err(RamFault { addr });
        }
        self.data[((addr - self.base) / 4) as usize] = value;
        Ok(())
    }

    /// Loads a slice of words starting at `addr` (host-side).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn poke_words(&mut self, addr: u32, words: &[u32]) {
        for (k, &w) in words.iter().enumerate() {
            self.poke(addr + 4 * k as u32, w)
                .expect("poke_words in range");
        }
    }

    /// Resolves `addr` to a word index and checks that `count` words fit
    /// from there to the end of the RAM.
    fn span_index(&self, addr: u32, count: usize) -> Result<usize, RamFault> {
        let first = self.index(addr)?;
        if first + count > self.data.len() {
            return Err(RamFault {
                addr: addr.wrapping_add(4 * (count as u32 - 1)),
            });
        }
        Ok(first)
    }

    /// Counted bulk copy of `count` words from absolute `src` to absolute
    /// `dst` within this RAM — observably identical to `count`
    /// front-to-back [`Ram::load`]/[`Ram::store`] pairs, including
    /// forward propagation through overlapping ranges and the access
    /// counters.
    ///
    /// # Errors
    ///
    /// Returns [`RamFault`] without copying anything when either word
    /// range leaves the RAM.
    pub fn copy_words_within(&mut self, src: u32, dst: u32, count: usize) -> Result<(), RamFault> {
        if count == 0 {
            return Ok(());
        }
        let si = self.span_index(src, count)?;
        let di = self.span_index(dst, count)?;
        if si >= di {
            // No forward propagation possible: memmove semantics match
            // the word-by-word loop exactly.
            self.data.copy_within(si..si + count, di);
        } else {
            // Destination overlaps ahead of the source: copy front to
            // back so earlier writes feed later reads, as per-word
            // load/store pairs would.
            for k in 0..count {
                self.data[di + k] = self.data[si + k];
            }
        }
        self.reads += count as u64;
        self.writes += count as u64;
        Ok(())
    }

    /// Counted bulk read of `out.len()` words starting at `src` —
    /// observably identical to that many front-to-back [`Ram::load`]
    /// calls. Returns `false` (reading and counting nothing) when the
    /// range leaves the RAM; the caller then falls back to per-word
    /// loads, which charge partial accounting exactly as hardware would.
    pub fn read_words_into(&mut self, src: u32, out: &mut [u32]) -> bool {
        let Ok(si) = self.span_index(src, out.len()) else {
            return false;
        };
        out.copy_from_slice(&self.data[si..si + out.len()]);
        self.reads += out.len() as u64;
        true
    }

    /// Counted bulk write of `words` starting at `dst` — observably
    /// identical to that many front-to-back [`Ram::store`] calls.
    /// Returns `false` (writing and counting nothing) when the range
    /// leaves the RAM.
    pub fn write_words(&mut self, dst: u32, words: &[u32]) -> bool {
        let Ok(di) = self.span_index(dst, words.len()) else {
            return false;
        };
        self.data[di..di + words.len()].copy_from_slice(words);
        self.writes += words.len() as u64;
        true
    }

    /// Counted bulk copy of `count` words from `src` in this RAM to
    /// `dst_addr` in `dst` — observably identical to `count`
    /// [`Ram::load`]/[`Ram::store`] pairs across the two memories.
    ///
    /// # Errors
    ///
    /// Returns [`RamFault`] without copying anything when either word
    /// range leaves its RAM.
    pub fn copy_words_to(
        &mut self,
        src: u32,
        dst: &mut Ram,
        dst_addr: u32,
        count: usize,
    ) -> Result<(), RamFault> {
        if count == 0 {
            return Ok(());
        }
        let si = self.span_index(src, count)?;
        let di = dst.span_index(dst_addr, count)?;
        dst.data[di..di + count].copy_from_slice(&self.data[si..si + count]);
        self.reads += count as u64;
        dst.writes += count as u64;
        Ok(())
    }

    /// Flips bit `bit` of the word at `addr` (fault injection).
    ///
    /// # Errors
    ///
    /// Returns [`RamFault`] when out of range.
    pub fn flip_bit(&mut self, addr: u32, bit: u8) -> Result<(), RamFault> {
        let i = self.index(addr)?;
        self.data[i] ^= 1 << (bit & 31);
        Ok(())
    }

    /// Captures a compact point-in-time image (see [`RamSnapshot`]).
    pub fn snapshot(&self) -> RamSnapshot {
        RamSnapshot {
            base: self.base,
            words: self.data.len(),
            nonzero: self
                .data
                .iter()
                .enumerate()
                .filter(|&(_, &w)| w != 0)
                .map(|(i, &w)| (i as u32, w))
                .collect(),
            reads: self.reads,
            writes: self.writes,
        }
    }

    /// Restores the image captured by [`Ram::snapshot`], including the
    /// access counters (so energy reports of a resumed run match an
    /// uninterrupted one).
    ///
    /// # Panics
    ///
    /// Panics if the snapshot geometry (base, size) does not match this
    /// RAM — snapshots only restore onto the memory they were taken from.
    pub fn restore(&mut self, snapshot: &RamSnapshot) {
        assert_eq!(self.base, snapshot.base, "snapshot base mismatch");
        assert_eq!(self.data.len(), snapshot.words, "snapshot size mismatch");
        self.data.fill(0);
        for &(i, w) in &snapshot.nonzero {
            self.data[i as usize] = w;
        }
        self.reads = snapshot.reads;
        self.writes = snapshot.writes;
    }
}

/// A compact point-in-time image of a [`Ram`] storing only the nonzero
/// words. Workload footprints (firmware + operands) are tiny compared to
/// the 4 MiB DRAM, so a campaign can keep tens of checkpoints resident
/// for megabytes instead of gigabytes; a fully dense RAM degrades to
/// 2 words per word, never worse.
#[derive(Debug, Clone, PartialEq)]
pub struct RamSnapshot {
    base: u32,
    words: usize,
    nonzero: Vec<(u32, u32)>,
    reads: u64,
    writes: u64,
}

impl RamSnapshot {
    /// Approximate heap footprint of this snapshot \[bytes\].
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.nonzero.len() * std::mem::size_of::<(u32, u32)>()
    }

    /// Number of nonzero words captured.
    pub fn nonzero_words(&self) -> usize {
        self.nonzero.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_store_roundtrip() {
        let mut r = Ram::new(0x1000, 64);
        r.store(0x1008, 0xCAFEBABE).unwrap();
        assert_eq!(r.load(0x1008).unwrap(), 0xCAFEBABE);
        assert_eq!(r.reads, 1);
        assert_eq!(r.writes, 1);
    }

    #[test]
    fn bounds_checking() {
        let mut r = Ram::new(0x1000, 16);
        assert!(r.contains(0x1000));
        assert!(r.contains(0x100F));
        assert!(!r.contains(0x1010));
        assert!(!r.contains(0xFFF));
        assert!(r.load(0x1010).is_err());
        assert!(r.store(0x0, 1).is_err());
    }

    #[test]
    fn peek_poke_do_not_count() {
        let mut r = Ram::new(0, 32);
        r.poke(4, 7).unwrap();
        assert_eq!(r.peek(4).unwrap(), 7);
        assert_eq!(r.reads, 0);
        assert_eq!(r.writes, 0);
    }

    #[test]
    fn poke_words_sequences() {
        let mut r = Ram::new(0x100, 32);
        r.poke_words(0x104, &[1, 2, 3]);
        assert_eq!(r.peek(0x108).unwrap(), 2);
    }

    #[test]
    fn bit_flip() {
        let mut r = Ram::new(0, 16);
        r.poke(0, 0b1000).unwrap();
        r.flip_bit(0, 3).unwrap();
        assert_eq!(r.peek(0).unwrap(), 0);
        r.flip_bit(0, 31).unwrap();
        assert_eq!(r.peek(0).unwrap(), 0x8000_0000);
    }

    #[test]
    fn snapshot_is_sparse_and_restores_counters() {
        let mut r = Ram::new(0x1000, 1 << 20); // 1 MiB, mostly zero
        r.store(0x1004, 7).unwrap();
        r.store(0x1100, 0xDEAD).unwrap();
        r.load(0x1004).unwrap();
        let snap = r.snapshot();
        assert_eq!(snap.nonzero_words(), 2);
        assert!(snap.approx_bytes() < 256, "sparse image must stay small");
        // Diverge, then restore.
        r.store(0x1004, 99).unwrap();
        r.store(0x2000, 1).unwrap();
        r.restore(&snap);
        assert_eq!(r.peek(0x1004).unwrap(), 7);
        assert_eq!(r.peek(0x1100).unwrap(), 0xDEAD);
        assert_eq!(r.peek(0x2000).unwrap(), 0);
        assert_eq!(r.reads, 1);
        assert_eq!(r.writes, 2);
    }

    #[test]
    #[should_panic(expected = "snapshot size mismatch")]
    fn snapshot_rejects_foreign_geometry() {
        let small = Ram::new(0, 16);
        let mut big = Ram::new(0, 64);
        big.restore(&small.snapshot());
    }

    #[test]
    fn fault_display() {
        let mut r = Ram::new(0, 4);
        let e = r.load(100).unwrap_err();
        assert!(e.to_string().contains("0x00000064"));
    }
}

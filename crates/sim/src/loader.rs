//! Minimal ELF32 loader and Linux-flavored syscall shim.
//!
//! Real RV32IM binaries — statically linked `ET_EXEC` images with
//! `PT_LOAD` segments — load straight into the system's DRAM and run
//! under a small process environment:
//!
//! - [`parse_elf32`] understands just enough of the ELF32 format to be
//!   a genuine loader (magic, class/endianness, machine, program
//!   headers), and rejects everything else loudly;
//! - [`SyscallShim`] implements the RV32 Linux syscall ABI (`a7` =
//!   number, `a0..a2` = arguments, result in `a0`) for the calls a
//!   freestanding benchmark needs: `exit`/`exit_group`, `write` to
//!   stdout/stderr, and `brk` for heap growth. Everything else returns
//!   `-ENOSYS`, exactly like a kernel that doesn't implement the call;
//! - [`System::run_elf`] glues the two together: load, point the CPU
//!   at the entry, give it a stack, and resume across `ecall`s until
//!   the program exits, traps, or times out.
//!
//! The container has no RISC-V cross-compiler, so test binaries are
//! produced by [`write_elf32`]/[`elf_from_assembly`]: the in-repo
//! assembler emits the code and a genuine ELF32 image is written
//! around it. The loader does not get to cheat — it parses those
//! images through the same byte-level path any `riscv32-unknown-elf`
//! toolchain output would take.

use crate::ram::Ram;
use crate::system::{RunOutcome, RunReport, System, DRAM_BASE, DRAM_SIZE};
use neuropulsim_riscv::cpu::Halt;

/// `e_machine` value for RISC-V.
pub const EM_RISCV: u16 = 243;
/// `e_type` for a fully linked executable.
pub const ET_EXEC: u16 = 2;
/// `p_type` for a loadable segment.
pub const PT_LOAD: u32 = 1;

/// Linux RV32 syscall numbers understood by the shim.
pub mod sysno {
    /// `exit(code)`.
    pub const EXIT: u32 = 93;
    /// `exit_group(code)` — treated the same as `exit`.
    pub const EXIT_GROUP: u32 = 94;
    /// `write(fd, buf, len)`.
    pub const WRITE: u32 = 64;
    /// `brk(addr)`.
    pub const BRK: u32 = 214;
}

/// `-ENOSYS`: the shim's answer to any syscall it does not implement.
pub const ENOSYS_RET: u32 = -38i32 as u32;
/// `-EFAULT`: a buffer pointed outside loadable memory.
pub const EFAULT_RET: u32 = -14i32 as u32;
/// `-EBADF`: `write` to anything but stdout/stderr.
pub const EBADF_RET: u32 = -9i32 as u32;

/// Bytes at the top of DRAM reserved for the stack; `brk` may not grow
/// the heap into this region.
pub const STACK_RESERVE: u32 = 64 * 1024;

/// Why an ELF image was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ElfError {
    /// The file is shorter than the structures it claims to contain.
    Truncated,
    /// The first four bytes are not `\x7fELF`.
    BadMagic,
    /// Not a 32-bit little-endian image.
    UnsupportedFormat,
    /// Not an `ET_EXEC` executable (e.g. a relocatable or shared object).
    UnsupportedType(u16),
    /// Not an RISC-V (`EM_RISCV`) image.
    UnsupportedMachine(u16),
    /// A `PT_LOAD` segment falls outside the system's DRAM.
    SegmentOutOfRange {
        /// Segment virtual address.
        vaddr: u32,
        /// Segment size in memory (`p_memsz`).
        memsz: u32,
    },
}

impl std::fmt::Display for ElfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ElfError::Truncated => write!(f, "ELF image truncated"),
            ElfError::BadMagic => write!(f, "not an ELF image (bad magic)"),
            ElfError::UnsupportedFormat => write!(f, "not a 32-bit little-endian ELF"),
            ElfError::UnsupportedType(t) => write!(f, "unsupported ELF type {t} (want ET_EXEC)"),
            ElfError::UnsupportedMachine(m) => {
                write!(f, "unsupported ELF machine {m} (want EM_RISCV)")
            }
            ElfError::SegmentOutOfRange { vaddr, memsz } => {
                write!(
                    f,
                    "PT_LOAD segment at {vaddr:#010x}+{memsz:#x} outside DRAM"
                )
            }
        }
    }
}

impl std::error::Error for ElfError {}

/// One loadable segment of a parsed image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElfSegment {
    /// Load address.
    pub vaddr: u32,
    /// File-backed bytes (`p_filesz` of them).
    pub data: Vec<u8>,
    /// Total size in memory; the tail past `data.len()` is zero-filled
    /// (`.bss`).
    pub memsz: u32,
}

/// A parsed ELF32 executable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElfImage {
    /// Entry point (`e_entry`).
    pub entry: u32,
    /// `PT_LOAD` segments in file order.
    pub segments: Vec<ElfSegment>,
}

impl ElfImage {
    /// One past the highest address any segment touches.
    pub fn load_end(&self) -> u32 {
        self.segments
            .iter()
            .map(|s| s.vaddr.saturating_add(s.memsz.max(s.data.len() as u32)))
            .max()
            .unwrap_or(0)
    }
}

fn u16le(b: &[u8], off: usize) -> Result<u16, ElfError> {
    let s = b.get(off..off + 2).ok_or(ElfError::Truncated)?;
    Ok(u16::from_le_bytes([s[0], s[1]]))
}

fn u32le(b: &[u8], off: usize) -> Result<u32, ElfError> {
    let s = b.get(off..off + 4).ok_or(ElfError::Truncated)?;
    Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
}

/// Parses an ELF32 little-endian RISC-V executable.
///
/// # Errors
///
/// Returns an [`ElfError`] for anything that is not a well-formed
/// `ET_EXEC` / `EM_RISCV` / 32-bit / little-endian image.
pub fn parse_elf32(bytes: &[u8]) -> Result<ElfImage, ElfError> {
    if bytes.len() < 52 {
        return Err(if bytes.get(..4) == Some(b"\x7fELF") {
            ElfError::Truncated
        } else {
            ElfError::BadMagic
        });
    }
    if &bytes[..4] != b"\x7fELF" {
        return Err(ElfError::BadMagic);
    }
    // e_ident: class (1 = 32-bit), data (1 = little-endian).
    if bytes[4] != 1 || bytes[5] != 1 {
        return Err(ElfError::UnsupportedFormat);
    }
    let e_type = u16le(bytes, 16)?;
    if e_type != ET_EXEC {
        return Err(ElfError::UnsupportedType(e_type));
    }
    let e_machine = u16le(bytes, 18)?;
    if e_machine != EM_RISCV {
        return Err(ElfError::UnsupportedMachine(e_machine));
    }
    let entry = u32le(bytes, 24)?;
    let phoff = u32le(bytes, 28)? as usize;
    let phentsize = u16le(bytes, 42)? as usize;
    let phnum = u16le(bytes, 44)? as usize;
    if phentsize < 32 {
        return Err(ElfError::Truncated);
    }
    let mut segments = Vec::new();
    for k in 0..phnum {
        let ph = phoff + k * phentsize;
        if u32le(bytes, ph)? != PT_LOAD {
            continue;
        }
        let offset = u32le(bytes, ph + 4)? as usize;
        let vaddr = u32le(bytes, ph + 8)?;
        let filesz = u32le(bytes, ph + 16)? as usize;
        let memsz = u32le(bytes, ph + 20)?;
        let data = bytes
            .get(offset..offset + filesz)
            .ok_or(ElfError::Truncated)?
            .to_vec();
        segments.push(ElfSegment {
            vaddr,
            data,
            memsz: memsz.max(filesz as u32),
        });
    }
    Ok(ElfImage { entry, segments })
}

/// Writes a minimal valid ELF32 RISC-V executable: one program header
/// per `(vaddr, bytes)` segment, data packed after the headers.
pub fn write_elf32(entry: u32, segments: &[(u32, &[u8])]) -> Vec<u8> {
    let ehsize = 52u32;
    let phentsize = 32u32;
    let phoff = ehsize;
    let data_start = phoff + phentsize * segments.len() as u32;

    let mut out = Vec::new();
    out.extend_from_slice(b"\x7fELF");
    out.extend_from_slice(&[1, 1, 1, 0]); // class=32, LE, version, SysV ABI
    out.extend_from_slice(&[0; 8]); // e_ident padding
    out.extend_from_slice(&ET_EXEC.to_le_bytes());
    out.extend_from_slice(&EM_RISCV.to_le_bytes());
    out.extend_from_slice(&1u32.to_le_bytes()); // e_version
    out.extend_from_slice(&entry.to_le_bytes());
    out.extend_from_slice(&phoff.to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes()); // e_shoff: no sections
    out.extend_from_slice(&0u32.to_le_bytes()); // e_flags
    out.extend_from_slice(&(ehsize as u16).to_le_bytes());
    out.extend_from_slice(&(phentsize as u16).to_le_bytes());
    out.extend_from_slice(&(segments.len() as u16).to_le_bytes());
    out.extend_from_slice(&0u16.to_le_bytes()); // e_shentsize
    out.extend_from_slice(&0u16.to_le_bytes()); // e_shnum
    out.extend_from_slice(&0u16.to_le_bytes()); // e_shstrndx
    debug_assert_eq!(out.len() as u32, ehsize);

    let mut offset = data_start;
    for (vaddr, data) in segments {
        out.extend_from_slice(&PT_LOAD.to_le_bytes());
        out.extend_from_slice(&offset.to_le_bytes());
        out.extend_from_slice(&vaddr.to_le_bytes());
        out.extend_from_slice(&vaddr.to_le_bytes()); // p_paddr
        out.extend_from_slice(&(data.len() as u32).to_le_bytes());
        out.extend_from_slice(&(data.len() as u32).to_le_bytes());
        out.extend_from_slice(&5u32.to_le_bytes()); // p_flags: R+X
        out.extend_from_slice(&4u32.to_le_bytes()); // p_align
        offset += data.len() as u32;
    }
    for (_, data) in segments {
        out.extend_from_slice(data);
    }
    out
}

/// Assembles `source` with the in-repo assembler and wraps the code in
/// an ELF32 executable entered at address 0.
///
/// # Panics
///
/// Panics on assembly errors (fixture programs are workspace-internal).
pub fn elf_from_assembly(source: &str) -> Vec<u8> {
    let words = neuropulsim_riscv::asm::assemble(source).expect("fixture program must assemble");
    let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
    write_elf32(0, &[(0, &bytes)])
}

/// What a dispatched syscall asked the caller to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyscallRet {
    /// Value to place in `a0` before resuming.
    pub a0: u32,
    /// Set when the program exited; execution must not resume.
    pub exit: Option<i32>,
}

/// Process state behind the syscall ABI: the program break and the
/// captured output streams.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyscallShim {
    /// Current program break.
    pub brk: u32,
    /// Lowest legal break (end of the loaded image, page-rounded).
    pub heap_base: u32,
    /// Highest legal break (stack reserve floor).
    pub heap_limit: u32,
    /// Bytes written to fd 1.
    pub stdout: Vec<u8>,
    /// Bytes written to fd 2.
    pub stderr: Vec<u8>,
    /// Total syscalls dispatched.
    pub calls: u64,
}

impl SyscallShim {
    /// A fresh process image with the heap between the two bounds.
    pub fn new(heap_base: u32, heap_limit: u32) -> Self {
        SyscallShim {
            brk: heap_base,
            heap_base,
            heap_limit,
            stdout: Vec::new(),
            stderr: Vec::new(),
            calls: 0,
        }
    }

    /// Dispatches one syscall: `nr` from `a7`, `args` from `a0..a2`.
    /// `read_byte` resolves guest addresses for `write`; returning
    /// `None` makes the buffer fault (`-EFAULT`).
    pub fn dispatch(
        &mut self,
        nr: u32,
        args: [u32; 3],
        read_byte: &mut dyn FnMut(u32) -> Option<u8>,
    ) -> SyscallRet {
        self.calls += 1;
        let done = |a0| SyscallRet { a0, exit: None };
        match nr {
            sysno::EXIT | sysno::EXIT_GROUP => SyscallRet {
                a0: args[0],
                exit: Some(args[0] as i32),
            },
            sysno::WRITE => {
                let [fd, buf, len] = args;
                if fd != 1 && fd != 2 {
                    return done(EBADF_RET);
                }
                let mut bytes = Vec::with_capacity(len as usize);
                for k in 0..len {
                    match read_byte(buf.wrapping_add(k)) {
                        Some(b) => bytes.push(b),
                        None => return done(EFAULT_RET),
                    }
                }
                if fd == 1 {
                    self.stdout.extend_from_slice(&bytes);
                } else {
                    self.stderr.extend_from_slice(&bytes);
                }
                done(len)
            }
            sysno::BRK => {
                let addr = args[0];
                // Linux semantics: success moves the break and returns
                // it; failure (or `brk(0)`) returns the current break.
                if addr >= self.heap_base && addr <= self.heap_limit {
                    self.brk = addr;
                }
                done(self.brk)
            }
            _ => done(ENOSYS_RET),
        }
    }
}

/// The result of running an ELF binary to completion.
#[derive(Debug, Clone)]
pub struct ElfRun {
    /// The underlying system run report (cycles span the whole program,
    /// across every syscall resume).
    pub report: RunReport,
    /// The code passed to `exit`, if the program exited.
    pub exit_code: Option<i32>,
    /// Bytes the program wrote to fd 1.
    pub stdout: Vec<u8>,
    /// Bytes the program wrote to fd 2.
    pub stderr: Vec<u8>,
    /// Syscalls dispatched.
    pub syscalls: u64,
}

fn poke_byte(ram: &mut Ram, addr: u32, value: u8) -> bool {
    let aligned = addr & !3;
    let Ok(word) = ram.peek(aligned) else {
        return false;
    };
    let shift = (addr & 3) * 8;
    let word = (word & !(0xffu32 << shift)) | (u32::from(value) << shift);
    ram.poke(aligned, word).is_ok()
}

fn peek_byte(ram: &Ram, addr: u32) -> Option<u8> {
    let word = ram.peek(addr & !3).ok()?;
    Some((word >> ((addr & 3) * 8)) as u8)
}

impl System {
    /// Loads an ELF32 executable into DRAM and points the CPU at its
    /// entry with a stack at the top of memory. Returns the parsed
    /// image (for the heap base).
    ///
    /// # Errors
    ///
    /// Returns an [`ElfError`] if the image is malformed or a segment
    /// does not fit in DRAM.
    pub fn load_elf(&mut self, bytes: &[u8]) -> Result<ElfImage, ElfError> {
        let image = parse_elf32(bytes)?;
        let dram_end = DRAM_BASE + DRAM_SIZE as u32;
        for seg in &image.segments {
            let size = seg.memsz.max(seg.data.len() as u32);
            // DRAM starts at address 0, so only the upper bound can fail.
            let fits = seg
                .vaddr
                .checked_add(size)
                .is_some_and(|end| end <= dram_end);
            if !fits {
                return Err(ElfError::SegmentOutOfRange {
                    vaddr: seg.vaddr,
                    memsz: size,
                });
            }
            for (k, &b) in seg.data.iter().enumerate() {
                poke_byte(&mut self.platform.dram, seg.vaddr + k as u32, b);
            }
            for k in seg.data.len() as u32..seg.memsz {
                poke_byte(&mut self.platform.dram, seg.vaddr + k, 0);
            }
        }
        self.cpu.pc = image.entry;
        // ABI stack: 16-byte aligned, just below the top of DRAM.
        self.cpu.set_reg(2, dram_end - 16);
        Ok(image)
    }

    /// Runs an ELF32 executable under the syscall shim until it exits,
    /// traps, or exhausts `max_cycles`. `ecall`s are serviced and
    /// execution resumes transparently, so the whole program — trace
    /// compiler, bulk scheduler and all — runs exactly as firmware
    /// does.
    ///
    /// # Errors
    ///
    /// Returns an [`ElfError`] if the image cannot be loaded.
    pub fn run_elf(&mut self, bytes: &[u8], max_cycles: u64) -> Result<ElfRun, ElfError> {
        let image = self.load_elf(bytes)?;
        let heap_base = (image.load_end() + 0xfff) & !0xfff;
        let heap_limit = (DRAM_BASE + DRAM_SIZE as u32).saturating_sub(STACK_RESERVE);
        let mut shim = SyscallShim::new(heap_base, heap_limit);
        let start_cycles = self.cpu.cycles;
        loop {
            let spent = self.cpu.cycles - start_cycles;
            let mut report = self.run(max_cycles.saturating_sub(spent));
            report.cycles = self.cpu.cycles - start_cycles;
            if spent >= max_cycles {
                report.outcome = RunOutcome::TimedOut;
            }
            match report.outcome {
                RunOutcome::Halted(Halt::Ecall) => {
                    let nr = self.cpu.reg(17);
                    let args = [self.cpu.reg(10), self.cpu.reg(11), self.cpu.reg(12)];
                    let dram = &self.platform.dram;
                    let ret = shim.dispatch(nr, args, &mut |addr| peek_byte(dram, addr));
                    if let Some(code) = ret.exit {
                        return Ok(ElfRun {
                            report,
                            exit_code: Some(code),
                            stdout: shim.stdout,
                            stderr: shim.stderr,
                            syscalls: shim.calls,
                        });
                    }
                    self.cpu.set_reg(10, ret.a0);
                }
                _ => {
                    return Ok(ElfRun {
                        report,
                        exit_code: None,
                        stdout: shim.stdout,
                        stderr: shim.stderr,
                        syscalls: shim.calls,
                    });
                }
            }
        }
    }
}

/// Real-binary workloads: complete RV32IM programs using the syscall
/// ABI (`brk` heap, `write` output, `exit` status), assembled in-repo
/// and wrapped as genuine ELF32 executables. Each has a pure-Rust
/// golden model next to it in the tests so expected output is derived
/// independently of any simulator.
pub mod workloads {
    use super::elf_from_assembly;

    /// Shared epilogue: `print(buf, len)` via `write(1, ..)`, then
    /// `exit(a0)`.
    const RUNTIME: &str = "
        # ---- runtime: print(a0=buf, a1=len), exit(a0=code) ----------
    print:
        mv   a2, a1
        mv   a1, a0
        li   a0, 1
        li   a7, 64          # write
        ecall
        ret
    exit:
        li   a7, 93          # exit
        ecall
        # not reached
    ";

    /// Decimal itoa + the shared runtime. `itoa`: a0 = value, a1 = buf
    /// end (exclusive); returns a0 = first byte, a1 = length.
    const ITOA: &str = "
    itoa:
        mv   t0, a1          # cursor (grows down)
        li   t1, 10
    itoa_loop:
        remu t2, a0, t1
        addi t2, t2, 48      # '0' + digit
        addi t0, t0, -1
        sb   t2, (t0)
        divu a0, a0, t1
        bnez a0, itoa_loop
        sub  a1, a1, t0      # length
        mv   a0, t0
        ret
    ";

    /// Sieve of Eratosthenes over a `brk`-allocated byte array.
    ///
    /// Counts the primes below 1000, prints `primes=<count>\n` and
    /// exits with the count (168).
    pub fn sieve_elf() -> Vec<u8> {
        let src = format!(
            "
            li   s11, 1000       # sieve limit
            # -- grow the heap for one flag byte per candidate --------
            li   a0, 0
            li   a7, 214         # brk(0): current break
            ecall
            mv   s0, a0          # s0 = flags[]
            add  a0, a0, s11
            li   a7, 214
            ecall                # brk(flags + limit)
            # -- clear flags ------------------------------------------
            mv   t0, s0
            add  t1, s0, s11
        clear:
            sb   zero, (t0)
            addi t0, t0, 1
            bltu t0, t1, clear
            # -- sieve ------------------------------------------------
            li   s1, 2           # candidate p
            li   s2, 0           # prime count
        outer:
            add  t0, s0, s1
            lbu  t0, (t0)
            bnez t0, next
            addi s2, s2, 1
            mul  t1, s1, s1      # first composite: p*p
        mark:
            bge  t1, s11, next
            add  t2, s0, t1
            li   t3, 1
            sb   t3, (t2)
            add  t1, t1, s1
            j    mark
        next:
            addi s1, s1, 1
            blt  s1, s11, outer
            # -- print 'primes=<count>' and exit with the count -------
            addi sp, sp, -32
            mv   a0, s2
            addi a1, sp, 32
            call itoa
            mv   s3, a0          # digits
            mv   s4, a1          # digit count
            li   t0, 0x6d697270  # 'prim'
            sw   t0, 0(sp)
            li   t0, 0x3d7365    # 'es='
            sw   t0, 4(sp)
            addi t1, sp, 7       # cursor past 'primes='
            mv   t2, s3
            add  t3, s3, s4
        copy:
            lbu  t4, (t2)
            sb   t4, (t1)
            addi t1, t1, 1
            addi t2, t2, 1
            bltu t2, t3, copy
            li   t4, 10          # newline
            sb   t4, (t1)
            addi t1, t1, 1
            mv   a0, sp
            sub  a1, t1, sp
            call print
            mv   a0, s2
            call exit
            {ITOA}
            {RUNTIME}
            "
        );
        elf_from_assembly(&src)
    }

    /// Number of values [`sort_elf`] sorts.
    pub const SORT_COUNT: u32 = 96;

    /// Insertion sort over a `brk`-allocated array of LCG words.
    ///
    /// Fills the array from the xorshift generator mirrored by
    /// [`sort_model`], sorts it (unsigned), folds a positional
    /// checksum, prints `sorted=<checksum>\n` and exits with
    /// `checksum % 251`.
    pub fn sort_elf() -> Vec<u8> {
        let src = format!(
            "
            li   s11, {count}    # element count
            li   a0, 0
            li   a7, 214
            ecall
            mv   s0, a0          # s0 = array
            slli t0, s11, 2
            add  a0, a0, t0
            li   a7, 214
            ecall
            # -- fill from xorshift32, seed 0x12345 -------------------
            li   s1, 0x12345
            li   t0, 0
        fill:
            slli t1, s1, 13
            xor  s1, s1, t1
            srli t1, s1, 17
            xor  s1, s1, t1
            slli t1, s1, 5
            xor  s1, s1, t1
            slli t1, t0, 2
            add  t1, t1, s0
            sw   s1, (t1)
            addi t0, t0, 1
            blt  t0, s11, fill
            # -- insertion sort (unsigned ascending) ------------------
            li   t0, 1           # i
        sort_outer:
            bge  t0, s11, sorted
            slli t1, t0, 2
            add  t1, t1, s0
            lw   t2, (t1)        # key
            mv   t3, t1          # slot cursor
        sort_inner:
            beq  t3, s0, place
            lw   t4, -4(t3)
            bgeu t2, t4, place
            sw   t4, (t3)
            addi t3, t3, -4
            j    sort_inner
        place:
            sw   t2, (t3)
            addi t0, t0, 1
            j    sort_outer
        sorted:
            # -- positional checksum: sum (v[i] ^ i) * (i + 1) --------
            li   s2, 0
            li   t0, 0
        fold:
            slli t1, t0, 2
            add  t1, t1, s0
            lw   t2, (t1)
            xor  t2, t2, t0
            addi t3, t0, 1
            mul  t2, t2, t3
            add  s2, s2, t2
            addi t0, t0, 1
            blt  t0, s11, fold
            # -- print 'sorted=<checksum>' ----------------------------
            addi sp, sp, -32
            mv   a0, s2
            addi a1, sp, 32
            call itoa
            mv   s3, a0
            mv   s4, a1
            li   t0, 0x74726f73  # 'sort'
            sw   t0, 0(sp)
            li   t0, 0x3d6465    # 'ed='
            sw   t0, 4(sp)
            addi t1, sp, 7
            mv   t2, s3
            add  t3, s3, s4
        copy:
            lbu  t4, (t2)
            sb   t4, (t1)
            addi t1, t1, 1
            addi t2, t2, 1
            bltu t2, t3, copy
            li   t4, 10
            sb   t4, (t1)
            addi t1, t1, 1
            mv   a0, sp
            sub  a1, t1, sp
            call print
            li   t0, 251
            remu a0, s2, t0
            call exit
            {ITOA}
            {RUNTIME}
            ",
            count = SORT_COUNT,
        );
        elf_from_assembly(&src)
    }

    /// Bytes [`crc_elf`] hashes.
    pub const CRC_LEN: u32 = 512;

    /// Bitwise CRC32 (poly `0xEDB88320`) over a `brk`-allocated buffer
    /// of generator bytes, mirrored by [`crc_model`]. Prints
    /// `crc=<value>\n` (decimal) and exits with `crc % 251`.
    pub fn crc_elf() -> Vec<u8> {
        let src = format!(
            "
            li   s11, {len}
            li   a0, 0
            li   a7, 214
            ecall
            mv   s0, a0          # s0 = buf
            add  a0, a0, s11
            li   a7, 214
            ecall
            # -- fill buf[i] = low byte of xorshift32 stream ----------
            li   s1, 0x6b8b4567
            li   t0, 0
        fill:
            slli t1, s1, 13
            xor  s1, s1, t1
            srli t1, s1, 17
            xor  s1, s1, t1
            slli t1, s1, 5
            xor  s1, s1, t1
            add  t1, t0, s0
            sb   s1, (t1)
            addi t0, t0, 1
            blt  t0, s11, fill
            # -- bitwise CRC32 ----------------------------------------
            li   s2, -1          # crc = 0xffffffff
            li   t0, 0           # index
            li   s3, 0xedb88320
        bytes:
            add  t1, t0, s0
            lbu  t1, (t1)
            xor  s2, s2, t1
            li   t2, 8
        bits:
            andi t3, s2, 1
            srli s2, s2, 1
            beqz t3, skip
            xor  s2, s2, s3
        skip:
            addi t2, t2, -1
            bnez t2, bits
            addi t0, t0, 1
            blt  t0, s11, bytes
            not  s2, s2          # final complement
            # -- print 'crc=<value>' ----------------------------------
            addi sp, sp, -32
            mv   a0, s2
            addi a1, sp, 32
            call itoa
            mv   s3, a0
            mv   s4, a1
            li   t0, 0x3d637263  # 'crc='
            sw   t0, 0(sp)
            addi t1, sp, 4
            mv   t2, s3
            add  t3, s3, s4
        copy:
            lbu  t4, (t2)
            sb   t4, (t1)
            addi t1, t1, 1
            addi t2, t2, 1
            bltu t2, t3, copy
            li   t4, 10
            sb   t4, (t1)
            addi t1, t1, 1
            mv   a0, sp
            sub  a1, t1, sp
            call print
            li   t0, 251
            remu a0, s2, t0
            call exit
            {ITOA}
            {RUNTIME}
            ",
            len = CRC_LEN,
        );
        elf_from_assembly(&src)
    }

    /// The xorshift32 step both generator programs use.
    pub fn xorshift32(state: &mut u32) -> u32 {
        *state ^= *state << 13;
        *state ^= *state >> 17;
        *state ^= *state << 5;
        *state
    }

    /// Golden model of [`sort_elf`]: returns `(checksum, exit_code)`.
    pub fn sort_model() -> (u32, i32) {
        let mut state = 0x12345u32;
        let mut values: Vec<u32> = (0..SORT_COUNT).map(|_| xorshift32(&mut state)).collect();
        values.sort_unstable();
        let checksum = values.iter().enumerate().fold(0u32, |acc, (i, &v)| {
            acc.wrapping_add((v ^ i as u32).wrapping_mul(i as u32 + 1))
        });
        (checksum, (checksum % 251) as i32)
    }

    /// Golden model of [`crc_elf`]: returns `(crc, exit_code)`.
    pub fn crc_model() -> (u32, i32) {
        let mut state = 0x6b8b4567u32;
        let bytes: Vec<u8> = (0..CRC_LEN).map(|_| xorshift32(&mut state) as u8).collect();
        let mut crc = 0xffff_ffffu32;
        for b in bytes {
            crc ^= u32::from(b);
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xedb8_8320
                } else {
                    crc >> 1
                };
            }
        }
        crc = !crc;
        (crc, (crc % 251) as i32)
    }

    /// Golden model of [`sieve_elf`]: primes below 1000.
    pub fn sieve_model() -> u32 {
        let limit = 1000usize;
        let mut flags = vec![false; limit];
        let mut count = 0u32;
        for p in 2..limit {
            if !flags[p] {
                count += 1;
                let mut m = p * p;
                while m < limit {
                    flags[m] = true;
                    m += p;
                }
            }
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elf_roundtrip_and_rejections() {
        let code = [0x93u8, 0x08, 0xd0, 0x05]; // li a7, 93
        let elf = write_elf32(0x40, &[(0x40, &code), (0x2000, &[1, 2, 3, 4])]);
        let image = parse_elf32(&elf).unwrap();
        assert_eq!(image.entry, 0x40);
        assert_eq!(image.segments.len(), 2);
        assert_eq!(image.segments[0].vaddr, 0x40);
        assert_eq!(image.segments[0].data, code);
        assert_eq!(image.segments[1].data, [1, 2, 3, 4]);
        assert_eq!(image.load_end(), 0x2004);

        assert_eq!(parse_elf32(b"not an elf"), Err(ElfError::BadMagic));
        let mut wrong_class = elf.clone();
        wrong_class[4] = 2; // 64-bit
        assert_eq!(parse_elf32(&wrong_class), Err(ElfError::UnsupportedFormat));
        let mut wrong_machine = elf.clone();
        wrong_machine[18] = 62; // x86-64
        wrong_machine[19] = 0;
        assert_eq!(
            parse_elf32(&wrong_machine),
            Err(ElfError::UnsupportedMachine(62))
        );
        let mut truncated = elf.clone();
        truncated.truncate(60);
        assert_eq!(parse_elf32(&truncated), Err(ElfError::Truncated));
    }

    #[test]
    fn segment_outside_dram_is_rejected() {
        let elf = write_elf32(0, &[(0x4000_0000, &[0u8; 8])]);
        let mut sys = System::new();
        assert!(matches!(
            sys.load_elf(&elf),
            Err(ElfError::SegmentOutOfRange { .. })
        ));
    }

    #[test]
    fn shim_brk_write_and_enosys() {
        let mut shim = SyscallShim::new(0x1000, 0x8000);
        let mem = [b'h', b'i', b'\n'];
        let mut read = |addr: u32| mem.get(addr.wrapping_sub(0x100) as usize).copied();

        // brk(0) probes, a legal brk moves, an illegal one is refused.
        assert_eq!(shim.dispatch(sysno::BRK, [0, 0, 0], &mut read).a0, 0x1000);
        assert_eq!(
            shim.dispatch(sysno::BRK, [0x2000, 0, 0], &mut read).a0,
            0x2000
        );
        assert_eq!(
            shim.dispatch(sysno::BRK, [0x9000, 0, 0], &mut read).a0,
            0x2000
        );

        assert_eq!(shim.dispatch(sysno::WRITE, [1, 0x100, 3], &mut read).a0, 3);
        assert_eq!(shim.stdout, b"hi\n");
        assert_eq!(
            shim.dispatch(sysno::WRITE, [7, 0x100, 3], &mut read).a0,
            EBADF_RET
        );
        assert_eq!(
            shim.dispatch(sysno::WRITE, [1, 0x1000, 3], &mut read).a0,
            EFAULT_RET
        );
        assert_eq!(shim.dispatch(17, [0, 0, 0], &mut read).a0, ENOSYS_RET);

        let exit = shim.dispatch(sysno::EXIT, [7, 0, 0], &mut read);
        assert_eq!(exit.exit, Some(7));
        assert_eq!(shim.calls, 8);
    }

    #[test]
    fn hello_binary_runs_to_completion() {
        // Build 'ok\n' on the stack, write it, exit(5).
        let elf = elf_from_assembly(
            "
            addi sp, sp, -16
            li   t0, 0x0a6b6f    # 'ok\\n'
            sw   t0, 0(sp)
            li   a0, 1
            mv   a1, sp
            li   a2, 3
            li   a7, 64
            ecall
            li   a0, 5
            li   a7, 93
            ecall
            ",
        );
        let mut sys = System::new();
        let run = sys.run_elf(&elf, 100_000).unwrap();
        assert_eq!(run.exit_code, Some(5));
        assert_eq!(run.stdout, b"ok\n");
        assert_eq!(run.syscalls, 2);
    }

    #[test]
    fn elf_workloads_match_their_golden_models() {
        let mut sys = System::new();
        let run = sys.run_elf(&workloads::sieve_elf(), 10_000_000).unwrap();
        let primes = workloads::sieve_model();
        assert_eq!(run.exit_code, Some(primes as i32));
        assert_eq!(run.stdout, format!("primes={primes}\n").as_bytes());

        let mut sys = System::new();
        let run = sys.run_elf(&workloads::sort_elf(), 10_000_000).unwrap();
        let (checksum, code) = workloads::sort_model();
        assert_eq!(run.exit_code, Some(code));
        assert_eq!(run.stdout, format!("sorted={checksum}\n").as_bytes());

        let mut sys = System::new();
        let run = sys.run_elf(&workloads::crc_elf(), 10_000_000).unwrap();
        let (crc, code) = workloads::crc_model();
        assert_eq!(run.exit_code, Some(code));
        assert_eq!(run.stdout, format!("crc={crc}\n").as_bytes());
    }
}

//! The multi-accelerator fabric and its async inference service — the
//! production serving story over the paper's Fig. 3 PE cluster.
//!
//! The paper's platform is not one accelerator but a *cluster* of
//! Compute Units behind a Communications Interface, and §4 names TDM and
//! dense-WDM batching as the route from MVM to GeMM-class throughput.
//! This module builds that story host-side:
//!
//! ```text
//!   requests ──► admission queue ──► wavelength batcher ──► shard router
//!                                                              │
//!        response join ◄── readback + ABFT verify ◄── PE fleet ┘
//! ```
//!
//! - **Fleet** ([`PeSpec`]): N [`AccelDevice`] instances, heterogeneous
//!   in mesh size (each PE hosts one model's weight matrix), WDM channel
//!   count, setup latency and fault state, addressed exactly as the bus
//!   maps them (`ACCEL_BASE + PE_STRIDE * slot`) with per-PE operand
//!   windows carved out of the shared scratchpad.
//! - **Batcher**: groups same-model requests into one job descriptor of
//!   up to `wdm_channels` vectors — wavelength-channel batching is a
//!   first-class axis of the job ([`AccelDevice::wdm_channels`] streams
//!   one vector per wavelength per symbol slot). A partial batch flushes
//!   after [`ServeConfig::batch_window`] cycles so tail latency stays
//!   bounded under light load.
//! - **Router + degraded-fleet semantics**: jobs go to the
//!   lowest-numbered idle healthy PE hosting the model. A failed job
//!   (sticky `ERROR`, watchdog abort, checksum mismatch on join)
//!   re-queues its requests at the *front* of the queue for retry on any
//!   healthy PE; the failing device's consecutive-failure count is the
//!   bounded per-device retry budget — at [`ServeConfig::retry_budget`]
//!   the PE is marked out-of-fleet and never scheduled again. A fault
//!   therefore degrades the fleet's throughput, never the service.
//! - **Join**: completed jobs are read back from the PE's SPM window,
//!   verified against the model's ABFT column-checksum row (the same
//!   `c = 1ᵀW` identity the guarded firmware uses), and matched to their
//!   originating requests.
//!
//! The engine is a deterministic discrete-event simulation: device time
//! advances by exact event jumps (arrival, completion, watchdog
//! deadline, batch-window expiry), every data structure iterates in
//! fixed order, and no wall-clock or thread identity enters the
//! trajectory — the same load yields a bit-identical [`ServeReport`] at
//! any host thread count.

use crate::accel::{mmr, AccelDevice};
use crate::fixed::{from_fixed, to_fixed};
use crate::ram::Ram;
use crate::system::{ACCEL_BASE, PE_STRIDE, SPM_BASE, SPM_SIZE};
use neuropulsim_linalg::RMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// Host clock the serving fabric is simulated at \[Hz\].
pub const SERVE_CPU_HZ: f64 = 1e9;

/// Scheduled fault injection for one fleet member.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeFault {
    /// Healthy for the whole run.
    None,
    /// Permanently bricked from `cycle` on: every doorbell is rejected
    /// with the sticky [`crate::accel::errcode::HW_FAULT`] latch and an in-flight job
    /// aborts (the hard device-loss case).
    HardAt {
        /// Cycle at which the device bricks.
        cycle: u64,
    },
    /// Device stalls from `cycle` on: jobs never meet their deadline and
    /// die by watchdog abort (the slow device-loss case).
    StallAt {
        /// Cycle at which the device starts stalling.
        cycle: u64,
    },
}

/// Specification of one processing element in the fleet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeSpec {
    /// Index into the model table this PE hosts (its programmed mesh —
    /// per-PE mesh size/topology is set by the model's matrix).
    pub model: usize,
    /// Dense-WDM channels: the job-descriptor batching cap and the
    /// per-symbol-slot vector parallelism.
    pub wdm_channels: u32,
    /// Fixed per-job setup latency \[cycles\].
    pub setup_cycles: u64,
    /// Scheduled fault, if any.
    pub fault: PeFault,
}

impl PeSpec {
    /// A healthy 8-wavelength PE serving `model`.
    pub fn new(model: usize) -> Self {
        PeSpec {
            model,
            wdm_channels: 8,
            setup_cycles: 20,
            fault: PeFault::None,
        }
    }
}

/// Tuning knobs of the serving front-end.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Watchdog deadline armed on every job \[cycles\] (0 disables —
    /// not recommended: a stalled device then holds its job forever).
    pub watchdog: u32,
    /// Max cycles a request may wait for its batch to fill before a
    /// partial batch is flushed.
    pub batch_window: u64,
    /// Consecutive job failures before a PE is marked out-of-fleet.
    pub retry_budget: u32,
    /// Attempts per request before it is dropped (safety valve; with at
    /// least one healthy PE per model this is never reached because
    /// ejection caps fleet-wide failures at `pes * retry_budget`).
    pub max_attempts: u32,
    /// Verify joined outputs against the ABFT column-checksum row.
    pub verify_outputs: bool,
    /// Per-element tolerance of the output checksum \[Q16.16 units as
    /// f64\]; the job-level tolerance is `n * checksum_tolerance`.
    pub checksum_tolerance: f64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            watchdog: 4096,
            batch_window: 64,
            retry_budget: 3,
            max_attempts: 32,
            verify_outputs: true,
            checksum_tolerance: 0.02,
        }
    }
}

/// One inference request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Caller-assigned id, echoed on the response.
    pub id: u64,
    /// Model the request targets.
    pub model: usize,
    /// Arrival cycle.
    pub arrival: u64,
    /// Input vector (length = the model's dimension).
    pub x: Vec<f64>,
}

/// One completed inference.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// The request id.
    pub id: u64,
    /// The model served.
    pub model: usize,
    /// Arrival cycle of the request.
    pub arrival: u64,
    /// Completion cycle (join time).
    pub completed: u64,
    /// Times the request had to be re-dispatched after a failure.
    pub retries: u32,
    /// Output vector.
    pub y: Vec<f64>,
}

impl Response {
    /// End-to-end latency in cycles.
    pub fn latency(&self) -> u64 {
        self.completed - self.arrival
    }
}

/// Aggregate statistics of one serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Requests completed.
    pub completed: usize,
    /// Requests dropped (no healthy PE for the model, or attempt cap).
    pub dropped: usize,
    /// Cycles from run start to the last join.
    pub total_cycles: u64,
    /// Median end-to-end latency \[cycles\].
    pub p50_latency_cycles: u64,
    /// 99th-percentile end-to-end latency \[cycles\].
    pub p99_latency_cycles: u64,
    /// Worst-case end-to-end latency \[cycles\].
    pub max_latency_cycles: u64,
    /// Sustained simulated throughput \[requests/s\] at [`SERVE_CPU_HZ`].
    pub requests_per_sec: f64,
    /// Jobs dispatched to devices (including failed attempts).
    pub jobs_dispatched: u64,
    /// Jobs that failed (device error, watchdog, checksum mismatch).
    pub jobs_failed: u64,
    /// Request re-dispatches caused by failed jobs.
    pub retries: u64,
    /// PEs marked out-of-fleet during the run.
    pub pes_ejected: usize,
    /// Jobs completed per PE (the shard-router balance picture).
    pub per_pe_jobs: Vec<u64>,
    /// Mean vectors per dispatched job (wavelength occupancy).
    pub mean_batch_fill: f64,
    /// Total fleet energy \[J\] (photonic + electro-optic + programming).
    pub fleet_energy_j: f64,
}

/// The result of [`InferenceServer::run`]: joined responses (sorted by
/// request id) plus the aggregate report.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeOutcome {
    /// Completed responses, sorted by request id.
    pub responses: Vec<Response>,
    /// Ids of dropped requests, sorted.
    pub dropped_ids: Vec<u64>,
    /// Aggregate statistics.
    pub report: ServeReport,
}

/// A queued request with its retry count.
#[derive(Debug, Clone)]
struct Pending {
    req: Request,
    attempts: u32,
}

/// An in-flight job descriptor: the batched requests riding one set of
/// wavelength channels on one PE.
#[derive(Debug, Clone)]
struct Job {
    requests: Vec<Pending>,
}

/// One fleet member and its bus identity.
#[derive(Debug, Clone)]
struct PeState {
    dev: AccelDevice,
    spec: PeSpec,
    /// MMR base on the bus (`ACCEL_BASE + PE_STRIDE * slot`).
    base: u32,
    spm_in: u32,
    spm_out: u32,
    healthy: bool,
    consecutive_failures: u32,
    job: Option<Job>,
    jobs_completed: u64,
    fault_applied: bool,
}

/// The async serving front-end over a heterogeneous accelerator fleet.
#[derive(Debug, Clone)]
pub struct InferenceServer {
    cfg: ServeConfig,
    models: Vec<RMatrix>,
    /// Per-model ABFT plain-checksum row `c = 1ᵀ·W`.
    checksum_rows: Vec<Vec<f64>>,
    pes: Vec<PeState>,
    /// Per-model "some healthy PE can serve this" mask, refreshed on
    /// every fleet change. Lets admission reject unservable requests in
    /// O(1) instead of sweeping the whole queue each scheduler pass.
    servable: Vec<bool>,
    /// Set when a PE leaves the fleet; the next scheduler pass refreshes
    /// `servable` and drains newly-orphaned queued requests.
    fleet_changed: bool,
    spm: Ram,
    now: u64,
}

impl InferenceServer {
    /// Builds the fleet: one [`AccelDevice`] per spec, programmed with
    /// its model's weights, with a private operand window in the shared
    /// scratchpad.
    ///
    /// # Panics
    ///
    /// Panics if a spec names a missing model, a model matrix is not
    /// square, or the per-PE operand windows overflow the scratchpad.
    pub fn new(models: Vec<RMatrix>, specs: &[PeSpec], cfg: ServeConfig) -> Self {
        assert!(!specs.is_empty(), "serve: fleet must have at least one PE");
        let checksum_rows: Vec<Vec<f64>> = models
            .iter()
            .map(|w| {
                let n = w.rows();
                assert_eq!(w.cols(), n, "serve: model matrix must be square");
                (0..n).map(|j| (0..n).map(|i| w[(i, j)]).sum()).collect()
            })
            .collect();
        let mut pes = Vec::with_capacity(specs.len());
        let mut cursor = SPM_BASE + 0x100;
        for (slot, spec) in specs.iter().enumerate() {
            let w = models
                .get(spec.model)
                .unwrap_or_else(|| panic!("serve: PE {slot} names missing model {}", spec.model));
            let n = w.rows();
            let mut dev = AccelDevice::new(SERVE_CPU_HZ);
            dev.load_matrix(w);
            dev.wdm_channels = spec.wdm_channels.max(1);
            dev.setup_cycles = spec.setup_cycles;
            let window = dev.wdm_channels * (n as u32) * 4;
            let (spm_in, spm_out) = (cursor, cursor + window);
            cursor += 2 * window;
            assert!(
                cursor <= SPM_BASE + SPM_SIZE as u32,
                "serve: PE operand windows overflow the scratchpad"
            );
            pes.push(PeState {
                dev,
                spec: *spec,
                base: ACCEL_BASE + PE_STRIDE * slot as u32,
                spm_in,
                spm_out,
                healthy: true,
                consecutive_failures: 0,
                job: None,
                jobs_completed: 0,
                fault_applied: false,
            });
        }
        let mut servable = vec![false; models.len()];
        for pe in &pes {
            servable[pe.spec.model] = true;
        }
        InferenceServer {
            cfg,
            models,
            checksum_rows,
            pes,
            servable,
            fleet_changed: false,
            spm: Ram::new(SPM_BASE, SPM_SIZE),
            now: 0,
        }
    }

    /// Recomputes the per-model servability mask from the surviving
    /// fleet members.
    fn refresh_servable(&mut self) {
        self.servable.iter_mut().for_each(|s| *s = false);
        for pe in &self.pes {
            if pe.healthy {
                self.servable[pe.spec.model] = true;
            }
        }
    }

    /// Number of PEs still in the fleet (healthy).
    pub fn healthy_pes(&self) -> usize {
        self.pes.iter().filter(|p| p.healthy).count()
    }

    /// The bus MMR base address of PE `slot`.
    pub fn pe_base(&self, slot: usize) -> u32 {
        self.pes[slot].base
    }

    /// Shared access to PE `slot`'s device (inspection in tests/benches).
    pub fn pe_device(&self, slot: usize) -> &AccelDevice {
        &self.pes[slot].dev
    }

    /// Total fleet energy so far \[J\].
    pub fn fleet_energy(&self) -> f64 {
        self.pes.iter().map(|p| p.dev.energy()).sum()
    }

    /// Serves `load` to completion (every request joined or dropped) and
    /// returns the joined responses plus the aggregate report.
    pub fn run(&mut self, load: &[Request]) -> ServeOutcome {
        let mut load: Vec<Request> = load.to_vec();
        load.sort_by_key(|r| (r.arrival, r.id));
        let start = self.now;
        let total = load.len();
        let mut next_arrival = 0usize;
        let mut queue: VecDeque<Pending> = VecDeque::new();
        let mut responses: Vec<Response> = Vec::new();
        let mut dropped_ids: Vec<u64> = Vec::new();
        let mut jobs_dispatched = 0u64;
        let mut jobs_failed = 0u64;
        let mut retries = 0u64;
        let mut vectors_dispatched = 0u64;

        loop {
            // Scheduled fault injection fires exactly at its cycle.
            for pe in &mut self.pes {
                if pe.fault_applied {
                    continue;
                }
                match pe.spec.fault {
                    PeFault::HardAt { cycle } if cycle <= self.now => {
                        pe.dev.inject_hard_fault();
                        pe.fault_applied = true;
                    }
                    PeFault::StallAt { cycle } if cycle <= self.now => {
                        // New jobs will overrun any finite watchdog.
                        pe.dev.setup_cycles = 1 << 40;
                        pe.fault_applied = true;
                    }
                    _ => {}
                }
            }

            // Admission: enqueue everything that has arrived. Requests
            // whose model no PE can serve are service failures, not
            // hangs: reject them at the door.
            while next_arrival < load.len() && load[next_arrival].arrival <= self.now {
                let req = &load[next_arrival];
                if self.servable[req.model] {
                    queue.push_back(Pending {
                        req: req.clone(),
                        attempts: 0,
                    });
                } else {
                    dropped_ids.push(req.id);
                }
                next_arrival += 1;
            }

            // Join: collect completed jobs (or their failures).
            for i in 0..self.pes.len() {
                if self.pes[i].job.is_some() && self.pes[i].dev.is_done() {
                    match self.complete(i) {
                        Ok(mut resp) => responses.append(&mut resp),
                        Err(job) => {
                            jobs_failed += 1;
                            self.fail(i, job, &mut queue, &mut dropped_ids, &mut retries);
                        }
                    }
                }
            }

            // A PE just left the fleet: refresh the servability mask and
            // drain queued requests it has newly orphaned. Gating the
            // O(queue) sweep on fleet changes keeps the steady-state
            // scheduler pass O(fleet) even with thousands queued.
            if self.fleet_changed {
                self.fleet_changed = false;
                self.refresh_servable();
                let servable = &self.servable;
                queue.retain(|p| {
                    if !servable[p.req.model] {
                        dropped_ids.push(p.req.id);
                    }
                    servable[p.req.model]
                });
            }

            // Route: fill idle healthy PEs in slot order.
            for i in 0..self.pes.len() {
                let pe = &self.pes[i];
                if !pe.healthy || pe.job.is_some() || pe.dev.is_busy() {
                    continue;
                }
                let arrivals_done = next_arrival >= load.len();
                let Some(job) = take_batch(
                    &mut queue,
                    pe.spec.model,
                    pe.dev.wdm_channels as usize,
                    self.now,
                    self.cfg.batch_window,
                    arrivals_done,
                ) else {
                    continue;
                };
                jobs_dispatched += 1;
                vectors_dispatched += job.requests.len() as u64;
                if let Err(job) = self.dispatch(i, job) {
                    jobs_failed += 1;
                    self.fail(i, job, &mut queue, &mut dropped_ids, &mut retries);
                }
            }

            if responses.len() + dropped_ids.len() >= total {
                break;
            }

            // Advance to the next event: arrival, device completion /
            // watchdog deadline, or batch-window expiry on a model that
            // has an idle healthy PE waiting for it.
            let mut next: Option<u64> = None;
            let mut relax = |t: u64| next = Some(next.map_or(t, |cur: u64| cur.min(t)));
            if next_arrival < load.len() {
                relax(load[next_arrival].arrival);
            }
            for pe in &self.pes {
                if let Some(t) = pe.dev.next_event() {
                    relax(t.max(self.now + 1));
                }
            }
            for pe in &self.pes {
                if !pe.healthy || pe.job.is_some() || pe.dev.is_busy() {
                    continue;
                }
                if let Some(oldest) = queue
                    .iter()
                    .filter(|p| p.req.model == pe.spec.model)
                    .map(|p| p.req.arrival)
                    .min()
                {
                    relax((oldest + self.cfg.batch_window).max(self.now + 1));
                }
            }
            match next {
                Some(t) => {
                    debug_assert!(t > self.now, "event loop must make progress");
                    self.now = t;
                    for pe in &mut self.pes {
                        pe.dev.tick(self.now);
                    }
                }
                None => {
                    // No event can ever fire again: everything still
                    // queued is undeliverable (defensive — the orphan
                    // sweep above should already have drained it).
                    for p in queue.drain(..) {
                        dropped_ids.push(p.req.id);
                    }
                    if responses.len() + dropped_ids.len() >= total {
                        break;
                    }
                    unreachable!("serve: no pending event yet requests unaccounted for");
                }
            }
        }

        responses.sort_by_key(|r| r.id);
        dropped_ids.sort_unstable();
        let mut latencies: Vec<u64> = responses.iter().map(Response::latency).collect();
        latencies.sort_unstable();
        let pct = |p: usize| -> u64 {
            if latencies.is_empty() {
                0
            } else {
                latencies[(latencies.len() - 1) * p / 100]
            }
        };
        let total_cycles = self.now - start;
        let report = ServeReport {
            completed: responses.len(),
            dropped: dropped_ids.len(),
            total_cycles,
            p50_latency_cycles: pct(50),
            p99_latency_cycles: pct(99),
            max_latency_cycles: latencies.last().copied().unwrap_or(0),
            requests_per_sec: if total_cycles > 0 {
                responses.len() as f64 / (total_cycles as f64 / SERVE_CPU_HZ)
            } else {
                0.0
            },
            jobs_dispatched,
            jobs_failed,
            retries,
            pes_ejected: self.pes.iter().filter(|p| !p.healthy).count(),
            per_pe_jobs: self.pes.iter().map(|p| p.jobs_completed).collect(),
            mean_batch_fill: if jobs_dispatched > 0 {
                vectors_dispatched as f64 / jobs_dispatched as f64
            } else {
                0.0
            },
            fleet_energy_j: self.fleet_energy(),
        };
        ServeOutcome {
            responses,
            dropped_ids,
            report,
        }
    }

    /// Stages a job's inputs into the PE's SPM window and rings the
    /// doorbell. Returns the job back on immediate rejection (bricked
    /// device, malformed job).
    fn dispatch(&mut self, i: usize, job: Job) -> Result<(), Job> {
        let n = self.models[self.pes[i].spec.model].rows();
        let pe = &mut self.pes[i];
        for (k, p) in job.requests.iter().enumerate() {
            debug_assert_eq!(p.req.x.len(), n, "request length matches its model");
            for (j, &v) in p.req.x.iter().enumerate() {
                self.spm
                    .poke(pe.spm_in + (k * n + j) as u32 * 4, to_fixed(v) as u32)
                    .expect("PE window inside SPM");
            }
        }
        // Same MMR protocol the bus-mapped firmware path uses.
        pe.dev.mmr_store(mmr::CTRL, 4); // clear stale error latch
        pe.dev.mmr_store(mmr::IN_ADDR, pe.spm_in);
        pe.dev.mmr_store(mmr::OUT_ADDR, pe.spm_out);
        pe.dev.mmr_store(mmr::BATCH, job.requests.len() as u32);
        pe.dev.mmr_store(mmr::WATCHDOG, self.cfg.watchdog);
        let doorbell = pe.dev.mmr_store(mmr::CTRL, 1);
        if doorbell && pe.dev.start(self.now, &mut self.spm) {
            pe.job = Some(job);
            Ok(())
        } else {
            Err(job)
        }
    }

    /// Joins a completed job: acknowledges the device, checks the error
    /// latch, reads the outputs back and verifies them. Returns the job
    /// on any failure so the caller can re-route it.
    fn complete(&mut self, i: usize) -> Result<Vec<Response>, Job> {
        let model = self.pes[i].spec.model;
        let n = self.models[model].rows();
        let pe = &mut self.pes[i];
        let job = pe.job.take().expect("complete() requires an in-flight job");
        pe.dev.mmr_store(mmr::CTRL, 2); // ack done
        if pe.dev.error_bits() != 0 {
            pe.dev.mmr_store(mmr::CTRL, 4); // ack the error latch
            return Err(job);
        }
        let mut out = Vec::with_capacity(job.requests.len());
        for (k, p) in job.requests.iter().enumerate() {
            let y: Vec<f64> = (0..n)
                .map(|j| {
                    from_fixed(
                        self.spm
                            .peek(pe.spm_out + (k * n + j) as u32 * 4)
                            .expect("PE window inside SPM") as i32,
                    )
                })
                .collect();
            if self.cfg.verify_outputs {
                // ABFT plain-checksum identity: Σ·(W x) = (1ᵀW)·x.
                let lhs: f64 = y.iter().sum();
                let rhs: f64 = self.checksum_rows[model]
                    .iter()
                    .zip(&p.req.x)
                    .map(|(&c, &x)| c * from_fixed(to_fixed(x)))
                    .sum();
                if (lhs - rhs).abs() > self.cfg.checksum_tolerance * n as f64 {
                    return Err(job);
                }
            }
            out.push(Response {
                id: p.req.id,
                model,
                arrival: p.req.arrival,
                completed: self.now,
                retries: p.attempts,
                y,
            });
        }
        pe.consecutive_failures = 0;
        pe.jobs_completed += 1;
        Ok(out)
    }

    /// Degraded-fleet bookkeeping after a failed job: charge the PE's
    /// retry budget (ejecting it at the cap) and re-queue the requests
    /// at the front for retry on any healthy PE.
    fn fail(
        &mut self,
        i: usize,
        job: Job,
        queue: &mut VecDeque<Pending>,
        dropped_ids: &mut Vec<u64>,
        retries: &mut u64,
    ) {
        let pe = &mut self.pes[i];
        pe.consecutive_failures += 1;
        if pe.consecutive_failures >= self.cfg.retry_budget && pe.healthy {
            pe.healthy = false;
            self.fleet_changed = true;
        }
        for mut p in job.requests.into_iter().rev() {
            p.attempts += 1;
            *retries += 1;
            if p.attempts >= self.cfg.max_attempts {
                dropped_ids.push(p.req.id);
            } else {
                queue.push_front(p);
            }
        }
    }
}

/// Pulls the next batch for `model` out of the queue: up to `cap`
/// same-model requests in FIFO order. A batch forms when it is full,
/// when its oldest request has waited `batch_window` cycles, or when no
/// further arrivals can top it up.
fn take_batch(
    queue: &mut VecDeque<Pending>,
    model: usize,
    cap: usize,
    now: u64,
    batch_window: u64,
    arrivals_done: bool,
) -> Option<Job> {
    let matching: Vec<usize> = queue
        .iter()
        .enumerate()
        .filter(|(_, p)| p.req.model == model)
        .map(|(k, _)| k)
        .take(cap)
        .collect();
    if matching.is_empty() {
        return None;
    }
    let oldest = queue[matching[0]].req.arrival;
    let ready = matching.len() >= cap || oldest + batch_window <= now || arrivals_done;
    if !ready {
        return None;
    }
    let mut requests = Vec::with_capacity(matching.len());
    for &k in matching.iter().rev() {
        requests.push(queue.remove(k).expect("index valid"));
    }
    requests.reverse();
    Some(Job { requests })
}

/// Specification of a synthetic request load.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadSpec {
    /// Number of requests.
    pub requests: usize,
    /// Mean inter-arrival gap \[cycles\] (uniform in `0..=2*mean`).
    pub mean_interarrival: u64,
    /// RNG seed: the same seed always generates the same load.
    pub seed: u64,
}

/// Generates a deterministic synthetic load over `models`: arrival
/// times from a seeded uniform inter-arrival process, model choice
/// uniform, inputs uniform in `[-0.5, 0.5)`.
pub fn synthetic_load(models: &[RMatrix], spec: LoadSpec) -> Vec<Request> {
    assert!(
        !models.is_empty(),
        "synthetic load needs at least one model"
    );
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut t = 0u64;
    (0..spec.requests as u64)
        .map(|id| {
            t += rng.gen_range(0..=2 * spec.mean_interarrival);
            let model = rng.gen_range(0..models.len());
            let n = models[model].rows();
            Request {
                id,
                model,
                arrival: t,
                x: (0..n).map(|_| rng.gen_range(-0.5..0.5)).collect(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_model(n: usize) -> RMatrix {
        RMatrix::from_fn(n, n, |i, j| {
            0.4 * ((i as f64 - j as f64) * 0.31).sin() + if i == j { 0.3 } else { 0.0 }
        })
    }

    fn homogeneous_fleet(pes: usize, fault: &[(usize, PeFault)]) -> Vec<PeSpec> {
        (0..pes)
            .map(|i| {
                let mut s = PeSpec::new(0);
                if let Some((_, f)) = fault.iter().find(|(k, _)| *k == i) {
                    s.fault = *f;
                }
                s
            })
            .collect()
    }

    fn heavy_load(models: &[RMatrix], requests: usize) -> Vec<Request> {
        synthetic_load(
            models,
            LoadSpec {
                requests,
                mean_interarrival: 2,
                seed: 0x10ad,
            },
        )
    }

    #[test]
    fn responses_match_the_model() {
        let models = vec![test_model(6)];
        let mut srv = InferenceServer::new(
            models.clone(),
            &homogeneous_fleet(2, &[]),
            ServeConfig::default(),
        );
        let load = heavy_load(&models, 40);
        let out = srv.run(&load);
        assert_eq!(out.report.completed, 40);
        assert_eq!(out.report.dropped, 0);
        for resp in &out.responses {
            let req = load.iter().find(|r| r.id == resp.id).unwrap();
            let want = models[0].mul_vec(&req.x);
            for (a, b) in resp.y.iter().zip(&want) {
                assert!((a - b).abs() < 2e-3, "id {}: {a} vs {b}", resp.id);
            }
        }
    }

    #[test]
    fn wavelength_batching_amortizes_setup() {
        let models = vec![test_model(8)];
        let cfg = ServeConfig::default();
        let run = |wdm: u32| {
            let mut spec = PeSpec::new(0);
            spec.wdm_channels = wdm;
            let mut srv = InferenceServer::new(models.clone(), &[spec], cfg);
            srv.run(&heavy_load(&models, 200)).report
        };
        let narrow = run(1);
        let wide = run(8);
        assert_eq!(narrow.completed, 200);
        assert_eq!(wide.completed, 200);
        assert!(
            wide.total_cycles * 3 < narrow.total_cycles,
            "8-wavelength batching must amortize per-job setup: {} vs {}",
            wide.total_cycles,
            narrow.total_cycles
        );
        assert!(wide.mean_batch_fill > 4.0, "{}", wide.mean_batch_fill);
    }

    #[test]
    fn fleet_scales_throughput() {
        let models = vec![test_model(8)];
        // A burst load (everything queued up front) keeps every fleet
        // size fully saturated, so the comparison measures service
        // capacity rather than the arrival rate.
        let load = synthetic_load(
            &models,
            LoadSpec {
                requests: 600,
                mean_interarrival: 0,
                seed: 3,
            },
        );
        let run = |pes: usize| {
            let mut srv = InferenceServer::new(
                models.clone(),
                &homogeneous_fleet(pes, &[]),
                ServeConfig::default(),
            );
            srv.run(&load).report
        };
        let one = run(1);
        let four = run(4);
        assert_eq!(one.dropped + four.dropped, 0);
        assert!(
            four.requests_per_sec >= 2.0 * one.requests_per_sec,
            "4 PEs must at least double sustained throughput: {} -> {}",
            one.requests_per_sec,
            four.requests_per_sec
        );
    }

    #[test]
    fn hard_faulted_pe_degrades_the_fleet_not_the_service() {
        let models = vec![test_model(8)];
        let mut srv = InferenceServer::new(
            models.clone(),
            &homogeneous_fleet(4, &[(1, PeFault::HardAt { cycle: 200 })]),
            ServeConfig::default(),
        );
        let out = srv.run(&heavy_load(&models, 400));
        assert_eq!(out.report.dropped, 0, "no request may be lost");
        assert_eq!(out.report.completed, 400);
        assert_eq!(out.report.pes_ejected, 1, "the bricked PE left the fleet");
        assert_eq!(srv.healthy_pes(), 3);
        assert!(out.report.jobs_failed > 0, "the fault was actually hit");
        assert!(
            out.responses.iter().any(|r| r.retries > 0),
            "failed jobs were retried on healthy PEs"
        );
    }

    #[test]
    fn stalled_pe_is_ejected_via_watchdog() {
        let models = vec![test_model(8)];
        let mut srv = InferenceServer::new(
            models.clone(),
            &homogeneous_fleet(3, &[(2, PeFault::StallAt { cycle: 0 })]),
            ServeConfig {
                // Fail fast enough that the stalled PE burns through its
                // retry budget well before the load drains.
                watchdog: 64,
                ..ServeConfig::default()
            },
        );
        // Burst load: a deep queue guarantees the stalled PE keeps
        // receiving (and timing out on) jobs until it is ejected.
        let load = synthetic_load(
            &models,
            LoadSpec {
                requests: 400,
                mean_interarrival: 0,
                seed: 0x10ad,
            },
        );
        let out = srv.run(&load);
        assert_eq!(out.report.dropped, 0);
        assert_eq!(out.report.completed, 400);
        assert_eq!(out.report.pes_ejected, 1);
        assert_eq!(
            out.report.per_pe_jobs[2], 0,
            "the stalled PE joined nothing"
        );
    }

    #[test]
    fn whole_fleet_loss_drops_requests_without_hanging() {
        let models = vec![test_model(4)];
        let mut srv = InferenceServer::new(
            models.clone(),
            &homogeneous_fleet(
                2,
                &[
                    (0, PeFault::HardAt { cycle: 0 }),
                    (1, PeFault::HardAt { cycle: 0 }),
                ],
            ),
            ServeConfig::default(),
        );
        let out = srv.run(&heavy_load(&models, 50));
        assert_eq!(out.report.completed, 0);
        assert_eq!(
            out.report.dropped, 50,
            "service failure is reported, not hung"
        );
        assert_eq!(out.report.pes_ejected, 2);
    }

    #[test]
    fn heterogeneous_models_route_correctly() {
        let models = vec![test_model(4), test_model(8)];
        let specs = vec![PeSpec::new(0), PeSpec::new(1), PeSpec::new(1)];
        let mut srv = InferenceServer::new(models.clone(), &specs, ServeConfig::default());
        let load = synthetic_load(
            &models,
            LoadSpec {
                requests: 120,
                mean_interarrival: 4,
                seed: 7,
            },
        );
        let out = srv.run(&load);
        assert_eq!(out.report.completed, 120);
        assert_eq!(out.report.dropped, 0);
        for resp in &out.responses {
            let req = load.iter().find(|r| r.id == resp.id).unwrap();
            assert_eq!(resp.model, req.model);
            let want = models[req.model].mul_vec(&req.x);
            for (a, b) in resp.y.iter().zip(&want) {
                assert!((a - b).abs() < 2e-3);
            }
        }
    }

    #[test]
    fn serving_is_deterministic_across_reruns() {
        let models = vec![test_model(8)];
        let mut reports = Vec::new();
        for _ in 0..2 {
            let mut srv = InferenceServer::new(
                models.clone(),
                &homogeneous_fleet(3, &[(0, PeFault::HardAt { cycle: 500 })]),
                ServeConfig::default(),
            );
            reports.push(srv.run(&heavy_load(&models, 300)));
        }
        assert_eq!(reports[0], reports[1], "serving must be bit-deterministic");
    }

    #[test]
    fn batch_window_bounds_tail_latency_under_light_load() {
        let models = vec![test_model(8)];
        let cfg = ServeConfig {
            batch_window: 32,
            ..ServeConfig::default()
        };
        let mut srv = InferenceServer::new(models.clone(), &[PeSpec::new(0)], cfg);
        // One straggler request: nothing arrives after it to fill the
        // batch, so the window (not a peer) must flush it.
        let load = vec![
            Request {
                id: 0,
                model: 0,
                arrival: 0,
                x: vec![0.1; 8],
            },
            Request {
                id: 1,
                model: 0,
                arrival: 10_000,
                x: vec![0.2; 8],
            },
        ];
        let out = srv.run(&load);
        assert_eq!(out.report.completed, 2);
        // Neither request waits much longer than window + job time.
        assert!(
            out.report.max_latency_cycles < 200,
            "{}",
            out.report.max_latency_cycles
        );
    }
}

//! The multi-accelerator fabric and its async inference service — the
//! production serving story over the paper's Fig. 3 PE cluster.
//!
//! The paper's platform is not one accelerator but a *cluster* of
//! Compute Units behind a Communications Interface, and §4 names TDM and
//! dense-WDM batching as the route from MVM to GeMM-class throughput.
//! This module builds that story host-side:
//!
//! ```text
//!   requests ──► admission control ──► wavelength batcher ──► shard router
//!                                                                │
//!          response join ◄── readback + ABFT verify ◄── PE fleet ┘
//! ```
//!
//! - **Fleet** ([`PeSpec`]): N [`AccelDevice`] instances, heterogeneous
//!   in mesh size (each PE hosts one model's weight matrix), WDM channel
//!   count, setup latency and fault state, addressed exactly as the bus
//!   maps them (`ACCEL_BASE + PE_STRIDE * slot`) with per-PE operand
//!   windows carved out of the shared scratchpad.
//! - **Admission control**: a bounded request queue
//!   ([`ServeConfig::queue_cap`]) with per-model-class load shedding and
//!   exponential-backoff readmission of shed classes, plus optional
//!   deadline-aware drops ([`ServeConfig::deadline`]) — sustained
//!   overload degrades latency predictably instead of growing the queue
//!   without bound.
//! - **Batcher**: groups same-model requests into one job descriptor of
//!   up to `wdm_channels` vectors; a partial batch flushes after
//!   [`ServeConfig::batch_window`] cycles so tail latency stays bounded
//!   under light load.
//! - **Router**: jobs go to the lowest-numbered idle in-fleet PE hosting
//!   the model; requests carry a failed-on affinity mask so a retried
//!   request avoids the PE that just corrupted it.
//! - **Join**: completed jobs are read back from the PE's SPM window and
//!   verified *per vector* against the model's ABFT column-checksum row
//!   (the same `c = 1ᵀW` identity the guarded firmware uses): good
//!   vectors join even when a sibling in the batch fails, so a poison
//!   payload can only ever take itself down.
//!
//! # Self-healing health lifecycle
//!
//! Unlike a one-way ejection fleet, every PE runs a health state machine
//! (see DESIGN.md §8) that closes the loop on the platform's dominant
//! *recoverable* failure modes — PCM retention drift, transient upsets
//! and stalls:
//!
//! ```text
//!   Healthy ⇄ Suspect ──► Ejected ──► Recovering ──► Probation ──► Healthy
//!      │                     ▲  │                        │
//!      ▼                     │  └──────► Dead ◄──────────┘
//!   Recalibrating ───────────┘    (sticky HW_FAULT / attempts exhausted)
//! ```
//!
//! - **Drift-aware health**: with [`ServeConfig::canary_period`] set,
//!   idle PEs periodically run a *canary MVM* — a known input whose ABFT
//!   checksum is precomputed — at a tightened tolerance
//!   ([`ServeConfig::drift_margin`] × the job tolerance). A canary miss
//!   means [`crate::accel::PcmDriftModel`] aging is approaching the job
//!   threshold: the PE drains gracefully and issues a CTRL recalibration
//!   *before* any production job can fail its checksum.
//! - **Recovery & readmission**: an ejected PE waits out an
//!   exponentially backed-off [`ServeConfig::recovery_backoff`], then
//!   runs a deterministic reset-and-recalibrate sequence (error-latch
//!   clear + hard-fault reset + CTRL recal), followed by half-open
//!   *probation*: watchdog-armed canary jobs only, no production
//!   traffic. [`ServeConfig::probation_canaries`] consecutive passes
//!   readmit the PE; any failure re-ejects it. After
//!   [`ServeConfig::recovery_attempts`] failed rounds — or immediately
//!   if recovery is disabled — the PE is `Dead` and never scheduled
//!   again. A *persistent* fault condition re-asserts itself against the
//!   reset (the sticky `HW_FAULT` latch comes straight back), so
//!   permanent bricks end up `Dead` while transient ones are readmitted.
//!
//! The engine is a deterministic discrete-event simulation: device time
//! advances by exact event jumps, every data structure iterates in fixed
//! order, and no wall-clock or thread identity enters the trajectory —
//! the same load yields a bit-identical [`ServeReport`] at any host
//! thread count. The run loop is resumable ([`InferenceServer::begin`] /
//! [`InferenceServer::step`] / [`InferenceServer::finish`]) and the
//! server is `Clone`, so a mid-run clone is a snapshot that resumes
//! bit-identically — the property `tests/snapshot_fuzz.rs` exercises
//! with cuts inside recalibration and probation windows.

pub mod chaos;

use crate::accel::{mmr, AccelDevice, PcmDriftModel};
use crate::fixed::{from_fixed, to_fixed};
use crate::ram::Ram;
use crate::system::{ACCEL_BASE, PE_STRIDE, SPM_BASE, SPM_SIZE};
use neuropulsim_linalg::RMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// Host clock the serving fabric is simulated at \[Hz\].
pub const SERVE_CPU_HZ: f64 = 1e9;

/// Scheduled fault injection for one fleet member. `*At` variants model
/// persistent conditions (the fault re-asserts itself against any reset,
/// so the PE ends up `Dead`); `*For` variants model transient windows
/// (the recovery sequence succeeds once the window has passed and the PE
/// is readmitted).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeFault {
    /// Healthy for the whole run.
    None,
    /// Permanently bricked from `cycle` on: the sticky
    /// [`crate::accel::errcode::HW_FAULT`] latch re-asserts after every
    /// reset attempt and an in-flight job aborts.
    HardAt {
        /// Cycle at which the device bricks.
        cycle: u64,
    },
    /// Transient brick: the fault condition holds in `cycle..until`;
    /// a reset-and-recalibrate attempted after `until` succeeds.
    HardFor {
        /// Cycle at which the device bricks.
        cycle: u64,
        /// First cycle at which the fault condition has cleared.
        until: u64,
    },
    /// Device stalls from `cycle` on: jobs never meet their deadline and
    /// die by watchdog abort (the slow device-loss case).
    StallAt {
        /// Cycle at which the device starts stalling.
        cycle: u64,
    },
    /// Transient stall: jobs time out in `cycle..until`, after which
    /// the device runs at its specified latency again.
    StallFor {
        /// Cycle at which the device starts stalling.
        cycle: u64,
        /// First cycle at which the stall has cleared.
        until: u64,
    },
}

/// Specification of one processing element in the fleet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeSpec {
    /// Index into the model table this PE hosts (its programmed mesh —
    /// per-PE mesh size/topology is set by the model's matrix).
    pub model: usize,
    /// Dense-WDM channels: the job-descriptor batching cap and the
    /// per-symbol-slot vector parallelism.
    pub wdm_channels: u32,
    /// Fixed per-job setup latency \[cycles\].
    pub setup_cycles: u64,
    /// Scheduled fault, if any.
    pub fault: PeFault,
    /// PCM retention-drift model aging this PE's programmed weights
    /// (`None` = non-drifting weights).
    pub drift: Option<PcmDriftModel>,
}

impl PeSpec {
    /// A healthy 8-wavelength PE serving `model`.
    pub fn new(model: usize) -> Self {
        PeSpec {
            model,
            wdm_channels: 8,
            setup_cycles: 20,
            fault: PeFault::None,
            drift: None,
        }
    }
}

/// Tuning knobs of the serving front-end.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Watchdog deadline armed on every job and canary \[cycles\]
    /// (0 disables — not recommended: a stalled device then holds its
    /// job forever).
    pub watchdog: u32,
    /// Max cycles a request may wait for its batch to fill before a
    /// partial batch is flushed.
    pub batch_window: u64,
    /// Consecutive job failures before a PE is ejected.
    pub retry_budget: u32,
    /// Attempts per request before it is dropped (safety valve against
    /// pathological retry loops).
    pub max_attempts: u32,
    /// Verify joined outputs against the ABFT column-checksum row.
    pub verify_outputs: bool,
    /// Per-element tolerance of the output checksum \[Q16.16 units as
    /// f64\]; the job-level tolerance is `n * checksum_tolerance`.
    pub checksum_tolerance: f64,
    /// Checksum failures a single request may accumulate before it is
    /// dropped as poison (a bad payload, not bad hardware).
    pub request_retry_cap: u32,
    /// Admission-queue bound; at the cap, arriving requests of that
    /// model class are shed with exponential-backoff readmission
    /// (0 = unbounded, shedding disabled).
    pub queue_cap: usize,
    /// Base backoff of a shed model class \[cycles\] (doubles per
    /// consecutive shed event).
    pub shed_backoff: u64,
    /// Queued requests older than this are dropped instead of served
    /// (0 = no deadline).
    pub deadline: u64,
    /// Cycles between drift-canary MVMs on an idle in-fleet PE
    /// (0 = canaries disabled).
    pub canary_period: u64,
    /// Canary tolerance as a fraction of the job checksum tolerance:
    /// a canary "misses" (and schedules recalibration) while production
    /// jobs would still pass, which is what makes drift recovery
    /// pre-emptive.
    pub drift_margin: f64,
    /// Base wait before an ejected PE's first recovery attempt
    /// \[cycles\]; doubles per failed round.
    pub recovery_backoff: u64,
    /// Recovery rounds (reset + recalibrate + probation) before an
    /// ejected PE is declared dead (0 = ejection is permanent).
    pub recovery_attempts: u32,
    /// Consecutive canary passes required to leave probation.
    pub probation_canaries: u32,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            watchdog: 4096,
            batch_window: 64,
            retry_budget: 3,
            max_attempts: 32,
            verify_outputs: true,
            checksum_tolerance: 0.02,
            request_retry_cap: 3,
            queue_cap: 0,
            shed_backoff: 512,
            deadline: 0,
            canary_period: 0,
            drift_margin: 0.5,
            recovery_backoff: 2048,
            recovery_attempts: 4,
            probation_canaries: 2,
        }
    }
}

/// Lifecycle state of one fleet member (DESIGN.md §8).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeHealth {
    /// In-fleet, serving production jobs.
    Healthy,
    /// In-fleet with recent consecutive failures — still serving, one
    /// more failure streak from ejection.
    Suspect,
    /// Draining for a drift-triggered recalibration (canary missed):
    /// no new jobs; the CTRL recal is in flight or issues once idle.
    Recalibrating,
    /// Out-of-fleet, waiting out the recovery backoff.
    Ejected,
    /// Reset-and-recalibrate sequence in flight.
    Recovering,
    /// Half-open: serving watchdog-armed canary jobs only.
    Probation,
    /// Permanently out (sticky fault or recovery attempts exhausted).
    Dead,
}

impl PeHealth {
    /// Stable lowercase name (report JSON).
    pub fn as_str(self) -> &'static str {
        match self {
            PeHealth::Healthy => "healthy",
            PeHealth::Suspect => "suspect",
            PeHealth::Recalibrating => "recalibrating",
            PeHealth::Ejected => "ejected",
            PeHealth::Recovering => "recovering",
            PeHealth::Probation => "probation",
            PeHealth::Dead => "dead",
        }
    }

    /// True for states that count as in-fleet (serving or about to
    /// resume serving without leaving the fleet).
    fn in_fleet(self) -> bool {
        matches!(
            self,
            PeHealth::Healthy | PeHealth::Suspect | PeHealth::Recalibrating
        )
    }
}

/// Why a request was dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// No live PE hosts the request's model.
    Unservable,
    /// Shed by admission control (queue at cap, or the model class is
    /// inside its shed-backoff window).
    Shed,
    /// Exceeded [`ServeConfig::deadline`] while queued.
    Deadline,
    /// Poison payload: failed its checksum on
    /// [`ServeConfig::request_retry_cap`] distinct attempts.
    Poison,
    /// Hit the [`ServeConfig::max_attempts`] safety valve.
    AttemptCap,
}

impl DropReason {
    /// Stable lowercase name (report JSON).
    pub fn as_str(self) -> &'static str {
        match self {
            DropReason::Unservable => "unservable",
            DropReason::Shed => "shed",
            DropReason::Deadline => "deadline",
            DropReason::Poison => "poison",
            DropReason::AttemptCap => "attempt_cap",
        }
    }
}

/// Dropped-request tally by [`DropReason`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DropBreakdown {
    /// No live PE hosted the model.
    pub unservable: usize,
    /// Shed by admission control.
    pub shed: usize,
    /// Deadline exceeded while queued.
    pub deadline: usize,
    /// Poison payload (per-request checksum-retry cap).
    pub poison: usize,
    /// Per-request attempt safety valve.
    pub attempt_cap: usize,
}

impl DropBreakdown {
    fn record(&mut self, reason: DropReason) {
        match reason {
            DropReason::Unservable => self.unservable += 1,
            DropReason::Shed => self.shed += 1,
            DropReason::Deadline => self.deadline += 1,
            DropReason::Poison => self.poison += 1,
            DropReason::AttemptCap => self.attempt_cap += 1,
        }
    }

    /// Total drops across all reasons.
    pub fn total(&self) -> usize {
        self.unservable + self.shed + self.deadline + self.poison + self.attempt_cap
    }
}

/// Failed-job tally by failure mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FailureBreakdown {
    /// Watchdog-aborted jobs (stalls).
    pub watchdog: u64,
    /// Jobs with at least one vector failing the ABFT join checksum.
    pub checksum: u64,
    /// Jobs lost to the sticky `HW_FAULT` latch.
    pub hard_fault: u64,
    /// Jobs the device refused outright (busy/malformed/SPM range).
    pub rejected: u64,
}

impl FailureBreakdown {
    fn record_device(&mut self, bits: u32) {
        use crate::accel::errcode;
        if bits & errcode::WATCHDOG != 0 {
            self.watchdog += 1;
        } else if bits & errcode::HW_FAULT != 0 {
            self.hard_fault += 1;
        } else {
            self.rejected += 1;
        }
    }
}

/// One inference request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Caller-assigned id, echoed on the response.
    pub id: u64,
    /// Model the request targets.
    pub model: usize,
    /// Arrival cycle.
    pub arrival: u64,
    /// Input vector (length = the model's dimension).
    pub x: Vec<f64>,
}

/// One completed inference.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// The request id.
    pub id: u64,
    /// The model served.
    pub model: usize,
    /// Arrival cycle of the request.
    pub arrival: u64,
    /// Completion cycle (join time).
    pub completed: u64,
    /// Times the request had to be re-dispatched after a failure.
    pub retries: u32,
    /// Output vector.
    pub y: Vec<f64>,
}

impl Response {
    /// End-to-end latency in cycles.
    pub fn latency(&self) -> u64 {
        self.completed - self.arrival
    }
}

/// Per-PE lifecycle counters for one serving run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeLifecycle {
    /// Healthy→Ejected transitions.
    pub ejections: u32,
    /// Probation→Healthy readmissions.
    pub readmissions: u32,
    /// Drift-canary misses that scheduled a recalibration.
    pub canary_recals: u32,
    /// Total cycles spent out-of-fleet across completed
    /// ejection→readmission episodes (the time-to-readmission sum).
    pub out_of_fleet_cycles: u64,
    /// Clean jobs joined after the PE's most recent readmission.
    pub jobs_since_readmission: u64,
    /// Health state at the end of the run.
    pub final_health: PeHealth,
}

/// Aggregate statistics of one serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Requests completed.
    pub completed: usize,
    /// Requests dropped (all reasons; see [`ServeReport::drops`]).
    pub dropped: usize,
    /// Cycles from run start to the last join.
    pub total_cycles: u64,
    /// Median end-to-end latency \[cycles\].
    pub p50_latency_cycles: u64,
    /// 99th-percentile end-to-end latency \[cycles\].
    pub p99_latency_cycles: u64,
    /// Worst-case end-to-end latency \[cycles\].
    pub max_latency_cycles: u64,
    /// Sustained simulated throughput \[requests/s\] at [`SERVE_CPU_HZ`].
    pub requests_per_sec: f64,
    /// Jobs dispatched to devices (including failed attempts, excluding
    /// canaries).
    pub jobs_dispatched: u64,
    /// Jobs that failed (device error, watchdog, checksum mismatch).
    pub jobs_failed: u64,
    /// Request re-dispatches caused by failed jobs.
    pub retries: u64,
    /// PEs out-of-fleet (ejected, recovering, on probation or dead) at
    /// the end of the run.
    pub pes_ejected: usize,
    /// PEs permanently dead at the end of the run.
    pub pes_dead: usize,
    /// Clean jobs completed per PE (the shard-router balance picture).
    pub per_pe_jobs: Vec<u64>,
    /// Mean vectors per dispatched job (wavelength occupancy).
    pub mean_batch_fill: f64,
    /// Total fleet energy \[J\] (photonic + electro-optic + programming).
    pub fleet_energy_j: f64,
    /// Dropped-request breakdown by reason.
    pub drops: DropBreakdown,
    /// Failed-job breakdown by failure mode.
    pub failures: FailureBreakdown,
    /// Canary MVMs dispatched (drift probes + probation).
    pub canaries_run: u64,
    /// Per-PE health lifecycle counters.
    pub per_pe: Vec<PeLifecycle>,
}

impl ServeReport {
    /// Renders the report as a stable JSON object (bench payloads).
    pub fn to_json(&self) -> String {
        let per_pe_jobs: Vec<String> = self.per_pe_jobs.iter().map(|j| j.to_string()).collect();
        let per_pe: Vec<String> = self
            .per_pe
            .iter()
            .map(|p| {
                format!(
                    "{{\"ejections\": {}, \"readmissions\": {}, \"canary_recals\": {}, \
                     \"out_of_fleet_cycles\": {}, \"jobs_since_readmission\": {}, \
                     \"final_health\": \"{}\"}}",
                    p.ejections,
                    p.readmissions,
                    p.canary_recals,
                    p.out_of_fleet_cycles,
                    p.jobs_since_readmission,
                    p.final_health.as_str()
                )
            })
            .collect();
        format!(
            "{{\"completed\": {}, \"dropped\": {}, \"total_cycles\": {}, \
             \"p50_latency_cycles\": {}, \"p99_latency_cycles\": {}, \
             \"max_latency_cycles\": {}, \"requests_per_sec\": {:.3}, \
             \"jobs_dispatched\": {}, \"jobs_failed\": {}, \"retries\": {}, \
             \"pes_ejected\": {}, \"pes_dead\": {}, \"mean_batch_fill\": {:.3}, \
             \"canaries_run\": {}, \
             \"drops\": {{\"unservable\": {}, \"shed\": {}, \"deadline\": {}, \
             \"poison\": {}, \"attempt_cap\": {}}}, \
             \"failures\": {{\"watchdog\": {}, \"checksum\": {}, \
             \"hard_fault\": {}, \"rejected\": {}}}, \
             \"per_pe_jobs\": [{}], \"per_pe\": [{}]}}",
            self.completed,
            self.dropped,
            self.total_cycles,
            self.p50_latency_cycles,
            self.p99_latency_cycles,
            self.max_latency_cycles,
            self.requests_per_sec,
            self.jobs_dispatched,
            self.jobs_failed,
            self.retries,
            self.pes_ejected,
            self.pes_dead,
            self.mean_batch_fill,
            self.canaries_run,
            self.drops.unservable,
            self.drops.shed,
            self.drops.deadline,
            self.drops.poison,
            self.drops.attempt_cap,
            self.failures.watchdog,
            self.failures.checksum,
            self.failures.hard_fault,
            self.failures.rejected,
            per_pe_jobs.join(", "),
            per_pe.join(", "),
        )
    }
}

/// The result of [`InferenceServer::run`]: joined responses (sorted by
/// request id) plus the aggregate report.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeOutcome {
    /// Completed responses, sorted by request id.
    pub responses: Vec<Response>,
    /// Ids of dropped requests, sorted.
    pub dropped_ids: Vec<u64>,
    /// Dropped requests with their reasons, sorted by id.
    pub drops: Vec<(u64, DropReason)>,
    /// Aggregate statistics.
    pub report: ServeReport,
}

/// A queued request with its retry bookkeeping.
#[derive(Debug, Clone)]
struct Pending {
    req: Request,
    /// Dispatch attempts (any failure mode).
    attempts: u32,
    /// Checksum failures attributed to this request specifically.
    strikes: u32,
    /// Bitmask of PE slots whose join checksum this request failed on —
    /// the router avoids them on retry.
    failed_on: u64,
}

/// An in-flight job descriptor: the batched requests riding one set of
/// wavelength channels on one PE.
#[derive(Debug, Clone)]
struct Job {
    requests: Vec<Pending>,
}

/// One fleet member and its bus identity.
#[derive(Debug, Clone)]
struct PeState {
    dev: AccelDevice,
    spec: PeSpec,
    /// MMR base on the bus (`ACCEL_BASE + PE_STRIDE * slot`).
    base: u32,
    spm_in: u32,
    spm_out: u32,
    health: PeHealth,
    consecutive_failures: u32,
    job: Option<Job>,
    /// A canary MVM is in flight (drift probe or probation).
    canary: bool,
    /// Drift canary missed: drain, then recalibrate once idle.
    wants_recal: bool,
    /// Next drift-canary due time.
    next_canary: u64,
    /// Canary passes still required to leave probation.
    probation_left: u32,
    /// When the next recovery attempt may start (while `Ejected`).
    recover_at: u64,
    /// Failed recovery rounds in the current ejection episode.
    recovery_round: u32,
    /// Cycle of the current episode's ejection.
    ejected_at: u64,
    jobs_completed: u64,
    /// Stall fault currently applied to the device.
    fault_applied: bool,
    // Lifecycle stats.
    ejections: u32,
    readmissions: u32,
    canary_recals: u32,
    out_of_fleet_cycles: u64,
    jobs_since_readmission: u64,
}

/// Resumable run-loop state: everything [`InferenceServer::step`] needs
/// between events. Owned by the server so a mid-run `Clone` of the
/// server is a complete snapshot.
#[derive(Debug, Clone)]
struct RunState {
    load: Vec<Request>,
    start: u64,
    next_arrival: usize,
    queue: VecDeque<Pending>,
    responses: Vec<Response>,
    drops: Vec<(u64, DropReason)>,
    drop_counts: DropBreakdown,
    failures: FailureBreakdown,
    jobs_dispatched: u64,
    jobs_failed: u64,
    retries: u64,
    vectors_dispatched: u64,
    canaries_run: u64,
    /// Per-model shed window end (admission control backoff).
    shed_until: Vec<u64>,
    /// Per-model consecutive shed rounds (backoff exponent).
    shed_round: Vec<u32>,
    finished: bool,
}

impl RunState {
    fn accounted(&self) -> usize {
        self.responses.len() + self.drops.len()
    }

    fn drop_req(&mut self, id: u64, reason: DropReason) {
        self.drops.push((id, reason));
        self.drop_counts.record(reason);
    }
}

/// The async serving front-end over a heterogeneous accelerator fleet.
#[derive(Debug, Clone)]
pub struct InferenceServer {
    cfg: ServeConfig,
    models: Vec<RMatrix>,
    /// Per-model ABFT plain-checksum row `c = 1ᵀ·W`.
    checksum_rows: Vec<Vec<f64>>,
    /// Per-model canary input (known, fixed-point exact).
    canary_xs: Vec<Vec<f64>>,
    /// Per-model expected canary checksum `Σ c_j·x_j`.
    canary_rhs: Vec<f64>,
    pes: Vec<PeState>,
    /// Per-model "some live PE can serve this" mask, refreshed on every
    /// fleet change. Lets admission reject unservable requests in O(1)
    /// instead of sweeping the whole queue each scheduler pass.
    servable: Vec<bool>,
    /// Set when a PE dies; the next scheduler pass refreshes `servable`
    /// and drains newly-orphaned queued requests.
    fleet_changed: bool,
    spm: Ram,
    now: u64,
    /// In-progress run (between [`InferenceServer::begin`] and
    /// [`InferenceServer::finish`]).
    state: Option<RunState>,
}

impl InferenceServer {
    /// Builds the fleet: one [`AccelDevice`] per spec, programmed with
    /// its model's weights, with a private operand window in the shared
    /// scratchpad.
    ///
    /// # Panics
    ///
    /// Panics if a spec names a missing model, a model matrix is not
    /// square, or the per-PE operand windows overflow the scratchpad.
    pub fn new(models: Vec<RMatrix>, specs: &[PeSpec], cfg: ServeConfig) -> Self {
        assert!(!specs.is_empty(), "serve: fleet must have at least one PE");
        let checksum_rows: Vec<Vec<f64>> = models
            .iter()
            .map(|w| {
                let n = w.rows();
                assert_eq!(w.cols(), n, "serve: model matrix must be square");
                (0..n).map(|j| (0..n).map(|i| w[(i, j)]).sum()).collect()
            })
            .collect();
        // Known canary inputs, quantized exactly like request payloads
        // so the precomputed checksum matches what the device consumes.
        let canary_xs: Vec<Vec<f64>> = models
            .iter()
            .map(|w| {
                (0..w.rows())
                    .map(|j| 0.35 * (0.73 * j as f64 + 0.4).sin())
                    .collect()
            })
            .collect();
        let canary_rhs: Vec<f64> = checksum_rows
            .iter()
            .zip(&canary_xs)
            .map(|(c, x)| {
                c.iter()
                    .zip(x)
                    .map(|(&c, &x)| c * from_fixed(to_fixed(x)))
                    .sum()
            })
            .collect();
        let mut pes = Vec::with_capacity(specs.len());
        let mut cursor = SPM_BASE + 0x100;
        for (slot, spec) in specs.iter().enumerate() {
            let w = models
                .get(spec.model)
                .unwrap_or_else(|| panic!("serve: PE {slot} names missing model {}", spec.model));
            let n = w.rows();
            let mut dev = AccelDevice::new(SERVE_CPU_HZ);
            dev.load_matrix(w);
            dev.wdm_channels = spec.wdm_channels.max(1);
            dev.setup_cycles = spec.setup_cycles;
            if let Some(model) = spec.drift {
                dev.enable_drift(model);
            }
            let window = dev.wdm_channels * (n as u32) * 4;
            let (spm_in, spm_out) = (cursor, cursor + window);
            cursor += 2 * window;
            assert!(
                cursor <= SPM_BASE + SPM_SIZE as u32,
                "serve: PE operand windows overflow the scratchpad"
            );
            pes.push(PeState {
                dev,
                spec: *spec,
                base: ACCEL_BASE + PE_STRIDE * slot as u32,
                spm_in,
                spm_out,
                health: PeHealth::Healthy,
                consecutive_failures: 0,
                job: None,
                canary: false,
                wants_recal: false,
                next_canary: if cfg.canary_period > 0 {
                    cfg.canary_period
                } else {
                    u64::MAX
                },
                probation_left: 0,
                recover_at: 0,
                recovery_round: 0,
                ejected_at: 0,
                jobs_completed: 0,
                fault_applied: false,
                ejections: 0,
                readmissions: 0,
                canary_recals: 0,
                out_of_fleet_cycles: 0,
                jobs_since_readmission: 0,
            });
        }
        let mut servable = vec![false; models.len()];
        for pe in &pes {
            servable[pe.spec.model] = true;
        }
        InferenceServer {
            cfg,
            models,
            checksum_rows,
            canary_xs,
            canary_rhs,
            pes,
            servable,
            fleet_changed: false,
            spm: Ram::new(SPM_BASE, SPM_SIZE),
            now: 0,
            state: None,
        }
    }

    /// Recomputes the per-model servability mask: a model is servable
    /// while any non-dead PE hosts it (ejected PEs count — their queued
    /// requests wait for readmission rather than dropping).
    fn refresh_servable(&mut self) {
        self.servable.iter_mut().for_each(|s| *s = false);
        for pe in &self.pes {
            if pe.health != PeHealth::Dead {
                self.servable[pe.spec.model] = true;
            }
        }
    }

    /// Bitmask of non-dead PE slots hosting `model` (the affinity-reset
    /// horizon for poisoned requests).
    fn live_mask(&self, model: usize) -> u64 {
        self.pes
            .iter()
            .enumerate()
            .filter(|(_, p)| p.spec.model == model && p.health != PeHealth::Dead)
            .fold(0u64, |m, (i, _)| m | (1u64 << (i as u32 & 63)))
    }

    /// Number of PEs currently in-fleet (healthy, suspect or draining
    /// for a drift recalibration).
    pub fn healthy_pes(&self) -> usize {
        self.pes.iter().filter(|p| p.health.in_fleet()).count()
    }

    /// Health state of PE `slot`.
    pub fn pe_health(&self, slot: usize) -> PeHealth {
        self.pes[slot].health
    }

    /// The bus MMR base address of PE `slot`.
    pub fn pe_base(&self, slot: usize) -> u32 {
        self.pes[slot].base
    }

    /// Shared access to PE `slot`'s device (inspection in tests/benches).
    pub fn pe_device(&self, slot: usize) -> &AccelDevice {
        &self.pes[slot].dev
    }

    /// Total fleet energy so far \[J\].
    pub fn fleet_energy(&self) -> f64 {
        self.pes.iter().map(|p| p.dev.energy()).sum()
    }

    /// True between [`InferenceServer::begin`] and the run finishing.
    pub fn is_running(&self) -> bool {
        self.state.as_ref().is_some_and(|st| !st.finished)
    }

    /// Serves `load` to completion (every request joined or dropped) and
    /// returns the joined responses plus the aggregate report.
    pub fn run(&mut self, load: &[Request]) -> ServeOutcome {
        self.begin(load);
        self.finish()
    }

    /// Starts a resumable run over `load`. Drive it with
    /// [`InferenceServer::step`] (one event per call) and collect the
    /// outcome with [`InferenceServer::finish`]. A `Clone` taken between
    /// steps is a snapshot that resumes bit-identically.
    ///
    /// # Panics
    ///
    /// Panics if a run is already in progress.
    pub fn begin(&mut self, load: &[Request]) {
        assert!(
            self.state.is_none(),
            "serve: begin() while a run is in progress"
        );
        let mut load: Vec<Request> = load.to_vec();
        load.sort_by_key(|r| (r.arrival, r.id));
        let models = self.models.len();
        self.state = Some(RunState {
            load,
            start: self.now,
            next_arrival: 0,
            queue: VecDeque::new(),
            responses: Vec::new(),
            drops: Vec::new(),
            drop_counts: DropBreakdown::default(),
            failures: FailureBreakdown::default(),
            jobs_dispatched: 0,
            jobs_failed: 0,
            retries: 0,
            vectors_dispatched: 0,
            canaries_run: 0,
            shed_until: vec![0; models],
            shed_round: vec![0; models],
            finished: false,
        });
    }

    /// Advances the run by one scheduler pass (one event). Returns
    /// `false` once the run has finished (or no run is in progress).
    pub fn step(&mut self) -> bool {
        let Some(mut st) = self.state.take() else {
            return false;
        };
        if !st.finished {
            self.step_inner(&mut st);
        }
        let more = !st.finished;
        self.state = Some(st);
        more
    }

    /// Runs the in-progress run to completion and returns the outcome.
    ///
    /// # Panics
    ///
    /// Panics if [`InferenceServer::begin`] was never called.
    pub fn finish(&mut self) -> ServeOutcome {
        assert!(self.state.is_some(), "serve: finish() without begin()");
        while self.step() {}
        let st = self.state.take().expect("checked above");
        self.build_outcome(st)
    }

    /// One full scheduler pass: faults → admission → join → health
    /// actions → orphan drain → deadlines → route → advance.
    fn step_inner(&mut self, st: &mut RunState) {
        self.apply_faults();
        self.admit(st);
        self.join_done(st);
        self.health_actions(st);
        if self.fleet_changed {
            self.fleet_changed = false;
            self.refresh_servable();
            // Drain newly-orphaned requests and re-normalize affinity
            // masks against the shrunken live set. Gating the O(queue)
            // sweep on fleet changes keeps the steady-state pass
            // O(fleet) even with thousands queued.
            let servable = &self.servable;
            let drops = &mut st.drops;
            let counts = &mut st.drop_counts;
            st.queue.retain(|p| {
                if !servable[p.req.model] {
                    drops.push((p.req.id, DropReason::Unservable));
                    counts.record(DropReason::Unservable);
                }
                servable[p.req.model]
            });
            for m in 0..self.models.len() {
                let live = self.live_mask(m);
                for p in st.queue.iter_mut().filter(|p| p.req.model == m) {
                    if p.failed_on & live == live {
                        p.failed_on = 0;
                    }
                }
            }
        }
        if self.cfg.deadline > 0 {
            let deadline = self.cfg.deadline;
            let now = self.now;
            let drops = &mut st.drops;
            let counts = &mut st.drop_counts;
            st.queue.retain(|p| {
                let expired = now > p.req.arrival + deadline;
                if expired {
                    drops.push((p.req.id, DropReason::Deadline));
                    counts.record(DropReason::Deadline);
                }
                !expired
            });
        }
        self.route(st);
        if st.accounted() >= st.load.len() {
            st.finished = true;
            return;
        }
        self.advance(st);
    }

    /// Applies the scheduled fault condition of every PE at the current
    /// cycle. Persistent faults re-assert themselves (the recovery reset
    /// clears the latch; the condition bricks it again), transient ones
    /// hold only inside their window.
    fn apply_faults(&mut self) {
        let now = self.now;
        for pe in &mut self.pes {
            match pe.spec.fault {
                PeFault::None => {}
                PeFault::HardAt { cycle } => {
                    if now >= cycle && !pe.dev.is_hard_faulted() {
                        pe.dev.inject_hard_fault();
                    }
                }
                PeFault::HardFor { cycle, until } => {
                    if now >= cycle && now < until && !pe.dev.is_hard_faulted() {
                        pe.dev.inject_hard_fault();
                    }
                }
                PeFault::StallAt { cycle } => {
                    if now >= cycle && !pe.fault_applied {
                        pe.dev.setup_cycles = 1 << 40;
                        pe.fault_applied = true;
                    }
                }
                PeFault::StallFor { cycle, until } => {
                    if now >= cycle && now < until && !pe.fault_applied {
                        pe.dev.setup_cycles = 1 << 40;
                        pe.fault_applied = true;
                    }
                    if now >= until && pe.fault_applied {
                        pe.dev.setup_cycles = pe.spec.setup_cycles;
                        pe.fault_applied = false;
                    }
                }
            }
        }
    }

    /// Admission control: enqueue everything that has arrived, shedding
    /// at the queue cap (with per-model-class exponential backoff) and
    /// rejecting unservable models at the door.
    fn admit(&mut self, st: &mut RunState) {
        while st.next_arrival < st.load.len() && st.load[st.next_arrival].arrival <= self.now {
            let req = &st.load[st.next_arrival];
            st.next_arrival += 1;
            let m = req.model;
            if !self.servable[m] {
                st.drop_req(req.id, DropReason::Unservable);
                continue;
            }
            if self.cfg.queue_cap > 0 {
                if self.now < st.shed_until[m] {
                    st.drop_req(req.id, DropReason::Shed);
                    continue;
                }
                if st.queue.len() >= self.cfg.queue_cap {
                    // Shed this class and open its backoff window:
                    // doubles per consecutive shed event, so sustained
                    // overload converges to a predictable admit rate.
                    let round = st.shed_round[m].min(16);
                    st.shed_until[m] = self
                        .now
                        .saturating_add(self.cfg.shed_backoff.max(1) << round);
                    st.shed_round[m] = st.shed_round[m].saturating_add(1);
                    st.drop_req(req.id, DropReason::Shed);
                    continue;
                }
                if st.queue.len() * 2 < self.cfg.queue_cap {
                    st.shed_round[m] = 0;
                }
            }
            st.queue.push_back(Pending {
                req: req.clone(),
                attempts: 0,
                strikes: 0,
                failed_on: 0,
            });
        }
    }

    /// Collects every device whose `done` latch is up: recal
    /// completions, canary joins, and production-job joins.
    fn join_done(&mut self, st: &mut RunState) {
        for i in 0..self.pes.len() {
            if !self.pes[i].dev.is_done() {
                continue;
            }
            match self.pes[i].health {
                PeHealth::Recovering => self.finish_recovery_recal(i),
                PeHealth::Recalibrating => self.finish_drift_recal(i),
                _ if self.pes[i].canary => self.finish_canary(i),
                _ if self.pes[i].job.is_some() => self.finish_job(i, st),
                _ => {
                    // Stray done (e.g. a job aborted after its PE left
                    // the serving states): ack defensively.
                    self.pes[i].dev.mmr_store(mmr::CTRL, 2);
                    self.pes[i].dev.mmr_store(mmr::CTRL, 4);
                }
            }
        }
    }

    /// Drives the health state machine: recovery attempts on ejected
    /// PEs, drift recalibrations on drained PEs, canary dispatch for
    /// probation and drift probing.
    fn health_actions(&mut self, st: &mut RunState) {
        for i in 0..self.pes.len() {
            let pe = &self.pes[i];
            let idle = !pe.dev.is_busy() && pe.job.is_none() && !pe.canary;
            match pe.health {
                PeHealth::Ejected if self.now >= pe.recover_at => self.attempt_recovery(i),
                PeHealth::Healthy | PeHealth::Suspect if idle => {
                    if self.pes[i].wants_recal {
                        let pe = &mut self.pes[i];
                        pe.health = PeHealth::Recalibrating;
                        pe.dev.mmr_store(mmr::CTRL, 4);
                        pe.dev.recalibrate(self.now);
                        if pe.dev.error_bits() != 0 {
                            // Recal refused (e.g. the device bricked
                            // since the canary): treat as a failure.
                            pe.dev.mmr_store(mmr::CTRL, 4);
                            pe.health = PeHealth::Healthy;
                            self.device_strike(i);
                        }
                    } else if self.cfg.canary_period > 0 && self.now >= self.pes[i].next_canary {
                        self.dispatch_canary(i, st);
                    }
                }
                PeHealth::Probation if idle => self.dispatch_canary(i, st),
                _ => {}
            }
        }
    }

    /// Routes queued work: fills idle in-fleet PEs in slot order.
    fn route(&mut self, st: &mut RunState) {
        // Least-loaded-first: a freshly readmitted PE has completed the
        // fewest jobs, so the router naturally rebalances traffic onto
        // it — which is what proves the readmission out. Slot index
        // breaks ties, keeping the order fully deterministic.
        let mut order: Vec<usize> = (0..self.pes.len()).collect();
        order.sort_by_key(|&i| (self.pes[i].jobs_completed, i));
        for i in order {
            let pe = &self.pes[i];
            if !matches!(pe.health, PeHealth::Healthy | PeHealth::Suspect)
                || pe.wants_recal
                || pe.canary
                || pe.job.is_some()
                || pe.dev.is_busy()
            {
                continue;
            }
            let arrivals_done = st.next_arrival >= st.load.len();
            let Some(job) = take_batch(
                &mut st.queue,
                pe.spec.model,
                i,
                pe.dev.wdm_channels as usize,
                self.now,
                self.cfg.batch_window,
                arrivals_done,
            ) else {
                continue;
            };
            st.jobs_dispatched += 1;
            st.vectors_dispatched += job.requests.len() as u64;
            if let Err(job) = self.dispatch(i, job) {
                st.jobs_failed += 1;
                let bits = self.pes[i].dev.error_bits();
                st.failures.record_device(bits);
                self.pes[i].dev.mmr_store(mmr::CTRL, 4);
                self.device_strike(i);
                self.requeue_device_failure(job, st);
            }
        }
    }

    /// Advances simulated time to the next event and ticks every device.
    fn advance(&mut self, st: &mut RunState) {
        let mut next: Option<u64> = None;
        let mut relax = |t: u64| next = Some(next.map_or(t, |cur: u64| cur.min(t)));
        if st.next_arrival < st.load.len() {
            relax(st.load[st.next_arrival].arrival);
        }
        for pe in &self.pes {
            if let Some(t) = pe.dev.next_event() {
                relax(t.max(self.now + 1));
            }
        }
        for (i, pe) in self.pes.iter().enumerate() {
            match pe.health {
                PeHealth::Ejected => relax(pe.recover_at.max(self.now + 1)),
                PeHealth::Healthy | PeHealth::Suspect
                    if !pe.dev.is_busy() && pe.job.is_none() && !pe.canary =>
                {
                    if self.cfg.canary_period > 0 && !pe.wants_recal {
                        relax(pe.next_canary.max(self.now + 1));
                    }
                    // Batch-window expiry on this PE's model class —
                    // mirrors `take_batch`'s eligibility exactly
                    // (model + affinity) so the wake-up is never for a
                    // batch that cannot form.
                    if let Some(oldest) = st
                        .queue
                        .iter()
                        .filter(|p| {
                            p.req.model == pe.spec.model
                                && p.failed_on & (1u64 << (i as u32 & 63)) == 0
                        })
                        .map(|p| p.req.arrival)
                        .min()
                    {
                        relax((oldest + self.cfg.batch_window).max(self.now + 1));
                    }
                }
                _ => {}
            }
        }
        if self.cfg.deadline > 0 {
            for p in &st.queue {
                relax((p.req.arrival + self.cfg.deadline).max(self.now + 1));
            }
        }
        match next {
            Some(t) => {
                debug_assert!(t > self.now, "event loop must make progress");
                self.now = t;
                for pe in &mut self.pes {
                    pe.dev.tick(self.now);
                }
            }
            None => {
                // No event can ever fire again: everything still queued
                // is undeliverable (defensive — the orphan sweep should
                // already have drained it).
                let ids: Vec<u64> = st.queue.drain(..).map(|p| p.req.id).collect();
                for id in ids {
                    st.drop_req(id, DropReason::Unservable);
                }
                if st.accounted() >= st.load.len() {
                    st.finished = true;
                    return;
                }
                unreachable!("serve: no pending event yet requests unaccounted for");
            }
        }
    }

    /// Builds the final outcome from a finished run state.
    fn build_outcome(&self, mut st: RunState) -> ServeOutcome {
        st.responses.sort_by_key(|r| r.id);
        st.drops.sort_by_key(|&(id, _)| id);
        let dropped_ids: Vec<u64> = st.drops.iter().map(|&(id, _)| id).collect();
        let mut latencies: Vec<u64> = st.responses.iter().map(Response::latency).collect();
        latencies.sort_unstable();
        let pct = |p: usize| -> u64 {
            if latencies.is_empty() {
                0
            } else {
                latencies[(latencies.len() - 1) * p / 100]
            }
        };
        let total_cycles = self.now - st.start;
        let report = ServeReport {
            completed: st.responses.len(),
            dropped: st.drops.len(),
            total_cycles,
            p50_latency_cycles: pct(50),
            p99_latency_cycles: pct(99),
            max_latency_cycles: latencies.last().copied().unwrap_or(0),
            requests_per_sec: if total_cycles > 0 {
                st.responses.len() as f64 / (total_cycles as f64 / SERVE_CPU_HZ)
            } else {
                0.0
            },
            jobs_dispatched: st.jobs_dispatched,
            jobs_failed: st.jobs_failed,
            retries: st.retries,
            pes_ejected: self.pes.iter().filter(|p| !p.health.in_fleet()).count(),
            pes_dead: self
                .pes
                .iter()
                .filter(|p| p.health == PeHealth::Dead)
                .count(),
            per_pe_jobs: self.pes.iter().map(|p| p.jobs_completed).collect(),
            mean_batch_fill: if st.jobs_dispatched > 0 {
                st.vectors_dispatched as f64 / st.jobs_dispatched as f64
            } else {
                0.0
            },
            fleet_energy_j: self.fleet_energy(),
            drops: st.drop_counts,
            failures: st.failures,
            canaries_run: st.canaries_run,
            per_pe: self
                .pes
                .iter()
                .map(|p| PeLifecycle {
                    ejections: p.ejections,
                    readmissions: p.readmissions,
                    canary_recals: p.canary_recals,
                    out_of_fleet_cycles: p.out_of_fleet_cycles,
                    jobs_since_readmission: p.jobs_since_readmission,
                    final_health: p.health,
                })
                .collect(),
        };
        ServeOutcome {
            responses: st.responses,
            dropped_ids,
            drops: st.drops,
            report,
        }
    }

    // ---- device protocol -------------------------------------------------

    /// Stages a job's inputs into the PE's SPM window and rings the
    /// doorbell. Returns the job back on immediate rejection (bricked
    /// device, malformed job).
    fn dispatch(&mut self, i: usize, job: Job) -> Result<(), Job> {
        let n = self.models[self.pes[i].spec.model].rows();
        let pe = &mut self.pes[i];
        for (k, p) in job.requests.iter().enumerate() {
            debug_assert_eq!(p.req.x.len(), n, "request length matches its model");
            for (j, &v) in p.req.x.iter().enumerate() {
                self.spm
                    .poke(pe.spm_in + (k * n + j) as u32 * 4, to_fixed(v) as u32)
                    .expect("PE window inside SPM");
            }
        }
        // Same MMR protocol the bus-mapped firmware path uses.
        pe.dev.mmr_store(mmr::CTRL, 4); // clear stale error latch
        pe.dev.mmr_store(mmr::IN_ADDR, pe.spm_in);
        pe.dev.mmr_store(mmr::OUT_ADDR, pe.spm_out);
        pe.dev.mmr_store(mmr::BATCH, job.requests.len() as u32);
        pe.dev.mmr_store(mmr::WATCHDOG, self.cfg.watchdog);
        let doorbell = pe.dev.mmr_store(mmr::CTRL, 1);
        if doorbell && pe.dev.start(self.now, &mut self.spm) {
            pe.job = Some(job);
            Ok(())
        } else {
            Err(job)
        }
    }

    /// Dispatches a watchdog-armed canary MVM — the known input whose
    /// ABFT checksum is precomputed — on PE `i` (drift probe when
    /// in-fleet, half-open probe when on probation).
    fn dispatch_canary(&mut self, i: usize, st: &mut RunState) {
        let model = self.pes[i].spec.model;
        let n = self.models[model].rows();
        let pe = &mut self.pes[i];
        for j in 0..n {
            self.spm
                .poke(
                    pe.spm_in + j as u32 * 4,
                    to_fixed(self.canary_xs[model][j]) as u32,
                )
                .expect("PE window inside SPM");
        }
        pe.dev.mmr_store(mmr::CTRL, 4);
        pe.dev.mmr_store(mmr::IN_ADDR, pe.spm_in);
        pe.dev.mmr_store(mmr::OUT_ADDR, pe.spm_out);
        pe.dev.mmr_store(mmr::BATCH, 1);
        pe.dev.mmr_store(mmr::WATCHDOG, self.cfg.watchdog);
        let doorbell = pe.dev.mmr_store(mmr::CTRL, 1);
        if doorbell && pe.dev.start(self.now, &mut self.spm) {
            pe.canary = true;
            st.canaries_run += 1;
        } else {
            pe.dev.mmr_store(mmr::CTRL, 4);
            if self.pes[i].health == PeHealth::Probation {
                self.recovery_round_failed(i);
            } else {
                self.device_strike(i);
            }
        }
    }

    /// Joins a completed canary: device errors and checksum misses feed
    /// the health state machine, never the request path.
    fn finish_canary(&mut self, i: usize) {
        let model = self.pes[i].spec.model;
        let n = self.models[model].rows();
        let pe = &mut self.pes[i];
        pe.canary = false;
        pe.dev.mmr_store(mmr::CTRL, 2); // ack done
        let bits = pe.dev.error_bits();
        if bits != 0 {
            pe.dev.mmr_store(mmr::CTRL, 4);
            if self.pes[i].health == PeHealth::Probation {
                self.recovery_round_failed(i);
            } else {
                self.device_strike(i);
            }
            return;
        }
        let lhs: f64 = (0..n)
            .map(|j| {
                from_fixed(
                    self.spm
                        .peek(pe.spm_out + j as u32 * 4)
                        .expect("PE window inside SPM") as i32,
                )
            })
            .sum();
        // Tightened tolerance: the canary must miss while production
        // jobs still pass, so recalibration pre-empts job failures.
        let threshold = self.cfg.drift_margin * self.cfg.checksum_tolerance * n as f64;
        let pass = (lhs - self.canary_rhs[model]).abs() <= threshold;
        match self.pes[i].health {
            PeHealth::Probation => {
                if pass {
                    let pe = &mut self.pes[i];
                    pe.probation_left = pe.probation_left.saturating_sub(1);
                    if pe.probation_left == 0 {
                        self.readmit(i);
                    }
                } else {
                    self.recovery_round_failed(i);
                }
            }
            _ => {
                let pe = &mut self.pes[i];
                if pass {
                    pe.consecutive_failures = 0;
                    pe.health = PeHealth::Healthy;
                    pe.next_canary = self.now + self.cfg.canary_period.max(1);
                } else {
                    // Drift approaching the job threshold: drain and
                    // recalibrate before any production job can fail.
                    pe.wants_recal = true;
                    pe.canary_recals += 1;
                }
            }
        }
    }

    /// Joins a completed production job: acknowledges the device, checks
    /// the error latch, reads the outputs back and verifies them
    /// per vector. Good vectors join; bad vectors are re-queued with a
    /// strike against the request (poison attribution), and the PE is
    /// charged only when the *whole* job failed.
    fn finish_job(&mut self, i: usize, st: &mut RunState) {
        let model = self.pes[i].spec.model;
        let n = self.models[model].rows();
        let pe = &mut self.pes[i];
        let job = pe.job.take().expect("finish_job requires an in-flight job");
        pe.dev.mmr_store(mmr::CTRL, 2); // ack done
        let bits = pe.dev.error_bits();
        if bits != 0 {
            pe.dev.mmr_store(mmr::CTRL, 4); // ack the error latch
            st.jobs_failed += 1;
            st.failures.record_device(bits);
            self.device_strike(i);
            self.requeue_device_failure(job, st);
            return;
        }
        let mut bad: Vec<Pending> = Vec::new();
        let mut good = 0usize;
        for (k, p) in job.requests.into_iter().enumerate() {
            let y: Vec<f64> = (0..n)
                .map(|j| {
                    from_fixed(
                        self.spm
                            .peek(pe.spm_out + (k * n + j) as u32 * 4)
                            .expect("PE window inside SPM") as i32,
                    )
                })
                .collect();
            let ok = if self.cfg.verify_outputs {
                // ABFT plain-checksum identity: Σ·(W x) = (1ᵀW)·x.
                let lhs: f64 = y.iter().sum();
                let rhs: f64 = self.checksum_rows[model]
                    .iter()
                    .zip(&p.req.x)
                    .map(|(&c, &x)| c * from_fixed(to_fixed(x)))
                    .sum();
                (lhs - rhs).abs() <= self.cfg.checksum_tolerance * n as f64
            } else {
                true
            };
            if ok {
                good += 1;
                st.responses.push(Response {
                    id: p.req.id,
                    model,
                    arrival: p.req.arrival,
                    completed: self.now,
                    retries: p.attempts,
                    y,
                });
            } else {
                bad.push(p);
            }
        }
        if bad.is_empty() {
            let pe = &mut self.pes[i];
            pe.consecutive_failures = 0;
            if pe.health == PeHealth::Suspect {
                pe.health = PeHealth::Healthy;
            }
            pe.jobs_completed += 1;
            if pe.readmissions > 0 {
                pe.jobs_since_readmission += 1;
            }
            return;
        }
        st.jobs_failed += 1;
        st.failures.checksum += 1;
        if good == 0 {
            // Every vector in the batch was wrong: that points at the
            // device, not the payloads.
            self.device_strike(i);
        }
        let live = self.live_mask(model);
        let bit = 1u64 << (i as u32 & 63);
        for mut p in bad.into_iter().rev() {
            p.attempts += 1;
            p.strikes += 1;
            st.retries += 1;
            if p.strikes >= self.cfg.request_retry_cap.max(1) {
                // A payload that fails everywhere is poison: drop it
                // alone instead of burning the fleet's retry budgets.
                st.drop_req(p.req.id, DropReason::Poison);
            } else {
                p.failed_on |= bit;
                if p.failed_on & live == live {
                    p.failed_on = 0;
                }
                st.queue.push_front(p);
            }
        }
    }

    /// Re-queues every request of a device-level failure (watchdog,
    /// hard fault, reject) at the front — no strikes: the hardware, not
    /// the payload, is suspect.
    fn requeue_device_failure(&mut self, job: Job, st: &mut RunState) {
        for mut p in job.requests.into_iter().rev() {
            p.attempts += 1;
            st.retries += 1;
            if p.attempts >= self.cfg.max_attempts {
                st.drop_req(p.req.id, DropReason::AttemptCap);
            } else {
                st.queue.push_front(p);
            }
        }
    }

    // ---- health state machine --------------------------------------------

    /// Charges one consecutive failure against PE `i`, ejecting it at
    /// the retry budget.
    fn device_strike(&mut self, i: usize) {
        let budget = self.cfg.retry_budget.max(1);
        let pe = &mut self.pes[i];
        pe.consecutive_failures += 1;
        if pe.consecutive_failures >= budget {
            self.eject(i);
        } else if pe.health == PeHealth::Healthy {
            pe.health = PeHealth::Suspect;
        }
    }

    /// Ejects PE `i` out-of-fleet, opening its recovery backoff (or
    /// declaring it dead when recovery is disabled).
    fn eject(&mut self, i: usize) {
        let pe = &mut self.pes[i];
        pe.ejections += 1;
        pe.ejected_at = self.now;
        pe.recovery_round = 0;
        pe.consecutive_failures = 0;
        pe.wants_recal = false;
        if self.cfg.recovery_attempts == 0 {
            pe.health = PeHealth::Dead;
            self.fleet_changed = true;
        } else {
            pe.health = PeHealth::Ejected;
            pe.recover_at = self.now.saturating_add(self.cfg.recovery_backoff.max(1));
        }
    }

    /// Backoff before recovery round `round` \[cycles\].
    fn recovery_backoff_for(&self, round: u32) -> u64 {
        self.cfg
            .recovery_backoff
            .max(1)
            .saturating_mul(1u64 << round.min(16))
    }

    /// One failed recovery round: re-eject with doubled backoff, or
    /// declare the PE dead once the rounds are exhausted. Bounded by
    /// construction: at most [`ServeConfig::recovery_attempts`] rounds
    /// per ejection episode.
    fn recovery_round_failed(&mut self, i: usize) {
        let attempts = self.cfg.recovery_attempts;
        let round = self.pes[i].recovery_round + 1;
        let backoff = self.recovery_backoff_for(round);
        let pe = &mut self.pes[i];
        pe.recovery_round = round;
        if round >= attempts {
            pe.health = PeHealth::Dead;
            self.fleet_changed = true;
        } else {
            pe.health = PeHealth::Ejected;
            pe.recover_at = self.now.saturating_add(backoff);
        }
    }

    /// The deterministic reset-and-recalibrate sequence on an ejected
    /// PE: clear the error latch and the sticky hard-fault state, then
    /// issue a CTRL recalibration. A persistent fault condition
    /// re-asserts itself against the reset (see
    /// [`InferenceServer::apply_faults`]) and aborts the recal, failing
    /// the round.
    fn attempt_recovery(&mut self, i: usize) {
        let pe = &mut self.pes[i];
        pe.dev.mmr_store(mmr::CTRL, 4);
        pe.dev.clear_hard_fault();
        pe.dev.recalibrate(self.now);
        if pe.dev.error_bits() != 0 {
            pe.dev.mmr_store(mmr::CTRL, 4);
            self.recovery_round_failed(i);
        } else {
            pe.health = PeHealth::Recovering;
        }
    }

    /// Completes the recovery recalibration: a clean finish enters
    /// half-open probation; an aborted one (the fault re-asserted)
    /// fails the round.
    fn finish_recovery_recal(&mut self, i: usize) {
        let pe = &mut self.pes[i];
        pe.dev.mmr_store(mmr::CTRL, 2);
        if pe.dev.error_bits() != 0 {
            pe.dev.mmr_store(mmr::CTRL, 4);
            self.recovery_round_failed(i);
        } else {
            pe.health = PeHealth::Probation;
            pe.probation_left = self.cfg.probation_canaries.max(1);
        }
    }

    /// Completes a drift-triggered recalibration: the PE re-enters the
    /// fleet with fresh weights and a fresh canary schedule.
    fn finish_drift_recal(&mut self, i: usize) {
        let pe = &mut self.pes[i];
        pe.dev.mmr_store(mmr::CTRL, 2);
        if pe.dev.error_bits() != 0 {
            pe.dev.mmr_store(mmr::CTRL, 4);
            pe.health = PeHealth::Healthy;
            self.device_strike(i);
            return;
        }
        pe.health = PeHealth::Healthy;
        pe.consecutive_failures = 0;
        pe.wants_recal = false;
        pe.next_canary = self.now + self.cfg.canary_period.max(1);
    }

    /// Readmits PE `i` after a full probation pass: deterministic, and
    /// recorded as a completed ejection→readmission episode.
    fn readmit(&mut self, i: usize) {
        let pe = &mut self.pes[i];
        pe.health = PeHealth::Healthy;
        pe.readmissions += 1;
        pe.out_of_fleet_cycles += self.now - pe.ejected_at;
        pe.recovery_round = 0;
        pe.consecutive_failures = 0;
        pe.next_canary = if self.cfg.canary_period > 0 {
            self.now + self.cfg.canary_period
        } else {
            u64::MAX
        };
    }
}

/// Pulls the next batch for `model` out of the queue: up to `cap`
/// same-model requests in FIFO order, skipping requests whose affinity
/// mask excludes PE `slot` (they failed their checksum there). A batch
/// forms when it is full, when its oldest request has waited
/// `batch_window` cycles, or when no further arrivals can top it up.
fn take_batch(
    queue: &mut VecDeque<Pending>,
    model: usize,
    slot: usize,
    cap: usize,
    now: u64,
    batch_window: u64,
    arrivals_done: bool,
) -> Option<Job> {
    let bit = 1u64 << (slot as u32 & 63);
    let matching: Vec<usize> = queue
        .iter()
        .enumerate()
        .filter(|(_, p)| p.req.model == model && p.failed_on & bit == 0)
        .map(|(k, _)| k)
        .take(cap)
        .collect();
    if matching.is_empty() {
        return None;
    }
    let oldest = queue[matching[0]].req.arrival;
    let ready = matching.len() >= cap || oldest + batch_window <= now || arrivals_done;
    if !ready {
        return None;
    }
    let mut requests = Vec::with_capacity(matching.len());
    for &k in matching.iter().rev() {
        requests.push(queue.remove(k).expect("index valid"));
    }
    requests.reverse();
    Some(Job { requests })
}

/// Specification of a synthetic request load.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadSpec {
    /// Number of requests.
    pub requests: usize,
    /// Mean inter-arrival gap \[cycles\] (uniform in `0..=2*mean`).
    pub mean_interarrival: u64,
    /// RNG seed: the same seed always generates the same load.
    pub seed: u64,
}

/// Generates a deterministic synthetic load over `models`: arrival
/// times from a seeded uniform inter-arrival process, model choice
/// uniform, inputs uniform in `[-0.5, 0.5)`.
pub fn synthetic_load(models: &[RMatrix], spec: LoadSpec) -> Vec<Request> {
    assert!(
        !models.is_empty(),
        "synthetic load needs at least one model"
    );
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut t = 0u64;
    (0..spec.requests as u64)
        .map(|id| {
            t += rng.gen_range(0..=2 * spec.mean_interarrival);
            let model = rng.gen_range(0..models.len());
            let n = models[model].rows();
            Request {
                id,
                model,
                arrival: t,
                x: (0..n).map(|_| rng.gen_range(-0.5..0.5)).collect(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_model(n: usize) -> RMatrix {
        RMatrix::from_fn(n, n, |i, j| {
            0.4 * ((i as f64 - j as f64) * 0.31).sin() + if i == j { 0.3 } else { 0.0 }
        })
    }

    fn homogeneous_fleet(pes: usize, fault: &[(usize, PeFault)]) -> Vec<PeSpec> {
        (0..pes)
            .map(|i| {
                let mut s = PeSpec::new(0);
                if let Some((_, f)) = fault.iter().find(|(k, _)| *k == i) {
                    s.fault = *f;
                }
                s
            })
            .collect()
    }

    fn heavy_load(models: &[RMatrix], requests: usize) -> Vec<Request> {
        synthetic_load(
            models,
            LoadSpec {
                requests,
                mean_interarrival: 2,
                seed: 0x10ad,
            },
        )
    }

    #[test]
    fn responses_match_the_model() {
        let models = vec![test_model(6)];
        let mut srv = InferenceServer::new(
            models.clone(),
            &homogeneous_fleet(2, &[]),
            ServeConfig::default(),
        );
        let load = heavy_load(&models, 40);
        let out = srv.run(&load);
        assert_eq!(out.report.completed, 40);
        assert_eq!(out.report.dropped, 0);
        for resp in &out.responses {
            let req = load.iter().find(|r| r.id == resp.id).unwrap();
            let want = models[0].mul_vec(&req.x);
            for (a, b) in resp.y.iter().zip(&want) {
                assert!((a - b).abs() < 2e-3, "id {}: {a} vs {b}", resp.id);
            }
        }
    }

    #[test]
    fn wavelength_batching_amortizes_setup() {
        let models = vec![test_model(8)];
        let cfg = ServeConfig::default();
        let run = |wdm: u32| {
            let mut spec = PeSpec::new(0);
            spec.wdm_channels = wdm;
            let mut srv = InferenceServer::new(models.clone(), &[spec], cfg);
            srv.run(&heavy_load(&models, 200)).report
        };
        let narrow = run(1);
        let wide = run(8);
        assert_eq!(narrow.completed, 200);
        assert_eq!(wide.completed, 200);
        assert!(
            wide.total_cycles * 3 < narrow.total_cycles,
            "8-wavelength batching must amortize per-job setup: {} vs {}",
            wide.total_cycles,
            narrow.total_cycles
        );
        assert!(wide.mean_batch_fill > 4.0, "{}", wide.mean_batch_fill);
    }

    #[test]
    fn fleet_scales_throughput() {
        let models = vec![test_model(8)];
        // A burst load (everything queued up front) keeps every fleet
        // size fully saturated, so the comparison measures service
        // capacity rather than the arrival rate.
        let load = synthetic_load(
            &models,
            LoadSpec {
                requests: 600,
                mean_interarrival: 0,
                seed: 3,
            },
        );
        let run = |pes: usize| {
            let mut srv = InferenceServer::new(
                models.clone(),
                &homogeneous_fleet(pes, &[]),
                ServeConfig::default(),
            );
            srv.run(&load).report
        };
        let one = run(1);
        let four = run(4);
        assert_eq!(one.dropped + four.dropped, 0);
        assert!(
            four.requests_per_sec >= 2.0 * one.requests_per_sec,
            "4 PEs must at least double sustained throughput: {} -> {}",
            one.requests_per_sec,
            four.requests_per_sec
        );
    }

    #[test]
    fn hard_faulted_pe_degrades_the_fleet_not_the_service() {
        let models = vec![test_model(8)];
        let mut srv = InferenceServer::new(
            models.clone(),
            &homogeneous_fleet(4, &[(1, PeFault::HardAt { cycle: 200 })]),
            ServeConfig::default(),
        );
        let out = srv.run(&heavy_load(&models, 400));
        assert_eq!(out.report.dropped, 0, "no request may be lost");
        assert_eq!(out.report.completed, 400);
        assert_eq!(out.report.pes_ejected, 1, "the bricked PE left the fleet");
        assert_eq!(srv.healthy_pes(), 3);
        assert!(out.report.jobs_failed > 0, "the fault was actually hit");
        assert!(out.report.failures.hard_fault > 0, "classified as HW fault");
        assert!(
            out.responses.iter().any(|r| r.retries > 0),
            "failed jobs were retried on healthy PEs"
        );
    }

    #[test]
    fn stalled_pe_is_ejected_via_watchdog() {
        let models = vec![test_model(8)];
        let mut srv = InferenceServer::new(
            models.clone(),
            &homogeneous_fleet(3, &[(2, PeFault::StallAt { cycle: 0 })]),
            ServeConfig {
                // Fail fast enough that the stalled PE burns through its
                // retry budget well before the load drains.
                watchdog: 64,
                ..ServeConfig::default()
            },
        );
        // Burst load: a deep queue guarantees the stalled PE keeps
        // receiving (and timing out on) jobs until it is ejected.
        let load = synthetic_load(
            &models,
            LoadSpec {
                requests: 400,
                mean_interarrival: 0,
                seed: 0x10ad,
            },
        );
        let out = srv.run(&load);
        assert_eq!(out.report.dropped, 0);
        assert_eq!(out.report.completed, 400);
        assert_eq!(out.report.pes_ejected, 1);
        assert!(out.report.failures.watchdog > 0);
        assert_eq!(
            out.report.per_pe_jobs[2], 0,
            "the stalled PE joined nothing"
        );
    }

    #[test]
    fn whole_fleet_loss_drops_requests_without_hanging() {
        let models = vec![test_model(4)];
        let mut srv = InferenceServer::new(
            models.clone(),
            &homogeneous_fleet(
                2,
                &[
                    (0, PeFault::HardAt { cycle: 0 }),
                    (1, PeFault::HardAt { cycle: 0 }),
                ],
            ),
            ServeConfig {
                // Fast recovery cadence so both PEs exhaust their
                // recovery rounds (persistent fault -> dead) quickly.
                recovery_backoff: 32,
                ..ServeConfig::default()
            },
        );
        let out = srv.run(&heavy_load(&models, 50));
        assert_eq!(out.report.completed, 0);
        assert_eq!(
            out.report.dropped, 50,
            "service failure is reported, not hung"
        );
        assert_eq!(out.report.pes_ejected, 2);
        assert_eq!(out.report.pes_dead, 2, "persistent bricks end up dead");
        assert_eq!(out.report.drops.unservable, 50);
    }

    #[test]
    fn heterogeneous_models_route_correctly() {
        let models = vec![test_model(4), test_model(8)];
        let specs = vec![PeSpec::new(0), PeSpec::new(1), PeSpec::new(1)];
        let mut srv = InferenceServer::new(models.clone(), &specs, ServeConfig::default());
        let load = synthetic_load(
            &models,
            LoadSpec {
                requests: 120,
                mean_interarrival: 4,
                seed: 7,
            },
        );
        let out = srv.run(&load);
        assert_eq!(out.report.completed, 120);
        assert_eq!(out.report.dropped, 0);
        for resp in &out.responses {
            let req = load.iter().find(|r| r.id == resp.id).unwrap();
            assert_eq!(resp.model, req.model);
            let want = models[req.model].mul_vec(&req.x);
            for (a, b) in resp.y.iter().zip(&want) {
                assert!((a - b).abs() < 2e-3);
            }
        }
    }

    #[test]
    fn serving_is_deterministic_across_reruns() {
        let models = vec![test_model(8)];
        let mut reports = Vec::new();
        for _ in 0..2 {
            let mut srv = InferenceServer::new(
                models.clone(),
                &homogeneous_fleet(3, &[(0, PeFault::HardAt { cycle: 500 })]),
                ServeConfig::default(),
            );
            reports.push(srv.run(&heavy_load(&models, 300)));
        }
        assert_eq!(reports[0], reports[1], "serving must be bit-deterministic");
    }

    #[test]
    fn batch_window_bounds_tail_latency_under_light_load() {
        let models = vec![test_model(8)];
        let cfg = ServeConfig {
            batch_window: 32,
            ..ServeConfig::default()
        };
        let mut srv = InferenceServer::new(models.clone(), &[PeSpec::new(0)], cfg);
        // One straggler request: nothing arrives after it to fill the
        // batch, so the window (not a peer) must flush it.
        let load = vec![
            Request {
                id: 0,
                model: 0,
                arrival: 0,
                x: vec![0.1; 8],
            },
            Request {
                id: 1,
                model: 0,
                arrival: 10_000,
                x: vec![0.2; 8],
            },
        ];
        let out = srv.run(&load);
        assert_eq!(out.report.completed, 2);
        // Neither request waits much longer than window + job time.
        assert!(
            out.report.max_latency_cycles < 200,
            "{}",
            out.report.max_latency_cycles
        );
    }

    // ---- self-healing -----------------------------------------------------

    #[test]
    fn transient_brick_is_recovered_and_readmitted() {
        let models = vec![test_model(8)];
        let mut srv = InferenceServer::new(
            models.clone(),
            &homogeneous_fleet(
                2,
                &[(
                    1,
                    PeFault::HardFor {
                        cycle: 100,
                        until: 400,
                    },
                )],
            ),
            ServeConfig {
                recovery_backoff: 64,
                ..ServeConfig::default()
            },
        );
        let load = synthetic_load(
            &models,
            LoadSpec {
                requests: 600,
                mean_interarrival: 3,
                seed: 0xbeef,
            },
        );
        let out = srv.run(&load);
        assert_eq!(out.report.dropped, 0, "no request may be lost");
        assert_eq!(out.report.completed, 600);
        let pe1 = &out.report.per_pe[1];
        assert!(pe1.ejections >= 1, "the transient brick ejected PE 1");
        assert!(pe1.readmissions >= 1, "PE 1 was readmitted: {pe1:?}");
        assert_eq!(pe1.final_health, PeHealth::Healthy);
        assert!(
            pe1.jobs_since_readmission > 0,
            "PE 1 served jobs again after readmission"
        );
        assert!(pe1.out_of_fleet_cycles > 0, "time-to-readmission recorded");
        assert_eq!(srv.pe_health(1), PeHealth::Healthy);
        assert_eq!(srv.healthy_pes(), 2);
    }

    #[test]
    fn transient_stall_is_recovered_and_readmitted() {
        let models = vec![test_model(8)];
        let mut srv = InferenceServer::new(
            models.clone(),
            &homogeneous_fleet(
                2,
                &[(
                    0,
                    PeFault::StallFor {
                        cycle: 50,
                        until: 500,
                    },
                )],
            ),
            ServeConfig {
                watchdog: 64,
                recovery_backoff: 64,
                ..ServeConfig::default()
            },
        );
        let load = synthetic_load(
            &models,
            LoadSpec {
                requests: 600,
                mean_interarrival: 3,
                seed: 0x57a1,
            },
        );
        let out = srv.run(&load);
        assert_eq!(out.report.dropped, 0);
        assert_eq!(out.report.completed, 600);
        let pe0 = &out.report.per_pe[0];
        assert!(pe0.ejections >= 1 && pe0.readmissions >= 1, "{pe0:?}");
        assert_eq!(pe0.final_health, PeHealth::Healthy);
        assert!(pe0.jobs_since_readmission > 0);
    }

    #[test]
    fn permanent_brick_exhausts_recovery_and_dies() {
        let models = vec![test_model(8)];
        let mut srv = InferenceServer::new(
            models.clone(),
            &homogeneous_fleet(2, &[(1, PeFault::HardAt { cycle: 100 })]),
            ServeConfig {
                recovery_backoff: 16,
                recovery_attempts: 3,
                ..ServeConfig::default()
            },
        );
        let load = synthetic_load(
            &models,
            LoadSpec {
                requests: 800,
                mean_interarrival: 3,
                seed: 0xdead,
            },
        );
        let out = srv.run(&load);
        assert_eq!(out.report.dropped, 0);
        let pe1 = &out.report.per_pe[1];
        assert_eq!(
            pe1.final_health,
            PeHealth::Dead,
            "sticky HW_FAULT stays dead: {pe1:?}"
        );
        assert_eq!(pe1.readmissions, 0);
        assert_eq!(out.report.pes_dead, 1);
    }

    #[test]
    fn poison_request_is_dropped_alone_with_distinct_reason() {
        let models = vec![test_model(8)];
        let mut load = heavy_load(&models, 120);
        // One poison payload: saturates the fixed-point output range, so
        // its ABFT checksum fails on every PE it touches.
        load[60].x = vec![30000.0; 8];
        let poison_id = load[60].id;
        let mut srv = InferenceServer::new(
            models.clone(),
            &homogeneous_fleet(3, &[]),
            ServeConfig::default(),
        );
        let out = srv.run(&load);
        assert_eq!(out.report.completed, 119, "only the poison request drops");
        assert_eq!(out.report.dropped, 1);
        assert_eq!(out.report.drops.poison, 1);
        assert_eq!(out.drops, vec![(poison_id, DropReason::Poison)]);
        assert_eq!(
            out.report.pes_ejected, 0,
            "a bad payload must not eject healthy hardware"
        );
        assert_eq!(srv.healthy_pes(), 3);
    }

    #[test]
    fn drift_canary_recalibrates_before_any_job_fails() {
        let models = vec![test_model(8)];
        let drift = PcmDriftModel {
            nu: 0.05,
            seconds_per_cycle: 1e-3,
            initial_age_s: 1e-3,
            ..PcmDriftModel::default()
        };
        let mut specs = homogeneous_fleet(2, &[]);
        for s in &mut specs {
            s.drift = Some(drift);
        }
        let mut srv = InferenceServer::new(
            models.clone(),
            &specs,
            ServeConfig {
                canary_period: 400,
                ..ServeConfig::default()
            },
        );
        let load = synthetic_load(
            &models,
            LoadSpec {
                requests: 2000,
                mean_interarrival: 4,
                seed: 0xd21f7,
            },
        );
        let out = srv.run(&load);
        assert_eq!(out.report.completed, 2000);
        assert_eq!(out.report.dropped, 0);
        let recals: u32 = out.report.per_pe.iter().map(|p| p.canary_recals).sum();
        assert!(recals > 0, "drift must trip at least one canary recal");
        assert_eq!(
            out.report.failures.checksum, 0,
            "canaries must recalibrate before any production job fails"
        );
        assert_eq!(out.report.pes_ejected, 0, "drift is handled in-fleet");
        assert!(srv.pe_device(0).recal_count() > 0);
    }

    #[test]
    fn overload_sheds_with_backoff_and_recovers() {
        let models = vec![test_model(8)];
        // Saturating burst: everything at once against one PE with a
        // tight queue — admission must shed rather than queue unboundedly.
        let load = synthetic_load(
            &models,
            LoadSpec {
                requests: 2000,
                mean_interarrival: 0,
                seed: 5,
            },
        );
        let mut srv = InferenceServer::new(
            models.clone(),
            &[PeSpec::new(0)],
            ServeConfig {
                queue_cap: 64,
                shed_backoff: 128,
                ..ServeConfig::default()
            },
        );
        let out = srv.run(&load);
        assert!(out.report.drops.shed > 0, "overload must shed");
        assert_eq!(
            out.report.completed + out.report.dropped,
            2000,
            "every request is accounted for"
        );
        assert_eq!(
            out.report.dropped, out.report.drops.shed,
            "overload drops are shed drops, nothing else"
        );
        assert!(
            out.report.completed >= 64,
            "admitted work completes: {}",
            out.report.completed
        );
    }

    #[test]
    fn deadline_shedding_drops_stale_requests() {
        let models = vec![test_model(8)];
        let load = synthetic_load(
            &models,
            LoadSpec {
                requests: 400,
                mean_interarrival: 0,
                seed: 9,
            },
        );
        let mut srv = InferenceServer::new(
            models.clone(),
            &[PeSpec::new(0)],
            ServeConfig {
                deadline: 60,
                ..ServeConfig::default()
            },
        );
        let out = srv.run(&load);
        assert!(out.report.drops.deadline > 0, "stale requests dropped");
        assert_eq!(out.report.completed + out.report.dropped, 400);
        // Served requests respected the deadline at dispatch time; a
        // request picked up just inside it still finishes its job.
        let slack = 60 + srv.pe_device(0).job_cycles(8);
        assert!(
            out.report.max_latency_cycles <= slack,
            "{} > {slack}",
            out.report.max_latency_cycles
        );
    }

    #[test]
    fn stepping_matches_run_and_clones_resume_identically() {
        let models = vec![test_model(8)];
        let specs = homogeneous_fleet(
            3,
            &[(
                1,
                PeFault::HardFor {
                    cycle: 100,
                    until: 300,
                },
            )],
        );
        let cfg = ServeConfig {
            recovery_backoff: 64,
            canary_period: 200,
            ..ServeConfig::default()
        };
        let load = heavy_load(&models, 200);
        let mut whole = InferenceServer::new(models.clone(), &specs, cfg);
        let reference = whole.run(&load);

        let mut stepped = InferenceServer::new(models.clone(), &specs, cfg);
        stepped.begin(&load);
        let mut cloned: Option<InferenceServer> = None;
        let mut steps = 0u64;
        loop {
            if steps == 37 {
                cloned = Some(stepped.clone());
            }
            if !stepped.step() {
                break;
            }
            steps += 1;
        }
        assert_eq!(stepped.finish(), reference, "stepped == run");
        let mut resumed = cloned.expect("run had at least 37 steps");
        assert_eq!(
            resumed.finish(),
            reference,
            "a mid-run clone resumes bit-identically"
        );
    }
}

//! The checkpointed, parallel, statistical fault-injection campaign
//! engine — the scale-up layer over [`crate::fault`].
//!
//! Three mechanisms, composable and individually testable:
//!
//! 1. **Checkpointed replay** ([`Campaign::golden_checkpointed`],
//!    [`Campaign::inject_from`]): the golden run records
//!    [`SystemSnapshot`]s at a configurable cadence; each injection
//!    resumes from the last checkpoint at or before `fault.cycle`
//!    instead of re-simulating the warm-up prefix. Because the simulator
//!    is deterministic and snapshots capture complete state (device RNG
//!    included), a resumed run is bit-identical to a from-zero replay —
//!    enforced by construction: both paths share
//!    [`Campaign::finish_with_fault`] after the injection point.
//! 2. **Deterministic parallelism** ([`Campaign::run_checkpointed`],
//!    [`Campaign::run_stratified`]): injections fan out over the scoped
//!    worker threads of [`neuropulsim_linalg::parallel`], split by fault
//!    index with per-index seeds from [`split_seed`], so campaign
//!    outcomes are a pure function of the seed — never of
//!    `NEUROPULSIM_THREADS`.
//! 3. **Statistics** ([`wilson_interval`], stratified sampling, early
//!    stop): faults are drawn round-robin over named [`Stratum`] groups
//!    of hardware structures, outcome rates carry Wilson 95% confidence
//!    intervals, and a campaign can stop early once the vulnerability
//!    interval is narrower than a target width.
//!
//! The result is a [`CampaignReport`] with per-stratum breakdowns and a
//! hand-rolled JSON serialization for downstream tooling (see
//! `fault_bench` in the bench crate).

use crate::checkpoint::SystemSnapshot;
use crate::fault::{
    Campaign, CampaignStats, Fault, FaultKind, FaultOutcome, FaultTarget, DEFAULT_PERMANENT_PERIOD,
};
use crate::system::RunOutcome;
use neuropulsim_linalg::parallel::{available_threads, par_map_indexed, split_seed};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The golden (fault-free) execution with its checkpoint trail.
#[derive(Debug, Clone)]
pub struct GoldenRun {
    /// Result signature of the fault-free run (SDC reference).
    pub signature: Vec<u32>,
    /// Cycle count of the fault-free run.
    pub cycles: u64,
    /// Requested checkpoint cadence \[cycles\].
    pub cadence: u64,
    checkpoints: Vec<SystemSnapshot>,
}

impl GoldenRun {
    /// Number of checkpoints recorded (including the cycle-0 one).
    pub fn checkpoint_count(&self) -> usize {
        self.checkpoints.len()
    }

    /// Approximate total heap footprint of the checkpoint trail \[bytes\].
    pub fn checkpoint_bytes(&self) -> usize {
        self.checkpoints.iter().map(|c| c.approx_bytes()).sum()
    }

    /// The last checkpoint at or before `cycle` (the cycle-0 snapshot
    /// guarantees one always exists).
    fn checkpoint_before(&self, cycle: u64) -> &SystemSnapshot {
        self.checkpoints
            .iter()
            .rev()
            .find(|c| c.cycle <= cycle)
            .expect("cycle-0 checkpoint always present")
    }
}

/// One injection's classified outcome plus its replay accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Injection {
    /// Classified outcome.
    pub outcome: FaultOutcome,
    /// Cycles actually simulated for this injection.
    pub cycles_simulated: u64,
    /// Warm-up cycles skipped by resuming from a checkpoint.
    pub cycles_saved: u64,
}

/// Knobs of a checkpointed campaign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CampaignConfig {
    /// Checkpoint cadence along the golden run \[cycles\].
    pub cadence: u64,
    /// Worker threads; 0 = [`available_threads`] (honours
    /// `NEUROPULSIM_THREADS`). Outcomes never depend on this.
    pub threads: usize,
    /// Injection budget for statistical campaigns.
    pub injections: usize,
    /// Injections dispatched per parallel batch between early-stop
    /// checks.
    pub batch: usize,
    /// Stop early once the Wilson 95% interval on the vulnerability is
    /// narrower than this (`None` = always run the full budget).
    pub target_ci_width: Option<f64>,
    /// Minimum injections before early stop may trigger.
    pub min_injections: usize,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            cadence: 4096,
            threads: 0,
            injections: 500,
            batch: 64,
            target_ci_width: None,
            min_injections: 64,
        }
    }
}

/// A named group of hardware structures sampled together (per-structure
/// reporting and balanced coverage).
#[derive(Debug, Clone)]
pub struct Stratum {
    /// Human-readable name (appears in the JSON report).
    pub name: String,
    /// Fault targets in this stratum.
    pub targets: Vec<FaultTarget>,
}

impl Stratum {
    /// Convenience constructor.
    pub fn new(name: &str, targets: Vec<FaultTarget>) -> Self {
        Stratum {
            name: name.to_string(),
            targets,
        }
    }
}

/// Deterministically draws fault `index` of a stratified campaign:
/// strata are visited round-robin (`index % strata.len()`) and all
/// random choices come from an RNG seeded with
/// [`split_seed`]`(seed, index)`, so the fault list is a pure function
/// of `(seed, index)` — independent of thread count and batch size.
///
/// # Panics
///
/// Panics if `strata` is empty or any stratum has no targets.
pub fn stratified_fault(
    seed: u64,
    index: usize,
    kind: FaultKind,
    max_cycle: u64,
    strata: &[Stratum],
) -> (usize, Fault) {
    assert!(!strata.is_empty(), "need at least one stratum");
    let stratum = index % strata.len();
    let targets = &strata[stratum].targets;
    assert!(
        !targets.is_empty(),
        "stratum {:?} has no targets",
        strata[stratum].name
    );
    let mut rng = StdRng::seed_from_u64(split_seed(seed, index as u64));
    let fault = Fault {
        target: targets[rng.gen_range(0..targets.len())],
        bit: rng.gen_range(0..32),
        cycle: rng.gen_range(0..max_cycle.max(1)),
        kind,
        period: DEFAULT_PERMANENT_PERIOD,
    };
    (stratum, fault)
}

/// Wilson score 95%-style confidence interval for `k` successes out of
/// `n` trials at critical value `z` (use `z = 1.96` for 95%). Returns
/// `(0, 1)` when `n == 0`.
pub fn wilson_interval(k: usize, n: usize, z: f64) -> (f64, f64) {
    if n == 0 {
        return (0.0, 1.0);
    }
    let n_f = n as f64;
    let p = k as f64 / n_f;
    let z2 = z * z;
    let denom = 1.0 + z2 / n_f;
    let centre = p + z2 / (2.0 * n_f);
    let spread = z * (p * (1.0 - p) / n_f + z2 / (4.0 * n_f * n_f)).sqrt();
    (
        ((centre - spread) / denom).max(0.0),
        ((centre + spread) / denom).min(1.0),
    )
}

/// Critical value of the 95% interval.
pub const Z_95: f64 = 1.96;

/// Full results of a stratified, checkpointed campaign.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Workload label (appears in the JSON report).
    pub workload: String,
    /// Fault persistence model injected.
    pub kind: FaultKind,
    /// Base seed of the deterministic fault stream.
    pub seed: u64,
    /// Injection budget requested.
    pub requested_injections: usize,
    /// Injections actually performed (`< requested` iff early-stopped).
    pub injections: usize,
    /// `true` if the confidence-interval early stop triggered.
    pub early_stopped: bool,
    /// Worker threads used (informational; results never depend on it).
    pub threads: usize,
    /// Checkpoint cadence \[cycles\].
    pub cadence: u64,
    /// Checkpoints recorded along the golden run.
    pub checkpoints: usize,
    /// Approximate resident size of the checkpoint trail \[bytes\].
    pub checkpoint_bytes: usize,
    /// Cycle count of the golden run.
    pub golden_cycles: u64,
    /// Total cycles simulated across all injections.
    pub cycles_simulated: u64,
    /// Total warm-up cycles skipped thanks to checkpoints.
    pub cycles_saved: u64,
    /// Aggregate outcome tallies.
    pub stats: CampaignStats,
    /// Per-stratum tallies, in stratum order.
    pub strata: Vec<(String, CampaignStats)>,
}

impl CampaignReport {
    /// Fraction of replay work skipped:
    /// `saved / (saved + simulated)`.
    pub fn savings_ratio(&self) -> f64 {
        let total = self.cycles_saved + self.cycles_simulated;
        if total == 0 {
            0.0
        } else {
            self.cycles_saved as f64 / total as f64
        }
    }

    /// Wilson 95% interval on the vulnerability (the fraction of
    /// injections with an architecturally visible failure — everything
    /// except masked and detected-recovered outcomes).
    pub fn vulnerability_ci(&self) -> (f64, f64) {
        let n = self.stats.total();
        wilson_interval(
            n - self.stats.masked - self.stats.detected_recovered,
            n,
            Z_95,
        )
    }

    /// Serializes the report as a JSON object (hand-rolled; the
    /// workspace carries no serialization dependency).
    pub fn to_json(&self) -> String {
        let n = self.stats.total();
        let rate = |k: usize| -> String {
            let (lo, hi) = wilson_interval(k, n, Z_95);
            let p = if n == 0 { 0.0 } else { k as f64 / n as f64 };
            format!("{{\"rate\": {p:.6}, \"ci95\": [{lo:.6}, {hi:.6}]}}")
        };
        let strata: Vec<String> = self
            .strata
            .iter()
            .map(|(name, s)| {
                format!(
                    "{{\"name\": \"{}\", \"injections\": {}, \"masked\": {}, \"sdc\": {}, \
                     \"crashes\": {}, \"hangs\": {}, \"detected_recovered\": {}, \
                     \"detected_uncorrected\": {}, \"vulnerability\": {:.6}}}",
                    name,
                    s.total(),
                    s.masked,
                    s.sdc,
                    s.crashes,
                    s.hangs,
                    s.detected_recovered,
                    s.detected_uncorrected,
                    s.vulnerability()
                )
            })
            .collect();
        format!(
            "{{\n  \"workload\": \"{workload}\",\n  \"fault_kind\": \"{kind}\",\n  \
             \"seed\": {seed},\n  \"requested_injections\": {req},\n  \
             \"injections\": {inj},\n  \"early_stopped\": {early},\n  \
             \"threads\": {threads},\n  \"checkpoint_cadence\": {cadence},\n  \
             \"checkpoints\": {cps},\n  \"checkpoint_bytes\": {cpb},\n  \
             \"golden_cycles\": {gc},\n  \"cycles_simulated\": {sim},\n  \
             \"cycles_saved\": {saved},\n  \"replay_savings\": {ratio:.6},\n  \
             \"outcomes\": {{\"masked\": {m}, \"sdc\": {s}, \"crashes\": {c}, \"hangs\": {h}, \
             \"detected_recovered\": {dr}, \"detected_uncorrected\": {du}}},\n  \
             \"rates\": {{\"masked\": {rm}, \"sdc\": {rs}, \"crash\": {rc}, \"hang\": {rh}, \
             \"detected_recovered\": {rdr}, \"detected_uncorrected\": {rdu}, \
             \"vulnerability\": {rv}}},\n  \"strata\": [{strata}]\n}}",
            workload = self.workload,
            kind = match self.kind {
                FaultKind::Transient => "transient",
                FaultKind::Permanent => "permanent",
            },
            seed = self.seed,
            req = self.requested_injections,
            inj = self.injections,
            early = self.early_stopped,
            threads = self.threads,
            cadence = self.cadence,
            cps = self.checkpoints,
            cpb = self.checkpoint_bytes,
            gc = self.golden_cycles,
            sim = self.cycles_simulated,
            saved = self.cycles_saved,
            ratio = self.savings_ratio(),
            m = self.stats.masked,
            s = self.stats.sdc,
            c = self.stats.crashes,
            h = self.stats.hangs,
            dr = self.stats.detected_recovered,
            du = self.stats.detected_uncorrected,
            rm = rate(self.stats.masked),
            rs = rate(self.stats.sdc),
            rc = rate(self.stats.crashes),
            rh = rate(self.stats.hangs),
            rdr = rate(self.stats.detected_recovered),
            rdu = rate(self.stats.detected_uncorrected),
            rv = rate(n - self.stats.masked - self.stats.detected_recovered),
            strata = strata.join(", "),
        )
    }
}

impl Campaign<'_> {
    /// Runs the golden execution, snapshotting the full system every
    /// `cadence` cycles (plus one snapshot at cycle 0), and returns the
    /// checkpoint trail together with the result signature.
    ///
    /// # Panics
    ///
    /// Panics if the golden run does not halt cleanly within the cycle
    /// budget — the workload must be correct before faults are injected.
    pub fn golden_checkpointed(&self, cadence: u64) -> GoldenRun {
        let cadence = cadence.max(1);
        let mut sys = (self.setup)();
        let mut checkpoints = vec![sys.snapshot()];
        let mut outcome = RunOutcome::TimedOut;
        while sys.cpu.cycles < self.max_cycles {
            let chunk = cadence.min(self.max_cycles - sys.cpu.cycles);
            match sys.run(chunk).outcome {
                RunOutcome::TimedOut => checkpoints.push(sys.snapshot()),
                other => {
                    outcome = other;
                    break;
                }
            }
        }
        assert!(
            matches!(outcome, RunOutcome::Halted(_)),
            "golden run must halt, got {outcome:?}"
        );
        if let Some(guard) = &self.guard {
            let rec = guard(&sys);
            assert!(
                !rec.detected(),
                "golden run must be guard-clean, got {rec:?}"
            );
        }
        GoldenRun {
            signature: (self.readout)(&sys),
            cycles: sys.cpu.cycles,
            cadence,
            checkpoints,
        }
    }

    /// Injects one fault, resuming from the last golden checkpoint at or
    /// before the injection cycle. Bit-identical in outcome to
    /// [`Campaign::inject`] from cycle 0: the simulator is deterministic,
    /// snapshots capture complete state, and both paths run
    /// [`Campaign::finish_with_fault`] once the injection point is
    /// reached.
    pub fn inject_from(&self, golden: &GoldenRun, fault: Fault) -> Injection {
        let target = fault.cycle.min(self.max_cycles);
        let cp = golden.checkpoint_before(target);
        let mut sys = cp.to_system();
        let pre = target - cp.cycle;
        let outcome = match sys.run_cycles_bounded(pre, pre) {
            // Finished before the fault hit: it can only be masked.
            Some(outcome) => self.classify(&sys, outcome, &golden.signature),
            None => self.finish_with_fault(&mut sys, fault, &golden.signature),
        };
        Injection {
            outcome,
            cycles_simulated: sys.cpu.cycles - cp.cycle,
            cycles_saved: cp.cycle,
        }
    }

    /// Runs an explicit fault list through the checkpointed engine on
    /// scoped worker threads. Returns per-fault injections (in fault
    /// order) and aggregate statistics; results are identical for any
    /// thread count.
    pub fn run_checkpointed(
        &self,
        faults: &[Fault],
        cfg: &CampaignConfig,
    ) -> (GoldenRun, Vec<Injection>, CampaignStats) {
        let golden = self.golden_checkpointed(cfg.cadence);
        let threads = if cfg.threads == 0 {
            available_threads()
        } else {
            cfg.threads
        };
        let injections = par_map_indexed(faults.len(), threads, |i| {
            self.inject_from(&golden, faults[i])
        });
        let mut stats = CampaignStats::default();
        for inj in &injections {
            stats.record(inj.outcome);
        }
        (golden, injections, stats)
    }

    /// Runs a statistical campaign: faults are drawn by
    /// [`stratified_fault`] over the golden run's live cycle window,
    /// dispatched in parallel batches, with an optional early stop once
    /// the Wilson interval on the vulnerability is narrower than
    /// `cfg.target_ci_width`. Deterministic for a given
    /// `(seed, cfg.injections, cfg.batch)` regardless of thread count.
    pub fn run_stratified(
        &self,
        workload: &str,
        seed: u64,
        kind: FaultKind,
        strata: &[Stratum],
        cfg: &CampaignConfig,
    ) -> CampaignReport {
        let golden = self.golden_checkpointed(cfg.cadence);
        let threads = if cfg.threads == 0 {
            available_threads()
        } else {
            cfg.threads
        };
        let mut stats = CampaignStats::default();
        let mut per_stratum = vec![CampaignStats::default(); strata.len()];
        let mut cycles_simulated = 0u64;
        let mut cycles_saved = 0u64;
        let mut done = 0usize;
        let mut early_stopped = false;
        while done < cfg.injections {
            let batch = cfg.batch.max(1).min(cfg.injections - done);
            let results = par_map_indexed(batch, threads, |i| {
                let (stratum, fault) =
                    stratified_fault(seed, done + i, kind, golden.cycles, strata);
                (stratum, self.inject_from(&golden, fault))
            });
            for (stratum, inj) in results {
                stats.record(inj.outcome);
                per_stratum[stratum].record(inj.outcome);
                cycles_simulated += inj.cycles_simulated;
                cycles_saved += inj.cycles_saved;
            }
            done += batch;
            if let Some(width) = cfg.target_ci_width {
                if done >= cfg.min_injections {
                    let benign = stats.masked + stats.detected_recovered;
                    let (lo, hi) = wilson_interval(stats.total() - benign, stats.total(), Z_95);
                    if hi - lo <= width {
                        early_stopped = true;
                        break;
                    }
                }
            }
        }
        CampaignReport {
            workload: workload.to_string(),
            kind,
            seed,
            requested_injections: cfg.injections,
            injections: done,
            early_stopped,
            threads,
            cadence: golden.cadence,
            checkpoints: golden.checkpoint_count(),
            checkpoint_bytes: golden.checkpoint_bytes(),
            golden_cycles: golden.cycles,
            cycles_simulated,
            cycles_saved,
            stats,
            strata: strata
                .iter()
                .zip(per_stratum)
                .map(|(s, st)| (s.name.clone(), st))
                .collect(),
        }
    }
}

/// Side-by-side results of an unguarded baseline campaign and its
/// ABFT-guarded counterpart over the same fault model — the measured
/// half of the runtime-fault-tolerance story (detection coverage,
/// recovery rate, and the cycle overhead paid for them).
#[derive(Debug, Clone)]
pub struct GuardComparison {
    /// The unguarded campaign report.
    pub baseline: CampaignReport,
    /// The guarded campaign report (same fault strata, guarded firmware).
    pub guarded: CampaignReport,
}

impl GuardComparison {
    /// Guarded detections (recovered + uncorrected) out of all
    /// would-be-silent corruptions (detections + surviving SDC), with a
    /// Wilson 95% interval. Returns rate 0 on an empty denominator.
    pub fn detection_coverage(&self) -> (f64, (f64, f64)) {
        let s = &self.guarded.stats;
        let detected = s.detected_recovered + s.detected_uncorrected;
        let denom = detected + s.sdc;
        let rate = if denom == 0 {
            0.0
        } else {
            detected as f64 / denom as f64
        };
        (rate, wilson_interval(detected, denom, Z_95))
    }

    /// Fraction of detected faults that were fully recovered, with a
    /// Wilson 95% interval. Returns rate 0 on an empty denominator.
    pub fn recovery_rate(&self) -> (f64, (f64, f64)) {
        let s = &self.guarded.stats;
        let detected = s.detected_recovered + s.detected_uncorrected;
        let rate = if detected == 0 {
            0.0
        } else {
            s.detected_recovered as f64 / detected as f64
        };
        (rate, wilson_interval(s.detected_recovered, detected, Z_95))
    }

    /// Fault-free cycle cost of the guard protocol: guarded golden
    /// cycles over baseline golden cycles.
    pub fn cycle_overhead(&self) -> f64 {
        if self.baseline.golden_cycles == 0 {
            0.0
        } else {
            self.guarded.golden_cycles as f64 / self.baseline.golden_cycles as f64
        }
    }

    /// Guarded detections relative to the baseline SDC count — how much
    /// of the silent-corruption population the guard reclassified into
    /// detected outcomes. Can exceed 1 (the guard also catches faults
    /// the baseline masked or hung on).
    pub fn reclassified_ratio(&self) -> f64 {
        let s = &self.guarded.stats;
        let detected = s.detected_recovered + s.detected_uncorrected;
        if self.baseline.stats.sdc == 0 {
            0.0
        } else {
            detected as f64 / self.baseline.stats.sdc as f64
        }
    }

    /// Silent-corruption rates `(baseline, guarded)`.
    pub fn sdc_rates(&self) -> (f64, f64) {
        let rate = |r: &CampaignReport| {
            let n = r.stats.total();
            if n == 0 {
                0.0
            } else {
                r.stats.sdc as f64 / n as f64
            }
        };
        (rate(&self.baseline), rate(&self.guarded))
    }

    /// Serializes the comparison as one JSON object embedding both full
    /// campaign reports (hand-rolled; no serialization dependency).
    pub fn to_json(&self) -> String {
        let (cov, (cov_lo, cov_hi)) = self.detection_coverage();
        let (rec, (rec_lo, rec_hi)) = self.recovery_rate();
        let (sdc_base, sdc_guard) = self.sdc_rates();
        format!(
            "{{\n  \"detection_coverage\": {{\"rate\": {cov:.6}, \
             \"ci95\": [{cov_lo:.6}, {cov_hi:.6}]}},\n  \
             \"recovery_rate\": {{\"rate\": {rec:.6}, \
             \"ci95\": [{rec_lo:.6}, {rec_hi:.6}]}},\n  \
             \"cycle_overhead\": {overhead:.6},\n  \
             \"reclassified_ratio\": {reclass:.6},\n  \
             \"sdc_rate_baseline\": {sdc_base:.6},\n  \
             \"sdc_rate_guarded\": {sdc_guard:.6},\n  \
             \"baseline\": {base},\n  \"guarded\": {guard}\n}}",
            overhead = self.cycle_overhead(),
            reclass = self.reclassified_ratio(),
            base = self.baseline.to_json(),
            guard = self.guarded.to_json(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::firmware::{software_mvm, DramLayout};
    use crate::system::System;
    use neuropulsim_linalg::RMatrix;

    fn workload() -> Campaign<'static> {
        let layout = DramLayout::default();
        let n = 3;
        Campaign::new(
            move || {
                let mut sys = System::new();
                let w = RMatrix::identity(n);
                let flat: Vec<f64> = w.as_slice().to_vec();
                sys.write_fixed_vector(layout.w_addr, &flat);
                sys.write_fixed_vector(layout.x_addr, &[1.0, 2.0, 3.0]);
                sys.load_firmware_source(&software_mvm(n, 1, layout));
                sys
            },
            move |sys| {
                (0..n)
                    .map(|k| {
                        sys.platform
                            .dram
                            .peek(layout.y_addr + 4 * k as u32)
                            .unwrap_or(0)
                    })
                    .collect()
            },
            1_000_000,
        )
    }

    fn strata() -> Vec<Stratum> {
        let layout = DramLayout::default();
        vec![
            Stratum::new(
                "dram-weights",
                (0..9)
                    .map(|k| FaultTarget::Dram {
                        addr: layout.w_addr + 4 * k,
                    })
                    .collect(),
            ),
            Stratum::new(
                "cpu-registers",
                (1..16)
                    .map(|r| FaultTarget::Register { index: r })
                    .collect(),
            ),
            Stratum::new("dram-unused", vec![FaultTarget::Dram { addr: 0x003F_0000 }]),
        ]
    }

    #[test]
    fn checkpointed_injection_matches_sequential_exactly() {
        let c = workload();
        let golden_seq = c.golden();
        let golden = c.golden_checkpointed(50);
        assert_eq!(golden.signature, golden_seq);
        assert!(golden.checkpoint_count() > 2, "cadence 50 must checkpoint");
        let layout = DramLayout::default();
        // A grid over structures, cycles and kinds, including edge cycles.
        let mut faults = Vec::new();
        for &cycle in &[0u64, 1, 37, 120, golden.cycles - 1, golden.cycles, 999_999] {
            for bit in [0u8, 17, 31] {
                faults.push(Fault::transient(
                    FaultTarget::Dram {
                        addr: layout.x_addr,
                    },
                    bit,
                    cycle,
                ));
                faults.push(Fault::transient(
                    FaultTarget::Register { index: 6 },
                    bit,
                    cycle,
                ));
                faults.push(Fault::permanent(
                    FaultTarget::Dram {
                        addr: layout.y_addr,
                    },
                    bit,
                    cycle,
                    16,
                ));
            }
        }
        for fault in faults {
            let seq = c.inject(fault, &golden_seq);
            let ckpt = c.inject_from(&golden, fault);
            assert_eq!(ckpt.outcome, seq, "fault {fault:?}");
        }
    }

    #[test]
    fn late_faults_save_warmup_cycles() {
        let c = workload();
        let golden = c.golden_checkpointed(50);
        let late = Fault::transient(
            FaultTarget::Dram {
                addr: DramLayout::default().y_addr,
            },
            3,
            golden.cycles - 2,
        );
        let inj = c.inject_from(&golden, late);
        assert!(
            inj.cycles_saved >= 50,
            "late fault must resume from a non-zero checkpoint, saved {}",
            inj.cycles_saved
        );
        // The saved prefix plus the simulated suffix reaches the target.
        assert!(inj.cycles_saved + inj.cycles_simulated >= golden.cycles - 2);
    }

    #[test]
    fn campaign_is_thread_count_invariant() {
        let c = workload();
        let mut reports = Vec::new();
        for threads in [1usize, 4] {
            let cfg = CampaignConfig {
                cadence: 64,
                threads,
                injections: 24,
                batch: 8,
                ..CampaignConfig::default()
            };
            reports.push(c.run_stratified("mvm", 7, FaultKind::Transient, &strata(), &cfg));
        }
        let (a, b) = (&reports[0], &reports[1]);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.strata, b.strata);
        assert_eq!(a.cycles_simulated, b.cycles_simulated);
        assert_eq!(a.cycles_saved, b.cycles_saved);
        assert_eq!(a.injections, b.injections);
    }

    #[test]
    fn explicit_fault_list_runner_matches_sequential_run() {
        let c = workload();
        let layout = DramLayout::default();
        let faults: Vec<Fault> = (0..10)
            .map(|k| {
                Fault::transient(
                    FaultTarget::Dram {
                        addr: layout.w_addr + 4 * (k % 9),
                    },
                    (3 * k % 32) as u8,
                    10 * k as u64,
                )
            })
            .collect();
        let (seq_outcomes, seq_stats) = c.run(&faults);
        let cfg = CampaignConfig {
            cadence: 100,
            threads: 3,
            ..CampaignConfig::default()
        };
        let (_, injections, stats) = c.run_checkpointed(&faults, &cfg);
        assert_eq!(stats, seq_stats);
        let outcomes: Vec<FaultOutcome> = injections.iter().map(|i| i.outcome).collect();
        assert_eq!(outcomes, seq_outcomes);
    }

    #[test]
    fn early_stop_halts_when_interval_is_narrow() {
        let c = workload();
        // Faults into unused memory only: everything is masked, the
        // vulnerability interval collapses quickly.
        let dead = vec![Stratum::new(
            "dram-unused",
            vec![FaultTarget::Dram { addr: 0x003F_0000 }],
        )];
        let cfg = CampaignConfig {
            cadence: 128,
            threads: 2,
            injections: 400,
            batch: 16,
            target_ci_width: Some(0.25),
            min_injections: 16,
        };
        let report = c.run_stratified("mvm", 11, FaultKind::Transient, &dead, &cfg);
        assert!(report.early_stopped, "all-masked campaign must stop early");
        assert!(report.injections < cfg.injections);
        assert_eq!(report.stats.masked, report.stats.total());
        let (lo, hi) = report.vulnerability_ci();
        assert!(hi - lo <= 0.25, "stop condition must hold: [{lo}, {hi}]");
    }

    #[test]
    fn wilson_interval_sanity() {
        // Degenerate cases.
        assert_eq!(wilson_interval(0, 0, Z_95), (0.0, 1.0));
        let (lo, hi) = wilson_interval(0, 50, Z_95);
        assert_eq!(lo, 0.0);
        assert!(hi < 0.12, "0/50 upper bound is small: {hi}");
        let (lo, hi) = wilson_interval(50, 50, Z_95);
        assert!(lo > 0.88);
        assert_eq!(hi, 1.0);
        // Contains the point estimate and narrows with n.
        let (lo_s, hi_s) = wilson_interval(10, 40, Z_95);
        let (lo_l, hi_l) = wilson_interval(100, 400, Z_95);
        assert!(lo_s < 0.25 && 0.25 < hi_s);
        assert!(lo_l < 0.25 && 0.25 < hi_l);
        assert!(hi_l - lo_l < hi_s - lo_s, "more samples, tighter interval");
    }

    #[test]
    fn report_json_is_well_formed() {
        let c = workload();
        let cfg = CampaignConfig {
            cadence: 128,
            threads: 1,
            injections: 9,
            batch: 4,
            ..CampaignConfig::default()
        };
        let report = c.run_stratified("mvm-n3", 5, FaultKind::Transient, &strata(), &cfg);
        let json = report.to_json();
        for key in [
            "\"workload\": \"mvm-n3\"",
            "\"fault_kind\": \"transient\"",
            "\"checkpoint_cadence\": 128",
            "\"cycles_saved\"",
            "\"replay_savings\"",
            "\"vulnerability\"",
            "\"detected_recovered\"",
            "\"detected_uncorrected\"",
            "\"strata\"",
            "\"dram-weights\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces"
        );
    }

    #[test]
    fn report_totals_match_across_strata_and_categories() {
        // Satellite: aggregate totals must equal the sum over strata,
        // and each stratum total must equal the sum of its categories.
        let c = workload();
        let cfg = CampaignConfig {
            cadence: 128,
            threads: 2,
            injections: 21,
            batch: 8,
            ..CampaignConfig::default()
        };
        let report = c.run_stratified("mvm-n3", 13, FaultKind::Transient, &strata(), &cfg);
        let sum_of_strata: usize = report.strata.iter().map(|(_, s)| s.total()).sum();
        assert_eq!(report.stats.total(), sum_of_strata);
        assert_eq!(report.stats.total(), report.injections);
        for (name, s) in &report.strata {
            let by_category = s.masked
                + s.sdc
                + s.crashes
                + s.hangs
                + s.detected_recovered
                + s.detected_uncorrected;
            assert_eq!(s.total(), by_category, "stratum {name}");
        }
    }

    #[test]
    fn guard_comparison_arithmetic_and_json() {
        let c = workload();
        let cfg = CampaignConfig {
            cadence: 128,
            threads: 1,
            injections: 6,
            batch: 6,
            ..CampaignConfig::default()
        };
        let template = c.run_stratified("mvm-n3", 5, FaultKind::Transient, &strata(), &cfg);
        let mut baseline = template.clone();
        baseline.stats = CampaignStats {
            masked: 10,
            sdc: 8,
            crashes: 1,
            hangs: 1,
            ..CampaignStats::default()
        };
        baseline.golden_cycles = 1000;
        let mut guarded = template.clone();
        guarded.stats = CampaignStats {
            masked: 10,
            sdc: 2,
            crashes: 1,
            hangs: 1,
            detected_recovered: 4,
            detected_uncorrected: 2,
        };
        guarded.golden_cycles = 9000;
        let cmp = GuardComparison { baseline, guarded };
        let (cov, (lo, hi)) = cmp.detection_coverage();
        assert!((cov - 6.0 / 8.0).abs() < 1e-12);
        assert!(lo <= cov && cov <= hi);
        let (rec, _) = cmp.recovery_rate();
        assert!((rec - 4.0 / 6.0).abs() < 1e-12);
        assert!((cmp.cycle_overhead() - 9.0).abs() < 1e-12);
        assert!((cmp.reclassified_ratio() - 6.0 / 8.0).abs() < 1e-12);
        let (sb, sg) = cmp.sdc_rates();
        assert!(sb > sg, "guard must lower the SDC rate: {sb} vs {sg}");
        let json = cmp.to_json();
        for key in [
            "\"detection_coverage\"",
            "\"recovery_rate\"",
            "\"cycle_overhead\"",
            "\"reclassified_ratio\"",
            "\"sdc_rate_baseline\"",
            "\"baseline\"",
            "\"guarded\"",
        ] {
            assert!(json.contains(key), "missing {key}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}

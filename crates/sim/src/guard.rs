//! Host-side half of the guarded offload protocol: prepares the ABFT
//! checksum operands the guarded firmware verifies against, and reads
//! back the structured fault record it leaves in DRAM.
//!
//! The firmware half is [`crate::firmware::accel_offload_guarded`]; the
//! checksum mathematics live in `neuropulsim_core::abft`.

use crate::firmware::DramLayout;
use crate::fixed::to_fixed;
use crate::system::System;
use neuropulsim_linalg::RMatrix;

/// The structured fault record the guarded firmware writes to
/// [`DramLayout::fault_addr`] before halting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GuardRecord {
    /// Fault detections (checksum mismatches, device errors, timeouts).
    pub detections: u32,
    /// Blocks/vectors that verified clean after a retry or repair.
    pub recoveries: u32,
    /// Blocks degraded to the software MVM path.
    pub fallbacks: u32,
    /// Last device `ERROR` code observed (see
    /// [`crate::accel::errcode`]), 0 if none.
    pub last_code: u32,
}

impl GuardRecord {
    /// `true` when the run detected at least one fault.
    pub fn detected(&self) -> bool {
        self.detections > 0
    }
}

/// Writes everything the guarded firmware needs into DRAM: the weight
/// matrix (for the software fallback), the input vectors, the ABFT
/// plain-checksum row `c = 1ᵀ·W`, the per-vector wrapping input
/// checksums, and a zeroed fault record.
///
/// The input checksums are computed exactly as the firmware recomputes
/// them: the wrapping 32-bit sum of the Q16.16 words of each vector.
///
/// # Panics
///
/// Panics if `w` is not square, an input vector has the wrong length, or
/// a layout region falls outside DRAM.
pub fn write_guard_operands(sys: &mut System, w: &RMatrix, x: &[Vec<f64>], layout: DramLayout) {
    let n = w.rows();
    assert_eq!(w.cols(), n, "guard operands: weight matrix must be square");
    sys.write_fixed_vector(layout.w_addr, w.as_slice());
    let mut col_sums = vec![0.0; n];
    for i in 0..n {
        for j in 0..n {
            col_sums[j] += w[(i, j)];
        }
    }
    sys.write_fixed_vector(layout.c_addr, &col_sums);
    for (v, col) in x.iter().enumerate() {
        assert_eq!(col.len(), n, "guard operands: input vector {v} length");
        sys.write_fixed_vector(layout.x_addr + (v * n * 4) as u32, col);
        let sum = col
            .iter()
            .fold(0u32, |acc, &f| acc.wrapping_add(to_fixed(f) as u32));
        sys.platform
            .dram
            .poke(layout.xsum_addr + 4 * v as u32, sum)
            .expect("guard operands: xsum region outside DRAM");
    }
    for k in 0..4 {
        sys.platform
            .dram
            .poke(layout.fault_addr + 4 * k, 0)
            .expect("guard operands: fault record outside DRAM");
    }
}

/// Reads the structured fault record back from DRAM (out-of-range reads
/// count as zeros, so a crashed run reads as an empty record).
pub fn read_guard_record(sys: &System, layout: DramLayout) -> GuardRecord {
    let rd = |k: u32| {
        sys.platform
            .dram
            .peek(layout.fault_addr + 4 * k)
            .unwrap_or(0)
    };
    GuardRecord {
        detections: rd(0),
        recoveries: rd(1),
        fallbacks: rd(2),
        last_code: rd(3),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accel::{errcode, PcmDriftModel};
    use crate::firmware::{accel_offload_guarded, GuardConfig};
    use crate::system::RunOutcome;
    use neuropulsim_core::abft::fixed_checksum_tolerance;
    use neuropulsim_riscv::cpu::Halt;

    fn test_matrix(n: usize) -> RMatrix {
        RMatrix::from_fn(n, n, |i, j| 0.4 * ((i as f64 - j as f64) * 0.31).sin())
    }

    fn test_inputs(n: usize, batch: usize) -> Vec<Vec<f64>> {
        (0..batch)
            .map(|v| {
                (0..n)
                    .map(|k| 0.2 * ((v * n + k) as f64 * 0.17).cos())
                    .collect()
            })
            .collect()
    }

    fn check_outputs(sys: &System, w: &RMatrix, x: &[Vec<f64>], layout: DramLayout, tol: f64) {
        let n = w.rows();
        for (v, col) in x.iter().enumerate() {
            let want = w.mul_vec(col);
            let got = sys.read_fixed_vector(layout.y_addr + (v * n * 4) as u32, n);
            for (i, (a, b)) in got.iter().zip(&want).enumerate() {
                assert!((a - b).abs() < tol, "vector {v} element {i}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn guarded_offload_is_clean_without_faults() {
        let n = 8;
        let batch = 16;
        let layout = DramLayout::default();
        let w = test_matrix(n);
        let x = test_inputs(n, batch);
        let cfg = GuardConfig {
            tolerance: fixed_checksum_tolerance(n),
            ..GuardConfig::default()
        };
        let mut sys = System::new();
        sys.platform.accel.load_matrix(&w);
        write_guard_operands(&mut sys, &w, &x, layout);
        sys.load_firmware_source(&accel_offload_guarded(n, batch, layout, &cfg));
        let report = sys.run(1_000_000);
        assert_eq!(report.outcome, RunOutcome::Halted(Halt::Ecall));
        let rec = read_guard_record(&sys, layout);
        assert_eq!(rec, GuardRecord::default(), "no detections on a clean run");
        assert_eq!(sys.platform.accel.error_bits(), 0);
        check_outputs(&sys, &w, &x, layout, 2e-3);
    }

    #[test]
    fn guarded_offload_recovers_from_pcm_drift_via_recalibration() {
        let n = 8;
        let batch = 16;
        let layout = DramLayout::default();
        let w = test_matrix(n);
        let x = test_inputs(n, batch);
        let cfg = GuardConfig {
            tolerance: fixed_checksum_tolerance(n),
            recal_after: 1, // recalibrate on the first retry
            ..GuardConfig::default()
        };
        let mut sys = System::new();
        sys.platform.accel.load_matrix(&w);
        // Weights programmed ~30 simulated years ago: badly drifted at
        // boot, near-pristine again right after a recalibration.
        sys.platform.accel.enable_drift(PcmDriftModel {
            nu: 2e-3,
            seconds_per_cycle: 1e-9,
            initial_age_s: 1e9,
            ..PcmDriftModel::default()
        });
        write_guard_operands(&mut sys, &w, &x, layout);
        sys.load_firmware_source(&accel_offload_guarded(n, batch, layout, &cfg));
        let report = sys.run(1_000_000);
        assert_eq!(report.outcome, RunOutcome::Halted(Halt::Ecall));
        let rec = read_guard_record(&sys, layout);
        assert!(rec.detected(), "drifted output must be detected: {rec:?}");
        assert!(
            rec.recoveries > 0,
            "retry-after-recal must recover: {rec:?}"
        );
        assert_eq!(rec.fallbacks, 0, "no software fallback needed: {rec:?}");
        assert!(
            sys.platform.accel.recal_count() > 0,
            "the guard must have requested a recalibration"
        );
        check_outputs(&sys, &w, &x, layout, 2e-3);
    }

    #[test]
    fn guarded_offload_degrades_to_software_on_dead_device() {
        let n = 4;
        let batch = 8;
        let layout = DramLayout::default();
        let w = test_matrix(n);
        let x = test_inputs(n, batch);
        let cfg = GuardConfig {
            block: 4,
            tolerance: fixed_checksum_tolerance(n),
            poll_limit: 64,
            backoff_base: 4,
            backoff_cap: 16,
            ..GuardConfig::default()
        };
        // The accelerator never gets a matrix: every doorbell is a
        // BAD_JOB no-op and the jobs never complete.
        let mut sys = System::new();
        write_guard_operands(&mut sys, &w, &x, layout);
        sys.load_firmware_source(&accel_offload_guarded(n, batch, layout, &cfg));
        let report = sys.run(2_000_000);
        assert_eq!(report.outcome, RunOutcome::Halted(Halt::Ecall));
        let rec = read_guard_record(&sys, layout);
        assert_eq!(rec.fallbacks, 2, "both blocks degrade to software");
        assert!(rec.detections >= 2 * (cfg.max_retries + 1));
        // The fault record is escalated through the device error IRQ.
        assert_ne!(sys.platform.accel.error_bits() & errcode::CHECKSUM, 0);
        assert!(sys.platform.accel.error_irq_line());
        // And the results are still correct, from the software path.
        check_outputs(&sys, &w, &x, layout, 1e-3);
    }

    #[test]
    fn guarded_offload_survives_watchdog_timeouts() {
        let n = 4;
        let batch = 8;
        let layout = DramLayout::default();
        let w = test_matrix(n);
        let x = test_inputs(n, batch);
        let cfg = GuardConfig {
            block: 4,
            tolerance: fixed_checksum_tolerance(n),
            watchdog: 64,
            poll_limit: 512,
            backoff_base: 4,
            backoff_cap: 16,
            ..GuardConfig::default()
        };
        let mut sys = System::new();
        sys.platform.accel.load_matrix(&w);
        // Pathological device latency: every job overshoots the watchdog.
        sys.platform.accel.setup_cycles = 100_000;
        write_guard_operands(&mut sys, &w, &x, layout);
        sys.load_firmware_source(&accel_offload_guarded(n, batch, layout, &cfg));
        let report = sys.run(2_000_000);
        assert_eq!(report.outcome, RunOutcome::Halted(Halt::Ecall));
        let rec = read_guard_record(&sys, layout);
        assert!(rec.detected());
        assert_eq!(rec.fallbacks, 2, "watchdog-dead device degrades cleanly");
        assert_eq!(
            rec.last_code & errcode::WATCHDOG,
            errcode::WATCHDOG,
            "the device timeout code is recorded: {rec:?}"
        );
        check_outputs(&sys, &w, &x, layout, 1e-3);
    }
}

//! A timing-model cache for the host CPU's DRAM traffic — the
//! microarchitectural detail that makes the software baseline of E7
//! honest (gem5 models this; a fixed 2-cycle load would flatter neither
//! side fairly once DRAM latency is nonzero).
//!
//! The cache is *timing-only*: data always comes from the backing RAM
//! (so DMA traffic can never go stale); the cache just decides how many
//! stall cycles an access costs. Direct-mapped, write-allocate.

/// A direct-mapped, timing-only cache.
///
/// # Examples
///
/// ```
/// use neuropulsim_sim::cache::DirectMappedCache;
///
/// let mut cache = DirectMappedCache::new(64, 8, 20);
/// assert_eq!(cache.access(0x1000), 20); // cold miss
/// assert_eq!(cache.access(0x1004), 0);  // same line: hit
/// assert_eq!(cache.hits, 1);
/// assert_eq!(cache.misses, 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DirectMappedCache {
    line_words: usize,
    tags: Vec<Option<u32>>,
    /// Stall cycles charged on a miss.
    pub miss_penalty: u64,
    /// Hit counter.
    pub hits: u64,
    /// Miss counter.
    pub misses: u64,
}

impl DirectMappedCache {
    /// Creates a cache with `lines` lines of `line_words` 32-bit words
    /// each, charging `miss_penalty` stall cycles per miss.
    ///
    /// # Panics
    ///
    /// Panics if `lines` or `line_words` is zero or not a power of two.
    pub fn new(lines: usize, line_words: usize, miss_penalty: u64) -> Self {
        assert!(
            lines.is_power_of_two() && lines > 0,
            "lines must be a power of two"
        );
        assert!(
            line_words.is_power_of_two() && line_words > 0,
            "line words must be a power of two"
        );
        DirectMappedCache {
            line_words,
            tags: vec![None; lines],
            miss_penalty,
            hits: 0,
            misses: 0,
        }
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.tags.len() * self.line_words * 4
    }

    /// Simulates one word access at byte address `addr`; returns the
    /// stall cycles (0 on hit, `miss_penalty` on miss) and updates the
    /// replacement state.
    pub fn access(&mut self, addr: u32) -> u64 {
        let word = addr / 4;
        let line_addr = word as usize / self.line_words;
        let index = line_addr & (self.tags.len() - 1);
        let tag = (line_addr / self.tags.len()) as u32;
        if self.tags[index] == Some(tag) {
            self.hits += 1;
            0
        } else {
            self.tags[index] = Some(tag);
            self.misses += 1;
            self.miss_penalty
        }
    }

    /// Hit rate so far (0 if no accesses).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Flushes all lines (keeps statistics).
    pub fn invalidate_all(&mut self) {
        self.tags.fill(None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spatial_locality_hits_within_a_line() {
        let mut c = DirectMappedCache::new(16, 8, 10);
        assert_eq!(c.access(0), 10);
        for k in 1..8u32 {
            assert_eq!(c.access(k * 4), 0, "word {k} shares the line");
        }
        assert_eq!(c.access(8 * 4), 10, "next line misses");
        assert_eq!(c.hits, 7);
        assert_eq!(c.misses, 2);
    }

    #[test]
    fn conflicting_lines_evict() {
        // 2 lines of 1 word: addresses 0 and 8 map to index 0.
        let mut c = DirectMappedCache::new(2, 1, 5);
        assert_eq!(c.access(0), 5);
        assert_eq!(c.access(8), 5, "conflict miss");
        assert_eq!(c.access(0), 5, "evicted, misses again");
        assert_eq!(c.hit_rate(), 0.0);
    }

    #[test]
    fn temporal_locality_hits() {
        let mut c = DirectMappedCache::new(64, 8, 20);
        let _ = c.access(0x100);
        for _ in 0..100 {
            assert_eq!(c.access(0x100), 0);
        }
        assert!(c.hit_rate() > 0.99);
    }

    #[test]
    fn invalidate_clears_lines() {
        let mut c = DirectMappedCache::new(4, 4, 7);
        let _ = c.access(0x40);
        c.invalidate_all();
        assert_eq!(c.access(0x40), 7, "flushed line must miss");
    }

    #[test]
    fn capacity_accounting() {
        let c = DirectMappedCache::new(64, 8, 1);
        assert_eq!(c.capacity(), 64 * 8 * 4);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _ = DirectMappedCache::new(3, 4, 1);
    }
}

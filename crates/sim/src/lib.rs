//! # neuropulsim-sim
//!
//! A gem5-MARVEL-style full-system simulator (paper §5, Fig. 3): a RISC-V
//! host CPU attached over a memory bus to DRAM, a scratchpad memory, a
//! DMA engine, and the memory-mapped photonic MVM accelerator, with
//! level-triggered completion interrupts and a fault-injection framework
//! for reliability analysis.
//!
//! - [`system`]: the platform, memory map, run loop and energy report;
//! - [`accel`]: the photonic Compute Unit + Communications Interface
//!   (MMRs, SPM operands, IRQ);
//! - [`dma`]: the block-transfer engine;
//! - [`ram`]: DRAM/SPM with access accounting;
//! - [`firmware`]: canned RISC-V programs — the software-MVM baseline,
//!   the accelerator-offload driver, and the ABFT-guarded fault-tolerant
//!   offload driver;
//! - [`guard`]: host-side helpers for the guarded offload protocol
//!   (checksum operands, structured fault record);
//! - [`fault`]: transient/permanent fault injection with the
//!   masked/SDC/crash/hang/detected taxonomy;
//! - [`checkpoint`]: full-system snapshot/restore;
//! - [`campaign`]: the checkpointed, parallel, statistical campaign
//!   engine with Wilson confidence intervals and JSON reporting;
//! - [`serve`]: the multi-accelerator fabric — a heterogeneous PE fleet
//!   behind an async serving front-end (admission queue, wavelength
//!   batcher, shard router, verified response join) with degraded-fleet
//!   fault semantics;
//! - [`loader`]: an ELF32 loader and Linux-flavored syscall shim so
//!   real RV32IM binaries run on the platform;
//! - [`fixed`]: the Q16.16 operand format.
//!
//! # Examples
//!
//! Offload one MVM to the photonic accelerator:
//!
//! ```
//! use neuropulsim_linalg::RMatrix;
//! use neuropulsim_sim::firmware::{accel_offload, DramLayout};
//! use neuropulsim_sim::system::{RunOutcome, System};
//!
//! let n = 2;
//! let layout = DramLayout::default();
//! let mut sys = System::new();
//! sys.platform.accel.load_matrix(&RMatrix::identity(n));
//! sys.write_fixed_vector(layout.x_addr, &[0.5, -0.25]);
//! sys.load_firmware_source(&accel_offload(n, 1, layout));
//! let report = sys.run(1_000_000);
//! assert!(matches!(report.outcome, RunOutcome::Halted(_)));
//! let y = sys.read_fixed_vector(layout.y_addr, n);
//! assert!((y[0] - 0.5).abs() < 1e-3);
//! ```

#![warn(missing_docs)]

pub mod accel;
pub mod cache;
pub mod campaign;
pub mod checkpoint;
pub mod dma;
pub mod fault;
pub mod firmware;
pub mod fixed;
pub mod guard;
pub mod loader;
pub mod ram;
pub mod serve;
pub mod system;

//! Q16.16 fixed-point conversions — the number format the host firmware
//! and the accelerator's Communications Interface exchange through SPM.

/// Fractional bits of the Q16.16 format.
pub const FRAC_BITS: u32 = 16;

/// Scale factor `2^16`.
pub const SCALE: f64 = 65536.0;

/// Converts a float to Q16.16 with saturation.
///
/// Non-finite inputs follow an explicit policy: `+inf` saturates to
/// [`i32::MAX`], `-inf` to [`i32::MIN`], and NaN converts to 0 — NaN has
/// no order, so neither saturation bound applies, and 0 is the only
/// value that keeps `to_fixed` total without inventing a sign. (Before
/// this was spelled out, NaN fell through both comparisons and hit the
/// `as` cast, which yields 0 silently; the behaviour is unchanged but
/// now deliberate and tested.)
pub fn to_fixed(x: f64) -> i32 {
    let v = (x * SCALE).round();
    if v.is_nan() {
        0
    } else if v >= i32::MAX as f64 {
        i32::MAX
    } else if v <= i32::MIN as f64 {
        i32::MIN
    } else {
        v as i32
    }
}

/// Converts Q16.16 back to a float.
pub fn from_fixed(x: i32) -> f64 {
    x as f64 / SCALE
}

/// Q16.16 multiply (the operation the software-GeMM firmware performs
/// with `mul`/`mulh` pairs).
pub fn fixed_mul(a: i32, b: i32) -> i32 {
    (((a as i64) * (b as i64)) >> FRAC_BITS) as i32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_precision() {
        for x in [-3.75, -0.001, 0.0, 0.5, 1.0, 123.456] {
            let err = (from_fixed(to_fixed(x)) - x).abs();
            assert!(err < 1.0 / SCALE, "x={x}, err={err}");
        }
    }

    #[test]
    fn saturation() {
        assert_eq!(to_fixed(1e9), i32::MAX);
        assert_eq!(to_fixed(-1e9), i32::MIN);
    }

    #[test]
    fn non_finite_policy() {
        assert_eq!(to_fixed(f64::NAN), 0, "NaN converts to 0 by policy");
        assert_eq!(to_fixed(-f64::NAN), 0);
        assert_eq!(to_fixed(f64::INFINITY), i32::MAX);
        assert_eq!(to_fixed(f64::NEG_INFINITY), i32::MIN);
        // The boundary just inside the representable range still rounds.
        assert_eq!(to_fixed(f64::MIN_POSITIVE), 0);
    }

    #[test]
    fn multiplication() {
        let a = to_fixed(1.5);
        let b = to_fixed(-2.0);
        assert!((from_fixed(fixed_mul(a, b)) + 3.0).abs() < 1e-3);
        assert_eq!(fixed_mul(to_fixed(1.0), to_fixed(1.0)), to_fixed(1.0));
    }
}

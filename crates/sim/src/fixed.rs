//! Q16.16 fixed-point conversions — the number format the host firmware
//! and the accelerator's Communications Interface exchange through SPM.

/// Fractional bits of the Q16.16 format.
pub const FRAC_BITS: u32 = 16;

/// Scale factor `2^16`.
pub const SCALE: f64 = 65536.0;

/// Converts a float to Q16.16 with saturation.
///
/// Non-finite inputs follow an explicit policy: `+inf` saturates to
/// [`i32::MAX`], `-inf` to [`i32::MIN`], and NaN converts to 0 — NaN has
/// no order, so neither saturation bound applies, and 0 is the only
/// value that keeps `to_fixed` total without inventing a sign. (Before
/// this was spelled out, NaN fell through both comparisons and hit the
/// `as` cast, which yields 0 silently; the behaviour is unchanged but
/// now deliberate and tested.)
pub fn to_fixed(x: f64) -> i32 {
    let v = (x * SCALE).round();
    if v.is_nan() {
        0
    } else if v >= i32::MAX as f64 {
        i32::MAX
    } else if v <= i32::MIN as f64 {
        i32::MIN
    } else {
        v as i32
    }
}

/// Converts Q16.16 back to a float.
pub fn from_fixed(x: i32) -> f64 {
    x as f64 / SCALE
}

/// Q16.16 multiply (the operation the software-GeMM firmware performs
/// with `mul`/`mulh` pairs).
///
/// The wide product is saturated to the `i32` range instead of wrapped:
/// `to_fixed` already saturates out-of-range floats, and a product that
/// overflows Q16.16 must degrade the same way (clamp to the nearest
/// representable value) rather than silently change sign.
pub fn fixed_mul(a: i32, b: i32) -> i32 {
    let wide = ((a as i64) * (b as i64)) >> FRAC_BITS;
    wide.clamp(i32::MIN as i64, i32::MAX as i64) as i32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_precision() {
        for x in [-3.75, -0.001, 0.0, 0.5, 1.0, 123.456] {
            let err = (from_fixed(to_fixed(x)) - x).abs();
            assert!(err < 1.0 / SCALE, "x={x}, err={err}");
        }
    }

    #[test]
    fn saturation() {
        assert_eq!(to_fixed(1e9), i32::MAX);
        assert_eq!(to_fixed(-1e9), i32::MIN);
    }

    #[test]
    fn non_finite_policy() {
        assert_eq!(to_fixed(f64::NAN), 0, "NaN converts to 0 by policy");
        assert_eq!(to_fixed(-f64::NAN), 0);
        assert_eq!(to_fixed(f64::INFINITY), i32::MAX);
        assert_eq!(to_fixed(f64::NEG_INFINITY), i32::MIN);
        // The boundary just inside the representable range still rounds.
        assert_eq!(to_fixed(f64::MIN_POSITIVE), 0);
    }

    #[test]
    fn multiplication() {
        let a = to_fixed(1.5);
        let b = to_fixed(-2.0);
        assert!((from_fixed(fixed_mul(a, b)) + 3.0).abs() < 1e-3);
        assert_eq!(fixed_mul(to_fixed(1.0), to_fixed(1.0)), to_fixed(1.0));
    }

    #[test]
    fn multiplication_saturates_instead_of_wrapping() {
        // 30000.0 * 30000.0 = 9e8, far beyond the Q16.16 max of ~32768:
        // the former `as i32` truncation wrapped this to a negative value.
        let big = to_fixed(30000.0);
        assert_eq!(fixed_mul(big, big), i32::MAX);
        assert_eq!(fixed_mul(big, -big), i32::MIN);
        assert_eq!(fixed_mul(-big, big), i32::MIN);
        assert_eq!(fixed_mul(-big, -big), i32::MAX);
        assert_eq!(fixed_mul(i32::MAX, i32::MAX), i32::MAX);
        assert_eq!(fixed_mul(i32::MIN, i32::MIN), i32::MAX);
        assert_eq!(fixed_mul(i32::MIN, i32::MAX), i32::MIN);
    }

    #[test]
    fn multiplication_saturation_boundaries_are_exact() {
        // Largest pair whose product still fits: i32::MAX in Q16.16 is
        // (2^31 - 1) / 2^16; sqrt of that times itself stays in range.
        let edge = to_fixed(181.0); // 181^2 = 32761 < 32767.99...
        let prod = fixed_mul(edge, edge);
        assert!((from_fixed(prod) - 181.0 * 181.0).abs() < 1.0);
        assert_ne!(prod, i32::MAX, "in-range product must not clamp");
        // One LSB below the positive clamp: (i32::MAX << 16) / i32::MAX.
        assert_eq!(fixed_mul(i32::MAX, 1 << FRAC_BITS), i32::MAX);
        assert_eq!(fixed_mul(i32::MAX, (1 << FRAC_BITS) - 1), 2147450879);
    }
}

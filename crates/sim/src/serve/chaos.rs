//! Chaos-campaign driver for the self-healing serving fabric: seeded
//! fault schedules (transient bricks, stalls, drift ramps, burst
//! overload) run against [`InferenceServer`], emitting an availability
//! report — goodput, time-to-readmission, SLO violations — per scenario
//! plus campaign-level acceptance flags.
//!
//! Every scenario is a fully deterministic discrete-event run, so the
//! campaign report is bit-identical at any host thread count: scenarios
//! fan out over [`neuropulsim_linalg::parallel::par_map_indexed`]
//! (order-preserving) and each run derives everything from its seed.
//! The same snapshot determinism the fault-injection campaigns rely on
//! (`sim::campaign`) applies here — a mid-run clone of a scenario's
//! server resumes bit-identically, which is what lets
//! `tests/snapshot_fuzz.rs` cut chaos-shaped runs inside recalibration
//! and probation windows.
//!
//! Scenario design notes:
//!
//! - PE 0 is kept fault-free in every fault scenario, so the acceptance
//!   bar "zero requests dropped while ≥1 PE is healthy" is checkable.
//! - Transient faults (`HardFor`/`StallFor`) clear early enough that
//!   recovery + probation complete inside the run: the campaign asserts
//!   every transiently-faulted PE is readmitted and serves jobs again.
//! - The drift ramp ages all PEs' PCM weights fast enough that canaries
//!   must trip mid-run; the acceptance flag checks recalibration landed
//!   *before* any production job failed its checksum.

use super::{
    synthetic_load, InferenceServer, LoadSpec, PeFault, PeHealth, PeSpec, Request, ServeConfig,
    ServeOutcome,
};
use crate::accel::PcmDriftModel;
use neuropulsim_linalg::parallel::{available_threads, par_map_indexed};
use neuropulsim_linalg::RMatrix;

/// What a scenario is probing — selects its acceptance checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioKind {
    /// Transient/persistent device faults: zero drops, full readmission.
    Fault,
    /// PCM drift ramp: canary recals before any checksum job failure.
    Drift,
    /// Burst overload: shedding with backoff, no hangs.
    Overload,
}

impl ScenarioKind {
    /// Stable lowercase name (report JSON).
    pub fn as_str(self) -> &'static str {
        match self {
            ScenarioKind::Fault => "fault",
            ScenarioKind::Drift => "drift",
            ScenarioKind::Overload => "overload",
        }
    }
}

/// One seeded chaos scenario: a fleet shape, a serve config and a load.
#[derive(Debug, Clone)]
pub struct ChaosScenario {
    /// Scenario name (report key).
    pub name: String,
    /// What the scenario probes.
    pub kind: ScenarioKind,
    /// Fleet specification (faults scheduled inside).
    pub specs: Vec<PeSpec>,
    /// Serving configuration.
    pub cfg: ServeConfig,
    /// The request load.
    pub load: Vec<Request>,
    /// Latency SLO \[cycles\] for the violation count.
    pub slo_cycles: u64,
    /// PE slots scheduled with *transient* faults (must be readmitted).
    pub transient_pes: Vec<usize>,
}

/// Sizing of the standard campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignSpec {
    /// Requests per scenario.
    pub requests: usize,
    /// Campaign seed (loads and schedules derive from it).
    pub seed: u64,
    /// Fleet size per scenario.
    pub pes: usize,
}

impl Default for CampaignSpec {
    fn default() -> Self {
        CampaignSpec {
            requests: 1600,
            seed: 0xc4a05,
            pes: 4,
        }
    }
}

/// The shared chaos model (all scenarios serve the same matrix).
pub fn chaos_model() -> RMatrix {
    RMatrix::from_fn(8, 8, |i, j| {
        0.4 * ((i as f64 - j as f64) * 0.31).sin() + if i == j { 0.3 } else { 0.0 }
    })
}

fn base_cfg() -> ServeConfig {
    ServeConfig {
        watchdog: 64,
        recovery_backoff: 128,
        recovery_attempts: 4,
        probation_canaries: 2,
        ..ServeConfig::default()
    }
}

fn fleet(pes: usize, faults: &[(usize, PeFault)]) -> Vec<PeSpec> {
    (0..pes)
        .map(|i| {
            let mut s = PeSpec::new(0);
            if let Some((_, f)) = faults.iter().find(|(k, _)| *k == i) {
                s.fault = *f;
            }
            s
        })
        .collect()
}

/// Builds the standard four-scenario campaign: transient bricks,
/// transient stalls, a drift ramp, and burst overload. All schedules
/// and loads derive deterministically from `spec.seed`.
pub fn standard_campaign(spec: CampaignSpec) -> Vec<ChaosScenario> {
    let models = vec![chaos_model()];
    let pes = spec.pes.max(2);
    // Arrivals span ~2 * requests cycles at mean_interarrival = 2, so
    // fault windows placed inside [span/8, span/2] always land in-run
    // and clear with enough run left for recovery + readmission.
    let span = 2 * spec.requests as u64;
    let steady = |salt: u64| {
        synthetic_load(
            &models,
            LoadSpec {
                requests: spec.requests,
                mean_interarrival: 2,
                seed: spec.seed.wrapping_add(salt),
            },
        )
    };

    // Transient bricks on two PEs (PE 0 stays fault-free).
    let brick = ChaosScenario {
        name: "brick".into(),
        kind: ScenarioKind::Fault,
        specs: fleet(
            pes,
            &[
                (
                    1,
                    PeFault::HardFor {
                        cycle: span / 8,
                        until: span / 4,
                    },
                ),
                (
                    2,
                    PeFault::HardFor {
                        cycle: span / 4,
                        until: span / 2,
                    },
                ),
            ],
        ),
        cfg: base_cfg(),
        load: steady(1),
        slo_cycles: 4096,
        transient_pes: vec![1, 2],
    };

    // Transient stalls: jobs die by watchdog until the window clears.
    let stall = ChaosScenario {
        name: "stall".into(),
        kind: ScenarioKind::Fault,
        specs: fleet(
            pes,
            &[
                (
                    1,
                    PeFault::StallFor {
                        cycle: span / 8,
                        until: span / 3,
                    },
                ),
                (
                    pes - 1,
                    PeFault::StallFor {
                        cycle: span / 5,
                        until: span / 2,
                    },
                ),
            ],
        ),
        cfg: base_cfg(),
        load: steady(2),
        slo_cycles: 4096,
        transient_pes: vec![1, pes - 1],
    };

    // Drift ramp: every PE's PCM weights age fast enough that the
    // canary (at half the job tolerance) must trip mid-run.
    let drift_model = PcmDriftModel {
        nu: 0.05,
        seconds_per_cycle: 2e-3,
        initial_age_s: 1e-3,
        ..PcmDriftModel::default()
    };
    let mut drift_specs = fleet(pes, &[]);
    for s in &mut drift_specs {
        s.drift = Some(drift_model);
    }
    let drift = ChaosScenario {
        name: "drift_ramp".into(),
        kind: ScenarioKind::Drift,
        specs: drift_specs,
        cfg: ServeConfig {
            canary_period: span / 16,
            drift_margin: 0.3,
            ..base_cfg()
        },
        load: steady(3),
        slo_cycles: 4096,
        transient_pes: vec![],
    };

    // Burst overload: everything arrives at once against a bounded
    // queue — admission must shed with backoff, never hang or OOM.
    let overload = ChaosScenario {
        name: "burst_overload".into(),
        kind: ScenarioKind::Overload,
        specs: fleet(pes.min(2), &[]),
        cfg: ServeConfig {
            queue_cap: 96,
            shed_backoff: 128,
            ..base_cfg()
        },
        load: synthetic_load(
            &models,
            LoadSpec {
                requests: spec.requests,
                mean_interarrival: 0,
                seed: spec.seed.wrapping_add(4),
            },
        ),
        slo_cycles: 4096,
        transient_pes: vec![],
    };

    vec![brick, stall, drift, overload]
}

/// Per-scenario availability report.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioReport {
    /// Scenario name.
    pub name: String,
    /// Scenario kind.
    pub kind: ScenarioKind,
    /// Full serving outcome.
    pub outcome: ServeOutcome,
    /// `completed / offered`.
    pub availability: f64,
    /// Goodput \[requests/s\] (completed over the run's span).
    pub goodput_rps: f64,
    /// Responses whose latency exceeded the scenario SLO.
    pub slo_violations: usize,
    /// Worst completed ejection→readmission episode \[cycles\], fleetwide.
    pub max_readmission_cycles: u64,
    /// Every scheduled transient PE ended the run readmitted, healthy
    /// and serving (vacuously true without transient faults).
    pub transients_readmitted: bool,
}

impl ScenarioReport {
    /// Renders the scenario report as a stable JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"name\": \"{}\", \"kind\": \"{}\", \"availability\": {:.4}, \
             \"goodput_rps\": {:.3}, \"slo_violations\": {}, \
             \"max_readmission_cycles\": {}, \"transients_readmitted\": {}, \
             \"report\": {}}}",
            self.name,
            self.kind.as_str(),
            self.availability,
            self.goodput_rps,
            self.slo_violations,
            self.max_readmission_cycles,
            self.transients_readmitted,
            self.outcome.report.to_json(),
        )
    }
}

/// The campaign report: per-scenario availability plus the acceptance
/// flags CI gates on.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// Per-scenario reports, in campaign order.
    pub scenarios: Vec<ScenarioReport>,
    /// No fault/drift scenario dropped a request (PE 0 stays healthy
    /// throughout, so the fleet always had capacity).
    pub zero_drops_while_healthy: bool,
    /// Every transiently-faulted PE was readmitted and served again.
    pub all_transients_readmitted: bool,
    /// The drift scenario recalibrated via canaries with zero
    /// production checksum failures — recovery pre-empted failure.
    pub drift_recal_before_failure: bool,
    /// The overload scenario shed (bounded queue did its job) while
    /// still completing admitted work.
    pub overload_shed_and_served: bool,
}

impl CampaignReport {
    /// True when every acceptance flag holds.
    pub fn accepted(&self) -> bool {
        self.zero_drops_while_healthy
            && self.all_transients_readmitted
            && self.drift_recal_before_failure
            && self.overload_shed_and_served
    }

    /// Lowest availability across fault/drift scenarios.
    pub fn min_fault_availability(&self) -> f64 {
        self.scenarios
            .iter()
            .filter(|s| s.kind != ScenarioKind::Overload)
            .map(|s| s.availability)
            .fold(1.0, f64::min)
    }

    /// Renders the campaign report as a stable JSON object.
    pub fn to_json(&self) -> String {
        let scenarios: Vec<String> = self.scenarios.iter().map(ScenarioReport::to_json).collect();
        format!(
            "{{\"zero_drops_while_healthy\": {}, \"all_transients_readmitted\": {}, \
             \"drift_recal_before_failure\": {}, \"overload_shed_and_served\": {}, \
             \"accepted\": {}, \"min_fault_availability\": {:.4}, \
             \"scenarios\": [{}]}}",
            self.zero_drops_while_healthy,
            self.all_transients_readmitted,
            self.drift_recal_before_failure,
            self.overload_shed_and_served,
            self.accepted(),
            self.min_fault_availability(),
            scenarios.join(", "),
        )
    }
}

/// Runs one scenario to completion.
pub fn run_scenario(sc: &ChaosScenario) -> ScenarioReport {
    let models = vec![chaos_model()];
    let mut srv = InferenceServer::new(models, &sc.specs, sc.cfg);
    let outcome = srv.run(&sc.load);
    let offered = sc.load.len().max(1);
    let r = &outcome.report;
    let availability = r.completed as f64 / offered as f64;
    let goodput_rps = r.requests_per_sec;
    let slo_violations = outcome
        .responses
        .iter()
        .filter(|resp| resp.latency() > sc.slo_cycles)
        .count();
    let max_readmission_cycles = r
        .per_pe
        .iter()
        .map(|p| p.out_of_fleet_cycles)
        .max()
        .unwrap_or(0);
    let transients_readmitted = sc.transient_pes.iter().all(|&i| {
        let p = &r.per_pe[i];
        p.readmissions >= 1 && p.final_health == PeHealth::Healthy && p.jobs_since_readmission > 0
    });
    ScenarioReport {
        name: sc.name.clone(),
        kind: sc.kind,
        outcome,
        availability,
        goodput_rps,
        slo_violations,
        max_readmission_cycles,
        transients_readmitted,
    }
}

/// Runs a campaign with an explicit worker count (order-preserving, so
/// the report is bit-identical for any `threads`).
pub fn run_campaign_threads(scenarios: &[ChaosScenario], threads: usize) -> CampaignReport {
    let reports = par_map_indexed(scenarios.len(), threads, |i| run_scenario(&scenarios[i]));
    let zero_drops_while_healthy = reports
        .iter()
        .filter(|s| s.kind != ScenarioKind::Overload)
        .all(|s| s.outcome.report.dropped == 0);
    let all_transients_readmitted = reports.iter().all(|s| s.transients_readmitted);
    let drift_recal_before_failure = reports
        .iter()
        .filter(|s| s.kind == ScenarioKind::Drift)
        .all(|s| {
            let r = &s.outcome.report;
            let recals: u32 = r.per_pe.iter().map(|p| p.canary_recals).sum();
            recals > 0 && r.failures.checksum == 0
        });
    let overload_shed_and_served = reports
        .iter()
        .filter(|s| s.kind == ScenarioKind::Overload)
        .all(|s| {
            let r = &s.outcome.report;
            r.drops.shed > 0 && r.completed > 0 && r.dropped == r.drops.shed
        });
    CampaignReport {
        scenarios: reports,
        zero_drops_while_healthy,
        all_transients_readmitted,
        drift_recal_before_failure,
        overload_shed_and_served,
    }
}

/// Runs a campaign over the host's configured worker count
/// (`NEUROPULSIM_THREADS`). The report does not depend on it.
pub fn run_campaign(scenarios: &[ChaosScenario]) -> CampaignReport {
    run_campaign_threads(scenarios, available_threads())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> CampaignSpec {
        CampaignSpec {
            requests: 700,
            ..CampaignSpec::default()
        }
    }

    #[test]
    fn standard_campaign_meets_acceptance() {
        let report = run_campaign(&standard_campaign(small_spec()));
        assert!(
            report.zero_drops_while_healthy,
            "dropped under healthy capacity: {:?}",
            report
                .scenarios
                .iter()
                .map(|s| (s.name.clone(), s.outcome.report.dropped))
                .collect::<Vec<_>>()
        );
        assert!(
            report.all_transients_readmitted,
            "a transient PE was not readmitted"
        );
        assert!(
            report.drift_recal_before_failure,
            "drift canaries must pre-empt job failures"
        );
        assert!(report.overload_shed_and_served);
        assert!(report.accepted());
        assert!(report.min_fault_availability() >= 1.0);
    }

    #[test]
    fn campaign_report_is_thread_count_invariant() {
        let scenarios = standard_campaign(small_spec());
        let one = run_campaign_threads(&scenarios, 1);
        let four = run_campaign_threads(&scenarios, 4);
        assert_eq!(one, four, "campaign must not depend on worker count");
        assert_eq!(one.to_json(), four.to_json());
    }

    #[test]
    fn readmission_times_are_reported() {
        let report = run_campaign_threads(&standard_campaign(small_spec()), 1);
        let brick = &report.scenarios[0];
        assert!(
            brick.max_readmission_cycles > 0,
            "time-to-readmission must be visible in the report"
        );
    }
}

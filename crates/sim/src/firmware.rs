//! Canned RISC-V firmware for the system-level experiments (E7): a
//! software fixed-point MVM baseline, the accelerator-offload driver
//! (DMA in → doorbell → `wfi` → DMA out), and the fault-tolerant
//! [`accel_offload_guarded`] driver (ABFT checksums, watchdog, retry
//! with backoff, drift-triggered recalibration, software fallback).

use crate::system::{ACCEL_BASE, DMA_BASE, PE_STRIDE, SPM_BASE};

/// Default DRAM layout used by the canned firmware.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramLayout {
    /// Weight matrix base (row-major Q16.16).
    pub w_addr: u32,
    /// Input vectors base (column after column).
    pub x_addr: u32,
    /// Output vectors base.
    pub y_addr: u32,
    /// ABFT plain-checksum row `c = 1ᵀ·W` (`n` Q16.16 words), used by
    /// the guarded driver's output verification.
    pub c_addr: u32,
    /// Per-vector wrapping input checksums (`batch` words), used by the
    /// guarded driver to verify staged inputs.
    pub xsum_addr: u32,
    /// Structured fault record written by the guarded driver on exit:
    /// `[detections, recoveries, fallbacks, last_device_error]`.
    pub fault_addr: u32,
}

impl Default for DramLayout {
    fn default() -> Self {
        DramLayout {
            w_addr: 0x0010_0000,
            x_addr: 0x0020_0000,
            y_addr: 0x0030_0000,
            c_addr: 0x0038_0000,
            xsum_addr: 0x0039_0000,
            fault_addr: 0x003A_0000,
        }
    }
}

/// Tuning knobs of the guarded offload driver
/// ([`accel_offload_guarded`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GuardConfig {
    /// Vectors per guarded block (must divide the batch).
    pub block: usize,
    /// ABFT output-checksum tolerance in Q16.16 LSBs (see
    /// `neuropulsim_core::abft::fixed_checksum_tolerance`).
    pub tolerance: u32,
    /// Retries per block before degrading to the software path.
    pub max_retries: u32,
    /// Backoff spin of the first retry \[iterations\]; doubles per retry.
    pub backoff_base: u32,
    /// Upper bound on the backoff spin \[iterations\].
    pub backoff_cap: u32,
    /// Retry number at which a recalibration is requested first.
    pub recal_after: u32,
    /// Watchdog deadline programmed into the device \[cycles\]
    /// (0 disables).
    pub watchdog: u32,
    /// Bounded-poll iterations for device/DMA completion.
    pub poll_limit: u32,
}

impl Default for GuardConfig {
    fn default() -> Self {
        GuardConfig {
            block: 16,
            tolerance: 64,
            max_retries: 3,
            backoff_base: 32,
            backoff_cap: 1024,
            recal_after: 2,
            watchdog: 4096,
            poll_limit: 2000,
        }
    }
}

/// Generates the software fixed-point MVM firmware: computes
/// `Y[:, v] = W * X[:, v]` for `batch` vectors entirely on the CPU with
/// Q16.16 `mul`/`mulh` arithmetic. The digital baseline of E7.
pub fn software_mvm(n: usize, batch: usize, layout: DramLayout) -> String {
    format!(
        "
        li   a0, {w}          # W base
        li   a1, {x}          # X base (current vector)
        li   a2, {y}          # Y base (current vector)
        li   a3, {n}          # n
        li   a4, {batch}      # vectors remaining
    vec_loop:
        beqz a4, done_all
        li   t0, 0            # i = 0
    row_loop:
        bge  t0, a3, next_vec
        li   t1, 0            # acc
        mul  t2, t0, a3
        slli t2, t2, 2
        add  t2, t2, a0       # &W[i][0]
        mv   t3, a1           # &x[0]
        li   t4, 0            # j = 0
    col_loop:
        bge  t4, a3, store_y
        lw   t5, (t2)
        lw   t6, (t3)
        mulh s0, t5, t6       # Q16.16 multiply: (t5*t6) >> 16
        mul  s1, t5, t6
        slli s0, s0, 16
        srli s1, s1, 16
        or   s1, s1, s0
        add  t1, t1, s1
        addi t2, t2, 4
        addi t3, t3, 4
        addi t4, t4, 1
        j    col_loop
    store_y:
        slli s0, t0, 2
        add  s0, s0, a2
        sw   t1, (s0)
        addi t0, t0, 1
        j    row_loop
    next_vec:
        slli s0, a3, 2
        add  a1, a1, s0
        add  a2, a2, s0
        addi a4, a4, -1
        j    vec_loop
    done_all:
        ecall
        ",
        w = layout.w_addr,
        x = layout.x_addr,
        y = layout.y_addr,
        n = n,
        batch = batch,
    )
}

/// Generates the accelerator-offload driver: DMA the input block from
/// DRAM to SPM, ring the accelerator doorbell for the whole batch, sleep
/// in `wfi` until the completion interrupt, then DMA the results back.
/// The weights are assumed pre-programmed into the photonic core.
pub fn accel_offload(n: usize, batch: usize, layout: DramLayout) -> String {
    let bytes = (n * batch * 4) as u32;
    let spm_in = SPM_BASE + 0x100;
    let spm_out = SPM_BASE + 0x100 + bytes;
    format!(
        "
        # --- DMA inputs DRAM -> SPM -------------------------------
        li   t0, {dma}
        li   t1, {x}
        sw   t1, 8(t0)        # SRC
        li   t1, {spm_in}
        sw   t1, 12(t0)       # DST
        li   t1, {bytes}
        sw   t1, 16(t0)       # LEN
        li   t1, 1
        sw   t1, 20(t0)       # IRQ_ENABLE
        sw   t1, 0(t0)        # start
        wfi
        li   t1, 2
        sw   t1, 0(t0)        # ack
        # --- run the photonic job ---------------------------------
        li   t0, {accel}
        li   t1, {spm_in}
        sw   t1, 12(t0)       # IN_ADDR
        li   t1, {spm_out}
        sw   t1, 16(t0)       # OUT_ADDR
        li   t1, {batch}
        sw   t1, 20(t0)       # BATCH
        li   t1, 1
        sw   t1, 24(t0)       # IRQ_ENABLE
        sw   t1, 0(t0)        # doorbell
        wfi
        li   t1, 2
        sw   t1, 0(t0)        # clear done
        # --- DMA results SPM -> DRAM ------------------------------
        li   t0, {dma}
        li   t1, {spm_out}
        sw   t1, 8(t0)        # SRC
        li   t1, {y}
        sw   t1, 12(t0)       # DST
        li   t1, {bytes}
        sw   t1, 16(t0)       # LEN
        li   t1, 1
        sw   t1, 0(t0)        # start
        wfi
        li   t1, 2
        sw   t1, 0(t0)        # ack
        ecall
        ",
        dma = DMA_BASE,
        accel = ACCEL_BASE,
        x = layout.x_addr,
        y = layout.y_addr,
        spm_in = spm_in,
        spm_out = spm_out,
        bytes = bytes,
        batch = batch,
    )
}

/// Generates the **guarded** accelerator-offload driver: the runtime
/// fault-tolerance protocol layered over [`accel_offload`].
///
/// The batch is processed in blocks of `cfg.block` vectors. Per block:
///
/// 1. DMA the input block DRAM → SPM (bounded status poll, no IRQ);
/// 2. verify the staged inputs against the host-precomputed wrapping
///    checksums at `layout.xsum_addr` (catches DMA/SPM corruption);
/// 3. run the photonic job with the device watchdog armed, poll for
///    completion, and check the device `ERROR` register (watchdog
///    timeout, busy-reject, SPM range, …);
/// 4. DMA the result block SPM → DRAM and verify every output vector
///    with the ABFT plain checksum: `|Σy − c·x| ≤ tolerance`, with both
///    sides read back from DRAM;
/// 5. on any failure: capped exponential backoff and retry; from retry
///    `cfg.recal_after` on, first request a device **recalibration**
///    (CTRL bit 3 — reprograms drifted PCM weights); after
///    `cfg.max_retries`, **degrade gracefully** to the software Q16.16
///    MVM for the block (weights read from `layout.w_addr`).
///
/// A final verification sweep re-checks every output vector (catching
/// late corruption of already-written results) and repairs failures by
/// software recompute. The driver then writes the structured fault
/// record `[detections, recoveries, fallbacks, last_device_error]` to
/// `layout.fault_addr`, and — when any block had to fall back — reports
/// a checksum failure into the device `ERROR` register, raising the
/// error interrupt for the host.
///
/// Register budget: `s0` block/vector index, `s1` retries, `s2`
/// detections, `s3` recoveries, `s4` fallbacks, `s5` checksum scratch,
/// `s6` last device error code; subroutines clobber only `t*`/`a*`.
///
/// This driver targets a **single device** (PE slot 0); its retry loop
/// is bounded per block (`cfg.max_retries`, then software fallback), so
/// a permanently-faulted device degrades every block to software but can
/// never livelock the driver. In a multi-PE system, use
/// [`accel_offload_guarded_at`] to point the same protocol at another
/// slot (e.g. when slot 0 is known-bad), or the fleet-level router in
/// [`crate::serve`], which spreads retries across devices and ejects a
/// PE after its retry budget.
///
/// # Panics
///
/// Panics if `n == 0`, `batch == 0`, or `cfg.block` does not divide
/// `batch`.
pub fn accel_offload_guarded(
    n: usize,
    batch: usize,
    layout: DramLayout,
    cfg: &GuardConfig,
) -> String {
    accel_offload_guarded_at(0, n, batch, layout, cfg)
}

/// [`accel_offload_guarded`] retargeted at PE slot `pe_slot`
/// (`ACCEL_BASE + PE_STRIDE * pe_slot`): the whole guarded protocol —
/// watchdog, ABFT verify, bounded retry, recalibration, software
/// fallback — against one specific fleet member. Slot 0 is the primary
/// accelerator; slots ≥ 1 must have been added with
/// [`crate::system::Platform::add_pe`].
///
/// # Panics
///
/// Panics on an empty job or a block that does not divide the batch.
pub fn accel_offload_guarded_at(
    pe_slot: usize,
    n: usize,
    batch: usize,
    layout: DramLayout,
    cfg: &GuardConfig,
) -> String {
    assert!(n > 0 && batch > 0, "guarded offload: empty job");
    let accel_base = ACCEL_BASE + PE_STRIDE * pe_slot as u32;
    let block = cfg.block.max(1).min(batch);
    assert_eq!(
        batch % block,
        0,
        "guarded offload: block ({block}) must divide batch ({batch})"
    );
    let nblocks = batch / block;
    let vec_bytes = (n * 4) as u32;
    let block_bytes = (block * n * 4) as u32;
    let spm_in = SPM_BASE + 0x100;
    let spm_out = spm_in + block_bytes;
    format!(
        "
        # ==== guarded offload: init ===============================
        li   s2, 0            # detections
        li   s3, 0            # recoveries
        li   s4, 0            # fallback blocks
        li   s6, 0            # last device error code
        li   t0, {dma}
        sw   zero, 20(t0)     # DMA completion IRQ off (polled mode)
        li   t0, {accel}
        li   t1, 2
        sw   t1, 24(t0)       # IRQ_ENABLE: error line only
        li   t1, 6
        sw   t1, 0(t0)        # CTRL: clear stale done + errors
        li   t1, {watchdog}
        sw   t1, 36(t0)       # WATCHDOG deadline
        li   s0, 0            # block index
    blk_loop:
        li   t0, {nblocks}
        bge  s0, t0, final_sweep
        li   s1, 0            # retries for this block
    attempt:
        # ---- stage inputs: DMA x[block] DRAM -> SPM --------------
        li   a3, {block_bytes}
        mul  a4, s0, a3
        li   a0, {x}
        add  a0, a0, a4
        li   a1, {spm_in}
        mv   a2, a3
        call dma_copy
        bnez a0, fail
        # ---- verify staged inputs against host checksums ---------
        li   a5, 0            # vector-in-block index
    ichk_loop:
        li   t0, {block}
        bge  a5, t0, ichk_ok
        li   t0, {vec_bytes}
        mul  t1, a5, t0
        li   a0, {spm_in}
        add  a0, a0, t1
        li   a1, {n}
        call sum_words
        li   t0, {block}
        mul  t1, s0, t0
        add  t1, t1, a5
        slli t1, t1, 2
        li   t2, {xsum}
        add  t2, t2, t1
        lw   t3, (t2)
        bne  a0, t3, fail
        addi a5, a5, 1
        j    ichk_loop
    ichk_ok:
        # ---- photonic job for this block (watchdog armed) --------
        li   t0, {accel}
        li   t1, 4
        sw   t1, 0(t0)        # clear any stale error latch
        li   t1, {spm_in}
        sw   t1, 12(t0)       # IN_ADDR
        li   t1, {spm_out}
        sw   t1, 16(t0)       # OUT_ADDR
        li   t1, {block}
        sw   t1, 20(t0)       # BATCH
        li   t1, 1
        sw   t1, 0(t0)        # doorbell
        li   t2, {poll_limit}
    job_poll:
        lw   t3, 4(t0)        # STATUS
        andi t4, t3, 2
        bnez t4, job_done
        addi t2, t2, -1
        bnez t2, job_poll
        j    fail             # lost doorbell / dead device
    job_done:
        li   t1, 2
        sw   t1, 0(t0)        # clear done
        lw   t3, 32(t0)       # ERROR
        beqz t3, job_ok
        mv   s6, t3           # remember the device fault code
        li   t1, 4
        sw   t1, 0(t0)        # acknowledge it
        j    fail
    job_ok:
        # ---- DMA y[block] SPM -> DRAM ----------------------------
        li   a3, {block_bytes}
        mul  a4, s0, a3
        li   a0, {spm_out}
        li   a1, {y}
        add  a1, a1, a4
        mv   a2, a3
        call dma_copy
        bnez a0, fail
        # ---- ABFT verify: |sum(y_v) - c.x_v| <= tol, from DRAM ---
        li   a5, 0
    ochk_loop:
        li   t0, {block}
        bge  a5, t0, blk_pass
        li   t0, {block_bytes}
        mul  t1, s0, t0
        li   t2, {vec_bytes}
        mul  t3, a5, t2
        add  t1, t1, t3       # byte offset of vector v
        li   a0, {y}
        add  a0, a0, t1
        li   a1, {n}
        call sum_words
        mv   s5, a0           # lhs = sum(y_v)
        li   t0, {block_bytes}
        mul  t1, s0, t0
        li   t2, {vec_bytes}
        mul  t3, a5, t2
        add  t1, t1, t3
        li   a0, {x}
        add  a0, a0, t1
        li   a1, {c}
        li   a2, {n}
        call dot_fixed        # rhs = c . x_v
        sub  t0, s5, a0
        srai t1, t0, 31
        xor  t0, t0, t1
        sub  t0, t0, t1       # |lhs - rhs|
        li   t1, {tol}
        bgt  t0, t1, fail
        addi a5, a5, 1
        j    ochk_loop
    blk_pass:
        beqz s1, blk_next
        addi s3, s3, 1        # clean after retries: recovered
    blk_next:
        addi s0, s0, 1
        j    blk_loop
    fail:
        addi s2, s2, 1        # fault detected
        li   t0, {max_retries}
        bge  s1, t0, fallback
        addi s1, s1, 1
        li   t0, {recal_after}
        blt  s1, t0, backoff
        # ---- repeated failures: recalibrate the device -----------
        li   t0, {accel}
        li   t1, 8
        sw   t1, 0(t0)        # CTRL: recalibration request
        li   t2, {poll_limit}
    recal_poll:
        lw   t3, 4(t0)        # STATUS
        andi t4, t3, 2
        bnez t4, recal_done
        addi t2, t2, -1
        bnez t2, recal_poll
        j    backoff          # recal never completed; retry anyway
    recal_done:
        li   t1, 2
        sw   t1, 0(t0)        # clear recal completion
    backoff:
        # ---- capped exponential backoff: base << (retries-1) -----
        li   t0, {backoff_base}
        mv   t1, s1
    bo_shift:
        addi t1, t1, -1
        beqz t1, bo_cap
        slli t0, t0, 1
        j    bo_shift
    bo_cap:
        li   t1, {backoff_cap}
        ble  t0, t1, bo_spin
        mv   t0, t1
    bo_spin:
        addi t0, t0, -1
        bnez t0, bo_spin
        j    attempt
    fallback:
        # ---- retries exhausted: software MVM for the block -------
        li   a3, {block_bytes}
        mul  a4, s0, a3
        li   a0, {w}
        li   a1, {x}
        add  a1, a1, a4
        li   a2, {y}
        add  a2, a2, a4
        li   a3, {n}
        li   a4, {block}
        call soft_block
        addi s4, s4, 1        # degraded block
        j    blk_next
    final_sweep:
        # ==== end-to-end sweep: re-verify every output vector =====
        li   s0, 0            # vector index over the whole batch
    fs_loop:
        li   t0, {batch}
        bge  s0, t0, fs_done
        li   t0, {vec_bytes}
        mul  t1, s0, t0
        li   a0, {y}
        add  a0, a0, t1
        li   a1, {n}
        call sum_words
        mv   s5, a0
        li   t0, {vec_bytes}
        mul  t1, s0, t0
        li   a0, {x}
        add  a0, a0, t1
        li   a1, {c}
        li   a2, {n}
        call dot_fixed
        sub  t0, s5, a0
        srai t1, t0, 31
        xor  t0, t0, t1
        sub  t0, t0, t1
        li   t1, {tol}
        ble  t0, t1, fs_next
        # late corruption: detected; repair the vector in software
        addi s2, s2, 1
        li   t0, {vec_bytes}
        mul  a4, s0, t0
        li   a0, {w}
        li   a1, {x}
        add  a1, a1, a4
        li   a2, {y}
        add  a2, a2, a4
        li   a3, {n}
        li   a4, 1
        call soft_block
        addi s3, s3, 1        # repaired
    fs_next:
        addi s0, s0, 1
        j    fs_loop
    fs_done:
        # ==== structured fault record + error IRQ =================
        li   t0, {fault}
        sw   s2, 0(t0)        # detections
        sw   s3, 4(t0)        # recoveries
        sw   s4, 8(t0)        # fallback blocks
        sw   s6, 12(t0)       # last device error code
        beqz s4, fw_exit
        li   t0, {accel}
        li   t1, 1
        sw   t1, 32(t0)       # report CHECKSUM: record + error IRQ
    fw_exit:
        ecall

        # ---- dma_copy(a0 = src, a1 = dst, a2 = len) -> a0 = 0 ok --
    dma_copy:
        li   t0, {dma}
        sw   a0, 8(t0)        # SRC
        sw   a1, 12(t0)       # DST
        sw   a2, 16(t0)       # LEN
        li   t1, 1
        sw   t1, 0(t0)        # start
        li   t2, {poll_limit}
    dc_poll:
        lw   t3, 4(t0)        # STATUS
        andi t3, t3, 2
        bnez t3, dc_done
        addi t2, t2, -1
        bnez t2, dc_poll
        li   a0, 1
        ret
    dc_done:
        li   t1, 2
        sw   t1, 0(t0)        # ack
        li   a0, 0
        ret

        # ---- sum_words(a0 = base, a1 = count) -> a0 wrapping sum --
    sum_words:
        li   t0, 0
    sw_loop:
        beqz a1, sw_done
        lw   t1, (a0)
        add  t0, t0, t1
        addi a0, a0, 4
        addi a1, a1, -1
        j    sw_loop
    sw_done:
        mv   a0, t0
        ret

        # ---- dot_fixed(a0 = x, a1 = c, a2 = n) -> a0 = c.x Q16.16 -
    dot_fixed:
        li   t0, 0
    df_loop:
        beqz a2, df_done
        lw   t1, (a0)
        lw   t2, (a1)
        mulh t3, t1, t2
        mul  t4, t1, t2
        slli t3, t3, 16
        srli t4, t4, 16
        or   t4, t4, t3
        add  t0, t0, t4
        addi a0, a0, 4
        addi a1, a1, 4
        addi a2, a2, -1
        j    df_loop
    df_done:
        mv   a0, t0
        ret

        # ---- soft_block(a0=W, a1=x, a2=y, a3=n, a4=count) ---------
    soft_block:
        beqz a4, sb_done
        li   t0, 0            # row i
    sb_row:
        bge  t0, a3, sb_next
        li   t1, 0            # acc
        mul  t2, t0, a3
        slli t2, t2, 2
        add  t2, t2, a0       # &W[i][0]
        mv   t3, a1
        li   t4, 0            # col j
    sb_col:
        bge  t4, a3, sb_store
        lw   t5, (t2)
        lw   t6, (t3)
        mulh a6, t5, t6
        mul  a7, t5, t6
        slli a6, a6, 16
        srli a7, a7, 16
        or   a7, a7, a6
        add  t1, t1, a7
        addi t2, t2, 4
        addi t3, t3, 4
        addi t4, t4, 1
        j    sb_col
    sb_store:
        slli a6, t0, 2
        add  a6, a6, a2
        sw   t1, (a6)
        addi t0, t0, 1
        j    sb_row
    sb_next:
        slli a6, a3, 2
        add  a1, a1, a6
        add  a2, a2, a6
        addi a4, a4, -1
        j    soft_block
    sb_done:
        ret
        ",
        dma = DMA_BASE,
        accel = accel_base,
        w = layout.w_addr,
        x = layout.x_addr,
        y = layout.y_addr,
        c = layout.c_addr,
        xsum = layout.xsum_addr,
        fault = layout.fault_addr,
        spm_in = spm_in,
        spm_out = spm_out,
        n = n,
        batch = batch,
        block = block,
        nblocks = nblocks,
        vec_bytes = vec_bytes,
        block_bytes = block_bytes,
        tol = cfg.tolerance,
        max_retries = cfg.max_retries,
        recal_after = cfg.recal_after.max(1),
        backoff_base = cfg.backoff_base.max(1),
        backoff_cap = cfg.backoff_cap.max(1),
        watchdog = cfg.watchdog,
        poll_limit = cfg.poll_limit.max(1),
    )
}

/// Generates the **cluster work-queue scheduler**: firmware that shards
/// a GeMM (`batch` input vectors against the common pre-programmed
/// weight matrix) across `pes` processing elements — slot 0 is the
/// primary accelerator, slots 1..`pes` the extra PEs — through an
/// in-DRAM work queue.
///
/// The batch is cut into `batch / tile` tiles of `tile` vectors. The
/// scheduler keeps one in-flight table entry per PE at
/// `layout.fault_addr + 0x100` (`tile_index + 1`, 0 = idle) and sweeps
/// the fleet round-robin: a finished PE has its results DMA'd from its
/// private SPM window back to `y` and is immediately re-armed with the
/// next tile; an idle PE gets the next tile staged (DMA `x` → its SPM
/// window) and its doorbell rung. The sweep repeats until every tile has
/// been collected, so faster PEs naturally steal more tiles — the same
/// self-balancing shape the host-side [`crate::serve`] router uses.
///
/// Every PE owns a disjoint `2 * tile * n * 4`-byte operand window in
/// the scratchpad (inputs then outputs), so transfers and photonic jobs
/// on different PEs overlap freely. Completion is polled (no IRQ): the
/// scheduler is itself the idle loop. This scheduler assumes healthy
/// PEs — fault tolerance belongs to [`accel_offload_guarded`] (single
/// device) and the [`crate::serve`] fleet router; a hung DMA parks the
/// firmware on a `j`-to-self so the failure surfaces as a run timeout
/// instead of silent partial results.
///
/// # Panics
///
/// Panics if the job is empty, `pes == 0`, `tile` does not divide
/// `batch`, or the per-PE operand windows would overflow the scratchpad.
pub fn cluster_offload(
    n: usize,
    batch: usize,
    pes: usize,
    tile: usize,
    layout: DramLayout,
) -> String {
    assert!(n > 0 && batch > 0, "cluster offload: empty job");
    assert!(pes > 0, "cluster offload: need at least one PE");
    let tile = tile.max(1).min(batch);
    assert_eq!(
        batch % tile,
        0,
        "cluster offload: tile ({tile}) must divide batch ({batch})"
    );
    let ntiles = batch / tile;
    let tile_bytes = (tile * n * 4) as u32;
    let pe_span = 2 * tile_bytes;
    let spm_in0 = SPM_BASE + 0x100;
    assert!(
        0x100 + pes as u32 * pe_span <= crate::system::SPM_SIZE as u32,
        "cluster offload: {pes} PE operand windows overflow the scratchpad"
    );
    let table = layout.fault_addr + 0x100;
    format!(
        "
        # ==== cluster work-queue scheduler ========================
        li   t0, {dma}
        sw   zero, 20(t0)     # DMA polled mode (no IRQ)
        li   s1, 0            # next tile to dispatch
        li   s2, 0            # tiles collected
        li   t0, 0
        li   t1, {table}
    wq_init:                  # in-flight table: all PEs idle
        slli t2, t0, 2
        add  t2, t2, t1
        sw   zero, (t2)
        addi t0, t0, 1
        li   t2, {pes}
        blt  t0, t2, wq_init
    wq_sweep:
        li   s0, 0            # PE slot
    wq_pe:
        li   t0, {stride}
        mul  t1, s0, t0
        li   s4, {accel}
        add  s4, s4, t1       # s4 = MMR base of PE s0
        slli t0, s0, 2
        li   s5, {table}
        add  s5, s5, t0       # s5 = &inflight[s0]
        lw   s6, (s5)         # s6 = in-flight tile + 1 (0 = idle)
        beqz s6, wq_dispatch
        # ---- PE busy: collect if its job finished ----------------
        lw   t0, 4(s4)        # STATUS
        andi t0, t0, 2
        beqz t0, wq_next
        li   t0, 2
        sw   t0, 0(s4)        # ack done
        addi s6, s6, -1       # tile index
        li   t0, {pe_span}
        mul  t1, s0, t0
        li   a0, {spm_out0}
        add  a0, a0, t1       # src: this PE's result window
        li   t0, {tile_bytes}
        mul  a1, s6, t0
        li   t1, {y}
        add  a1, a1, t1       # dst: Y + tile * tile_bytes
        li   a2, {tile_bytes}
        call dma_copy
        bnez a0, wq_hang
        sw   zero, (s5)       # PE idle again
        addi s2, s2, 1
    wq_dispatch:
        # ---- PE idle: shard the next tile onto it ----------------
        li   t0, {ntiles}
        bge  s1, t0, wq_next
        li   t0, {tile_bytes}
        mul  a0, s1, t0
        li   t1, {x}
        add  a0, a0, t1       # src: X + tile * tile_bytes
        li   t0, {pe_span}
        mul  a1, s0, t0
        li   t1, {spm_in0}
        add  a1, a1, t1       # dst: this PE's input window
        li   a2, {tile_bytes}
        call dma_copy
        bnez a0, wq_hang
        li   t0, {pe_span}
        mul  t1, s0, t0
        li   t2, {spm_in0}
        add  t2, t2, t1
        sw   t2, 12(s4)       # IN_ADDR
        li   t3, {tile_bytes}
        add  t2, t2, t3
        sw   t2, 16(s4)       # OUT_ADDR
        li   t0, {tile}
        sw   t0, 20(s4)       # BATCH
        sw   zero, 24(s4)     # polled: completion IRQ off
        li   t0, 1
        sw   t0, 0(s4)        # doorbell
        addi t0, s1, 1
        sw   t0, (s5)         # inflight[pe] = tile + 1
        addi s1, s1, 1
    wq_next:
        addi s0, s0, 1
        li   t0, {pes}
        blt  s0, t0, wq_pe
        li   t0, {ntiles}
        blt  s2, t0, wq_sweep
        ecall
    wq_hang:
        j    wq_hang          # hung DMA: park; surfaces as timeout

        # ---- dma_copy(a0 = src, a1 = dst, a2 = len) -> a0 = 0 ok --
    dma_copy:
        li   t0, {dma}
        sw   a0, 8(t0)        # SRC
        sw   a1, 12(t0)       # DST
        sw   a2, 16(t0)       # LEN
        li   t1, 1
        sw   t1, 0(t0)        # start
        li   t2, {poll_limit}
    dc_poll:
        lw   t3, 4(t0)        # STATUS
        andi t3, t3, 2
        bnez t3, dc_done
        addi t2, t2, -1
        bnez t2, dc_poll
        li   a0, 1
        ret
    dc_done:
        li   t1, 2
        sw   t1, 0(t0)        # ack
        li   a0, 0
        ret
        ",
        dma = DMA_BASE,
        accel = ACCEL_BASE,
        stride = PE_STRIDE,
        table = table,
        x = layout.x_addr,
        y = layout.y_addr,
        spm_in0 = spm_in0,
        spm_out0 = spm_in0 + tile_bytes,
        pes = pes,
        tile = tile,
        ntiles = ntiles,
        tile_bytes = tile_bytes,
        pe_span = pe_span,
        poll_limit = 4096,
    )
}

/// Generates a two-layer neural-network firmware for a 2-PE cluster:
/// `y = W2 * relu(W1 * x)` with `W1` on PE 0, `W2` on PE 1, the ReLU
/// applied by the host on the scratchpad-resident intermediate, and DMA
/// at both ends. This is the paper's Fig. 3 PE-cluster flow: MMRs
/// coordinate "communication between the accelerator and the host, as
/// well as between multiple accelerators (i.e., processing elements)".
pub fn two_layer_offload(n: usize, layout: DramLayout) -> String {
    let bytes = (n * 4) as u32;
    let spm_in = SPM_BASE + 0x100;
    let spm_mid = spm_in + bytes;
    let spm_out = spm_mid + bytes;
    let pe1 = ACCEL_BASE + PE_STRIDE;
    format!(
        "
        # --- DMA x: DRAM -> SPM -----------------------------------
        li   t0, {dma}
        li   t1, {x}
        sw   t1, 8(t0)
        li   t1, {spm_in}
        sw   t1, 12(t0)
        li   t1, {bytes}
        sw   t1, 16(t0)
        li   t1, 1
        sw   t1, 20(t0)
        sw   t1, 0(t0)
        wfi
        li   t1, 2
        sw   t1, 0(t0)
        # --- layer 1 on PE 0 ---------------------------------------
        li   t0, {pe0}
        li   t1, {spm_in}
        sw   t1, 12(t0)
        li   t1, {spm_mid}
        sw   t1, 16(t0)
        li   t1, 1
        sw   t1, 20(t0)
        sw   t1, 24(t0)
        sw   t1, 0(t0)
        wfi
        li   t1, 2
        sw   t1, 0(t0)
        # --- host ReLU over the intermediate -----------------------
        li   t0, {spm_mid}
        li   t2, {n}
    relu:
        lw   t1, (t0)
        srai t3, t1, 31       # all-ones if negative
        not  t3, t3
        and  t1, t1, t3
        sw   t1, (t0)
        addi t0, t0, 4
        addi t2, t2, -1
        bnez t2, relu
        # --- layer 2 on PE 1 ---------------------------------------
        li   t0, {pe1}
        li   t1, {spm_mid}
        sw   t1, 12(t0)
        li   t1, {spm_out}
        sw   t1, 16(t0)
        li   t1, 1
        sw   t1, 20(t0)
        sw   t1, 24(t0)
        sw   t1, 0(t0)
        wfi
        li   t1, 2
        sw   t1, 0(t0)
        # --- DMA y: SPM -> DRAM ------------------------------------
        li   t0, {dma}
        li   t1, {spm_out}
        sw   t1, 8(t0)
        li   t1, {y}
        sw   t1, 12(t0)
        li   t1, {bytes}
        sw   t1, 16(t0)
        li   t1, 1
        sw   t1, 0(t0)
        wfi
        li   t1, 2
        sw   t1, 0(t0)
        ecall
        ",
        dma = DMA_BASE,
        pe0 = ACCEL_BASE,
        pe1 = pe1,
        x = layout.x_addr,
        y = layout.y_addr,
        spm_in = spm_in,
        spm_mid = spm_mid,
        spm_out = spm_out,
        bytes = bytes,
        n = n,
    )
}

/// The software twin of [`two_layer_offload`]: both MVMs and the ReLU in
/// fixed-point on the CPU. `W1` at `layout.w_addr`, `W2` immediately
/// after it (`n*n` words later).
pub fn two_layer_software(n: usize, layout: DramLayout) -> String {
    let w2_addr = layout.w_addr + (n * n * 4) as u32;
    let mid_addr = layout.y_addr + (n * 4) as u32; // scratch after y
    format!(
        "
        # mid = W1 * x
        li   a0, {w1}
        li   a1, {x}
        li   a2, {mid}
        li   a3, {n}
        call mvm
        # relu(mid)
        li   t0, {mid}
        li   t2, {n}
    relu:
        lw   t1, (t0)
        srai t3, t1, 31
        not  t3, t3
        and  t1, t1, t3
        sw   t1, (t0)
        addi t0, t0, 4
        addi t2, t2, -1
        bnez t2, relu
        # y = W2 * mid
        li   a0, {w2}
        li   a1, {mid}
        li   a2, {y}
        li   a3, {n}
        call mvm
        ecall

        # ---- mvm(a0 = W, a1 = x, a2 = y, a3 = n) -------------------
    mvm:
        li   t0, 0            # i
    mvm_row:
        bge  t0, a3, mvm_done
        li   t1, 0            # acc
        mul  t2, t0, a3
        slli t2, t2, 2
        add  t2, t2, a0
        mv   t3, a1
        li   t4, 0
    mvm_col:
        bge  t4, a3, mvm_store
        lw   t5, (t2)
        lw   t6, (t3)
        mulh s0, t5, t6
        mul  s1, t5, t6
        slli s0, s0, 16
        srli s1, s1, 16
        or   s1, s1, s0
        add  t1, t1, s1
        addi t2, t2, 4
        addi t3, t3, 4
        addi t4, t4, 1
        j    mvm_col
    mvm_store:
        slli s0, t0, 2
        add  s0, s0, a2
        sw   t1, (s0)
        addi t0, t0, 1
        j    mvm_row
    mvm_done:
        ret
        ",
        w1 = layout.w_addr,
        w2 = w2_addr,
        x = layout.x_addr,
        y = layout.y_addr,
        mid = mid_addr,
        n = n,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::{RunOutcome, System};
    use neuropulsim_linalg::RMatrix;
    use neuropulsim_riscv::cpu::Halt;

    fn test_matrix(n: usize) -> RMatrix {
        RMatrix::from_fn(n, n, |i, j| {
            0.5 * ((i as f64 - j as f64) * 0.37).sin() + if i == j { 0.5 } else { 0.0 }
        })
    }

    fn write_operands(sys: &mut System, w: &RMatrix, x: &[Vec<f64>], layout: DramLayout) {
        let n = w.rows();
        let w_flat: Vec<f64> = (0..n * n).map(|k| w.as_slice()[k]).collect();
        sys.write_fixed_vector(layout.w_addr, &w_flat);
        for (v, col) in x.iter().enumerate() {
            sys.write_fixed_vector(layout.x_addr + (v * n * 4) as u32, col);
        }
    }

    #[test]
    fn software_mvm_computes_correctly() {
        let n = 4;
        let batch = 3;
        let w = test_matrix(n);
        let x: Vec<Vec<f64>> = (0..batch)
            .map(|v| {
                (0..n)
                    .map(|k| 0.25 * (v as f64 + 1.0) * ((k + 1) as f64) / n as f64)
                    .collect()
            })
            .collect();
        let layout = DramLayout::default();
        let mut sys = System::new();
        write_operands(&mut sys, &w, &x, layout);
        sys.load_firmware_source(&software_mvm(n, batch, layout));
        let report = sys.run(10_000_000);
        assert_eq!(report.outcome, RunOutcome::Halted(Halt::Ecall));
        for (v, col) in x.iter().enumerate() {
            let want = w.mul_vec(col);
            let got = sys.read_fixed_vector(layout.y_addr + (v * n * 4) as u32, n);
            for (i, (a, b)) in got.iter().zip(&want).enumerate() {
                assert!((a - b).abs() < 1e-3, "vector {v} element {i}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn offload_matches_software_results() {
        let n = 4;
        let batch = 3;
        let w = test_matrix(n);
        let x: Vec<Vec<f64>> = (0..batch)
            .map(|v| (0..n).map(|k| 0.1 * ((v * n + k) as f64).cos()).collect())
            .collect();
        let layout = DramLayout::default();
        let mut sys = System::new();
        sys.platform.accel.load_matrix(&w);
        write_operands(&mut sys, &w, &x, layout);
        sys.load_firmware_source(&accel_offload(n, batch, layout));
        let report = sys.run(10_000_000);
        assert_eq!(report.outcome, RunOutcome::Halted(Halt::Ecall));
        for (v, col) in x.iter().enumerate() {
            let want = w.mul_vec(col);
            let got = sys.read_fixed_vector(layout.y_addr + (v * n * 4) as u32, n);
            for (i, (a, b)) in got.iter().zip(&want).enumerate() {
                assert!((a - b).abs() < 1e-3, "vector {v} element {i}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn two_layer_cluster_matches_digital_reference() {
        let n = 4;
        let layout = DramLayout::default();
        let w1 = test_matrix(n);
        let w2 = RMatrix::from_fn(n, n, |i, j| 0.4 * ((2 * i + j) as f64 * 0.23).cos());
        let x: Vec<f64> = (0..n).map(|k| 0.3 * (k as f64 - 1.5)).collect();

        let mut sys = System::new();
        sys.platform.accel.load_matrix(&w1);
        let pe1_base = sys.platform.add_pe();
        assert_eq!(
            pe1_base,
            crate::system::ACCEL_BASE + crate::system::PE_STRIDE
        );
        sys.platform.extra_pes[0].load_matrix(&w2);
        sys.write_fixed_vector(layout.x_addr, &x);
        sys.load_firmware_source(&two_layer_offload(n, layout));
        let report = sys.run(10_000_000);
        assert_eq!(report.outcome, RunOutcome::Halted(Halt::Ecall));

        let mid: Vec<f64> = w1.mul_vec(&x).iter().map(|&v| v.max(0.0)).collect();
        let want = w2.mul_vec(&mid);
        let got = sys.read_fixed_vector(layout.y_addr, n);
        for (i, (a, b)) in got.iter().zip(&want).enumerate() {
            assert!((a - b).abs() < 2e-3, "element {i}: {a} vs {b}");
        }
    }

    #[test]
    fn two_layer_software_matches_digital_reference() {
        let n = 4;
        let layout = DramLayout::default();
        let w1 = test_matrix(n);
        let w2 = RMatrix::from_fn(n, n, |i, j| 0.4 * ((2 * i + j) as f64 * 0.23).cos());
        let x: Vec<f64> = (0..n).map(|k| 0.3 * (k as f64 - 1.5)).collect();

        let mut sys = System::new();
        sys.write_fixed_vector(layout.w_addr, w1.as_slice());
        sys.write_fixed_vector(layout.w_addr + (n * n * 4) as u32, w2.as_slice());
        sys.write_fixed_vector(layout.x_addr, &x);
        sys.load_firmware_source(&two_layer_software(n, layout));
        let report = sys.run(10_000_000);
        assert_eq!(report.outcome, RunOutcome::Halted(Halt::Ecall));

        let mid: Vec<f64> = w1.mul_vec(&x).iter().map(|&v| v.max(0.0)).collect();
        let want = w2.mul_vec(&mid);
        let got = sys.read_fixed_vector(layout.y_addr, n);
        for (i, (a, b)) in got.iter().zip(&want).enumerate() {
            assert!((a - b).abs() < 2e-3, "element {i}: {a} vs {b}");
        }
    }

    #[test]
    fn offload_is_faster_than_software_at_scale() {
        let n = 8;
        let batch = 16;
        let w = test_matrix(n);
        let x: Vec<Vec<f64>> = (0..batch)
            .map(|v| (0..n).map(|k| 0.05 * ((v + k) as f64)).collect())
            .collect();
        let layout = DramLayout::default();

        let mut sw = System::new();
        write_operands(&mut sw, &w, &x, layout);
        sw.load_firmware_source(&software_mvm(n, batch, layout));
        let sw_report = sw.run(100_000_000);
        assert_eq!(sw_report.outcome, RunOutcome::Halted(Halt::Ecall));

        let mut hw = System::new();
        hw.platform.accel.load_matrix(&w);
        write_operands(&mut hw, &w, &x, layout);
        hw.load_firmware_source(&accel_offload(n, batch, layout));
        let hw_report = hw.run(100_000_000);
        assert_eq!(hw_report.outcome, RunOutcome::Halted(Halt::Ecall));

        assert!(
            hw_report.cycles < sw_report.cycles / 2,
            "offload {} cycles should beat software {} cycles",
            hw_report.cycles,
            sw_report.cycles
        );
    }

    #[test]
    fn cluster_offload_shards_a_gemm_across_three_pes() {
        let n = 4;
        let batch = 12;
        let tile = 2;
        let pes = 3;
        let layout = DramLayout::default();
        let w = test_matrix(n);
        let x: Vec<Vec<f64>> = (0..batch)
            .map(|v| {
                (0..n)
                    .map(|k| 0.15 * ((v * n + k) as f64 * 0.29).sin())
                    .collect()
            })
            .collect();
        let mut sys = System::new();
        sys.platform.accel.load_matrix(&w);
        for _ in 1..pes {
            sys.platform.add_pe();
        }
        for pe in &mut sys.platform.extra_pes {
            pe.load_matrix(&w);
        }
        write_operands(&mut sys, &w, &x, layout);
        sys.load_firmware_source(&cluster_offload(n, batch, pes, tile, layout));
        let report = sys.run(10_000_000);
        assert_eq!(report.outcome, RunOutcome::Halted(Halt::Ecall));
        for (v, col) in x.iter().enumerate() {
            let want = w.mul_vec(col);
            let got = sys.read_fixed_vector(layout.y_addr + (v * n * 4) as u32, n);
            for (i, (a, b)) in got.iter().zip(&want).enumerate() {
                assert!((a - b).abs() < 2e-3, "vector {v} element {i}: {a} vs {b}");
            }
        }
        // The work queue actually sharded: every fleet member pulled
        // tiles, and together they account for the whole batch.
        let mut jobs = vec![sys.platform.accel.jobs_completed];
        jobs.extend(sys.platform.extra_pes.iter().map(|pe| pe.jobs_completed));
        assert!(
            jobs.iter().all(|&j| j > 0),
            "idle PE in a saturated cluster: {jobs:?}"
        );
        let vectors: u64 = sys.platform.accel.vectors_processed
            + sys
                .platform
                .extra_pes
                .iter()
                .map(|pe| pe.vectors_processed)
                .sum::<u64>();
        assert_eq!(vectors, batch as u64);
    }

    #[test]
    fn cluster_offload_degenerates_to_a_single_pe() {
        let n = 4;
        let batch = 6;
        let layout = DramLayout::default();
        let w = test_matrix(n);
        let x: Vec<Vec<f64>> = (0..batch)
            .map(|v| (0..n).map(|k| 0.1 * ((v + 2 * k) as f64).cos()).collect())
            .collect();
        let mut sys = System::new();
        sys.platform.accel.load_matrix(&w);
        write_operands(&mut sys, &w, &x, layout);
        sys.load_firmware_source(&cluster_offload(n, batch, 1, 3, layout));
        let report = sys.run(10_000_000);
        assert_eq!(report.outcome, RunOutcome::Halted(Halt::Ecall));
        for (v, col) in x.iter().enumerate() {
            let want = w.mul_vec(col);
            let got = sys.read_fixed_vector(layout.y_addr + (v * n * 4) as u32, n);
            for (i, (a, b)) in got.iter().zip(&want).enumerate() {
                assert!((a - b).abs() < 2e-3, "vector {v} element {i}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn guarded_offload_runs_on_a_secondary_pe_while_primary_is_bricked() {
        use crate::guard::{read_guard_record, write_guard_operands, GuardRecord};
        use neuropulsim_core::abft::fixed_checksum_tolerance;

        let n = 8;
        let batch = 16;
        let layout = DramLayout::default();
        let w = test_matrix(n);
        let x: Vec<Vec<f64>> = (0..batch)
            .map(|v| {
                (0..n)
                    .map(|k| 0.2 * ((v * n + k) as f64 * 0.17).cos())
                    .collect()
            })
            .collect();
        let cfg = GuardConfig {
            tolerance: fixed_checksum_tolerance(n),
            ..GuardConfig::default()
        };
        let mut sys = System::new();
        // Slot 0 is permanently dead; the guarded protocol is simply
        // retargeted at slot 1 and must run clean there.
        sys.platform.accel.inject_hard_fault();
        sys.platform.add_pe();
        sys.platform.extra_pes[0].load_matrix(&w);
        write_guard_operands(&mut sys, &w, &x, layout);
        sys.load_firmware_source(&accel_offload_guarded_at(1, n, batch, layout, &cfg));
        let report = sys.run(10_000_000);
        assert_eq!(report.outcome, RunOutcome::Halted(Halt::Ecall));
        let rec = read_guard_record(&sys, layout);
        assert_eq!(rec, GuardRecord::default(), "clean run on the healthy PE");
        for (v, col) in x.iter().enumerate() {
            let want = w.mul_vec(col);
            let got = sys.read_fixed_vector(layout.y_addr + (v * n * 4) as u32, n);
            for (i, (a, b)) in got.iter().zip(&want).enumerate() {
                assert!((a - b).abs() < 2e-3, "vector {v} element {i}: {a} vs {b}");
            }
        }
        assert_eq!(
            sys.platform.accel.jobs_completed, 0,
            "the bricked primary must have done no work"
        );
        assert!(sys.platform.extra_pes[0].jobs_completed > 0);
    }
}

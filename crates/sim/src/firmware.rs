//! Canned RISC-V firmware for the system-level experiments (E7): a
//! software fixed-point MVM baseline and the accelerator-offload driver
//! (DMA in → doorbell → `wfi` → DMA out).

use crate::system::{ACCEL_BASE, DMA_BASE, PE_STRIDE, SPM_BASE};

/// Default DRAM layout used by the canned firmware.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramLayout {
    /// Weight matrix base (row-major Q16.16).
    pub w_addr: u32,
    /// Input vectors base (column after column).
    pub x_addr: u32,
    /// Output vectors base.
    pub y_addr: u32,
}

impl Default for DramLayout {
    fn default() -> Self {
        DramLayout {
            w_addr: 0x0010_0000,
            x_addr: 0x0020_0000,
            y_addr: 0x0030_0000,
        }
    }
}

/// Generates the software fixed-point MVM firmware: computes
/// `Y[:, v] = W * X[:, v]` for `batch` vectors entirely on the CPU with
/// Q16.16 `mul`/`mulh` arithmetic. The digital baseline of E7.
pub fn software_mvm(n: usize, batch: usize, layout: DramLayout) -> String {
    format!(
        "
        li   a0, {w}          # W base
        li   a1, {x}          # X base (current vector)
        li   a2, {y}          # Y base (current vector)
        li   a3, {n}          # n
        li   a4, {batch}      # vectors remaining
    vec_loop:
        beqz a4, done_all
        li   t0, 0            # i = 0
    row_loop:
        bge  t0, a3, next_vec
        li   t1, 0            # acc
        mul  t2, t0, a3
        slli t2, t2, 2
        add  t2, t2, a0       # &W[i][0]
        mv   t3, a1           # &x[0]
        li   t4, 0            # j = 0
    col_loop:
        bge  t4, a3, store_y
        lw   t5, (t2)
        lw   t6, (t3)
        mulh s0, t5, t6       # Q16.16 multiply: (t5*t6) >> 16
        mul  s1, t5, t6
        slli s0, s0, 16
        srli s1, s1, 16
        or   s1, s1, s0
        add  t1, t1, s1
        addi t2, t2, 4
        addi t3, t3, 4
        addi t4, t4, 1
        j    col_loop
    store_y:
        slli s0, t0, 2
        add  s0, s0, a2
        sw   t1, (s0)
        addi t0, t0, 1
        j    row_loop
    next_vec:
        slli s0, a3, 2
        add  a1, a1, s0
        add  a2, a2, s0
        addi a4, a4, -1
        j    vec_loop
    done_all:
        ecall
        ",
        w = layout.w_addr,
        x = layout.x_addr,
        y = layout.y_addr,
        n = n,
        batch = batch,
    )
}

/// Generates the accelerator-offload driver: DMA the input block from
/// DRAM to SPM, ring the accelerator doorbell for the whole batch, sleep
/// in `wfi` until the completion interrupt, then DMA the results back.
/// The weights are assumed pre-programmed into the photonic core.
pub fn accel_offload(n: usize, batch: usize, layout: DramLayout) -> String {
    let bytes = (n * batch * 4) as u32;
    let spm_in = SPM_BASE + 0x100;
    let spm_out = SPM_BASE + 0x100 + bytes;
    format!(
        "
        # --- DMA inputs DRAM -> SPM -------------------------------
        li   t0, {dma}
        li   t1, {x}
        sw   t1, 8(t0)        # SRC
        li   t1, {spm_in}
        sw   t1, 12(t0)       # DST
        li   t1, {bytes}
        sw   t1, 16(t0)       # LEN
        li   t1, 1
        sw   t1, 20(t0)       # IRQ_ENABLE
        sw   t1, 0(t0)        # start
        wfi
        li   t1, 2
        sw   t1, 0(t0)        # ack
        # --- run the photonic job ---------------------------------
        li   t0, {accel}
        li   t1, {spm_in}
        sw   t1, 12(t0)       # IN_ADDR
        li   t1, {spm_out}
        sw   t1, 16(t0)       # OUT_ADDR
        li   t1, {batch}
        sw   t1, 20(t0)       # BATCH
        li   t1, 1
        sw   t1, 24(t0)       # IRQ_ENABLE
        sw   t1, 0(t0)        # doorbell
        wfi
        li   t1, 2
        sw   t1, 0(t0)        # clear done
        # --- DMA results SPM -> DRAM ------------------------------
        li   t0, {dma}
        li   t1, {spm_out}
        sw   t1, 8(t0)        # SRC
        li   t1, {y}
        sw   t1, 12(t0)       # DST
        li   t1, {bytes}
        sw   t1, 16(t0)       # LEN
        li   t1, 1
        sw   t1, 0(t0)        # start
        wfi
        li   t1, 2
        sw   t1, 0(t0)        # ack
        ecall
        ",
        dma = DMA_BASE,
        accel = ACCEL_BASE,
        x = layout.x_addr,
        y = layout.y_addr,
        spm_in = spm_in,
        spm_out = spm_out,
        bytes = bytes,
        batch = batch,
    )
}

/// Generates a two-layer neural-network firmware for a 2-PE cluster:
/// `y = W2 * relu(W1 * x)` with `W1` on PE 0, `W2` on PE 1, the ReLU
/// applied by the host on the scratchpad-resident intermediate, and DMA
/// at both ends. This is the paper's Fig. 3 PE-cluster flow: MMRs
/// coordinate "communication between the accelerator and the host, as
/// well as between multiple accelerators (i.e., processing elements)".
pub fn two_layer_offload(n: usize, layout: DramLayout) -> String {
    let bytes = (n * 4) as u32;
    let spm_in = SPM_BASE + 0x100;
    let spm_mid = spm_in + bytes;
    let spm_out = spm_mid + bytes;
    let pe1 = ACCEL_BASE + PE_STRIDE;
    format!(
        "
        # --- DMA x: DRAM -> SPM -----------------------------------
        li   t0, {dma}
        li   t1, {x}
        sw   t1, 8(t0)
        li   t1, {spm_in}
        sw   t1, 12(t0)
        li   t1, {bytes}
        sw   t1, 16(t0)
        li   t1, 1
        sw   t1, 20(t0)
        sw   t1, 0(t0)
        wfi
        li   t1, 2
        sw   t1, 0(t0)
        # --- layer 1 on PE 0 ---------------------------------------
        li   t0, {pe0}
        li   t1, {spm_in}
        sw   t1, 12(t0)
        li   t1, {spm_mid}
        sw   t1, 16(t0)
        li   t1, 1
        sw   t1, 20(t0)
        sw   t1, 24(t0)
        sw   t1, 0(t0)
        wfi
        li   t1, 2
        sw   t1, 0(t0)
        # --- host ReLU over the intermediate -----------------------
        li   t0, {spm_mid}
        li   t2, {n}
    relu:
        lw   t1, (t0)
        srai t3, t1, 31       # all-ones if negative
        not  t3, t3
        and  t1, t1, t3
        sw   t1, (t0)
        addi t0, t0, 4
        addi t2, t2, -1
        bnez t2, relu
        # --- layer 2 on PE 1 ---------------------------------------
        li   t0, {pe1}
        li   t1, {spm_mid}
        sw   t1, 12(t0)
        li   t1, {spm_out}
        sw   t1, 16(t0)
        li   t1, 1
        sw   t1, 20(t0)
        sw   t1, 24(t0)
        sw   t1, 0(t0)
        wfi
        li   t1, 2
        sw   t1, 0(t0)
        # --- DMA y: SPM -> DRAM ------------------------------------
        li   t0, {dma}
        li   t1, {spm_out}
        sw   t1, 8(t0)
        li   t1, {y}
        sw   t1, 12(t0)
        li   t1, {bytes}
        sw   t1, 16(t0)
        li   t1, 1
        sw   t1, 0(t0)
        wfi
        li   t1, 2
        sw   t1, 0(t0)
        ecall
        ",
        dma = DMA_BASE,
        pe0 = ACCEL_BASE,
        pe1 = pe1,
        x = layout.x_addr,
        y = layout.y_addr,
        spm_in = spm_in,
        spm_mid = spm_mid,
        spm_out = spm_out,
        bytes = bytes,
        n = n,
    )
}

/// The software twin of [`two_layer_offload`]: both MVMs and the ReLU in
/// fixed-point on the CPU. `W1` at `layout.w_addr`, `W2` immediately
/// after it (`n*n` words later).
pub fn two_layer_software(n: usize, layout: DramLayout) -> String {
    let w2_addr = layout.w_addr + (n * n * 4) as u32;
    let mid_addr = layout.y_addr + (n * 4) as u32; // scratch after y
    format!(
        "
        # mid = W1 * x
        li   a0, {w1}
        li   a1, {x}
        li   a2, {mid}
        li   a3, {n}
        call mvm
        # relu(mid)
        li   t0, {mid}
        li   t2, {n}
    relu:
        lw   t1, (t0)
        srai t3, t1, 31
        not  t3, t3
        and  t1, t1, t3
        sw   t1, (t0)
        addi t0, t0, 4
        addi t2, t2, -1
        bnez t2, relu
        # y = W2 * mid
        li   a0, {w2}
        li   a1, {mid}
        li   a2, {y}
        li   a3, {n}
        call mvm
        ecall

        # ---- mvm(a0 = W, a1 = x, a2 = y, a3 = n) -------------------
    mvm:
        li   t0, 0            # i
    mvm_row:
        bge  t0, a3, mvm_done
        li   t1, 0            # acc
        mul  t2, t0, a3
        slli t2, t2, 2
        add  t2, t2, a0
        mv   t3, a1
        li   t4, 0
    mvm_col:
        bge  t4, a3, mvm_store
        lw   t5, (t2)
        lw   t6, (t3)
        mulh s0, t5, t6
        mul  s1, t5, t6
        slli s0, s0, 16
        srli s1, s1, 16
        or   s1, s1, s0
        add  t1, t1, s1
        addi t2, t2, 4
        addi t3, t3, 4
        addi t4, t4, 1
        j    mvm_col
    mvm_store:
        slli s0, t0, 2
        add  s0, s0, a2
        sw   t1, (s0)
        addi t0, t0, 1
        j    mvm_row
    mvm_done:
        ret
        ",
        w1 = layout.w_addr,
        w2 = w2_addr,
        x = layout.x_addr,
        y = layout.y_addr,
        mid = mid_addr,
        n = n,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::{RunOutcome, System};
    use neuropulsim_linalg::RMatrix;
    use neuropulsim_riscv::cpu::Halt;

    fn test_matrix(n: usize) -> RMatrix {
        RMatrix::from_fn(n, n, |i, j| {
            0.5 * ((i as f64 - j as f64) * 0.37).sin() + if i == j { 0.5 } else { 0.0 }
        })
    }

    fn write_operands(sys: &mut System, w: &RMatrix, x: &[Vec<f64>], layout: DramLayout) {
        let n = w.rows();
        let w_flat: Vec<f64> = (0..n * n).map(|k| w.as_slice()[k]).collect();
        sys.write_fixed_vector(layout.w_addr, &w_flat);
        for (v, col) in x.iter().enumerate() {
            sys.write_fixed_vector(layout.x_addr + (v * n * 4) as u32, col);
        }
    }

    #[test]
    fn software_mvm_computes_correctly() {
        let n = 4;
        let batch = 3;
        let w = test_matrix(n);
        let x: Vec<Vec<f64>> = (0..batch)
            .map(|v| {
                (0..n)
                    .map(|k| 0.25 * (v as f64 + 1.0) * ((k + 1) as f64) / n as f64)
                    .collect()
            })
            .collect();
        let layout = DramLayout::default();
        let mut sys = System::new();
        write_operands(&mut sys, &w, &x, layout);
        sys.load_firmware_source(&software_mvm(n, batch, layout));
        let report = sys.run(10_000_000);
        assert_eq!(report.outcome, RunOutcome::Halted(Halt::Ecall));
        for (v, col) in x.iter().enumerate() {
            let want = w.mul_vec(col);
            let got = sys.read_fixed_vector(layout.y_addr + (v * n * 4) as u32, n);
            for (i, (a, b)) in got.iter().zip(&want).enumerate() {
                assert!((a - b).abs() < 1e-3, "vector {v} element {i}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn offload_matches_software_results() {
        let n = 4;
        let batch = 3;
        let w = test_matrix(n);
        let x: Vec<Vec<f64>> = (0..batch)
            .map(|v| (0..n).map(|k| 0.1 * ((v * n + k) as f64).cos()).collect())
            .collect();
        let layout = DramLayout::default();
        let mut sys = System::new();
        sys.platform.accel.load_matrix(&w);
        write_operands(&mut sys, &w, &x, layout);
        sys.load_firmware_source(&accel_offload(n, batch, layout));
        let report = sys.run(10_000_000);
        assert_eq!(report.outcome, RunOutcome::Halted(Halt::Ecall));
        for (v, col) in x.iter().enumerate() {
            let want = w.mul_vec(col);
            let got = sys.read_fixed_vector(layout.y_addr + (v * n * 4) as u32, n);
            for (i, (a, b)) in got.iter().zip(&want).enumerate() {
                assert!((a - b).abs() < 1e-3, "vector {v} element {i}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn two_layer_cluster_matches_digital_reference() {
        let n = 4;
        let layout = DramLayout::default();
        let w1 = test_matrix(n);
        let w2 = RMatrix::from_fn(n, n, |i, j| 0.4 * ((2 * i + j) as f64 * 0.23).cos());
        let x: Vec<f64> = (0..n).map(|k| 0.3 * (k as f64 - 1.5)).collect();

        let mut sys = System::new();
        sys.platform.accel.load_matrix(&w1);
        let pe1_base = sys.platform.add_pe();
        assert_eq!(
            pe1_base,
            crate::system::ACCEL_BASE + crate::system::PE_STRIDE
        );
        sys.platform.extra_pes[0].load_matrix(&w2);
        sys.write_fixed_vector(layout.x_addr, &x);
        sys.load_firmware_source(&two_layer_offload(n, layout));
        let report = sys.run(10_000_000);
        assert_eq!(report.outcome, RunOutcome::Halted(Halt::Ecall));

        let mid: Vec<f64> = w1.mul_vec(&x).iter().map(|&v| v.max(0.0)).collect();
        let want = w2.mul_vec(&mid);
        let got = sys.read_fixed_vector(layout.y_addr, n);
        for (i, (a, b)) in got.iter().zip(&want).enumerate() {
            assert!((a - b).abs() < 2e-3, "element {i}: {a} vs {b}");
        }
    }

    #[test]
    fn two_layer_software_matches_digital_reference() {
        let n = 4;
        let layout = DramLayout::default();
        let w1 = test_matrix(n);
        let w2 = RMatrix::from_fn(n, n, |i, j| 0.4 * ((2 * i + j) as f64 * 0.23).cos());
        let x: Vec<f64> = (0..n).map(|k| 0.3 * (k as f64 - 1.5)).collect();

        let mut sys = System::new();
        sys.write_fixed_vector(layout.w_addr, w1.as_slice());
        sys.write_fixed_vector(layout.w_addr + (n * n * 4) as u32, w2.as_slice());
        sys.write_fixed_vector(layout.x_addr, &x);
        sys.load_firmware_source(&two_layer_software(n, layout));
        let report = sys.run(10_000_000);
        assert_eq!(report.outcome, RunOutcome::Halted(Halt::Ecall));

        let mid: Vec<f64> = w1.mul_vec(&x).iter().map(|&v| v.max(0.0)).collect();
        let want = w2.mul_vec(&mid);
        let got = sys.read_fixed_vector(layout.y_addr, n);
        for (i, (a, b)) in got.iter().zip(&want).enumerate() {
            assert!((a - b).abs() < 2e-3, "element {i}: {a} vs {b}");
        }
    }

    #[test]
    fn offload_is_faster_than_software_at_scale() {
        let n = 8;
        let batch = 16;
        let w = test_matrix(n);
        let x: Vec<Vec<f64>> = (0..batch)
            .map(|v| (0..n).map(|k| 0.05 * ((v + k) as f64)).collect())
            .collect();
        let layout = DramLayout::default();

        let mut sw = System::new();
        write_operands(&mut sw, &w, &x, layout);
        sw.load_firmware_source(&software_mvm(n, batch, layout));
        let sw_report = sw.run(100_000_000);
        assert_eq!(sw_report.outcome, RunOutcome::Halted(Halt::Ecall));

        let mut hw = System::new();
        hw.platform.accel.load_matrix(&w);
        write_operands(&mut hw, &w, &x, layout);
        hw.load_firmware_source(&accel_offload(n, batch, layout));
        let hw_report = hw.run(100_000_000);
        assert_eq!(hw_report.outcome, RunOutcome::Halted(Halt::Ecall));

        assert!(
            hw_report.cycles < sw_report.cycles / 2,
            "offload {} cycles should beat software {} cycles",
            hw_report.cycles,
            sw_report.cycles
        );
    }
}

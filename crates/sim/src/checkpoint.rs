//! Full-[`System`] checkpoint/restore — the gem5-style snapshot facility
//! that makes large fault-injection campaigns tractable: instead of
//! replaying the warm-up prefix from cycle 0 for every injection, the
//! campaign engine ([`crate::campaign`]) takes snapshots along the golden
//! run at a configurable cadence and resumes each injection from the
//! last checkpoint before its fault cycle.
//!
//! A snapshot captures *everything* that influences the trajectory: the
//! CPU architectural and timing state (via
//! [`neuropulsim_riscv::cpu::CpuSnapshot`]), both memories (sparse
//! [`RamSnapshot`] images), the accelerator devices including their
//! internal noise RNG, the DMA engine mid-transfer, the optional L1
//! cache, and the platform's interrupt/stall bookkeeping. A restored
//! system is therefore bit-identical to the original: resuming from a
//! checkpoint and running `m` cycles lands in exactly the state an
//! uninterrupted run of `cycle + m` reaches.

use crate::accel::AccelDevice;
use crate::cache::DirectMappedCache;
use crate::dma::DmaDevice;
use crate::ram::RamSnapshot;
use crate::system::{DigitalEnergy, System};
use neuropulsim_riscv::cpu::CpuSnapshot;

/// A point-in-time image of a complete [`System`].
#[derive(Debug, Clone)]
pub struct SystemSnapshot {
    /// CPU cycle counter at the time the snapshot was taken.
    pub cycle: u64,
    cpu: CpuSnapshot,
    dram: RamSnapshot,
    spm: RamSnapshot,
    accel: AccelDevice,
    extra_pes: Vec<AccelDevice>,
    dma: DmaDevice,
    now: u64,
    dram_latency: u64,
    l1_cache: Option<DirectMappedCache>,
    stall_cycles: u64,
    accel_irq_enabled: bool,
    extra_irq_enabled: Vec<bool>,
    dma_irq_enabled: bool,
    cpu_hz: f64,
    digital_energy: DigitalEnergy,
}

impl SystemSnapshot {
    /// Materializes a fresh [`System`] in the captured state.
    pub fn to_system(&self) -> System {
        let mut sys = System::with_clock(self.cpu_hz);
        sys.restore(self);
        sys
    }

    /// Approximate heap footprint \[bytes\], dominated by the sparse
    /// memory images.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.dram.approx_bytes() + self.spm.approx_bytes()
    }
}

impl System {
    /// Captures the complete simulation state (CPU, memories, devices,
    /// interrupt bookkeeping) for later [`System::restore`].
    pub fn snapshot(&self) -> SystemSnapshot {
        SystemSnapshot {
            cycle: self.cpu.cycles,
            cpu: self.cpu.snapshot(),
            dram: self.platform.dram.snapshot(),
            spm: self.platform.spm.snapshot(),
            accel: self.platform.accel.clone(),
            extra_pes: self.platform.extra_pes.clone(),
            dma: self.platform.dma.clone(),
            now: self.platform.now,
            dram_latency: self.platform.dram_latency,
            l1_cache: self.platform.l1_cache.clone(),
            stall_cycles: self.platform.stall_cycles,
            accel_irq_enabled: self.platform.accel_irq_enabled,
            extra_irq_enabled: self.platform.extra_irq_enabled.clone(),
            dma_irq_enabled: self.platform.dma_irq_enabled,
            cpu_hz: self.cpu_hz,
            digital_energy: self.digital_energy,
        }
    }

    /// Restores the state captured by [`System::snapshot`]. The system
    /// continues the exact trajectory of the snapshotted run.
    ///
    /// # Panics
    ///
    /// Panics if the memory geometry does not match (snapshots restore
    /// onto systems built with the standard memory map).
    pub fn restore(&mut self, snapshot: &SystemSnapshot) {
        self.cpu.restore(&snapshot.cpu);
        self.platform.dram.restore(&snapshot.dram);
        self.platform.spm.restore(&snapshot.spm);
        self.platform.accel = snapshot.accel.clone();
        self.platform.extra_pes = snapshot.extra_pes.clone();
        self.platform.dma = snapshot.dma.clone();
        self.platform.now = snapshot.now;
        self.platform.dram_latency = snapshot.dram_latency;
        self.platform.l1_cache = snapshot.l1_cache.clone();
        self.platform.stall_cycles = snapshot.stall_cycles;
        self.platform.accel_irq_enabled = snapshot.accel_irq_enabled;
        self.platform.extra_irq_enabled = snapshot.extra_irq_enabled.clone();
        self.platform.dma_irq_enabled = snapshot.dma_irq_enabled;
        self.cpu_hz = snapshot.cpu_hz;
        self.digital_energy = snapshot.digital_energy;
    }
}

#[cfg(test)]
mod tests {
    use crate::firmware::{accel_offload, software_mvm, DramLayout};
    use crate::system::{RunOutcome, System};
    use neuropulsim_linalg::RMatrix;

    fn mvm_system(n: usize) -> (System, DramLayout) {
        let layout = DramLayout::default();
        let mut sys = System::new();
        let w = RMatrix::from_fn(n, n, |i, j| 0.3 * ((i + 2 * j) as f64 * 0.41).sin());
        sys.write_fixed_vector(layout.w_addr, w.as_slice());
        let x: Vec<f64> = (0..n).map(|k| 0.2 + 0.05 * k as f64).collect();
        sys.write_fixed_vector(layout.x_addr, &x);
        sys.load_firmware_source(&software_mvm(n, 1, layout));
        (sys, layout)
    }

    fn signature(sys: &System, layout: DramLayout, n: usize) -> Vec<u32> {
        (0..n)
            .map(|k| {
                sys.platform
                    .dram
                    .peek(layout.y_addr + 4 * k as u32)
                    .unwrap_or(0)
            })
            .collect()
    }

    #[test]
    fn resumed_run_matches_uninterrupted_run() {
        let n = 6;
        let (mut reference, layout) = mvm_system(n);
        let ref_report = reference.run(1_000_000);
        assert!(matches!(ref_report.outcome, RunOutcome::Halted(_)));
        assert!(ref_report.cycles > 500, "need room to interrupt mid-run");

        let (mut interrupted, _) = mvm_system(n);
        // Run k cycles, snapshot, resume from a freshly restored system.
        assert!(interrupted.run_cycles_bounded(500, 1_000_000).is_none());
        let snap = interrupted.snapshot();
        let mut resumed = snap.to_system();
        assert_eq!(resumed.cpu, interrupted.cpu);
        let report = resumed.run(1_000_000 - snap.cycle);
        assert_eq!(report.outcome, ref_report.outcome);
        assert_eq!(resumed.cpu.cycles, reference.cpu.cycles);
        assert_eq!(resumed.cpu, reference.cpu, "full CPU state must match");
        assert_eq!(
            signature(&resumed, layout, n),
            signature(&reference, layout, n),
            "readout signature must match"
        );
        assert_eq!(
            resumed.platform.dram.reads, reference.platform.dram.reads,
            "access counters resume too"
        );
    }

    #[test]
    fn restore_rolls_back_divergence_in_place() {
        let n = 3;
        let (mut sys, layout) = mvm_system(n);
        assert!(sys.run_cycles_bounded(200, 1_000_000).is_none());
        let snap = sys.snapshot();
        // Diverge: corrupt memory and keep running.
        sys.platform.dram.poke(layout.x_addr, 0xFFFF_FFFF).unwrap();
        let _ = sys.run(1_000_000);
        // Roll back and finish cleanly.
        sys.restore(&snap);
        assert_eq!(sys.cpu.cycles, snap.cycle);
        let report = sys.run(1_000_000);
        assert!(matches!(report.outcome, RunOutcome::Halted(_)));
        let (mut clean, _) = mvm_system(n);
        let _ = clean.run(1_000_000);
        assert_eq!(signature(&sys, layout, n), signature(&clean, layout, n));
    }

    #[test]
    fn snapshot_of_device_heavy_workload_resumes_mid_transfer() {
        // Snapshot while the DMA/accelerator offload pipeline is in
        // flight: device state (busy_until, in-flight cursor, IRQ
        // enables) must all round-trip.
        let n = 4;
        let layout = DramLayout::default();
        let build = || {
            let mut sys = System::new();
            sys.platform.accel.load_matrix(&RMatrix::identity(n));
            sys.write_fixed_vector(layout.x_addr, &[0.5, 0.25, -0.5, 0.125]);
            sys.load_firmware_source(&accel_offload(n, 1, layout));
            sys
        };
        let mut reference = build();
        let ref_report = reference.run(10_000_000);
        assert!(matches!(ref_report.outcome, RunOutcome::Halted(_)));

        for k in [5u64, 40, 90, 150] {
            let mut sys = build();
            if sys.run_cycles_bounded(k, 10_000_000).is_some() {
                break; // workload finished before k — nothing to resume
            }
            let mut resumed = sys.snapshot().to_system();
            let report = resumed.run(10_000_000);
            assert_eq!(report.outcome, ref_report.outcome, "resume at {k}");
            assert_eq!(resumed.cpu, reference.cpu, "resume at {k}");
            assert_eq!(
                signature(&resumed, layout, n),
                signature(&reference, layout, n),
                "resume at {k}"
            );
        }
    }

    #[test]
    fn snapshots_stay_small() {
        let (mut sys, _) = mvm_system(4);
        let _ = sys.run_cycles_bounded(100, 1_000_000);
        let snap = sys.snapshot();
        // 4 MiB DRAM + 256 KiB SPM, but only the workload footprint is
        // stored: firmware, operands, and a few result words.
        assert!(
            snap.approx_bytes() < 64 * 1024,
            "sparse snapshot too large: {} bytes",
            snap.approx_bytes()
        );
    }
}
